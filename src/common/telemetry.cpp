#include "common/telemetry.h"

#include <cstdio>

#include "common/csv.h"

namespace iaas::telemetry {

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kEvaluations:
      return "evaluations";
    case Counter::kStateRebuilds:
      return "state_rebuilds";
    case Counter::kDeltaMoves:
      return "delta_moves";
    case Counter::kStateRebases:
      return "state_rebases";
    case Counter::kRepairInvocations:
      return "repair_invocations";
    case Counter::kRepairedIndividuals:
      return "repaired_individuals";
    case Counter::kUnrepairableIndividuals:
      return "unrepairable_individuals";
    case Counter::kTabuMovesTried:
      return "tabu_moves_tried";
    case Counter::kTabuMovesAccepted:
      return "tabu_moves_accepted";
    case Counter::kSimFaultEvents:
      return "sim_fault_events";
    case Counter::kSimEvictions:
      return "sim_evictions";
    case Counter::kSimRetries:
      return "sim_retries";
    case Counter::kSimPermanentRejections:
      return "sim_permanent_rejections";
    case Counter::kSimDegradedWindows:
      return "sim_degraded_windows";
    case Counter::kShardPreRejections:
      return "shard_pre_rejections";
    case Counter::kShardRebalancePlacements:
      return "shard_rebalance_placements";
    case Counter::kShardMigrations:
      return "shard_migrations";
    case Counter::kSimAdmissionDeferrals:
      return "sim_admission_deferrals";
    case Counter::kSimAdmissionDrops:
      return "sim_admission_drops";
    case Counter::kTraceWindowsStreamed:
      return "trace_windows_streamed";
    case Counter::kTraceBytesStreamed:
      return "trace_bytes_streamed";
    case Counter::kTracePeakBufferBytes:
      return "trace_peak_buffer_bytes";
    case Counter::kCount:
      break;
  }
  return "unknown";
}

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kTournament:
      return "tournament";
    case Phase::kVariation:
      return "variation";
    case Phase::kRepair:
      return "repair";
    case Phase::kEvaluate:
      return "evaluate";
    case Phase::kSelection:
      return "selection";
    case Phase::kAllocate:
      return "allocate";
    case Phase::kFallbackAllocate:
      return "fallback_allocate";
    case Phase::kSimWindow:
      return "sim_window";
    case Phase::kCount:
      break;
  }
  return "unknown";
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

void Registry::flush_counters(const CounterBlock& block) {
  std::lock_guard lock(mutex_);
  counters_.merge(block);
}

void Registry::add_phase_seconds(Phase p, double seconds) {
  std::lock_guard lock(mutex_);
  seconds_[static_cast<std::size_t>(p)] += seconds;
}

CounterBlock Registry::counters() const {
  std::lock_guard lock(mutex_);
  return counters_;
}

std::array<double, kPhaseCount> Registry::phase_seconds() const {
  std::lock_guard lock(mutex_);
  return seconds_;
}

void Registry::reset() {
  std::lock_guard lock(mutex_);
  counters_.reset();
  seconds_.fill(0.0);
}

#if IAAS_TELEMETRY

namespace {
thread_local CounterBlock* t_sink = nullptr;
}  // namespace

void count(Counter c, std::uint64_t n) {
  if (t_sink != nullptr) {
    (*t_sink)[c] += n;
  }
}

bool sink_installed() { return t_sink != nullptr; }

ScopedSink::ScopedSink(CounterBlock& block) : previous_(t_sink) {
  t_sink = &block;
}

ScopedSink::~ScopedSink() { t_sink = previous_; }

#endif  // IAAS_TELEMETRY

const std::vector<std::string>& RunTrace::columns() {
  static const std::vector<std::string> kColumns = {
      "generation",       "evaluations",
      "full_rebuilds",    "delta_moves",
      "rebases",          "repair_invocations", "repaired",
      "unrepairable",     "tabu_moves_tried",
      "tabu_moves_accepted", "front_size",
      "best_usage",       "best_downtime",
      "best_migration",   "seconds_tournament",
      "seconds_variation", "seconds_repair",
      "seconds_evaluate", "seconds_selection",
  };
  return kColumns;
}

namespace {

std::string num(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.9g", v);
  return buffer;
}

}  // namespace

std::vector<std::string> RunTrace::row_values(const GenerationRow& row) {
  return {
      std::to_string(row.generation),
      std::to_string(row.evaluations),
      std::to_string(row.full_rebuilds),
      std::to_string(row.delta_moves),
      std::to_string(row.rebases),
      std::to_string(row.repair_invocations),
      std::to_string(row.repaired),
      std::to_string(row.unrepairable),
      std::to_string(row.tabu_moves_tried),
      std::to_string(row.tabu_moves_accepted),
      std::to_string(row.front_size),
      num(row.best_objectives[0]),
      num(row.best_objectives[1]),
      num(row.best_objectives[2]),
      num(row.seconds_tournament),
      num(row.seconds_variation),
      num(row.seconds_repair),
      num(row.seconds_evaluate),
      num(row.seconds_selection),
  };
}

std::size_t RunTrace::total(std::size_t GenerationRow::*field) const {
  std::size_t sum = 0;
  for (const GenerationRow& row : rows) {
    sum += row.*field;
  }
  return sum;
}

void RunTrace::write_csv(const std::string& path) const {
  CsvWriter csv(path, columns());
  for (const GenerationRow& row : rows) {
    csv.add_row(row_values(row));
  }
  csv.close();
}

}  // namespace iaas::telemetry
