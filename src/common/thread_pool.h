// Fixed-size worker pool with a blocking task queue and chunked
// parallel_for helpers.  Used to evaluate EA populations in parallel
// (objective evaluation is independent per individual) and to run
// benchmark repetitions concurrently.
//
// parallel_for dispatches *chunks* of consecutive indices, never one task
// per index: a chunk is claimed with a single atomic fetch-add and run to
// completion by one participant, so tiny per-index bodies (a few
// microseconds of offspring variation) amortize the queue round-trip.
// The chunk size is `max(grain, total / (4 * workers))` — callers whose
// per-index work is very small raise `grain` to force fewer, fatter
// chunks.
//
// The slot-aware variant additionally hands every participating thread a
// stable *slot index* in [0, size()): a participant drains chunks
// serially, so per-slot caller state ("arenas": evaluator scratch, gene
// buffers) needs no locking — the foundation of the EA's thread-affine
// PlacementState arenas (DESIGN.md §8).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace iaas {

class ThreadPool {
 public:
  // threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  // Enqueue an arbitrary task; the future observes completion/exception.
  std::future<void> submit(std::function<void()> task);

  // Run fn(i) for i in [begin, end) across the pool, blocking until all
  // iterations finish.  Iterations are chunked to limit queue traffic;
  // `grain` is the minimum chunk size (0 = automatic, ~4 chunks per
  // worker).  Exceptions from fn propagate to the caller (first one wins)
  // and chunks not yet claimed when it was thrown are abandoned.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 0);

  // Slot-aware variant: fn(slot, i) where `slot` identifies the
  // participating thread (0 <= slot < size()).  Each slot is claimed by
  // exactly one participant for the whole call and a participant runs its
  // chunks serially, so fn may freely mutate caller state indexed by
  // slot.  Same chunking, grain, and exception semantics as above.
  void parallel_for_slots(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& fn,
      std::size_t grain = 0);

  // Process-wide shared pool for callers that do not manage their own.
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace iaas
