// Fixed-size worker pool with a blocking task queue and a parallel_for
// helper.  Used to evaluate EA populations in parallel (objective
// evaluation is independent per individual) and to run benchmark
// repetitions concurrently.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace iaas {

class ThreadPool {
 public:
  // threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  // Enqueue an arbitrary task; the future observes completion/exception.
  std::future<void> submit(std::function<void()> task);

  // Run fn(i) for i in [begin, end) across the pool, blocking until all
  // iterations finish.  Iterations are chunked to limit queue traffic.
  // Exceptions from fn propagate to the caller (first one wins) and
  // chunks not yet claimed when it was thrown are abandoned.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  // Process-wide shared pool for callers that do not manage their own.
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace iaas
