// Deterministic random number generation.
//
// Every stochastic component of the library (workload generation, EA
// operators, tabu tie-breaking) takes an explicit Rng so experiments are
// reproducible from a single printed seed.  The engine is xoshiro256**
// seeded through SplitMix64 — fast, high quality, and independent of the
// standard library's unspecified distributions (we implement our own so
// results are identical across platforms).
#pragma once

#include <cstdint>
#include <limits>
#include <utility>

#include "common/expect.h"

namespace iaas {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the user seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  // xoshiro256** next().
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [lo, hi] inclusive. Debiased via rejection.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    IAAS_EXPECT(lo <= hi, "uniform_int requires lo <= hi");
    const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) {  // full 64-bit range
      return static_cast<std::int64_t>(next_u64());
    }
    const std::uint64_t limit =
        std::numeric_limits<std::uint64_t>::max() - \
        std::numeric_limits<std::uint64_t>::max() % range;
    std::uint64_t v = next_u64();
    while (v >= limit) {
      v = next_u64();
    }
    return lo + static_cast<std::int64_t>(v % range);
  }

  // Uniform index in [0, n).
  std::size_t uniform_index(std::size_t n) {
    IAAS_EXPECT(n > 0, "uniform_index requires n > 0");
    return static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  // Uniform real in [lo, hi).
  double uniform_real(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  // Bernoulli trial with success probability p.
  bool bernoulli(double p) { return next_double() < p; }

  // Derive an independent child stream (e.g. one per parallel worker).
  // Consumes one draw from this stream.
  Rng split() { return Rng(next_u64() ^ 0xa3ec647659359acdULL); }

  // Counter-derived child stream i, WITHOUT consuming the parent state:
  // the same (state, i) pair always yields the same child, so a serial
  // driver can assign stream i to parallel task i and the run is
  // bit-identical for any thread count.  Distinct counters against the
  // same parent state give statistically independent streams (SplitMix64
  // mixing of the counter, folded into two parent state words, then the
  // seeding expansion).
  [[nodiscard]] Rng child_stream(std::uint64_t i) const {
    std::uint64_t z = i + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return Rng(state_[0] ^ rotl(state_[2], 29) ^ z);
  }

  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      const std::size_t j = uniform_index(i);
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace iaas
