// Summary statistics for benchmark reporting (the paper reports averages
// over 100 runs; we additionally report dispersion).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace iaas {

// Single-pass mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  // sample variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Percentile with linear interpolation; q in [0,1]. Copies and sorts.
double percentile(std::span<const double> values, double q);
double mean(std::span<const double> values);
double median(std::span<const double> values);
double stddev(std::span<const double> values);

}  // namespace iaas
