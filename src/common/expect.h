// Lightweight precondition / invariant checking.
//
// IAAS_EXPECT is active in every build type: the allocation library is a
// research artefact where silently violated invariants invalidate results,
// so the (cheap) checks stay on.  Use IAAS_DEBUG_EXPECT for checks that are
// too hot for release builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace iaas::detail {

[[noreturn]] inline void expect_fail(const char* cond, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "iaas: expectation failed: %s\n  at %s:%d\n  %s\n",
               cond, file, line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace iaas::detail

#define IAAS_EXPECT(cond, msg)                                     \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::iaas::detail::expect_fail(#cond, __FILE__, __LINE__, msg); \
    }                                                              \
  } while (false)

#ifndef NDEBUG
#define IAAS_DEBUG_EXPECT(cond, msg) IAAS_EXPECT(cond, msg)
#else
#define IAAS_DEBUG_EXPECT(cond, msg) \
  do {                               \
  } while (false)
#endif
