// Minimal CSV writer so bench binaries can dump machine-readable series
// alongside their stdout tables (one file per figure, plottable as-is).
//
// Failure policy: an unopenable path aborts at construction (IAAS_EXPECT
// — results silently vanishing is worse than a crash in a research
// artefact), and write errors surface on flush()/close().  A writer
// destroyed with a bad stream warns on stderr instead of aborting
// (destructors must not throw/abort during unwinding).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace iaas {

class CsvWriter {
 public:
  // Opens (truncates) `path` and writes the header row immediately.
  // Aborts with a diagnostic naming the path when the file cannot be
  // opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);
  ~CsvWriter();

  void add_row(const std::vector<std::string>& row);

  // Push buffered rows to disk; aborts with the path when the stream has
  // gone bad (disk full, file deleted under us, ...).
  void flush();

  // flush() + close the stream; further add_row calls are invalid.
  void close();

  [[nodiscard]] bool ok() const { return out_.good(); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  void write_row(const std::vector<std::string>& row);
  static std::string escape(const std::string& field);

  std::ofstream out_;
  std::string path_;
  std::size_t columns_;
  bool closed_ = false;
};

}  // namespace iaas
