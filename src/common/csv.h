// Minimal CSV writer so bench binaries can dump machine-readable series
// alongside their stdout tables (one file per figure, plottable as-is).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace iaas {

class CsvWriter {
 public:
  // Opens (truncates) `path` and writes the header row immediately.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void add_row(const std::vector<std::string>& row);

  [[nodiscard]] bool ok() const { return out_.good(); }

 private:
  void write_row(const std::vector<std::string>& row);
  static std::string escape(const std::string& field);

  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace iaas
