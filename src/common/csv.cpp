#include "common/csv.h"

#include "common/expect.h"

namespace iaas {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path, std::ios::trunc), columns_(header.size()) {
  write_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& row) {
  IAAS_EXPECT(row.size() == columns_, "csv row width must match header");
  write_row(row);
}

void CsvWriter::write_row(const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) {
      out_ << ',';
    }
    out_ << escape(row[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) {
    return field;
  }
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') {
      quoted += '"';
    }
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace iaas
