#include "common/csv.h"

#include <cstdio>

#include "common/expect.h"

namespace iaas {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path, std::ios::trunc), path_(path), columns_(header.size()) {
  IAAS_EXPECT(out_.is_open(), ("csv: cannot open " + path_).c_str());
  write_row(header);
}

CsvWriter::~CsvWriter() {
  if (closed_) {
    return;
  }
  out_.flush();
  if (!out_.good()) {
    // Destructors must not abort; a loud warning is the best we can do
    // for a writer the caller never flushed/closed explicitly.
    std::fprintf(stderr, "iaas: csv: write error on %s (rows lost)\n",
                 path_.c_str());
  }
}

void CsvWriter::add_row(const std::vector<std::string>& row) {
  IAAS_EXPECT(row.size() == columns_, "csv row width must match header");
  IAAS_EXPECT(!closed_, ("csv: add_row after close on " + path_).c_str());
  write_row(row);
}

void CsvWriter::flush() {
  out_.flush();
  IAAS_EXPECT(out_.good(), ("csv: write error on " + path_).c_str());
}

void CsvWriter::close() {
  flush();
  out_.close();
  IAAS_EXPECT(out_.good(), ("csv: close error on " + path_).c_str());
  closed_ = true;
}

void CsvWriter::write_row(const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) {
      out_ << ',';
    }
    out_ << escape(row[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) {
    return field;
  }
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') {
      quoted += '"';
    }
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace iaas
