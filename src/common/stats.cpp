#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/expect.h"

namespace iaas {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::span<const double> values, double q) {
  IAAS_EXPECT(!values.empty(), "percentile of empty range");
  IAAS_EXPECT(q >= 0.0 && q <= 1.0, "percentile q must be in [0,1]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double mean(std::span<const double> values) {
  RunningStats s;
  for (double v : values) {
    s.add(v);
  }
  return s.mean();
}

double median(std::span<const double> values) {
  return percentile(values, 0.5);
}

double stddev(std::span<const double> values) {
  RunningStats s;
  for (double v : values) {
    s.add(v);
  }
  return s.stddev();
}

}  // namespace iaas
