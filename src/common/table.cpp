#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/expect.h"

namespace iaas {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  IAAS_EXPECT(row.size() == header_.size(),
              "table row width must match header");
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << ' ' << row[c];
      out << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    out << '\n';
  };
  auto emit_rule = [&] {
    out << "+";
    for (std::size_t w : widths) {
      out << std::string(w + 2, '-') << '+';
    }
    out << '\n';
  };

  emit_rule();
  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) {
    emit_row(row);
  }
  emit_rule();
  return out.str();
}

void TextTable::print() const { std::fputs(str().c_str(), stdout); }

}  // namespace iaas
