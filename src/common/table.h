// Plain-text table rendering for benchmark output.  Every figure/table
// bench prints its series through this so the rows the paper reports are
// directly visible on stdout.
#pragma once

#include <string>
#include <vector>

namespace iaas {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  // Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 3);

  [[nodiscard]] std::string str() const;
  void print() const;  // to stdout

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace iaas
