// Dense row-major matrix used for the paper's capacity / factor / load /
// QoS matrices (Eqs. 1-3, 8).  Sized once, contiguous storage, bounds
// checked in debug builds.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/expect.h"

namespace iaas {

template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  T& operator()(std::size_t r, std::size_t c) {
    IAAS_DEBUG_EXPECT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const {
    IAAS_DEBUG_EXPECT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }

  // Contiguous view of one row; the natural unit when iterating a server's
  // attribute vector.
  [[nodiscard]] std::span<T> row(std::size_t r) {
    IAAS_DEBUG_EXPECT(r < rows_, "matrix row out of range");
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const T> row(std::size_t r) const {
    IAAS_DEBUG_EXPECT(r < rows_, "matrix row out of range");
    return {data_.data() + r * cols_, cols_};
  }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  [[nodiscard]] std::span<const T> flat() const { return data_; }
  [[nodiscard]] std::span<T> flat() { return data_; }

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

}  // namespace iaas
