#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "common/expect.h"

namespace iaas {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    IAAS_EXPECT(!stopping_, "submit on stopped ThreadPool");
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for_slots(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t grain) {
  if (begin >= end) {
    return;
  }
  const std::size_t total = end - begin;
  // ~4 chunks per worker balances load without flooding the queue; an
  // explicit grain wins when it asks for fatter chunks (tiny per-index
  // bodies) — it never shrinks a chunk below the automatic size.
  const std::size_t chunks =
      std::max<std::size_t>(1, std::min(total, workers_.size() * 4));
  const std::size_t chunk_size =
      std::max(std::max<std::size_t>(grain, 1),
               (total + chunks - 1) / chunks);

  std::atomic<std::size_t> next{begin};
  std::atomic<std::size_t> next_slot{0};
  std::atomic<bool> aborted{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto drain = [&] {
    // One slot per participating thread, claimed on entry and held for
    // every chunk this participant drains.  At most size() participants
    // exist (the caller stands in for one worker), so slot < size().
    const std::size_t slot = next_slot.fetch_add(1);
    for (;;) {
      if (aborted.load(std::memory_order_relaxed)) {
        return;
      }
      const std::size_t lo = next.fetch_add(chunk_size);
      if (lo >= end) {
        return;
      }
      const std::size_t hi = std::min(lo + chunk_size, end);
      try {
        for (std::size_t i = lo; i < hi; ++i) {
          fn(slot, i);
        }
      } catch (...) {
        {
          std::lock_guard lock(error_mutex);
          if (!first_error) {
            first_error = std::current_exception();
          }
        }
        // Abandon chunks not yet claimed — a failed parallel_for should
        // stop scheduling work, not run the remaining iterations to
        // completion behind the caller's back.
        aborted.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::future<void>> futures;
  futures.reserve(workers_.size());
  for (std::size_t w = 1; w < workers_.size(); ++w) {
    futures.push_back(submit(drain));
  }
  drain();  // the calling thread participates
  for (auto& f : futures) {
    f.get();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  parallel_for_slots(
      begin, end, [&fn](std::size_t, std::size_t i) { fn(i); }, grain);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) {
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace iaas
