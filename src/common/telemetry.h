// Cross-layer telemetry & run-trace subsystem (DESIGN.md §9).
//
// Three pieces, all deliberately tiny:
//
//   * a fixed set of named **counters** (enum-indexed — no hashing on the
//     hot path).  Increments go through a thread-local `CounterBlock*`
//     sink installed with `ScopedSink`; with no sink installed the
//     increment is a single load + branch (the null-sink fast path), and
//     with `IAAS_TELEMETRY` defined to 0 every call compiles away
//     entirely.  Per-thread accumulation means no atomics and no
//     ordering dependence: a parallel driver gives each task its own
//     block and merges them serially, so tallies are bit-identical for
//     any thread count.
//   * a process-wide **Registry** of counter totals and per-phase wall
//     times, fed by explicit `flush_counters` / scoped phase timers at
//     coarse granularity (per allocation, per simulation window).
//   * a structured **RunTrace**: one row per EA generation recording
//     what the search actually did — evaluations, delta moves vs full
//     rebuilds, repair outcomes, tabu move counts, front size, best
//     objective vector, and phase wall times — with a CSV emitter here
//     (reusing common/csv) and a JSON emitter in io/trace_json.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#ifndef IAAS_TELEMETRY
#define IAAS_TELEMETRY 1
#endif

namespace iaas::telemetry {

// Hot-path counters.  Kept to one small fixed enum so a CounterBlock is
// a plain array and merging is a handful of adds.
enum class Counter : std::size_t {
  kEvaluations,              // objective evaluations (any path)
  kStateRebuilds,            // full PlacementState rebuilds
  kDeltaMoves,               // incremental apply_move updates
  kStateRebases,             // gene-diff rebase repositions (not rebuilds)
  kRepairInvocations,        // repair walks entered
  kRepairedIndividuals,      // entered infeasible, left feasible
  kUnrepairableIndividuals,  // left with violations after all passes
  kTabuMovesTried,           // candidate relocations examined
  kTabuMovesAccepted,        // relocations actually applied
  // Simulator failure/degradation lifecycle (flushed once per window).
  kSimFaultEvents,           // failure/repair/decommission events
  kSimEvictions,             // running VMs forced off the platform
  kSimRetries,               // queued VMs re-entering a later window
  kSimPermanentRejections,   // retry budget exhausted, VM dropped
  kSimDegradedWindows,       // windows served by the fallback chain
  // Sharded allocator (cross-shard rebalance + admission control).
  kShardPreRejections,       // VMs every shard rejected before rebalance
  kShardRebalancePlacements, // rejected VMs the global rebalance placed
  kShardMigrations,          // cross-shard improvement moves applied
  kSimAdmissionDeferrals,    // arrival units pushed to a later window
  kSimAdmissionDrops,        // arrival units shed at the queue cap
  // Streaming trace I/O (flushed by SimTraceWriter/BinaryTraceWriter at
  // finish(), directly to the global registry — emission happens outside
  // the sim loop, so no thread-local sink is installed).
  kTraceWindowsStreamed,     // window records flushed incrementally
  kTraceBytesStreamed,       // bytes handed to the trace sink
  kTracePeakBufferBytes,     // high-water mark of the reusable buffer
  kCount,
};

inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCount);

const char* counter_name(Counter c);

struct CounterBlock {
  std::array<std::uint64_t, kCounterCount> values{};

  std::uint64_t& operator[](Counter c) {
    return values[static_cast<std::size_t>(c)];
  }
  std::uint64_t operator[](Counter c) const {
    return values[static_cast<std::size_t>(c)];
  }
  void merge(const CounterBlock& other) {
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      values[i] += other.values[i];
    }
  }
  void reset() { values.fill(0); }
  [[nodiscard]] bool empty() const {
    for (std::uint64_t v : values) {
      if (v != 0) {
        return false;
      }
    }
    return true;
  }
};

// Coarse phases for the registry's wall-time totals.
enum class Phase : std::size_t {
  kTournament,
  kVariation,
  kRepair,
  kEvaluate,
  kSelection,
  kAllocate,          // one Allocator::allocate call
  kFallbackAllocate,  // greedy fallback after a deadline/allocator failure
  kSimWindow,         // one simulator window
  kCount,
};

inline constexpr std::size_t kPhaseCount =
    static_cast<std::size_t>(Phase::kCount);

const char* phase_name(Phase p);

// Process-wide aggregate.  Everything is explicit-push (flush_counters /
// add_phase_seconds), so the mutex is only ever taken at coarse
// granularity, never per increment.
class Registry {
 public:
  static Registry& global();

  void flush_counters(const CounterBlock& block);
  void add_phase_seconds(Phase p, double seconds);

  [[nodiscard]] CounterBlock counters() const;
  [[nodiscard]] std::array<double, kPhaseCount> phase_seconds() const;
  void reset();

 private:
  mutable std::mutex mutex_;
  CounterBlock counters_;
  std::array<double, kPhaseCount> seconds_{};
};

#if IAAS_TELEMETRY

// Increment counter `c` on the calling thread's installed sink; dropped
// when no sink is installed.
void count(Counter c, std::uint64_t n = 1);

[[nodiscard]] bool sink_installed();

// Installs `block` as the calling thread's counter sink for the scope;
// restores the previous sink on exit (sinks nest).  The block is NOT
// flushed to the Registry automatically — the owner decides when its
// per-task tallies become globally visible.
class ScopedSink {
 public:
  explicit ScopedSink(CounterBlock& block);
  ~ScopedSink();
  ScopedSink(const ScopedSink&) = delete;
  ScopedSink& operator=(const ScopedSink&) = delete;

 private:
  CounterBlock* previous_;
};

#else  // IAAS_TELEMETRY == 0: everything compiles away.

inline void count(Counter, std::uint64_t = 1) {}
inline bool sink_installed() { return false; }

class ScopedSink {
 public:
  explicit ScopedSink(CounterBlock&) {}
  ScopedSink(const ScopedSink&) = delete;
  ScopedSink& operator=(const ScopedSink&) = delete;
};

#endif  // IAAS_TELEMETRY

// Adds the scope's wall time to `*target` on destruction; a null target
// disables the clock calls entirely (how tracing-off runs skip the
// per-offspring timer cost).
class ScopedTimer {
 public:
  explicit ScopedTimer(double* target)
      : target_(target),
        start_(target != nullptr ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{}) {}
  ~ScopedTimer() {
    if (target_ != nullptr) {
      *target_ += std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* target_;
  std::chrono::steady_clock::time_point start_;
};

// Adds the scope's wall time to the global registry's phase total.
class ScopedPhaseTimer {
 public:
  explicit ScopedPhaseTimer(Phase phase)
      : phase_(phase), start_(std::chrono::steady_clock::now()) {}
  ~ScopedPhaseTimer() {
    Registry::global().add_phase_seconds(
        phase_, std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start_)
                    .count());
  }
  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
  Phase phase_;
  std::chrono::steady_clock::time_point start_;
};

// One EA generation as observed by the engine.  Generation 0 is the
// initial population (no tournament/variation).  The counter fields are
// summed serially from per-task blocks, so they are deterministic for a
// given seed at any thread count; the seconds fields are per-task wall
// times summed over tasks (CPU-seconds on the parallel phases) and are
// *not* deterministic.
struct GenerationRow {
  std::size_t generation = 0;
  std::size_t evaluations = 0;
  std::size_t full_rebuilds = 0;
  std::size_t delta_moves = 0;
  std::size_t rebases = 0;
  std::size_t repair_invocations = 0;
  std::size_t repaired = 0;
  std::size_t unrepairable = 0;
  std::size_t tabu_moves_tried = 0;
  std::size_t tabu_moves_accepted = 0;
  std::size_t front_size = 0;  // rank-0 members after selection
  std::array<double, 3> best_objectives{};  // min-aggregate survivor
  double seconds_tournament = 0.0;
  double seconds_variation = 0.0;
  double seconds_repair = 0.0;
  double seconds_evaluate = 0.0;
  double seconds_selection = 0.0;
};

struct RunTrace {
  std::string label;       // algorithm / experiment tag
  std::uint64_t seed = 0;  // the run's printed seed
  std::vector<GenerationRow> rows;

  [[nodiscard]] bool empty() const { return rows.empty(); }

  // Column order shared by the CSV emitter and io/trace_json.
  static const std::vector<std::string>& columns();
  static std::vector<std::string> row_values(const GenerationRow& row);

  // Sum of a counter field over all rows (e.g. total evaluations).
  [[nodiscard]] std::size_t total(std::size_t GenerationRow::*field) const;

  // One CSV file, header + one line per generation (common/csv rules:
  // fails loudly on an unopenable path).
  void write_csv(const std::string& path) const;
};

}  // namespace iaas::telemetry
