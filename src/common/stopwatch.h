// Wall-clock timing for the execution-time experiments (Figs. 7-8) and a
// Deadline type used by solvers that must answer within a time budget
// (the paper requires responses "in a very short timeframe (<2mn)").
#pragma once

#include <chrono>

namespace iaas {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  [[nodiscard]] double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

// A point in time after which a solver must stop and return its incumbent.
class Deadline {
 public:
  // Unlimited deadline.
  Deadline() : limited_(false) {}

  static Deadline after_seconds(double seconds) {
    Deadline d;
    d.limited_ = true;
    d.end_ = clock::now() + std::chrono::duration_cast<clock::duration>(
                                std::chrono::duration<double>(seconds));
    return d;
  }

  [[nodiscard]] bool expired() const {
    return limited_ && clock::now() >= end_;
  }
  [[nodiscard]] bool limited() const { return limited_; }

 private:
  using clock = std::chrono::steady_clock;
  bool limited_;
  clock::time_point end_{};
};

}  // namespace iaas
