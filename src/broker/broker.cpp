#include "broker/broker.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/expect.h"

namespace iaas {

const char* broker_mode_name(BrokerMode mode) {
  switch (mode) {
    case BrokerMode::kCheapestFeasible:
      return "cheapest-feasible";
    case BrokerMode::kMarketAware:
      return "market-aware";
  }
  return "unknown";
}

BrokerAllocator::BrokerAllocator(CloudMarket& market, BrokerConfig config)
    : market_(&market), config_(std::move(config)) {
  backends_.resize(market.provider_count());
}

Allocator& BrokerAllocator::backend(std::size_t provider) {
  IAAS_EXPECT(provider < backends_.size(), "provider index out of range");
  if (backends_[provider] == nullptr) {
    backends_[provider] = make_allocator(config_.backend, config_.suite);
  }
  return *backends_[provider];
}

std::vector<double> BrokerAllocator::demand_of(
    const RequestSet& requests, const std::vector<std::uint32_t>& vms) {
  std::vector<double> demand;
  for (const std::uint32_t k : vms) {
    const VmRequest& vm = requests.vms[k];
    if (demand.size() < vm.demand.size()) {
      demand.resize(vm.demand.size(), 0.0);
    }
    for (std::size_t l = 0; l < vm.demand.size(); ++l) {
      demand[l] += vm.demand[l];
    }
  }
  return demand;
}

std::size_t BrokerAllocator::route(
    const std::vector<double>& unit_demand, std::size_t window,
    const std::vector<std::vector<double>>& projected_load,
    const std::vector<char>& exclude) const {
  // Candidates sorted by (effective multiplier, provider order) — the
  // cheapest-feasible rule, deterministic on ties.
  std::vector<std::pair<double, std::size_t>> candidates;
  for (std::size_t p = 0; p < market_->provider_count(); ++p) {
    const CloudProvider& provider = market_->provider(p);
    if (!provider.online() || (p < exclude.size() && exclude[p] != 0)) {
      continue;
    }
    candidates.emplace_back(provider.price_multiplier(window), p);
  }
  std::sort(candidates.begin(), candidates.end());
  for (const auto& [multiplier, p] : candidates) {
    (void)multiplier;
    const Infrastructure& infra = market_->provider(p).infrastructure();
    bool fits = true;
    for (std::size_t l = 0; l < unit_demand.size(); ++l) {
      const double capacity =
          l < infra.attribute_count()
              ? infra.total_effective_capacity(l) * config_.capacity_headroom
              : 0.0;
      const double load =
          l < projected_load[p].size() ? projected_load[p][l] : 0.0;
      if (load + unit_demand[l] > capacity) {
        fits = false;
        break;
      }
    }
    if (fits) {
      return p;
    }
  }
  return kNoProvider;
}

BrokerResult BrokerAllocator::allocate(const RequestSet& requests,
                                       std::size_t window,
                                       std::uint64_t seed) {
  const std::size_t providers = market_->provider_count();
  const std::size_t n = requests.vm_count();

  BrokerResult result;
  result.vm_count = n;
  result.per_cloud.resize(providers);
  result.provider_of_vm.assign(n, BrokerResult::kRejectedProvider);

  // Per-provider slice membership (global VM ids, kept sorted) and the
  // projected-load accounting behind the routing headroom check.
  std::vector<std::vector<std::uint32_t>> slice(providers);
  std::vector<std::vector<double>> load(providers);
  for (std::size_t p = 0; p < providers; ++p) {
    load[p].assign(
        market_->provider(p).infrastructure().attribute_count(), 0.0);
  }
  const auto add_load = [&load](std::size_t p,
                                const std::vector<double>& demand) {
    for (std::size_t l = 0; l < demand.size() && l < load[p].size(); ++l) {
      load[p][l] += demand[l];
    }
  };

  // Initial partition: whole units, cheapest-feasible.
  std::vector<char> no_exclusions;
  for (const std::vector<std::uint32_t>& unit : assignment_units(requests)) {
    const std::vector<double> demand = demand_of(requests, unit);
    const std::size_t p = route(demand, window, load, no_exclusions);
    if (p == kNoProvider) {
      continue;  // market-aware rounds retry the members standalone
    }
    add_load(p, demand);
    slice[p].insert(slice[p].end(), unit.begin(), unit.end());
  }
  for (std::vector<std::uint32_t>& members : slice) {
    std::sort(members.begin(), members.end());
  }

  // Per-provider seeds drawn up front in provider order, so reassignment
  // rounds can never shift another provider's stream.
  Rng rng(seed);
  std::vector<std::uint64_t> provider_seed(providers);
  for (std::size_t p = 0; p < providers; ++p) {
    provider_seed[p] = rng.next_u64();
  }

  // Solve one provider's current slice; the result's placement is
  // index-parallel with slice[p].
  const auto solve = [&](std::size_t p) {
    if (slice[p].empty()) {
      result.per_cloud[p] = AllocationResult{};
      return;
    }
    RequestSet sliced;
    sliced.vms.reserve(slice[p].size());
    std::vector<std::int32_t> local_of(n, -1);
    for (const std::uint32_t g : slice[p]) {
      local_of[g] = static_cast<std::int32_t>(sliced.vms.size());
      sliced.vms.push_back(requests.vms[g]);
    }
    // Constraints whose members survive in this slice (>= 2), remapped —
    // members redirected to other clouds dissolve from their group,
    // mirroring the retry-queue semantics.
    for (const PlacementConstraint& c : requests.constraints) {
      std::vector<std::uint32_t> members;
      for (const std::uint32_t g : c.vms) {
        if (local_of[g] >= 0) {
          members.push_back(static_cast<std::uint32_t>(local_of[g]));
        }
      }
      if (members.size() >= 2) {
        sliced.constraints.push_back({c.kind, std::move(members)});
      }
    }
    Instance instance(market_->provider(p).infrastructure(),
                      std::move(sliced));
    result.per_cloud[p] =
        backend(p).allocate(instance, provider_seed[p]);
  };

  for (std::size_t p = 0; p < providers; ++p) {
    solve(p);
  }

  // Market-aware reassignment: rejected VMs re-enter the broker as
  // standalone units, cheapest-first among the clouds they have not
  // tried, and receiving slices are re-solved.
  std::vector<std::vector<char>> tried(n, std::vector<char>(providers, 0));
  std::vector<std::size_t> redirect_count(n, 0);
  const std::size_t rounds =
      config_.mode == BrokerMode::kMarketAware ? config_.reassignment_rounds
                                               : 0;

  const auto collect_rejects = [&](std::size_t p,
                                   std::vector<std::uint32_t>& pending) {
    const AllocationResult& r = result.per_cloud[p];
    std::vector<std::uint32_t> kept;
    for (std::size_t k = 0; k < slice[p].size(); ++k) {
      const std::uint32_t g = slice[p][k];
      if (r.placement.is_assigned(k)) {
        kept.push_back(g);
      } else {
        tried[g][p] = 1;
        pending.push_back(g);
      }
    }
    slice[p] = std::move(kept);
  };

  // Prune every slice to its accepted members (so the final mapping can
  // mark whole slices assigned); the rejects feed the reassignment
  // rounds in market-aware mode and stay rejected otherwise.
  std::vector<std::uint32_t> pending;
  for (std::size_t p = 0; p < providers; ++p) {
    collect_rejects(p, pending);
  }
  std::sort(pending.begin(), pending.end());
  for (std::size_t round = 0; round < rounds && !pending.empty(); ++round) {
    std::vector<char> changed(providers, 0);
    for (const std::uint32_t g : pending) {
      if (redirect_count[g] >= config_.max_redirects) {
        continue;  // redirect budget spent: permanently rejected
      }
      const std::vector<double> demand = demand_of(requests, {g});
      const std::size_t p = route(demand, window, load, tried[g]);
      if (p == kNoProvider) {
        continue;
      }
      add_load(p, demand);
      slice[p].insert(
          std::lower_bound(slice[p].begin(), slice[p].end(), g), g);
      tried[g][p] = 1;
      ++redirect_count[g];
      ++result.redirects;
      changed[p] = 1;
    }
    pending.clear();
    for (std::size_t p = 0; p < providers; ++p) {
      if (changed[p] != 0) {
        solve(p);
        collect_rejects(p, pending);
      }
    }
    std::sort(pending.begin(), pending.end());
  }

  // Final accounting: provider mapping, price-scaled cost roll-up.
  for (std::size_t p = 0; p < providers; ++p) {
    AllocationResult& r = result.per_cloud[p];
    const double multiplier =
        market_->provider(p).price_multiplier(window);
    r.objectives.usage_cost *= multiplier;
    for (std::size_t k = 0; k < slice[p].size(); ++k) {
      result.provider_of_vm[slice[p][k]] = static_cast<std::int32_t>(p);
    }
    result.total.usage_cost += r.objectives.usage_cost;
    result.total.downtime_cost += r.objectives.downtime_cost;
    result.total.migration_cost += r.objectives.migration_cost;
  }
  for (const std::int32_t p : result.provider_of_vm) {
    result.rejected += p == BrokerResult::kRejectedProvider ? 1 : 0;
  }
  return result;
}

}  // namespace iaas
