// Multi-provider time-window simulator: the single-cloud CloudSimulator
// loop lifted over a CloudMarket, with a BrokerAllocator deciding which
// cloud serves each request.
//
// Each window: the market's provider lifecycle ticks (scripted + random
// whole-cloud outages, recoveries), every provider's own FaultModel
// ticks, VMs hosted on a cloud that went dark are evicted into the
// *broker-level* retry queue (they re-enter through broker routing, not
// the original cloud), departures thin the fleet, queued rejects whose
// backoff elapsed plus a fresh arrival batch are routed — whole
// relationship groups at a time — to the cheapest feasible online
// provider, and each provider's backend allocator re-solves its slice
// with its previous placement as the migration baseline.
//
// Cross-cloud moves are priced asymmetrically: a VM landing on a
// provider other than its last host pays Eq. 26's migration cost times
// the *origin's* egress multiplier (data leaves the cheap cloud at the
// expensive cloud's gate), accumulated in
// WindowMetrics::cross_cloud_migration_cost.  Every redirection draws
// down the per-VM budget BrokerConfig::max_redirects; a VM that spends
// it — e.g. an orphan of a decommissioned provider nothing else can
// host — is permanently rejected instead of circulating forever.
//
// Determinism: every random draw flows from the run seed in a fixed
// order (market construction, departures in provider-then-VM order, the
// arrival batch, then one backend seed per provider per window whether
// or not the provider solves), so fingerprints are bit-identical across
// thread counts and telemetry build modes.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "broker/broker.h"
#include "broker/market.h"
#include "sim/retry_queue.h"
#include "sim/simulator.h"
#include "workload/scenario_config.h"

namespace iaas {

struct MultiCloudSimConfig {
  std::size_t windows = 10;
  double arrivals_per_window_mean = 20.0;  // Poisson arrivals
  double departure_probability = 0.10;     // per running VM per window
  // Periodic explicit schedule overriding the Poisson arrivals (same
  // semantics as SimConfig::arrival_schedule).
  std::vector<std::size_t> arrival_schedule;
  CloudMarketConfig market;
  BrokerConfig broker;
  RetryPolicy retry;
  // Shape of the consumer request batches (attribute_count must match
  // the providers'; server-side fields are ignored — each provider's
  // own scenario shapes its infrastructure).
  ScenarioConfig request_shape;
  // Persist each provider's final EA front across windows and feed it
  // back as seeds for that provider's next solve (satellite of the
  // warm-start ablation; no-op for non-EA backends).
  bool warm_start_front = false;
};

class MultiCloudSimulator {
 public:
  explicit MultiCloudSimulator(MultiCloudSimConfig config);

  // Run the full horizon; one metrics row per window, with the
  // per-provider columns (WindowMetrics::providers) populated.
  std::vector<WindowMetrics> run(std::uint64_t seed);

  // Per-window observer, as CloudSimulator::set_window_sink: streaming
  // trace writers receive each finished row before the next window runs.
  void set_window_sink(std::function<void(const WindowMetrics&)> sink) {
    window_sink_ = std::move(sink);
  }

  [[nodiscard]] const MultiCloudSimConfig& config() const {
    return config_;
  }

 private:
  MultiCloudSimConfig config_;
  std::function<void(const WindowMetrics&)> window_sink_;
};

}  // namespace iaas
