#include "broker/multicloud_sim.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "algo/heuristics.h"
#include "common/expect.h"
#include "common/stopwatch.h"
#include "sim/reconfiguration_plan.h"

namespace iaas {
namespace {

// Drop the entries of `v` whose keep flag is 0, preserving order (the
// per-VM side-array companion of compact_requests).
template <typename T>
void compact_parallel(std::vector<T>& v, const std::vector<char>& keep) {
  std::size_t out = 0;
  for (std::size_t k = 0; k < v.size(); ++k) {
    if (keep[k] != 0) {
      v[out++] = std::move(v[k]);
    }
  }
  v.resize(out);
}

// Everything the simulator tracks about one provider's slice of the
// fleet, index-parallel across all vectors.
struct ProviderState {
  RequestSet live;
  Placement placement{0};
  std::vector<std::size_t> attempts;   // failed placements per VM
  std::vector<std::size_t> redirects;  // cross-cloud hops per VM
  // warm_start_front: the backend's last exported front, kept aligned
  // with `live` through the same compactions/appends.
  std::vector<std::vector<std::int32_t>> front;

  void compact(const std::vector<char>& keep) {
    compact_requests(live, placement, keep);
    compact_parallel(attempts, keep);
    compact_parallel(redirects, keep);
    for (std::vector<std::int32_t>& genes : front) {
      compact_parallel(genes, keep);
    }
  }

  void append(VmRequest vm, std::size_t vm_attempts,
              std::size_t vm_redirects) {
    live.vms.push_back(std::move(vm));
    placement.genes().push_back(Placement::kRejected);
    attempts.push_back(vm_attempts);
    redirects.push_back(vm_redirects);
    for (std::vector<std::int32_t>& genes : front) {
      genes.push_back(Placement::kRejected);
    }
  }

  void clear() {
    live = RequestSet{};
    placement = Placement(0);
    attempts.clear();
    redirects.clear();
    front.clear();
  }
};

// One unit awaiting routing this window: a whole fresh relationship
// group, or a single retried/reshopped VM (groups dissolve on failure,
// mirroring the single-cloud retry queue).
struct PoolUnit {
  std::vector<VmRequest> vms;
  std::vector<PlacementConstraint> constraints;  // local to `vms`
  std::size_t attempts = 0;
  std::size_t redirects = 0;
  std::int32_t home = -1;  // last host; -1 = fresh arrival
};

std::vector<double> unit_demand(const PoolUnit& unit) {
  std::vector<double> demand;
  for (const VmRequest& vm : unit.vms) {
    if (demand.size() < vm.demand.size()) {
      demand.resize(vm.demand.size(), 0.0);
    }
    for (std::size_t l = 0; l < vm.demand.size(); ++l) {
      demand[l] += vm.demand[l];
    }
  }
  return demand;
}

}  // namespace

MultiCloudSimulator::MultiCloudSimulator(MultiCloudSimConfig config)
    : config_(std::move(config)) {
  const std::vector<std::string> findings = validate_market(config_.market);
  for (const std::string& finding : findings) {
    IAAS_EXPECT(false, finding.c_str());
  }
}

std::vector<WindowMetrics> MultiCloudSimulator::run(std::uint64_t seed) {
  Rng rng(seed);
  CloudMarket market(config_.market, rng.next_u64());
  BrokerAllocator broker(market, config_.broker);
  const std::size_t providers = market.provider_count();

  // Request batches are provider-agnostic; provider 0's fleet merely
  // bounds same-server group sizes to something satisfiable.
  const ScenarioGenerator request_gen(config_.request_shape);
  const Infrastructure& group_bound_infra =
      market.provider(0).infrastructure();
  RetryQueue retries(config_.retry);
  FirstFitDecreasingAllocator fallback;

  std::vector<ProviderState> state(providers);

  std::vector<WindowMetrics> metrics;
  metrics.reserve(config_.windows);

  for (std::size_t w = 0; w < config_.windows; ++w) {
    WindowMetrics row;
    row.window = w;
    row.providers.resize(providers);

    // 1. Provider lifecycle (whole-cloud outages/recoveries), then each
    // cloud's own server-granularity fault tick — MTTR clocks never
    // pause, dark cloud or not.
    (void)market.advance(w);
    row.offline_providers = providers - market.online_count();
    for (std::size_t p = 0; p < providers; ++p) {
      CloudProvider& provider = market.provider(p);
      ProviderWindowMetrics& prow = row.providers[p];
      prow.provider = static_cast<std::uint32_t>(p);
      prow.online = provider.online();
      prow.price_multiplier = provider.price_multiplier(w);
      const std::vector<FaultEvent> events = provider.faults().advance(w);
      for (const FaultEvent& e : events) {
        if (e.kind == FaultEventKind::kRepair) {
          ++row.repaired_servers;
        }
      }
      prow.failed_servers = provider.faults().down_count();
      row.failed_servers += prow.failed_servers;
      row.decommissioned_servers += provider.faults().decommissioned_count();
    }

    // 2. A cloud that went dark loses its whole slice: every hosted VM
    // is evicted into the broker-level retry queue and will re-enter
    // through routing — never the original cloud directly.
    for (std::size_t p = 0; p < providers; ++p) {
      if (market.provider(p).online() || state[p].live.vms.empty()) {
        continue;
      }
      ProviderWindowMetrics& prow = row.providers[p];
      for (std::size_t k = 0; k < state[p].live.vms.size(); ++k) {
        ++row.evicted;
        ++prow.evicted;
        if (!retries.offer(std::move(state[p].live.vms[k]),
                           state[p].attempts[k] + 1, w,
                           state[p].redirects[k],
                           static_cast<std::int32_t>(p))) {
          ++row.permanently_rejected;
        }
      }
      state[p].clear();
    }

    // 3. Departures, provider order then VM order (fixed draw sequence).
    if (config_.departure_probability > 0.0) {
      for (std::size_t p = 0; p < providers; ++p) {
        if (state[p].live.vms.empty()) {
          continue;
        }
        std::vector<char> keep(state[p].live.vms.size(), 1);
        std::size_t departed = 0;
        for (std::size_t k = 0; k < keep.size(); ++k) {
          if (rng.bernoulli(config_.departure_probability)) {
            keep[k] = 0;
            ++departed;
          }
        }
        if (departed > 0) {
          state[p].compact(keep);
          row.departed += departed;
        }
      }
    }

    // 4. Routing pool: queued rejects whose backoff elapsed first (FIFO
    // fairness), then this window's fresh arrival batch, whole
    // relationship groups at a time.
    std::vector<PoolUnit> pool;
    for (RetryEntry& entry : retries.pop_due(w)) {
      PoolUnit unit;
      unit.vms.push_back(std::move(entry.vm));
      unit.attempts = entry.attempts;
      unit.redirects = entry.redirects;
      unit.home = entry.home_provider;
      pool.push_back(std::move(unit));
      ++row.retried;
    }

    std::size_t arrivals = 0;
    if (!config_.arrival_schedule.empty()) {
      arrivals = config_.arrival_schedule[w % config_.arrival_schedule.size()];
    } else {
      arrivals = poisson_sample(config_.arrivals_per_window_mean, rng);
    }
    row.arrived = arrivals;
    if (arrivals > 0) {
      RequestSet batch = request_gen.generate_requests(
          group_bound_infra, static_cast<std::uint32_t>(arrivals),
          rng.next_u64());
      for (const std::vector<std::uint32_t>& members :
           assignment_units(batch)) {
        PoolUnit unit;
        std::vector<std::int32_t> local_of(batch.vms.size(), -1);
        for (const std::uint32_t g : members) {
          local_of[g] = static_cast<std::int32_t>(unit.vms.size());
          unit.vms.push_back(batch.vms[g]);
        }
        for (const PlacementConstraint& c : batch.constraints) {
          std::vector<std::uint32_t> local;
          for (const std::uint32_t g : c.vms) {
            if (local_of[g] >= 0) {
              local.push_back(static_cast<std::uint32_t>(local_of[g]));
            }
          }
          if (local.size() >= 2) {
            unit.constraints.push_back({c.kind, std::move(local)});
          }
        }
        pool.push_back(std::move(unit));
      }
    }

    // Projected per-provider load behind the routing headroom check:
    // what each cloud already hosts, updated as units land.
    std::vector<std::vector<double>> load(providers);
    for (std::size_t p = 0; p < providers; ++p) {
      load[p].assign(
          market.provider(p).infrastructure().attribute_count(), 0.0);
      for (const VmRequest& vm : state[p].live.vms) {
        for (std::size_t l = 0;
             l < vm.demand.size() && l < load[p].size(); ++l) {
          load[p][l] += vm.demand[l];
        }
      }
    }
    const auto add_load = [&load](std::size_t p,
                                  const std::vector<double>& demand) {
      for (std::size_t l = 0;
           l < demand.size() && l < load[p].size(); ++l) {
        load[p][l] += demand[l];
      }
    };
    const auto sub_load = [&load](std::size_t p,
                                  const std::vector<double>& demand) {
      for (std::size_t l = 0;
           l < demand.size() && l < load[p].size(); ++l) {
        load[p][l] -= demand[l];
      }
    };

    // 5. Reshop (market-aware only): clouds charging more than
    // reshop_threshold x the cheapest online multiplier shed up to
    // reshop_max_vms_per_window group-free VMs with redirect budget
    // left, each moved only if some *other* cloud can take it now.
    if (config_.broker.mode == BrokerMode::kMarketAware) {
      const double cheapest = market.cheapest_multiplier(w);
      for (std::size_t p = 0; p < providers; ++p) {
        const CloudProvider& provider = market.provider(p);
        if (!provider.online() || state[p].live.vms.empty() ||
            provider.price_multiplier(w) <=
                cheapest * config_.broker.reshop_threshold) {
          continue;
        }
        std::vector<char> grouped(state[p].live.vms.size(), 0);
        for (const PlacementConstraint& c : state[p].live.constraints) {
          for (const std::uint32_t k : c.vms) {
            grouped[k] = 1;
          }
        }
        std::vector<char> keep(state[p].live.vms.size(), 1);
        std::vector<char> exclude(providers, 0);
        exclude[p] = 1;  // reshopping back home would be a placement reset
        std::size_t moved = 0;
        for (std::size_t k = 0; k < state[p].live.vms.size() &&
                                moved < config_.broker.reshop_max_vms_per_window;
             ++k) {
          if (grouped[k] != 0 ||
              state[p].redirects[k] >= config_.broker.max_redirects) {
            continue;
          }
          const VmRequest& vm = state[p].live.vms[k];
          const std::size_t target =
              broker.route(vm.demand, w, load, exclude);
          if (target == BrokerAllocator::kNoProvider) {
            continue;
          }
          add_load(target, vm.demand);
          sub_load(p, vm.demand);
          PoolUnit unit;
          unit.vms.push_back(vm);
          unit.attempts = state[p].attempts[k];
          unit.redirects = state[p].redirects[k];
          unit.home = static_cast<std::int32_t>(p);
          pool.push_back(std::move(unit));
          keep[k] = 0;
          ++moved;
        }
        if (moved > 0) {
          state[p].compact(keep);
        }
      }
    }

    // 6. Route the pool.  Landing on a cloud other than the unit's last
    // host consumes redirect budget and pays Eq. 26 x the origin's
    // egress multiplier per VM; a unit whose budget is spent may only
    // return home — and is permanently rejected if home has left the
    // market for good.
    for (PoolUnit& unit : pool) {
      const bool budget_spent =
          unit.redirects >= config_.broker.max_redirects;
      std::vector<char> exclude;
      if (budget_spent && unit.home >= 0) {
        const auto home = static_cast<std::size_t>(unit.home);
        if (market.provider(home).decommissioned()) {
          row.permanently_rejected += unit.vms.size();
          continue;  // orphan of a dead cloud: stop circulating
        }
        exclude.assign(providers, 1);
        exclude[home] = 0;
      }
      const std::size_t target =
          broker.route(unit_demand(unit), w, load, exclude);
      if (target == BrokerAllocator::kNoProvider) {
        // Nowhere fits this window: back to the queue (groups dissolve),
        // the attempt budget bounding the loop.
        for (VmRequest& vm : unit.vms) {
          if (!retries.offer(std::move(vm), unit.attempts + 1, w,
                             unit.redirects, unit.home)) {
            ++row.permanently_rejected;
          }
        }
        continue;
      }
      const bool redirected =
          unit.home >= 0 && static_cast<std::size_t>(unit.home) != target;
      std::size_t unit_redirects = unit.redirects;
      if (redirected) {
        ++unit_redirects;
        const double egress =
            market.provider(static_cast<std::size_t>(unit.home))
                .pricing()
                .egress_migration_multiplier;
        for (const VmRequest& vm : unit.vms) {
          row.cross_cloud_migration_cost += vm.migration_cost * egress;
          ++row.redirects;
          ++row.providers[target].redirects_in;
        }
      }
      add_load(target, unit_demand(unit));
      const auto offset =
          static_cast<std::uint32_t>(state[target].live.vms.size());
      for (VmRequest& vm : unit.vms) {
        state[target].append(std::move(vm), unit.attempts, unit_redirects);
        ++row.providers[target].routed;
      }
      for (PlacementConstraint& c : unit.constraints) {
        for (std::uint32_t& k : c.vms) {
          k += offset;
        }
        state[target].live.constraints.push_back(std::move(c));
      }
    }

    // 7. Per-cloud solves.  One backend seed per provider per window,
    // drawn up front in provider order whether or not the provider has
    // work — load changes can never shift another cloud's stream.
    std::vector<std::uint64_t> provider_seed(providers);
    for (std::size_t p = 0; p < providers; ++p) {
      provider_seed[p] = rng.next_u64();
    }

    Stopwatch timer;
    for (std::size_t p = 0; p < providers; ++p) {
      if (state[p].live.vms.empty()) {
        continue;
      }
      ProviderWindowMetrics& prow = row.providers[p];
      const CloudProvider& provider = market.provider(p);

      // Down servers keep their identity but lose their capacity, so the
      // backend is forced to evacuate them (pricing Eq. 26 per save).
      const FaultModel& faults = market.provider(p).faults();
      Infrastructure window_infra = provider.infrastructure();
      if (faults.down_count() > 0) {
        std::vector<Server> servers = provider.infrastructure().servers();
        for (std::size_t j = 0; j < servers.size(); ++j) {
          if (faults.is_down(static_cast<std::uint32_t>(j))) {
            for (double& f : servers[j].factor) {
              f = 1e-9;
            }
          }
        }
        window_infra = Infrastructure(
            provider.infrastructure().fabric().config(), std::move(servers));
      }

      Instance instance(std::move(window_infra), state[p].live);
      instance.previous = state[p].placement;

      Allocator& backend = broker.backend(p);
      if (config_.warm_start_front) {
        backend.seed_next_run(state[p].front);
      }
      AllocationResult result;
      try {
        result = backend.allocate(instance, provider_seed[p]);
      } catch (const std::exception&) {
        result = fallback.allocate(instance, provider_seed[p]);
        row.degrade = DegradeLevel::kFallback;
        row.fallback_algorithm = fallback.name();
      }
      if (config_.warm_start_front && !result.front_genes.empty()) {
        state[p].front = std::move(result.front_genes);
      }

      const ReconfigurationPlan plan =
          make_plan(instance, state[p].placement, result.placement);
      prow.migrations = plan.migrations();
      prow.migration_cost = plan.migration_cost();
      prow.rejected = result.rejected;
      prow.objectives = result.objectives;
      prow.objectives.usage_cost *= prow.price_multiplier;
      row.boots += plan.boots();
      row.migrations += plan.migrations();
      row.migration_cost += plan.migration_cost();
      row.rejected += result.rejected;
      row.objectives.usage_cost += prow.objectives.usage_cost;
      row.objectives.downtime_cost += prow.objectives.downtime_cost;
      row.objectives.migration_cost += prow.objectives.migration_cost;

      // Rejected VMs leave this cloud — back through the broker while
      // their attempt budget lasts (the next window may route them to a
      // cheaper or emptier cloud).
      state[p].placement = result.placement;
      std::vector<char> keep(state[p].live.vms.size(), 1);
      bool any_drop = false;
      for (std::size_t k = 0; k < state[p].live.vms.size(); ++k) {
        if (state[p].placement.is_assigned(k)) {
          continue;
        }
        keep[k] = 0;
        any_drop = true;
        if (instance.previous.is_assigned(k)) {
          ++row.evicted;
          ++prow.evicted;
        }
        if (!retries.offer(state[p].live.vms[k], state[p].attempts[k] + 1,
                           w, state[p].redirects[k],
                           static_cast<std::int32_t>(p))) {
          ++row.permanently_rejected;
        }
      }
      if (any_drop) {
        state[p].compact(keep);
      }
      prow.running = state[p].live.vms.size();
      row.running += prow.running;
    }
    row.solve_seconds = timer.elapsed_seconds();
    row.retry_queue_depth = retries.size();
    metrics.push_back(row);
    if (window_sink_) {
      window_sink_(metrics.back());
    }
  }
  return metrics;
}

}  // namespace iaas
