// BrokerAllocator: partitions a request set across the clouds of a
// CloudMarket and runs a per-cloud backend allocator on each slice.
//
// Routing is greedy cheapest-feasible: assignment units (the transitive
// closure of each relationship group — a group is never split across
// clouds, so every Eq. 9-12 constraint stays locally checkable) are
// offered to online providers in ascending effective-price order, the
// first one whose projected utilisation stays under the headroom cap
// taking the unit.  The market-aware mode additionally runs
// `reassignment_rounds` of in-window redirection: VMs a backend rejects
// are re-routed (as standalone units) to the other clouds,
// cheapest-first, and the receiving slices are re-solved — the
// iterative rejected/expensive reassignment loop of the multi-cloud
// brokering literature.
//
// The per-cloud backend is any registered allocator (algo/registry), so
// the paper's NSGA-III+tabu — or the CP baseline, or first-fit — can
// serve each cloud unchanged.  One backend instance is kept per
// provider, which is what lets EA backends carry warm-start fronts
// across windows in the multi-cloud simulator.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "algo/registry.h"
#include "broker/market.h"
#include "model/assignment_units.h"
#include "model/request_set.h"

namespace iaas {

enum class BrokerMode : std::uint8_t {
  kCheapestFeasible,  // route once; rejects stay rejected
  kMarketAware,       // + in-window reassignment of rejected VMs
};

const char* broker_mode_name(BrokerMode mode);

struct BrokerConfig {
  BrokerMode mode = BrokerMode::kCheapestFeasible;
  // Per-cloud backend, built through algo/registry.
  AlgorithmId backend = AlgorithmId::kFirstFitDecreasing;
  SuiteOptions suite;
  // Market-aware: rounds of offering rejected VMs to the other clouds
  // within the same allocation (each round re-solves receiving slices).
  std::size_t reassignment_rounds = 2;
  // Cross-cloud redirect budget per VM (outages, rejections, reshops):
  // a VM redirected more than this many times is permanently rejected —
  // the bound that keeps an orphan of a decommissioned cloud from
  // circulating forever.
  std::size_t max_redirects = 3;
  // Routing feasibility: a provider can take a unit while its projected
  // per-attribute utilisation stays under this fraction of effective
  // capacity.
  double capacity_headroom = 0.9;
  // Reshop (multi-cloud simulator, market-aware only): when a
  // provider's price multiplier exceeds the cheapest online one by this
  // factor, up to reshop_max_vms_per_window group-free VMs are pulled
  // off it and re-brokered, paying the cross-cloud egress bill.
  double reshop_threshold = 1.5;
  std::size_t reshop_max_vms_per_window = 8;
};

// One brokered allocation over a fresh request set.
struct BrokerResult {
  // Index-parallel with the market's providers; empty slice results have
  // vm_count 0.  Objectives inside are already price-scaled (Eq. 22
  // term x the provider's effective multiplier for the window).
  std::vector<AllocationResult> per_cloud;
  // Provider index per VM of the input request set; kRejectedProvider
  // for VMs no cloud accepted.
  static constexpr std::int32_t kRejectedProvider = -1;
  std::vector<std::int32_t> provider_of_vm;

  ObjectiveVector total;  // price-scaled sum over clouds
  std::size_t vm_count = 0;
  std::size_t rejected = 0;
  std::size_t redirects = 0;  // cross-cloud reassignments performed

  [[nodiscard]] double rejection_rate() const {
    return vm_count == 0 ? 0.0
                         : static_cast<double>(rejected) /
                               static_cast<double>(vm_count);
  }
  [[nodiscard]] double acceptance_rate() const {
    return 1.0 - rejection_rate();
  }
};

// assignment_units (the unit closure the router operates on) moved to
// model/assignment_units.h so the sharded allocator shares it; the
// include above keeps it visible to existing broker callers.

class BrokerAllocator {
 public:
  static constexpr std::size_t kNoProvider = static_cast<std::size_t>(-1);

  // `market` must outlive the broker.
  BrokerAllocator(CloudMarket& market, BrokerConfig config);

  // One-shot brokered allocation of a fresh request set (no previous
  // placements; the multi-cloud simulator drives windowed allocation
  // through route()/backend() directly).  Deterministic per seed.
  BrokerResult allocate(const RequestSet& requests, std::size_t window,
                        std::uint64_t seed);

  // Routing primitive: cheapest online provider (by effective price
  // multiplier at `window`, provider order breaking ties) that can take
  // `unit_demand` (summed per attribute) while `projected_load[p][l] +
  // demand <= headroom x effective capacity`; `exclude[p]` skips
  // providers already tried.  kNoProvider when nothing fits.
  [[nodiscard]] std::size_t route(const std::vector<double>& unit_demand,
                                  std::size_t window,
                                  const std::vector<std::vector<double>>&
                                      projected_load,
                                  const std::vector<char>& exclude) const;

  // The per-provider backend allocator (built lazily from the registry;
  // one instance per provider, kept across calls).
  Allocator& backend(std::size_t provider);

  [[nodiscard]] const BrokerConfig& config() const { return config_; }
  [[nodiscard]] CloudMarket& market() { return *market_; }

  // Summed per-attribute demand of a set of VMs.
  static std::vector<double> demand_of(const RequestSet& requests,
                                       const std::vector<std::uint32_t>& vms);

 private:
  CloudMarket* market_;
  BrokerConfig config_;
  std::vector<std::unique_ptr<Allocator>> backends_;
};

}  // namespace iaas
