// The N-provider market model that lifts the paper's single-provider
// stack to a multi-cloud setting (ROADMAP: multi-cloud brokering and
// market scenarios; López-Pires et al., arXiv 2001.02561; Zhao et al.,
// arXiv 1308.0841).
//
// Each CloudProvider wraps its own Infrastructure + Fabric (generated
// from a per-provider ScenarioConfig), a pricing model layered on the
// Eq. 22/23/26 cost split (on-demand / reserved base multipliers, an
// optional spot price series, scripted price shocks, and an egress
// multiplier that prices cross-cloud moves asymmetrically on top of
// Eq. 26), an availability class, and a PR-5 FaultModel for
// server/rack-granularity failures inside the cloud.  The CloudMarket
// owns the providers plus the provider-granularity outage script: a
// market-level correlated fault takes an entire cloud dark at once —
// every hosted VM is evicted and re-enters through the broker, not the
// original cloud.
//
// Config validation is fail-loud in the model/validate idiom: a findings
// vector for inspection (validate_market) and an IAAS_EXPECT in the
// CloudMarket constructor; each generated provider infrastructure is
// additionally screened through model/validate's validate_instance.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/expect.h"
#include "common/rng.h"
#include "model/infrastructure.h"
#include "sim/fault_model.h"
#include "workload/market_events.h"
#include "workload/scenario_config.h"

namespace iaas {

// Billing model selecting the base multiplier applied to a provider's
// Eq. 22 usage+opex bill.
enum class BillingModel : std::uint8_t {
  kOnDemand,  // flat on_demand_multiplier
  kReserved,  // discounted reserved_multiplier (capacity paid up front)
  kSpot,      // on_demand_multiplier x per-window spot series
};

const char* billing_model_name(BillingModel billing);

// Outage-rate presets keyed by marketing tier; merged into a provider's
// FaultConfig when the provider does not script its own rates, and
// driving the market-level random provider-outage draw.
enum class AvailabilityClass : std::uint8_t {
  kGold,    // no random outages
  kSilver,  // rare rack faults, very rare provider blackouts
  kBronze,  // frequent rack faults, occasional provider blackouts
};

const char* availability_class_name(AvailabilityClass availability);

struct AvailabilityParams {
  double leaf_failure_probability = 0.0;      // per rack per window
  double provider_outage_probability = 0.0;   // whole cloud, per window
  std::size_t outage_mttr_windows = 1;
};

AvailabilityParams availability_defaults(AvailabilityClass availability);

struct ProviderPricing {
  BillingModel billing = BillingModel::kOnDemand;
  double on_demand_multiplier = 1.0;  // scales Eq. 22 (usage + opex)
  double reserved_multiplier = 0.7;   // kReserved base
  SpotPriceSeries spot;               // kSpot: per-window factor, wraps
  std::vector<PriceShock> shocks;     // scripted market shocks
  // Cross-cloud migration-cost asymmetry: moving a VM *out* of this
  // provider costs M_k x this factor on top of Eq. 26 (data egress).
  double egress_migration_multiplier = 2.0;

  // Effective Eq. 22 multiplier at `window`: billing base x spot series
  // (kSpot only) x active shocks.
  [[nodiscard]] double price_multiplier(std::size_t window) const;
};

struct ProviderConfig {
  std::string id;            // unique market-wide name
  ScenarioConfig scenario;   // this provider's infrastructure shape
  ProviderPricing pricing;
  AvailabilityClass availability = AvailabilityClass::kGold;
  // Intra-cloud fault rates; zero-rate fields inherit the availability
  // class defaults (scripted entries are kept either way).
  FaultConfig faults;
};

struct CloudMarketConfig {
  std::vector<ProviderConfig> providers;
  // Scripted provider-granularity outages (workload/market_events).
  std::vector<ProviderOutageScript> outages;

  [[nodiscard]] std::size_t provider_count() const {
    return providers.size();
  }
};

// Fail-loud validation findings (empty = clean): empty provider list,
// duplicate/empty provider ids, non-positive price multipliers, bad
// spot/shock values, attribute-count mismatches, out-of-range outage
// scripts.  The CloudMarket constructor refuses any config with
// findings.
std::vector<std::string> validate_market(const CloudMarketConfig& config);

// Market-level provider lifecycle events (the provider-granularity
// mirror of FaultEvent).
enum class MarketEventKind : std::uint8_t {
  kProviderOutage,        // cloud dark for mttr_windows
  kProviderRecovery,      // cloud back online
  kProviderDecommission,  // cloud left the market permanently
};

const char* market_event_kind_name(MarketEventKind kind);

struct MarketEvent {
  std::size_t window = 0;
  MarketEventKind kind = MarketEventKind::kProviderOutage;
  std::uint32_t provider = 0;
  std::size_t mttr_windows = 0;  // outages only; 0 = permanent

  friend bool operator==(const MarketEvent&, const MarketEvent&) = default;
};

// One cloud of the market: infrastructure + fault model + pricing.
class CloudProvider {
 public:
  CloudProvider(ProviderConfig config, Infrastructure infrastructure,
                std::uint64_t fault_seed);

  [[nodiscard]] const std::string& id() const { return config_.id; }
  [[nodiscard]] const ProviderConfig& config() const { return config_; }
  [[nodiscard]] const Infrastructure& infrastructure() const {
    return infrastructure_;
  }
  [[nodiscard]] const ProviderPricing& pricing() const {
    return config_.pricing;
  }
  [[nodiscard]] FaultModel& faults() { return faults_; }

  [[nodiscard]] bool online() const { return online_ && !decommissioned_; }
  [[nodiscard]] bool decommissioned() const { return decommissioned_; }

  [[nodiscard]] double price_multiplier(std::size_t window) const {
    return config_.pricing.price_multiplier(window);
  }

 private:
  friend class CloudMarket;

  ProviderConfig config_;
  Infrastructure infrastructure_;
  FaultModel faults_;
  bool online_ = true;
  bool decommissioned_ = false;
  std::size_t recovery_window_ = 0;  // first window online again (+1 offset)
};

// The provider set plus the market-level outage lifecycle.  All
// randomness (infrastructure generation, per-provider fault streams,
// availability-class outage draws) flows from the constructor seed, so
// identical (config, seed) pairs replay identical markets.
class CloudMarket {
 public:
  CloudMarket(CloudMarketConfig config, std::uint64_t seed);

  [[nodiscard]] std::size_t provider_count() const {
    return providers_.size();
  }
  [[nodiscard]] CloudProvider& provider(std::size_t p) {
    IAAS_EXPECT(p < providers_.size(), "provider index out of range");
    return providers_[p];
  }
  [[nodiscard]] const CloudProvider& provider(std::size_t p) const {
    IAAS_EXPECT(p < providers_.size(), "provider index out of range");
    return providers_[p];
  }

  [[nodiscard]] std::size_t online_count() const;

  // One window tick of the provider lifecycle: recoveries due this
  // window first, then scripted outages, then random availability-class
  // outages — deterministic order, mirroring FaultModel::advance.  The
  // per-provider FaultModels are NOT advanced here (the simulator owns
  // that, per provider, so server- and provider-granularity histories
  // stay independently seeded).
  std::vector<MarketEvent> advance(std::size_t window);

  // Cheapest effective multiplier among online providers this window
  // (+infinity when the whole market is dark).
  [[nodiscard]] double cheapest_multiplier(std::size_t window) const;

  [[nodiscard]] const CloudMarketConfig& config() const { return config_; }

 private:
  bool take_down(std::uint32_t p, std::size_t window, std::size_t duration,
                 bool decommission, std::vector<MarketEvent>& events);

  CloudMarketConfig config_;
  std::vector<CloudProvider> providers_;
  Rng outage_rng_;
};

}  // namespace iaas
