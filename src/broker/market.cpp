#include "broker/market.h"

#include <limits>
#include <unordered_set>
#include <utility>

#include "common/expect.h"
#include "model/request_set.h"
#include "model/validate.h"
#include "workload/generator.h"

namespace iaas {

const char* billing_model_name(BillingModel billing) {
  switch (billing) {
    case BillingModel::kOnDemand:
      return "on-demand";
    case BillingModel::kReserved:
      return "reserved";
    case BillingModel::kSpot:
      return "spot";
  }
  return "unknown";
}

const char* availability_class_name(AvailabilityClass availability) {
  switch (availability) {
    case AvailabilityClass::kGold:
      return "gold";
    case AvailabilityClass::kSilver:
      return "silver";
    case AvailabilityClass::kBronze:
      return "bronze";
  }
  return "unknown";
}

AvailabilityParams availability_defaults(AvailabilityClass availability) {
  switch (availability) {
    case AvailabilityClass::kGold:
      return {0.0, 0.0, 1};
    case AvailabilityClass::kSilver:
      return {0.01, 0.002, 1};
    case AvailabilityClass::kBronze:
      return {0.03, 0.01, 2};
  }
  return {};
}

double ProviderPricing::price_multiplier(std::size_t window) const {
  double base = on_demand_multiplier;
  if (billing == BillingModel::kReserved) {
    base = reserved_multiplier;
  } else if (billing == BillingModel::kSpot) {
    base = on_demand_multiplier * spot.at(window);
  }
  return base * shock_factor(shocks, window);
}

std::vector<std::string> validate_market(const CloudMarketConfig& config) {
  std::vector<std::string> findings;
  const auto add = [&findings](const std::string& finding) {
    findings.push_back("market: " + finding);
  };

  if (config.providers.empty()) {
    add("provider list is empty");
    return findings;
  }

  std::unordered_set<std::string> ids;
  const std::size_t attributes =
      config.providers.front().scenario.attribute_count;
  for (std::size_t p = 0; p < config.providers.size(); ++p) {
    const ProviderConfig& provider = config.providers[p];
    const std::string where = "provider[" + std::to_string(p) + "]";
    if (provider.id.empty()) {
      add(where + " has an empty id");
    } else if (!ids.insert(provider.id).second) {
      add(where + " duplicates id '" + provider.id + "'");
    }
    const ProviderPricing& pricing = provider.pricing;
    if (pricing.on_demand_multiplier <= 0.0) {
      add(where + " on_demand_multiplier must be positive");
    }
    if (pricing.reserved_multiplier <= 0.0) {
      add(where + " reserved_multiplier must be positive");
    }
    if (pricing.egress_migration_multiplier < 0.0) {
      add(where + " egress_migration_multiplier must be non-negative");
    }
    for (double multiplier : pricing.spot.multipliers) {
      if (multiplier <= 0.0) {
        add(where + " spot series contains a non-positive multiplier");
        break;
      }
    }
    for (const PriceShock& shock : pricing.shocks) {
      if (shock.factor <= 0.0) {
        add(where + " price shock factor must be positive");
      }
      if (shock.duration == 0) {
        add(where + " price shock duration must be at least one window");
      }
    }
    if (provider.scenario.total_servers == 0) {
      add(where + " has no servers");
    }
    if (provider.scenario.attribute_count != attributes) {
      add(where + " attribute_count differs from provider[0] — all "
                  "clouds must price the same resource vector");
    }
  }
  for (const ProviderOutageScript& outage : config.outages) {
    if (outage.provider >= config.providers.size()) {
      add("outage script references provider " +
          std::to_string(outage.provider) + " beyond the market");
    }
    if (outage.duration == 0 && !outage.decommission) {
      add("outage duration must be at least one window (or decommission)");
    }
  }
  return findings;
}

const char* market_event_kind_name(MarketEventKind kind) {
  switch (kind) {
    case MarketEventKind::kProviderOutage:
      return "provider-outage";
    case MarketEventKind::kProviderRecovery:
      return "provider-recovery";
    case MarketEventKind::kProviderDecommission:
      return "provider-decommission";
  }
  return "unknown";
}

CloudProvider::CloudProvider(ProviderConfig config,
                             Infrastructure infrastructure,
                             std::uint64_t fault_seed)
    : config_(std::move(config)),
      infrastructure_(std::move(infrastructure)),
      faults_(
          [this] {
            // Inherit availability-class fault rates where the provider
            // config stayed at zero (scripted faults are kept verbatim).
            FaultConfig faults = config_.faults;
            const AvailabilityParams defaults =
                availability_defaults(config_.availability);
            if (faults.leaf_failure_probability == 0.0) {
              faults.leaf_failure_probability =
                  defaults.leaf_failure_probability;
            }
            return faults;
          }(),
          infrastructure_.fabric(), fault_seed) {}

CloudMarket::CloudMarket(CloudMarketConfig config, std::uint64_t seed)
    : config_(std::move(config)), outage_rng_(seed ^ 0x6d61726b6574ULL) {
  const std::vector<std::string> findings = validate_market(config_);
  for (const std::string& finding : findings) {
    IAAS_EXPECT(false, finding.c_str());
  }

  Rng rng(seed);
  providers_.reserve(config_.providers.size());
  for (const ProviderConfig& provider_config : config_.providers) {
    // One independent stream per provider, drawn in list order: adding a
    // provider at the end never reshuffles existing infrastructures.
    const std::uint64_t infra_seed = rng.next_u64();
    const std::uint64_t fault_seed = rng.next_u64();
    const ScenarioGenerator generator(provider_config.scenario);
    Infrastructure infra = generator.generate_infrastructure(infra_seed);
    // Screen the generated fleet through model/validate (NaN and
    // satisfiability screens) with an empty request set — a provider
    // whose infrastructure cannot host anything is a config error.
    const Instance screen(infra, RequestSet{});
    const std::vector<std::string> screen_findings =
        validate_instance(screen);
    for (const std::string& finding : screen_findings) {
      const std::string message =
          "market provider '" + provider_config.id + "': " + finding;
      IAAS_EXPECT(false, message.c_str());
    }
    providers_.emplace_back(provider_config, std::move(infra), fault_seed);
  }
}

std::size_t CloudMarket::online_count() const {
  std::size_t n = 0;
  for (const CloudProvider& provider : providers_) {
    n += provider.online() ? 1 : 0;
  }
  return n;
}

bool CloudMarket::take_down(std::uint32_t p, std::size_t window,
                            std::size_t duration, bool decommission,
                            std::vector<MarketEvent>& events) {
  CloudProvider& provider = providers_[p];
  if (!provider.online()) {
    return false;  // already dark: no double event
  }
  provider.online_ = false;
  MarketEvent event;
  event.window = window;
  event.provider = p;
  if (decommission) {
    provider.decommissioned_ = true;
    event.kind = MarketEventKind::kProviderDecommission;
    event.mttr_windows = 0;
  } else {
    provider.recovery_window_ = window + duration + 1;  // +1: window 0 usable
    event.kind = MarketEventKind::kProviderOutage;
    event.mttr_windows = duration;
  }
  events.push_back(event);
  return true;
}

std::vector<MarketEvent> CloudMarket::advance(std::size_t window) {
  std::vector<MarketEvent> events;

  // Recoveries first: a provider can come back and fail again in the
  // same window (a fresh event), mirroring FaultModel::advance.
  for (std::uint32_t p = 0; p < providers_.size(); ++p) {
    CloudProvider& provider = providers_[p];
    if (!provider.online_ && !provider.decommissioned_ &&
        provider.recovery_window_ != 0 &&
        provider.recovery_window_ <= window + 1) {
      provider.online_ = true;
      provider.recovery_window_ = 0;
      MarketEvent event;
      event.window = window;
      event.kind = MarketEventKind::kProviderRecovery;
      event.provider = p;
      events.push_back(event);
    }
  }

  // Scripted outages next, in script order.
  for (const ProviderOutageScript& outage : config_.outages) {
    if (outage.window == window) {
      take_down(outage.provider, window, outage.duration,
                outage.decommission, events);
    }
  }

  // Random availability-class outages last, in provider order.  Every
  // eligible provider consumes exactly one draw per window whether or
  // not it fails, so one provider's history never shifts another's.
  for (std::uint32_t p = 0; p < providers_.size(); ++p) {
    const AvailabilityParams defaults =
        availability_defaults(providers_[p].config_.availability);
    if (defaults.provider_outage_probability <= 0.0) {
      continue;
    }
    const bool hit = outage_rng_.bernoulli(
        defaults.provider_outage_probability);
    if (hit) {
      take_down(p, window, defaults.outage_mttr_windows,
                /*decommission=*/false, events);
    }
  }
  return events;
}

double CloudMarket::cheapest_multiplier(std::size_t window) const {
  double cheapest = std::numeric_limits<double>::infinity();
  for (const CloudProvider& provider : providers_) {
    if (provider.online()) {
      cheapest = std::min(cheapest, provider.price_multiplier(window));
    }
  }
  return cheapest;
}

}  // namespace iaas
