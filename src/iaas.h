// Umbrella header: the library's full public API in one include.
//
//   #include "iaas.h"
//
// Layered bottom-up: common utilities -> topology -> cloud model ->
// workload generation -> solvers (LP/CP, EA, tabu) -> allocators ->
// simulation -> serialisation.
#pragma once

// Common substrate.
#include "common/csv.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "common/thread_pool.h"

// Spine-leaf datacenter fabric (paper Fig. 1).
#include "topology/fabric.h"

// Cloud resource model (paper Table I, Eqs. 1-26).
#include "model/attributes.h"
#include "model/availability.h"
#include "model/constraint_checker.h"
#include "model/infrastructure.h"
#include "model/instance.h"
#include "model/load_model.h"
#include "model/objectives.h"
#include "model/placement.h"
#include "model/placement_constraint.h"
#include "model/request_set.h"
#include "model/server.h"
#include "model/validate.h"
#include "model/vm_request.h"

// Random scenario generation + arrival traces.
#include "workload/generator.h"
#include "workload/scenario_config.h"
#include "workload/trace.h"

// Integer-programming formulation, CP solver, LP relaxation.
#include "lp/cp_solver.h"
#include "lp/lin_expr.h"
#include "lp/lin_model.h"
#include "lp/simplex.h"

// Evolutionary framework (NSGA-II / NSGA-III).
#include "ea/archive.h"
#include "ea/hypervolume.h"
#include "ea/individual.h"
#include "ea/nondominated_sort.h"
#include "ea/nsga2.h"
#include "ea/nsga3.h"
#include "ea/nsga_config.h"
#include "ea/operators.h"
#include "ea/problem.h"
#include "ea/reference_points.h"

// Tabu search (repair operator + standalone improvement).
#include "tabu/repair.h"
#include "tabu/tabu_list.h"
#include "tabu/tabu_search.h"

// Allocation algorithms.
#include "algo/allocator.h"
#include "algo/cp_allocator.h"
#include "algo/cp_repair.h"
#include "algo/filtering.h"
#include "algo/heuristics.h"
#include "algo/ideal_point.h"
#include "algo/metrics.h"
#include "algo/nsga_allocators.h"
#include "algo/registry.h"
#include "algo/round_robin.h"

// Cyclic time-window simulation.
#include "sim/reconfiguration_plan.h"
#include "sim/simulator.h"

// Scenario / result files + the request DSL.
#include "io/json.h"
#include "io/request_dsl.h"
#include "io/serialize.h"
