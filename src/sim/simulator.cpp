#include "sim/simulator.h"

#include <cmath>
#include <cstring>
#include <deque>
#include <exception>
#include <utility>

#include "algo/heuristics.h"
#include "common/expect.h"
#include "common/stopwatch.h"
#include "model/assignment_units.h"

namespace iaas {
namespace {

// Knuth's Poisson sampler.  Only valid while exp(-mean) stays a normal
// double — the caller chunks larger means.
std::size_t poisson_knuth(double mean, Rng& rng) {
  const double limit = std::exp(-mean);
  std::size_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng.next_double();
  } while (p > limit);
  return k - 1;
}

// Drop the entries of `v` whose keep flag is 0, preserving order — the
// companion of compact_requests for per-VM side arrays.
template <typename T>
void compact_parallel(std::vector<T>& v, const std::vector<char>& keep) {
  std::size_t out = 0;
  for (std::size_t k = 0; k < v.size(); ++k) {
    if (keep[k] != 0) {
      v[out++] = std::move(v[k]);
    }
  }
  v.resize(out);
}

// --- deterministic fingerprint (FNV-1a, order-sensitive) ---

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_u64(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffULL;
    h *= kFnvPrime;
  }
}

void fnv_f64(std::uint64_t& h, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  fnv_u64(h, bits);
}

void fnv_str(std::uint64_t& h, const std::string& s) {
  fnv_u64(h, s.size());
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
}

}  // namespace

std::size_t poisson_sample(double mean, Rng& rng) {
  if (mean <= 0.0) {
    return 0;
  }
  // exp(-mean) underflows to 0 for mean > ~745, after which Knuth's loop
  // only terminates when the running product itself underflows — the
  // result is distribution garbage, not Poisson.  Split the mean into
  // <= 500 chunks instead: a sum of independent Poisson(m_i) draws is
  // Poisson(sum m_i), and exp(-500) ~ 7e-218 is comfortably normal.
  constexpr double kChunk = 500.0;
  std::size_t total = 0;
  while (mean > kChunk) {
    total += poisson_knuth(kChunk, rng);
    mean -= kChunk;
  }
  return total + poisson_knuth(mean, rng);
}

// Remove the VMs with keep[k] == 0 from the set + placement, remapping
// relationship-group indices (groups shrinking below two members vanish).
void compact_requests(RequestSet& requests, Placement& placement,
                      const std::vector<char>& keep) {
  std::vector<std::uint32_t> remap(requests.vms.size(), 0);
  std::vector<VmRequest> vms;
  std::vector<std::int32_t> genes;
  for (std::size_t k = 0; k < requests.vms.size(); ++k) {
    if (keep[k] == 0) {
      continue;
    }
    remap[k] = static_cast<std::uint32_t>(vms.size());
    vms.push_back(std::move(requests.vms[k]));
    genes.push_back(placement.server_of(k));
  }
  std::vector<PlacementConstraint> constraints;
  for (PlacementConstraint& c : requests.constraints) {
    std::vector<std::uint32_t> members;
    for (std::uint32_t k : c.vms) {
      if (keep[k] != 0) {
        members.push_back(remap[k]);
      }
    }
    if (members.size() >= 2) {
      constraints.push_back({c.kind, std::move(members)});
    }
  }
  requests.vms = std::move(vms);
  requests.constraints = std::move(constraints);
  placement = Placement(std::move(genes));
}

std::size_t window_arrivals(const SimConfig& config, std::size_t window,
                            Rng& rng) {
  if (!config.arrival_schedule.empty()) {
    return config.arrival_schedule[window % config.arrival_schedule.size()];
  }
  return poisson_sample(config.arrivals_per_window_mean, rng);
}

const char* degrade_level_name(DegradeLevel level) {
  switch (level) {
    case DegradeLevel::kNone:
      return "none";
    case DegradeLevel::kBestEffort:
      return "best_effort";
    case DegradeLevel::kFallback:
      return "fallback";
  }
  return "unknown";
}

SimSummary summarize(const std::vector<WindowMetrics>& metrics) {
  SimSummary s;
  for (const WindowMetrics& row : metrics) {
    s.fault_events += row.fault_events.size();
    s.evicted += row.evicted;
    s.retried += row.retried;
    s.permanently_rejected += row.permanently_rejected;
    s.degraded_windows += row.degrade != DegradeLevel::kNone ? 1 : 0;
    s.displaced_vms += row.displaced_vms;
    s.migration_cost += row.migration_cost;
    s.downtime_cost += row.objectives.downtime_cost;
    s.redirects += row.redirects;
    s.cross_cloud_migration_cost += row.cross_cloud_migration_cost;
    s.admission_deferred += row.admission_deferred;
    s.admission_dropped += row.admission_dropped;
  }
  return s;
}

std::uint64_t deterministic_fingerprint(
    const std::vector<WindowMetrics>& metrics) {
  std::uint64_t h = kFnvOffset;
  fnv_u64(h, metrics.size());
  for (const WindowMetrics& row : metrics) {
    fnv_u64(h, row.window);
    fnv_u64(h, row.arrived);
    fnv_u64(h, row.departed);
    fnv_u64(h, row.running);
    fnv_u64(h, row.rejected);
    fnv_u64(h, row.boots);
    fnv_u64(h, row.migrations);
    fnv_f64(h, row.migration_cost);
    fnv_u64(h, row.failed_servers);
    fnv_u64(h, row.repaired_servers);
    fnv_u64(h, row.decommissioned_servers);
    fnv_u64(h, row.displaced_vms);
    fnv_u64(h, row.vms_on_down_servers);
    for (const FaultEvent& e : row.fault_events) {
      fnv_u64(h, e.window);
      fnv_u64(h, static_cast<std::uint64_t>(e.kind));
      fnv_u64(h, e.index);
      fnv_u64(h, e.servers.size());
      for (std::uint32_t s : e.servers) {
        fnv_u64(h, s);
      }
      fnv_u64(h, e.mttr_windows);
    }
    fnv_u64(h, row.evicted);
    fnv_u64(h, row.retried);
    fnv_u64(h, row.permanently_rejected);
    fnv_u64(h, row.retry_queue_depth);
    // Multi-cloud columns.  The provider count is hashed even when zero,
    // so "no market" and "a market of silent providers" stay distinct.
    fnv_u64(h, row.providers.size());
    for (const ProviderWindowMetrics& p : row.providers) {
      fnv_u64(h, p.provider);
      fnv_u64(h, p.online ? 1 : 0);
      fnv_f64(h, p.price_multiplier);
      fnv_u64(h, p.running);
      fnv_u64(h, p.routed);
      fnv_u64(h, p.rejected);
      fnv_u64(h, p.evicted);
      fnv_u64(h, p.redirects_in);
      fnv_u64(h, p.failed_servers);
      fnv_u64(h, p.migrations);
      fnv_f64(h, p.migration_cost);
      fnv_f64(h, p.objectives.usage_cost);
      fnv_f64(h, p.objectives.downtime_cost);
      fnv_f64(h, p.objectives.migration_cost);
    }
    fnv_u64(h, row.redirects);
    fnv_u64(h, row.offline_providers);
    fnv_f64(h, row.cross_cloud_migration_cost);
    fnv_u64(h, row.admitted);
    fnv_u64(h, row.admission_deferred);
    fnv_u64(h, row.admission_dropped);
    fnv_u64(h, row.admission_queue_depth);
    fnv_u64(h, row.shard.shard_count);
    fnv_u64(h, row.shard.pre_rejections);
    fnv_u64(h, row.shard.rebalance_placements);
    fnv_u64(h, row.shard.migrations);
    fnv_u64(h, row.shard.max_shard_vms);
    fnv_u64(h, row.shard.min_shard_vms);
    // Fairness block: the consumer count is hashed unconditionally (like
    // providers.size()) so "absent" and "present but idle" differ.
    fnv_u64(h, row.fairness.consumers);
    if (row.fairness.consumers != 0) {
      fnv_u64(h, row.fairness.strategic_consumers);
      fnv_u64(h, row.fairness.strategic_vms);
      fnv_f64(h, row.fairness.jain_index);
      fnv_f64(h, row.fairness.long_term_jain);
      fnv_f64(h, row.fairness.envy);
      fnv_f64(h, row.fairness.utilization_efficiency);
      fnv_f64(h, row.fairness.honest_welfare);
      fnv_f64(h, row.fairness.strategic_welfare);
      fnv_f64(h, row.fairness.energy_cost);
    }
    fnv_u64(h, static_cast<std::uint64_t>(row.degrade));
    fnv_str(h, row.fallback_algorithm);
    fnv_f64(h, row.objectives.usage_cost);
    fnv_f64(h, row.objectives.downtime_cost);
    fnv_f64(h, row.objectives.migration_cost);
    // Trace: only the columns every build mode and thread count agrees
    // on.  The per-generation counter columns (delta moves, repairs,
    // tabu tallies) are zero in IAAS_TELEMETRY=OFF builds and the
    // seconds columns are wall-clock — both excluded by design.
    fnv_u64(h, row.allocator_trace.rows.size());
    for (const telemetry::GenerationRow& g : row.allocator_trace.rows) {
      fnv_u64(h, g.generation);
      fnv_u64(h, g.evaluations);
      fnv_u64(h, g.front_size);
      fnv_f64(h, g.best_objectives[0]);
      fnv_f64(h, g.best_objectives[1]);
      fnv_f64(h, g.best_objectives[2]);
    }
  }
  return h;
}

CloudSimulator::CloudSimulator(SimConfig config,
                               std::unique_ptr<Allocator> allocator,
                               std::unique_ptr<Allocator> fallback)
    : config_(std::move(config)),
      allocator_(std::move(allocator)),
      fallback_(std::move(fallback)) {
  IAAS_EXPECT(allocator_ != nullptr, "simulator needs an allocator");
}

Allocator& CloudSimulator::fallback_allocator() {
  if (fallback_ == nullptr) {
    fallback_ = std::make_unique<FirstFitDecreasingAllocator>();
  }
  return *fallback_;
}

std::vector<WindowMetrics> CloudSimulator::run(std::uint64_t seed) {
  Rng rng(seed);
  ScenarioGenerator generator(config_.scenario);
  const Infrastructure infra = generator.generate_infrastructure(seed);

  // Legacy transient-failure shorthand: fold the flat per-server rate
  // into the lifecycle model (MTTR defaults keep it a one-window outage).
  FaultConfig fault_config = config_.faults;
  if (fault_config.server_failure_probability == 0.0 &&
      config_.server_failure_probability > 0.0) {
    fault_config.server_failure_probability =
        config_.server_failure_probability;
  }
  // The fault model owns an independent stream so enabling/disabling
  // telemetry or reordering allocator draws can never shift its history.
  FaultModel fault_model(fault_config, infra.fabric(), rng.next_u64());
  RetryQueue retries(config_.retry);

  if (config_.allocator_deadline_seconds > 0.0) {
    allocator_->set_time_budget(config_.allocator_deadline_seconds);
  }

  RequestSet live;        // every VM that should be running
  Placement live_placement(0);
  // Failed placement attempts consumed by each live VM (index-parallel
  // with live.vms; fresh arrivals start at 0, retried VMs carry theirs).
  std::vector<std::size_t> attempts;
  // warm_start_front: the previous window's final front, each gene
  // vector kept index-parallel with live.vms through the same
  // compactions/appends as the live placement.
  std::vector<std::vector<std::int32_t>> carried_front;
  // Admission backlog (max_admissions_per_window > 0): whole relationship
  // units waiting to enter the live set, FIFO in arrival order.  A unit's
  // constraints are stored with unit-local indices and remapped when the
  // unit is admitted.
  struct AdmissionUnit {
    std::vector<VmRequest> vms;
    std::vector<PlacementConstraint> constraints;
  };
  std::deque<AdmissionUnit> admission_queue;
  std::size_t admission_backlog = 0;  // VMs across admission_queue
  const auto compact_front = [&carried_front](const std::vector<char>& keep) {
    for (std::vector<std::int32_t>& genes : carried_front) {
      compact_parallel(genes, keep);
    }
  };
  const auto extend_front = [&carried_front](std::size_t count) {
    for (std::vector<std::int32_t>& genes : carried_front) {
      genes.insert(genes.end(), count, Placement::kRejected);
    }
  };

  // Long-term fairness: per-consumer served shares summed over the whole
  // horizon so far (index = consumer id).  Only consumers that have
  // appeared in some window participate in the long-term Jain index.
  const bool track_fairness = config_.scenario.consumers > 0;
  std::vector<double> cumulative_share(
      track_fairness ? config_.scenario.consumers : 0, 0.0);
  std::vector<char> consumer_seen(
      track_fairness ? config_.scenario.consumers : 0, 0);

  std::vector<WindowMetrics> metrics;
  metrics.reserve(config_.windows);

  for (std::size_t w = 0; w < config_.windows; ++w) {
    telemetry::CounterBlock window_counters;
    telemetry::ScopedSink sink(window_counters);
    telemetry::ScopedPhaseTimer window_phase(telemetry::Phase::kSimWindow);

    WindowMetrics row;
    row.window = w;

    // Fault lifecycle first — repairs and outages tick on every window,
    // including empty ones (an MTTR clock does not pause for idle load).
    row.fault_events = fault_model.advance(w);
    for (const FaultEvent& e : row.fault_events) {
      if (e.kind == FaultEventKind::kRepair) {
        ++row.repaired_servers;
      }
    }
    telemetry::count(telemetry::Counter::kSimFaultEvents,
                     row.fault_events.size());
    row.failed_servers = fault_model.down_count();
    row.decommissioned_servers = fault_model.decommissioned_count();

    // Departures among currently running VMs.
    if (!live.vms.empty() && config_.departure_probability > 0.0) {
      std::vector<char> keep(live.vms.size(), 1);
      for (std::size_t k = 0; k < live.vms.size(); ++k) {
        if (rng.bernoulli(config_.departure_probability)) {
          keep[k] = 0;
          ++row.departed;
        }
      }
      if (row.departed > 0) {
        compact_requests(live, live_placement, keep);
        compact_parallel(attempts, keep);
        compact_front(keep);
      }
    }

    // Queued rejects whose backoff elapsed re-enter ahead of the fresh
    // batch (FIFO fairness: the oldest failure gets the first slot).
    // They re-enter standalone — their relationship groups dissolved
    // when they were compacted out.
    for (RetryEntry& entry : retries.pop_due(w)) {
      live.vms.push_back(std::move(entry.vm));
      live_placement.genes().push_back(Placement::kRejected);
      attempts.push_back(entry.attempts);
      extend_front(1);
      ++row.retried;
    }
    telemetry::count(telemetry::Counter::kSimRetries, row.retried);

    // Arrivals: a fresh batch with its own relationship groups, counted
    // either by the explicit schedule (trace-driven) or Poisson.
    const std::size_t arrivals = window_arrivals(config_, w, rng);
    row.arrived = arrivals;
    const auto append_request_set = [&](RequestSet&& set) {
      const auto offset = static_cast<std::uint32_t>(live.vms.size());
      const std::size_t count = set.vms.size();
      for (VmRequest& vm : set.vms) {
        live.vms.push_back(std::move(vm));
        live_placement.genes().push_back(Placement::kRejected);
        attempts.push_back(0);
      }
      extend_front(count);
      for (PlacementConstraint& c : set.constraints) {
        for (std::uint32_t& k : c.vms) {
          k += offset;
        }
        live.constraints.push_back(std::move(c));
      }
    };
    if (config_.max_admissions_per_window == 0) {
      if (arrivals > 0) {
        append_request_set(generator.generate_requests(
            infra, static_cast<std::uint32_t>(arrivals), rng.next_u64()));
      }
    } else {
      // Admission control: the batch enters the FIFO backlog as whole
      // relationship units (a unit is never split across windows), then
      // at most max_admissions_per_window VMs move into the live set.
      // An oversized unit is admitted alone from the queue front, so
      // nothing can starve.
      const std::size_t backlog_before = admission_backlog;
      std::size_t enqueued = 0;
      if (arrivals > 0) {
        RequestSet batch = generator.generate_requests(
            infra, static_cast<std::uint32_t>(arrivals), rng.next_u64());
        const std::vector<std::vector<std::uint32_t>> units =
            assignment_units(batch);
        // accepted[u] indexes the AdmissionUnit a batch unit became;
        // local_of remaps batch VM indices into their unit.
        std::vector<std::int32_t> accepted(units.size(), -1);
        std::vector<std::uint32_t> local_of(batch.vms.size(), 0);
        std::vector<std::int32_t> unit_of(batch.vms.size(), -1);
        std::vector<AdmissionUnit> fresh;
        for (std::size_t u = 0; u < units.size(); ++u) {
          if (config_.admission_queue_limit > 0 &&
              admission_backlog + units[u].size() >
                  config_.admission_queue_limit) {
            row.admission_dropped += units[u].size();
            continue;
          }
          accepted[u] = static_cast<std::int32_t>(fresh.size());
          AdmissionUnit& pending = fresh.emplace_back();
          pending.vms.reserve(units[u].size());
          for (const std::uint32_t k : units[u]) {
            unit_of[k] = static_cast<std::int32_t>(u);
            local_of[k] = static_cast<std::uint32_t>(pending.vms.size());
            pending.vms.push_back(std::move(batch.vms[k]));
          }
          admission_backlog += units[u].size();
          enqueued += units[u].size();
        }
        // Units are constraint-closed, so each constraint belongs
        // entirely to one unit (dropped units shed their constraints).
        for (PlacementConstraint& c : batch.constraints) {
          const std::int32_t u = unit_of[c.vms.front()];
          if (u < 0) {
            continue;
          }
          for (std::uint32_t& k : c.vms) {
            k = local_of[k];
          }
          const auto slot = static_cast<std::size_t>(
              accepted[static_cast<std::size_t>(u)]);
          fresh[slot].constraints.push_back(std::move(c));
        }
        for (AdmissionUnit& pending : fresh) {
          admission_queue.push_back(std::move(pending));
        }
      }
      std::size_t admitted = 0;
      while (!admission_queue.empty()) {
        const std::size_t unit_size = admission_queue.front().vms.size();
        if (admitted != 0 &&
            admitted + unit_size > config_.max_admissions_per_window) {
          break;
        }
        AdmissionUnit unit = std::move(admission_queue.front());
        admission_queue.pop_front();
        admission_backlog -= unit_size;
        RequestSet set;
        set.vms = std::move(unit.vms);
        set.constraints = std::move(unit.constraints);
        append_request_set(std::move(set));
        admitted += unit_size;
      }
      row.admitted = admitted;
      // FIFO: older backlog admits first, so the part of this window's
      // batch that did not make it in was deferred.
      const std::size_t admitted_from_new =
          admitted > backlog_before ? admitted - backlog_before : 0;
      row.admission_deferred = enqueued - admitted_from_new;
      telemetry::count(telemetry::Counter::kSimAdmissionDeferrals,
                       row.admission_deferred);
      telemetry::count(telemetry::Counter::kSimAdmissionDrops,
                       row.admission_dropped);
    }
    row.admission_queue_depth = admission_backlog;

    if (live.vms.empty()) {
      row.retry_queue_depth = retries.size();
      metrics.push_back(row);
      if (window_sink_) {
        window_sink_(metrics.back());
      }
      if (!window_counters.empty()) {
        telemetry::Registry::global().flush_counters(window_counters);
      }
      continue;
    }

    // Down servers keep their identity but lose their capacity for this
    // window, so the allocator is forced to evacuate them (and pays
    // Eq. 26 for every displaced VM it saves).
    Infrastructure window_infra = infra;
    if (fault_model.down_count() > 0) {
      std::vector<Server> servers = infra.servers();
      for (std::size_t j = 0; j < servers.size(); ++j) {
        if (fault_model.is_down(static_cast<std::uint32_t>(j))) {
          for (double& f : servers[j].factor) {
            f = 1e-9;  // effective capacity ~ 0: nothing can stay
          }
        }
      }
      window_infra =
          Infrastructure(infra.fabric().config(), std::move(servers));
      for (std::size_t k = 0; k < live.vms.size(); ++k) {
        if (live_placement.is_assigned(k) &&
            fault_model.is_down(static_cast<std::uint32_t>(
                live_placement.server_of(k)))) {
          ++row.displaced_vms;
        }
      }
    }

    // One allocation round over everything that should be running.
    Instance instance(std::move(window_infra), live);
    instance.previous = live_placement;

    // Drawn before the attempt so primary and fallback see the same
    // seed whether or not the primary completes.
    const std::uint64_t window_seed = rng.next_u64();

    // Hand the carried front to the allocator (EA family consumes it and
    // arms front export; others decline — the copy keeps our carry
    // intact in case the window degrades to the fallback).
    if (config_.warm_start_front) {
      allocator_->seed_next_run(carried_front);
    }

    Stopwatch timer;
    AllocationResult result;
    bool primary_failed = false;
    try {
      telemetry::ScopedPhaseTimer phase(telemetry::Phase::kAllocate);
      result = allocator_->allocate(instance, window_seed);
    } catch (const std::exception&) {
      // The primary blew up mid-window (the paper's algorithms share an
      // engine, but a pluggable Allocator is arbitrary code).  The
      // window is served by the greedy fallback instead of stalling the
      // horizon.  (IAAS_EXPECT aborts the process by design and is not
      // recoverable here.)
      primary_failed = true;
    }
    const double primary_seconds = timer.elapsed_seconds();
    const bool hard_overrun =
        !primary_failed && config_.allocator_deadline_seconds > 0.0 &&
        config_.deadline_hard_factor > 0.0 &&
        primary_seconds > config_.allocator_deadline_seconds *
                              config_.deadline_hard_factor;
    if (primary_failed || hard_overrun) {
      telemetry::ScopedPhaseTimer phase(telemetry::Phase::kFallbackAllocate);
      result = fallback_allocator().allocate(instance, window_seed);
      row.degrade = DegradeLevel::kFallback;
      row.fallback_algorithm = fallback_allocator().name();
    } else if (result.deadline_hit) {
      // Anytime truncation: the EA stopped at a generation boundary and
      // handed over its best front so far.
      row.degrade = DegradeLevel::kBestEffort;
    }
    if (row.degrade != DegradeLevel::kNone) {
      telemetry::count(telemetry::Counter::kSimDegradedWindows);
    }
    row.solve_seconds = timer.elapsed_seconds();
    // Per-window decision trace of the allocator (empty unless the
    // allocator collects one — see NsgaConfig::collect_trace).
    row.allocator_trace = std::move(result.trace);
    if (!row.allocator_trace.empty()) {
      row.allocator_trace.label += " w" + std::to_string(w);
    }
    if (config_.warm_start_front && !result.front_genes.empty()) {
      // Adopt the fresh front (aligned with this window's instance); a
      // degraded window exports none and the previous carry — still
      // aligned — survives.
      carried_front = std::move(result.front_genes);
    }

    const ReconfigurationPlan plan =
        make_plan(instance, live_placement, result.placement);
    row.boots = plan.boots();
    row.migrations = plan.migrations();
    row.migration_cost = plan.migration_cost();
    row.rejected = result.rejected;
    row.objectives = result.objectives;
    row.shard = result.shard;

    // Fairness/welfare columns, scored on the full window instance (so
    // rejected VMs count against their consumer) before compaction.
    if (track_fairness) {
      const FairnessReport fair =
          compute_fairness(instance, result.placement, config_.fairness);
      row.fairness.consumers = fair.consumers.size();
      row.fairness.strategic_consumers = fair.strategic_consumers;
      row.fairness.strategic_vms = fair.strategic_vms;
      row.fairness.jain_index = fair.jain;
      row.fairness.envy = fair.envy;
      row.fairness.utilization_efficiency = fair.utilization_efficiency;
      row.fairness.honest_welfare = fair.honest_welfare;
      row.fairness.strategic_welfare = fair.strategic_welfare;
      row.fairness.energy_cost = fair.energy_cost;
      std::vector<double> long_term;
      for (const ConsumerShare& share : fair.consumers) {
        cumulative_share[share.consumer] += share.served;
        consumer_seen[share.consumer] = 1;
      }
      for (std::size_t c = 0; c < cumulative_share.size(); ++c) {
        if (consumer_seen[c]) {
          long_term.push_back(cumulative_share[c]);
        }
      }
      row.fairness.long_term_jain = jain_index(long_term);
    }

    // Apply: rejected VMs leave the platform — into the retry queue
    // while their attempt budget lasts, permanently otherwise.  A VM
    // that was running last window counts as evicted.
    live_placement = result.placement;
    std::vector<char> keep(live.vms.size(), 1);
    bool any_drop = false;
    for (std::size_t k = 0; k < live.vms.size(); ++k) {
      if (live_placement.is_assigned(k)) {
        continue;
      }
      keep[k] = 0;
      any_drop = true;
      if (instance.previous.is_assigned(k)) {
        ++row.evicted;
      }
      if (!retries.offer(live.vms[k], attempts[k] + 1, w)) {
        ++row.permanently_rejected;
      }
    }
    telemetry::count(telemetry::Counter::kSimEvictions, row.evicted);
    telemetry::count(telemetry::Counter::kSimPermanentRejections,
                     row.permanently_rejected);
    if (any_drop) {
      compact_requests(live, live_placement, keep);
      compact_parallel(attempts, keep);
      compact_front(keep);
    }
    row.running = live.vms.size();
    row.retry_queue_depth = retries.size();
    // The degradation contract: whatever served the window, nothing may
    // be left hosted on a dead server.
    for (std::size_t k = 0; k < live.vms.size(); ++k) {
      if (fault_model.is_down(
              static_cast<std::uint32_t>(live_placement.server_of(k)))) {
        ++row.vms_on_down_servers;
      }
    }
    metrics.push_back(row);
    if (window_sink_) {
      window_sink_(metrics.back());
    }
    if (!window_counters.empty()) {
      telemetry::Registry::global().flush_counters(window_counters);
    }
  }
  return metrics;
}

}  // namespace iaas
