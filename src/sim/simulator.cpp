#include "sim/simulator.h"

#include <cmath>
#include <utility>

#include "common/expect.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/telemetry.h"

namespace iaas {
namespace {

// Knuth's Poisson sampler.  Only valid while exp(-mean) stays a normal
// double — the caller chunks larger means.
std::size_t poisson_knuth(double mean, Rng& rng) {
  const double limit = std::exp(-mean);
  std::size_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng.next_double();
  } while (p > limit);
  return k - 1;
}

}  // namespace

std::size_t poisson_sample(double mean, Rng& rng) {
  if (mean <= 0.0) {
    return 0;
  }
  // exp(-mean) underflows to 0 for mean > ~745, after which Knuth's loop
  // only terminates when the running product itself underflows — the
  // result is distribution garbage, not Poisson.  Split the mean into
  // <= 500 chunks instead: a sum of independent Poisson(m_i) draws is
  // Poisson(sum m_i), and exp(-500) ~ 7e-218 is comfortably normal.
  constexpr double kChunk = 500.0;
  std::size_t total = 0;
  while (mean > kChunk) {
    total += poisson_knuth(kChunk, rng);
    mean -= kChunk;
  }
  return total + poisson_knuth(mean, rng);
}

// Remove the VMs with keep[k] == 0 from the set + placement, remapping
// relationship-group indices (groups shrinking below two members vanish).
void compact_requests(RequestSet& requests, Placement& placement,
                      const std::vector<char>& keep) {
  std::vector<std::uint32_t> remap(requests.vms.size(), 0);
  std::vector<VmRequest> vms;
  std::vector<std::int32_t> genes;
  for (std::size_t k = 0; k < requests.vms.size(); ++k) {
    if (keep[k] == 0) {
      continue;
    }
    remap[k] = static_cast<std::uint32_t>(vms.size());
    vms.push_back(std::move(requests.vms[k]));
    genes.push_back(placement.server_of(k));
  }
  std::vector<PlacementConstraint> constraints;
  for (PlacementConstraint& c : requests.constraints) {
    std::vector<std::uint32_t> members;
    for (std::uint32_t k : c.vms) {
      if (keep[k] != 0) {
        members.push_back(remap[k]);
      }
    }
    if (members.size() >= 2) {
      constraints.push_back({c.kind, std::move(members)});
    }
  }
  requests.vms = std::move(vms);
  requests.constraints = std::move(constraints);
  placement = Placement(std::move(genes));
}

CloudSimulator::CloudSimulator(SimConfig config,
                               std::unique_ptr<Allocator> allocator)
    : config_(config), allocator_(std::move(allocator)) {
  IAAS_EXPECT(allocator_ != nullptr, "simulator needs an allocator");
}

std::vector<WindowMetrics> CloudSimulator::run(std::uint64_t seed) {
  Rng rng(seed);
  ScenarioGenerator generator(config_.scenario);
  const Infrastructure infra = generator.generate_infrastructure(seed);

  RequestSet live;        // every VM that should be running
  Placement live_placement(0);

  std::vector<WindowMetrics> metrics;
  metrics.reserve(config_.windows);

  for (std::size_t w = 0; w < config_.windows; ++w) {
    WindowMetrics row;
    row.window = w;

    // Departures among currently running VMs.
    if (!live.vms.empty() && config_.departure_probability > 0.0) {
      std::vector<char> keep(live.vms.size(), 1);
      for (std::size_t k = 0; k < live.vms.size(); ++k) {
        if (rng.bernoulli(config_.departure_probability)) {
          keep[k] = 0;
          ++row.departed;
        }
      }
      if (row.departed > 0) {
        compact_requests(live, live_placement, keep);
      }
    }

    // Arrivals: a fresh batch with its own relationship groups, counted
    // either by the explicit schedule (trace-driven) or Poisson.
    const std::size_t arrivals =
        config_.arrival_schedule.empty()
            ? poisson_sample(config_.arrivals_per_window_mean, rng)
            : config_.arrival_schedule[w % config_.arrival_schedule.size()];
    row.arrived = arrivals;
    if (arrivals > 0) {
      RequestSet batch = generator.generate_requests(
          infra, static_cast<std::uint32_t>(arrivals), rng.next_u64());
      const auto offset = static_cast<std::uint32_t>(live.vms.size());
      for (VmRequest& vm : batch.vms) {
        live.vms.push_back(std::move(vm));
        live_placement.genes().push_back(Placement::kRejected);
      }
      for (PlacementConstraint& c : batch.constraints) {
        for (std::uint32_t& k : c.vms) {
          k += offset;
        }
        live.constraints.push_back(std::move(c));
      }
    }

    if (live.vms.empty()) {
      metrics.push_back(row);
      continue;
    }

    // Transient server failures: the failed hosts keep their identity but
    // lose their capacity for this window, so the allocator is forced to
    // evacuate them (and pays Eq. 26 for every displaced VM it saves).
    std::vector<char> failed(infra.server_count(), 0);
    Infrastructure window_infra = infra;
    if (config_.server_failure_probability > 0.0) {
      std::vector<Server> servers = infra.servers();
      for (std::size_t j = 0; j < servers.size(); ++j) {
        if (rng.bernoulli(config_.server_failure_probability)) {
          failed[j] = 1;
          ++row.failed_servers;
          for (double& f : servers[j].factor) {
            f = 1e-9;  // effective capacity ~ 0: nothing can stay
          }
        }
      }
      if (row.failed_servers > 0) {
        window_infra =
            Infrastructure(infra.fabric().config(), std::move(servers));
        for (std::size_t k = 0; k < live.vms.size(); ++k) {
          if (live_placement.is_assigned(k) &&
              failed[static_cast<std::size_t>(
                  live_placement.server_of(k))] != 0) {
            ++row.displaced_vms;
          }
        }
      }
    }

    // One allocation round over everything that should be running.
    Instance instance(std::move(window_infra), live);
    instance.previous = live_placement;

    Stopwatch timer;
    AllocationResult result;
    {
      telemetry::ScopedPhaseTimer phase(telemetry::Phase::kAllocate);
      result = allocator_->allocate(instance, rng.next_u64());
    }
    row.solve_seconds = timer.elapsed_seconds();
    // Per-window decision trace of the allocator (empty unless the
    // allocator collects one — see NsgaConfig::collect_trace).
    row.allocator_trace = std::move(result.trace);
    if (!row.allocator_trace.empty()) {
      row.allocator_trace.label += " w" + std::to_string(w);
    }

    const ReconfigurationPlan plan =
        make_plan(instance, live_placement, result.placement);
    row.boots = plan.boots();
    row.migrations = plan.migrations();
    row.migration_cost = plan.migration_cost();
    row.rejected = result.rejected;
    row.objectives = result.objectives;

    // Apply: rejected VMs (new or evicted) leave the platform.
    live_placement = result.placement;
    std::vector<char> keep(live.vms.size(), 1);
    bool any_drop = false;
    for (std::size_t k = 0; k < live.vms.size(); ++k) {
      if (!live_placement.is_assigned(k)) {
        keep[k] = 0;
        any_drop = true;
      }
    }
    if (any_drop) {
      compact_requests(live, live_placement, keep);
    }
    row.running = live.vms.size();
    metrics.push_back(row);
  }
  return metrics;
}

}  // namespace iaas
