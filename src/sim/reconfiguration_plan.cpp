#include "sim/reconfiguration_plan.h"

#include <sstream>

#include "common/expect.h"

namespace iaas {

std::size_t ReconfigurationPlan::boots() const {
  std::size_t n = 0;
  for (const auto& a : actions) {
    n += a.kind == ActionKind::kBoot ? 1 : 0;
  }
  return n;
}

std::size_t ReconfigurationPlan::migrations() const {
  std::size_t n = 0;
  for (const auto& a : actions) {
    n += a.kind == ActionKind::kMigrate ? 1 : 0;
  }
  return n;
}

std::size_t ReconfigurationPlan::stops() const {
  std::size_t n = 0;
  for (const auto& a : actions) {
    n += a.kind == ActionKind::kStop ? 1 : 0;
  }
  return n;
}

double ReconfigurationPlan::migration_cost() const {
  double total = 0.0;
  for (const auto& a : actions) {
    total += a.cost;
  }
  return total;
}

std::string ReconfigurationPlan::summary() const {
  std::ostringstream out;
  out << boots() << " boots, " << migrations() << " migrations, " << stops()
      << " stops, migration cost " << migration_cost();
  return out.str();
}

ReconfigurationPlan make_plan(const Instance& instance, const Placement& from,
                              const Placement& to) {
  IAAS_EXPECT(from.vm_count() == instance.n() && to.vm_count() == instance.n(),
              "placement size mismatch with instance");
  ReconfigurationPlan plan;
  for (std::size_t k = 0; k < instance.n(); ++k) {
    const std::int32_t a = from.server_of(k);
    const std::int32_t b = to.server_of(k);
    if (a == b) {
      continue;
    }
    const auto vm = static_cast<std::uint32_t>(k);
    if (a == Placement::kRejected) {
      plan.actions.push_back({ActionKind::kBoot, vm, a, b, 0.0});
    } else if (b == Placement::kRejected) {
      plan.actions.push_back({ActionKind::kStop, vm, a, b, 0.0});
    } else {
      plan.actions.push_back({ActionKind::kMigrate, vm, a, b,
                              instance.requests.vms[k].migration_cost});
    }
  }
  return plan;
}

}  // namespace iaas
