// Topology-correlated platform failures with a full lifecycle.
//
// The paper defers "platform failures" to future work while pricing
// their consequences today (downtime cost Eq. 23-25, migration cost
// Eq. 26).  This model supplies the missing events: servers fail and are
// *repaired* after an MTTR measured in windows (or are decommissioned
// permanently), and failures are correlated through the Fig. 1 fabric —
// a leaf-switch outage takes down every server on its rack at once, not
// just independent per-server coin flips.  Scripted faults let tests and
// benches inject an exact scenario (e.g. "rack 0 dies at window 5 with
// MTTR 3") deterministically.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "topology/fabric.h"

namespace iaas {

// One deterministic, pre-planned fault (applied in `advance(window)`
// before any random injection).
struct ScriptedFault {
  std::size_t window = 0;
  bool leaf_level = false;    // true: whole rack (global leaf index)
  std::uint32_t index = 0;    // global server index, or global leaf index
  std::size_t mttr_windows = 1;
  bool decommission = false;  // never repaired
};

struct FaultConfig {
  // Per-window Bernoulli rates.  Server failures hit healthy servers
  // independently; leaf failures hit a whole rack through the fabric.
  double server_failure_probability = 0.0;
  double leaf_failure_probability = 0.0;
  // Repair time (windows down) drawn uniformly from [min, max]; both 1
  // reproduces the legacy single-window transient.
  std::size_t mttr_min_windows = 1;
  std::size_t mttr_max_windows = 1;
  // Probability that a random failure is permanent (hardware loss):
  // the server never returns to the pool.
  double decommission_probability = 0.0;

  std::vector<ScriptedFault> scripted;

  [[nodiscard]] bool enabled() const {
    return server_failure_probability > 0.0 ||
           leaf_failure_probability > 0.0 || !scripted.empty();
  }
};

enum class FaultEventKind : std::uint8_t {
  kServerFailure,  // one server down (random or scripted)
  kLeafFailure,    // rack down: every hosted server fails together
  kRepair,         // a server returned to service
  kDecommission,   // a server left the pool permanently
};

const char* fault_event_kind_name(FaultEventKind kind);

struct FaultEvent {
  std::size_t window = 0;
  FaultEventKind kind = FaultEventKind::kServerFailure;
  std::uint32_t index = 0;  // server index (leaf index for kLeafFailure)
  std::vector<std::uint32_t> servers;  // affected servers (repairs: one)
  std::size_t mttr_windows = 0;        // failures only; 0 = permanent

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

class FaultModel {
 public:
  // `fabric` must outlive the model.  All randomness flows from `seed`;
  // identical (config, fabric, seed) triples replay identical histories.
  FaultModel(FaultConfig config, const Fabric& fabric, std::uint64_t seed);

  // One window tick: repairs due this window come back first (a server
  // failing again in the same window is a fresh event), then scripted
  // faults, then random leaf outages, then random server failures.
  // Returns the window's events in that deterministic order.
  std::vector<FaultEvent> advance(std::size_t window);

  [[nodiscard]] bool is_down(std::uint32_t server) const;
  [[nodiscard]] std::size_t down_count() const;
  [[nodiscard]] std::size_t decommissioned_count() const;
  [[nodiscard]] std::size_t server_count() const { return state_.size(); }

  [[nodiscard]] const FaultConfig& config() const { return config_; }

 private:
  // Marks `server` down until `window + mttr` (or forever), recording the
  // per-server state; returns false when the server was already down
  // (the event is then not double-counted).
  bool fail_server(std::uint32_t server, std::size_t window,
                   std::size_t mttr_windows, bool decommission);
  std::size_t draw_mttr();

  static constexpr std::size_t kHealthy = 0;
  static constexpr std::size_t kDecommissioned =
      static_cast<std::size_t>(-1);

  FaultConfig config_;
  const Fabric* fabric_;
  Rng rng_;
  // Per server: kHealthy, kDecommissioned, or the first window it is
  // healthy again (repair window), offset by +1 so window 0 is usable.
  std::vector<std::size_t> state_;
  std::size_t down_ = 0;
  std::size_t decommissioned_ = 0;
};

}  // namespace iaas
