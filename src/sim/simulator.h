// Cyclic time-window scheduler (paper §III: "Our scheduler is aware of
// the cloud platform status in real time. Our idea is to directly include
// all requests within a cyclic time window during the execution of the
// allocation optimization process.").
//
// Each window: new requests arrive (batch drawn from the scenario
// generator), some running VMs depart, and the allocator solves one
// Instance containing every VM that should be running — with the current
// placement as `previous`, so migrations are priced by Eq. 26.  The
// sanitized result is applied as a reconfiguration plan.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "algo/allocator.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "model/instance.h"
#include "sim/reconfiguration_plan.h"
#include "workload/generator.h"

namespace iaas {

// Poisson-distributed arrival count.  Knuth's multiplicative sampler for
// small means; large means (where exp(-mean) would underflow, mean >
// ~745) are split into <= 500 chunks and summed — Poisson additivity
// keeps the distribution exact for arbitrarily heavy traffic.
std::size_t poisson_sample(double mean, Rng& rng);

// Remove the VMs with keep[k] == 0 from the set + placement: surviving
// VM indices are compacted (and constraint-group members remapped to
// them); relationship groups shrinking below two members are dropped.
// Exposed for testing — the simulator applies it on departures and
// rejections every window.
void compact_requests(RequestSet& requests, Placement& placement,
                      const std::vector<char>& keep);

struct SimConfig {
  std::size_t windows = 10;
  double arrivals_per_window_mean = 20.0;  // Poisson arrivals
  double departure_probability = 0.10;     // per running VM per window
  // Platform failures (the paper's future-work "platform failures"
  // events): each window, each server suffers a transient outage with
  // this probability — its capacity drops to ~zero for the window, so
  // the allocator must re-place everything it hosted.
  double server_failure_probability = 0.0;
  // Explicit per-window arrival counts (e.g. from an ArrivalTrace's
  // diurnal/burst model).  When non-empty it overrides the Poisson
  // arrivals; windows beyond its length wrap around.
  std::vector<std::size_t> arrival_schedule;
  ScenarioConfig scenario;                 // infrastructure + request shape
};

struct WindowMetrics {
  std::size_t window = 0;
  std::size_t arrived = 0;
  std::size_t departed = 0;
  std::size_t running = 0;    // after applying the plan
  std::size_t rejected = 0;   // of this window's full instance
  std::size_t boots = 0;
  std::size_t migrations = 0;
  double migration_cost = 0.0;
  std::size_t failed_servers = 0;  // transient outages this window
  std::size_t displaced_vms = 0;   // VMs forced off failed servers
  ObjectiveVector objectives;  // of the applied placement
  double solve_seconds = 0.0;
  // Per-window decision trace of the allocator's search (empty for
  // non-EA allocators or when NsgaConfig::collect_trace is off).
  telemetry::RunTrace allocator_trace;
};

class CloudSimulator {
 public:
  CloudSimulator(SimConfig config, std::unique_ptr<Allocator> allocator);

  // Run the full horizon; one metrics row per window.
  std::vector<WindowMetrics> run(std::uint64_t seed);

  [[nodiscard]] const SimConfig& config() const { return config_; }

 private:
  SimConfig config_;
  std::unique_ptr<Allocator> allocator_;
};

}  // namespace iaas
