// Cyclic time-window scheduler (paper §III: "Our scheduler is aware of
// the cloud platform status in real time. Our idea is to directly include
// all requests within a cyclic time window during the execution of the
// allocation optimization process.").
//
// Each window: failed servers repair or fail per the FaultModel's
// lifecycle, some running VMs depart, queued rejects whose backoff
// elapsed re-enter, a fresh arrival batch lands, and the allocator solves
// one Instance containing every VM that should be running — with the
// current placement as `previous`, so migrations are priced by Eq. 26.
// The sanitized result is applied as a reconfiguration plan; VMs it could
// not place go to the bounded retry queue instead of vanishing.
//
// Graceful degradation: when the allocator exceeds its per-window budget
// the window is served anyway — first by the EA's best-front-so-far
// (anytime truncation, NsgaConfig::time_limit_seconds), and if the
// allocator fails outright (throws) or blows the hard deadline, by a
// greedy first-fit pass — rather than stalling the horizon.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "algo/allocator.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "model/fairness.h"
#include "model/instance.h"
#include "sim/fault_model.h"
#include "sim/reconfiguration_plan.h"
#include "sim/retry_queue.h"
#include "workload/generator.h"

namespace iaas {

// Poisson-distributed arrival count.  Knuth's multiplicative sampler for
// small means; large means (where exp(-mean) would underflow, mean >
// ~745) are split into <= 500 chunks and summed — Poisson additivity
// keeps the distribution exact for arbitrarily heavy traffic.
std::size_t poisson_sample(double mean, Rng& rng);

// Remove the VMs with keep[k] == 0 from the set + placement: surviving
// VM indices are compacted (and constraint-group members remapped to
// them); relationship groups shrinking below two members are dropped.
// Exposed for testing — the simulator applies it on departures and
// rejections every window.
void compact_requests(RequestSet& requests, Placement& placement,
                      const std::vector<char>& keep);

struct SimConfig {
  std::size_t windows = 10;
  double arrivals_per_window_mean = 20.0;  // Poisson arrivals
  double departure_probability = 0.10;     // per running VM per window
  // Legacy single-window transient failures: shorthand for
  // faults.server_failure_probability with MTTR 1.  Ignored when the
  // FaultConfig sets its own server rate.
  double server_failure_probability = 0.0;
  // Platform failures with a lifecycle: correlated rack outages, MTTR
  // measured in windows, permanent decommissions, scripted scenarios.
  FaultConfig faults;
  // Bounded retry queue for rejected/evicted VMs (max_attempts 0 keeps
  // the legacy drop-on-reject behaviour).
  RetryPolicy retry;
  // Per-window allocator budget (seconds; 0 = unlimited).  Passed to the
  // allocator via set_time_budget so anytime algorithms self-truncate;
  // such windows are reported degraded (kBestEffort).  NOTE: enabling it
  // makes window outcomes wall-clock-dependent — determinism tests keep
  // it 0 or force it below any real solve time.
  double allocator_deadline_seconds = 0.0;
  // Hard ceiling as a multiple of the deadline (0 = never): when one
  // allocate call exceeds deadline * hard factor, its (stale) result is
  // discarded and the greedy fallback serves the window (kFallback).
  double deadline_hard_factor = 0.0;
  // Explicit per-window arrival counts (e.g. from an ArrivalTrace's
  // diurnal/burst model).  When non-empty it overrides the Poisson
  // arrivals; windows beyond its length wrap around (periodic schedule).
  std::vector<std::size_t> arrival_schedule;
  // Persist the allocator's final front across windows and feed it back
  // (Allocator::seed_next_run) as seeds for the next window's search.
  // Front gene vectors are compacted/extended in lockstep with the live
  // placement, so they stay aligned with the next window's VM indexing.
  // No-op for allocators that decline the hand-off (non-EA).
  bool warm_start_front = false;
  // Admission control (throughput driver): at most this many arrival VMs
  // enter the allocation instance per window (0 = unlimited, the legacy
  // behaviour).  Excess arrivals wait in a FIFO admission queue, admitted
  // as whole relationship units in arrival order — a unit is never split
  // across windows, so its constraints always enter intact.  A unit
  // larger than the whole budget is admitted alone when it reaches the
  // queue front (guaranteed progress).  Retried VMs bypass the queue:
  // they already waited their backoff.
  std::size_t max_admissions_per_window = 0;
  // Cap on the admission queue depth in VMs (0 = unbounded): a unit
  // whose arrival would push the backlog past the cap is shed entirely
  // and counted in admission_dropped — load shedding, not deferral.
  std::size_t admission_queue_limit = 0;
  // Fairness/energy metric knobs; only consulted when scenario.consumers
  // > 0 (which turns the per-window fairness columns on).
  FairnessConfig fairness;
  ScenarioConfig scenario;                 // infrastructure + request shape
};

// The single arrival rule shared by every window: a non-empty schedule is
// periodic (window modulo its length); an empty schedule falls back to
// Poisson(arrivals_per_window_mean) — which consumes rng draws, so the
// two modes intentionally produce different downstream streams.
std::size_t window_arrivals(const SimConfig& config, std::size_t window,
                            Rng& rng);

// How a window's allocation was obtained.
enum class DegradeLevel : std::uint8_t {
  kNone = 0,        // primary allocator, within budget
  kBestEffort = 1,  // primary truncated by its budget: best front so far
  kFallback = 2,    // greedy fallback (allocator threw / hard deadline)
};

const char* degrade_level_name(DegradeLevel level);

// Per-provider slice of one multi-cloud window (broker/multicloud_sim).
// Single-cloud simulations leave WindowMetrics::providers empty, so the
// fingerprint of an existing trace is unchanged... except that the
// column count is itself hashed, keeping "no providers" and "one silent
// provider" distinguishable.
struct ProviderWindowMetrics {
  std::uint32_t provider = 0;        // index into the CloudMarket
  bool online = true;
  double price_multiplier = 1.0;     // effective (billing x spot x shock)
  std::size_t running = 0;           // VMs hosted after the window
  std::size_t routed = 0;            // VMs the broker sent here this window
  std::size_t rejected = 0;          // of this provider's slice instance
  std::size_t evicted = 0;           // previously running, lost this window
  std::size_t redirects_in = 0;      // arrivals that were redirects
  std::size_t failed_servers = 0;    // provider-local fault model
  std::size_t migrations = 0;        // intra-cloud, from the plan
  double migration_cost = 0.0;
  ObjectiveVector objectives;        // price-scaled Eq. 22/23/26 split
};

// Fairness/welfare columns of one window (model/fairness.h definitions).
// consumers == 0 marks the block as absent — legacy anonymous runs and
// windows with no live VMs keep their trace shape and fingerprint.
struct FairnessWindowMetrics {
  std::size_t consumers = 0;            // distinct consumers this window
  std::size_t strategic_consumers = 0;  // of those, with misreported VMs
  std::size_t strategic_vms = 0;        // VMs carrying a true_demand
  double jain_index = 1.0;              // over served dominant shares
  double long_term_jain = 1.0;          // over shares summed since window 0
  double envy = 0.0;                    // mean welfare shortfall vs best-off
  double utilization_efficiency = 1.0;  // served actual / served reported
  double honest_welfare = 0.0;          // mean honest-consumer welfare
  double strategic_welfare = 0.0;       // mean strategic-consumer welfare
  double energy_cost = 0.0;             // powered-server energy draw
};

struct WindowMetrics {
  std::size_t window = 0;
  std::size_t arrived = 0;
  std::size_t departed = 0;
  std::size_t running = 0;    // after applying the plan
  std::size_t rejected = 0;   // of this window's full instance
  std::size_t boots = 0;
  std::size_t migrations = 0;
  double migration_cost = 0.0;
  // --- failure lifecycle ---
  std::size_t failed_servers = 0;     // servers unavailable this window
  std::size_t repaired_servers = 0;   // repair events this window
  std::size_t decommissioned_servers = 0;  // cumulative permanent losses
  std::size_t displaced_vms = 0;      // VMs hosted on servers that failed
  std::size_t vms_on_down_servers = 0;  // after the plan (invariant: 0)
  std::vector<FaultEvent> fault_events;
  // --- retry queue ---
  std::size_t evicted = 0;   // previously running VMs rejected this window
  std::size_t retried = 0;   // queued VMs re-entering this window
  std::size_t permanently_rejected = 0;  // retry budget exhausted
  std::size_t retry_queue_depth = 0;     // after the window
  // --- multi-cloud broker (empty/zero in single-cloud runs) ---
  std::vector<ProviderWindowMetrics> providers;
  std::size_t redirects = 0;  // cross-cloud redirections this window
  std::size_t offline_providers = 0;  // dark clouds during the window
  double cross_cloud_migration_cost = 0.0;  // egress-priced moves
  // --- admission control (all zero when max_admissions_per_window == 0) ---
  std::size_t admitted = 0;            // arrival VMs entering the instance
  std::size_t admission_deferred = 0;  // fresh arrivals pushed to later windows
  std::size_t admission_dropped = 0;   // shed at the queue cap
  std::size_t admission_queue_depth = 0;  // backlog VMs after the window
  // --- sharded allocator (shard_count 0 = unsharded window) ---
  ShardRunStats shard;
  // --- fairness/welfare (consumers 0 = block absent; scenario.consumers
  // == 0 or an empty window) ---
  FairnessWindowMetrics fairness;
  // --- graceful degradation ---
  DegradeLevel degrade = DegradeLevel::kNone;
  std::string fallback_algorithm;  // set when degrade == kFallback
  ObjectiveVector objectives;  // of the applied placement
  double solve_seconds = 0.0;
  // Per-window decision trace of the allocator's search (empty for
  // non-EA allocators or when NsgaConfig::collect_trace is off).
  telemetry::RunTrace allocator_trace;
};

// Horizon-level roll-up of the failure/degradation columns.
struct SimSummary {
  std::size_t fault_events = 0;
  std::size_t evicted = 0;
  std::size_t retried = 0;
  std::size_t permanently_rejected = 0;
  std::size_t degraded_windows = 0;
  std::size_t displaced_vms = 0;
  double migration_cost = 0.0;
  double downtime_cost = 0.0;
  // Multi-cloud columns (zero for single-cloud traces).
  std::size_t redirects = 0;
  double cross_cloud_migration_cost = 0.0;
  // Admission control (zero without max_admissions_per_window).
  std::size_t admission_deferred = 0;
  std::size_t admission_dropped = 0;
};

SimSummary summarize(const std::vector<WindowMetrics>& metrics);

// Order-sensitive FNV-1a digest of every *deterministic* field of the
// sequence: all counts, objective/migration-cost bit patterns, fault
// events, degrade levels, and the allocator trace's deterministic
// columns (generation, evaluations, front size, best objectives).  Wall
// times (solve_seconds, the trace's seconds columns) and the trace's
// telemetry-counter columns (zero in IAAS_TELEMETRY=OFF builds) are
// excluded, so the digest must match across thread counts AND across
// telemetry build modes — the simulator determinism contract.
std::uint64_t deterministic_fingerprint(
    const std::vector<WindowMetrics>& metrics);

class CloudSimulator {
 public:
  // `fallback` serves windows the primary allocator loses to its hard
  // deadline or to an exception; null installs greedy first-fit
  // (algo/heuristics) lazily on first use.
  CloudSimulator(SimConfig config, std::unique_ptr<Allocator> allocator,
                 std::unique_ptr<Allocator> fallback = nullptr);

  // Run the full horizon; one metrics row per window.
  std::vector<WindowMetrics> run(std::uint64_t seed);

  // Observe each completed WindowMetrics row as run() finishes it (after
  // the row is final, before the next window starts).  Streaming trace
  // writers (io/trace_stream) hook in here so a long horizon is flushed
  // incrementally instead of buffered whole; the callback must not
  // mutate the row.  Lives here rather than in io because io already
  // depends on sim.
  void set_window_sink(std::function<void(const WindowMetrics&)> sink) {
    window_sink_ = std::move(sink);
  }

  [[nodiscard]] const SimConfig& config() const { return config_; }

 private:
  Allocator& fallback_allocator();

  SimConfig config_;
  std::unique_ptr<Allocator> allocator_;
  std::unique_ptr<Allocator> fallback_;
  std::function<void(const WindowMetrics&)> window_sink_;
};

}  // namespace iaas
