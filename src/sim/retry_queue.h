// Bounded retry queue with per-VM exponential backoff.
//
// Rejected or evicted requests used to leave the platform silently; real
// consumers resubmit.  Each failed placement attempt parks the VM for
// `backoff_base_windows << (attempts-1)` windows (capped), and a VM whose
// attempt budget is exhausted is rejected permanently — the bounded part
// that keeps a hopeless request from circulating forever.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "model/vm_request.h"

namespace iaas {

struct RetryPolicy {
  // Total placement attempts a VM may consume (its arrival is attempt 1).
  // 0 disables retries: every rejection is immediately permanent.
  std::size_t max_attempts = 0;
  std::size_t backoff_base_windows = 1;
  std::size_t backoff_cap_windows = 8;

  [[nodiscard]] bool enabled() const { return max_attempts > 1; }
};

struct RetryEntry {
  VmRequest vm;
  std::size_t attempts = 0;      // failed placements so far (>= 1)
  std::size_t ready_window = 0;  // earliest window it may re-enter
  // Cross-cloud redirections so far (multi-cloud broker: outage
  // evictions, rejections re-routed to another provider, reshops).
  // Single-cloud simulations leave it 0.
  std::size_t redirects = 0;
  // Provider that last hosted (or rejected) the VM, for egress pricing
  // when it lands elsewhere; -1 = fresh arrival / single-cloud.
  std::int32_t home_provider = -1;
};

class RetryQueue {
 public:
  explicit RetryQueue(RetryPolicy policy) : policy_(policy) {}

  // Backoff for a VM that has failed `attempts` times (>= 1).
  [[nodiscard]] std::size_t backoff_windows(std::size_t attempts) const;

  // `vm` failed its `attempts`-th placement during `window`.  Queues it
  // for window + backoff and returns true, or returns false when the
  // attempt budget is spent (permanent rejection; the VM is dropped).
  // `redirects` and `home_provider` are carried through unchanged for
  // the broker's cross-cloud redirect budget and egress pricing.
  bool offer(VmRequest vm, std::size_t attempts, std::size_t window,
             std::size_t redirects = 0, std::int32_t home_provider = -1);

  // Entries whose backoff has elapsed by `window`, in FIFO order (stable
  // across identical runs — the simulator's determinism depends on it).
  std::vector<RetryEntry> pop_due(std::size_t window);

  [[nodiscard]] std::size_t size() const { return queue_.size(); }
  [[nodiscard]] const RetryPolicy& policy() const { return policy_; }

 private:
  RetryPolicy policy_;
  std::deque<RetryEntry> queue_;
};

}  // namespace iaas
