// Reconfiguration plan: the concrete action list a provider executes to
// move from the previous window's placement to the next one (the paper's
// third objective estimates this plan's size/cost, Eq. 26).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/instance.h"
#include "model/placement.h"

namespace iaas {

enum class ActionKind : std::uint8_t {
  kBoot,     // newly placed VM
  kMigrate,  // moved between servers
  kStop,     // previously placed, now rejected/absent
};

struct ReconfigurationAction {
  ActionKind kind;
  std::uint32_t vm;
  std::int32_t from;  // kRejected for boots
  std::int32_t to;    // kRejected for stops
  double cost;        // M_k for migrations, 0 otherwise
};

struct ReconfigurationPlan {
  std::vector<ReconfigurationAction> actions;

  [[nodiscard]] std::size_t boots() const;
  [[nodiscard]] std::size_t migrations() const;
  [[nodiscard]] std::size_t stops() const;
  [[nodiscard]] double migration_cost() const;

  [[nodiscard]] std::string summary() const;
};

// Diff `from` -> `to` for the VMs of `instance` (both placements sized
// instance.n()); migration cost follows Eq. 26 (M_k per moved VM).
ReconfigurationPlan make_plan(const Instance& instance, const Placement& from,
                              const Placement& to);

}  // namespace iaas
