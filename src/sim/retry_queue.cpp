#include "sim/retry_queue.h"

#include <algorithm>
#include <utility>

#include "common/expect.h"

namespace iaas {

std::size_t RetryQueue::backoff_windows(std::size_t attempts) const {
  IAAS_EXPECT(attempts >= 1, "backoff is defined after a failed attempt");
  const std::size_t cap = std::max<std::size_t>(
      policy_.backoff_cap_windows, std::size_t{1});
  std::size_t wait = std::max<std::size_t>(
      policy_.backoff_base_windows, std::size_t{1});
  // Exponential, saturating well before a shift could overflow.
  for (std::size_t i = 1; i < attempts && wait < cap; ++i) {
    wait *= 2;
  }
  return std::min(wait, cap);
}

bool RetryQueue::offer(VmRequest vm, std::size_t attempts,
                       std::size_t window, std::size_t redirects,
                       std::int32_t home_provider) {
  IAAS_EXPECT(attempts >= 1, "a queued VM has failed at least once");
  if (attempts >= policy_.max_attempts) {
    return false;  // budget spent (or retries disabled): permanent
  }
  queue_.push_back({std::move(vm), attempts,
                    window + backoff_windows(attempts), redirects,
                    home_provider});
  return true;
}

std::vector<RetryEntry> RetryQueue::pop_due(std::size_t window) {
  std::vector<RetryEntry> due;
  // Stable partition keeps FIFO order among both the popped entries and
  // the survivors.
  std::deque<RetryEntry> keep;
  for (RetryEntry& entry : queue_) {
    if (entry.ready_window <= window) {
      due.push_back(std::move(entry));
    } else {
      keep.push_back(std::move(entry));
    }
  }
  queue_ = std::move(keep);
  return due;
}

}  // namespace iaas
