#include "sim/fault_model.h"

#include <utility>

#include "common/expect.h"

namespace iaas {

const char* fault_event_kind_name(FaultEventKind kind) {
  switch (kind) {
    case FaultEventKind::kServerFailure:
      return "server_failure";
    case FaultEventKind::kLeafFailure:
      return "leaf_failure";
    case FaultEventKind::kRepair:
      return "repair";
    case FaultEventKind::kDecommission:
      return "decommission";
  }
  return "unknown";
}

FaultModel::FaultModel(FaultConfig config, const Fabric& fabric,
                       std::uint64_t seed)
    : config_(std::move(config)),
      fabric_(&fabric),
      rng_(seed),
      state_(fabric.server_count(), kHealthy) {
  IAAS_EXPECT(config_.mttr_min_windows >= 1,
              "MTTR is measured in whole windows (>= 1)");
  IAAS_EXPECT(config_.mttr_min_windows <= config_.mttr_max_windows,
              "MTTR range must satisfy min <= max");
  for (const ScriptedFault& fault : config_.scripted) {
    const std::uint32_t limit =
        fault.leaf_level ? fabric.leaf_count() : fabric.server_count();
    IAAS_EXPECT(fault.index < limit, "scripted fault index out of range");
    IAAS_EXPECT(fault.decommission || fault.mttr_windows >= 1,
                "scripted fault MTTR must be >= 1 window");
  }
}

std::size_t FaultModel::draw_mttr() {
  if (config_.mttr_min_windows == config_.mttr_max_windows) {
    return config_.mttr_min_windows;
  }
  return static_cast<std::size_t>(
      rng_.uniform_int(static_cast<std::int64_t>(config_.mttr_min_windows),
                       static_cast<std::int64_t>(config_.mttr_max_windows)));
}

bool FaultModel::fail_server(std::uint32_t server, std::size_t window,
                             std::size_t mttr_windows, bool decommission) {
  std::size_t& slot = state_[server];
  if (slot != kHealthy) {
    // Already down; a decommission can still upgrade a transient outage.
    if (decommission && slot != kDecommissioned) {
      slot = kDecommissioned;
      ++decommissioned_;
    }
    return false;
  }
  if (decommission) {
    slot = kDecommissioned;
    ++decommissioned_;
  } else {
    slot = window + mttr_windows + 1;  // +1: repair window, offset-encoded
  }
  ++down_;
  return true;
}

std::vector<FaultEvent> FaultModel::advance(std::size_t window) {
  std::vector<FaultEvent> events;

  // 1. Repairs due this window (decommissioned servers never return).
  for (std::uint32_t j = 0; j < state_.size(); ++j) {
    if (state_[j] != kHealthy && state_[j] != kDecommissioned &&
        state_[j] <= window + 1) {
      state_[j] = kHealthy;
      --down_;
      events.push_back(
          {window, FaultEventKind::kRepair, j, {j}, /*mttr_windows=*/0});
    }
  }

  // 2. Scripted faults: the exact scenario a test or bench asked for.
  for (const ScriptedFault& fault : config_.scripted) {
    if (fault.window != window) {
      continue;
    }
    const std::size_t mttr = fault.decommission ? 0 : fault.mttr_windows;
    if (fault.leaf_level) {
      FaultEvent event{window, FaultEventKind::kLeafFailure, fault.index,
                       {}, mttr};
      for (std::uint32_t j : fabric_->servers_on_global_leaf(fault.index)) {
        if (fail_server(j, window, fault.mttr_windows, fault.decommission)) {
          event.servers.push_back(j);
        }
      }
      events.push_back(std::move(event));
    } else {
      const FaultEventKind kind = fault.decommission
                                      ? FaultEventKind::kDecommission
                                      : FaultEventKind::kServerFailure;
      if (fail_server(fault.index, window, fault.mttr_windows,
                      fault.decommission)) {
        events.push_back({window, kind, fault.index, {fault.index}, mttr});
      }
    }
  }

  // 3. Random rack outages: one coin per leaf, correlated loss of every
  // hosted server with one shared MTTR draw (the rack comes back as one).
  if (config_.leaf_failure_probability > 0.0) {
    for (std::uint32_t leaf = 0; leaf < fabric_->leaf_count(); ++leaf) {
      if (!rng_.bernoulli(config_.leaf_failure_probability)) {
        continue;
      }
      const std::size_t mttr = draw_mttr();
      const bool decommission =
          config_.decommission_probability > 0.0 &&
          rng_.bernoulli(config_.decommission_probability);
      FaultEvent event{window, FaultEventKind::kLeafFailure, leaf, {},
                       decommission ? 0 : mttr};
      for (std::uint32_t j : fabric_->servers_on_global_leaf(leaf)) {
        if (fail_server(j, window, mttr, decommission)) {
          event.servers.push_back(j);
        }
      }
      if (!event.servers.empty()) {
        events.push_back(std::move(event));
      }
    }
  }

  // 4. Independent server failures among the still-healthy remainder.
  if (config_.server_failure_probability > 0.0) {
    for (std::uint32_t j = 0; j < state_.size(); ++j) {
      if (state_[j] != kHealthy ||
          !rng_.bernoulli(config_.server_failure_probability)) {
        continue;
      }
      const std::size_t mttr = draw_mttr();
      const bool decommission =
          config_.decommission_probability > 0.0 &&
          rng_.bernoulli(config_.decommission_probability);
      fail_server(j, window, mttr, decommission);
      events.push_back({window,
                        decommission ? FaultEventKind::kDecommission
                                     : FaultEventKind::kServerFailure,
                        j,
                        {j},
                        decommission ? 0 : mttr});
    }
  }
  return events;
}

bool FaultModel::is_down(std::uint32_t server) const {
  IAAS_DEBUG_EXPECT(server < state_.size(), "server index out of range");
  return state_[server] != kHealthy;
}

std::size_t FaultModel::down_count() const { return down_; }

std::size_t FaultModel::decommissioned_count() const {
  return decommissioned_;
}

}  // namespace iaas
