// Dynamic-market event primitives and scenario drivers: spot-price
// series, price-shock schedules, and provider-level outage scripts.
//
// These are the workload-side inputs of the multi-cloud broker layer
// (src/broker): a CloudMarket prices each provider's Eq. 22 bill per
// window from a base multiplier x spot series x active shocks, and takes
// whole providers dark per the outage script (the provider-granularity
// correlated fault of the dynamic-market brokering literature —
// López-Pires et al., arXiv 2001.02561; Zhao et al., arXiv 1308.0841).
//
// Everything here is deterministic: the generators draw from an explicit
// seed, and the series/scripts they emit are plain data replayed
// identically by every run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace iaas {

// Per-window multiplicative price factor for spot-style billing.  An
// empty series means "flat 1.0"; a non-empty one wraps around (periodic
// market), mirroring SimConfig::arrival_schedule semantics.
struct SpotPriceSeries {
  std::vector<double> multipliers;

  [[nodiscard]] double at(std::size_t window) const {
    return multipliers.empty()
               ? 1.0
               : multipliers[window % multipliers.size()];
  }
  [[nodiscard]] bool flat() const { return multipliers.empty(); }
};

// One scripted price shock: the provider's usage bill is multiplied by
// `factor` for windows in [window, window + duration).
struct PriceShock {
  std::size_t window = 0;
  std::size_t duration = 1;
  double factor = 1.0;

  [[nodiscard]] bool active(std::size_t w) const {
    return w >= window && w - window < duration;
  }
};

// Combined shock factor at `w` (shocks overlap multiplicatively).
double shock_factor(const std::vector<PriceShock>& shocks, std::size_t w);

// One scripted provider-level outage: the whole cloud goes dark at
// `window` for `duration` windows — every hosted VM is evicted and must
// re-enter through the broker.  `decommission` makes the exit permanent
// (the provider leaves the market; redirect budgets keep its orphans
// from retrying against it forever).
struct ProviderOutageScript {
  std::size_t window = 0;
  std::uint32_t provider = 0;  // index into the market's provider list
  std::size_t duration = 1;
  bool decommission = false;
};

// --- deterministic scenario drivers ---

// Sinusoidal diurnal spot market: multipliers oscillating around `mean`
// with the given amplitude and period (windows per cycle), plus bounded
// multiplicative jitter drawn from `seed`.  Values are clamped to stay
// strictly positive.
SpotPriceSeries diurnal_spot_series(std::size_t windows, double mean,
                                    double amplitude, std::size_t period,
                                    double jitter, std::uint64_t seed);

// Poisson-thinned shock schedule: each window starts a shock with
// probability `rate`; factors are drawn uniformly from
// [factor_min, factor_max] and durations from [duration_min,
// duration_max].  Deterministic per seed.
std::vector<PriceShock> random_price_shocks(std::size_t windows, double rate,
                                            double factor_min,
                                            double factor_max,
                                            std::size_t duration_min,
                                            std::size_t duration_max,
                                            std::uint64_t seed);

// Random provider-outage script over `providers` clouds: each window,
// each provider goes dark with probability `rate` for a duration drawn
// from [duration_min, duration_max]; with probability
// `decommission_probability` the outage is permanent.  At most one
// scripted event per (provider, window).
std::vector<ProviderOutageScript> random_provider_outages(
    std::size_t windows, std::uint32_t providers, double rate,
    std::size_t duration_min, std::size_t duration_max,
    double decommission_probability, std::uint64_t seed);

}  // namespace iaas
