#include "workload/market_events.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace iaas {

double shock_factor(const std::vector<PriceShock>& shocks, std::size_t w) {
  double factor = 1.0;
  for (const PriceShock& shock : shocks) {
    if (shock.active(w)) {
      factor *= shock.factor;
    }
  }
  return factor;
}

SpotPriceSeries diurnal_spot_series(std::size_t windows, double mean,
                                    double amplitude, std::size_t period,
                                    double jitter, std::uint64_t seed) {
  SpotPriceSeries series;
  series.multipliers.reserve(windows);
  Rng rng(seed);
  const double two_pi = 2.0 * 3.14159265358979323846;
  const auto cycle = static_cast<double>(period == 0 ? 1 : period);
  for (std::size_t w = 0; w < windows; ++w) {
    const double phase = two_pi * static_cast<double>(w) / cycle;
    double value = mean + amplitude * std::sin(phase);
    if (jitter > 0.0) {
      value *= rng.uniform_real(1.0 - jitter, 1.0 + jitter);
    }
    series.multipliers.push_back(std::max(value, 1e-3));
  }
  return series;
}

std::vector<PriceShock> random_price_shocks(std::size_t windows, double rate,
                                            double factor_min,
                                            double factor_max,
                                            std::size_t duration_min,
                                            std::size_t duration_max,
                                            std::uint64_t seed) {
  std::vector<PriceShock> shocks;
  Rng rng(seed);
  const std::size_t lo = std::min(duration_min, duration_max);
  const std::size_t hi = std::max(duration_min, duration_max);
  for (std::size_t w = 0; w < windows; ++w) {
    if (!rng.bernoulli(rate)) {
      continue;
    }
    PriceShock shock;
    shock.window = w;
    shock.factor = rng.uniform_real(std::min(factor_min, factor_max),
                                    std::max(factor_min, factor_max));
    shock.duration = lo + static_cast<std::size_t>(rng.uniform_int(
                              0, static_cast<std::int64_t>(hi - lo)));
    shocks.push_back(shock);
  }
  return shocks;
}

std::vector<ProviderOutageScript> random_provider_outages(
    std::size_t windows, std::uint32_t providers, double rate,
    std::size_t duration_min, std::size_t duration_max,
    double decommission_probability, std::uint64_t seed) {
  std::vector<ProviderOutageScript> script;
  Rng rng(seed);
  const std::size_t lo = std::min(duration_min, duration_max);
  const std::size_t hi = std::max(duration_min, duration_max);
  for (std::size_t w = 0; w < windows; ++w) {
    for (std::uint32_t p = 0; p < providers; ++p) {
      if (!rng.bernoulli(rate)) {
        continue;
      }
      ProviderOutageScript outage;
      outage.window = w;
      outage.provider = p;
      outage.duration = lo + static_cast<std::size_t>(rng.uniform_int(
                                 0, static_cast<std::int64_t>(hi - lo)));
      outage.decommission = rng.bernoulli(decommission_probability);
      script.push_back(outage);
    }
  }
  return script;
}

}  // namespace iaas
