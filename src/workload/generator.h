// Random scenario generator: ScenarioConfig + seed -> Instance.
//
// Deterministic: identical (config, seed) pairs produce identical
// instances on every platform (the Rng implements its own distributions).
// Infrastructure and request generation are exposed separately so the
// time-window simulator can draw fresh request batches against a fixed
// infrastructure.
#pragma once

#include <cstdint>
#include <vector>

#include "model/instance.h"
#include "workload/scenario_config.h"

namespace iaas {

// Default server classes / VM flavors used when the caller does not
// override them (documented "cloud provider practices" stand-ins).
const std::vector<ServerClassParams>& default_server_classes();
const std::vector<VmFlavorParams>& default_vm_flavors();

class ScenarioGenerator {
 public:
  explicit ScenarioGenerator(
      ScenarioConfig config,
      std::vector<ServerClassParams> server_classes = default_server_classes(),
      std::vector<VmFlavorParams> vm_flavors = default_vm_flavors());

  // Full instance (infrastructure + requests + optional previous
  // placement per config.preplaced_fraction).
  [[nodiscard]] Instance generate(std::uint64_t seed) const;

  // Provider side only.
  [[nodiscard]] Infrastructure generate_infrastructure(
      std::uint64_t seed) const;

  // A batch of `count` consumer requests with relationship groups drawn
  // inside the batch; `infra` bounds same-server groups to satisfiable
  // sizes.
  [[nodiscard]] RequestSet generate_requests(const Infrastructure& infra,
                                             std::uint32_t count,
                                             std::uint64_t seed) const;

  // The fabric a generated instance will use (server totals rounded up to
  // full leaves; callers can read the exact m before generating).
  [[nodiscard]] FabricConfig fabric_config() const;

  [[nodiscard]] const ScenarioConfig& config() const { return config_; }

 private:
  ScenarioConfig config_;
  std::vector<ServerClassParams> server_classes_;
  std::vector<VmFlavorParams> vm_flavors_;
};

}  // namespace iaas
