#include "workload/strategic.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <utility>

#include "common/rng.h"

namespace iaas {
namespace {

constexpr std::uint64_t kStrategySalt = 0x73747261746567ULL;  // "strateg"

// Seed for one consumer's private stream within one request batch.
// Keyed on the batch seed (so bursts re-roll each window), the
// strategy_seed salt, and the consumer id via child_stream (counter
// derivation — independent streams, nothing consumed from any parent).
Rng consumer_stream(const StrategicConfig& config, std::uint64_t batch_seed,
                    std::uint32_t consumer) {
  const Rng base(batch_seed ^ kStrategySalt ^ config.strategy_seed);
  return base.child_stream(consumer);
}

}  // namespace

std::vector<StrategyProfile> default_strategy_profiles() {
  StrategyProfile inflator;  // big steady over-ask, rarely pads groups
  inflator.inflation_min = 1.4;
  inflator.inflation_max = 2.0;
  inflator.pad_anti_affinity_probability = 0.2;
  inflator.burst_probability = 0.1;

  StrategyProfile padder;  // mild inflation, spreads VMs over servers
  padder.inflation_min = 1.1;
  padder.inflation_max = 1.3;
  padder.pad_anti_affinity_probability = 0.8;
  padder.pad_group_size = 4;
  padder.burst_probability = 0.1;

  StrategyProfile burster;  // honest-ish baseline, heavy timed bursts
  burster.inflation_min = 1.0;
  burster.inflation_max = 1.1;
  burster.pad_anti_affinity_probability = 0.2;
  burster.burst_probability = 0.5;
  burster.burst_multiplier = 2.0;

  return {inflator, padder, burster};
}

std::vector<std::string> validate_scenario(const ScenarioConfig& config) {
  std::vector<std::string> findings;
  const auto add = [&findings](const std::string& finding) {
    findings.push_back("scenario: " + finding);
  };

  if (config.datacenters == 0) {
    add("datacenters must be positive");
  }
  if (config.total_servers == 0) {
    add("total_servers must be positive");
  }
  if (config.attribute_count < 3) {
    add("attribute_count must cover cpu/ram/disk");
  }
  if (!(config.factor_min > 0.0 && config.factor_min <= config.factor_max &&
        config.factor_max <= 1.0)) {
    add("factor range must satisfy 0 < min <= max <= 1");
  }
  if (!(config.qos_guarantee_min > 0.0 &&
        config.qos_guarantee_min <= config.qos_guarantee_max &&
        config.qos_guarantee_max < 1.0)) {
    add("qos_guarantee range must satisfy 0 < min <= max < 1");
  }
  if (config.constrained_fraction < 0.0 || config.constrained_fraction > 1.0) {
    add("constrained_fraction must lie in [0, 1]");
  }
  if (config.preplaced_fraction < 0.0 || config.preplaced_fraction > 1.0) {
    add("preplaced_fraction must lie in [0, 1]");
  }
  if (config.group_size_min < 2 ||
      config.group_size_max < config.group_size_min) {
    add("relationship groups need at least two members");
  }

  const StrategicConfig& strategic = config.strategic;
  if (strategic.strategic_fraction < 0.0) {
    add("strategic_fraction must not be negative");
  }
  if (strategic.strategic_fraction > 1.0) {
    add("strategic_fraction must not exceed 1");
  }
  if (strategic.enabled() && config.consumers == 0) {
    add("strategic consumers require consumers > 0");
  }
  if (strategic.enabled() && strategic.profiles.empty()) {
    add("strategic_fraction > 0 with an empty strategy profile set");
  }
  for (std::size_t p = 0; p < strategic.profiles.size(); ++p) {
    const StrategyProfile& profile = strategic.profiles[p];
    const std::string where = "profile[" + std::to_string(p) + "]";
    if (profile.inflation_min < 1.0) {
      add(where + " inflation_min must be >= 1 (consumers only over-report)");
    }
    if (profile.inflation_max < profile.inflation_min) {
      add(where + " inflation_max must be >= inflation_min");
    }
    if (profile.pad_anti_affinity_probability < 0.0 ||
        profile.pad_anti_affinity_probability > 1.0) {
      add(where + " pad_anti_affinity_probability must lie in [0, 1]");
    }
    if (profile.pad_group_size < 2) {
      add(where + " pad_group_size needs at least two members");
    }
    if (profile.burst_probability < 0.0 || profile.burst_probability > 1.0) {
      add(where + " burst_probability must lie in [0, 1]");
    }
    if (profile.burst_multiplier < 1.0) {
      add(where + " burst_multiplier must be >= 1");
    }
  }
  return findings;
}

std::vector<char> strategic_consumer_mask(const StrategicConfig& config,
                                          std::uint32_t consumers) {
  std::vector<char> mask(consumers, 0);
  if (!config.enabled() || consumers == 0) {
    return mask;
  }
  const auto want = std::min<std::size_t>(
      consumers,
      static_cast<std::size_t>(std::ceil(
          config.strategic_fraction * static_cast<double>(consumers))));
  // Order consumers by a private hash draw (ties — impossible in
  // practice for doubles — break by id) and mark the first `want`.
  std::vector<std::pair<double, std::uint32_t>> ranked;
  ranked.reserve(consumers);
  for (std::uint32_t c = 0; c < consumers; ++c) {
    Rng probe(config.strategy_seed * 0x9E3779B97F4A7C15ULL +
              static_cast<std::uint64_t>(c));
    ranked.emplace_back(probe.next_double(), c);
  }
  std::sort(ranked.begin(), ranked.end());
  for (std::size_t i = 0; i < want; ++i) {
    mask[ranked[i].second] = 1;
  }
  return mask;
}

bool is_strategic_consumer(const StrategicConfig& config,
                           std::uint32_t consumers, std::uint32_t consumer) {
  const std::vector<char> mask = strategic_consumer_mask(config, consumers);
  return consumer < consumers && mask[consumer] != 0;
}

const StrategyProfile& strategy_profile_of(const StrategicConfig& config,
                                           std::uint32_t consumer) {
  return config.profiles[consumer % config.profiles.size()];
}

void apply_strategies(RequestSet& requests, const Infrastructure& infra,
                      const ScenarioConfig& config, std::uint64_t batch_seed) {
  const StrategicConfig& strategic = config.strategic;
  if (config.consumers == 0 || !strategic.enabled()) {
    return;
  }
  const std::size_t h = infra.attribute_count();
  const std::size_t n = requests.vms.size();

  // Inflated reports are clamped to the largest effective capacity per
  // attribute so a lone strategic VM never becomes unplaceable.
  std::vector<double> max_eff(h, 0.0);
  for (std::size_t j = 0; j < infra.server_count(); ++j) {
    for (std::size_t l = 0; l < h; ++l) {
      max_eff[l] = std::max(max_eff[l], infra.server(j).effective_capacity(l));
    }
  }

  std::vector<char> in_group(n, 0);
  for (const PlacementConstraint& constraint : requests.constraints) {
    for (std::uint32_t k : constraint.vms) {
      in_group[k] = 1;
    }
  }

  const std::vector<char> mask =
      strategic_consumer_mask(strategic, config.consumers);
  for (std::uint32_t c = 0; c < config.consumers; ++c) {
    if (mask[c] == 0) {
      continue;
    }
    const StrategyProfile& profile = strategy_profile_of(strategic, c);
    Rng rng = consumer_stream(strategic, batch_seed, c);

    // Burst timing: the whole batch of this consumer spikes together.
    const bool burst = rng.bernoulli(profile.burst_probability);

    std::vector<std::uint32_t> mine;
    for (std::size_t k = 0; k < n; ++k) {
      if (requests.vms[k].consumer == c) {
        mine.push_back(static_cast<std::uint32_t>(k));
      }
    }
    if (mine.empty()) {
      continue;
    }

    for (std::uint32_t k : mine) {
      VmRequest& vm = requests.vms[k];
      double factor = rng.uniform_real(profile.inflation_min,
                                       profile.inflation_max);
      if (burst) {
        factor *= profile.burst_multiplier;
      }
      vm.true_demand = vm.demand;
      for (std::size_t l = 0; l < h; ++l) {
        vm.demand[l] = std::min(vm.demand[l] * factor, max_eff[l]);
      }
    }

    // Padded anti-affinity: fabricate a different-servers group over the
    // consumer's VMs that are not already in a relationship group.
    if (rng.bernoulli(profile.pad_anti_affinity_probability)) {
      std::vector<std::uint32_t> free_vms;
      for (std::uint32_t k : mine) {
        if (!in_group[k]) {
          free_vms.push_back(k);
        }
      }
      rng.shuffle(free_vms);
      const std::size_t size =
          std::min({static_cast<std::size_t>(profile.pad_group_size),
                    free_vms.size(),
                    static_cast<std::size_t>(infra.server_count())});
      if (size >= 2) {
        PlacementConstraint padded;
        padded.kind = RelationKind::kDifferentServers;
        padded.vms.assign(free_vms.begin(),
                          free_vms.begin() + static_cast<std::ptrdiff_t>(size));
        std::sort(padded.vms.begin(), padded.vms.end());
        for (std::uint32_t k : padded.vms) {
          in_group[k] = 1;
        }
        requests.constraints.push_back(std::move(padded));
      }
    }
  }
}

}  // namespace iaas
