// Arrival-trace models for the time-window simulator: real request
// streams are not flat Poisson — they have a diurnal rhythm and bursts.
// An ArrivalTrace pre-computes per-window arrival counts from a
// parameterised day curve plus random bursts; the simulator consumes it
// through SimConfig::arrival_schedule.
#pragma once

#include <cstdint>
#include <vector>

namespace iaas {

struct TraceConfig {
  std::size_t windows = 24;
  double trough_rate = 8.0;   // mean arrivals per window at the quietest hour
  double peak_rate = 32.0;    // mean at the busiest hour
  double peak_window = 14.0;  // where the diurnal peak sits (window units)
  double period = 24.0;       // windows per diurnal cycle
  double burst_probability = 0.05;  // chance a window is a traffic burst
  double burst_multiplier = 3.0;    // burst scales the window's mean
};

class ArrivalTrace {
 public:
  ArrivalTrace(const TraceConfig& config, std::uint64_t seed);

  // Deterministic diurnal mean for a window (before burst/noise).
  [[nodiscard]] double expected_rate(std::size_t window) const;

  // Sampled arrivals for each window (Poisson around the diurnal mean,
  // bursts applied).
  [[nodiscard]] const std::vector<std::size_t>& counts() const {
    return counts_;
  }
  [[nodiscard]] std::size_t arrivals(std::size_t window) const {
    return counts_[window % counts_.size()];
  }
  [[nodiscard]] std::size_t total_arrivals() const;
  [[nodiscard]] const std::vector<bool>& burst_windows() const {
    return bursts_;
  }

 private:
  TraceConfig config_;
  std::vector<std::size_t> counts_;
  std::vector<bool> bursts_;
};

}  // namespace iaas
