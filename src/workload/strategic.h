// Strategic-consumer mode: a deterministic post-pass that lets a fixed
// subset of consumers misreport their workload (Karma/Ginseng-style
// greedy users).  The pass never consumes draws from the honest
// generator stream — each strategic consumer gets its own counter-keyed
// RNG stream derived from (batch seed, strategy_seed, consumer id) — so
// strategic_fraction == 0 reproduces the honest output byte for byte,
// and the strategic set is identical at any thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/infrastructure.h"
#include "model/request_set.h"
#include "workload/scenario_config.h"

namespace iaas {

// Full fail-loud screen of a ScenarioConfig (base distribution ranges
// plus the consumer/strategic block), mirroring validate_market: every
// problem is reported as a human-readable finding; an empty vector
// means the config is usable.  ScenarioGenerator aborts on the first
// finding via IAAS_EXPECT.
[[nodiscard]] std::vector<std::string> validate_scenario(
    const ScenarioConfig& config);

// The strategic set over `consumers` tenants: the ceil(fraction * N)
// consumers whose (strategy_seed, id) hash ranks smallest.  Rank-based
// rather than per-consumer coin flips, so any fraction > 0 marks at
// least one consumer, the count is exact, and raising the fraction only
// ever *adds* members (nested sets).  Pure hash — stable across
// windows, batches, and thread counts; no stream consumption.
[[nodiscard]] std::vector<char> strategic_consumer_mask(
    const StrategicConfig& config, std::uint32_t consumers);

// Convenience probe over the mask (O(consumers) — test/debug use).
[[nodiscard]] bool is_strategic_consumer(const StrategicConfig& config,
                                         std::uint32_t consumers,
                                         std::uint32_t consumer);

// The profile consumer `c` plays (round-robin over config.profiles).
// Precondition: config.profiles is non-empty.
[[nodiscard]] const StrategyProfile& strategy_profile_of(
    const StrategicConfig& config, std::uint32_t consumer);

// Applies every strategic consumer's misreporting to an honestly
// generated batch: demand inflation (honest vector saved into
// VmRequest::true_demand, inflated report clamped to the largest
// effective server capacity so single VMs stay placeable), optional
// padded anti-affinity groups over the consumer's unconstrained VMs
// (preserving the one-group-per-VM invariant), and batch-level demand
// bursts.  No-op when config.consumers == 0 or the strategic mode is
// disabled.
void apply_strategies(RequestSet& requests, const Infrastructure& infra,
                      const ScenarioConfig& config, std::uint64_t batch_seed);

}  // namespace iaas
