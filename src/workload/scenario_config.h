// Parameterisation of the random scenario generator.
//
// The paper evaluates on "randomly generated [conditions, scenarios,
// requests and infrastructures] with parameter configurations that
// reflect typical infrastructures sizes and cloud provider practices"
// (sizes up to 800 servers / 1600 VMs, managed as OpenStack-style blocks).
// No dataset was published, so every distribution parameter is explicit
// here and all draws flow from one seed (DESIGN.md §4).
#pragma once

#include <cstdint>

namespace iaas {

// Hardware classes "typical" of provider fleets; capacities are drawn
// around these base values with multiplicative noise.
struct ServerClassParams {
  double cpu_cores;
  double ram_gb;
  double disk_gb;
  double opex;        // E_j base, monetary units per allocation window
  double usage_cost;  // U_j base, per hosted VM per window
  double weight;      // sampling weight within the fleet
};

// VM flavors, OpenStack-like t-shirt sizes.
struct VmFlavorParams {
  double cpu_cores;
  double ram_gb;
  double disk_gb;
  double weight;
};

struct ScenarioConfig {
  // --- infrastructure ---
  std::uint32_t datacenters = 2;
  std::uint32_t total_servers = 64;   // rounded up to full leaves
  std::uint32_t servers_per_leaf = 8;
  std::uint32_t attribute_count = 3;  // cpu / ram / disk

  // Virtual-to-physical factor F_jl (Eq. 3): fraction of raw capacity
  // usable by consumer resources after virtualisation overhead.
  double factor_min = 0.85;
  double factor_max = 0.95;

  // QoS knee L^M_jl and ceiling Q^M_jl (Eq. 8).
  double max_load_min = 0.70;
  double max_load_max = 0.90;
  double max_qos_min = 0.95;
  double max_qos_max = 0.99;

  // Multiplicative capacity noise around the class base value.
  double capacity_jitter = 0.10;

  // --- requests ---
  std::uint32_t vms = 128;

  // QoS guarantee C^Q_k requested by consumers.
  double qos_guarantee_min = 0.80;
  double qos_guarantee_max = 0.94;

  // SLA penalty C^U_k and migration cost M_k ranges.
  double downtime_cost_min = 5.0;
  double downtime_cost_max = 50.0;
  double migration_cost_min = 1.0;
  double migration_cost_max = 10.0;

  // --- affinity / anti-affinity groups ---
  // Fraction of VMs that participate in a relationship group; each VM
  // joins at most one group (prevents contradictory combinations).
  double constrained_fraction = 0.30;
  std::uint32_t group_size_min = 2;
  std::uint32_t group_size_max = 4;
  // Relative frequencies of the four relationship kinds (Eqs. 9-12).
  double weight_same_datacenter = 0.30;
  double weight_same_server = 0.20;
  double weight_different_servers = 0.35;
  double weight_different_datacenters = 0.15;

  // --- previous placement (migration term) ---
  // Fraction of VMs that were already running in the previous window (and
  // hence may incur migration cost when moved).  0 = all requests fresh.
  double preplaced_fraction = 0.0;

  // Convenience: paper-style scenario of `servers` hosts and 2x VMs.
  static ScenarioConfig paper_scale(std::uint32_t servers,
                                    std::uint32_t datacenters = 2) {
    ScenarioConfig cfg;
    cfg.total_servers = servers;
    cfg.datacenters = datacenters;
    cfg.vms = servers * 2;  // paper: 800 servers / 1600 VMs
    return cfg;
  }
};

}  // namespace iaas
