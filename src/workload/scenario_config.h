// Parameterisation of the random scenario generator.
//
// The paper evaluates on "randomly generated [conditions, scenarios,
// requests and infrastructures] with parameter configurations that
// reflect typical infrastructures sizes and cloud provider practices"
// (sizes up to 800 servers / 1600 VMs, managed as OpenStack-style blocks).
// No dataset was published, so every distribution parameter is explicit
// here and all draws flow from one seed (DESIGN.md §4).
#pragma once

#include <cstdint>
#include <vector>

namespace iaas {

// Hardware classes "typical" of provider fleets; capacities are drawn
// around these base values with multiplicative noise.
struct ServerClassParams {
  double cpu_cores;
  double ram_gb;
  double disk_gb;
  double opex;        // E_j base, monetary units per allocation window
  double usage_cost;  // U_j base, per hosted VM per window
  double weight;      // sampling weight within the fleet
};

// VM flavors, OpenStack-like t-shirt sizes.
struct VmFlavorParams {
  double cpu_cores;
  double ram_gb;
  double disk_gb;
  double weight;
};

// How one strategic consumer misrepresents its workload.  A strategic
// consumer draws a per-VM inflation factor in [inflation_min,
// inflation_max] and multiplies every reported demand attribute by it
// (the honest vector is preserved in VmRequest::true_demand); it may
// additionally pad its request set with a fabricated anti-affinity
// group (spreading its VMs over distinct servers it does not need) and
// time demand bursts: with probability burst_probability a whole batch
// is inflated by an extra burst_multiplier.
struct StrategyProfile {
  double inflation_min = 1.2;               // >= 1
  double inflation_max = 1.8;               // >= inflation_min
  double pad_anti_affinity_probability = 0.5;  // in [0, 1]
  std::uint32_t pad_group_size = 3;         // >= 2 members per padded group
  double burst_probability = 0.25;          // in [0, 1], per request batch
  double burst_multiplier = 1.5;            // >= 1, stacks on inflation
};

// Strategic-consumer mode: a deterministic post-pass over honestly
// generated request batches.  With strategic_fraction == 0 the pass is
// skipped entirely and the generator output is byte-identical to the
// honest path.
struct StrategicConfig {
  // Fraction of consumers that behave strategically, in [0, 1].
  // Membership is decided by hashing (consumer id, strategy_seed), so
  // the strategic set is stable across windows and request batches.
  double strategic_fraction = 0.0;

  // Profiles assigned round-robin over strategic consumers
  // (profiles[c % profiles.size()]).  Must be non-empty whenever
  // strategic_fraction > 0.
  std::vector<StrategyProfile> profiles;

  // Salt for the per-consumer RNG streams; independent from the batch
  // seed so honest draws never shift.
  std::uint64_t strategy_seed = 0x5354524154ULL;

  bool enabled() const { return strategic_fraction > 0.0; }
};

// A small default mix: one aggressive inflator, one affinity padder,
// one bursty consumer.
std::vector<StrategyProfile> default_strategy_profiles();

struct ScenarioConfig {
  // --- infrastructure ---
  std::uint32_t datacenters = 2;
  std::uint32_t total_servers = 64;   // rounded up to full leaves
  std::uint32_t servers_per_leaf = 8;
  std::uint32_t attribute_count = 3;  // cpu / ram / disk

  // Virtual-to-physical factor F_jl (Eq. 3): fraction of raw capacity
  // usable by consumer resources after virtualisation overhead.
  double factor_min = 0.85;
  double factor_max = 0.95;

  // QoS knee L^M_jl and ceiling Q^M_jl (Eq. 8).
  double max_load_min = 0.70;
  double max_load_max = 0.90;
  double max_qos_min = 0.95;
  double max_qos_max = 0.99;

  // Multiplicative capacity noise around the class base value.
  double capacity_jitter = 0.10;

  // --- requests ---
  std::uint32_t vms = 128;

  // QoS guarantee C^Q_k requested by consumers.
  double qos_guarantee_min = 0.80;
  double qos_guarantee_max = 0.94;

  // SLA penalty C^U_k and migration cost M_k ranges.
  double downtime_cost_min = 5.0;
  double downtime_cost_max = 50.0;
  double migration_cost_min = 1.0;
  double migration_cost_max = 10.0;

  // --- affinity / anti-affinity groups ---
  // Fraction of VMs that participate in a relationship group; each VM
  // joins at most one group (prevents contradictory combinations).
  double constrained_fraction = 0.30;
  std::uint32_t group_size_min = 2;
  std::uint32_t group_size_max = 4;
  // Relative frequencies of the four relationship kinds (Eqs. 9-12).
  double weight_same_datacenter = 0.30;
  double weight_same_server = 0.20;
  double weight_different_servers = 0.35;
  double weight_different_datacenters = 0.15;

  // --- consumers ---
  // Number of distinct consumers (tenants).  VM k of a batch belongs to
  // consumer k % consumers, so every consumer shows up in every batch.
  // 0 = legacy anonymous mode: no consumer ids, no fairness columns.
  std::uint32_t consumers = 0;

  // Strategic misreporting; inert unless consumers > 0 and
  // strategic.strategic_fraction > 0.
  StrategicConfig strategic;

  // --- previous placement (migration term) ---
  // Fraction of VMs that were already running in the previous window (and
  // hence may incur migration cost when moved).  0 = all requests fresh.
  double preplaced_fraction = 0.0;

  // Convenience: paper-style scenario of `servers` hosts and 2x VMs.
  static ScenarioConfig paper_scale(std::uint32_t servers,
                                    std::uint32_t datacenters = 2) {
    ScenarioConfig cfg;
    cfg.total_servers = servers;
    cfg.datacenters = datacenters;
    cfg.vms = servers * 2;  // paper: 800 servers / 1600 VMs
    return cfg;
  }
};

}  // namespace iaas
