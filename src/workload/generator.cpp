#include "workload/generator.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>

#include "common/expect.h"
#include "common/rng.h"
#include "model/constraint_checker.h"
#include "workload/strategic.h"

namespace iaas {

const std::vector<ServerClassParams>& default_server_classes() {
  // cpu, ram, disk, opex, usage, weight.  Opex grows with machine size
  // (power + floor space); usage cost per VM is roughly flat.
  static const std::vector<ServerClassParams> classes = {
      {16.0, 64.0, 1000.0, 10.0, 1.0, 0.40},   // small 1U
      {32.0, 128.0, 2000.0, 16.0, 1.2, 0.40},  // medium 2U
      {64.0, 256.0, 4000.0, 28.0, 1.5, 0.20},  // large 4U
  };
  return classes;
}

const std::vector<VmFlavorParams>& default_vm_flavors() {
  // OpenStack-like flavors; weights skew small, as real fleets do.
  static const std::vector<VmFlavorParams> flavors = {
      {1.0, 2.0, 20.0, 0.30},    // tiny
      {2.0, 4.0, 40.0, 0.30},    // small
      {4.0, 8.0, 80.0, 0.20},    // medium
      {8.0, 16.0, 160.0, 0.15},  // large
      {16.0, 32.0, 320.0, 0.05}, // xlarge
  };
  return flavors;
}

namespace {

// Weighted index draw over a set of {.., weight} records.
template <typename T>
std::size_t draw_weighted(const std::vector<T>& items, Rng& rng) {
  double total = 0.0;
  for (const T& item : items) {
    total += item.weight;
  }
  double x = rng.uniform_real(0.0, total);
  for (std::size_t i = 0; i < items.size(); ++i) {
    x -= items[i].weight;
    if (x <= 0.0) {
      return i;
    }
  }
  return items.size() - 1;
}

double jittered(double base, double jitter, Rng& rng) {
  return base * rng.uniform_real(1.0 - jitter, 1.0 + jitter);
}

}  // namespace

ScenarioGenerator::ScenarioGenerator(
    ScenarioConfig config, std::vector<ServerClassParams> server_classes,
    std::vector<VmFlavorParams> vm_flavors)
    : config_(config),
      server_classes_(std::move(server_classes)),
      vm_flavors_(std::move(vm_flavors)) {
  IAAS_EXPECT(config_.datacenters > 0, "need at least one datacenter");
  IAAS_EXPECT(config_.total_servers > 0, "need at least one server");
  IAAS_EXPECT(config_.attribute_count >= 3,
              "canonical cpu/ram/disk attributes are required");
  IAAS_EXPECT(!server_classes_.empty() && !vm_flavors_.empty(),
              "need server classes and VM flavors");
  IAAS_EXPECT(config_.group_size_min >= 2 &&
                  config_.group_size_max >= config_.group_size_min,
              "relationship groups need at least two members");
  const std::vector<std::string> findings = validate_scenario(config_);
  for (const std::string& finding : findings) {
    IAAS_EXPECT(false, finding.c_str());
  }
}

FabricConfig ScenarioGenerator::fabric_config() const {
  FabricConfig fc;
  fc.datacenters = config_.datacenters;
  fc.servers_per_leaf = config_.servers_per_leaf;
  const std::uint32_t per_dc =
      (config_.total_servers + config_.datacenters - 1) / config_.datacenters;
  fc.leaves_per_dc =
      std::max(1u, (per_dc + fc.servers_per_leaf - 1) / fc.servers_per_leaf);
  fc.spines_per_dc = std::max(2u, fc.leaves_per_dc / 4);
  fc.cores = 2;
  return fc;
}

Infrastructure ScenarioGenerator::generate_infrastructure(
    std::uint64_t seed) const {
  Rng rng(seed ^ 0x696e667261ULL);  // independent of the request stream
  const FabricConfig fc = fabric_config();
  const Fabric fabric(fc);
  const std::size_t m = fabric.server_count();
  const std::size_t h = config_.attribute_count;

  std::vector<Server> servers(m);
  for (std::size_t j = 0; j < m; ++j) {
    Server& s = servers[j];
    s.datacenter = fabric.datacenter_of_server(static_cast<std::uint32_t>(j));
    const ServerClassParams& cls =
        server_classes_[draw_weighted(server_classes_, rng)];
    s.capacity.resize(h);
    s.factor.resize(h);
    s.max_load.resize(h);
    s.max_qos.resize(h);
    const std::array<double, 3> base = {cls.cpu_cores, cls.ram_gb,
                                        cls.disk_gb};
    for (std::size_t l = 0; l < h; ++l) {
      const double b = l < 3 ? base[l] : base[0] * 4.0;  // extra attrs scale
      s.capacity[l] = jittered(b, config_.capacity_jitter, rng);
      s.factor[l] = rng.uniform_real(config_.factor_min, config_.factor_max);
      s.max_load[l] =
          rng.uniform_real(config_.max_load_min, config_.max_load_max);
      s.max_qos[l] = rng.uniform_real(config_.max_qos_min, config_.max_qos_max);
    }
    s.opex = jittered(cls.opex, 0.15, rng);
    s.usage_cost = jittered(cls.usage_cost, 0.15, rng);
  }
  return Infrastructure(fc, std::move(servers));
}

RequestSet ScenarioGenerator::generate_requests(const Infrastructure& infra,
                                                std::uint32_t count,
                                                std::uint64_t seed) const {
  Rng rng(seed ^ 0x72657173ULL);
  const std::size_t h = config_.attribute_count;

  RequestSet requests;
  requests.vms.resize(count);
  // Deterministic, draw-free consumer identity: VM k of every batch
  // belongs to consumer k mod consumers, so each consumer recurs in
  // every window with a comparable slice of the batch.
  if (config_.consumers > 0) {
    for (std::uint32_t k = 0; k < count; ++k) {
      requests.vms[k].consumer = k % config_.consumers;
    }
  }
  for (VmRequest& vm : requests.vms) {
    const VmFlavorParams& flavor = vm_flavors_[draw_weighted(vm_flavors_, rng)];
    vm.demand.resize(h);
    const std::array<double, 3> base = {flavor.cpu_cores, flavor.ram_gb,
                                        flavor.disk_gb};
    for (std::size_t l = 0; l < h; ++l) {
      const double b = l < 3 ? base[l] : base[0];
      vm.demand[l] = jittered(b, 0.05, rng);
    }
    vm.qos_guarantee =
        rng.uniform_real(config_.qos_guarantee_min, config_.qos_guarantee_max);
    vm.downtime_cost =
        rng.uniform_real(config_.downtime_cost_min, config_.downtime_cost_max);
    vm.migration_cost = rng.uniform_real(config_.migration_cost_min,
                                         config_.migration_cost_max);
  }

  // Relationship groups (each VM in at most one group).
  std::vector<std::uint32_t> pool(count);
  std::iota(pool.begin(), pool.end(), 0u);
  rng.shuffle(pool);
  const auto constrained = static_cast<std::size_t>(
      config_.constrained_fraction * static_cast<double>(count));
  std::size_t cursor = 0;

  // Largest effective capacity per attribute, to keep same-server groups
  // satisfiable by construction.
  std::vector<double> max_eff(h, 0.0);
  for (std::size_t j = 0; j < infra.server_count(); ++j) {
    for (std::size_t l = 0; l < h; ++l) {
      max_eff[l] =
          std::max(max_eff[l], infra.server(j).effective_capacity(l));
    }
  }

  struct KindWeight {
    RelationKind kind;
    double weight;
  };
  const std::vector<KindWeight> kind_weights = {
      {RelationKind::kSameDatacenter, config_.weight_same_datacenter},
      {RelationKind::kSameServer, config_.weight_same_server},
      {RelationKind::kDifferentServers, config_.weight_different_servers},
      {RelationKind::kDifferentDatacenters,
       config_.weight_different_datacenters},
  };

  while (cursor + config_.group_size_min <= constrained) {
    const auto want = static_cast<std::uint32_t>(rng.uniform_int(
        config_.group_size_min, config_.group_size_max));
    const std::size_t size = std::min<std::size_t>(want, constrained - cursor);
    if (size < config_.group_size_min) {
      break;
    }
    PlacementConstraint c;
    c.kind = kind_weights[draw_weighted(kind_weights, rng)].kind;
    c.vms.assign(pool.begin() + static_cast<std::ptrdiff_t>(cursor),
                 pool.begin() + static_cast<std::ptrdiff_t>(cursor + size));
    cursor += size;

    // Keep generated scenarios satisfiable by construction:
    //  * a different-datacenters group cannot exceed g members;
    //  * a same-server group must fit the largest server.
    if (c.kind == RelationKind::kDifferentDatacenters &&
        c.vms.size() > infra.datacenter_count()) {
      c.kind = RelationKind::kDifferentServers;
    }
    if (c.kind == RelationKind::kSameServer) {
      for (std::size_t l = 0; l < h; ++l) {
        double sum = 0.0;
        for (std::uint32_t k : c.vms) {
          sum += requests.vms[k].demand[l];
        }
        if (sum > max_eff[l]) {
          c.kind = RelationKind::kSameDatacenter;
          break;
        }
      }
    }
    requests.constraints.push_back(std::move(c));
  }

  // Strategic misreporting post-pass.  Runs on private per-consumer
  // streams after every honest draw above, so the honest output is
  // byte-identical whenever the pass is disabled.
  apply_strategies(requests, infra, config_, seed);
  return requests;
}

Instance ScenarioGenerator::generate(std::uint64_t seed) const {
  Infrastructure infra = generate_infrastructure(seed);
  RequestSet requests = generate_requests(infra, config_.vms, seed);
  Instance instance(std::move(infra), std::move(requests));

  // Previous placement (for the migration objective).
  if (config_.preplaced_fraction > 0.0) {
    Rng rng(seed ^ 0x70726576ULL);
    ConstraintChecker checker(instance);
    Matrix<double> used(instance.m(), instance.h());
    Placement prev(instance.n());
    const auto preplaced = static_cast<std::size_t>(
        config_.preplaced_fraction * static_cast<double>(instance.n()));
    for (std::size_t k = 0; k < preplaced; ++k) {
      // Greedy random feasible placement; skip VMs that do not fit.
      const std::size_t start = rng.uniform_index(instance.m());
      for (std::size_t off = 0; off < instance.m(); ++off) {
        const std::size_t j = (start + off) % instance.m();
        if (checker.is_valid_allocation(prev, used, k, j)) {
          prev.assign(k, static_cast<std::int32_t>(j));
          for (std::size_t l = 0; l < instance.h(); ++l) {
            used(j, l) += instance.requests.vms[k].demand[l];
          }
          break;
        }
      }
    }
    instance.previous = std::move(prev);
  }

  return instance;
}

}  // namespace iaas
