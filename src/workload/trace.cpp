#include "workload/trace.h"

#include <cmath>
#include <numbers>

#include "common/expect.h"
#include "common/rng.h"

namespace iaas {
namespace {

std::size_t poisson(double mean, Rng& rng) {
  if (mean <= 0.0) {
    return 0;
  }
  const double limit = std::exp(-mean);
  std::size_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng.next_double();
  } while (p > limit);
  return k - 1;
}

}  // namespace

ArrivalTrace::ArrivalTrace(const TraceConfig& config, std::uint64_t seed)
    : config_(config) {
  IAAS_EXPECT(config.windows > 0, "trace needs at least one window");
  IAAS_EXPECT(config.period > 0.0, "diurnal period must be positive");
  IAAS_EXPECT(config.peak_rate >= config.trough_rate,
              "peak rate below trough rate");
  Rng rng(seed ^ 0x7472616365ULL);
  counts_.reserve(config.windows);
  bursts_.reserve(config.windows);
  for (std::size_t w = 0; w < config.windows; ++w) {
    double mean = expected_rate(w);
    const bool burst = rng.bernoulli(config.burst_probability);
    if (burst) {
      mean *= config.burst_multiplier;
    }
    bursts_.push_back(burst);
    counts_.push_back(poisson(mean, rng));
  }
}

double ArrivalTrace::expected_rate(std::size_t window) const {
  // Raised cosine peaking at peak_window: trough_rate at the antipode,
  // peak_rate at the peak.
  const double phase = 2.0 * std::numbers::pi *
                       (static_cast<double>(window) - config_.peak_window) /
                       config_.period;
  const double shape = 0.5 * (1.0 + std::cos(phase));
  return config_.trough_rate +
         (config_.peak_rate - config_.trough_rate) * shape;
}

std::size_t ArrivalTrace::total_arrivals() const {
  std::size_t total = 0;
  for (std::size_t c : counts_) {
    total += c;
  }
  return total;
}

}  // namespace iaas
