// Streaming append-only JSON writer — the zero-tree emission path for
// traces and bench reports.  A JsonEmitter writes directly into one
// caller-owned (reusable) std::string through the same formatters as
// Json::dump (json_detail::*), so for any document the streamed bytes
// are identical to building the equivalent Json tree and dumping it
// with the same indent.  That byte-equivalence is what lets the
// streaming writers be validated against the legacy tree emitters.
//
// Usage:
//   std::string buf;
//   JsonEmitter e(buf, /*indent=*/2);
//   e.begin_object();
//   e.key("label"); e.value("run");
//   e.key("rows");  e.begin_array();
//   e.value(std::uint64_t{7});
//   e.end_array();
//   e.end_object();          // buf now holds the full document
//
// An optional flush callback turns the buffer into a bounded window:
// whenever the buffer grows past `flush_threshold` bytes at a value
// boundary, the callback drains it (e.g. fwrite + clear), so emitting a
// million-window trace holds O(threshold) memory instead of O(run).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace iaas {

class Json;

class JsonEmitter {
 public:
  // Writes into `out` (appended; caller clears/reuses it between
  // documents).  indent < 0 -> compact; otherwise pretty-print with
  // that many spaces per level, matching Json::dump(indent).
  explicit JsonEmitter(std::string& out, int indent = -1)
      : out_(out), indent_(indent) {}

  // Install a drain: after each emitted token, if the buffer exceeds
  // `threshold` bytes the callback receives its contents and the buffer
  // is cleared.  Chunks are arbitrary byte splits of the final document
  // — concatenating them reproduces it exactly.
  void set_flush(std::function<void(std::string_view)> flush,
                 std::size_t threshold) {
    flush_ = std::move(flush);
    flush_threshold_ = threshold;
  }

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  // Object member key; must be followed by exactly one value or
  // container begin.
  void key(std::string_view k);

  void value_null();
  void value(bool b);
  void value(double d);  // aborts on non-finite (json_detail screen)
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }

  // Append `raw` verbatim in value position (already-serialised JSON —
  // e.g. a sub-document produced by another emitter pass).
  void value_raw(std::string_view raw);

  [[nodiscard]] int depth() const { return depth_; }
  // Bytes drained through the flush callback so far; the tail still in
  // the buffer is not counted until it flushes (or the owner drains the
  // buffer itself, as the trace writers do).
  [[nodiscard]] std::size_t bytes_emitted() const { return bytes_emitted_; }
  // High-water mark of the in-memory buffer across the emitter's
  // lifetime — with a flush installed this stays O(threshold + one
  // value) regardless of document size.
  [[nodiscard]] std::size_t peak_buffer_bytes() const { return peak_; }

 private:
  void separate_child();
  void newline_indent(int depth);
  void before_value();
  void after_value();

  std::string& out_;
  int indent_;
  int depth_ = 0;                    // open containers
  bool key_pending_ = false;         // key() emitted, value expected
  std::uint64_t child_written_ = 0;  // bit d: depth-d container non-empty
  std::function<void(std::string_view)> flush_;
  std::size_t flush_threshold_ = 0;
  std::size_t bytes_emitted_ = 0;
  std::size_t peak_ = 0;
};

// Walk a Json tree through an emitter (exact re-emission, preserving
// integer lexemes).  Used by the converter and round-trip tests.
void emit_json(JsonEmitter& emitter, const Json& value);

}  // namespace iaas
