#include "io/trace_json.h"

#include <stdexcept>

#include "common/expect.h"
#include "io/trace_stream.h"

namespace iaas {

namespace {

[[noreturn]] void shape_error(const std::string& what) {
  throw std::runtime_error("trace_json: " + what);
}

std::size_t as_size(const Json& j) {
  return static_cast<std::size_t>(j.as_uint64());
}

Json row_to_json(const telemetry::GenerationRow& row) {
  // Mirrors RunTrace::columns() order exactly — check_trace and the
  // notebook joins rely on positional access.
  Json out = Json::array();
  // Counters as exact integer lexemes (seeds/counters past 2^53 must
  // not round through a double); objectives and seconds stay doubles.
  const auto count = [&out](std::size_t v) {
    out.push_back(Json::integer(static_cast<std::uint64_t>(v)));
  };
  const auto push = [&out](double v) { out.push_back(Json::number(v)); };
  count(row.generation);
  count(row.evaluations);
  count(row.full_rebuilds);
  count(row.delta_moves);
  count(row.rebases);
  count(row.repair_invocations);
  count(row.repaired);
  count(row.unrepairable);
  count(row.tabu_moves_tried);
  count(row.tabu_moves_accepted);
  count(row.front_size);
  push(row.best_objectives[0]);
  push(row.best_objectives[1]);
  push(row.best_objectives[2]);
  push(row.seconds_tournament);
  push(row.seconds_variation);
  push(row.seconds_repair);
  push(row.seconds_evaluate);
  push(row.seconds_selection);
  return out;
}

}  // namespace

Json trace_to_json(const telemetry::RunTrace& trace) {
  Json out = Json::object();
  out["label"] = Json::string(trace.label);
  out["seed"] = Json::integer(trace.seed);
  Json columns = Json::array();
  for (const std::string& name : telemetry::RunTrace::columns()) {
    columns.push_back(Json::string(name));
  }
  out["columns"] = std::move(columns);
  Json rows = Json::array();
  for (const telemetry::GenerationRow& row : trace.rows) {
    rows.push_back(row_to_json(row));
  }
  out["rows"] = std::move(rows);
  return out;
}

void write_trace_json(const telemetry::RunTrace& trace,
                      const std::string& path) {
  // One reusable scratch buffer per thread, fed by the streaming emitter
  // (no intermediate Json tree); shrunk back after an oversized trace so
  // one huge run cannot pin peak capacity for the thread's lifetime.
  static thread_local std::string scratch;
  scratch.clear();
  JsonFileSink sink(path);
  JsonEmitter emitter(scratch, 2);
  emit_run_trace(emitter, trace);
  scratch += '\n';
  sink.write(scratch);
  sink.close();
  shrink_scratch(scratch);
}

telemetry::RunTrace trace_from_json(const Json& json) {
  telemetry::RunTrace trace;
  trace.label = json.at("label").as_string();
  trace.seed = json.at("seed").as_uint64();
  const auto& expected = telemetry::RunTrace::columns();
  const Json& columns = json.at("columns");
  if (columns.size() != expected.size()) {
    shape_error("trace column count mismatch");
  }
  for (std::size_t i = 0; i < expected.size(); ++i) {
    if (columns.at(i).as_string() != expected[i]) {
      shape_error("unknown trace column " + columns.at(i).as_string());
    }
  }
  const Json& rows = json.at("rows");
  trace.rows.reserve(rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const Json& row = rows.at(r);
    if (row.size() != expected.size()) {
      shape_error("trace row width mismatch");
    }
    telemetry::GenerationRow g;
    g.generation = as_size(row.at(0));
    g.evaluations = as_size(row.at(1));
    g.full_rebuilds = as_size(row.at(2));
    g.delta_moves = as_size(row.at(3));
    g.rebases = as_size(row.at(4));
    g.repair_invocations = as_size(row.at(5));
    g.repaired = as_size(row.at(6));
    g.unrepairable = as_size(row.at(7));
    g.tabu_moves_tried = as_size(row.at(8));
    g.tabu_moves_accepted = as_size(row.at(9));
    g.front_size = as_size(row.at(10));
    g.best_objectives = {row.at(11).as_number(), row.at(12).as_number(),
                         row.at(13).as_number()};
    g.seconds_tournament = row.at(14).as_number();
    g.seconds_variation = row.at(15).as_number();
    g.seconds_repair = row.at(16).as_number();
    g.seconds_evaluate = row.at(17).as_number();
    g.seconds_selection = row.at(18).as_number();
    trace.rows.push_back(g);
  }
  return trace;
}

namespace {

Json fault_event_to_json(const FaultEvent& event) {
  Json out = Json::object();
  out["window"] = Json::integer(static_cast<std::uint64_t>(event.window));
  out["kind"] = Json::string(fault_event_kind_name(event.kind));
  out["index"] = Json::integer(static_cast<std::uint64_t>(event.index));
  Json servers = Json::array();
  for (std::uint32_t s : event.servers) {
    servers.push_back(Json::integer(static_cast<std::uint64_t>(s)));
  }
  out["servers"] = std::move(servers);
  out["mttr_windows"] =
      Json::integer(static_cast<std::uint64_t>(event.mttr_windows));
  return out;
}

FaultEvent fault_event_from_json(const Json& json) {
  FaultEvent event;
  event.window = as_size(json.at("window"));
  const std::string& kind = json.at("kind").as_string();
  bool known = false;
  for (FaultEventKind k :
       {FaultEventKind::kServerFailure, FaultEventKind::kLeafFailure,
        FaultEventKind::kRepair, FaultEventKind::kDecommission}) {
    if (kind == fault_event_kind_name(k)) {
      event.kind = k;
      known = true;
      break;
    }
  }
  if (!known) {
    shape_error("unknown fault event kind " + kind);
  }
  event.index = static_cast<std::uint32_t>(json.at("index").as_uint64());
  const Json& servers = json.at("servers");
  event.servers.reserve(servers.size());
  for (std::size_t i = 0; i < servers.size(); ++i) {
    event.servers.push_back(
        static_cast<std::uint32_t>(servers.at(i).as_uint64()));
  }
  event.mttr_windows = as_size(json.at("mttr_windows"));
  return event;
}

Json provider_metrics_to_json(const ProviderWindowMetrics& p) {
  Json out = Json::object();
  const auto num = [](std::size_t v) {
    return Json::integer(static_cast<std::uint64_t>(v));
  };
  out["provider"] = num(p.provider);
  out["online"] = Json::boolean(p.online);
  out["price_multiplier"] = Json::number(p.price_multiplier);
  out["running"] = num(p.running);
  out["routed"] = num(p.routed);
  out["rejected"] = num(p.rejected);
  out["evicted"] = num(p.evicted);
  out["redirects_in"] = num(p.redirects_in);
  out["failed_servers"] = num(p.failed_servers);
  out["migrations"] = num(p.migrations);
  out["migration_cost"] = Json::number(p.migration_cost);
  Json objectives = Json::array();
  objectives.push_back(Json::number(p.objectives.usage_cost));
  objectives.push_back(Json::number(p.objectives.downtime_cost));
  objectives.push_back(Json::number(p.objectives.migration_cost));
  out["objectives"] = std::move(objectives);
  return out;
}

ProviderWindowMetrics provider_metrics_from_json(const Json& json) {
  ProviderWindowMetrics p;
  p.provider = static_cast<std::uint32_t>(json.at("provider").as_uint64());
  p.online = json.at("online").as_bool();
  p.price_multiplier = json.at("price_multiplier").as_number();
  p.running = as_size(json.at("running"));
  p.routed = as_size(json.at("routed"));
  p.rejected = as_size(json.at("rejected"));
  p.evicted = as_size(json.at("evicted"));
  p.redirects_in = as_size(json.at("redirects_in"));
  p.failed_servers = as_size(json.at("failed_servers"));
  p.migrations = as_size(json.at("migrations"));
  p.migration_cost = json.at("migration_cost").as_number();
  const Json& objectives = json.at("objectives");
  if (objectives.size() != 3) {
    shape_error("provider objective vector must have three terms");
  }
  p.objectives.usage_cost = objectives.at(0).as_number();
  p.objectives.downtime_cost = objectives.at(1).as_number();
  p.objectives.migration_cost = objectives.at(2).as_number();
  return p;
}

DegradeLevel degrade_level_from_name(const std::string& name) {
  for (DegradeLevel level :
       {DegradeLevel::kNone, DegradeLevel::kBestEffort,
        DegradeLevel::kFallback}) {
    if (name == degrade_level_name(level)) {
      return level;
    }
  }
  shape_error("unknown degrade level " + name);
}

}  // namespace

Json sim_trace_to_json(const std::vector<WindowMetrics>& metrics) {
  Json out = Json::object();
  Json windows = Json::array();
  for (const WindowMetrics& row : metrics) {
    Json w = Json::object();
    const auto num = [](std::size_t v) {
      return Json::integer(static_cast<std::uint64_t>(v));
    };
    w["window"] = num(row.window);
    w["arrived"] = num(row.arrived);
    w["departed"] = num(row.departed);
    w["running"] = num(row.running);
    w["rejected"] = num(row.rejected);
    w["boots"] = num(row.boots);
    w["migrations"] = num(row.migrations);
    w["migration_cost"] = Json::number(row.migration_cost);
    w["failed_servers"] = num(row.failed_servers);
    w["repaired_servers"] = num(row.repaired_servers);
    w["decommissioned_servers"] = num(row.decommissioned_servers);
    w["displaced_vms"] = num(row.displaced_vms);
    w["vms_on_down_servers"] = num(row.vms_on_down_servers);
    Json events = Json::array();
    for (const FaultEvent& event : row.fault_events) {
      events.push_back(fault_event_to_json(event));
    }
    w["fault_events"] = std::move(events);
    w["evicted"] = num(row.evicted);
    w["retried"] = num(row.retried);
    w["permanently_rejected"] = num(row.permanently_rejected);
    w["retry_queue_depth"] = num(row.retry_queue_depth);
    // Multi-cloud columns, emitted only for brokered traces so legacy
    // single-cloud fixtures keep their exact shape.
    if (!row.providers.empty()) {
      Json providers = Json::array();
      for (const ProviderWindowMetrics& p : row.providers) {
        providers.push_back(provider_metrics_to_json(p));
      }
      w["providers"] = std::move(providers);
      w["redirects"] = num(row.redirects);
      w["offline_providers"] = num(row.offline_providers);
      w["cross_cloud_migration_cost"] =
          Json::number(row.cross_cloud_migration_cost);
    }
    // Admission-control and shard blocks, emitted only when active so
    // legacy fixtures keep their exact shape.
    if (row.admitted != 0 || row.admission_deferred != 0 ||
        row.admission_dropped != 0 || row.admission_queue_depth != 0) {
      Json admission = Json::object();
      admission["admitted"] = num(row.admitted);
      admission["deferred"] = num(row.admission_deferred);
      admission["dropped"] = num(row.admission_dropped);
      admission["queue_depth"] = num(row.admission_queue_depth);
      w["admission"] = std::move(admission);
    }
    if (row.shard.shard_count != 0) {
      Json shard = Json::object();
      shard["shard_count"] = num(row.shard.shard_count);
      shard["pre_rejections"] = num(row.shard.pre_rejections);
      shard["rebalance_placements"] = num(row.shard.rebalance_placements);
      shard["migrations"] = num(row.shard.migrations);
      shard["max_shard_vms"] = num(row.shard.max_shard_vms);
      shard["min_shard_vms"] = num(row.shard.min_shard_vms);
      w["shard"] = std::move(shard);
    }
    // Fairness block: absent for legacy anonymous runs (consumers == 0).
    if (row.fairness.consumers != 0) {
      Json fairness = Json::object();
      fairness["consumers"] = num(row.fairness.consumers);
      fairness["strategic_consumers"] = num(row.fairness.strategic_consumers);
      fairness["strategic_vms"] = num(row.fairness.strategic_vms);
      fairness["jain_index"] = Json::number(row.fairness.jain_index);
      fairness["long_term_jain"] = Json::number(row.fairness.long_term_jain);
      fairness["envy"] = Json::number(row.fairness.envy);
      fairness["utilization_efficiency"] =
          Json::number(row.fairness.utilization_efficiency);
      fairness["honest_welfare"] = Json::number(row.fairness.honest_welfare);
      fairness["strategic_welfare"] =
          Json::number(row.fairness.strategic_welfare);
      fairness["energy_cost"] = Json::number(row.fairness.energy_cost);
      w["fairness"] = std::move(fairness);
    }
    w["degrade"] = Json::string(degrade_level_name(row.degrade));
    w["fallback_algorithm"] = Json::string(row.fallback_algorithm);
    Json objectives = Json::array();
    objectives.push_back(Json::number(row.objectives.usage_cost));
    objectives.push_back(Json::number(row.objectives.downtime_cost));
    objectives.push_back(Json::number(row.objectives.migration_cost));
    w["objectives"] = std::move(objectives);
    w["solve_seconds"] = Json::number(row.solve_seconds);
    if (!row.allocator_trace.empty()) {
      w["allocator_trace"] = trace_to_json(row.allocator_trace);
    }
    windows.push_back(std::move(w));
  }
  out["windows"] = std::move(windows);
  return out;
}

std::vector<WindowMetrics> sim_trace_from_json(const Json& json) {
  const Json& windows = json.at("windows");
  std::vector<WindowMetrics> metrics;
  metrics.reserve(windows.size());
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const Json& w = windows.at(i);
    WindowMetrics row;
    row.window = as_size(w.at("window"));
    row.arrived = as_size(w.at("arrived"));
    row.departed = as_size(w.at("departed"));
    row.running = as_size(w.at("running"));
    row.rejected = as_size(w.at("rejected"));
    row.boots = as_size(w.at("boots"));
    row.migrations = as_size(w.at("migrations"));
    row.migration_cost = w.at("migration_cost").as_number();
    row.failed_servers = as_size(w.at("failed_servers"));
    row.repaired_servers = as_size(w.at("repaired_servers"));
    row.decommissioned_servers = as_size(w.at("decommissioned_servers"));
    row.displaced_vms = as_size(w.at("displaced_vms"));
    row.vms_on_down_servers = as_size(w.at("vms_on_down_servers"));
    const Json& events = w.at("fault_events");
    row.fault_events.reserve(events.size());
    for (std::size_t e = 0; e < events.size(); ++e) {
      row.fault_events.push_back(fault_event_from_json(events.at(e)));
    }
    row.evicted = as_size(w.at("evicted"));
    row.retried = as_size(w.at("retried"));
    row.permanently_rejected = as_size(w.at("permanently_rejected"));
    row.retry_queue_depth = as_size(w.at("retry_queue_depth"));
    if (w.contains("providers")) {
      const Json& providers = w.at("providers");
      row.providers.reserve(providers.size());
      for (std::size_t p = 0; p < providers.size(); ++p) {
        row.providers.push_back(
            provider_metrics_from_json(providers.at(p)));
      }
      row.redirects = as_size(w.at("redirects"));
      row.offline_providers = as_size(w.at("offline_providers"));
      row.cross_cloud_migration_cost =
          w.at("cross_cloud_migration_cost").as_number();
    }
    if (w.contains("admission")) {
      const Json& admission = w.at("admission");
      row.admitted = as_size(admission.at("admitted"));
      row.admission_deferred = as_size(admission.at("deferred"));
      row.admission_dropped = as_size(admission.at("dropped"));
      row.admission_queue_depth = as_size(admission.at("queue_depth"));
    }
    if (w.contains("shard")) {
      const Json& shard = w.at("shard");
      row.shard.shard_count = as_size(shard.at("shard_count"));
      row.shard.pre_rejections = as_size(shard.at("pre_rejections"));
      row.shard.rebalance_placements =
          as_size(shard.at("rebalance_placements"));
      row.shard.migrations = as_size(shard.at("migrations"));
      row.shard.max_shard_vms = as_size(shard.at("max_shard_vms"));
      row.shard.min_shard_vms = as_size(shard.at("min_shard_vms"));
    }
    if (w.contains("fairness")) {
      const Json& fairness = w.at("fairness");
      row.fairness.consumers = as_size(fairness.at("consumers"));
      row.fairness.strategic_consumers =
          as_size(fairness.at("strategic_consumers"));
      row.fairness.strategic_vms = as_size(fairness.at("strategic_vms"));
      row.fairness.jain_index = fairness.at("jain_index").as_number();
      row.fairness.long_term_jain = fairness.at("long_term_jain").as_number();
      row.fairness.envy = fairness.at("envy").as_number();
      row.fairness.utilization_efficiency =
          fairness.at("utilization_efficiency").as_number();
      row.fairness.honest_welfare = fairness.at("honest_welfare").as_number();
      row.fairness.strategic_welfare =
          fairness.at("strategic_welfare").as_number();
      row.fairness.energy_cost = fairness.at("energy_cost").as_number();
    }
    row.degrade = degrade_level_from_name(w.at("degrade").as_string());
    row.fallback_algorithm = w.at("fallback_algorithm").as_string();
    const Json& objectives = w.at("objectives");
    if (objectives.size() != 3) {
      shape_error("objective vector must have three terms");
    }
    row.objectives.usage_cost = objectives.at(0).as_number();
    row.objectives.downtime_cost = objectives.at(1).as_number();
    row.objectives.migration_cost = objectives.at(2).as_number();
    row.solve_seconds = w.at("solve_seconds").as_number();
    if (w.contains("allocator_trace")) {
      row.allocator_trace = trace_from_json(w.at("allocator_trace"));
    }
    metrics.push_back(std::move(row));
  }
  return metrics;
}

Json registry_to_json(const telemetry::Registry& registry) {
  Json out = Json::object();
  Json counters = Json::object();
  const telemetry::CounterBlock block = registry.counters();
  for (std::size_t i = 0; i < telemetry::kCounterCount; ++i) {
    const auto c = static_cast<telemetry::Counter>(i);
    counters[telemetry::counter_name(c)] = Json::integer(block[c]);
  }
  out["counters"] = std::move(counters);
  Json phases = Json::object();
  const auto seconds = registry.phase_seconds();
  for (std::size_t i = 0; i < telemetry::kPhaseCount; ++i) {
    const auto p = static_cast<telemetry::Phase>(i);
    phases[telemetry::phase_name(p)] = Json::number(seconds[i]);
  }
  out["phase_seconds"] = std::move(phases);
  return out;
}

}  // namespace iaas
