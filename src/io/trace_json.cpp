#include "io/trace_json.h"

#include <fstream>

#include "common/expect.h"

namespace iaas {

namespace {

Json row_to_json(const telemetry::GenerationRow& row) {
  // Mirrors RunTrace::columns() order exactly — check_trace and the
  // notebook joins rely on positional access.
  Json out = Json::array();
  const auto push = [&out](double v) { out.push_back(Json::number(v)); };
  push(static_cast<double>(row.generation));
  push(static_cast<double>(row.evaluations));
  push(static_cast<double>(row.full_rebuilds));
  push(static_cast<double>(row.delta_moves));
  push(static_cast<double>(row.repair_invocations));
  push(static_cast<double>(row.repaired));
  push(static_cast<double>(row.unrepairable));
  push(static_cast<double>(row.tabu_moves_tried));
  push(static_cast<double>(row.tabu_moves_accepted));
  push(static_cast<double>(row.front_size));
  push(row.best_objectives[0]);
  push(row.best_objectives[1]);
  push(row.best_objectives[2]);
  push(row.seconds_tournament);
  push(row.seconds_variation);
  push(row.seconds_repair);
  push(row.seconds_evaluate);
  push(row.seconds_selection);
  return out;
}

}  // namespace

Json trace_to_json(const telemetry::RunTrace& trace) {
  Json out = Json::object();
  out["label"] = Json::string(trace.label);
  out["seed"] = Json::number(static_cast<double>(trace.seed));
  Json columns = Json::array();
  for (const std::string& name : telemetry::RunTrace::columns()) {
    columns.push_back(Json::string(name));
  }
  out["columns"] = std::move(columns);
  Json rows = Json::array();
  for (const telemetry::GenerationRow& row : trace.rows) {
    rows.push_back(row_to_json(row));
  }
  out["rows"] = std::move(rows);
  return out;
}

void write_trace_json(const telemetry::RunTrace& trace,
                      const std::string& path) {
  std::ofstream out(path);
  IAAS_EXPECT(out.is_open(),
              ("trace_json: cannot open " + path).c_str());
  out << trace_to_json(trace).dump(2) << '\n';
  out.flush();
  IAAS_EXPECT(out.good(), ("trace_json: write error on " + path).c_str());
}

Json registry_to_json(const telemetry::Registry& registry) {
  Json out = Json::object();
  Json counters = Json::object();
  const telemetry::CounterBlock block = registry.counters();
  for (std::size_t i = 0; i < telemetry::kCounterCount; ++i) {
    const auto c = static_cast<telemetry::Counter>(i);
    counters[telemetry::counter_name(c)] =
        Json::number(static_cast<double>(block[c]));
  }
  out["counters"] = std::move(counters);
  Json phases = Json::object();
  const auto seconds = registry.phase_seconds();
  for (std::size_t i = 0; i < telemetry::kPhaseCount; ++i) {
    const auto p = static_cast<telemetry::Phase>(i);
    phases[telemetry::phase_name(p)] = Json::number(seconds[i]);
  }
  out["phase_seconds"] = std::move(phases);
  return out;
}

}  // namespace iaas
