#include "io/json.h"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>

#include "common/expect.h"

namespace iaas {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("json: " + what);
}

// Exact double == integer comparisons.  A double equals a uint64 only
// when it is integral, in range, and the cast round-trips bit-exactly.
bool double_equals_uint(double d, std::uint64_t u) {
  if (!(d >= 0.0) || d != std::floor(d) ||
      d >= 18446744073709551616.0 /* 2^64 */) {
    return false;
  }
  const auto cast = static_cast<std::uint64_t>(d);
  return cast == u && static_cast<double>(cast) == d;
}

bool double_equals_int(double d, std::int64_t i) {
  if (i >= 0) {
    return double_equals_uint(d, static_cast<std::uint64_t>(i));
  }
  if (d != std::floor(d) || d >= 0.0 ||
      d < -9223372036854775808.0 /* -2^63 */) {
    return false;
  }
  const auto cast = static_cast<std::int64_t>(d);
  return cast == i && static_cast<double>(cast) == d;
}

}  // namespace

Json Json::number(double d) {
  IAAS_EXPECT(std::isfinite(d),
              "json: non-finite number cannot be represented");
  Json j;
  j.value_ = d;
  return j;
}

Json::Type Json::type() const {
  switch (value_.index()) {
    case 0:
      return Type::kNull;
    case 1:
      return Type::kBool;
    case 2:  // double
    case 3:  // int64
    case 4:  // uint64
      return Type::kNumber;
    case 5:
      return Type::kString;
    case 6:
      return Type::kArray;
    default:
      return Type::kObject;
  }
}

bool Json::as_bool() const {
  if (const bool* b = std::get_if<bool>(&value_)) {
    return *b;
  }
  fail("not a boolean");
}

double Json::as_number() const {
  if (const double* d = std::get_if<double>(&value_)) {
    return *d;
  }
  if (const std::int64_t* i = std::get_if<std::int64_t>(&value_)) {
    return static_cast<double>(*i);
  }
  if (const std::uint64_t* u = std::get_if<std::uint64_t>(&value_)) {
    return static_cast<double>(*u);
  }
  fail("not a number");
}

std::uint64_t Json::as_uint64() const {
  if (const std::uint64_t* u = std::get_if<std::uint64_t>(&value_)) {
    return *u;
  }
  if (const std::int64_t* i = std::get_if<std::int64_t>(&value_)) {
    if (*i >= 0) {
      return static_cast<std::uint64_t>(*i);
    }
    fail("negative integer is not a uint64");
  }
  if (const double* d = std::get_if<double>(&value_)) {
    const auto cast = static_cast<std::uint64_t>(*d);
    if (double_equals_uint(*d, cast)) {
      return cast;
    }
    fail("number is not an exact uint64");
  }
  fail("not a number");
}

std::int64_t Json::as_int64() const {
  if (const std::int64_t* i = std::get_if<std::int64_t>(&value_)) {
    return *i;
  }
  if (const std::uint64_t* u = std::get_if<std::uint64_t>(&value_)) {
    if (*u <= static_cast<std::uint64_t>(
                  std::numeric_limits<std::int64_t>::max())) {
      return static_cast<std::int64_t>(*u);
    }
    fail("integer overflows int64");
  }
  if (const double* d = std::get_if<double>(&value_)) {
    if (*d == std::floor(*d) && *d >= -9223372036854775808.0 &&
        *d < 9223372036854775808.0) {
      const auto cast = static_cast<std::int64_t>(*d);
      if (static_cast<double>(cast) == *d) {
        return cast;
      }
    }
    fail("number is not an exact int64");
  }
  fail("not a number");
}

bool Json::holds_unsigned() const {
  return std::holds_alternative<std::uint64_t>(value_);
}

bool Json::holds_signed() const {
  return std::holds_alternative<std::int64_t>(value_);
}

const std::string& Json::as_string() const {
  if (const std::string* s = std::get_if<std::string>(&value_)) {
    return *s;
  }
  fail("not a string");
}

void Json::push_back(Json element) {
  if (Array* a = std::get_if<Array>(&value_)) {
    a->push_back(std::move(element));
    return;
  }
  fail("push_back on non-array");
}

std::size_t Json::size() const {
  if (const Array* a = std::get_if<Array>(&value_)) {
    return a->size();
  }
  if (const Object* o = std::get_if<Object>(&value_)) {
    return o->size();
  }
  fail("size of non-container");
}

const Json& Json::at(std::size_t index) const {
  if (const Array* a = std::get_if<Array>(&value_)) {
    if (index >= a->size()) {
      fail("array index out of range");
    }
    return (*a)[index];
  }
  fail("indexing non-array");
}

Json& Json::operator[](const std::string& key) {
  Object* o = std::get_if<Object>(&value_);
  if (o == nullptr) {
    fail("operator[] on non-object");
  }
  for (auto& [k, v] : *o) {
    if (k == key) {
      return v;
    }
  }
  o->emplace_back(key, Json());
  return o->back().second;
}

bool Json::contains(const std::string& key) const {
  const Object* o = std::get_if<Object>(&value_);
  if (o == nullptr) {
    return false;
  }
  for (const auto& [k, v] : *o) {
    if (k == key) {
      return true;
    }
  }
  return false;
}

const Json& Json::at(const std::string& key) const {
  if (const Object* o = std::get_if<Object>(&value_)) {
    for (const auto& [k, v] : *o) {
      if (k == key) {
        return v;
      }
    }
    fail("missing key '" + key + "'");
  }
  fail("keyed access on non-object");
}

const std::vector<std::pair<std::string, Json>>& Json::items() const {
  if (const Object* o = std::get_if<Object>(&value_)) {
    return *o;
  }
  fail("items() on non-object");
}

bool operator==(const Json& a, const Json& b) {
  if (a.type() != b.type()) {
    return false;
  }
  if (a.type() != Json::Type::kNumber) {
    // Same type -> same variant index for non-numbers; containers
    // recurse back into this operator through std::vector's ==.
    return a.value_ == b.value_;
  }
  // Numbers compare by value across their three storage forms, so an
  // integral double equals the integer lexeme it parses back as.
  if (const double* da = std::get_if<double>(&a.value_)) {
    if (const double* db = std::get_if<double>(&b.value_)) {
      return *da == *db;
    }
    if (const std::int64_t* ib = std::get_if<std::int64_t>(&b.value_)) {
      return double_equals_int(*da, *ib);
    }
    return double_equals_uint(*da, std::get<std::uint64_t>(b.value_));
  }
  if (const std::int64_t* ia = std::get_if<std::int64_t>(&a.value_)) {
    if (const double* db = std::get_if<double>(&b.value_)) {
      return double_equals_int(*db, *ia);
    }
    if (const std::int64_t* ib = std::get_if<std::int64_t>(&b.value_)) {
      return *ia == *ib;
    }
    const std::uint64_t ub = std::get<std::uint64_t>(b.value_);
    return *ia >= 0 && static_cast<std::uint64_t>(*ia) == ub;
  }
  const std::uint64_t ua = std::get<std::uint64_t>(a.value_);
  if (const double* db = std::get_if<double>(&b.value_)) {
    return double_equals_uint(*db, ua);
  }
  if (const std::int64_t* ib = std::get_if<std::int64_t>(&b.value_)) {
    return *ib >= 0 && static_cast<std::uint64_t>(*ib) == ua;
  }
  return ua == std::get<std::uint64_t>(b.value_);
}

// ---------------------------------------------------------------- dump --

namespace json_detail {

void escape_string(std::string_view s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void format_double(double d, std::string& out) {
  IAAS_EXPECT(std::isfinite(d),
              "json: non-finite number cannot be serialised");
  // Round integral values exactly; otherwise shortest round-trip-ish.
  char buf[32];
  if (d == std::floor(d) && std::fabs(d) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", d);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", d);
  }
  out += buf;
}

void format_uint(std::uint64_t v, std::string& out) {
  char buf[24];
  const auto result = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, result.ptr);
}

void format_int(std::int64_t v, std::string& out) {
  char buf[24];
  const auto result = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, result.ptr);
}

}  // namespace json_detail

namespace {

void newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) {
    return;
  }
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (value_.index()) {
    case 0:  // null
      out += "null";
      return;
    case 1:  // bool
      out += std::get<bool>(value_) ? "true" : "false";
      return;
    case 2:  // double
      json_detail::format_double(std::get<double>(value_), out);
      return;
    case 3:  // int64
      json_detail::format_int(std::get<std::int64_t>(value_), out);
      return;
    case 4:  // uint64
      json_detail::format_uint(std::get<std::uint64_t>(value_), out);
      return;
    case 5:  // string
      json_detail::escape_string(std::get<std::string>(value_), out);
      return;
    case 6: {  // array
      const Array& a = std::get<Array>(value_);
      if (a.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i > 0) {
          out += ',';
        }
        newline_indent(out, indent, depth + 1);
        a[i].dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += ']';
      return;
    }
    default: {  // object
      const Object& o = std::get<Object>(value_);
      if (o.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < o.size(); ++i) {
        if (i > 0) {
          out += ',';
        }
        newline_indent(out, indent, depth + 1);
        json_detail::escape_string(o[i].first, out);
        out += indent < 0 ? ":" : ": ";
        o[i].second.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::size_t Json::dump_estimate(int indent, int depth) const {
  // Per-element separator cost: "," plus (pretty mode) newline + indent.
  const std::size_t sep =
      1 + (indent >= 0
               ? 1 + static_cast<std::size_t>(indent) *
                         static_cast<std::size_t>(depth + 1)
               : 0);
  switch (type()) {
    case Type::kNull:
    case Type::kBool:
      return 5;
    case Type::kNumber:
      return 24;  // "%.17g" / 20-digit uint64 worst case + sign
    case Type::kString:
      // Quotes plus headroom for the occasional escape; a pathological
      // all-escape string just falls back to amortised growth.
      return std::get<std::string>(value_).size() + 8;
    case Type::kArray: {
      const Array& a = std::get<Array>(value_);
      std::size_t total = 2 + sep;  // brackets + closing newline/indent
      for (const Json& element : a) {
        total += element.dump_estimate(indent, depth + 1) + sep;
      }
      return total;
    }
    case Type::kObject: {
      const Object& o = std::get<Object>(value_);
      std::size_t total = 2 + sep;
      for (const auto& [key, element] : o) {
        total += key.size() + 4 +  // quoted key + ": "
                 element.dump_estimate(indent, depth + 1) + sep;
      }
      return total;
    }
  }
  return 0;
}

std::string Json::dump(int indent) const {
  std::string out;
  out.reserve(dump_estimate(indent, 0));
  dump_to(out, indent, 0);
  return out;
}

void Json::dump_into(std::string& out, int indent) const {
  out.clear();
  const std::size_t estimate = dump_estimate(indent, 0);
  if (out.capacity() < estimate) {
    out.reserve(estimate);
  }
  dump_to(out, indent, 0);
}

// --------------------------------------------------------------- parse --

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) {
      error("trailing characters after document");
    }
    return value;
  }

 private:
  // Entered at each container open; throws past Json::kMaxParseDepth so
  // nesting bombs become parse errors instead of stack overflows.
  struct DepthGuard {
    explicit DepthGuard(Parser& p) : parser(p) {
      if (++parser.depth_ > Json::kMaxParseDepth) {
        parser.error("containers nested deeper than kMaxParseDepth");
      }
    }
    ~DepthGuard() { --parser.depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;
    Parser& parser;
  };

  [[noreturn]] void error(const std::string& what) const {
    fail(what + " at offset " + std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_whitespace();
    if (pos_ >= text_.size()) {
      error("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      error(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Json parse_value() {
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json::string(parse_string());
      case 't':
        if (consume_literal("true")) {
          return Json::boolean(true);
        }
        error("invalid literal");
      case 'f':
        if (consume_literal("false")) {
          return Json::boolean(false);
        }
        error("invalid literal");
      case 'n':
        if (consume_literal("null")) {
          return Json::null();
        }
        error("invalid literal");
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    DepthGuard depth_guard(*this);
    Json obj = Json::object();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      if (peek() != '"') {
        error("expected object key");
      }
      std::string key = parse_string();
      expect(':');
      obj[key] = parse_value();
      const char c = peek();
      ++pos_;
      if (c == '}') {
        return obj;
      }
      if (c != ',') {
        error("expected ',' or '}' in object");
      }
    }
  }

  Json parse_array() {
    expect('[');
    DepthGuard depth_guard(*this);
    Json arr = Json::array();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') {
        return arr;
      }
      if (c != ',') {
        error("expected ',' or ']' in array");
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        error("unterminated escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            error("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              error("invalid \\u escape");
            }
          }
          // UTF-8 encode (BMP only; surrogate pairs unsupported — the
          // library never emits them).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          error("unknown escape");
      }
    }
    error("unterminated string");
  }

  Json parse_number() {
    skip_whitespace();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    bool integral = true;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      if (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E') {
        integral = false;
      }
      ++pos_;
    }
    if (pos_ == start) {
      error("expected a value");
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      // Pure digit lexeme (optional sign): parse exactly as a 64-bit
      // integer so seeds/counters survive past 2^53.  "-0" stays a
      // double to preserve the signed zero's round-trip text, and
      // out-of-range magnitudes fall through to the double path.
      const bool negative = token[0] == '-';
      bool digits_only = token.size() > (negative ? 1u : 0u);
      for (std::size_t i = negative ? 1 : 0; i < token.size(); ++i) {
        if (token[i] < '0' || token[i] > '9') {
          digits_only = false;
          break;
        }
      }
      if (digits_only) {
        errno = 0;
        char* end = nullptr;
        if (negative) {
          const long long v = std::strtoll(token.c_str(), &end, 10);
          if (errno == 0 && end == token.c_str() + token.size() && v != 0) {
            return Json::integer(static_cast<std::int64_t>(v));
          }
          if (errno == 0 && end == token.c_str() + token.size() && v == 0) {
            return Json::number(-0.0);
          }
        } else {
          const unsigned long long v =
              std::strtoull(token.c_str(), &end, 10);
          if (errno == 0 && end == token.c_str() + token.size()) {
            return Json::integer(static_cast<std::uint64_t>(v));
          }
        }
        // Overflowed 64 bits: fall through to the double path.
      }
    }
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      error("malformed number");
    }
    if (!std::isfinite(value)) {
      error("number overflows a double");
    }
    return Json::number(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;  // open containers; capped at Json::kMaxParseDepth
};

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace iaas
