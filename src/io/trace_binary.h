// Compact binary trace format (DESIGN.md §13) — the disk-efficient twin
// of the JSON trace files, for million-window runs where pretty JSON is
// ~10× the bytes and most of the emission time.
//
// Layout (all little-endian):
//   magic   8 bytes  "IAASTRCB"
//   version u32      format version (currently 1)
//   kind    u8       0 = RunTrace, 1 = SimTrace
//   payload          kind-specific, see trace_binary.cpp
//
// Integers are LEB128 varints (window counters are mostly small);
// doubles are raw IEEE-754 bit patterns (8 bytes LE), so every value —
// including negative zero and 17-digit mantissas — round-trips
// bit-exactly.  A SimTrace payload is a stream of tagged window records
// (0x01 ... record, 0x00 end), so the writer never needs the window
// count up front and a truncated file is detected by the missing end
// marker.  Optional blocks (providers / admission / shard / allocator
// trace) are gated by a flags byte under exactly the same conditions as
// the JSON emission, so binary -> JSON conversion reproduces the JSON
// file byte-for-byte.
//
// Malformed or truncated input throws std::runtime_error (parse-error
// contract, like Json::parse); I/O failures abort via IAAS_EXPECT
// (fail-loud writer contract, like common/csv).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/telemetry.h"
#include "io/trace_stream.h"
#include "sim/simulator.h"

namespace iaas {

inline constexpr char kBinaryTraceMagic[8] = {'I', 'A', 'A', 'S',
                                              'T', 'R', 'C', 'B'};
inline constexpr std::uint32_t kBinaryTraceVersion = 1;

enum class BinaryTraceKind : std::uint8_t { kRunTrace = 0, kSimTrace = 1 };

// Magic sniff: true iff the file starts with the binary trace magic.
// Missing/short files simply return false.
bool is_binary_trace_file(const std::string& path);

// Header read (magic + version validated); throws on a non-binary file.
BinaryTraceKind binary_trace_kind(const std::string& path);

void write_binary_run_trace(const telemetry::RunTrace& trace,
                            const std::string& path);
telemetry::RunTrace read_binary_run_trace(const std::string& path);

void write_binary_sim_trace(const std::vector<WindowMetrics>& metrics,
                            const std::string& path);
std::vector<WindowMetrics> read_binary_sim_trace(const std::string& path);

// Streaming SimTrace writer: header up front, one tagged record drained
// to disk per append, end marker at finish.  Mirrors SimTraceWriter and
// flushes the same trace-IO telemetry counters at finish().
class BinaryTraceWriter {
 public:
  explicit BinaryTraceWriter(const std::string& path);
  ~BinaryTraceWriter();  // finishes if the caller forgot
  BinaryTraceWriter(const BinaryTraceWriter&) = delete;
  BinaryTraceWriter& operator=(const BinaryTraceWriter&) = delete;

  void append(const WindowMetrics& row);
  void finish();

  [[nodiscard]] std::size_t windows_written() const { return windows_; }
  [[nodiscard]] std::size_t bytes_written() const {
    return sink_.bytes_written();
  }
  [[nodiscard]] std::size_t peak_buffer_bytes() const { return peak_; }

 private:
  std::string buffer_;
  JsonFileSink sink_;  // generic fail-loud byte sink despite the name
  std::size_t windows_ = 0;
  std::size_t peak_ = 0;
  bool finished_ = false;
};

}  // namespace iaas
