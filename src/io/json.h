// Minimal self-contained JSON value, parser and writer — the library's
// interchange format for scenario files and experiment results (no
// external dependency; the benches stay hermetic).
//
// Supported: null, booleans, finite doubles, strings (with standard
// escapes incl. \uXXXX), arrays, objects (insertion-ordered).  Parse
// errors throw std::runtime_error with a byte offset.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace iaas {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : value_(nullptr) {}

  static Json null() { return Json(); }
  static Json boolean(bool b) {
    Json j;
    j.value_ = b;
    return j;
  }
  static Json number(double d) {
    Json j;
    j.value_ = d;
    return j;
  }
  static Json string(std::string s) {
    Json j;
    j.value_ = std::move(s);
    return j;
  }
  static Json array() {
    Json j;
    j.value_ = Array{};
    return j;
  }
  static Json object() {
    Json j;
    j.value_ = Object{};
    return j;
  }

  [[nodiscard]] Type type() const {
    return static_cast<Type>(value_.index());
  }
  [[nodiscard]] bool is_null() const { return type() == Type::kNull; }

  // Typed accessors; wrong-type access throws std::runtime_error.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;

  // --- array interface ---
  void push_back(Json element);
  [[nodiscard]] std::size_t size() const;  // array or object
  [[nodiscard]] const Json& at(std::size_t index) const;

  // --- object interface ---
  Json& operator[](const std::string& key);  // insert-or-access
  [[nodiscard]] bool contains(const std::string& key) const;
  [[nodiscard]] const Json& at(const std::string& key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& items()
      const;

  // Serialise. indent < 0 -> compact single line; otherwise pretty-print
  // with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = -1) const;

  // Serialise into a caller-owned buffer (cleared first), reserving it
  // from a structural size estimate so the append loop never reallocates
  // mid-dump.  Emitters writing many documents keep one scratch string
  // across calls and pay for its growth only once.
  void dump_into(std::string& out, int indent = -1) const;

  // Parse a complete JSON document (trailing garbage is an error).
  static Json parse(std::string_view text);

  friend bool operator==(const Json&, const Json&);

 private:
  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  void dump_to(std::string& out, int indent, int depth) const;
  // Upper-ish bound on the dump's byte size (exact for structure and
  // indentation, padded for numbers/escapes) — what dump/dump_into
  // reserve before appending.
  [[nodiscard]] std::size_t dump_estimate(int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      value_;
};

}  // namespace iaas
