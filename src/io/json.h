// Minimal self-contained JSON value, parser and writer — the library's
// interchange format for scenario files and experiment results (no
// external dependency; the benches stay hermetic).
//
// Supported: null, booleans, finite doubles, 64-bit integers (exact
// lexemes — seeds and counters survive past 2^53), strings (with
// standard escapes incl. \uXXXX), arrays, objects (insertion-ordered).
// Parse errors throw std::runtime_error with a byte offset; non-finite
// doubles are rejected loudly (IAAS_EXPECT) at construction, so a NaN
// objective can never reach a trace file as illegal `nan` text.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace iaas {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : value_(nullptr) {}

  static Json null() { return Json(); }
  static Json boolean(bool b) {
    Json j;
    j.value_ = b;
    return j;
  }
  // Finite doubles only: NaN/Inf cannot be represented in JSON, so they
  // abort here (IAAS_EXPECT) instead of serialising as illegal text.
  static Json number(double d);
  // Exact integer lexemes: the whole 64-bit range round-trips through
  // text without the 2^53 double mantissa cliff.
  static Json integer(std::uint64_t v) {
    Json j;
    j.value_ = v;
    return j;
  }
  static Json integer(std::int64_t v) {
    Json j;
    j.value_ = v;
    return j;
  }
  static Json integer(int v) { return integer(static_cast<std::int64_t>(v)); }
  static Json string(std::string s) {
    Json j;
    j.value_ = std::move(s);
    return j;
  }
  static Json array() {
    Json j;
    j.value_ = Array{};
    return j;
  }
  static Json object() {
    Json j;
    j.value_ = Object{};
    return j;
  }

  [[nodiscard]] Type type() const;
  [[nodiscard]] bool is_null() const { return type() == Type::kNull; }

  // Typed accessors; wrong-type access throws std::runtime_error.
  [[nodiscard]] bool as_bool() const;
  // Any number as a double (integers past 2^53 lose precision — use
  // as_uint64/as_int64 for exact counter/seed reads).
  [[nodiscard]] double as_number() const;
  // Exact integer reads: integer lexemes convert directly; doubles are
  // accepted only when integral and exactly representable in the target
  // type.  Anything else throws — silent truncation is the bug class
  // these exist to kill.
  [[nodiscard]] std::uint64_t as_uint64() const;
  [[nodiscard]] std::int64_t as_int64() const;
  [[nodiscard]] const std::string& as_string() const;

  // Number storage introspection (for exact re-emission by io/emit).
  [[nodiscard]] bool holds_unsigned() const;
  [[nodiscard]] bool holds_signed() const;

  // --- array interface ---
  void push_back(Json element);
  [[nodiscard]] std::size_t size() const;  // array or object
  [[nodiscard]] const Json& at(std::size_t index) const;

  // --- object interface ---
  Json& operator[](const std::string& key);  // insert-or-access
  [[nodiscard]] bool contains(const std::string& key) const;
  [[nodiscard]] const Json& at(const std::string& key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& items()
      const;

  // Serialise. indent < 0 -> compact single line; otherwise pretty-print
  // with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = -1) const;

  // Serialise into a caller-owned buffer (cleared first), reserving it
  // from a structural size estimate so the append loop never reallocates
  // mid-dump.  Emitters writing many documents keep one scratch string
  // across calls and pay for its growth only once.
  void dump_into(std::string& out, int indent = -1) const;

  // Parse a complete JSON document (trailing garbage is an error).
  static Json parse(std::string_view text);

  // Containers may nest at most this deep when parsing; deeper input
  // throws like any other parse error.  Bounds the recursive descent's
  // stack — and, since every parsed document respects it, the recursive
  // dump/emit walks too — so adversarially nested input (e.g. 10k '['s)
  // fails loud instead of overflowing the stack.
  static constexpr int kMaxParseDepth = 1000;

  // Structural equality.  Numbers compare by value across storage
  // representations: parse("7") (an integer lexeme) equals number(7.0).
  friend bool operator==(const Json&, const Json&);

 private:
  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  void dump_to(std::string& out, int indent, int depth) const;
  // Upper-ish bound on the dump's byte size (exact for structure and
  // indentation, padded for numbers/escapes) — what dump/dump_into
  // reserve before appending.
  [[nodiscard]] std::size_t dump_estimate(int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::int64_t, std::uint64_t,
               std::string, Array, Object>
      value_;
};

namespace json_detail {

// The one escape routine and the one number formatter, shared by
// Json::dump and the streaming io/emit writer so the two paths stay
// byte-identical by construction.
void escape_string(std::string_view s, std::string& out);
void format_double(double d, std::string& out);   // aborts on non-finite
void format_uint(std::uint64_t v, std::string& out);
void format_int(std::int64_t v, std::string& out);

}  // namespace json_detail

}  // namespace iaas
