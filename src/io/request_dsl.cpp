#include "io/request_dsl.h"

#include <cstdlib>
#include <map>
#include <sstream>
#include <stdexcept>

#include "io/serialize.h"
#include "model/attributes.h"

namespace iaas {
namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("request_dsl: line " + std::to_string(line_no) +
                           ": " + what);
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    if (token[0] == '#') {
      break;  // comment until end of line
    }
    tokens.push_back(token);
  }
  return tokens;
}

double parse_number(const std::string& text, std::size_t line_no) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) {
    fail(line_no, "malformed number '" + text + "'");
  }
  return value;
}

}  // namespace

ParsedRequests parse_request_dsl(std::string_view text) {
  ParsedRequests out;
  std::map<std::string, std::uint32_t> name_to_index;

  std::istringstream stream{std::string(text)};
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) {
      continue;
    }
    if (tokens[0] == "vm") {
      if (tokens.size() < 2) {
        fail(line_no, "vm needs a name");
      }
      const std::string& name = tokens[1];
      if (name_to_index.contains(name)) {
        fail(line_no, "duplicate vm name '" + name + "'");
      }
      VmRequest vm;
      vm.demand.assign(kDefaultAttributeCount, -1.0);
      for (std::size_t t = 2; t < tokens.size(); ++t) {
        const std::size_t eq = tokens[t].find('=');
        if (eq == std::string::npos) {
          fail(line_no, "expected key=value, got '" + tokens[t] + "'");
        }
        const std::string key = tokens[t].substr(0, eq);
        const double value =
            parse_number(tokens[t].substr(eq + 1), line_no);
        if (key == "cpu") {
          vm.demand[kCpu] = value;
        } else if (key == "ram") {
          vm.demand[kRam] = value;
        } else if (key == "disk") {
          vm.demand[kDisk] = value;
        } else if (key == "qos") {
          vm.qos_guarantee = value;
        } else if (key == "downtime_cost") {
          vm.downtime_cost = value;
        } else if (key == "migration_cost") {
          vm.migration_cost = value;
        } else {
          fail(line_no, "unknown attribute '" + key + "'");
        }
      }
      for (std::size_t l = 0; l < kDefaultAttributeCount; ++l) {
        if (vm.demand[l] < 0.0) {
          fail(line_no, "vm '" + name + "' is missing " + attribute_name(l));
        }
      }
      if (!vm.valid(kDefaultAttributeCount)) {
        fail(line_no, "vm '" + name + "' has out-of-range values");
      }
      name_to_index[name] =
          static_cast<std::uint32_t>(out.requests.vms.size());
      out.requests.vms.push_back(std::move(vm));
      out.vm_names.push_back(name);
    } else if (tokens[0] == "group") {
      if (tokens.size() < 4) {
        fail(line_no, "group needs a kind and at least two vm names");
      }
      PlacementConstraint constraint;
      try {
        constraint.kind = relation_kind_from_string(tokens[1]);
      } catch (const std::runtime_error&) {
        fail(line_no, "unknown group kind '" + tokens[1] + "'");
      }
      for (std::size_t t = 2; t < tokens.size(); ++t) {
        const auto it = name_to_index.find(tokens[t]);
        if (it == name_to_index.end()) {
          fail(line_no, "unknown vm '" + tokens[t] +
                            "' (vms must be declared before groups)");
        }
        constraint.vms.push_back(it->second);
      }
      out.requests.constraints.push_back(std::move(constraint));
    } else {
      fail(line_no, "unknown directive '" + tokens[0] + "'");
    }
  }
  return out;
}

std::string render_request_dsl(const RequestSet& requests,
                               const std::vector<std::string>& names) {
  auto name_of = [&](std::size_t k) {
    return k < names.size() ? names[k] : "vm" + std::to_string(k);
  };
  std::ostringstream out;
  out.precision(17);
  for (std::size_t k = 0; k < requests.vms.size(); ++k) {
    const VmRequest& vm = requests.vms[k];
    out << "vm " << name_of(k);
    out << " cpu=" << vm.demand[kCpu] << " ram=" << vm.demand[kRam]
        << " disk=" << vm.demand[kDisk];
    out << " qos=" << vm.qos_guarantee
        << " downtime_cost=" << vm.downtime_cost
        << " migration_cost=" << vm.migration_cost;
    out << '\n';
  }
  for (const PlacementConstraint& c : requests.constraints) {
    out << "group " << relation_kind_to_string(c.kind);
    for (std::uint32_t k : c.vms) {
      out << ' ' << name_of(k);
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace iaas
