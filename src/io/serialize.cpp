#include "io/serialize.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace iaas {
namespace {

Json vector_to_json(const std::vector<double>& values) {
  Json arr = Json::array();
  for (double v : values) {
    arr.push_back(Json::number(v));
  }
  return arr;
}

std::vector<double> vector_from_json(const Json& json) {
  std::vector<double> out;
  out.reserve(json.size());
  for (std::size_t i = 0; i < json.size(); ++i) {
    out.push_back(json.at(i).as_number());
  }
  return out;
}

std::uint32_t u32(const Json& json) {
  const double v = json.as_number();
  if (v < 0 || v != static_cast<double>(static_cast<std::uint32_t>(v))) {
    throw std::runtime_error("serialize: expected a 32-bit unsigned value");
  }
  return static_cast<std::uint32_t>(v);
}

}  // namespace

std::string relation_kind_to_string(RelationKind kind) {
  return relation_name(kind);
}

RelationKind relation_kind_from_string(const std::string& name) {
  if (name == "same-datacenter") {
    return RelationKind::kSameDatacenter;
  }
  if (name == "same-server") {
    return RelationKind::kSameServer;
  }
  if (name == "different-datacenters") {
    return RelationKind::kDifferentDatacenters;
  }
  if (name == "different-servers") {
    return RelationKind::kDifferentServers;
  }
  throw std::runtime_error("serialize: unknown relation kind '" + name + "'");
}

Json instance_to_json(const Instance& instance) {
  Json root = Json::object();

  const FabricConfig& fc = instance.infra.fabric().config();
  Json fabric = Json::object();
  fabric["datacenters"] = Json::number(fc.datacenters);
  fabric["cores"] = Json::number(fc.cores);
  fabric["spines_per_dc"] = Json::number(fc.spines_per_dc);
  fabric["leaves_per_dc"] = Json::number(fc.leaves_per_dc);
  fabric["servers_per_leaf"] = Json::number(fc.servers_per_leaf);
  fabric["core_spine_gbps"] = Json::number(fc.core_spine_gbps);
  fabric["spine_leaf_gbps"] = Json::number(fc.spine_leaf_gbps);
  fabric["leaf_server_gbps"] = Json::number(fc.leaf_server_gbps);
  root["fabric"] = std::move(fabric);

  Json servers = Json::array();
  for (const Server& s : instance.infra.servers()) {
    Json server = Json::object();
    server["datacenter"] = Json::number(s.datacenter);
    server["capacity"] = vector_to_json(s.capacity);
    server["factor"] = vector_to_json(s.factor);
    server["max_load"] = vector_to_json(s.max_load);
    server["max_qos"] = vector_to_json(s.max_qos);
    server["opex"] = Json::number(s.opex);
    server["usage_cost"] = Json::number(s.usage_cost);
    servers.push_back(std::move(server));
  }
  root["servers"] = std::move(servers);

  Json vms = Json::array();
  for (const VmRequest& vm : instance.requests.vms) {
    Json v = Json::object();
    v["demand"] = vector_to_json(vm.demand);
    v["qos_guarantee"] = Json::number(vm.qos_guarantee);
    v["downtime_cost"] = Json::number(vm.downtime_cost);
    v["migration_cost"] = Json::number(vm.migration_cost);
    // Consumer identity / honest demand, omitted at their defaults so
    // legacy anonymous instances keep their exact serialized shape.
    if (vm.consumer != 0) {
      v["consumer"] = Json::integer(static_cast<std::uint64_t>(vm.consumer));
    }
    if (!vm.true_demand.empty()) {
      v["true_demand"] = vector_to_json(vm.true_demand);
    }
    vms.push_back(std::move(v));
  }
  root["vms"] = std::move(vms);

  Json constraints = Json::array();
  for (const PlacementConstraint& c : instance.requests.constraints) {
    Json pc = Json::object();
    pc["kind"] = Json::string(relation_kind_to_string(c.kind));
    Json members = Json::array();
    for (std::uint32_t k : c.vms) {
      members.push_back(Json::number(k));
    }
    pc["vms"] = std::move(members);
    constraints.push_back(std::move(pc));
  }
  root["constraints"] = std::move(constraints);

  root["previous"] = placement_to_json(instance.previous);
  return root;
}

Instance instance_from_json(const Json& json) {
  const Json& fj = json.at("fabric");
  FabricConfig fc;
  fc.datacenters = u32(fj.at("datacenters"));
  fc.cores = u32(fj.at("cores"));
  fc.spines_per_dc = u32(fj.at("spines_per_dc"));
  fc.leaves_per_dc = u32(fj.at("leaves_per_dc"));
  fc.servers_per_leaf = u32(fj.at("servers_per_leaf"));
  fc.core_spine_gbps = fj.at("core_spine_gbps").as_number();
  fc.spine_leaf_gbps = fj.at("spine_leaf_gbps").as_number();
  fc.leaf_server_gbps = fj.at("leaf_server_gbps").as_number();

  const Json& sj = json.at("servers");
  std::vector<Server> servers;
  servers.reserve(sj.size());
  for (std::size_t j = 0; j < sj.size(); ++j) {
    const Json& record = sj.at(j);
    Server s;
    s.datacenter = u32(record.at("datacenter"));
    s.capacity = vector_from_json(record.at("capacity"));
    s.factor = vector_from_json(record.at("factor"));
    s.max_load = vector_from_json(record.at("max_load"));
    s.max_qos = vector_from_json(record.at("max_qos"));
    s.opex = record.at("opex").as_number();
    s.usage_cost = record.at("usage_cost").as_number();
    servers.push_back(std::move(s));
  }

  const Json& vj = json.at("vms");
  RequestSet requests;
  requests.vms.reserve(vj.size());
  for (std::size_t k = 0; k < vj.size(); ++k) {
    const Json& record = vj.at(k);
    VmRequest vm;
    vm.demand = vector_from_json(record.at("demand"));
    vm.qos_guarantee = record.at("qos_guarantee").as_number();
    vm.downtime_cost = record.at("downtime_cost").as_number();
    vm.migration_cost = record.at("migration_cost").as_number();
    if (record.contains("consumer")) {
      vm.consumer = u32(record.at("consumer"));
    }
    if (record.contains("true_demand")) {
      vm.true_demand = vector_from_json(record.at("true_demand"));
    }
    requests.vms.push_back(std::move(vm));
  }

  const Json& cj = json.at("constraints");
  for (std::size_t c = 0; c < cj.size(); ++c) {
    const Json& record = cj.at(c);
    PlacementConstraint pc;
    pc.kind = relation_kind_from_string(record.at("kind").as_string());
    const Json& members = record.at("vms");
    for (std::size_t i = 0; i < members.size(); ++i) {
      pc.vms.push_back(u32(members.at(i)));
    }
    requests.constraints.push_back(std::move(pc));
  }

  // Validate before construction: untrusted input must throw, not trip
  // the library's internal IAAS_EXPECT aborts.
  if (servers.empty()) {
    throw std::runtime_error("serialize: no servers");
  }
  const std::size_t h = servers.front().capacity.size();
  if (fc.datacenters == 0 || fc.spines_per_dc == 0 ||
      fc.leaves_per_dc == 0 || fc.servers_per_leaf == 0 || fc.cores == 0) {
    throw std::runtime_error("serialize: degenerate fabric configuration");
  }
  const Fabric fabric_check(fc);
  if (servers.size() != fabric_check.server_count()) {
    throw std::runtime_error(
        "serialize: server count does not match the fabric layout");
  }
  for (std::size_t j = 0; j < servers.size(); ++j) {
    if (!servers[j].valid(h)) {
      throw std::runtime_error("serialize: server " + std::to_string(j) +
                               " fails validation");
    }
    if (servers[j].datacenter !=
        fabric_check.datacenter_of_server(static_cast<std::uint32_t>(j))) {
      throw std::runtime_error("serialize: server " + std::to_string(j) +
                               " datacenter mismatches the fabric");
    }
  }
  if (!requests.valid(h)) {
    throw std::runtime_error("serialize: request set fails validation");
  }

  Instance instance(Infrastructure(fc, std::move(servers)),
                    std::move(requests));
  if (json.contains("previous")) {
    Placement previous = placement_from_json(json.at("previous"));
    if (previous.vm_count() != instance.n()) {
      throw std::runtime_error(
          "serialize: previous placement size mismatch");
    }
    for (std::size_t k = 0; k < previous.vm_count(); ++k) {
      const std::int32_t j = previous.server_of(k);
      if (j != Placement::kRejected &&
          (j < 0 || static_cast<std::size_t>(j) >= instance.m())) {
        throw std::runtime_error(
            "serialize: previous placement references unknown server");
      }
    }
    instance.previous = std::move(previous);
  }
  return instance;
}

void save_instance(const Instance& instance, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("serialize: cannot open '" + path +
                             "' for writing");
  }
  out << instance_to_json(instance).dump(2) << '\n';
  if (!out) {
    throw std::runtime_error("serialize: write to '" + path + "' failed");
  }
}

Instance load_instance(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("serialize: cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return instance_from_json(Json::parse(buffer.str()));
}

Json placement_to_json(const Placement& placement) {
  Json arr = Json::array();
  for (std::int32_t gene : placement.genes()) {
    arr.push_back(Json::number(gene));
  }
  return arr;
}

Placement placement_from_json(const Json& json) {
  std::vector<std::int32_t> genes;
  genes.reserve(json.size());
  for (std::size_t i = 0; i < json.size(); ++i) {
    genes.push_back(static_cast<std::int32_t>(json.at(i).as_number()));
  }
  return Placement(std::move(genes));
}

Json result_to_json(const AllocationResult& result) {
  Json root = Json::object();
  root["algorithm"] = Json::string(result.algorithm);
  root["vm_count"] = Json::number(static_cast<double>(result.vm_count));
  root["rejected"] = Json::number(static_cast<double>(result.rejected));
  root["rejection_rate"] = Json::number(result.rejection_rate());
  root["wall_seconds"] = Json::number(result.wall_seconds);
  root["evaluations"] =
      Json::number(static_cast<double>(result.evaluations));

  Json violations = Json::object();
  violations["capacity"] =
      Json::number(result.raw_violations.capacity_violations);
  violations["relations"] =
      Json::number(result.raw_violations.relation_violations);
  violations["total"] = Json::number(result.raw_violations.total());
  root["raw_violations"] = std::move(violations);

  Json objectives = Json::object();
  objectives["usage_cost"] = Json::number(result.objectives.usage_cost);
  objectives["downtime_cost"] =
      Json::number(result.objectives.downtime_cost);
  objectives["migration_cost"] =
      Json::number(result.objectives.migration_cost);
  objectives["aggregate"] = Json::number(result.objectives.aggregate());
  root["objectives"] = std::move(objectives);

  root["placement"] = placement_to_json(result.placement);
  return root;
}

}  // namespace iaas
