// JSON (de)serialisation of the allocation model: scenario files make
// experiments shareable and replayable, result files feed external
// analysis.  Round-trip guarantee: instance_from_json(instance_to_json(x))
// reproduces x exactly (doubles are emitted with round-trip precision).
#pragma once

#include <string>

#include "algo/allocator.h"
#include "io/json.h"
#include "model/instance.h"

namespace iaas {

// ---- full problem instances (infrastructure + requests + previous) ----
Json instance_to_json(const Instance& instance);
Instance instance_from_json(const Json& json);  // throws on malformed input

// Convenience file helpers (throw std::runtime_error on I/O failure).
void save_instance(const Instance& instance, const std::string& path);
Instance load_instance(const std::string& path);

// ---- placements ----
Json placement_to_json(const Placement& placement);
Placement placement_from_json(const Json& json);

// ---- allocation results (one-way: for analysis output) ----
Json result_to_json(const AllocationResult& result);

// Relationship-kind names used on the wire ("same-server", ...).
std::string relation_kind_to_string(RelationKind kind);
RelationKind relation_kind_from_string(const std::string& name);

}  // namespace iaas
