#include "io/emit.h"

#include <algorithm>

#include "common/expect.h"
#include "io/json.h"

namespace iaas {

namespace {
constexpr int kMaxDepth = 64;  // child_written_ is a 64-bit bitset
}  // namespace

void JsonEmitter::newline_indent(int depth) {
  if (indent_ < 0) {
    return;
  }
  out_ += '\n';
  out_.append(static_cast<std::size_t>(indent_ * depth), ' ');
}

void JsonEmitter::separate_child() {
  if (depth_ == 0) {
    return;
  }
  const std::uint64_t bit = 1ull << depth_;
  if ((child_written_ & bit) != 0) {
    out_ += ',';
  }
  newline_indent(depth_);
  child_written_ |= bit;
}

void JsonEmitter::before_value() {
  if (key_pending_) {
    key_pending_ = false;
  } else {
    separate_child();
  }
}

void JsonEmitter::after_value() {
  peak_ = std::max(peak_, out_.size());
  if (flush_ && out_.size() >= flush_threshold_) {
    bytes_emitted_ += out_.size();
    flush_(out_);
    out_.clear();
  }
}

void JsonEmitter::begin_object() {
  before_value();
  IAAS_EXPECT(depth_ + 1 < kMaxDepth, "JsonEmitter: nesting too deep");
  ++depth_;
  child_written_ &= ~(1ull << depth_);
  out_ += '{';
  peak_ = std::max(peak_, out_.size());
}

void JsonEmitter::end_object() {
  IAAS_EXPECT(depth_ > 0 && !key_pending_,
              "JsonEmitter: unbalanced end_object");
  const bool non_empty = (child_written_ & (1ull << depth_)) != 0;
  --depth_;
  if (non_empty) {
    newline_indent(depth_);
  }
  out_ += '}';
  after_value();
}

void JsonEmitter::begin_array() {
  before_value();
  IAAS_EXPECT(depth_ + 1 < kMaxDepth, "JsonEmitter: nesting too deep");
  ++depth_;
  child_written_ &= ~(1ull << depth_);
  out_ += '[';
  peak_ = std::max(peak_, out_.size());
}

void JsonEmitter::end_array() {
  IAAS_EXPECT(depth_ > 0 && !key_pending_,
              "JsonEmitter: unbalanced end_array");
  const bool non_empty = (child_written_ & (1ull << depth_)) != 0;
  --depth_;
  if (non_empty) {
    newline_indent(depth_);
  }
  out_ += ']';
  after_value();
}

void JsonEmitter::key(std::string_view k) {
  IAAS_EXPECT(depth_ > 0 && !key_pending_,
              "JsonEmitter: key outside object member position");
  separate_child();
  json_detail::escape_string(k, out_);
  out_ += indent_ < 0 ? ":" : ": ";
  key_pending_ = true;
}

void JsonEmitter::value_null() {
  before_value();
  out_ += "null";
  after_value();
}

void JsonEmitter::value(bool b) {
  before_value();
  out_ += b ? "true" : "false";
  after_value();
}

void JsonEmitter::value(double d) {
  before_value();
  json_detail::format_double(d, out_);
  after_value();
}

void JsonEmitter::value(std::uint64_t v) {
  before_value();
  json_detail::format_uint(v, out_);
  after_value();
}

void JsonEmitter::value(std::int64_t v) {
  before_value();
  json_detail::format_int(v, out_);
  after_value();
}

void JsonEmitter::value(std::string_view s) {
  before_value();
  json_detail::escape_string(s, out_);
  after_value();
}

void JsonEmitter::value_raw(std::string_view raw) {
  before_value();
  out_ += raw;
  after_value();
}

void emit_json(JsonEmitter& emitter, const Json& value) {
  switch (value.type()) {
    case Json::Type::kNull:
      emitter.value_null();
      return;
    case Json::Type::kBool:
      emitter.value(value.as_bool());
      return;
    case Json::Type::kNumber:
      // Preserve the storage form so integer lexemes re-emit exactly.
      if (value.holds_unsigned()) {
        emitter.value(value.as_uint64());
      } else if (value.holds_signed()) {
        emitter.value(value.as_int64());
      } else {
        emitter.value(value.as_number());
      }
      return;
    case Json::Type::kString:
      emitter.value(std::string_view(value.as_string()));
      return;
    case Json::Type::kArray:
      emitter.begin_array();
      for (std::size_t i = 0; i < value.size(); ++i) {
        emit_json(emitter, value.at(i));
      }
      emitter.end_array();
      return;
    case Json::Type::kObject:
      emitter.begin_object();
      for (const auto& [key, element] : value.items()) {
        emitter.key(key);
        emit_json(emitter, element);
      }
      emitter.end_object();
      return;
  }
}

}  // namespace iaas
