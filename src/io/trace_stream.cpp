#include "io/trace_stream.h"

#include "common/expect.h"

namespace iaas {

void shrink_scratch(std::string& scratch) {
  if (scratch.capacity() > kTraceScratchRetainBytes) {
    scratch.clear();
    scratch.shrink_to_fit();
  }
}

// ------------------------------------------------------ emitters ------

namespace {

void emit_generation_row(JsonEmitter& e, const telemetry::GenerationRow& row) {
  // Mirrors RunTrace::columns() order exactly, like row_to_json.
  e.begin_array();
  e.value(static_cast<std::uint64_t>(row.generation));
  e.value(static_cast<std::uint64_t>(row.evaluations));
  e.value(static_cast<std::uint64_t>(row.full_rebuilds));
  e.value(static_cast<std::uint64_t>(row.delta_moves));
  e.value(static_cast<std::uint64_t>(row.rebases));
  e.value(static_cast<std::uint64_t>(row.repair_invocations));
  e.value(static_cast<std::uint64_t>(row.repaired));
  e.value(static_cast<std::uint64_t>(row.unrepairable));
  e.value(static_cast<std::uint64_t>(row.tabu_moves_tried));
  e.value(static_cast<std::uint64_t>(row.tabu_moves_accepted));
  e.value(static_cast<std::uint64_t>(row.front_size));
  e.value(row.best_objectives[0]);
  e.value(row.best_objectives[1]);
  e.value(row.best_objectives[2]);
  e.value(row.seconds_tournament);
  e.value(row.seconds_variation);
  e.value(row.seconds_repair);
  e.value(row.seconds_evaluate);
  e.value(row.seconds_selection);
  e.end_array();
}

void emit_fault_event(JsonEmitter& e, const FaultEvent& event) {
  e.begin_object();
  e.key("window");
  e.value(static_cast<std::uint64_t>(event.window));
  e.key("kind");
  e.value(fault_event_kind_name(event.kind));
  e.key("index");
  e.value(static_cast<std::uint64_t>(event.index));
  e.key("servers");
  e.begin_array();
  for (std::uint32_t s : event.servers) {
    e.value(static_cast<std::uint64_t>(s));
  }
  e.end_array();
  e.key("mttr_windows");
  e.value(static_cast<std::uint64_t>(event.mttr_windows));
  e.end_object();
}

void emit_provider_metrics(JsonEmitter& e, const ProviderWindowMetrics& p) {
  e.begin_object();
  e.key("provider");
  e.value(static_cast<std::uint64_t>(p.provider));
  e.key("online");
  e.value(p.online);
  e.key("price_multiplier");
  e.value(p.price_multiplier);
  e.key("running");
  e.value(static_cast<std::uint64_t>(p.running));
  e.key("routed");
  e.value(static_cast<std::uint64_t>(p.routed));
  e.key("rejected");
  e.value(static_cast<std::uint64_t>(p.rejected));
  e.key("evicted");
  e.value(static_cast<std::uint64_t>(p.evicted));
  e.key("redirects_in");
  e.value(static_cast<std::uint64_t>(p.redirects_in));
  e.key("failed_servers");
  e.value(static_cast<std::uint64_t>(p.failed_servers));
  e.key("migrations");
  e.value(static_cast<std::uint64_t>(p.migrations));
  e.key("migration_cost");
  e.value(p.migration_cost);
  e.key("objectives");
  e.begin_array();
  e.value(p.objectives.usage_cost);
  e.value(p.objectives.downtime_cost);
  e.value(p.objectives.migration_cost);
  e.end_array();
  e.end_object();
}

}  // namespace

void emit_run_trace(JsonEmitter& e, const telemetry::RunTrace& trace) {
  e.begin_object();
  e.key("label");
  e.value(std::string_view(trace.label));
  e.key("seed");
  e.value(trace.seed);
  e.key("columns");
  e.begin_array();
  for (const std::string& name : telemetry::RunTrace::columns()) {
    e.value(std::string_view(name));
  }
  e.end_array();
  e.key("rows");
  e.begin_array();
  for (const telemetry::GenerationRow& row : trace.rows) {
    emit_generation_row(e, row);
  }
  e.end_array();
  e.end_object();
}

void emit_window_metrics(JsonEmitter& e, const WindowMetrics& row) {
  e.begin_object();
  e.key("window");
  e.value(static_cast<std::uint64_t>(row.window));
  e.key("arrived");
  e.value(static_cast<std::uint64_t>(row.arrived));
  e.key("departed");
  e.value(static_cast<std::uint64_t>(row.departed));
  e.key("running");
  e.value(static_cast<std::uint64_t>(row.running));
  e.key("rejected");
  e.value(static_cast<std::uint64_t>(row.rejected));
  e.key("boots");
  e.value(static_cast<std::uint64_t>(row.boots));
  e.key("migrations");
  e.value(static_cast<std::uint64_t>(row.migrations));
  e.key("migration_cost");
  e.value(row.migration_cost);
  e.key("failed_servers");
  e.value(static_cast<std::uint64_t>(row.failed_servers));
  e.key("repaired_servers");
  e.value(static_cast<std::uint64_t>(row.repaired_servers));
  e.key("decommissioned_servers");
  e.value(static_cast<std::uint64_t>(row.decommissioned_servers));
  e.key("displaced_vms");
  e.value(static_cast<std::uint64_t>(row.displaced_vms));
  e.key("vms_on_down_servers");
  e.value(static_cast<std::uint64_t>(row.vms_on_down_servers));
  e.key("fault_events");
  e.begin_array();
  for (const FaultEvent& event : row.fault_events) {
    emit_fault_event(e, event);
  }
  e.end_array();
  e.key("evicted");
  e.value(static_cast<std::uint64_t>(row.evicted));
  e.key("retried");
  e.value(static_cast<std::uint64_t>(row.retried));
  e.key("permanently_rejected");
  e.value(static_cast<std::uint64_t>(row.permanently_rejected));
  e.key("retry_queue_depth");
  e.value(static_cast<std::uint64_t>(row.retry_queue_depth));
  // Optional blocks under the same conditions as sim_trace_to_json, so
  // legacy fixtures keep their exact shape.
  if (!row.providers.empty()) {
    e.key("providers");
    e.begin_array();
    for (const ProviderWindowMetrics& p : row.providers) {
      emit_provider_metrics(e, p);
    }
    e.end_array();
    e.key("redirects");
    e.value(static_cast<std::uint64_t>(row.redirects));
    e.key("offline_providers");
    e.value(static_cast<std::uint64_t>(row.offline_providers));
    e.key("cross_cloud_migration_cost");
    e.value(row.cross_cloud_migration_cost);
  }
  if (row.admitted != 0 || row.admission_deferred != 0 ||
      row.admission_dropped != 0 || row.admission_queue_depth != 0) {
    e.key("admission");
    e.begin_object();
    e.key("admitted");
    e.value(static_cast<std::uint64_t>(row.admitted));
    e.key("deferred");
    e.value(static_cast<std::uint64_t>(row.admission_deferred));
    e.key("dropped");
    e.value(static_cast<std::uint64_t>(row.admission_dropped));
    e.key("queue_depth");
    e.value(static_cast<std::uint64_t>(row.admission_queue_depth));
    e.end_object();
  }
  if (row.shard.shard_count != 0) {
    e.key("shard");
    e.begin_object();
    e.key("shard_count");
    e.value(static_cast<std::uint64_t>(row.shard.shard_count));
    e.key("pre_rejections");
    e.value(static_cast<std::uint64_t>(row.shard.pre_rejections));
    e.key("rebalance_placements");
    e.value(static_cast<std::uint64_t>(row.shard.rebalance_placements));
    e.key("migrations");
    e.value(static_cast<std::uint64_t>(row.shard.migrations));
    e.key("max_shard_vms");
    e.value(static_cast<std::uint64_t>(row.shard.max_shard_vms));
    e.key("min_shard_vms");
    e.value(static_cast<std::uint64_t>(row.shard.min_shard_vms));
    e.end_object();
  }
  if (row.fairness.consumers != 0) {
    e.key("fairness");
    e.begin_object();
    e.key("consumers");
    e.value(static_cast<std::uint64_t>(row.fairness.consumers));
    e.key("strategic_consumers");
    e.value(static_cast<std::uint64_t>(row.fairness.strategic_consumers));
    e.key("strategic_vms");
    e.value(static_cast<std::uint64_t>(row.fairness.strategic_vms));
    e.key("jain_index");
    e.value(row.fairness.jain_index);
    e.key("long_term_jain");
    e.value(row.fairness.long_term_jain);
    e.key("envy");
    e.value(row.fairness.envy);
    e.key("utilization_efficiency");
    e.value(row.fairness.utilization_efficiency);
    e.key("honest_welfare");
    e.value(row.fairness.honest_welfare);
    e.key("strategic_welfare");
    e.value(row.fairness.strategic_welfare);
    e.key("energy_cost");
    e.value(row.fairness.energy_cost);
    e.end_object();
  }
  e.key("degrade");
  e.value(degrade_level_name(row.degrade));
  e.key("fallback_algorithm");
  e.value(std::string_view(row.fallback_algorithm));
  e.key("objectives");
  e.begin_array();
  e.value(row.objectives.usage_cost);
  e.value(row.objectives.downtime_cost);
  e.value(row.objectives.migration_cost);
  e.end_array();
  e.key("solve_seconds");
  e.value(row.solve_seconds);
  if (!row.allocator_trace.empty()) {
    e.key("allocator_trace");
    emit_run_trace(e, row.allocator_trace);
  }
  e.end_object();
}

void emit_registry(JsonEmitter& e, const telemetry::Registry& registry) {
  e.begin_object();
  e.key("counters");
  e.begin_object();
  const telemetry::CounterBlock block = registry.counters();
  for (std::size_t i = 0; i < telemetry::kCounterCount; ++i) {
    const auto c = static_cast<telemetry::Counter>(i);
    e.key(telemetry::counter_name(c));
    e.value(block[c]);
  }
  e.end_object();
  e.key("phase_seconds");
  e.begin_object();
  const auto seconds = registry.phase_seconds();
  for (std::size_t i = 0; i < telemetry::kPhaseCount; ++i) {
    const auto p = static_cast<telemetry::Phase>(i);
    e.key(telemetry::phase_name(p));
    e.value(seconds[i]);
  }
  e.end_object();
  e.end_object();
}

// -------------------------------------------------------- file sink ---

JsonFileSink::JsonFileSink(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "wb");
  IAAS_EXPECT(file_ != nullptr,
              ("trace_stream: cannot open " + path).c_str());
}

JsonFileSink::~JsonFileSink() { close(); }

void JsonFileSink::write(std::string_view chunk) {
  if (chunk.empty()) {
    return;
  }
  IAAS_EXPECT(file_ != nullptr, "trace_stream: write after close");
  const std::size_t written =
      std::fwrite(chunk.data(), 1, chunk.size(), file_);
  IAAS_EXPECT(written == chunk.size(),
              ("trace_stream: write error on " + path_).c_str());
  bytes_written_ += written;
}

void JsonFileSink::flush() {
  if (file_ != nullptr) {
    IAAS_EXPECT(std::fflush(file_) == 0,
                ("trace_stream: flush error on " + path_).c_str());
  }
}

void JsonFileSink::close() {
  if (file_ == nullptr) {
    return;
  }
  const int rc = std::fclose(file_);
  file_ = nullptr;
  IAAS_EXPECT(rc == 0, ("trace_stream: close error on " + path_).c_str());
}

// ------------------------------------------------- SimTraceWriter -----

SimTraceWriter::SimTraceWriter(const std::string& path, int indent)
    : sink_(path), emitter_(buffer_, indent) {
  emitter_.begin_object();
  emitter_.key("windows");
  emitter_.begin_array();
  sink_.write(buffer_);
  buffer_.clear();
}

SimTraceWriter::~SimTraceWriter() {
  if (!finished_) {
    finish();
  }
}

void SimTraceWriter::append(const WindowMetrics& row) {
  IAAS_EXPECT(!finished_, "trace_stream: append after finish");
  emit_window_metrics(emitter_, row);
  sink_.write(buffer_);
  buffer_.clear();
  sink_.flush();  // window visible on disk before the next one starts
  ++windows_;
}

void SimTraceWriter::finish() {
  if (finished_) {
    return;
  }
  finished_ = true;
  emitter_.end_array();
  emitter_.end_object();
  buffer_ += '\n';
  sink_.write(buffer_);
  buffer_.clear();
  sink_.close();
  // Emission happens outside the sim loop (no thread-local sink), so the
  // counters go straight to the global registry.  PeakBuffer merges
  // additively like every counter: with one writer per run it reads as
  // the high-water mark; with several it bounds their sum.
  telemetry::CounterBlock block;
  block[telemetry::Counter::kTraceWindowsStreamed] =
      static_cast<std::uint64_t>(windows_);
  block[telemetry::Counter::kTraceBytesStreamed] =
      static_cast<std::uint64_t>(sink_.bytes_written());
  block[telemetry::Counter::kTracePeakBufferBytes] =
      static_cast<std::uint64_t>(emitter_.peak_buffer_bytes());
  telemetry::Registry::global().flush_counters(block);
}

// ------------------------------------------------ one-shot writers ----

void write_sim_trace_json(const std::vector<WindowMetrics>& metrics,
                          const std::string& path) {
  SimTraceWriter writer(path);
  for (const WindowMetrics& row : metrics) {
    writer.append(row);
  }
  writer.finish();
}

void write_registry_json(const telemetry::Registry& registry,
                         const std::string& path) {
  JsonFileSink sink(path);
  std::string buffer;
  JsonEmitter emitter(buffer, 2);
  emit_registry(emitter, registry);
  buffer += '\n';
  sink.write(buffer);
  sink.close();
}

}  // namespace iaas
