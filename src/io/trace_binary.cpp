#include "io/trace_binary.h"

#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "common/expect.h"

namespace iaas {
namespace {

[[noreturn]] void parse_error(const std::string& what) {
  throw std::runtime_error("trace_binary: " + what);
}

constexpr std::uint8_t kRecordWindow = 0x01;
constexpr std::uint8_t kRecordEnd = 0x00;

// Optional-block flags, mirroring the JSON emission conditions.
constexpr std::uint8_t kFlagProviders = 1u << 0;
constexpr std::uint8_t kFlagAdmission = 1u << 1;
constexpr std::uint8_t kFlagShard = 1u << 2;
constexpr std::uint8_t kFlagAllocatorTrace = 1u << 3;
constexpr std::uint8_t kFlagFairness = 1u << 4;

// ------------------------------------------------------- encoding -----

void put_u8(std::string& out, std::uint8_t v) {
  out += static_cast<char>(v);
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out += static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out += static_cast<char>((v & 0x7F) | 0x80);
    v >>= 7;
  }
  out += static_cast<char>(v);
}

void put_f64(std::string& out, double d) {
  std::uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out += static_cast<char>((bits >> (8 * i)) & 0xFF);
  }
}

void put_string(std::string& out, const std::string& s) {
  put_varint(out, s.size());
  out += s;
}

class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  [[nodiscard]] bool at_end() const { return pos_ == data_.size(); }

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<std::uint8_t>(data_[pos_++]))
           << (8 * i);
    }
    return v;
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      need(1);
      const auto byte = static_cast<std::uint8_t>(data_[pos_++]);
      v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) {
        return v;
      }
    }
    parse_error("varint too long");
  }

  double f64() {
    need(8);
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<std::uint64_t>(
                  static_cast<std::uint8_t>(data_[pos_++]))
              << (8 * i);
    }
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
  }

  std::string str() {
    const std::uint64_t len = varint();
    need(len);
    std::string s(data_.substr(pos_, len));
    pos_ += len;
    return s;
  }

  std::size_t size_value() { return static_cast<std::size_t>(varint()); }

 private:
  void need(std::uint64_t n) const {
    if (n > data_.size() - pos_) {
      parse_error("truncated input");
    }
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

// -------------------------------------------------------- payloads ----

void put_header(std::string& out, BinaryTraceKind kind) {
  out.append(kBinaryTraceMagic, sizeof(kBinaryTraceMagic));
  put_u32(out, kBinaryTraceVersion);
  put_u8(out, static_cast<std::uint8_t>(kind));
}

BinaryTraceKind read_header(ByteReader& in) {
  char magic[sizeof(kBinaryTraceMagic)];
  for (char& c : magic) {
    c = static_cast<char>(in.u8());
  }
  if (std::memcmp(magic, kBinaryTraceMagic, sizeof(magic)) != 0) {
    parse_error("bad magic (not a binary trace file)");
  }
  const std::uint32_t version = in.u32();
  if (version != kBinaryTraceVersion) {
    parse_error("unsupported version " + std::to_string(version));
  }
  const std::uint8_t kind = in.u8();
  if (kind > static_cast<std::uint8_t>(BinaryTraceKind::kSimTrace)) {
    parse_error("unknown trace kind " + std::to_string(kind));
  }
  return static_cast<BinaryTraceKind>(kind);
}

void put_run_trace(std::string& out, const telemetry::RunTrace& trace) {
  put_string(out, trace.label);
  put_varint(out, trace.seed);
  // Column count pins the schema: a reader built against a different
  // GenerationRow shape rejects the file instead of misaligning rows.
  put_varint(out, telemetry::RunTrace::columns().size());
  put_varint(out, trace.rows.size());
  for (const telemetry::GenerationRow& row : trace.rows) {
    put_varint(out, row.generation);
    put_varint(out, row.evaluations);
    put_varint(out, row.full_rebuilds);
    put_varint(out, row.delta_moves);
    put_varint(out, row.rebases);
    put_varint(out, row.repair_invocations);
    put_varint(out, row.repaired);
    put_varint(out, row.unrepairable);
    put_varint(out, row.tabu_moves_tried);
    put_varint(out, row.tabu_moves_accepted);
    put_varint(out, row.front_size);
    put_f64(out, row.best_objectives[0]);
    put_f64(out, row.best_objectives[1]);
    put_f64(out, row.best_objectives[2]);
    put_f64(out, row.seconds_tournament);
    put_f64(out, row.seconds_variation);
    put_f64(out, row.seconds_repair);
    put_f64(out, row.seconds_evaluate);
    put_f64(out, row.seconds_selection);
  }
}

telemetry::RunTrace read_run_trace(ByteReader& in) {
  telemetry::RunTrace trace;
  trace.label = in.str();
  trace.seed = in.varint();
  const std::uint64_t columns = in.varint();
  if (columns != telemetry::RunTrace::columns().size()) {
    parse_error("run-trace column count mismatch");
  }
  const std::uint64_t rows = in.varint();
  trace.rows.reserve(static_cast<std::size_t>(rows));
  for (std::uint64_t r = 0; r < rows; ++r) {
    telemetry::GenerationRow g;
    g.generation = in.size_value();
    g.evaluations = in.size_value();
    g.full_rebuilds = in.size_value();
    g.delta_moves = in.size_value();
    g.rebases = in.size_value();
    g.repair_invocations = in.size_value();
    g.repaired = in.size_value();
    g.unrepairable = in.size_value();
    g.tabu_moves_tried = in.size_value();
    g.tabu_moves_accepted = in.size_value();
    g.front_size = in.size_value();
    g.best_objectives = {in.f64(), in.f64(), in.f64()};
    g.seconds_tournament = in.f64();
    g.seconds_variation = in.f64();
    g.seconds_repair = in.f64();
    g.seconds_evaluate = in.f64();
    g.seconds_selection = in.f64();
    trace.rows.push_back(g);
  }
  return trace;
}

void put_window(std::string& out, const WindowMetrics& row) {
  put_u8(out, kRecordWindow);
  std::uint8_t flags = 0;
  if (!row.providers.empty()) {
    flags |= kFlagProviders;
  }
  if (row.admitted != 0 || row.admission_deferred != 0 ||
      row.admission_dropped != 0 || row.admission_queue_depth != 0) {
    flags |= kFlagAdmission;
  }
  if (row.shard.shard_count != 0) {
    flags |= kFlagShard;
  }
  if (!row.allocator_trace.empty()) {
    flags |= kFlagAllocatorTrace;
  }
  if (row.fairness.consumers != 0) {
    flags |= kFlagFairness;
  }
  put_u8(out, flags);
  put_varint(out, row.window);
  put_varint(out, row.arrived);
  put_varint(out, row.departed);
  put_varint(out, row.running);
  put_varint(out, row.rejected);
  put_varint(out, row.boots);
  put_varint(out, row.migrations);
  put_f64(out, row.migration_cost);
  put_varint(out, row.failed_servers);
  put_varint(out, row.repaired_servers);
  put_varint(out, row.decommissioned_servers);
  put_varint(out, row.displaced_vms);
  put_varint(out, row.vms_on_down_servers);
  put_varint(out, row.fault_events.size());
  for (const FaultEvent& event : row.fault_events) {
    put_varint(out, event.window);
    put_u8(out, static_cast<std::uint8_t>(event.kind));
    put_varint(out, event.index);
    put_varint(out, event.servers.size());
    for (std::uint32_t s : event.servers) {
      put_varint(out, s);
    }
    put_varint(out, event.mttr_windows);
  }
  put_varint(out, row.evicted);
  put_varint(out, row.retried);
  put_varint(out, row.permanently_rejected);
  put_varint(out, row.retry_queue_depth);
  if ((flags & kFlagProviders) != 0) {
    put_varint(out, row.providers.size());
    for (const ProviderWindowMetrics& p : row.providers) {
      put_varint(out, p.provider);
      put_u8(out, p.online ? 1 : 0);
      put_f64(out, p.price_multiplier);
      put_varint(out, p.running);
      put_varint(out, p.routed);
      put_varint(out, p.rejected);
      put_varint(out, p.evicted);
      put_varint(out, p.redirects_in);
      put_varint(out, p.failed_servers);
      put_varint(out, p.migrations);
      put_f64(out, p.migration_cost);
      put_f64(out, p.objectives.usage_cost);
      put_f64(out, p.objectives.downtime_cost);
      put_f64(out, p.objectives.migration_cost);
    }
    put_varint(out, row.redirects);
    put_varint(out, row.offline_providers);
    put_f64(out, row.cross_cloud_migration_cost);
  }
  if ((flags & kFlagAdmission) != 0) {
    put_varint(out, row.admitted);
    put_varint(out, row.admission_deferred);
    put_varint(out, row.admission_dropped);
    put_varint(out, row.admission_queue_depth);
  }
  if ((flags & kFlagShard) != 0) {
    put_varint(out, row.shard.shard_count);
    put_varint(out, row.shard.pre_rejections);
    put_varint(out, row.shard.rebalance_placements);
    put_varint(out, row.shard.migrations);
    put_varint(out, row.shard.max_shard_vms);
    put_varint(out, row.shard.min_shard_vms);
  }
  if ((flags & kFlagFairness) != 0) {
    put_varint(out, row.fairness.consumers);
    put_varint(out, row.fairness.strategic_consumers);
    put_varint(out, row.fairness.strategic_vms);
    put_f64(out, row.fairness.jain_index);
    put_f64(out, row.fairness.long_term_jain);
    put_f64(out, row.fairness.envy);
    put_f64(out, row.fairness.utilization_efficiency);
    put_f64(out, row.fairness.honest_welfare);
    put_f64(out, row.fairness.strategic_welfare);
    put_f64(out, row.fairness.energy_cost);
  }
  put_u8(out, static_cast<std::uint8_t>(row.degrade));
  put_string(out, row.fallback_algorithm);
  put_f64(out, row.objectives.usage_cost);
  put_f64(out, row.objectives.downtime_cost);
  put_f64(out, row.objectives.migration_cost);
  put_f64(out, row.solve_seconds);
  if ((flags & kFlagAllocatorTrace) != 0) {
    put_run_trace(out, row.allocator_trace);
  }
}

WindowMetrics read_window(ByteReader& in) {
  WindowMetrics row;
  const std::uint8_t flags = in.u8();
  if ((flags & ~(kFlagProviders | kFlagAdmission | kFlagShard |
                 kFlagAllocatorTrace | kFlagFairness)) != 0) {
    parse_error("unknown window flags");
  }
  row.window = in.size_value();
  row.arrived = in.size_value();
  row.departed = in.size_value();
  row.running = in.size_value();
  row.rejected = in.size_value();
  row.boots = in.size_value();
  row.migrations = in.size_value();
  row.migration_cost = in.f64();
  row.failed_servers = in.size_value();
  row.repaired_servers = in.size_value();
  row.decommissioned_servers = in.size_value();
  row.displaced_vms = in.size_value();
  row.vms_on_down_servers = in.size_value();
  const std::size_t events = in.size_value();
  row.fault_events.reserve(events);
  for (std::size_t e = 0; e < events; ++e) {
    FaultEvent event;
    event.window = in.size_value();
    const std::uint8_t kind = in.u8();
    if (kind > static_cast<std::uint8_t>(FaultEventKind::kDecommission)) {
      parse_error("unknown fault event kind");
    }
    event.kind = static_cast<FaultEventKind>(kind);
    event.index = static_cast<std::uint32_t>(in.varint());
    const std::size_t servers = in.size_value();
    event.servers.reserve(servers);
    for (std::size_t s = 0; s < servers; ++s) {
      event.servers.push_back(static_cast<std::uint32_t>(in.varint()));
    }
    event.mttr_windows = in.size_value();
    row.fault_events.push_back(std::move(event));
  }
  row.evicted = in.size_value();
  row.retried = in.size_value();
  row.permanently_rejected = in.size_value();
  row.retry_queue_depth = in.size_value();
  if ((flags & kFlagProviders) != 0) {
    const std::size_t providers = in.size_value();
    row.providers.reserve(providers);
    for (std::size_t i = 0; i < providers; ++i) {
      ProviderWindowMetrics p;
      p.provider = static_cast<std::uint32_t>(in.varint());
      p.online = in.u8() != 0;
      p.price_multiplier = in.f64();
      p.running = in.size_value();
      p.routed = in.size_value();
      p.rejected = in.size_value();
      p.evicted = in.size_value();
      p.redirects_in = in.size_value();
      p.failed_servers = in.size_value();
      p.migrations = in.size_value();
      p.migration_cost = in.f64();
      p.objectives.usage_cost = in.f64();
      p.objectives.downtime_cost = in.f64();
      p.objectives.migration_cost = in.f64();
      row.providers.push_back(p);
    }
    row.redirects = in.size_value();
    row.offline_providers = in.size_value();
    row.cross_cloud_migration_cost = in.f64();
  }
  if ((flags & kFlagAdmission) != 0) {
    row.admitted = in.size_value();
    row.admission_deferred = in.size_value();
    row.admission_dropped = in.size_value();
    row.admission_queue_depth = in.size_value();
  }
  if ((flags & kFlagShard) != 0) {
    row.shard.shard_count = in.size_value();
    row.shard.pre_rejections = in.size_value();
    row.shard.rebalance_placements = in.size_value();
    row.shard.migrations = in.size_value();
    row.shard.max_shard_vms = in.size_value();
    row.shard.min_shard_vms = in.size_value();
  }
  if ((flags & kFlagFairness) != 0) {
    row.fairness.consumers = in.size_value();
    row.fairness.strategic_consumers = in.size_value();
    row.fairness.strategic_vms = in.size_value();
    row.fairness.jain_index = in.f64();
    row.fairness.long_term_jain = in.f64();
    row.fairness.envy = in.f64();
    row.fairness.utilization_efficiency = in.f64();
    row.fairness.honest_welfare = in.f64();
    row.fairness.strategic_welfare = in.f64();
    row.fairness.energy_cost = in.f64();
  }
  const std::uint8_t degrade = in.u8();
  if (degrade > static_cast<std::uint8_t>(DegradeLevel::kFallback)) {
    parse_error("unknown degrade level");
  }
  row.degrade = static_cast<DegradeLevel>(degrade);
  row.fallback_algorithm = in.str();
  row.objectives.usage_cost = in.f64();
  row.objectives.downtime_cost = in.f64();
  row.objectives.migration_cost = in.f64();
  row.solve_seconds = in.f64();
  if ((flags & kFlagAllocatorTrace) != 0) {
    row.allocator_trace = read_run_trace(in);
  }
  return row;
}

// ------------------------------------------------------ whole files ---

std::string load_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    parse_error("cannot open " + path);
  }
  std::string data;
  char chunk[1 << 16];
  std::size_t got;
  while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    data.append(chunk, got);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    parse_error("read error on " + path);
  }
  return data;
}

void flush_trace_counters(std::size_t windows, std::size_t bytes,
                          std::size_t peak) {
  telemetry::CounterBlock block;
  block[telemetry::Counter::kTraceWindowsStreamed] =
      static_cast<std::uint64_t>(windows);
  block[telemetry::Counter::kTraceBytesStreamed] =
      static_cast<std::uint64_t>(bytes);
  block[telemetry::Counter::kTracePeakBufferBytes] =
      static_cast<std::uint64_t>(peak);
  telemetry::Registry::global().flush_counters(block);
}

}  // namespace

bool is_binary_trace_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return false;
  }
  char magic[sizeof(kBinaryTraceMagic)];
  const std::size_t got = std::fread(magic, 1, sizeof(magic), file);
  std::fclose(file);
  return got == sizeof(magic) &&
         std::memcmp(magic, kBinaryTraceMagic, sizeof(magic)) == 0;
}

BinaryTraceKind binary_trace_kind(const std::string& path) {
  const std::string data = load_file(path);
  ByteReader in(data);
  return read_header(in);
}

void write_binary_run_trace(const telemetry::RunTrace& trace,
                            const std::string& path) {
  std::string out;
  put_header(out, BinaryTraceKind::kRunTrace);
  put_run_trace(out, trace);
  JsonFileSink sink(path);
  sink.write(out);
  sink.close();
}

telemetry::RunTrace read_binary_run_trace(const std::string& path) {
  const std::string data = load_file(path);
  ByteReader in(data);
  if (read_header(in) != BinaryTraceKind::kRunTrace) {
    parse_error("not a run trace: " + path);
  }
  telemetry::RunTrace trace = read_run_trace(in);
  if (!in.at_end()) {
    parse_error("trailing bytes after run trace");
  }
  return trace;
}

void write_binary_sim_trace(const std::vector<WindowMetrics>& metrics,
                            const std::string& path) {
  BinaryTraceWriter writer(path);
  for (const WindowMetrics& row : metrics) {
    writer.append(row);
  }
  writer.finish();
}

std::vector<WindowMetrics> read_binary_sim_trace(const std::string& path) {
  const std::string data = load_file(path);
  ByteReader in(data);
  if (read_header(in) != BinaryTraceKind::kSimTrace) {
    parse_error("not a sim trace: " + path);
  }
  std::vector<WindowMetrics> metrics;
  for (;;) {
    const std::uint8_t tag = in.u8();
    if (tag == kRecordEnd) {
      break;
    }
    if (tag != kRecordWindow) {
      parse_error("unknown record tag");
    }
    metrics.push_back(read_window(in));
  }
  if (!in.at_end()) {
    parse_error("trailing bytes after end marker");
  }
  return metrics;
}

BinaryTraceWriter::BinaryTraceWriter(const std::string& path)
    : sink_(path) {
  put_header(buffer_, BinaryTraceKind::kSimTrace);
  sink_.write(buffer_);
  buffer_.clear();
}

BinaryTraceWriter::~BinaryTraceWriter() {
  if (!finished_) {
    finish();
  }
}

void BinaryTraceWriter::append(const WindowMetrics& row) {
  IAAS_EXPECT(!finished_, "trace_binary: append after finish");
  put_window(buffer_, row);
  peak_ = buffer_.size() > peak_ ? buffer_.size() : peak_;
  sink_.write(buffer_);
  buffer_.clear();
  sink_.flush();
  ++windows_;
}

void BinaryTraceWriter::finish() {
  if (finished_) {
    return;
  }
  finished_ = true;
  buffer_ += static_cast<char>(kRecordEnd);
  sink_.write(buffer_);
  buffer_.clear();
  sink_.close();
  flush_trace_counters(windows_, sink_.bytes_written(), peak_);
}

}  // namespace iaas
