// JSON emitters for the telemetry subsystem (common/telemetry):
// RunTrace -> one object per run ({label, seed, columns, rows}) and a
// global-registry snapshot ({counters, phase_seconds}).  Lives in io
// (not common) because iaas_common cannot depend on the Json layer.
#pragma once

#include <string>

#include "common/telemetry.h"
#include "io/json.h"

namespace iaas {

// {"label": ..., "seed": ..., "columns": [...], "rows": [[...], ...]}.
// Rows are arrays in columns() order (numbers, not strings) — compact
// enough to emit per generation, trivially joinable with the CSV twin.
Json trace_to_json(const telemetry::RunTrace& trace);

// trace_to_json + pretty-printed write; fails loudly (IAAS_EXPECT) on an
// unopenable path or a failed write, mirroring common/csv rules.
void write_trace_json(const telemetry::RunTrace& trace,
                      const std::string& path);

// Snapshot of telemetry::Registry::global():
// {"counters": {name: n, ...}, "phase_seconds": {name: s, ...}}.
Json registry_to_json(const telemetry::Registry& registry);

}  // namespace iaas
