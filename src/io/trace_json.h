// JSON emitters for the telemetry subsystem (common/telemetry):
// RunTrace -> one object per run ({label, seed, columns, rows}) and a
// global-registry snapshot ({counters, phase_seconds}).  Lives in io
// (not common) because iaas_common cannot depend on the Json layer.
#pragma once

#include <string>
#include <vector>

#include "common/telemetry.h"
#include "io/json.h"
#include "sim/simulator.h"

namespace iaas {

// {"label": ..., "seed": ..., "columns": [...], "rows": [[...], ...]}.
// Rows are arrays in columns() order (numbers, not strings) — compact
// enough to emit per generation, trivially joinable with the CSV twin.
Json trace_to_json(const telemetry::RunTrace& trace);

// Pretty-printed write through the streaming emitter (io/trace_stream —
// no intermediate Json tree); fails loudly (IAAS_EXPECT) on an
// unopenable path or a failed write, mirroring common/csv rules.
void write_trace_json(const telemetry::RunTrace& trace,
                      const std::string& path);

// Inverse of trace_to_json: rebuild a RunTrace from its JSON form.
// Shape errors (missing keys, short rows, unknown columns) throw
// std::runtime_error.  Seeds and counters are integer lexemes, so the
// full 64-bit range round-trips exactly.
telemetry::RunTrace trace_from_json(const Json& json);

// One simulator horizon as {"windows": [...]}: every WindowMetrics
// column including fault events, the retry-queue counters, the degrade
// level (by name) and the nested allocator trace.  sim_trace_from_json
// is the exact inverse — emit -> parse -> re-emit is byte-identical,
// which is how archived runs are validated.
Json sim_trace_to_json(const std::vector<WindowMetrics>& metrics);
std::vector<WindowMetrics> sim_trace_from_json(const Json& json);

// Snapshot of telemetry::Registry::global():
// {"counters": {name: n, ...}, "phase_seconds": {name: s, ...}}.
Json registry_to_json(const telemetry::Registry& registry);

}  // namespace iaas
