// A small declarative language for consumer requests — the concrete
// syntax for the paper's "user requests are translated into a virtual
// resource topology connecting virtual machines in compliance with their
// affinity/anti-affinity relationships" (§III).
//
// Grammar (line oriented; '#' starts a comment):
//
//   vm <name> cpu=<num> ram=<num> disk=<num>
//             [qos=<0..1>] [downtime_cost=<num>] [migration_cost=<num>]
//   group <kind> <name> <name> [<name>...]
//
// where <kind> is one of: same-server, same-datacenter,
// different-servers, different-datacenters.
//
// Example:
//   # three-tier web service
//   vm web1 cpu=2 ram=4 disk=40 qos=0.9
//   vm web2 cpu=2 ram=4 disk=40 qos=0.9
//   vm db   cpu=8 ram=32 disk=320 qos=0.95 downtime_cost=50
//   group different-servers web1 web2
//   group same-datacenter web1 db
//
// Parse errors throw std::runtime_error naming the offending line.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "model/request_set.h"

namespace iaas {

struct ParsedRequests {
  RequestSet requests;
  std::vector<std::string> vm_names;  // index-aligned with requests.vms
};

ParsedRequests parse_request_dsl(std::string_view text);

// Inverse: render a request set back to DSL text (names optional —
// "vm0", "vm1", ... when absent).  parse(render(x)) == x.
std::string render_request_dsl(const RequestSet& requests,
                               const std::vector<std::string>& names = {});

}  // namespace iaas
