// Streaming trace writers — the production emission path for run
// traces, simulator traces and registry snapshots (DESIGN.md §13).
//
// Each emit_* function drives a JsonEmitter through exactly the key
// order of its tree-building twin in io/trace_json, so the streamed
// bytes equal `*_to_json(x).dump(indent)` for every input — the legacy
// Json path stays as the parse/validation side, and the byte-equality
// is regression-tested (tests/test_trace_io.cpp).
//
// SimTraceWriter is the incremental form: the simulators hand it one
// WindowMetrics at a time (via set_window_sink) and it flushes each
// window straight to disk, so a million-window run holds one window of
// trace text in memory instead of the whole horizon.  Its throughput
// counters land in telemetry::Registry::global() at finish().
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

#include "common/telemetry.h"
#include "io/emit.h"
#include "sim/simulator.h"

namespace iaas {

// Shrink threshold for reusable emission scratch buffers: one oversized
// document must not pin its peak capacity for the owner's lifetime.
inline constexpr std::size_t kTraceScratchRetainBytes = 1u << 20;  // 1 MiB

// Release a scratch buffer's memory if it grew past the retain
// threshold (keeps the common small-trace capacity warm).
void shrink_scratch(std::string& scratch);

// Streaming twins of the io/trace_json tree builders (same key order,
// same number formatting -> byte-identical output).
void emit_run_trace(JsonEmitter& emitter, const telemetry::RunTrace& trace);
void emit_window_metrics(JsonEmitter& emitter, const WindowMetrics& row);
void emit_registry(JsonEmitter& emitter, const telemetry::Registry& registry);

// Buffered FILE* sink with common/csv failure rules: unopenable paths
// and write errors abort via IAAS_EXPECT instead of silently truncating
// a results file.
class JsonFileSink {
 public:
  explicit JsonFileSink(const std::string& path);
  ~JsonFileSink();
  JsonFileSink(const JsonFileSink&) = delete;
  JsonFileSink& operator=(const JsonFileSink&) = delete;

  void write(std::string_view chunk);
  void flush();  // fflush — makes partial traces visible mid-run
  void close();  // idempotent; checks the final flush

  [[nodiscard]] std::size_t bytes_written() const { return bytes_written_; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  std::size_t bytes_written_ = 0;
};

// Incremental {"windows": [...]} writer.  append() emits one window and
// drains the buffer to disk; finish() closes the document (trailing
// newline included) and flushes the trace-IO telemetry counters.  The
// finished file is byte-identical to
// `sim_trace_to_json(all_rows).dump(indent) + "\n"`.
class SimTraceWriter {
 public:
  explicit SimTraceWriter(const std::string& path, int indent = 2);
  ~SimTraceWriter();  // finishes if the caller forgot
  SimTraceWriter(const SimTraceWriter&) = delete;
  SimTraceWriter& operator=(const SimTraceWriter&) = delete;

  void append(const WindowMetrics& row);
  void finish();

  [[nodiscard]] std::size_t windows_written() const { return windows_; }
  [[nodiscard]] std::size_t bytes_written() const {
    return sink_.bytes_written();
  }
  // High-water mark of the in-memory emission buffer — O(one window)
  // by construction, independent of horizon length.
  [[nodiscard]] std::size_t peak_buffer_bytes() const {
    return emitter_.peak_buffer_bytes();
  }

 private:
  std::string buffer_;
  JsonFileSink sink_;
  JsonEmitter emitter_;
  std::size_t windows_ = 0;
  bool finished_ = false;
};

// One-shot streaming writers (pretty indent 2 + trailing newline, the
// repo's canonical trace-file form).
void write_sim_trace_json(const std::vector<WindowMetrics>& metrics,
                          const std::string& path);
void write_registry_json(const telemetry::Registry& registry,
                         const std::string& path);

}  // namespace iaas
