// NSGA-II / NSGA-III settings.  Defaults reproduce the paper's Table III:
//   populationSize 100, 10000 evaluations, SBX rate .70 / DI 15,
//   PM rate .20 / DI 15.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace iaas {

// The paper's four ways of making an EA respect strict constraints
// (§III): it adopted repair (method 2) and found exclusion (method 1)
// discards too much and penalties explode response times — all are
// implemented so the ablation benches can reproduce that comparison.
enum class ConstraintMode : std::uint8_t {
  kIgnore,   // "unmodified" NSGA-II/III: constraints invisible to search
  kExclude,  // method 1: infeasible individuals dropped at selection
  kPenalty,  // rejected attempt: violation penalty added to objectives
  kRepair,   // method 2 (adopted): invalid individuals repaired
};

struct NsgaConfig {
  std::size_t population_size = 100;     // Table III
  std::size_t max_evaluations = 10000;   // Table III
  double sbx_rate = 0.70;                // Table III
  double sbx_distribution_index = 15.0;  // Table III
  double pm_rate = 0.20;                 // Table III (per-gene probability)
  double pm_distribution_index = 15.0;   // Table III

  ConstraintMode constraint_mode = ConstraintMode::kIgnore;
  double penalty_weight = 1000.0;  // kPenalty: added per violation per axis

  // Repair placement within the generation (paper Fig. 4 repairs the two
  // selected parents before variation; repairing offspring too keeps the
  // final population feasible).
  bool repair_parents = true;
  bool repair_offspring = true;

  // NSGA-III reference-point density: Das-Dennis divisions per objective
  // (12 divisions on 3 objectives -> C(14,2) = 91 points < pop 100).
  std::size_t reference_divisions = 12;

  // External Pareto archive capacity; 0 disables it.  When enabled, the
  // engine's Result carries every non-dominated solution seen across the
  // run, not just the final generation's front.
  std::size_t archive_capacity = 0;

  // Seed the initial population with the previous window's placement
  // (rejected VMs randomised).  Without it the search almost never
  // rediscovers the incumbent and the migration objective cannot hold
  // running work in place.
  bool warm_start = true;

  // Cross-run warm start: gene vectors (e.g. the previous run's final
  // front, compacted to the current VM set) injected into the initial
  // population after the incumbent.  Vectors whose length does not match
  // the problem's gene count are skipped; at most half the population is
  // seeded so random exploration survives.  Genes are clamped to the
  // valid range.  Cleared state between windows is the caller's job —
  // the engine reads it verbatim each run.
  std::vector<std::vector<std::int32_t>> seed_genes;

  // U-NSGA-III niche tournament (the paper's [28]): when two tournament
  // candidates share rank *and* reference niche, the one closer to its
  // reference line wins; canonical NSGA-III picks randomly.
  bool niche_tournament = false;

  // Parallel objective evaluation: 0 = use the process-shared pool,
  // 1 = strictly serial, otherwise a dedicated pool of that many threads.
  std::size_t threads = 1;

  // Minimum number of mating-pair (and initial-individual) tasks one
  // thread claims per chunk of the parallel phases (ThreadPool grain).
  // 0 = automatic (~4 chunks per worker).  Purely a scheduling knob:
  // results are bit-identical for any value.
  std::size_t task_grain = 0;

  // Soft wall-clock budget for one run (seconds; 0 = unlimited).  Checked
  // at generation boundaries: the engine finishes the generation in
  // flight, then stops and reports the best front found so far
  // (Result::hit_time_limit).  This is the anytime property the
  // simulator's graceful-degradation chain relies on; enabling it makes
  // the *generation count* timing-dependent, so determinism tests keep
  // it at 0 (or force it so low that zero generations run).
  double time_limit_seconds = 0.0;

  // Record a per-generation telemetry::RunTrace in the engine Result
  // (counters are deterministic at any thread count; the wall-time
  // columns are not).  Off by default: tracing adds a timer read per
  // phase per task.
  bool collect_trace = false;
};

}  // namespace iaas
