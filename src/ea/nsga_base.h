// Shared generational engine for NSGA-II and NSGA-III.
//
// Implements the paper's modified-NSGA pipeline (Figs. 3-4): binary
// tournament mating selection, optional repair of invalid parents before
// variation, SBX + PM variation, optional repair of offspring, parallel
// objective evaluation, and (mu + lambda) environmental selection supplied
// by the concrete algorithm.
//
// The ConstraintMode selects how strict constraints are honoured — the
// four methods the paper enumerates (ignore/exclude/penalty/repair).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "ea/individual.h"
#include "ea/nondominated_sort.h"
#include "ea/nsga_config.h"
#include "ea/operators.h"
#include "ea/problem.h"

namespace iaas {

// Makes an individual's genes constraint-compliant (or closer to it);
// e.g. the tabu-search repair of paper Figs. 5-6.
using RepairFn = std::function<void(std::vector<std::int32_t>&, Rng&)>;

class NsgaBase {
 public:
  struct Result {
    Population population;          // final population
    std::vector<Individual> front;  // rank-0 members under the engine's
                                    // dominance relation
    Population archive;             // external Pareto archive (empty when
                                    // config.archive_capacity == 0)
    std::size_t evaluations = 0;
    std::size_t repair_invocations = 0;
    std::size_t generations = 0;
  };

  NsgaBase(const AllocationProblem& problem, NsgaConfig config,
           RepairFn repair = nullptr);
  virtual ~NsgaBase() = default;

  NsgaBase(const NsgaBase&) = delete;
  NsgaBase& operator=(const NsgaBase&) = delete;

  Result run(std::uint64_t seed);

  [[nodiscard]] const NsgaConfig& config() const { return config_; }

 protected:
  // Fill `next` (empty on entry) with population_size survivors of
  // `merged`; must set rank (and algorithm-specific bookkeeping).
  virtual void environmental_selection(Population& merged, Population& next,
                                       Rng& rng) = 0;

  // Binary tournament for mating. Default: lower rank wins, random tie.
  virtual const Individual& tournament(const Population& population,
                                       Rng& rng);

  // Dominance relation implied by the constraint mode.
  [[nodiscard]] DominanceFn dominance() const;

  // kExclude (paper method 1): drop infeasible individuals; if fewer
  // feasible than population_size remain, keep the least-violating.
  void apply_exclusion(Population& merged) const;

  const AllocationProblem& problem() const { return *problem_; }

 private:
  void maybe_repair(std::vector<std::int32_t>& genes, Rng& rng,
                    std::size_t& counter);
  ThreadPool* evaluation_pool();

  const AllocationProblem* problem_;
  NsgaConfig config_;
  RepairFn repair_;
  std::unique_ptr<ThreadPool> owned_pool_;
};

}  // namespace iaas
