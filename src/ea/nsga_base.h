// Shared generational engine for NSGA-II and NSGA-III.
//
// Implements the paper's modified-NSGA pipeline (Figs. 3-4): binary
// tournament mating selection, optional repair of invalid parents before
// variation, SBX + PM variation, optional repair of offspring, and
// (mu + lambda) environmental selection supplied by the concrete
// algorithm.
//
// Each generation runs in two phases (DESIGN.md §8).  A cheap serial
// phase draws the parent index pairs by tournament — every draw from the
// run's main RNG stream happens here, in a fixed order — and assigns each
// pair a counter-derived child stream.  The parallel phase then fans each
// pair out over the thread pool: crossover, mutation, parent/offspring
// repair, and objective evaluation fused into one task, dispatched in
// chunks to thread-affine arenas (one evaluator lease + gene scratch per
// pool slot, held for the whole run).  Because a task touches only its
// own offspring slots, its own RNG stream, and its slot's arena — and
// every cross-individual state reuse (the second child's gene-diff
// rebase) stays within one task — results are bit-identical for a given
// seed regardless of config.threads or config.task_grain.
//
// The ConstraintMode selects how strict constraints are honoured — the
// four methods the paper enumerates (ignore/exclude/penalty/repair).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "ea/individual.h"
#include "ea/nondominated_sort.h"
#include "ea/nsga_config.h"
#include "ea/operators.h"
#include "ea/problem.h"
#include "model/placement_state.h"

namespace iaas {

// Makes an individual's genes constraint-compliant (or closer to it);
// e.g. the tabu-search repair of paper Figs. 5-6.
using RepairFn = std::function<void(std::vector<std::int32_t>&, Rng&)>;

// Fused repair-as-evaluation hook: repairs the placement held in `state`
// (already rebuilt to the individual's genes, full tracking) in place.
// After it returns, the state's accumulators are read out directly as
// the individual's evaluation — no second rebuild.  Must be safe to call
// concurrently (one distinct state per call).
using StateRepairFn = std::function<void(PlacementState&, Rng&)>;

class NsgaBase {
 public:
  struct Result {
    Population population;          // final population
    std::vector<Individual> front;  // rank-0 members under the engine's
                                    // dominance relation
    Population archive;             // external Pareto archive (empty when
                                    // config.archive_capacity == 0)
    std::size_t evaluations = 0;
    std::size_t repair_invocations = 0;
    std::size_t generations = 0;
    // True when config.time_limit_seconds stopped the run before
    // max_evaluations: the front is the best found so far, not the
    // full-budget answer (the simulator reports such windows degraded).
    bool hit_time_limit = false;
    // Per-generation decision trace; empty unless config.collect_trace.
    // Counter columns are deterministic at any thread count (summed from
    // per-task blocks in task order); the seconds columns are not.
    telemetry::RunTrace trace;
  };

  // `state_repair`, when given alongside `repair`, switches offspring
  // repair to the fused repair-as-evaluation path; `repair` remains in
  // use for parents (whose repaired genes feed variation, not
  // evaluation).  Both must implement the same walk.
  NsgaBase(const AllocationProblem& problem, NsgaConfig config,
           RepairFn repair = nullptr, StateRepairFn state_repair = nullptr);
  virtual ~NsgaBase() = default;

  NsgaBase(const NsgaBase&) = delete;
  NsgaBase& operator=(const NsgaBase&) = delete;

  Result run(std::uint64_t seed);

  [[nodiscard]] const NsgaConfig& config() const { return config_; }

 protected:
  // Fill `next` (empty on entry) with population_size survivors of
  // `merged`; must set rank (and algorithm-specific bookkeeping).
  virtual void environmental_selection(Population& merged, Population& next,
                                       Rng& rng) = 0;

  // Binary tournament for mating. Default: lower rank wins, random tie.
  virtual const Individual& tournament(const Population& population,
                                       Rng& rng);

  // Dominance relation implied by the constraint mode.
  [[nodiscard]] DominanceFn dominance() const;

  // kExclude (paper method 1): drop infeasible individuals; if fewer
  // feasible than population_size remain, keep the least-violating.
  void apply_exclusion(Population& merged) const;

  const AllocationProblem& problem() const { return *problem_; }

 private:
  // Per-task tallies, accumulated into Result on the serial side so the
  // totals are deterministic (no atomics, no ordering dependence).  The
  // counter block is the task's telemetry sink (installed around the
  // task body); the seconds fields are only written when collect_trace
  // is on (null-target timers otherwise).
  struct TaskStats {
    std::size_t repairs = 0;
    std::size_t evaluations = 0;
    telemetry::CounterBlock counters;
    double seconds_variation = 0.0;
    double seconds_repair = 0.0;
    double seconds_evaluate = 0.0;
  };

  // Serial-phase product: everything one variation task needs, fixed
  // before the parallel fan-out.
  struct MatingTask {
    std::size_t parent_a;
    std::size_t parent_b;
    Rng rng;  // counter-derived child stream, owned by this task
    TaskStats stats;
  };

  // Thread-affine scratch: one per ThreadPool slot, acquired for the
  // whole run (DESIGN.md §8).  The long-lived lease removes the
  // per-offspring free-list round-trip; the gene buffers back the lazy
  // parent-repair copies.  A slot's arena is only ever touched by the
  // participant owning that slot (parallel_for_slots), so no locking.
  struct Arena {
    std::optional<AllocationProblem::EvaluatorLease> lease;
    std::vector<std::int32_t> genes_a;  // parent-repair scratch
    std::vector<std::int32_t> genes_b;

    Evaluator& evaluator() { return **lease; }
  };

  // One fused task: (lazily copied + repaired) parents, SBX + PM, repair
  // + evaluate the offspring.  `child_b` is null when the pair's second
  // slot falls outside the offspring population (odd size).
  void variation_task(const Population& parents, MatingTask& task,
                      Individual* child_a, Individual* child_b,
                      Arena& arena);

  // Offspring/initial-individual treatment: repair (when the mode asks
  // for it) fused with evaluation.  With a StateRepairFn the repair
  // walk's PlacementState is read out directly as the evaluation;
  // otherwise genes-based repair followed by a normal evaluation on the
  // arena's evaluator.  `rebase_from_current` lets the fused path
  // reposition the arena state with a gene-diff rebase instead of a full
  // rebuild — only valid when the state's current placement is a
  // deterministic function of this task (the pair's first repaired
  // child), never across tasks.
  void repair_evaluate(Individual& ind, Rng& rng, TaskStats& stats,
                       Arena& arena, bool rebase_from_current = false);

  void repair_genes(std::vector<std::int32_t>& genes, Rng& rng,
                    TaskStats& stats);

  // Folds one task's tallies into a trace row (serial side only).
  // row.repair_invocations mirrors Result::repair_invocations (every
  // repair call), not the kRepairInvocations counter (walks that saw
  // violations) — the repaired/unrepairable columns carry the latter's
  // outcome split.
  static void absorb_stats(telemetry::GenerationRow& row,
                           const TaskStats& stats);

  // Runs fn(slot, i) for i in 0..count serially (slot 0) or over the
  // pool (parallel_for_slots with config_.task_grain); `slot` indexes
  // arenas_.
  void run_tasks(ThreadPool* pool, std::size_t count,
                 const std::function<void(std::size_t, std::size_t)>& fn);

  ThreadPool* evaluation_pool();

  const AllocationProblem* problem_;
  NsgaConfig config_;
  RepairFn repair_;
  StateRepairFn state_repair_;
  std::unique_ptr<ThreadPool> owned_pool_;
  // Per-slot arenas, populated for the duration of one run().
  std::vector<Arena> arenas_;
};

}  // namespace iaas
