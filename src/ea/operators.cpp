#include "ea/operators.h"

#include <algorithm>
#include <cmath>

#include "common/expect.h"

namespace iaas {
namespace {

std::int32_t round_clamp(double value, std::int32_t max_gene) {
  const auto rounded = static_cast<std::int32_t>(std::lround(value));
  return std::clamp(rounded, 0, max_gene);
}

// Deb's SBX spread factor for a uniform draw u.
double sbx_beta(double u, double eta) {
  if (u <= 0.5) {
    return std::pow(2.0 * u, 1.0 / (eta + 1.0));
  }
  return std::pow(1.0 / (2.0 * (1.0 - u)), 1.0 / (eta + 1.0));
}

}  // namespace

void sbx_crossover(const std::vector<std::int32_t>& parent_a,
                   const std::vector<std::int32_t>& parent_b,
                   std::vector<std::int32_t>& child_a,
                   std::vector<std::int32_t>& child_b, std::int32_t max_gene,
                   const SbxParams& params, Rng& rng) {
  IAAS_EXPECT(parent_a.size() == parent_b.size(),
              "SBX parents must have equal length");
  child_a = parent_a;
  child_b = parent_b;
  if (!rng.bernoulli(params.rate)) {
    return;  // no crossover this pair
  }
  for (std::size_t g = 0; g < parent_a.size(); ++g) {
    if (!rng.bernoulli(params.per_gene_swap)) {
      continue;
    }
    const double x1 = static_cast<double>(parent_a[g]);
    const double x2 = static_cast<double>(parent_b[g]);
    const double beta = sbx_beta(rng.next_double(),
                                 params.distribution_index);
    const double c1 = 0.5 * ((1.0 + beta) * x1 + (1.0 - beta) * x2);
    const double c2 = 0.5 * ((1.0 - beta) * x1 + (1.0 + beta) * x2);
    child_a[g] = round_clamp(c1, max_gene);
    child_b[g] = round_clamp(c2, max_gene);
  }
}

void polynomial_mutation(std::vector<std::int32_t>& genes,
                         std::int32_t max_gene, const PmParams& params,
                         Rng& rng) {
  if (max_gene == 0) {
    return;  // single server: nothing to mutate to
  }
  const double range = static_cast<double>(max_gene);
  const double eta = params.distribution_index;
  for (std::int32_t& gene : genes) {
    if (!rng.bernoulli(params.rate)) {
      continue;
    }
    const double x = static_cast<double>(gene);
    const double delta1 = x / range;
    const double delta2 = (range - x) / range;
    const double u = rng.next_double();
    double deltaq;
    if (u <= 0.5) {
      const double val = 2.0 * u + (1.0 - 2.0 * u) *
                                       std::pow(1.0 - delta1, eta + 1.0);
      deltaq = std::pow(val, 1.0 / (eta + 1.0)) - 1.0;
    } else {
      const double val = 2.0 * (1.0 - u) +
                         2.0 * (u - 0.5) * std::pow(1.0 - delta2, eta + 1.0);
      deltaq = 1.0 - std::pow(val, 1.0 / (eta + 1.0));
    }
    double mutated = x + deltaq * range;
    // Rounding can leave the gene unchanged on small perturbations; nudge
    // by one step in the mutation direction so PM always explores.
    std::int32_t result = round_clamp(mutated, max_gene);
    if (result == gene) {
      result = round_clamp(x + (deltaq >= 0.0 ? 1.0 : -1.0), max_gene);
    }
    gene = result;
  }
}

void randomize_genes(std::vector<std::int32_t>& genes, std::int32_t max_gene,
                     Rng& rng) {
  for (std::int32_t& gene : genes) {
    gene = static_cast<std::int32_t>(rng.uniform_int(0, max_gene));
  }
}

}  // namespace iaas
