// EA solution representation (paper §III): each individual's chromosome
// is the VM list; each gene holds the hosting server ID.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "model/objectives.h"

namespace iaas {

struct Individual {
  std::vector<std::int32_t> genes;  // VM k -> server id

  // Objective values (usage, downtime, migration — Eq. 15 terms), set by
  // evaluation; constrained modes add the violation count.
  std::array<double, ObjectiveVector::kCount> objectives{};
  std::uint32_t violations = 0;
  bool evaluated = false;

  // Selection bookkeeping (owned by the NSGA engines).
  std::uint32_t rank = 0;
  double crowding = 0.0;
  // NSGA-III association (set by its environmental selection; consumed
  // by the U-NSGA-III niche tournament).
  std::uint32_t ref_index = 0;
  double ref_distance = 0.0;
};

using Population = std::vector<Individual>;

// Pareto dominance on raw objective values (minimisation); the kernel the
// Individual overload and the penalised comparators share.
bool dominates(std::span<const double> a, std::span<const double> b);

// Pareto dominance on the objective arrays (minimisation).
bool dominates(const Individual& a, const Individual& b);

// Deb's constrained dominance: feasible beats infeasible; among
// infeasible, fewer violations win; among feasible, Pareto dominance.
bool constrained_dominates(const Individual& a, const Individual& b);

}  // namespace iaas
