// Exact hypervolume indicator for the library's three-objective fronts
// (minimisation).  Measures the volume of objective space dominated by a
// front relative to a reference point — the standard scalar for
// comparing Pareto-front quality between NSGA-II and NSGA-III runs
// (used by the ablation benches; not part of the paper's evaluation).
//
// Algorithm: dimension sweep — sort the non-dominated points by the
// third objective and accumulate 2D staircase areas slice by slice.
// Exact and O(n^2 log n), plenty for population-sized fronts.
#pragma once

#include <span>

#include "ea/reference_points.h"

namespace iaas {

// Volume dominated by `points` (minimisation) bounded by `reference`.
// Points outside the reference box contribute only their clipped part;
// dominated points contribute nothing extra.  Empty input -> 0.
double hypervolume(std::span<const ObjArray> points,
                   const ObjArray& reference);

// Convenience: hypervolume of a population's objective vectors.
double hypervolume(const Population& front, const ObjArray& reference);

}  // namespace iaas
