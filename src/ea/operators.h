// Variation operators.  The paper uses the SBX and PM standard operators
// on its integer server-ID genes; following common practice for integer
// decision variables, the real-coded operator runs on the continuous
// relaxation [0, max_gene] and the result is rounded and clamped.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace iaas {

struct SbxParams {
  double rate = 0.70;                // per-pair crossover probability
  double distribution_index = 15.0;  // eta_c
  double per_gene_swap = 0.5;        // standard per-variable participation
};

struct PmParams {
  double rate = 0.20;                // per-gene mutation probability
  double distribution_index = 15.0;  // eta_m
};

// Simulated binary crossover on integer genes; children overwrite the
// provided buffers.  Parents may alias children.
void sbx_crossover(const std::vector<std::int32_t>& parent_a,
                   const std::vector<std::int32_t>& parent_b,
                   std::vector<std::int32_t>& child_a,
                   std::vector<std::int32_t>& child_b, std::int32_t max_gene,
                   const SbxParams& params, Rng& rng);

// Polynomial mutation in place.
void polynomial_mutation(std::vector<std::int32_t>& genes,
                         std::int32_t max_gene, const PmParams& params,
                         Rng& rng);

// Uniform random genes in [0, max_gene].
void randomize_genes(std::vector<std::int32_t>& genes, std::int32_t max_gene,
                     Rng& rng);

}  // namespace iaas
