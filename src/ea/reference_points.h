// Das-Dennis structured reference points on the unit simplex and the
// normalisation/association machinery of NSGA-III (Deb & Jain 2014;
// the paper's [28] U-NSGA-III report uses the same construction).
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "ea/individual.h"

namespace iaas {

inline constexpr std::size_t kObjectives = 3;
using ObjArray = std::array<double, kObjectives>;

// All points with coordinates i/divisions summing to 1
// (C(divisions + M - 1, M - 1) of them for M objectives).
std::vector<ObjArray> das_dennis_points(std::size_t divisions);

// Perpendicular distance from point `p` to the ray through the origin in
// direction `dir` (both in normalised objective space).
double perpendicular_distance(const ObjArray& p, const ObjArray& dir);

// NSGA-III adaptive normalisation: translate by the ideal point, find the
// extreme points via the achievement scalarising function, intersect the
// hyperplane through them with the axes, divide by the intercepts.
// Returns the normalised objectives of each indexed individual.
class Normalizer {
 public:
  // `members` indexes into `population`; statistics use exactly those.
  void fit(std::span<const Individual> population,
           const std::vector<std::size_t>& members);

  [[nodiscard]] ObjArray normalize(const ObjArray& objectives) const;

  [[nodiscard]] const ObjArray& ideal() const { return ideal_; }
  [[nodiscard]] const ObjArray& intercepts() const { return intercepts_; }

 private:
  ObjArray ideal_{};
  ObjArray intercepts_{};
};

}  // namespace iaas
