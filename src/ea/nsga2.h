// NSGA-II (Deb, Pratap, Agarwal, Meyarivan 2002 — the paper's [27]):
// fast non-dominated sorting plus crowding-distance truncation, with the
// crowded-comparison binary tournament.
#pragma once

#include "ea/nsga_base.h"

namespace iaas {

class Nsga2 : public NsgaBase {
 public:
  using NsgaBase::NsgaBase;

 protected:
  void environmental_selection(Population& merged, Population& next,
                               Rng& rng) override;
  const Individual& tournament(const Population& population,
                               Rng& rng) override;
};

}  // namespace iaas
