#include "ea/nsga2.h"

#include <algorithm>

namespace iaas {

void Nsga2::environmental_selection(Population& merged, Population& next,
                                    Rng& /*rng*/) {
  if (config().constraint_mode == ConstraintMode::kExclude) {
    apply_exclusion(merged);
  }
  const auto fronts = nondominated_sort(merged, dominance());
  next.clear();
  next.reserve(config().population_size);
  for (const auto& front : fronts) {
    assign_crowding_distance(merged, front);
    if (next.size() + front.size() <= config().population_size) {
      for (std::size_t idx : front) {
        next.push_back(std::move(merged[idx]));
      }
      if (next.size() == config().population_size) {
        break;
      }
      continue;
    }
    // Partial front: keep the most spread-out individuals.
    std::vector<std::size_t> order(front);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return merged[a].crowding > merged[b].crowding;
                     });
    for (std::size_t i = 0; next.size() < config().population_size; ++i) {
      next.push_back(std::move(merged[order[i]]));
    }
    break;
  }
}

const Individual& Nsga2::tournament(const Population& population, Rng& rng) {
  // Crowded-comparison operator: rank first, then crowding distance.
  const Individual& a = population[rng.uniform_index(population.size())];
  const Individual& b = population[rng.uniform_index(population.size())];
  if (a.rank != b.rank) {
    return a.rank < b.rank ? a : b;
  }
  if (a.crowding != b.crowding) {
    return a.crowding > b.crowding ? a : b;
  }
  return rng.bernoulli(0.5) ? a : b;
}

}  // namespace iaas
