// NSGA-III (Deb & Jain 2014; the paper's [28] covers the unified
// U-NSGA-III variant with the same niching core): non-dominated sorting
// plus reference-point niching with adaptive normalisation.
#pragma once

#include <vector>

#include "ea/nsga_base.h"
#include "ea/reference_points.h"

namespace iaas {

class Nsga3 : public NsgaBase {
 public:
  Nsga3(const AllocationProblem& problem, NsgaConfig config,
        RepairFn repair = nullptr, StateRepairFn state_repair = nullptr);

  [[nodiscard]] const std::vector<ObjArray>& reference_points() const {
    return reference_points_;
  }

 protected:
  void environmental_selection(Population& merged, Population& next,
                               Rng& rng) override;

  // U-NSGA-III niche tournament when config().niche_tournament is set;
  // canonical rank-then-random otherwise.
  const Individual& tournament(const Population& population,
                               Rng& rng) override;

 private:
  // Stamp ref_index / ref_distance on every member of `next` so the
  // niche tournament has current associations.
  void associate_population(Population& next) const;

  std::vector<ObjArray> reference_points_;
};

}  // namespace iaas
