#include "ea/hypervolume.h"

#include <algorithm>
#include <vector>

namespace iaas {
namespace {

// 2D dominated area (minimisation) bounded by (rx, ry).  Points must be
// within the box.
double area_2d(std::vector<std::pair<double, double>> points, double rx,
               double ry) {
  if (points.empty()) {
    return 0.0;
  }
  // Sort by x ascending, y ascending; build the staircase of 2D
  // non-dominated points (strictly decreasing y).
  std::sort(points.begin(), points.end());
  double area = 0.0;
  double y_prev = ry;
  for (const auto& [x, y] : points) {
    if (y >= y_prev) {
      continue;  // 2D-dominated by an earlier (smaller-x) point
    }
    area += (rx - x) * (y_prev - y);
    y_prev = y;
  }
  return area;
}

}  // namespace

double hypervolume(std::span<const ObjArray> points,
                   const ObjArray& reference) {
  // Keep points strictly inside the reference box.
  std::vector<ObjArray> inside;
  inside.reserve(points.size());
  for (const ObjArray& p : points) {
    if (p[0] < reference[0] && p[1] < reference[1] && p[2] < reference[2]) {
      inside.push_back(p);
    }
  }
  if (inside.empty()) {
    return 0.0;
  }

  // Dimension sweep along objective 2 (z): between successive z levels,
  // the dominated volume is (2D area of all points at or below the
  // level) x (z gap).
  std::sort(inside.begin(), inside.end(),
            [](const ObjArray& a, const ObjArray& b) { return a[2] < b[2]; });

  double volume = 0.0;
  std::vector<std::pair<double, double>> active;
  std::size_t i = 0;
  while (i < inside.size()) {
    const double z = inside[i][2];
    while (i < inside.size() && inside[i][2] == z) {
      active.emplace_back(inside[i][0], inside[i][1]);
      ++i;
    }
    const double z_next = i < inside.size() ? inside[i][2] : reference[2];
    volume += area_2d(active, reference[0], reference[1]) * (z_next - z);
  }
  return volume;
}

double hypervolume(const Population& front, const ObjArray& reference) {
  std::vector<ObjArray> points;
  points.reserve(front.size());
  for (const Individual& ind : front) {
    points.push_back(ind.objectives);
  }
  return hypervolume(points, reference);
}

}  // namespace iaas
