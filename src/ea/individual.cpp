#include "ea/individual.h"

namespace iaas {

bool dominates(std::span<const double> a, std::span<const double> b) {
  bool strictly_better = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) {
      return false;
    }
    if (a[i] < b[i]) {
      strictly_better = true;
    }
  }
  return strictly_better;
}

bool dominates(const Individual& a, const Individual& b) {
  return dominates(std::span<const double>(a.objectives),
                   std::span<const double>(b.objectives));
}

bool constrained_dominates(const Individual& a, const Individual& b) {
  const bool a_feasible = a.violations == 0;
  const bool b_feasible = b.violations == 0;
  if (a_feasible != b_feasible) {
    return a_feasible;
  }
  if (!a_feasible) {
    return a.violations < b.violations;
  }
  return dominates(a, b);
}

}  // namespace iaas
