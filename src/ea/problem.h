// EA-facing adapter of the allocation model: genes <-> placements,
// thread-safe objective evaluation with reusable Evaluator scratch.
#pragma once

#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "ea/individual.h"
#include "model/instance.h"
#include "model/objectives.h"

namespace iaas {

class AllocationProblem {
 public:
  explicit AllocationProblem(const Instance& instance,
                             ObjectiveOptions options = {});

  [[nodiscard]] std::size_t gene_count() const { return instance_->n(); }
  [[nodiscard]] std::int32_t max_gene() const {
    return static_cast<std::int32_t>(instance_->m()) - 1;
  }
  [[nodiscard]] const Instance& instance() const { return *instance_; }

  // Shared immutable SoA tables (model/placement_state.h); every pooled
  // evaluator and caller-built repair state of this problem reuses them.
  [[nodiscard]] const std::shared_ptr<const StateTables>& tables() const {
    return tables_;
  }

  // Warm-start genes: the previous window's placement with the
  // still-unplaced VMs randomised — seeding the population with the
  // incumbent is what lets the migration objective (Eq. 26) hold work in
  // place.  Empty when no VM was previously placed.
  [[nodiscard]] std::vector<std::int32_t> warm_start_genes(Rng& rng) const;

  // Evaluate one individual (objectives + violation count).  Thread-safe:
  // each call borrows an Evaluator from an internal pool.
  void evaluate(Individual& individual) const;

  // Evaluate all not-yet-evaluated individuals; parallel when pool given.
  // Returns the number of evaluations actually performed.
  std::size_t evaluate_population(std::span<Individual> population,
                                  ThreadPool* pool) const;

  // RAII borrow of a pooled Evaluator (and the PlacementState scratch it
  // owns).  The fused repair-as-evaluation pipeline rebuilds the state to
  // an individual's genes, runs the repair walk directly on it, and reads
  // the evaluation straight out of the state's accumulators — one rebuild
  // total, no post-repair re-scan.  Thread-safe: each lease holds a
  // distinct Evaluator.
  class EvaluatorLease {
   public:
    explicit EvaluatorLease(const AllocationProblem& problem)
        : problem_(&problem), evaluator_(problem.acquire_evaluator()) {}
    ~EvaluatorLease() {
      if (evaluator_ != nullptr) {
        problem_->release_evaluator(std::move(evaluator_));
      }
    }
    EvaluatorLease(const EvaluatorLease&) = delete;
    EvaluatorLease& operator=(const EvaluatorLease&) = delete;

    [[nodiscard]] Evaluator& operator*() const { return *evaluator_; }
    [[nodiscard]] Evaluator* operator->() const { return evaluator_.get(); }

   private:
    const AllocationProblem* problem_;
    std::unique_ptr<Evaluator> evaluator_;
  };

 private:
  std::unique_ptr<Evaluator> acquire_evaluator() const;
  void release_evaluator(std::unique_ptr<Evaluator> evaluator) const;

  const Instance* instance_;
  ObjectiveOptions options_;
  std::shared_ptr<const StateTables> tables_;
  mutable std::mutex pool_mutex_;
  mutable std::vector<std::unique_ptr<Evaluator>> evaluator_pool_;
};

}  // namespace iaas
