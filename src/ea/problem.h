// EA-facing adapter of the allocation model: genes <-> placements,
// thread-safe objective evaluation with reusable Evaluator scratch.
#pragma once

#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "ea/individual.h"
#include "model/instance.h"
#include "model/objectives.h"

namespace iaas {

class AllocationProblem {
 public:
  explicit AllocationProblem(const Instance& instance,
                             ObjectiveOptions options = {});

  [[nodiscard]] std::size_t gene_count() const { return instance_->n(); }
  [[nodiscard]] std::int32_t max_gene() const {
    return static_cast<std::int32_t>(instance_->m()) - 1;
  }
  [[nodiscard]] const Instance& instance() const { return *instance_; }

  // Warm-start genes: the previous window's placement with the
  // still-unplaced VMs randomised — seeding the population with the
  // incumbent is what lets the migration objective (Eq. 26) hold work in
  // place.  Empty when no VM was previously placed.
  [[nodiscard]] std::vector<std::int32_t> warm_start_genes(Rng& rng) const;

  // Evaluate one individual (objectives + violation count).  Thread-safe:
  // each call borrows an Evaluator from an internal pool.
  void evaluate(Individual& individual) const;

  // Evaluate all not-yet-evaluated individuals; parallel when pool given.
  // Returns the number of evaluations actually performed.
  std::size_t evaluate_population(std::span<Individual> population,
                                  ThreadPool* pool) const;

 private:
  class EvaluatorLease;
  std::unique_ptr<Evaluator> acquire_evaluator() const;
  void release_evaluator(std::unique_ptr<Evaluator> evaluator) const;

  const Instance* instance_;
  ObjectiveOptions options_;
  mutable std::mutex pool_mutex_;
  mutable std::vector<std::unique_ptr<Evaluator>> evaluator_pool_;
};

}  // namespace iaas
