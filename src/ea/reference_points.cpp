#include "ea/reference_points.h"

#include <cmath>
#include <limits>

#include "common/expect.h"

namespace iaas {
namespace {

void das_dennis_recurse(std::size_t divisions, std::size_t dim,
                        std::size_t remaining, ObjArray& work,
                        std::vector<ObjArray>& out) {
  if (dim == kObjectives - 1) {
    work[dim] = static_cast<double>(remaining) /
                static_cast<double>(divisions);
    out.push_back(work);
    return;
  }
  for (std::size_t i = 0; i <= remaining; ++i) {
    work[dim] = static_cast<double>(i) / static_cast<double>(divisions);
    das_dennis_recurse(divisions, dim + 1, remaining - i, work, out);
  }
}

// Solve the 3x3 system A b = 1 by Gaussian elimination with partial
// pivoting; returns false when (near-)singular.
bool solve3(const std::array<ObjArray, kObjectives>& rows, ObjArray& b) {
  double a[kObjectives][kObjectives + 1];
  for (std::size_t r = 0; r < kObjectives; ++r) {
    for (std::size_t c = 0; c < kObjectives; ++c) {
      a[r][c] = rows[r][c];
    }
    a[r][kObjectives] = 1.0;
  }
  for (std::size_t col = 0; col < kObjectives; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < kObjectives; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) {
        pivot = r;
      }
    }
    if (std::fabs(a[pivot][col]) < 1e-12) {
      return false;
    }
    if (pivot != col) {
      for (std::size_t c = 0; c <= kObjectives; ++c) {
        std::swap(a[pivot][c], a[col][c]);
      }
    }
    for (std::size_t r = 0; r < kObjectives; ++r) {
      if (r == col) {
        continue;
      }
      const double f = a[r][col] / a[col][col];
      for (std::size_t c = col; c <= kObjectives; ++c) {
        a[r][c] -= f * a[col][c];
      }
    }
  }
  for (std::size_t r = 0; r < kObjectives; ++r) {
    b[r] = a[r][kObjectives] / a[r][r];
  }
  return true;
}

}  // namespace

std::vector<ObjArray> das_dennis_points(std::size_t divisions) {
  IAAS_EXPECT(divisions >= 1, "need at least one division");
  std::vector<ObjArray> out;
  ObjArray work{};
  das_dennis_recurse(divisions, 0, divisions, work, out);
  return out;
}

double perpendicular_distance(const ObjArray& p, const ObjArray& dir) {
  double dir_norm2 = 0.0;
  double dot = 0.0;
  for (std::size_t i = 0; i < kObjectives; ++i) {
    dir_norm2 += dir[i] * dir[i];
    dot += p[i] * dir[i];
  }
  if (dir_norm2 <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  const double t = dot / dir_norm2;
  double dist2 = 0.0;
  for (std::size_t i = 0; i < kObjectives; ++i) {
    const double d = p[i] - t * dir[i];
    dist2 += d * d;
  }
  return std::sqrt(dist2);
}

void Normalizer::fit(std::span<const Individual> population,
                     const std::vector<std::size_t>& members) {
  IAAS_EXPECT(!members.empty(), "normalizer needs at least one member");

  for (std::size_t i = 0; i < kObjectives; ++i) {
    ideal_[i] = std::numeric_limits<double>::infinity();
  }
  for (std::size_t idx : members) {
    for (std::size_t i = 0; i < kObjectives; ++i) {
      ideal_[i] = std::min(ideal_[i], population[idx].objectives[i]);
    }
  }

  // Extreme point per axis: minimiser of the achievement scalarising
  // function with the axis weight vector.
  std::array<ObjArray, kObjectives> extremes{};
  for (std::size_t axis = 0; axis < kObjectives; ++axis) {
    double best_asf = std::numeric_limits<double>::infinity();
    for (std::size_t idx : members) {
      double asf = 0.0;
      for (std::size_t i = 0; i < kObjectives; ++i) {
        const double w = (i == axis) ? 1.0 : 1e-6;
        const double translated =
            population[idx].objectives[i] - ideal_[i];
        asf = std::max(asf, translated / w);
      }
      if (asf < best_asf) {
        best_asf = asf;
        for (std::size_t i = 0; i < kObjectives; ++i) {
          extremes[axis][i] = population[idx].objectives[i] - ideal_[i];
        }
      }
    }
  }

  ObjArray plane{};
  const bool solved = solve3(extremes, plane);
  bool valid = solved;
  if (solved) {
    for (std::size_t i = 0; i < kObjectives; ++i) {
      const double intercept = 1.0 / plane[i];
      if (!(intercept > 1e-12) || !std::isfinite(intercept)) {
        valid = false;
        break;
      }
      intercepts_[i] = intercept;
    }
  }
  if (!valid) {
    // Degenerate front: fall back to the per-axis max spread.
    for (std::size_t i = 0; i < kObjectives; ++i) {
      double max_v = 0.0;
      for (std::size_t idx : members) {
        max_v = std::max(max_v, population[idx].objectives[i] - ideal_[i]);
      }
      intercepts_[i] = max_v > 1e-12 ? max_v : 1.0;
    }
  }
}

ObjArray Normalizer::normalize(const ObjArray& objectives) const {
  ObjArray out{};
  for (std::size_t i = 0; i < kObjectives; ++i) {
    out[i] = (objectives[i] - ideal_[i]) / intercepts_[i];
  }
  return out;
}

}  // namespace iaas
