#include "ea/nondominated_sort.h"

#include <algorithm>
#include <limits>

namespace iaas {

std::vector<std::vector<std::size_t>> nondominated_sort(
    std::span<Individual> population, const DominanceFn& dominates_fn) {
  const std::size_t n = population.size();
  std::vector<std::vector<std::size_t>> dominated_by(n);
  std::vector<std::size_t> domination_count(n, 0);
  std::vector<std::vector<std::size_t>> fronts(1);

  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t q = p + 1; q < n; ++q) {
      if (dominates_fn(population[p], population[q])) {
        dominated_by[p].push_back(q);
        ++domination_count[q];
      } else if (dominates_fn(population[q], population[p])) {
        dominated_by[q].push_back(p);
        ++domination_count[p];
      }
    }
    if (domination_count[p] == 0) {
      population[p].rank = 0;
      fronts[0].push_back(p);
    }
  }

  std::size_t current = 0;
  while (!fronts[current].empty()) {
    std::vector<std::size_t> next;
    for (std::size_t p : fronts[current]) {
      for (std::size_t q : dominated_by[p]) {
        if (--domination_count[q] == 0) {
          population[q].rank = static_cast<std::uint32_t>(current + 1);
          next.push_back(q);
        }
      }
    }
    ++current;
    fronts.push_back(std::move(next));
  }
  fronts.pop_back();  // trailing empty front
  return fronts;
}

void assign_crowding_distance(std::span<Individual> population,
                              const std::vector<std::size_t>& front) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (std::size_t i : front) {
    population[i].crowding = 0.0;
  }
  if (front.size() <= 2) {
    for (std::size_t i : front) {
      population[i].crowding = kInf;
    }
    return;
  }
  const std::size_t objectives = population[front[0]].objectives.size();
  std::vector<std::size_t> order(front);
  for (std::size_t obj = 0; obj < objectives; ++obj) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return population[a].objectives[obj] < population[b].objectives[obj];
    });
    const double lo = population[order.front()].objectives[obj];
    const double hi = population[order.back()].objectives[obj];
    population[order.front()].crowding = kInf;
    population[order.back()].crowding = kInf;
    if (hi <= lo) {
      continue;  // degenerate axis: no spread to reward
    }
    for (std::size_t i = 1; i + 1 < order.size(); ++i) {
      const double gap = population[order[i + 1]].objectives[obj] -
                         population[order[i - 1]].objectives[obj];
      population[order[i]].crowding += gap / (hi - lo);
    }
  }
}

}  // namespace iaas
