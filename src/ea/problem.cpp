#include "ea/problem.h"

#include "common/expect.h"
#include "common/telemetry.h"
#include "model/placement.h"

namespace iaas {

AllocationProblem::AllocationProblem(const Instance& instance,
                                     ObjectiveOptions options)
    : instance_(&instance),
      options_(options),
      tables_(std::make_shared<const StateTables>(instance)) {}

std::unique_ptr<Evaluator> AllocationProblem::acquire_evaluator() const {
  {
    std::lock_guard lock(pool_mutex_);
    if (!evaluator_pool_.empty()) {
      auto evaluator = std::move(evaluator_pool_.back());
      evaluator_pool_.pop_back();
      return evaluator;
    }
  }
  return std::make_unique<Evaluator>(*instance_, options_, tables_);
}

void AllocationProblem::release_evaluator(
    std::unique_ptr<Evaluator> evaluator) const {
  std::lock_guard lock(pool_mutex_);
  evaluator_pool_.push_back(std::move(evaluator));
}

std::vector<std::int32_t> AllocationProblem::warm_start_genes(
    Rng& rng) const {
  const Placement& previous = instance_->previous;
  if (previous.assigned_count() == 0) {
    return {};
  }
  std::vector<std::int32_t> genes(gene_count());
  for (std::size_t k = 0; k < gene_count(); ++k) {
    genes[k] = previous.is_assigned(k)
                   ? previous.server_of(k)
                   : static_cast<std::int32_t>(rng.uniform_int(
                         0, max_gene()));
  }
  return genes;
}

void AllocationProblem::evaluate(Individual& individual) const {
  IAAS_EXPECT(individual.genes.size() == gene_count(),
              "individual gene count mismatch");
  telemetry::count(telemetry::Counter::kEvaluations);
  EvaluatorLease lease(*this);
  // Pooled evaluators keep their PlacementState accumulators across
  // individuals (repair-mode populations cycle through here constantly),
  // and evaluate_genes rebuilds in place — no per-call allocation or
  // Placement copy.
  const Evaluation eval = lease->evaluate_genes(individual.genes);
  individual.objectives = eval.objectives.as_array();
  individual.violations = eval.violations.total();
  individual.evaluated = true;
}

std::size_t AllocationProblem::evaluate_population(
    std::span<Individual> population, ThreadPool* pool) const {
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < population.size(); ++i) {
    if (!population[i].evaluated) {
      pending.push_back(i);
    }
  }
  if (pending.empty()) {
    return 0;
  }
  if (pool == nullptr || pending.size() < 2) {
    for (std::size_t i : pending) {
      evaluate(population[i]);
    }
  } else {
    pool->parallel_for(0, pending.size(), [&](std::size_t idx) {
      evaluate(population[pending[idx]]);
    });
  }
  return pending.size();
}

}  // namespace iaas
