// Bounded external Pareto archive.
//
// The NSGA engines are generational: a non-dominated solution can be
// lost when the next population displaces it.  The archive keeps the
// best non-dominated set seen across the whole run (classic external
// elitism); when full, the most crowded member is evicted so coverage is
// preserved over density.  Feasibility-first: a feasible entrant evicts
// dominated *and* infeasible incumbents.
#pragma once

#include <cstddef>

#include "ea/individual.h"

namespace iaas {

class ParetoArchive {
 public:
  explicit ParetoArchive(std::size_t capacity = 200);

  // Insert if no member constrained-dominates it; removes members the
  // entrant dominates.  Returns true when the entrant was admitted.
  bool insert(const Individual& candidate);

  [[nodiscard]] const Population& members() const { return members_; }
  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool empty() const { return members_.empty(); }

 private:
  void evict_most_crowded();

  std::size_t capacity_;
  Population members_;
};

}  // namespace iaas
