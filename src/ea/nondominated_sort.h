// Fast non-dominated sorting (Deb et al. 2002, the NSGA-II paper).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "ea/individual.h"

namespace iaas {

using DominanceFn =
    std::function<bool(const Individual&, const Individual&)>;

// Partitions `population` indices into fronts F_0, F_1, ...; sets each
// individual's `rank` to its front number.  `dominates_fn` selects plain
// or constrained dominance.
std::vector<std::vector<std::size_t>> nondominated_sort(
    std::span<Individual> population, const DominanceFn& dominates_fn);

// Crowding distance (NSGA-II) over one front; writes Individual::crowding.
void assign_crowding_distance(std::span<Individual> population,
                              const std::vector<std::size_t>& front);

}  // namespace iaas
