#include "ea/archive.h"

#include <algorithm>

#include "common/expect.h"
#include "ea/nondominated_sort.h"

namespace iaas {

ParetoArchive::ParetoArchive(std::size_t capacity) : capacity_(capacity) {
  IAAS_EXPECT(capacity_ > 0, "archive capacity must be positive");
}

bool ParetoArchive::insert(const Individual& candidate) {
  // Rejected if any incumbent dominates (or duplicates) it.
  for (const Individual& member : members_) {
    if (constrained_dominates(member, candidate) ||
        (member.objectives == candidate.objectives &&
         member.violations == candidate.violations)) {
      return false;
    }
  }
  // Admit; drop every incumbent the entrant dominates.
  members_.erase(
      std::remove_if(members_.begin(), members_.end(),
                     [&](const Individual& member) {
                       return constrained_dominates(candidate, member);
                     }),
      members_.end());
  members_.push_back(candidate);
  if (members_.size() > capacity_) {
    evict_most_crowded();
  }
  return true;
}

void ParetoArchive::evict_most_crowded() {
  // Crowding distance over the whole archive; evict the least spread-out
  // member (boundary members carry infinite crowding and are safe).
  std::vector<std::size_t> front(members_.size());
  for (std::size_t i = 0; i < members_.size(); ++i) {
    front[i] = i;
  }
  assign_crowding_distance(members_, front);
  const auto victim = std::min_element(
      members_.begin(), members_.end(),
      [](const Individual& a, const Individual& b) {
        return a.crowding < b.crowding;
      });
  members_.erase(victim);
}

}  // namespace iaas
