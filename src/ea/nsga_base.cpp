#include "ea/nsga_base.h"

#include <algorithm>
#include <array>
#include <optional>
#include <span>

#include "common/expect.h"
#include "ea/archive.h"

namespace iaas {

NsgaBase::NsgaBase(const AllocationProblem& problem, NsgaConfig config,
                   RepairFn repair)
    : problem_(&problem), config_(config), repair_(std::move(repair)) {
  IAAS_EXPECT(config_.population_size >= 4,
              "population too small for tournament + crossover");
  if (config_.constraint_mode == ConstraintMode::kRepair) {
    IAAS_EXPECT(static_cast<bool>(repair_),
                "kRepair mode requires a repair function");
  }
  if (config_.threads > 1) {
    owned_pool_ = std::make_unique<ThreadPool>(config_.threads);
  }
}

ThreadPool* NsgaBase::evaluation_pool() {
  if (config_.threads == 1) {
    return nullptr;
  }
  if (owned_pool_ != nullptr) {
    return owned_pool_.get();
  }
  return &ThreadPool::shared();
}

DominanceFn NsgaBase::dominance() const {
  switch (config_.constraint_mode) {
    case ConstraintMode::kIgnore:
      return [](const Individual& a, const Individual& b) {
        return dominates(a, b);
      };
    case ConstraintMode::kPenalty: {
      const double w = config_.penalty_weight;
      return [w](const Individual& a, const Individual& b) {
        // Penalise stack copies of the objective arrays only — the gene
        // vectors play no role in dominance.
        std::array<double, ObjectiveVector::kCount> pa = a.objectives;
        std::array<double, ObjectiveVector::kCount> pb = b.objectives;
        for (std::size_t i = 0; i < pa.size(); ++i) {
          pa[i] += w * a.violations;
          pb[i] += w * b.violations;
        }
        return dominates(std::span<const double>(pa),
                         std::span<const double>(pb));
      };
    }
    case ConstraintMode::kExclude:
    case ConstraintMode::kRepair:
      return [](const Individual& a, const Individual& b) {
        return constrained_dominates(a, b);
      };
  }
  return [](const Individual& a, const Individual& b) {
    return dominates(a, b);
  };
}

void NsgaBase::apply_exclusion(Population& merged) const {
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Individual& a, const Individual& b) {
                     return a.violations < b.violations;
                   });
  const auto feasible_end = std::find_if(
      merged.begin(), merged.end(),
      [](const Individual& ind) { return ind.violations > 0; });
  const auto feasible =
      static_cast<std::size_t>(feasible_end - merged.begin());
  const std::size_t keep = std::max(feasible, config_.population_size);
  if (keep < merged.size()) {
    merged.resize(keep);
  }
}

const Individual& NsgaBase::tournament(const Population& population,
                                       Rng& rng) {
  const Individual& a = population[rng.uniform_index(population.size())];
  const Individual& b = population[rng.uniform_index(population.size())];
  if (a.rank != b.rank) {
    return a.rank < b.rank ? a : b;
  }
  return rng.bernoulli(0.5) ? a : b;
}

void NsgaBase::maybe_repair(std::vector<std::int32_t>& genes, Rng& rng,
                            std::size_t& counter) {
  if (config_.constraint_mode != ConstraintMode::kRepair) {
    return;
  }
  repair_(genes, rng);
  ++counter;
}

NsgaBase::Result NsgaBase::run(std::uint64_t seed) {
  Rng rng(seed);
  ThreadPool* pool = evaluation_pool();
  Result result;

  const SbxParams sbx{config_.sbx_rate, config_.sbx_distribution_index, 0.5};
  const PmParams pm{config_.pm_rate, config_.pm_distribution_index};
  const std::int32_t max_gene = problem_->max_gene();

  // Initial population; in repair mode initial individuals are repaired
  // too so the search starts from the feasible region.
  Population population(config_.population_size);
  for (Individual& ind : population) {
    ind.genes.resize(problem_->gene_count());
    randomize_genes(ind.genes, max_gene, rng);
    if (config_.repair_offspring) {
      maybe_repair(ind.genes, rng, result.repair_invocations);
    }
  }
  if (config_.warm_start) {
    // Seed the incumbent so the migration objective can prefer "stay".
    std::vector<std::int32_t> warm = problem_->warm_start_genes(rng);
    if (!warm.empty()) {
      population.front().genes = std::move(warm);
      if (config_.repair_offspring) {
        maybe_repair(population.front().genes, rng,
                     result.repair_invocations);
      }
    }
  }
  result.evaluations += problem_->evaluate_population(population, pool);

  std::optional<ParetoArchive> archive;
  if (config_.archive_capacity > 0) {
    archive.emplace(config_.archive_capacity);
    for (const Individual& ind : population) {
      archive->insert(ind);
    }
  }

  // Rank the initial population so the first tournament has information.
  {
    Population scratch = population;
    Population ranked;
    environmental_selection(scratch, ranked, rng);
    population = std::move(ranked);
  }

  while (result.evaluations < config_.max_evaluations) {
    Population offspring;
    offspring.reserve(config_.population_size);
    while (offspring.size() < config_.population_size) {
      const Individual& parent_a = tournament(population, rng);
      const Individual& parent_b = tournament(population, rng);
      std::vector<std::int32_t> pa = parent_a.genes;
      std::vector<std::int32_t> pb = parent_b.genes;
      // Paper Fig. 4: parents that "do not respect users constraints"
      // pass through the repair before they are allowed to reproduce.
      if (config_.repair_parents) {
        if (parent_a.violations > 0) {
          maybe_repair(pa, rng, result.repair_invocations);
        }
        if (parent_b.violations > 0) {
          maybe_repair(pb, rng, result.repair_invocations);
        }
      }
      Individual child_a;
      Individual child_b;
      sbx_crossover(pa, pb, child_a.genes, child_b.genes, max_gene, sbx, rng);
      polynomial_mutation(child_a.genes, max_gene, pm, rng);
      polynomial_mutation(child_b.genes, max_gene, pm, rng);
      if (config_.repair_offspring) {
        maybe_repair(child_a.genes, rng, result.repair_invocations);
        maybe_repair(child_b.genes, rng, result.repair_invocations);
      }
      offspring.push_back(std::move(child_a));
      if (offspring.size() < config_.population_size) {
        offspring.push_back(std::move(child_b));
      }
    }
    result.evaluations += problem_->evaluate_population(offspring, pool);
    if (archive) {
      for (const Individual& ind : offspring) {
        archive->insert(ind);
      }
    }

    Population merged;
    merged.reserve(population.size() + offspring.size());
    std::move(population.begin(), population.end(),
              std::back_inserter(merged));
    std::move(offspring.begin(), offspring.end(),
              std::back_inserter(merged));

    Population next;
    environmental_selection(merged, next, rng);
    population = std::move(next);
    ++result.generations;
  }

  // Final front: rank-0 members under the engine's dominance.
  const DominanceFn dom = dominance();
  Population final_copy = population;
  const auto fronts = nondominated_sort(final_copy, dom);
  IAAS_EXPECT(!fronts.empty(), "population cannot be empty");
  for (std::size_t idx : fronts[0]) {
    result.front.push_back(final_copy[idx]);
  }
  result.population = std::move(population);
  if (archive) {
    result.archive = archive->members();
  }
  return result;
}

}  // namespace iaas
