#include "ea/nsga_base.h"

#include <algorithm>
#include <array>
#include <limits>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/expect.h"
#include "common/stopwatch.h"
#include "ea/archive.h"
#include "model/placement.h"

namespace iaas {
namespace {

// Front size + best (min-aggregate) objective vector of the survivors;
// called right after environmental_selection stamps ranks.
void stamp_population_summary(const Population& population,
                              telemetry::GenerationRow& row) {
  row.front_size = 0;
  double best = std::numeric_limits<double>::infinity();
  const Individual* best_ind = nullptr;
  for (const Individual& ind : population) {
    if (ind.rank == 0) {
      ++row.front_size;
    }
    double aggregate = 0.0;
    for (double v : ind.objectives) {
      aggregate += v;
    }
    if (aggregate < best) {
      best = aggregate;
      best_ind = &ind;
    }
  }
  if (best_ind != nullptr) {
    row.best_objectives = best_ind->objectives;
  }
}

// Per-generation push of the traced phase times into the global registry
// (only meaningful when tracing — the timers are disabled otherwise).
void flush_row_phases(const telemetry::GenerationRow& row) {
  using telemetry::Phase;
  auto& registry = telemetry::Registry::global();
  registry.add_phase_seconds(Phase::kTournament, row.seconds_tournament);
  registry.add_phase_seconds(Phase::kVariation, row.seconds_variation);
  registry.add_phase_seconds(Phase::kRepair, row.seconds_repair);
  registry.add_phase_seconds(Phase::kEvaluate, row.seconds_evaluate);
  registry.add_phase_seconds(Phase::kSelection, row.seconds_selection);
}

}  // namespace

NsgaBase::NsgaBase(const AllocationProblem& problem, NsgaConfig config,
                   RepairFn repair, StateRepairFn state_repair)
    : problem_(&problem),
      config_(config),
      repair_(std::move(repair)),
      state_repair_(std::move(state_repair)) {
  IAAS_EXPECT(config_.population_size >= 4,
              "population too small for tournament + crossover");
  if (config_.constraint_mode == ConstraintMode::kRepair) {
    IAAS_EXPECT(static_cast<bool>(repair_),
                "kRepair mode requires a repair function");
  }
  if (config_.threads > 1) {
    owned_pool_ = std::make_unique<ThreadPool>(config_.threads);
  }
}

ThreadPool* NsgaBase::evaluation_pool() {
  if (config_.threads == 1) {
    return nullptr;
  }
  if (owned_pool_ != nullptr) {
    return owned_pool_.get();
  }
  return &ThreadPool::shared();
}

DominanceFn NsgaBase::dominance() const {
  switch (config_.constraint_mode) {
    case ConstraintMode::kIgnore:
      return [](const Individual& a, const Individual& b) {
        return dominates(a, b);
      };
    case ConstraintMode::kPenalty: {
      const double w = config_.penalty_weight;
      return [w](const Individual& a, const Individual& b) {
        // Penalise stack copies of the objective arrays only — the gene
        // vectors play no role in dominance.
        std::array<double, ObjectiveVector::kCount> pa = a.objectives;
        std::array<double, ObjectiveVector::kCount> pb = b.objectives;
        for (std::size_t i = 0; i < pa.size(); ++i) {
          pa[i] += w * a.violations;
          pb[i] += w * b.violations;
        }
        return dominates(std::span<const double>(pa),
                         std::span<const double>(pb));
      };
    }
    case ConstraintMode::kExclude:
    case ConstraintMode::kRepair:
      return [](const Individual& a, const Individual& b) {
        return constrained_dominates(a, b);
      };
  }
  return [](const Individual& a, const Individual& b) {
    return dominates(a, b);
  };
}

void NsgaBase::apply_exclusion(Population& merged) const {
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Individual& a, const Individual& b) {
                     return a.violations < b.violations;
                   });
  const auto feasible_end = std::find_if(
      merged.begin(), merged.end(),
      [](const Individual& ind) { return ind.violations > 0; });
  const auto feasible =
      static_cast<std::size_t>(feasible_end - merged.begin());
  const std::size_t keep = std::max(feasible, config_.population_size);
  if (keep < merged.size()) {
    merged.resize(keep);
  }
}

const Individual& NsgaBase::tournament(const Population& population,
                                       Rng& rng) {
  const Individual& a = population[rng.uniform_index(population.size())];
  const Individual& b = population[rng.uniform_index(population.size())];
  if (a.rank != b.rank) {
    return a.rank < b.rank ? a : b;
  }
  return rng.bernoulli(0.5) ? a : b;
}

void NsgaBase::repair_genes(std::vector<std::int32_t>& genes, Rng& rng,
                            TaskStats& stats) {
  repair_(genes, rng);
  ++stats.repairs;
}

void NsgaBase::absorb_stats(telemetry::GenerationRow& row,
                            const TaskStats& stats) {
  using telemetry::Counter;
  const telemetry::CounterBlock& c = stats.counters;
  row.evaluations += stats.evaluations;
  row.repair_invocations += stats.repairs;
  row.full_rebuilds += static_cast<std::size_t>(c[Counter::kStateRebuilds]);
  row.delta_moves += static_cast<std::size_t>(c[Counter::kDeltaMoves]);
  row.rebases += static_cast<std::size_t>(c[Counter::kStateRebases]);
  row.repaired +=
      static_cast<std::size_t>(c[Counter::kRepairedIndividuals]);
  row.unrepairable +=
      static_cast<std::size_t>(c[Counter::kUnrepairableIndividuals]);
  row.tabu_moves_tried +=
      static_cast<std::size_t>(c[Counter::kTabuMovesTried]);
  row.tabu_moves_accepted +=
      static_cast<std::size_t>(c[Counter::kTabuMovesAccepted]);
  row.seconds_variation += stats.seconds_variation;
  row.seconds_repair += stats.seconds_repair;
  row.seconds_evaluate += stats.seconds_evaluate;
}

void NsgaBase::repair_evaluate(Individual& ind, Rng& rng, TaskStats& stats,
                               Arena& arena, bool rebase_from_current) {
  const bool tracing = config_.collect_trace;
  const bool do_repair =
      config_.constraint_mode == ConstraintMode::kRepair &&
      config_.repair_offspring;
  if (do_repair && state_repair_) {
    // Fused path: one rebuild (or, when the arena state already holds a
    // placement this task produced, a gene-diff rebase) positions the
    // state at the unrepaired placement; the repair walk keeps every
    // accumulator current, so the state read-out after it IS the
    // evaluation of the repaired genes.
    PlacementState& state = arena.evaluator().state();
    {
      telemetry::ScopedTimer timer(tracing ? &stats.seconds_evaluate
                                           : nullptr);
      if (rebase_from_current) {
        state.rebase(ind.genes);
      } else {
        state.rebuild(ind.genes);
      }
    }
    {
      telemetry::ScopedTimer timer(tracing ? &stats.seconds_repair
                                           : nullptr);
      state_repair_(state, rng);
    }
    ++stats.repairs;
    if (state.applied_moves() > 0) {
      ind.genes = state.placement().genes();
    }
    ind.objectives = state.objectives().as_array();
    ind.violations = state.total_violations();
    ind.evaluated = true;
    // The fused path bypasses AllocationProblem::evaluate (which counts
    // its own calls), so the evaluation is counted here.
    telemetry::count(telemetry::Counter::kEvaluations);
  } else {
    if (do_repair) {
      telemetry::ScopedTimer timer(tracing ? &stats.seconds_repair
                                           : nullptr);
      repair_genes(ind.genes, rng, stats);
    }
    telemetry::ScopedTimer timer(tracing ? &stats.seconds_evaluate
                                         : nullptr);
    // Same contract as AllocationProblem::evaluate, on the arena's
    // evaluator — no per-call lease round-trip through the pool mutex.
    IAAS_EXPECT(ind.genes.size() == problem_->gene_count(),
                "individual gene count mismatch");
    telemetry::count(telemetry::Counter::kEvaluations);
    const Evaluation eval = arena.evaluator().evaluate_genes(ind.genes);
    ind.objectives = eval.objectives.as_array();
    ind.violations = eval.violations.total();
    ind.evaluated = true;
  }
  ++stats.evaluations;
}

void NsgaBase::variation_task(const Population& parents, MatingTask& task,
                              Individual* child_a, Individual* child_b,
                              Arena& arena) {
  const SbxParams sbx{config_.sbx_rate, config_.sbx_distribution_index, 0.5};
  const PmParams pm{config_.pm_rate, config_.pm_distribution_index};
  const std::int32_t max_gene = problem_->max_gene();
  Rng& rng = task.rng;

  const Individual& parent_a = parents[task.parent_a];
  const Individual& parent_b = parents[task.parent_b];
  const bool tracing = config_.collect_trace;
  // Variation reads the parents' genes in place; only a parent that
  // actually goes through repair (paper Fig. 4: parents that "do not
  // respect users constraints") is copied first, into the arena's
  // reusable buffer — feasible parents cost no copy at all.
  const std::vector<std::int32_t>* genes_a = &parent_a.genes;
  const std::vector<std::int32_t>* genes_b = &parent_b.genes;
  if (config_.constraint_mode == ConstraintMode::kRepair &&
      config_.repair_parents) {
    telemetry::ScopedTimer timer(tracing ? &task.stats.seconds_repair
                                         : nullptr);
    if (parent_a.violations > 0) {
      arena.genes_a = parent_a.genes;
      repair_genes(arena.genes_a, rng, task.stats);
      genes_a = &arena.genes_a;
    }
    if (parent_b.violations > 0) {
      arena.genes_b = parent_b.genes;
      repair_genes(arena.genes_b, rng, task.stats);
      genes_b = &arena.genes_b;
    }
  }

  // A dropped second child (odd population size) skips variation and
  // repair entirely; the task stream is private, so skipping consumes no
  // draws any other task depends on.
  std::vector<std::int32_t> discard;
  std::vector<std::int32_t>& second_genes =
      child_b != nullptr ? child_b->genes : discard;
  {
    telemetry::ScopedTimer timer(tracing ? &task.stats.seconds_variation
                                         : nullptr);
    sbx_crossover(*genes_a, *genes_b, child_a->genes, second_genes, max_gene,
                  sbx, rng);
    polynomial_mutation(child_a->genes, max_gene, pm, rng);
    if (child_b != nullptr) {
      polynomial_mutation(child_b->genes, max_gene, pm, rng);
    }
  }
  repair_evaluate(*child_a, rng, task.stats, arena);
  if (child_b != nullptr) {
    // The arena state now holds the pair's repaired first child — a base
    // that is a deterministic function of this task alone, so the second
    // child may reposition it with a gene-diff rebase without breaking
    // bit-identical results across thread counts.  In converged or
    // warm-started populations the siblings share most genes and the
    // rebase touches only a few servers.
    repair_evaluate(*child_b, rng, task.stats, arena,
                    /*rebase_from_current=*/true);
  }
}

void NsgaBase::run_tasks(ThreadPool* pool, std::size_t count,
                         const std::function<void(std::size_t, std::size_t)>&
                             fn) {
  if (pool == nullptr || count < 2) {
    for (std::size_t i = 0; i < count; ++i) {
      fn(0, i);
    }
  } else {
    pool->parallel_for_slots(0, count, fn, config_.task_grain);
  }
}

NsgaBase::Result NsgaBase::run(std::uint64_t seed) {
  Rng rng(seed);
  ThreadPool* pool = evaluation_pool();
  Stopwatch budget_timer;

  // Thread-affine arenas: one evaluator lease (plus gene scratch) per
  // pool slot, held for the whole run.  Every parallel phase below hands
  // each participating thread a stable slot (parallel_for_slots), so a
  // task reaches its scratch without locks and the evaluator free-list
  // is visited twice per run instead of twice per offspring.
  const std::size_t slot_count = pool != nullptr ? pool->size() : 1;
  arenas_ = std::vector<Arena>(slot_count);
  for (Arena& arena : arenas_) {
    arena.lease.emplace(*problem_);
  }

  Result result;
  const bool tracing = config_.collect_trace;
  result.trace.seed = seed;

  const std::int32_t max_gene = problem_->max_gene();

  // Initial population.  Serial phase: every main-stream draw (gene
  // randomisation, warm start) happens here in a fixed order.
  Population population(config_.population_size);
  for (Individual& ind : population) {
    ind.genes.resize(problem_->gene_count());
    randomize_genes(ind.genes, max_gene, rng);
  }
  if (config_.warm_start) {
    // Seed the incumbent so the migration objective can prefer "stay".
    std::vector<std::int32_t> warm = problem_->warm_start_genes(rng);
    if (!warm.empty()) {
      population.front().genes = std::move(warm);
    }
  }
  if (!config_.seed_genes.empty()) {
    // Cross-run seeds (a previous run's front): slot them in after the
    // incumbent, capped at half the population so exploration survives.
    // Wrong-length vectors are skipped (the VM set changed shape in a
    // way the caller's compaction could not track); out-of-range genes
    // are clamped and rejected genes randomised, exactly like the
    // incumbent's (problem.cpp).  Keeping kRejected here would be
    // poison: rejection costs nothing in objective space, so one
    // reject-heavy seed dominates the front and a steady-state run
    // (simulator fronts are padded with kRejected for every arrival)
    // collapses to rejecting all traffic.
    std::size_t slot = config_.warm_start ? 1 : 0;
    const std::size_t cap =
        std::min(population.size() / 2,
                 config_.seed_genes.size() + slot);
    for (const std::vector<std::int32_t>& seed_vec : config_.seed_genes) {
      if (slot >= cap) {
        break;
      }
      if (seed_vec.size() != problem_->gene_count()) {
        continue;
      }
      Individual& ind = population[slot++];
      ind.genes = seed_vec;
      for (std::int32_t& g : ind.genes) {
        g = g < 0 ? static_cast<std::int32_t>(rng.uniform_int(0, max_gene))
                  : std::min(g, max_gene);
      }
    }
  }
  // Parallel phase: in repair mode initial individuals are repaired too,
  // so the search starts from the feasible region; evaluation rides in
  // the same task.  Each task's telemetry lands in its own counter
  // block; the serial merge below keeps the tallies (and the trace row)
  // deterministic at any thread count.
  telemetry::GenerationRow init_row;
  {
    std::vector<TaskStats> stats(population.size());
    const Rng init_base = rng;
    run_tasks(pool, population.size(), [&](std::size_t slot, std::size_t i) {
      telemetry::ScopedSink sink(stats[i].counters);
      Rng task_rng = init_base.child_stream(i);
      repair_evaluate(population[i], task_rng, stats[i], arenas_[slot]);
    });
    telemetry::CounterBlock task_counters;
    for (const TaskStats& s : stats) {
      result.repair_invocations += s.repairs;
      result.evaluations += s.evaluations;
      absorb_stats(init_row, s);
      task_counters.merge(s.counters);
    }
    telemetry::Registry::global().flush_counters(task_counters);
  }

  std::optional<ParetoArchive> archive;
  if (config_.archive_capacity > 0) {
    archive.emplace(config_.archive_capacity);
    for (const Individual& ind : population) {
      archive->insert(ind);
    }
  }

  // Rank the initial population so the first tournament has information.
  // environmental_selection moves the survivors out of its input, and the
  // input is discarded right after — no copy needed.
  {
    telemetry::ScopedTimer timer(tracing ? &init_row.seconds_selection
                                         : nullptr);
    Population ranked;
    environmental_selection(population, ranked, rng);
    population = std::move(ranked);
  }
  if (tracing) {
    stamp_population_summary(population, init_row);
    init_row.generation = 0;
    flush_row_phases(init_row);
    result.trace.rows.push_back(init_row);
  }

  while (result.evaluations < config_.max_evaluations) {
    // Anytime exit: over budget, surrender with the best front so far
    // (the generation in flight always completes — partial generations
    // would make the survivor set depend on wall time mid-selection).
    if (config_.time_limit_seconds > 0.0 &&
        budget_timer.elapsed_seconds() >= config_.time_limit_seconds) {
      result.hit_time_limit = true;
      break;
    }
    const std::size_t pair_count = (config_.population_size + 1) / 2;
    telemetry::GenerationRow row;
    row.generation = result.generations + 1;

    // Phase 1 (serial): tournament draws consume the main stream in a
    // fixed order regardless of thread count; each pair gets its own
    // counter-derived child stream for everything downstream.
    std::vector<MatingTask> tasks;
    tasks.reserve(pair_count);
    {
      telemetry::ScopedTimer timer(tracing ? &row.seconds_tournament
                                           : nullptr);
      for (std::size_t p = 0; p < pair_count; ++p) {
        const std::size_t index_a = static_cast<std::size_t>(
            &tournament(population, rng) - population.data());
        const std::size_t index_b = static_cast<std::size_t>(
            &tournament(population, rng) - population.data());
        tasks.push_back(
            MatingTask{index_a, index_b, rng.child_stream(p), TaskStats{}});
      }
    }

    // Phase 2 (parallel): each pair's crossover, mutation, repair, and
    // evaluation run as one fused task writing only offspring slots
    // 2p / 2p+1 — deterministic for any thread count.
    Population offspring(config_.population_size);
    run_tasks(pool, pair_count, [&](std::size_t slot, std::size_t p) {
      telemetry::ScopedSink sink(tasks[p].stats.counters);
      Individual* child_b = 2 * p + 1 < offspring.size()
                                ? &offspring[2 * p + 1]
                                : nullptr;
      variation_task(population, tasks[p], &offspring[2 * p], child_b,
                     arenas_[slot]);
    });
    telemetry::CounterBlock task_counters;
    for (const MatingTask& task : tasks) {
      result.repair_invocations += task.stats.repairs;
      result.evaluations += task.stats.evaluations;
      absorb_stats(row, task.stats);
      task_counters.merge(task.stats.counters);
    }
    telemetry::Registry::global().flush_counters(task_counters);

    if (archive) {
      for (const Individual& ind : offspring) {
        archive->insert(ind);
      }
    }

    Population merged;
    merged.reserve(population.size() + offspring.size());
    std::move(population.begin(), population.end(),
              std::back_inserter(merged));
    std::move(offspring.begin(), offspring.end(),
              std::back_inserter(merged));

    {
      telemetry::ScopedTimer timer(tracing ? &row.seconds_selection
                                           : nullptr);
      Population next;
      environmental_selection(merged, next, rng);
      population = std::move(next);
    }
    ++result.generations;
    if (tracing) {
      stamp_population_summary(population, row);
      flush_row_phases(row);
      result.trace.rows.push_back(row);
    }
  }

  // Final front: rank-0 members under the engine's dominance.  The sort
  // only stamps ranks, so it can run on the population in place; only the
  // front members themselves are copied out.
  const DominanceFn dom = dominance();
  const auto fronts = nondominated_sort(population, dom);
  IAAS_EXPECT(!fronts.empty(), "population cannot be empty");
  result.front.reserve(fronts[0].size());
  for (std::size_t idx : fronts[0]) {
    result.front.push_back(population[idx]);
  }
  result.population = std::move(population);
  if (archive) {
    result.archive = archive->members();
  }
  arenas_.clear();  // return the leased evaluators to the problem pool
  return result;
}

}  // namespace iaas
