#include "ea/nsga3.h"

#include <algorithm>
#include <limits>

#include "common/expect.h"

namespace iaas {

Nsga3::Nsga3(const AllocationProblem& problem, NsgaConfig config,
             RepairFn repair, StateRepairFn state_repair)
    : NsgaBase(problem, config, std::move(repair), std::move(state_repair)),
      reference_points_(das_dennis_points(config.reference_divisions)) {}

void Nsga3::environmental_selection(Population& merged, Population& next,
                                    Rng& rng) {
  if (config().constraint_mode == ConstraintMode::kExclude) {
    apply_exclusion(merged);
  }
  const std::size_t target = config().population_size;
  const auto fronts = nondominated_sort(merged, dominance());

  next.clear();
  next.reserve(target);
  std::vector<std::size_t> selected;   // indices into merged
  std::vector<std::size_t> last_front;
  for (const auto& front : fronts) {
    if (selected.size() + front.size() <= target) {
      selected.insert(selected.end(), front.begin(), front.end());
      if (selected.size() == target) {
        break;
      }
    } else {
      last_front = front;
      break;
    }
  }

  if (selected.size() == target || last_front.empty()) {
    for (std::size_t idx : selected) {
      next.push_back(std::move(merged[idx]));
    }
    if (config().niche_tournament) {
      associate_population(next);
    }
    return;
  }

  // Niching over S_t = selected + last front.
  std::vector<std::size_t> st(selected);
  st.insert(st.end(), last_front.begin(), last_front.end());

  Normalizer normalizer;
  normalizer.fit(merged, st);

  // Associate every member of S_t with its closest reference line.
  struct Association {
    std::size_t ref = 0;
    double distance = 0.0;
  };
  std::vector<Association> assoc(merged.size());
  for (std::size_t idx : st) {
    const ObjArray norm = normalizer.normalize(merged[idx].objectives);
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_ref = 0;
    for (std::size_t r = 0; r < reference_points_.size(); ++r) {
      const double d = perpendicular_distance(norm, reference_points_[r]);
      if (d < best) {
        best = d;
        best_ref = r;
      }
    }
    assoc[idx] = {best_ref, best};
  }

  // Niche counts from the already-selected fronts.
  std::vector<std::size_t> niche_count(reference_points_.size(), 0);
  for (std::size_t idx : selected) {
    ++niche_count[assoc[idx].ref];
  }

  // Candidates in the last front grouped per reference point.
  std::vector<std::vector<std::size_t>> candidates(reference_points_.size());
  for (std::size_t idx : last_front) {
    candidates[assoc[idx].ref].push_back(idx);
  }

  while (selected.size() < target) {
    // Reference point with the smallest niche count among those that
    // still have candidates (random tie-break).
    std::size_t best_ref = reference_points_.size();
    std::size_t best_count = std::numeric_limits<std::size_t>::max();
    std::size_t ties = 0;
    for (std::size_t r = 0; r < reference_points_.size(); ++r) {
      if (candidates[r].empty()) {
        continue;
      }
      if (niche_count[r] < best_count) {
        best_count = niche_count[r];
        best_ref = r;
        ties = 1;
      } else if (niche_count[r] == best_count) {
        // Reservoir-style random tie-break among equally starved niches.
        ++ties;
        if (rng.uniform_index(ties) == 0) {
          best_ref = r;
        }
      }
    }
    IAAS_EXPECT(best_ref < reference_points_.size(),
                "niching ran out of candidates before filling population");

    auto& bucket = candidates[best_ref];
    std::size_t pick_pos;
    if (niche_count[best_ref] == 0) {
      // Empty niche: take the member closest to the reference line.
      pick_pos = 0;
      for (std::size_t i = 1; i < bucket.size(); ++i) {
        if (assoc[bucket[i]].distance < assoc[bucket[pick_pos]].distance) {
          pick_pos = i;
        }
      }
    } else {
      pick_pos = rng.uniform_index(bucket.size());
    }
    selected.push_back(bucket[pick_pos]);
    bucket.erase(bucket.begin() + static_cast<std::ptrdiff_t>(pick_pos));
    ++niche_count[best_ref];
  }

  for (std::size_t idx : selected) {
    // Persist the association for the niche tournament.
    merged[idx].ref_index = static_cast<std::uint32_t>(assoc[idx].ref);
    merged[idx].ref_distance = assoc[idx].distance;
    next.push_back(std::move(merged[idx]));
  }
}

void Nsga3::associate_population(Population& next) const {
  if (next.empty()) {
    return;
  }
  std::vector<std::size_t> members(next.size());
  for (std::size_t i = 0; i < next.size(); ++i) {
    members[i] = i;
  }
  Normalizer normalizer;
  normalizer.fit(next, members);
  for (Individual& ind : next) {
    const ObjArray norm = normalizer.normalize(ind.objectives);
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_ref = 0;
    for (std::size_t r = 0; r < reference_points_.size(); ++r) {
      const double d = perpendicular_distance(norm, reference_points_[r]);
      if (d < best) {
        best = d;
        best_ref = r;
      }
    }
    ind.ref_index = static_cast<std::uint32_t>(best_ref);
    ind.ref_distance = best;
  }
}

const Individual& Nsga3::tournament(const Population& population, Rng& rng) {
  if (!config().niche_tournament) {
    return NsgaBase::tournament(population, rng);
  }
  const Individual& a = population[rng.uniform_index(population.size())];
  const Individual& b = population[rng.uniform_index(population.size())];
  if (a.rank != b.rank) {
    return a.rank < b.rank ? a : b;
  }
  if (a.ref_index == b.ref_index && a.ref_distance != b.ref_distance) {
    return a.ref_distance < b.ref_distance ? a : b;
  }
  return rng.bernoulli(0.5) ? a : b;
}

}  // namespace iaas
