#include "model/objectives.h"

#include <algorithm>

#include "model/load_model.h"

namespace iaas {

Evaluator::Evaluator(const Instance& instance, ObjectiveOptions options)
    : instance_(&instance),
      options_(options),
      checker_(instance),
      loads_(instance.m(), instance.h()),
      qos_(instance.m(), instance.h()),
      vms_on_server_(instance.m(), 0) {}

Evaluation Evaluator::evaluate(const Placement& placement) {
  Evaluation out;
  compute_objectives(placement, out.objectives);
  out.violations = checker_.check(placement);
  return out;
}

ObjectiveVector Evaluator::objectives(const Placement& placement) {
  ObjectiveVector out;
  compute_objectives(placement, out);
  return out;
}

void Evaluator::compute_objectives(const Placement& placement,
                                   ObjectiveVector& out) {
  const Instance& inst = *instance_;
  IAAS_EXPECT(placement.vm_count() == inst.n(),
              "placement size mismatch with instance");

  compute_loads(inst, placement, loads_);
  compute_qos(inst, loads_, qos_);
  std::fill(vms_on_server_.begin(), vms_on_server_.end(), 0u);

  out = ObjectiveVector{};

  for (std::size_t k = 0; k < inst.n(); ++k) {
    if (!placement.is_assigned(k)) {
      continue;
    }
    const auto j = static_cast<std::size_t>(placement.server_of(k));
    const Server& server = inst.infra.server(j);
    const VmRequest& vm = inst.requests.vms[k];
    ++vms_on_server_[j];

    // Term 1 (Eq. 22), usage part.
    out.usage_cost += server.usage_cost;
    if (options_.opex_per_vm) {
      out.usage_cost += server.opex;
    }

    // Term 2 (Eq. 23): penalty when the worst attribute QoS on the host
    // falls below the guarantee.
    double worst_qos = 1.0;
    for (std::size_t l = 0; l < inst.h(); ++l) {
      worst_qos = std::min(worst_qos, qos_(j, l));
    }
    if (worst_qos < vm.qos_guarantee) {
      out.downtime_cost +=
          vm.downtime_cost * (1.0 - worst_qos / vm.qos_guarantee);
    }

    // Term 3 (Eq. 26): moved relative to the previous window.
    if (inst.previous.is_assigned(k) &&
        inst.previous.server_of(k) != placement.server_of(k)) {
      double weight = 1.0;
      if (options_.topology_migration_weight) {
        const auto from =
            static_cast<std::uint32_t>(inst.previous.server_of(k));
        const auto to = static_cast<std::uint32_t>(placement.server_of(k));
        // Normalise by the fabric diameter (6 hops) so the weight stays
        // in (0, 1]; an on-host "move" costs nothing.
        weight = static_cast<double>(inst.infra.fabric().hop_distance(
                     from, to)) /
                 6.0;
      }
      out.migration_cost += vm.migration_cost * weight;
    }
  }

  // Term 1 (Eq. 22), exploitation part: by default E_j once per server in
  // use (consolidation reading; see header note).
  if (!options_.opex_per_vm) {
    for (std::size_t j = 0; j < inst.m(); ++j) {
      if (vms_on_server_[j] > 0) {
        out.usage_cost += inst.infra.server(j).opex;
      }
    }
  }
}

}  // namespace iaas
