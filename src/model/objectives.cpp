#include "model/objectives.h"

namespace iaas {

Evaluation Evaluator::evaluate_genes(std::span<const std::int32_t> genes) {
  state_.rebuild(genes);
  Evaluation out;
  out.objectives = state_.objectives();
  out.violations = state_.violation_report();
  return out;
}

ObjectiveVector Evaluator::objectives(const Placement& placement) {
  state_.rebuild(placement.genes());
  return state_.objectives();
}

}  // namespace iaas
