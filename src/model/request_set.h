// The consumer side of the allocation problem: the n requested virtual
// resources of one allocation window plus their affinity/anti-affinity
// relationships (paper Table I: N, C_kl, C^Q_k, C^U_k, M_k + Eqs. 9-12).
#pragma once

#include <cstddef>
#include <vector>

#include "model/placement_constraint.h"
#include "model/vm_request.h"

namespace iaas {

struct RequestSet {
  std::vector<VmRequest> vms;
  std::vector<PlacementConstraint> constraints;

  [[nodiscard]] std::size_t vm_count() const { return vms.size(); }

  [[nodiscard]] bool valid(std::size_t h) const {
    for (const VmRequest& vm : vms) {
      if (!vm.valid(h)) {
        return false;
      }
    }
    for (const PlacementConstraint& c : constraints) {
      if (c.vms.size() < 2) {
        return false;
      }
      for (std::uint32_t k : c.vms) {
        if (k >= vms.size()) {
          return false;
        }
      }
    }
    return true;
  }
};

}  // namespace iaas
