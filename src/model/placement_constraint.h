// Affinity / anti-affinity relationships (paper §III, Eqs. 9-12):
//   kSameDatacenter      - co-localisation in same datacenter   (Eq. 9)
//   kSameServer          - co-localisation on same server       (Eq. 10)
//   kDifferentDatacenters- separation in different datacenters  (Eq. 11)
//   kDifferentServers    - separation on different servers      (Eq. 12)
//
// A constraint applies to a *group* of consumer resources within one user
// request ("within the same request, it is possible to have different
// types of services such as CPU, memory, affinity and anti-affinity
// constraints").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace iaas {

enum class RelationKind : std::uint8_t {
  kSameDatacenter,
  kSameServer,
  kDifferentDatacenters,
  kDifferentServers,
};

inline std::string relation_name(RelationKind kind) {
  switch (kind) {
    case RelationKind::kSameDatacenter:
      return "same-datacenter";
    case RelationKind::kSameServer:
      return "same-server";
    case RelationKind::kDifferentDatacenters:
      return "different-datacenters";
    case RelationKind::kDifferentServers:
      return "different-servers";
  }
  return "unknown";
}

struct PlacementConstraint {
  RelationKind kind;
  std::vector<std::uint32_t> vms;  // indices into the request set, size >= 2

  [[nodiscard]] bool is_affinity() const {
    return kind == RelationKind::kSameDatacenter ||
           kind == RelationKind::kSameServer;
  }
  [[nodiscard]] bool is_anti_affinity() const { return !is_affinity(); }
};

}  // namespace iaas
