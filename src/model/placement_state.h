// Incremental (delta) evaluation engine for single-VM relocations.
//
// A PlacementState owns one placement plus every accumulator needed to
// produce its objectives (Eqs. 22-26) and violation counts (Eqs. 16-21):
// per-server allocated demand, normalised loads and QoS, per-server usage
// and downtime cost terms, the per-server VM lists, the per-constraint
// satisfied flags, and the three objective totals.  Invariants (see
// DESIGN.md §7): after construction, rebuild(), or any apply/revert, all
// accumulators equal what a from-scratch Evaluator::evaluate of the same
// placement would produce.
//
// Relocating VM k from server a to server b only changes rows a and b of
// every per-server quantity, the constraints that mention k, and k's own
// migration term — so try_move scores a candidate move in
// O(h + |VMs on a| + |VMs on b| + |constraints of k|) instead of the
// O(n·m·h) full rebuild.  This is the standard scaling lever of the VM
// placement literature (move-based neighbourhoods with incremental
// objective bookkeeping) applied to the paper's tabu + NSGA-III stack.
//
// The invariant also powers the fused repair-as-evaluation pipeline
// (DESIGN.md §8): TabuRepair::repair_state walks a full-tracking state
// rebuilt to an offspring's genes, and the NSGA engine reads the
// objectives and violation counts straight out of the accumulators
// afterwards — the repair's own bookkeeping IS the evaluation, no
// post-repair rebuild.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/matrix.h"
#include "model/constraint_checker.h"
#include "model/instance.h"
#include "model/objective_types.h"
#include "model/placement.h"

namespace iaas {

// What a PlacementState keeps current.  kViolationsOnly maintains just the
// demand accumulators and violation counters — the repair operators need
// nothing else, and skipping the per-move QoS/downtime/usage refresh (an
// exp() per attribute per affected server) keeps repair as cheap as the
// capacity-only bookkeeping it replaced.  In that mode loads(), qos(),
// objectives(), aggregate() and the objective fields of try_move results
// are unspecified.
enum class StateTracking { kFull, kViolationsOnly };

// Outcome of scoring one candidate relocation.
struct ObjectiveDelta {
  // Objective totals as if the move were applied.
  ObjectiveVector objectives;
  // objectives.aggregate() minus the current aggregate.
  double aggregate_delta = 0.0;
  // Change in capacity + relationship violations (negative = repairs).
  std::int32_t violations_delta = 0;
};

class PlacementState {
 public:
  explicit PlacementState(const Instance& instance,
                          ObjectiveOptions options = {},
                          StateTracking tracking = StateTracking::kFull);

  // Full O(n + m·h + constraints) rebuild — the only non-incremental
  // path; every other member keeps the accumulators in sync.
  void rebuild(std::span<const std::int32_t> genes);
  void rebuild(const Placement& placement);

  // Scores relocating VM k to `target` (server id or Placement::kRejected)
  // without changing the observable state; the move becomes "pending" so a
  // following apply() can commit it.
  ObjectiveDelta try_move(std::size_t k, std::int32_t target);

  // Commits the pending move from the last try_move.
  void apply();
  // Commits an arbitrary move directly (try_move is not required first).
  void apply_move(std::size_t k, std::int32_t target);
  // Undoes applied moves in LIFO order (any depth, back to the last
  // rebuild).
  void revert();
  [[nodiscard]] std::size_t applied_moves() const { return undo_.size(); }

  // --- objective accessors ---
  [[nodiscard]] ObjectiveVector objectives() const {
    ObjectiveVector out;
    out.usage_cost = total_usage_;
    out.downtime_cost = total_downtime_;
    out.migration_cost = total_migration_;
    return out;
  }
  [[nodiscard]] double aggregate() const {
    return total_usage_ + total_downtime_ + total_migration_;
  }

  // --- violation accessors ---
  [[nodiscard]] std::uint32_t capacity_violations() const {
    return capacity_violations_;
  }
  [[nodiscard]] std::uint32_t relation_violations() const {
    return relation_violations_;
  }
  [[nodiscard]] std::uint32_t total_violations() const {
    return capacity_violations_ + relation_violations_;
  }
  [[nodiscard]] std::size_t rejected_count() const { return rejected_count_; }
  [[nodiscard]] bool server_overloaded(std::size_t j) const {
    return overload_count_[j] > 0;
  }
  // Full report in the ConstraintChecker::check format (builds the
  // overloaded-server list, O(m)).
  [[nodiscard]] ViolationReport violation_report() const;

  // --- structure accessors ---
  [[nodiscard]] const Placement& placement() const { return placement_; }
  // Allocated demand per (server, attribute) — the same accumulator the
  // repair operators and ConstraintChecker::is_valid_move read.
  [[nodiscard]] const Matrix<double>& used() const { return used_; }
  [[nodiscard]] const Matrix<double>& loads() const { return loads_; }
  [[nodiscard]] const Matrix<double>& qos() const { return qos_; }
  [[nodiscard]] std::span<const std::uint32_t> vms_on(std::size_t j) const {
    return vms_on_[j];
  }

  [[nodiscard]] const Instance& instance() const { return *instance_; }
  [[nodiscard]] const ObjectiveOptions& options() const { return options_; }
  [[nodiscard]] StateTracking tracking() const { return tracking_; }

 private:
  struct ServerEdit {
    double usage = 0.0;         // new per-server usage term
    double downtime = 0.0;      // new per-server downtime term
    std::uint32_t overloads = 0;  // new exceeded-attribute count
  };

  void rebuild_from_placement();
  // Recomputes loads/qos rows, overload count, usage and downtime terms of
  // server j from used_ and vms_on_, updating the totals.
  void refresh_server(std::size_t j);
  // Commits a move into every accumulator (no undo bookkeeping).
  void do_move(std::size_t k, std::int32_t target);

  // Hypothetical per-server terms after VM k joins/leaves server j; the
  // used row with k's demand applied with `sign` is read from `row`.
  [[nodiscard]] ServerEdit edit_server(std::size_t j, std::size_t k,
                                       bool joining,
                                       std::span<const double> row) const;

  [[nodiscard]] double usage_of(std::size_t j, std::size_t vm_count) const;
  [[nodiscard]] double migration_of(std::size_t k, std::int32_t server) const;
  [[nodiscard]] double downtime_penalty(std::size_t k,
                                        double worst_qos) const;

  const Instance* instance_;
  ObjectiveOptions options_;
  StateTracking tracking_;
  ConstraintChecker checker_;

  Placement placement_;
  Matrix<double> used_;   // raw allocated demand per (server, attribute)
  Matrix<double> loads_;  // used / capacity (Eq. 25)
  Matrix<double> qos_;    // Eq. 24 of loads_

  std::vector<std::vector<std::uint32_t>> vms_on_;  // per-server VM lists
  std::vector<std::uint32_t> pos_in_server_;  // k -> index in its host list

  std::vector<double> server_usage_;     // Eq. 22 term per server
  std::vector<double> server_downtime_;  // Eq. 23 term per server
  std::vector<std::uint32_t> overload_count_;  // exceeded attrs per server

  double total_usage_ = 0.0;
  double total_downtime_ = 0.0;
  double total_migration_ = 0.0;

  std::vector<std::uint8_t> relation_ok_;  // per-constraint satisfied flag
  std::vector<std::vector<std::uint32_t>> constraints_of_vm_;
  std::uint32_t capacity_violations_ = 0;
  std::uint32_t relation_violations_ = 0;
  std::size_t rejected_count_ = 0;

  struct Move {
    std::size_t vm = 0;
    std::int32_t target = 0;
  };
  std::optional<Move> pending_;
  std::vector<Move> undo_;  // target = the server to move back to

  std::vector<double> scratch_row_;  // h-sized hypothetical used row
};

}  // namespace iaas
