// Incremental (delta) evaluation engine for single-VM relocations.
//
// A PlacementState owns one placement plus every accumulator needed to
// produce its objectives (Eqs. 22-26) and violation counts (Eqs. 16-21):
// per-server allocated demand, normalised loads and QoS, per-server usage
// and downtime cost terms, the per-server VM membership lists, the
// per-constraint satisfied flags, and the three objective totals.
// Invariants (see DESIGN.md §7): after construction, rebuild(), rebase(),
// assign_from(), or any apply/revert, all accumulators equal what a
// from-scratch Evaluator::evaluate of the same placement would produce.
//
// Relocating VM k from server a to server b only changes rows a and b of
// every per-server quantity, the constraints that mention k, and k's own
// migration term — so try_move scores a candidate move in
// O(h + |VMs on a| + |VMs on b| + |constraints of k|) instead of the
// O(n·m·h) full rebuild.  This is the standard scaling lever of the VM
// placement literature (move-based neighbourhoods with incremental
// objective bookkeeping) applied to the paper's tabu + NSGA-III stack.
//
// Memory layout (DESIGN.md §7): structure-of-arrays throughout.  All
// instance-derived inputs the hot loops read (per-VM demand rows and cost
// scalars, per-server capacity/knee/QoS rows and cost scalars, the
// VM→constraint adjacency) live in an immutable StateTables, flattened
// into contiguous matrices, scalar arrays, and a CSR index — shareable
// between every state built against the same Instance, so an evaluator
// pool pays the flattening once.  The mutable side is equally flat:
// per-server membership is an intrusive doubly-linked list over three
// plain arrays (head/next/prev) with O(1) attach/detach and no per-server
// heap vectors, and the per-server cost accumulators are striped into one
// contiguous buffer.  A state is therefore copyable with a handful of
// memcpy-sized vector assignments (assign_from), and the per-attribute
// hot loops in refresh_server/edit_server run over contiguous row spans.
//
// The invariant also powers the fused repair-as-evaluation pipeline
// (DESIGN.md §8): TabuRepair::repair_state walks a full-tracking state
// positioned at an offspring's genes, and the NSGA engine reads the
// objectives and violation counts straight out of the accumulators
// afterwards — the repair's own bookkeeping IS the evaluation, no
// post-repair rebuild.  rebase() extends this: an offspring task
// repositions its thread-affine state with a gene-diff (touching only the
// servers and constraints the diff affects) instead of paying a full
// rebuild per individual.
#pragma once

#include <cstdint>
#include <iterator>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/matrix.h"
#include "model/constraint_checker.h"
#include "model/instance.h"
#include "model/objective_types.h"
#include "model/placement.h"

namespace iaas {

// Immutable, instance-derived SoA tables: everything the delta engine's
// hot loops read, flattened out of the AoS Server/VmRequest structs and
// the per-VM constraint lists.  Built once per Instance and shared (by
// shared_ptr) across every PlacementState/Evaluator of that instance —
// the pooled-evaluator and arena paths construct states without re-doing
// the O(n·h + m·h + constraints) flattening.
struct StateTables {
  explicit StateTables(const Instance& instance);

  Matrix<double> demand;                    // n×h: C_kl rows
  std::vector<double> vm_qos_guarantee;     // n: C^Q_k
  std::vector<double> vm_downtime_cost;     // n: C^U_k
  std::vector<double> vm_migration_cost;    // n: M_k

  Matrix<double> capacity;                  // m×h: P_jl
  Matrix<double> effective_capacity;        // m×h: P_jl * F_jl
  Matrix<double> max_load;                  // m×h: L^M_jl
  Matrix<double> max_qos;                   // m×h: Q^M_jl
  std::vector<double> server_usage_cost;    // m: U_j
  std::vector<double> server_opex;          // m: E_j

  // CSR adjacency: constraint ids mentioning VM k are
  // constraint_ids[constraint_offsets[k] .. constraint_offsets[k+1]).
  std::vector<std::uint32_t> constraint_offsets;  // n+1
  std::vector<std::uint32_t> constraint_ids;      // flat

  [[nodiscard]] std::span<const std::uint32_t> constraints_of(
      std::size_t k) const {
    return {constraint_ids.data() + constraint_offsets[k],
            constraint_offsets[k + 1] - constraint_offsets[k]};
  }
};

// What a PlacementState keeps current.  kViolationsOnly maintains just the
// demand accumulators and violation counters — the repair operators need
// nothing else, and skipping the per-move QoS/downtime/usage refresh (an
// exp() per attribute per affected server) keeps repair as cheap as the
// capacity-only bookkeeping it replaced.  In that mode loads(), qos(),
// objectives(), aggregate() and the objective fields of try_move results
// are unspecified (and the loads/qos matrices are not even allocated).
enum class StateTracking { kFull, kViolationsOnly };

// Outcome of scoring one candidate relocation.
struct ObjectiveDelta {
  // Objective totals as if the move were applied.
  ObjectiveVector objectives;
  // objectives.aggregate() minus the current aggregate.
  double aggregate_delta = 0.0;
  // Change in capacity + relationship violations (negative = repairs).
  std::int32_t violations_delta = 0;
};

class PlacementState {
 public:
  // Sentinel terminating the intrusive per-server membership lists.
  static constexpr std::uint32_t kNoVm = 0xFFFFFFFFu;

  // `tables` may be shared across states of the same instance; when null,
  // the state builds (and owns) its own.
  explicit PlacementState(const Instance& instance,
                          ObjectiveOptions options = {},
                          StateTracking tracking = StateTracking::kFull,
                          std::shared_ptr<const StateTables> tables = nullptr);

  // Full O(n + m·h + constraints) rebuild — the non-incremental
  // repositioning path; every other member keeps the accumulators in
  // sync.
  void rebuild(std::span<const std::int32_t> genes);
  void rebuild(const Placement& placement);

  // Gene-diff repositioning: moves the state to `genes` by editing only
  // the servers and constraints the diff touches —
  // O(diff·h + |affected servers|·(h + members) + |affected constraints|)
  // instead of a full rebuild.  Falls back to rebuild() internally when
  // the diff is too large to pay off.  Like rebuild(), clears the
  // pending/undo history.  Returns the number of differing genes.
  std::size_t rebase(std::span<const std::int32_t> genes);

  // Becomes a copy of `other` (same instance, options, and tracking mode)
  // without rebuilding: a handful of flat vector assignments, no
  // allocation after first use.  The pending/undo history is not copied.
  void assign_from(const PlacementState& other);

  // Scores relocating VM k to `target` (server id or Placement::kRejected)
  // without changing the observable state; the move becomes "pending" so a
  // following apply() can commit it.
  ObjectiveDelta try_move(std::size_t k, std::int32_t target);

  // Commits the pending move from the last try_move.
  void apply();
  // Commits an arbitrary move directly (try_move is not required first).
  void apply_move(std::size_t k, std::int32_t target);
  // Undoes applied moves in LIFO order (any depth, back to the last
  // rebuild/rebase).
  void revert();
  [[nodiscard]] std::size_t applied_moves() const { return undo_.size(); }

  // --- objective accessors ---
  [[nodiscard]] ObjectiveVector objectives() const {
    ObjectiveVector out;
    out.usage_cost = total_usage_;
    out.downtime_cost = total_downtime_;
    out.migration_cost = total_migration_;
    return out;
  }
  [[nodiscard]] double aggregate() const {
    return total_usage_ + total_downtime_ + total_migration_;
  }

  // --- violation accessors ---
  [[nodiscard]] std::uint32_t capacity_violations() const {
    return capacity_violations_;
  }
  [[nodiscard]] std::uint32_t relation_violations() const {
    return relation_violations_;
  }
  [[nodiscard]] std::uint32_t total_violations() const {
    return capacity_violations_ + relation_violations_;
  }
  [[nodiscard]] std::size_t rejected_count() const { return rejected_count_; }
  [[nodiscard]] bool server_overloaded(std::size_t j) const {
    return overload_count_[j] > 0;
  }
  // Full report in the ConstraintChecker::check format (builds the
  // overloaded-server list, O(m)).
  [[nodiscard]] ViolationReport violation_report() const;

  // --- structure accessors ---
  [[nodiscard]] const Placement& placement() const { return placement_; }
  // Allocated demand per (server, attribute) — the same accumulator the
  // repair operators and ConstraintChecker::is_valid_move read.
  [[nodiscard]] const Matrix<double>& used() const { return used_; }
  [[nodiscard]] const Matrix<double>& loads() const { return loads_; }
  [[nodiscard]] const Matrix<double>& qos() const { return qos_; }

  // Forward iteration over the VMs hosted on one server (the intrusive
  // list; order is maintenance order, deterministic for a fixed operation
  // sequence but unspecified beyond that).
  class MemberIterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = std::uint32_t;
    using difference_type = std::ptrdiff_t;
    using pointer = const std::uint32_t*;
    using reference = std::uint32_t;
    MemberIterator() = default;
    MemberIterator(const std::uint32_t* next, std::uint32_t current)
        : next_(next), current_(current) {}
    std::uint32_t operator*() const { return current_; }
    MemberIterator& operator++() {
      current_ = next_[current_];
      return *this;
    }
    MemberIterator operator++(int) {
      MemberIterator tmp = *this;
      ++*this;
      return tmp;
    }
    friend bool operator==(const MemberIterator& a, const MemberIterator& b) {
      return a.current_ == b.current_;
    }

   private:
    const std::uint32_t* next_ = nullptr;
    std::uint32_t current_ = kNoVm;
  };

  class MemberRange {
   public:
    MemberRange(const std::uint32_t* next, std::uint32_t head,
                std::size_t count)
        : next_(next), head_(head), count_(count) {}
    [[nodiscard]] MemberIterator begin() const { return {next_, head_}; }
    [[nodiscard]] MemberIterator end() const { return {next_, kNoVm}; }
    [[nodiscard]] std::size_t size() const { return count_; }
    [[nodiscard]] bool empty() const { return count_ == 0; }

   private:
    const std::uint32_t* next_;
    std::uint32_t head_;
    std::size_t count_;
  };

  [[nodiscard]] MemberRange vms_on(std::size_t j) const {
    return {vm_next_.data(), server_head_[j], server_count_[j]};
  }
  [[nodiscard]] std::size_t vm_count_on(std::size_t j) const {
    return server_count_[j];
  }

  [[nodiscard]] const Instance& instance() const { return *instance_; }
  [[nodiscard]] const ObjectiveOptions& options() const { return options_; }
  [[nodiscard]] StateTracking tracking() const { return tracking_; }
  [[nodiscard]] const std::shared_ptr<const StateTables>& tables() const {
    return tables_;
  }

 private:
  struct ServerEdit {
    double usage = 0.0;         // new per-server usage term
    double downtime = 0.0;      // new per-server downtime term
    std::uint32_t overloads = 0;  // new exceeded-attribute count
  };

  void rebuild_from_placement();
  // Recomputes loads/qos rows, overload count, usage and downtime terms of
  // server j from used_ and the membership list, updating the totals.
  void refresh_server(std::size_t j);
  // Commits a move into every accumulator (no undo bookkeeping).
  void do_move(std::size_t k, std::int32_t target);

  // Membership + demand edits (list unlink/link, used_ row update,
  // rejected count); placement_ itself is the caller's job.
  void detach_vm(std::size_t k, std::size_t j);
  void attach_vm(std::size_t k, std::size_t j);

  // Epoch-deduplicated scratch marks for rebase().
  void touch_server(std::uint32_t j);
  void touch_constraint(std::uint32_t c);

  // Hypothetical per-server terms after VM k joins/leaves server j; the
  // used row with k's demand applied with `sign` is read from `row`.
  [[nodiscard]] ServerEdit edit_server(std::size_t j, std::size_t k,
                                       bool joining,
                                       std::span<const double> row) const;

  [[nodiscard]] double usage_of(std::size_t j, std::size_t vm_count) const;
  [[nodiscard]] double migration_of(std::size_t k, std::int32_t server) const;
  [[nodiscard]] double downtime_penalty(std::size_t k,
                                        double worst_qos) const;

  [[nodiscard]] double& usage_acc(std::size_t j) { return server_cost_[j]; }
  [[nodiscard]] double& downtime_acc(std::size_t j) {
    return server_cost_[instance_->m() + j];
  }
  [[nodiscard]] double usage_acc(std::size_t j) const {
    return server_cost_[j];
  }
  [[nodiscard]] double downtime_acc(std::size_t j) const {
    return server_cost_[instance_->m() + j];
  }

  const Instance* instance_;
  ObjectiveOptions options_;
  StateTracking tracking_;
  ConstraintChecker checker_;
  std::shared_ptr<const StateTables> tables_;

  Placement placement_;
  Matrix<double> used_;   // raw allocated demand per (server, attribute)
  Matrix<double> loads_;  // used / capacity (Eq. 25); kFull only
  Matrix<double> qos_;    // Eq. 24 of loads_; kFull only

  // Intrusive per-server membership: flat head/tail/next/prev arrays,
  // O(1) attach/detach, zero allocation on any path after construction.
  // Attach links at the tail, so a fresh rebuild lists members in
  // ascending VM order (the order the old vector layout produced).
  std::vector<std::uint32_t> server_head_;   // m, kNoVm-terminated
  std::vector<std::uint32_t> server_tail_;   // m
  std::vector<std::uint32_t> server_count_;  // m
  std::vector<std::uint32_t> vm_next_;       // n
  std::vector<std::uint32_t> vm_prev_;       // n

  // Per-server cost accumulators, striped into one contiguous buffer:
  // [0, m) = Eq. 22 usage terms, [m, 2m) = Eq. 23 downtime terms.
  std::vector<double> server_cost_;
  std::vector<std::uint32_t> overload_count_;  // exceeded attrs per server

  double total_usage_ = 0.0;
  double total_downtime_ = 0.0;
  double total_migration_ = 0.0;

  std::vector<std::uint8_t> relation_ok_;  // per-constraint satisfied flag
  std::uint32_t capacity_violations_ = 0;
  std::uint32_t relation_violations_ = 0;
  std::size_t rejected_count_ = 0;

  struct Move {
    std::size_t vm = 0;
    std::int32_t target = 0;
  };
  std::optional<Move> pending_;
  std::vector<Move> undo_;  // target = the server to move back to

  std::vector<double> scratch_row_;  // h-sized hypothetical used row

  // rebase() scratch: epoch-stamped dedup marks + touched lists, reused
  // across calls (no allocation once warmed).
  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> server_epoch_;      // m
  std::vector<std::uint32_t> constraint_epoch_;  // #constraints
  std::vector<std::uint32_t> touched_servers_;
  std::vector<std::uint32_t> touched_constraints_;
};

}  // namespace iaas
