#include "model/load_model.h"

#include <cmath>

namespace iaas {

double qos_at_load(double load, double max_load, double max_qos) {
  // Eq. 24 divides by (1 - L^M): a knee at exactly 1.0 (or NaN, or out
  // of range) would emit inf/NaN that propagates into the Eq. 23
  // downtime cost and silently poisons every objective downstream.
  // Clamp in all build modes — a server loadable to 100% degrades with
  // the steepest finite slope instead.  validate_instance additionally
  // flags such servers on untrusted input.
  constexpr double kKneeCeiling = 1.0 - 1e-9;
  if (!(max_load >= 0.0)) {  // negated compare also catches NaN
    max_load = 0.0;
  } else if (max_load > kKneeCeiling) {
    max_load = kKneeCeiling;
  }
  if (load <= max_load) {
    return max_qos;
  }
  return max_qos * std::exp((max_load - load) / (1.0 - max_load));
}

void compute_loads(const Instance& instance, const Placement& placement,
                   Matrix<double>& loads) {
  const std::size_t m = instance.m();
  const std::size_t h = instance.h();
  if (loads.rows() != m || loads.cols() != h) {
    loads = Matrix<double>(m, h);
  } else {
    loads.fill(0.0);
  }
  for (std::size_t k = 0; k < instance.n(); ++k) {
    if (!placement.is_assigned(k)) {
      continue;
    }
    const auto j = static_cast<std::size_t>(placement.server_of(k));
    IAAS_DEBUG_EXPECT(j < m, "placement references unknown server");
    const VmRequest& vm = instance.requests.vms[k];
    for (std::size_t l = 0; l < h; ++l) {
      loads(j, l) += vm.demand[l];
    }
  }
  for (std::size_t j = 0; j < m; ++j) {
    const Server& server = instance.infra.server(j);
    for (std::size_t l = 0; l < h; ++l) {
      loads(j, l) /= server.capacity[l];
    }
  }
}

void compute_qos(const Instance& instance, const Matrix<double>& loads,
                 Matrix<double>& qos) {
  const std::size_t m = instance.m();
  const std::size_t h = instance.h();
  IAAS_EXPECT(loads.rows() == m && loads.cols() == h,
              "load matrix shape mismatch");
  if (qos.rows() != m || qos.cols() != h) {
    qos = Matrix<double>(m, h);
  }
  for (std::size_t j = 0; j < m; ++j) {
    const Server& server = instance.infra.server(j);
    for (std::size_t l = 0; l < h; ++l) {
      qos(j, l) = qos_at_load(loads(j, l), server.max_load[l],
                              server.max_qos[l]);
    }
  }
}

}  // namespace iaas
