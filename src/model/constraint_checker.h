// Constraint verification for a placement against an instance — the
// evaluation-side counterpart of the paper's Eqs. 16-21 and the source of
// the "violated constraints" metric of Fig. 10.
//
// Checked constraints:
//   * capacity  (Eq. 16): per (server, attribute), allocated demand must
//     not exceed the effective capacity P_jl * F_jl;
//   * relationships (Eqs. 18-21): each affinity / anti-affinity group must
//     hold among its *assigned* members (a rejected VM cannot violate a
//     relationship — rejection is penalised by the rejection-rate metric,
//     not double-counted here).
//
// Assignment (Eq. 17) is structural: the Placement encoding maps each VM
// to at most one server, so "exactly one" reduces to "not rejected",
// reported as rejected_vms.
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "model/instance.h"
#include "model/placement.h"

namespace iaas {

class PlacementState;

// Capacity comparisons tolerate tiny FP noise from accumulating demands;
// shared by the checker and the incremental PlacementState accumulators.
inline constexpr double kCapacityEps = 1e-9;

struct ViolationReport {
  std::uint32_t capacity_violations = 0;   // # exceeded (server, attribute)
  std::uint32_t relation_violations = 0;   // # violated constraint groups
  std::uint32_t rejected_vms = 0;          // # unassigned requests
  std::vector<std::uint32_t> overloaded_servers;  // sorted, unique

  // Total violated constraints, the Fig. 10 quantity. Rejection is not a
  // violation (a rejected request simply was not served).
  [[nodiscard]] std::uint32_t total() const {
    return capacity_violations + relation_violations;
  }
  [[nodiscard]] bool feasible() const { return total() == 0; }
};

class ConstraintChecker {
 public:
  explicit ConstraintChecker(const Instance& instance)
      : instance_(&instance) {}

  // Full report, including the list of overloaded servers (the tabu repair
  // operator's exceedingDetection, paper Fig. 5 line 2).
  [[nodiscard]] ViolationReport check(const Placement& placement) const;

  // True when VM k can be placed on server j without breaking capacity
  // (given current used capacities) or any relationship constraint with
  // the already-placed VMs in `placement`.  `used` is the m x h matrix of
  // demand already allocated per server.  This is isValidAllocation of the
  // paper's Fig. 6.
  [[nodiscard]] bool is_valid_allocation(const Placement& placement,
                                         const Matrix<double>& used,
                                         std::size_t k,
                                         std::size_t j) const;

  // Delta-aware variant: reads the placement and the used-capacity
  // accumulators maintained incrementally by a PlacementState, so callers
  // scoring relocation moves never rebuild a `used` matrix.
  [[nodiscard]] bool is_valid_move(const PlacementState& state, std::size_t k,
                                   std::size_t j) const;

  // True when the relationship constraint `c` holds under `placement`
  // (among assigned members only).
  [[nodiscard]] bool relation_satisfied(const PlacementConstraint& c,
                                        const Placement& placement) const;

  // Accumulated allocated demand per (server, attribute) — shared scratch
  // for check() and the repair operators.
  void compute_used(const Placement& placement, Matrix<double>& used) const;

 private:
  const Instance* instance_;
};

}  // namespace iaas
