#include "model/placement_state.h"

#include <algorithm>

#include "common/telemetry.h"
#include "model/load_model.h"

namespace iaas {

PlacementState::PlacementState(const Instance& instance,
                               ObjectiveOptions options,
                               StateTracking tracking)
    : instance_(&instance),
      options_(options),
      tracking_(tracking),
      checker_(instance),
      placement_(instance.n()),
      used_(instance.m(), instance.h()),
      loads_(instance.m(), instance.h()),
      qos_(instance.m(), instance.h()),
      vms_on_(instance.m()),
      pos_in_server_(instance.n(), 0),
      server_usage_(instance.m(), 0.0),
      server_downtime_(instance.m(), 0.0),
      overload_count_(instance.m(), 0),
      relation_ok_(instance.requests.constraints.size(), 1),
      constraints_of_vm_(instance.n()),
      scratch_row_(instance.h(), 0.0) {
  const auto& constraints = instance.requests.constraints;
  for (std::size_t c = 0; c < constraints.size(); ++c) {
    for (std::uint32_t k : constraints[c].vms) {
      constraints_of_vm_[k].push_back(static_cast<std::uint32_t>(c));
    }
  }
  rebuild_from_placement();
}

void PlacementState::rebuild(std::span<const std::int32_t> genes) {
  IAAS_EXPECT(genes.size() == instance_->n(),
              "placement size mismatch with instance");
  // Counted here rather than in rebuild_from_placement: the constructor
  // also scans (over an all-rejected placement), but evaluator-pool
  // construction varies with thread count and would make the tally
  // nondeterministic.
  telemetry::count(telemetry::Counter::kStateRebuilds);
  std::vector<std::int32_t>& dst = placement_.genes();
  std::copy(genes.begin(), genes.end(), dst.begin());
  rebuild_from_placement();
}

void PlacementState::rebuild(const Placement& placement) {
  rebuild(placement.genes());
}

void PlacementState::rebuild_from_placement() {
  const Instance& inst = *instance_;
  const std::size_t m = inst.m();
  const std::size_t h = inst.h();

  used_.fill(0.0);
  for (auto& list : vms_on_) {
    list.clear();
  }
  rejected_count_ = 0;
  total_migration_ = 0.0;
  for (std::size_t k = 0; k < inst.n(); ++k) {
    if (!placement_.is_assigned(k)) {
      ++rejected_count_;
      continue;
    }
    const auto j = static_cast<std::size_t>(placement_.server_of(k));
    IAAS_DEBUG_EXPECT(j < m, "placement references unknown server");
    const VmRequest& vm = inst.requests.vms[k];
    for (std::size_t l = 0; l < h; ++l) {
      used_(j, l) += vm.demand[l];
    }
    pos_in_server_[k] = static_cast<std::uint32_t>(vms_on_[j].size());
    vms_on_[j].push_back(static_cast<std::uint32_t>(k));
    if (tracking_ == StateTracking::kFull) {
      total_migration_ += migration_of(k, placement_.server_of(k));
    }
  }

  total_usage_ = 0.0;
  total_downtime_ = 0.0;
  capacity_violations_ = 0;
  std::fill(server_usage_.begin(), server_usage_.end(), 0.0);
  std::fill(server_downtime_.begin(), server_downtime_.end(), 0.0);
  std::fill(overload_count_.begin(), overload_count_.end(), 0u);
  for (std::size_t j = 0; j < m; ++j) {
    refresh_server(j);
  }

  relation_violations_ = 0;
  const auto& constraints = inst.requests.constraints;
  for (std::size_t c = 0; c < constraints.size(); ++c) {
    const bool ok = checker_.relation_satisfied(constraints[c], placement_);
    relation_ok_[c] = ok ? 1 : 0;
    if (!ok) {
      ++relation_violations_;
    }
  }

  pending_.reset();
  undo_.clear();
}

double PlacementState::usage_of(std::size_t j, std::size_t vm_count) const {
  if (vm_count == 0) {
    return 0.0;
  }
  const Server& server = instance_->infra.server(j);
  const double count = static_cast<double>(vm_count);
  double usage = count * server.usage_cost;
  if (options_.opex_per_vm) {
    usage += count * server.opex;
  } else {
    usage += server.opex;
  }
  return usage;
}

double PlacementState::migration_of(std::size_t k,
                                    std::int32_t server) const {
  if (server < 0) {
    return 0.0;
  }
  const Instance& inst = *instance_;
  if (!inst.previous.is_assigned(k) || inst.previous.server_of(k) == server) {
    return 0.0;
  }
  double weight = 1.0;
  if (options_.topology_migration_weight) {
    const auto from = static_cast<std::uint32_t>(inst.previous.server_of(k));
    const auto to = static_cast<std::uint32_t>(server);
    // Normalise by the fabric diameter (6 hops) so the weight stays in
    // (0, 1]; an on-host "move" costs nothing.
    weight =
        static_cast<double>(inst.infra.fabric().hop_distance(from, to)) / 6.0;
  }
  return inst.requests.vms[k].migration_cost * weight;
}

double PlacementState::downtime_penalty(std::size_t k,
                                        double worst_qos) const {
  const VmRequest& vm = instance_->requests.vms[k];
  if (worst_qos >= vm.qos_guarantee) {
    return 0.0;
  }
  return vm.downtime_cost * (1.0 - worst_qos / vm.qos_guarantee);
}

void PlacementState::refresh_server(std::size_t j) {
  const Instance& inst = *instance_;
  const std::size_t h = inst.h();
  const Server& server = inst.infra.server(j);

  if (tracking_ == StateTracking::kViolationsOnly) {
    std::uint32_t overloads = 0;
    for (std::size_t l = 0; l < h; ++l) {
      if (used_(j, l) > server.effective_capacity(l) + kCapacityEps) {
        ++overloads;
      }
    }
    capacity_violations_ =
        capacity_violations_ - overload_count_[j] + overloads;
    overload_count_[j] = overloads;
    return;
  }

  double worst_qos = 1.0;
  std::uint32_t overloads = 0;
  for (std::size_t l = 0; l < h; ++l) {
    loads_(j, l) = used_(j, l) / server.capacity[l];
    qos_(j, l) = qos_at_load(loads_(j, l), server.max_load[l],
                             server.max_qos[l]);
    worst_qos = std::min(worst_qos, qos_(j, l));
    if (used_(j, l) > server.effective_capacity(l) + kCapacityEps) {
      ++overloads;
    }
  }

  double downtime = 0.0;
  for (std::uint32_t k : vms_on_[j]) {
    downtime += downtime_penalty(k, worst_qos);
  }
  const double usage = usage_of(j, vms_on_[j].size());

  total_usage_ += usage - server_usage_[j];
  total_downtime_ += downtime - server_downtime_[j];
  capacity_violations_ =
      capacity_violations_ - overload_count_[j] + overloads;
  server_usage_[j] = usage;
  server_downtime_[j] = downtime;
  overload_count_[j] = overloads;
}

PlacementState::ServerEdit PlacementState::edit_server(
    std::size_t j, std::size_t k, bool joining,
    std::span<const double> row) const {
  const Instance& inst = *instance_;
  const std::size_t h = inst.h();
  const Server& server = inst.infra.server(j);

  ServerEdit edit;
  double worst_qos = 1.0;
  for (std::size_t l = 0; l < h; ++l) {
    const double load = row[l] / server.capacity[l];
    worst_qos = std::min(
        worst_qos, qos_at_load(load, server.max_load[l], server.max_qos[l]));
    if (row[l] > server.effective_capacity(l) + kCapacityEps) {
      ++edit.overloads;
    }
  }

  std::size_t count = vms_on_[j].size();
  if (joining) {
    edit.downtime += downtime_penalty(k, worst_qos);
    ++count;
  } else {
    --count;
  }
  for (std::uint32_t member : vms_on_[j]) {
    if (!joining && member == k) {
      continue;
    }
    edit.downtime += downtime_penalty(member, worst_qos);
  }
  edit.usage = usage_of(j, count);
  return edit;
}

ObjectiveDelta PlacementState::try_move(std::size_t k, std::int32_t target) {
  IAAS_DEBUG_EXPECT(k < instance_->n(), "vm index out of range");
  IAAS_DEBUG_EXPECT(target < static_cast<std::int32_t>(instance_->m()),
                    "target server out of range");
  const Instance& inst = *instance_;
  const std::size_t h = inst.h();
  const std::int32_t from = placement_.server_of(k);
  pending_ = Move{k, target};

  ObjectiveDelta delta;
  delta.objectives = objectives();
  if (from == target) {
    return delta;
  }
  const VmRequest& vm = inst.requests.vms[k];

  double usage_delta = 0.0;
  double downtime_delta = 0.0;
  double migration_delta = 0.0;
  std::int32_t capacity_delta = 0;

  if (tracking_ == StateTracking::kViolationsOnly) {
    // Overload-count deltas only; the objective fields stay unspecified.
    for (const std::int32_t side : {from, target}) {
      if (side < 0) {
        continue;
      }
      const auto j = static_cast<std::size_t>(side);
      const Server& server = inst.infra.server(j);
      const double sign = side == from ? -1.0 : 1.0;
      std::uint32_t overloads = 0;
      for (std::size_t l = 0; l < h; ++l) {
        if (used_(j, l) + sign * vm.demand[l] >
            server.effective_capacity(l) + kCapacityEps) {
          ++overloads;
        }
      }
      capacity_delta += static_cast<std::int32_t>(overloads) -
                        static_cast<std::int32_t>(overload_count_[j]);
    }
  } else {
    if (from >= 0) {
      const auto a = static_cast<std::size_t>(from);
      for (std::size_t l = 0; l < h; ++l) {
        scratch_row_[l] = used_(a, l) - vm.demand[l];
      }
      const ServerEdit edit =
          edit_server(a, k, /*joining=*/false, scratch_row_);
      usage_delta += edit.usage - server_usage_[a];
      downtime_delta += edit.downtime - server_downtime_[a];
      capacity_delta += static_cast<std::int32_t>(edit.overloads) -
                        static_cast<std::int32_t>(overload_count_[a]);
    }
    if (target >= 0) {
      const auto b = static_cast<std::size_t>(target);
      for (std::size_t l = 0; l < h; ++l) {
        scratch_row_[l] = used_(b, l) + vm.demand[l];
      }
      const ServerEdit edit =
          edit_server(b, k, /*joining=*/true, scratch_row_);
      usage_delta += edit.usage - server_usage_[b];
      downtime_delta += edit.downtime - server_downtime_[b];
      capacity_delta += static_cast<std::int32_t>(edit.overloads) -
                        static_cast<std::int32_t>(overload_count_[b]);
    }
    migration_delta = migration_of(k, target) - migration_of(k, from);
  }

  std::int32_t relation_delta = 0;
  if (!constraints_of_vm_[k].empty()) {
    // Evaluate k's constraints against the hypothetical placement; the
    // temporary assignment is restored before returning.
    placement_.assign(k, target);
    const auto& constraints = inst.requests.constraints;
    for (std::uint32_t c : constraints_of_vm_[k]) {
      const bool ok = checker_.relation_satisfied(constraints[c], placement_);
      relation_delta += (ok ? 0 : 1) - (relation_ok_[c] != 0 ? 0 : 1);
    }
    placement_.assign(k, from);
  }

  delta.objectives.usage_cost += usage_delta;
  delta.objectives.downtime_cost += downtime_delta;
  delta.objectives.migration_cost += migration_delta;
  delta.aggregate_delta = usage_delta + downtime_delta + migration_delta;
  delta.violations_delta = capacity_delta + relation_delta;
  return delta;
}

void PlacementState::do_move(std::size_t k, std::int32_t target) {
  const Instance& inst = *instance_;
  const std::size_t h = inst.h();
  const std::int32_t from = placement_.server_of(k);
  if (from == target) {
    return;
  }
  const VmRequest& vm = inst.requests.vms[k];

  if (tracking_ == StateTracking::kFull) {
    total_migration_ += migration_of(k, target) - migration_of(k, from);
  }

  if (from >= 0) {
    const auto a = static_cast<std::size_t>(from);
    std::vector<std::uint32_t>& list = vms_on_[a];
    const std::uint32_t pos = pos_in_server_[k];
    list[pos] = list.back();
    pos_in_server_[list[pos]] = pos;
    list.pop_back();
    for (std::size_t l = 0; l < h; ++l) {
      used_(a, l) -= vm.demand[l];
    }
  } else {
    --rejected_count_;
  }
  placement_.assign(k, target);
  if (target >= 0) {
    const auto b = static_cast<std::size_t>(target);
    pos_in_server_[k] = static_cast<std::uint32_t>(vms_on_[b].size());
    vms_on_[b].push_back(static_cast<std::uint32_t>(k));
    for (std::size_t l = 0; l < h; ++l) {
      used_(b, l) += vm.demand[l];
    }
  } else {
    ++rejected_count_;
  }

  if (from >= 0) {
    refresh_server(static_cast<std::size_t>(from));
  }
  if (target >= 0) {
    refresh_server(static_cast<std::size_t>(target));
  }

  const auto& constraints = inst.requests.constraints;
  for (std::uint32_t c : constraints_of_vm_[k]) {
    const bool ok = checker_.relation_satisfied(constraints[c], placement_);
    if (ok && relation_ok_[c] == 0) {
      --relation_violations_;
    } else if (!ok && relation_ok_[c] != 0) {
      ++relation_violations_;
    }
    relation_ok_[c] = ok ? 1 : 0;
  }
}

void PlacementState::apply() {
  IAAS_EXPECT(pending_.has_value(), "apply without a pending try_move");
  const Move move = *pending_;
  apply_move(move.vm, move.target);
}

void PlacementState::apply_move(std::size_t k, std::int32_t target) {
  telemetry::count(telemetry::Counter::kDeltaMoves);
  undo_.push_back(Move{k, placement_.server_of(k)});
  do_move(k, target);
  pending_.reset();
}

void PlacementState::revert() {
  IAAS_EXPECT(!undo_.empty(), "revert without an applied move");
  const Move move = undo_.back();
  undo_.pop_back();
  do_move(move.vm, move.target);
}

ViolationReport PlacementState::violation_report() const {
  ViolationReport report;
  report.capacity_violations = capacity_violations_;
  report.relation_violations = relation_violations_;
  report.rejected_vms = static_cast<std::uint32_t>(rejected_count_);
  for (std::size_t j = 0; j < instance_->m(); ++j) {
    if (overload_count_[j] > 0) {
      report.overloaded_servers.push_back(static_cast<std::uint32_t>(j));
    }
  }
  return report;
}

}  // namespace iaas
