#include "model/placement_state.h"

#include <algorithm>
#include <numeric>

#include "common/telemetry.h"
#include "model/load_model.h"

namespace iaas {

StateTables::StateTables(const Instance& instance)
    : demand(instance.n(), instance.h()),
      vm_qos_guarantee(instance.n(), 0.0),
      vm_downtime_cost(instance.n(), 0.0),
      vm_migration_cost(instance.n(), 0.0),
      capacity(instance.m(), instance.h()),
      effective_capacity(instance.m(), instance.h()),
      max_load(instance.m(), instance.h()),
      max_qos(instance.m(), instance.h()),
      server_usage_cost(instance.m(), 0.0),
      server_opex(instance.m(), 0.0),
      constraint_offsets(instance.n() + 1, 0) {
  const std::size_t n = instance.n();
  const std::size_t m = instance.m();
  const std::size_t h = instance.h();

  for (std::size_t k = 0; k < n; ++k) {
    const VmRequest& vm = instance.requests.vms[k];
    std::span<double> row = demand.row(k);
    for (std::size_t l = 0; l < h; ++l) {
      row[l] = vm.demand[l];
    }
    vm_qos_guarantee[k] = vm.qos_guarantee;
    vm_downtime_cost[k] = vm.downtime_cost;
    vm_migration_cost[k] = vm.migration_cost;
  }

  for (std::size_t j = 0; j < m; ++j) {
    const Server& server = instance.infra.server(j);
    std::span<double> cap = capacity.row(j);
    std::span<double> ecap = effective_capacity.row(j);
    std::span<double> ml = max_load.row(j);
    std::span<double> mq = max_qos.row(j);
    for (std::size_t l = 0; l < h; ++l) {
      cap[l] = server.capacity[l];
      ecap[l] = server.effective_capacity(l);
      ml[l] = server.max_load[l];
      mq[l] = server.max_qos[l];
    }
    server_usage_cost[j] = server.usage_cost;
    server_opex[j] = server.opex;
  }

  // VM -> constraint CSR: count, prefix-sum, fill.
  const auto& constraints = instance.requests.constraints;
  for (const auto& constraint : constraints) {
    for (std::uint32_t k : constraint.vms) {
      ++constraint_offsets[k + 1];
    }
  }
  std::partial_sum(constraint_offsets.begin(), constraint_offsets.end(),
                   constraint_offsets.begin());
  constraint_ids.resize(constraint_offsets[n]);
  std::vector<std::uint32_t> cursor(constraint_offsets.begin(),
                                    constraint_offsets.end() - 1);
  for (std::size_t c = 0; c < constraints.size(); ++c) {
    for (std::uint32_t k : constraints[c].vms) {
      constraint_ids[cursor[k]++] = static_cast<std::uint32_t>(c);
    }
  }
}

PlacementState::PlacementState(const Instance& instance,
                               ObjectiveOptions options,
                               StateTracking tracking,
                               std::shared_ptr<const StateTables> tables)
    : instance_(&instance),
      options_(options),
      tracking_(tracking),
      checker_(instance),
      tables_(tables ? std::move(tables)
                     : std::make_shared<const StateTables>(instance)),
      placement_(instance.n()),
      used_(instance.m(), instance.h()),
      server_head_(instance.m(), kNoVm),
      server_tail_(instance.m(), kNoVm),
      server_count_(instance.m(), 0),
      vm_next_(instance.n(), kNoVm),
      vm_prev_(instance.n(), kNoVm),
      server_cost_(2 * instance.m(), 0.0),
      overload_count_(instance.m(), 0),
      relation_ok_(instance.requests.constraints.size(), 1),
      scratch_row_(instance.h(), 0.0),
      server_epoch_(instance.m(), 0),
      constraint_epoch_(instance.requests.constraints.size(), 0) {
  if (tracking_ == StateTracking::kFull) {
    loads_ = Matrix<double>(instance.m(), instance.h());
    qos_ = Matrix<double>(instance.m(), instance.h());
  }
  rebuild_from_placement();
}

void PlacementState::rebuild(std::span<const std::int32_t> genes) {
  IAAS_EXPECT(genes.size() == instance_->n(),
              "placement size mismatch with instance");
  // Counted here rather than in rebuild_from_placement: the constructor
  // also scans (over an all-rejected placement), but evaluator-pool
  // construction varies with thread count and would make the tally
  // nondeterministic.
  telemetry::count(telemetry::Counter::kStateRebuilds);
  std::vector<std::int32_t>& dst = placement_.genes();
  std::copy(genes.begin(), genes.end(), dst.begin());
  rebuild_from_placement();
}

void PlacementState::rebuild(const Placement& placement) {
  rebuild(placement.genes());
}

void PlacementState::rebuild_from_placement() {
  const Instance& inst = *instance_;
  const std::size_t m = inst.m();

  used_.fill(0.0);
  std::fill(server_head_.begin(), server_head_.end(), kNoVm);
  std::fill(server_tail_.begin(), server_tail_.end(), kNoVm);
  std::fill(server_count_.begin(), server_count_.end(), 0u);
  rejected_count_ = 0;
  total_migration_ = 0.0;
  for (std::size_t k = 0; k < inst.n(); ++k) {
    if (!placement_.is_assigned(k)) {
      ++rejected_count_;
      continue;
    }
    const auto j = static_cast<std::size_t>(placement_.server_of(k));
    IAAS_DEBUG_EXPECT(j < m, "placement references unknown server");
    attach_vm(k, j);
    if (tracking_ == StateTracking::kFull) {
      total_migration_ += migration_of(k, placement_.server_of(k));
    }
  }

  total_usage_ = 0.0;
  total_downtime_ = 0.0;
  capacity_violations_ = 0;
  std::fill(server_cost_.begin(), server_cost_.end(), 0.0);
  std::fill(overload_count_.begin(), overload_count_.end(), 0u);
  for (std::size_t j = 0; j < m; ++j) {
    refresh_server(j);
  }

  relation_violations_ = 0;
  const auto& constraints = inst.requests.constraints;
  for (std::size_t c = 0; c < constraints.size(); ++c) {
    const bool ok = checker_.relation_satisfied(constraints[c], placement_);
    relation_ok_[c] = ok ? 1 : 0;
    if (!ok) {
      ++relation_violations_;
    }
  }

  pending_.reset();
  undo_.clear();
}

std::size_t PlacementState::rebase(std::span<const std::int32_t> genes) {
  IAAS_EXPECT(genes.size() == instance_->n(),
              "placement size mismatch with instance");
  const std::size_t n = instance_->n();
  const std::vector<std::int32_t>& cur = placement_.genes();
  std::size_t diff = 0;
  for (std::size_t k = 0; k < n; ++k) {
    diff += cur[k] != genes[k] ? 1 : 0;
  }
  if (diff == 0) {
    pending_.reset();
    undo_.clear();
    return 0;
  }
  // Past ~a quarter of the genes the per-diff bookkeeping (list edits,
  // touched-server refreshes, constraint rechecks) stops beating one
  // linear rebuild; fall back.
  if (diff * 4 > n) {
    rebuild(genes);
    return diff;
  }
  telemetry::count(telemetry::Counter::kStateRebases);

  if (++epoch_ == 0) {  // wrapped: every stale mark must be invalidated
    std::fill(server_epoch_.begin(), server_epoch_.end(), 0u);
    std::fill(constraint_epoch_.begin(), constraint_epoch_.end(), 0u);
    epoch_ = 1;
  }
  touched_servers_.clear();
  touched_constraints_.clear();

  for (std::size_t k = 0; k < n; ++k) {
    const std::int32_t from = placement_.server_of(k);
    const std::int32_t to = genes[k];
    if (from == to) {
      continue;
    }
    if (tracking_ == StateTracking::kFull) {
      total_migration_ += migration_of(k, to) - migration_of(k, from);
    }
    if (from >= 0) {
      detach_vm(k, static_cast<std::size_t>(from));
      touch_server(static_cast<std::uint32_t>(from));
    } else {
      --rejected_count_;
    }
    placement_.assign(k, to);
    if (to >= 0) {
      attach_vm(k, static_cast<std::size_t>(to));
      touch_server(static_cast<std::uint32_t>(to));
    } else {
      ++rejected_count_;
    }
    for (std::uint32_t c : tables_->constraints_of(k)) {
      touch_constraint(c);
    }
  }

  for (std::uint32_t j : touched_servers_) {
    refresh_server(j);
  }
  const auto& constraints = instance_->requests.constraints;
  for (std::uint32_t c : touched_constraints_) {
    const bool ok = checker_.relation_satisfied(constraints[c], placement_);
    if (ok && relation_ok_[c] == 0) {
      --relation_violations_;
    } else if (!ok && relation_ok_[c] != 0) {
      ++relation_violations_;
    }
    relation_ok_[c] = ok ? 1 : 0;
  }

  pending_.reset();
  undo_.clear();
  return diff;
}

void PlacementState::assign_from(const PlacementState& other) {
  IAAS_EXPECT(instance_ == other.instance_,
              "assign_from across different instances");
  IAAS_EXPECT(tracking_ == other.tracking_,
              "assign_from across tracking modes");
  options_ = other.options_;
  placement_ = other.placement_;
  used_ = other.used_;
  loads_ = other.loads_;
  qos_ = other.qos_;
  server_head_ = other.server_head_;
  server_tail_ = other.server_tail_;
  server_count_ = other.server_count_;
  vm_next_ = other.vm_next_;
  vm_prev_ = other.vm_prev_;
  server_cost_ = other.server_cost_;
  overload_count_ = other.overload_count_;
  total_usage_ = other.total_usage_;
  total_downtime_ = other.total_downtime_;
  total_migration_ = other.total_migration_;
  relation_ok_ = other.relation_ok_;
  capacity_violations_ = other.capacity_violations_;
  relation_violations_ = other.relation_violations_;
  rejected_count_ = other.rejected_count_;
  pending_.reset();
  undo_.clear();
}

void PlacementState::detach_vm(std::size_t k, std::size_t j) {
  const std::uint32_t next = vm_next_[k];
  const std::uint32_t prev = vm_prev_[k];
  if (prev == kNoVm) {
    server_head_[j] = next;
  } else {
    vm_next_[prev] = next;
  }
  if (next == kNoVm) {
    server_tail_[j] = prev;
  } else {
    vm_prev_[next] = prev;
  }
  --server_count_[j];
  const std::span<const double> demand = tables_->demand.row(k);
  const std::span<double> used = used_.row(j);
  for (std::size_t l = 0; l < demand.size(); ++l) {
    used[l] -= demand[l];
  }
}

void PlacementState::attach_vm(std::size_t k, std::size_t j) {
  const std::uint32_t tail = server_tail_[j];
  vm_prev_[k] = tail;
  vm_next_[k] = kNoVm;
  if (tail == kNoVm) {
    server_head_[j] = static_cast<std::uint32_t>(k);
  } else {
    vm_next_[tail] = static_cast<std::uint32_t>(k);
  }
  server_tail_[j] = static_cast<std::uint32_t>(k);
  ++server_count_[j];
  const std::span<const double> demand = tables_->demand.row(k);
  const std::span<double> used = used_.row(j);
  for (std::size_t l = 0; l < demand.size(); ++l) {
    used[l] += demand[l];
  }
}

void PlacementState::touch_server(std::uint32_t j) {
  if (server_epoch_[j] != epoch_) {
    server_epoch_[j] = epoch_;
    touched_servers_.push_back(j);
  }
}

void PlacementState::touch_constraint(std::uint32_t c) {
  if (constraint_epoch_[c] != epoch_) {
    constraint_epoch_[c] = epoch_;
    touched_constraints_.push_back(c);
  }
}

double PlacementState::usage_of(std::size_t j, std::size_t vm_count) const {
  if (vm_count == 0) {
    return 0.0;
  }
  const StateTables& t = *tables_;
  const double count = static_cast<double>(vm_count);
  double usage = count * t.server_usage_cost[j];
  if (options_.opex_per_vm) {
    usage += count * t.server_opex[j];
  } else {
    usage += t.server_opex[j];
  }
  return usage;
}

double PlacementState::migration_of(std::size_t k,
                                    std::int32_t server) const {
  if (server < 0) {
    return 0.0;
  }
  const Instance& inst = *instance_;
  if (!inst.previous.is_assigned(k) || inst.previous.server_of(k) == server) {
    return 0.0;
  }
  double weight = 1.0;
  if (options_.topology_migration_weight) {
    const auto from = static_cast<std::uint32_t>(inst.previous.server_of(k));
    const auto to = static_cast<std::uint32_t>(server);
    // Normalise by the fabric diameter (6 hops) so the weight stays in
    // (0, 1]; an on-host "move" costs nothing.
    weight =
        static_cast<double>(inst.infra.fabric().hop_distance(from, to)) / 6.0;
  }
  return tables_->vm_migration_cost[k] * weight;
}

double PlacementState::downtime_penalty(std::size_t k,
                                        double worst_qos) const {
  const double guarantee = tables_->vm_qos_guarantee[k];
  if (worst_qos >= guarantee) {
    return 0.0;
  }
  return tables_->vm_downtime_cost[k] * (1.0 - worst_qos / guarantee);
}

void PlacementState::refresh_server(std::size_t j) {
  const StateTables& t = *tables_;
  const std::size_t h = instance_->h();
  const std::span<const double> used = used_.row(j);
  const std::span<const double> ecap = t.effective_capacity.row(j);

  if (tracking_ == StateTracking::kViolationsOnly) {
    std::uint32_t overloads = 0;
    for (std::size_t l = 0; l < h; ++l) {
      overloads += used[l] > ecap[l] + kCapacityEps ? 1u : 0u;
    }
    capacity_violations_ =
        capacity_violations_ - overload_count_[j] + overloads;
    overload_count_[j] = overloads;
    return;
  }

  // Contiguous row spans; every per-attribute quantity of server j sits in
  // one cache-line run per table.
  const std::span<const double> cap = t.capacity.row(j);
  const std::span<const double> max_load = t.max_load.row(j);
  const std::span<const double> max_qos = t.max_qos.row(j);
  const std::span<double> loads = loads_.row(j);
  const std::span<double> qos = qos_.row(j);
  double worst_qos = 1.0;
  std::uint32_t overloads = 0;
  for (std::size_t l = 0; l < h; ++l) {
    loads[l] = used[l] / cap[l];
    qos[l] = qos_at_load(loads[l], max_load[l], max_qos[l]);
    worst_qos = std::min(worst_qos, qos[l]);
    overloads += used[l] > ecap[l] + kCapacityEps ? 1u : 0u;
  }

  double downtime = 0.0;
  for (std::uint32_t k = server_head_[j]; k != kNoVm; k = vm_next_[k]) {
    downtime += downtime_penalty(k, worst_qos);
  }
  const double usage = usage_of(j, server_count_[j]);

  total_usage_ += usage - usage_acc(j);
  total_downtime_ += downtime - downtime_acc(j);
  capacity_violations_ =
      capacity_violations_ - overload_count_[j] + overloads;
  usage_acc(j) = usage;
  downtime_acc(j) = downtime;
  overload_count_[j] = overloads;
}

PlacementState::ServerEdit PlacementState::edit_server(
    std::size_t j, std::size_t k, bool joining,
    std::span<const double> row) const {
  const StateTables& t = *tables_;
  const std::size_t h = instance_->h();
  const std::span<const double> cap = t.capacity.row(j);
  const std::span<const double> ecap = t.effective_capacity.row(j);
  const std::span<const double> max_load = t.max_load.row(j);
  const std::span<const double> max_qos = t.max_qos.row(j);

  ServerEdit edit;
  double worst_qos = 1.0;
  for (std::size_t l = 0; l < h; ++l) {
    const double load = row[l] / cap[l];
    worst_qos =
        std::min(worst_qos, qos_at_load(load, max_load[l], max_qos[l]));
    edit.overloads += row[l] > ecap[l] + kCapacityEps ? 1u : 0u;
  }

  std::size_t count = server_count_[j];
  if (joining) {
    edit.downtime += downtime_penalty(k, worst_qos);
    ++count;
  } else {
    --count;
  }
  for (std::uint32_t member = server_head_[j]; member != kNoVm;
       member = vm_next_[member]) {
    if (!joining && member == k) {
      continue;
    }
    edit.downtime += downtime_penalty(member, worst_qos);
  }
  edit.usage = usage_of(j, count);
  return edit;
}

ObjectiveDelta PlacementState::try_move(std::size_t k, std::int32_t target) {
  IAAS_DEBUG_EXPECT(k < instance_->n(), "vm index out of range");
  IAAS_DEBUG_EXPECT(target < static_cast<std::int32_t>(instance_->m()),
                    "target server out of range");
  const Instance& inst = *instance_;
  const std::size_t h = inst.h();
  const std::int32_t from = placement_.server_of(k);
  pending_ = Move{k, target};

  ObjectiveDelta delta;
  delta.objectives = objectives();
  if (from == target) {
    return delta;
  }
  const std::span<const double> demand = tables_->demand.row(k);

  double usage_delta = 0.0;
  double downtime_delta = 0.0;
  double migration_delta = 0.0;
  std::int32_t capacity_delta = 0;

  if (tracking_ == StateTracking::kViolationsOnly) {
    // Overload-count deltas only; the objective fields stay unspecified.
    for (const std::int32_t side : {from, target}) {
      if (side < 0) {
        continue;
      }
      const auto j = static_cast<std::size_t>(side);
      const std::span<const double> used = used_.row(j);
      const std::span<const double> ecap =
          tables_->effective_capacity.row(j);
      const double sign = side == from ? -1.0 : 1.0;
      std::uint32_t overloads = 0;
      for (std::size_t l = 0; l < h; ++l) {
        overloads +=
            used[l] + sign * demand[l] > ecap[l] + kCapacityEps ? 1u : 0u;
      }
      capacity_delta += static_cast<std::int32_t>(overloads) -
                        static_cast<std::int32_t>(overload_count_[j]);
    }
  } else {
    if (from >= 0) {
      const auto a = static_cast<std::size_t>(from);
      const std::span<const double> used = used_.row(a);
      for (std::size_t l = 0; l < h; ++l) {
        scratch_row_[l] = used[l] - demand[l];
      }
      const ServerEdit edit =
          edit_server(a, k, /*joining=*/false, scratch_row_);
      usage_delta += edit.usage - usage_acc(a);
      downtime_delta += edit.downtime - downtime_acc(a);
      capacity_delta += static_cast<std::int32_t>(edit.overloads) -
                        static_cast<std::int32_t>(overload_count_[a]);
    }
    if (target >= 0) {
      const auto b = static_cast<std::size_t>(target);
      const std::span<const double> used = used_.row(b);
      for (std::size_t l = 0; l < h; ++l) {
        scratch_row_[l] = used[l] + demand[l];
      }
      const ServerEdit edit =
          edit_server(b, k, /*joining=*/true, scratch_row_);
      usage_delta += edit.usage - usage_acc(b);
      downtime_delta += edit.downtime - downtime_acc(b);
      capacity_delta += static_cast<std::int32_t>(edit.overloads) -
                        static_cast<std::int32_t>(overload_count_[b]);
    }
    migration_delta = migration_of(k, target) - migration_of(k, from);
  }

  std::int32_t relation_delta = 0;
  const std::span<const std::uint32_t> mentions = tables_->constraints_of(k);
  if (!mentions.empty()) {
    // Evaluate k's constraints against the hypothetical placement; the
    // temporary assignment is restored before returning.
    placement_.assign(k, target);
    const auto& constraints = inst.requests.constraints;
    for (std::uint32_t c : mentions) {
      const bool ok = checker_.relation_satisfied(constraints[c], placement_);
      relation_delta += (ok ? 0 : 1) - (relation_ok_[c] != 0 ? 0 : 1);
    }
    placement_.assign(k, from);
  }

  delta.objectives.usage_cost += usage_delta;
  delta.objectives.downtime_cost += downtime_delta;
  delta.objectives.migration_cost += migration_delta;
  delta.aggregate_delta = usage_delta + downtime_delta + migration_delta;
  delta.violations_delta = capacity_delta + relation_delta;
  return delta;
}

void PlacementState::do_move(std::size_t k, std::int32_t target) {
  const std::int32_t from = placement_.server_of(k);
  if (from == target) {
    return;
  }

  if (tracking_ == StateTracking::kFull) {
    total_migration_ += migration_of(k, target) - migration_of(k, from);
  }

  if (from >= 0) {
    detach_vm(k, static_cast<std::size_t>(from));
  } else {
    --rejected_count_;
  }
  placement_.assign(k, target);
  if (target >= 0) {
    attach_vm(k, static_cast<std::size_t>(target));
  } else {
    ++rejected_count_;
  }

  if (from >= 0) {
    refresh_server(static_cast<std::size_t>(from));
  }
  if (target >= 0) {
    refresh_server(static_cast<std::size_t>(target));
  }

  const auto& constraints = instance_->requests.constraints;
  for (std::uint32_t c : tables_->constraints_of(k)) {
    const bool ok = checker_.relation_satisfied(constraints[c], placement_);
    if (ok && relation_ok_[c] == 0) {
      --relation_violations_;
    } else if (!ok && relation_ok_[c] != 0) {
      ++relation_violations_;
    }
    relation_ok_[c] = ok ? 1 : 0;
  }
}

void PlacementState::apply() {
  IAAS_EXPECT(pending_.has_value(), "apply without a pending try_move");
  const Move move = *pending_;
  apply_move(move.vm, move.target);
}

void PlacementState::apply_move(std::size_t k, std::int32_t target) {
  telemetry::count(telemetry::Counter::kDeltaMoves);
  undo_.push_back(Move{k, placement_.server_of(k)});
  do_move(k, target);
  pending_.reset();
}

void PlacementState::revert() {
  IAAS_EXPECT(!undo_.empty(), "revert without an applied move");
  const Move move = undo_.back();
  undo_.pop_back();
  do_move(move.vm, move.target);
}

ViolationReport PlacementState::violation_report() const {
  ViolationReport report;
  report.capacity_violations = capacity_violations_;
  report.relation_violations = relation_violations_;
  report.rejected_vms = static_cast<std::uint32_t>(rejected_count_);
  for (std::size_t j = 0; j < instance_->m(); ++j) {
    if (overload_count_[j] > 0) {
      report.overloaded_servers.push_back(static_cast<std::uint32_t>(j));
    }
  }
  return report;
}

}  // namespace iaas
