// A placement is the decision variable of the model: the paper's boolean
// tensor X_ijk collapses to one integer per VM because Eq. 17 forces each
// consumer resource onto exactly one (datacenter, server).  Gene k holds
// the global server index hosting VM k, or kRejected when the request is
// rejected (the rejection-rate metric of Fig. 9).
#pragma once

#include <cstdint>
#include <vector>

#include "common/expect.h"

namespace iaas {

class Placement {
 public:
  static constexpr std::int32_t kRejected = -1;

  Placement() = default;
  explicit Placement(std::size_t vm_count)
      : assignment_(vm_count, kRejected) {}
  explicit Placement(std::vector<std::int32_t> assignment)
      : assignment_(std::move(assignment)) {}

  [[nodiscard]] std::size_t vm_count() const { return assignment_.size(); }

  [[nodiscard]] bool is_assigned(std::size_t k) const {
    IAAS_DEBUG_EXPECT(k < assignment_.size(), "vm index out of range");
    return assignment_[k] != kRejected;
  }

  [[nodiscard]] std::int32_t server_of(std::size_t k) const {
    IAAS_DEBUG_EXPECT(k < assignment_.size(), "vm index out of range");
    return assignment_[k];
  }

  void assign(std::size_t k, std::int32_t server) {
    IAAS_DEBUG_EXPECT(k < assignment_.size(), "vm index out of range");
    assignment_[k] = server;
  }

  void reject(std::size_t k) { assign(k, kRejected); }

  [[nodiscard]] std::size_t rejected_count() const {
    std::size_t n = 0;
    for (std::int32_t s : assignment_) {
      n += (s == kRejected) ? 1 : 0;
    }
    return n;
  }
  [[nodiscard]] std::size_t assigned_count() const {
    return assignment_.size() - rejected_count();
  }

  [[nodiscard]] const std::vector<std::int32_t>& genes() const {
    return assignment_;
  }
  [[nodiscard]] std::vector<std::int32_t>& genes() { return assignment_; }

  friend bool operator==(const Placement&, const Placement&) = default;

 private:
  std::vector<std::int32_t> assignment_;
};

}  // namespace iaas
