// The provider side of the allocation problem: a spine-leaf fabric plus
// one Server record per physical host.  g datacenters, m servers,
// h attributes (paper Table I).
#pragma once

#include <cstdint>
#include <vector>

#include "model/server.h"
#include "topology/fabric.h"

namespace iaas {

class Infrastructure {
 public:
  // Servers must be ordered by datacenter and sized to the fabric
  // (one record per fabric server, matching datacenter membership).
  Infrastructure(FabricConfig fabric_config, std::vector<Server> servers);

  [[nodiscard]] const Fabric& fabric() const { return fabric_; }

  [[nodiscard]] std::size_t server_count() const { return servers_.size(); }
  [[nodiscard]] std::size_t datacenter_count() const {
    return fabric_.datacenter_count();
  }
  [[nodiscard]] std::size_t attribute_count() const { return attributes_; }

  [[nodiscard]] const Server& server(std::size_t j) const {
    IAAS_DEBUG_EXPECT(j < servers_.size(), "server index out of range");
    return servers_[j];
  }
  [[nodiscard]] const std::vector<Server>& servers() const { return servers_; }

  [[nodiscard]] std::uint32_t datacenter_of(std::size_t j) const {
    IAAS_DEBUG_EXPECT(j < servers_.size(), "server index out of range");
    return servers_[j].datacenter;
  }

  // Global indices of the servers in one datacenter (contiguous range).
  [[nodiscard]] std::vector<std::uint32_t> servers_in_datacenter(
      std::uint32_t dc) const;

  // Total effective capacity of attribute l across all servers.
  [[nodiscard]] double total_effective_capacity(std::size_t l) const;

 private:
  Fabric fabric_;
  std::vector<Server> servers_;
  std::size_t attributes_;
};

}  // namespace iaas
