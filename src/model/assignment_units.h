// Assignment units: the transitive closure of the relationship groups.
//
// VMs sharing any Eq. 9-12 constraint land in one unit (one singleton
// unit per unconstrained VM), so routing a whole unit to one partition —
// a cloud in the multi-cloud broker, a shard in the sharded allocator —
// keeps every relationship constraint locally checkable: no group is
// ever split across partitions.  Units are ordered by their smallest
// member, members ascending — a deterministic partition of [0, n).
#pragma once

#include <cstdint>
#include <vector>

#include "model/request_set.h"

namespace iaas {

std::vector<std::vector<std::uint32_t>> assignment_units(
    const RequestSet& requests);

}  // namespace iaas
