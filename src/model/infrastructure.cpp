#include "model/infrastructure.h"

#include "common/expect.h"

namespace iaas {

Infrastructure::Infrastructure(FabricConfig fabric_config,
                               std::vector<Server> servers)
    : fabric_(fabric_config), servers_(std::move(servers)) {
  IAAS_EXPECT(servers_.size() == fabric_.server_count(),
              "one Server record per fabric server required");
  IAAS_EXPECT(!servers_.empty(), "infrastructure needs at least one server");
  attributes_ = servers_.front().attribute_count();
  for (std::size_t j = 0; j < servers_.size(); ++j) {
    IAAS_EXPECT(servers_[j].valid(attributes_),
                "server record fails validation");
    IAAS_EXPECT(servers_[j].datacenter ==
                    fabric_.datacenter_of_server(static_cast<std::uint32_t>(j)),
                "server datacenter must match fabric layout");
  }
}

std::vector<std::uint32_t> Infrastructure::servers_in_datacenter(
    std::uint32_t dc) const {
  IAAS_EXPECT(dc < datacenter_count(), "datacenter out of range");
  std::vector<std::uint32_t> out;
  for (std::size_t j = 0; j < servers_.size(); ++j) {
    if (servers_[j].datacenter == dc) {
      out.push_back(static_cast<std::uint32_t>(j));
    }
  }
  return out;
}

double Infrastructure::total_effective_capacity(std::size_t l) const {
  double total = 0.0;
  for (const Server& s : servers_) {
    total += s.effective_capacity(l);
  }
  return total;
}

}  // namespace iaas
