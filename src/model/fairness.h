// Fairness / welfare metrics over one allocation outcome.
//
// The paper's objectives (Eqs. 22/23/26) judge a placement by provider
// and consumer cost; they say nothing about how service is *divided*
// between consumers, which is exactly what strategic misreporting
// distorts.  This layer measures the division:
//
//   share_c   = sum over c's placed VMs of the VM's dominant fleet
//               fraction  max_l actual_demand_kl / P^eff_l(total)
//   welfare_c = share_c / requested_c       (served fraction of need)
//   Jain      = (sum share)^2 / (N * sum share^2)   in [1/N, 1]
//   envy      = mean_c max(0, max_d welfare_d - welfare_c)
//   util_eff  = served actual size / served reported size  (inflation
//               shrinks this below 1: capacity is booked but unused)
//   energy    = sum over powered servers of
//               watts_per_core * P_j,cpu * (idle + (1-idle) * load_j,cpu)
//
// "Actual" demand is VmRequest::actual_demand() — the honest vector a
// strategic consumer hid behind an inflated report.  All sums iterate
// in consumer-id order, so results are deterministic bit-for-bit.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "model/instance.h"
#include "model/placement.h"

namespace iaas {

class PlacementState;

// Jain's fairness index over non-negative shares: 1 for a uniform
// vector, 1/N when one consumer holds everything.  Defined as 1 for
// empty or all-zero input (perfect equality of nothing).
[[nodiscard]] double jain_index(std::span<const double> shares);

// Linear server power model: a powered server draws idle_fraction of
// its peak, plus the rest proportionally to CPU load; peak scales with
// CPU capacity.  Servers hosting no VM are off and draw nothing.
struct EnergyModel {
  double idle_fraction = 0.4;    // in [0, 1]
  double watts_per_core = 10.0;  // >= 0, per unit of CPU capacity
};

struct FairnessConfig {
  EnergyModel energy;
};

// One consumer's slice of a window outcome.
struct ConsumerShare {
  std::uint32_t consumer = 0;
  bool strategic = false;  // any of its VMs carried a misreported demand
  double requested = 0.0;  // dominant-size total over all its VMs
  double served = 0.0;     // dominant-size total over its placed VMs
  double welfare = 0.0;    // served / requested (1 when nothing requested)
};

struct FairnessReport {
  std::vector<ConsumerShare> consumers;  // ascending consumer id
  std::uint32_t strategic_consumers = 0;
  std::uint32_t strategic_vms = 0;
  double jain = 1.0;
  double envy = 0.0;
  double utilization_efficiency = 1.0;
  double honest_welfare = 0.0;     // mean welfare of honest consumers
  double strategic_welfare = 0.0;  // mean welfare of strategic consumers
  double energy_cost = 0.0;
};

// Energy draw of a committed placement.  `state` must track kFull (the
// loads matrix feeds the proportional term) and be positioned at the
// placement being scored.
[[nodiscard]] double energy_cost(const Instance& instance,
                                 const PlacementState& state,
                                 const EnergyModel& model);

// Scores `placement` against `instance`.  Rebuilds one PlacementState
// internally for the energy term — call once per window, not per move.
[[nodiscard]] FairnessReport compute_fairness(const Instance& instance,
                                              const Placement& placement,
                                              const FairnessConfig& config = {});

}  // namespace iaas
