// Load and quality-of-service models (paper Eqs. 24-25).
//
// Load of attribute l on server j (Eq. 25):
//     L_jl = (sum_k C_kl * X_jk) / P_jl
//
// QoS as a function of load (Eq. 24) — flat until the degradation knee
// L^M_jl, then exponential decay (the paper cites empirical studies
// [23][24] showing QoS decreases exponentially with workload):
//     Q_jl = Q^M_jl                                  if L_jl <= L^M_jl
//     Q_jl = Q^M_jl * exp((L^M_jl - L_jl)/(1-L^M_jl)) otherwise
#pragma once

#include "common/matrix.h"
#include "model/instance.h"
#include "model/placement.h"

namespace iaas {

// QoS value for a single (load, knee, max_qos) triple; the scalar core of
// Eq. 24, exposed for tests and for the piecewise-shape property checks.
double qos_at_load(double load, double max_load, double max_qos);

// Fills `loads` (m x h) with Eq. 25 for the given placement; rejected VMs
// contribute nothing.  `loads` is resized if needed.
void compute_loads(const Instance& instance, const Placement& placement,
                   Matrix<double>& loads);

// Fills `qos` (m x h) from a load matrix via Eq. 24.
void compute_qos(const Instance& instance, const Matrix<double>& loads,
                 Matrix<double>& qos);

}  // namespace iaas
