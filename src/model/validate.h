// Whole-instance validation: structural checks plus satisfiability
// screens.  Used on untrusted input (JSON scenario files) and by the
// generator's own tests.  Returns human-readable findings; empty = clean.
#pragma once

#include <string>
#include <vector>

#include "model/instance.h"

namespace iaas {

std::vector<std::string> validate_instance(const Instance& instance);

}  // namespace iaas
