// One allocation problem instance: the provider infrastructure, the
// consumer request set of the current time window, and the placement that
// was active in the previous window (drives the migration objective,
// Eq. 26: X^t vs X^{t+1}).
#pragma once

#include <cstddef>
#include <memory>

#include "model/infrastructure.h"
#include "model/placement.h"
#include "model/request_set.h"

namespace iaas {

struct Instance {
  Instance(Infrastructure infrastructure, RequestSet request_set)
      : infra(std::move(infrastructure)),
        requests(std::move(request_set)),
        previous(requests.vm_count()) {
    IAAS_EXPECT(requests.valid(infra.attribute_count()),
                "request set inconsistent with infrastructure attributes");
  }

  Infrastructure infra;
  RequestSet requests;
  Placement previous;  // all-kRejected when every request is fresh

  // Paper Table I shorthands.
  [[nodiscard]] std::size_t g() const { return infra.datacenter_count(); }
  [[nodiscard]] std::size_t m() const { return infra.server_count(); }
  [[nodiscard]] std::size_t n() const { return requests.vm_count(); }
  [[nodiscard]] std::size_t h() const { return infra.attribute_count(); }
};

}  // namespace iaas
