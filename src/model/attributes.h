// Resource attributes (paper §III: "we focus on attributes such as CPU,
// RAM and disk for each virtual and physical resource. In addition, our
// model can be extended to other specific attributes").
//
// Attributes are positional: index l in [0, h).  The first three indices
// carry the canonical CPU/RAM/disk meaning; anything beyond is
// provider-specific (GPU, IOPS, ...).  The model never special-cases an
// attribute, matching the paper's requirement h = h' (provider and
// consumer attribute spaces are identical).
#pragma once

#include <cstddef>
#include <string>

namespace iaas {

inline constexpr std::size_t kCpu = 0;
inline constexpr std::size_t kRam = 1;
inline constexpr std::size_t kDisk = 2;
inline constexpr std::size_t kDefaultAttributeCount = 3;

inline std::string attribute_name(std::size_t l) {
  switch (l) {
    case kCpu:
      return "cpu";
    case kRam:
      return "ram";
    case kDisk:
      return "disk";
    default:
      return "attr" + std::to_string(l);
  }
}

}  // namespace iaas
