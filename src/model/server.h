// A provider resource (physical server / hypervisor host), carrying the
// per-server rows of the paper's matrices and vectors:
//   capacity[l]   = P_jl   (Eq. 1)   raw capacity per attribute
//   factor[l]     = F_jl   (Eq. 3)   virtual-to-physical consumption factor
//   max_load[l]   = L^M_jl (Eq. 8)   load knee before QoS degradation
//   max_qos[l]    = Q^M_jl (Eq. 8)   best achievable QoS
//   opex          = E_j    (Eq. 6)   operating expense (power, floor
//                                    space, storage, IT operations)
//   usage_cost    = U_j    (Eq. 7)   cost per hosted consumer resource
#pragma once

#include <cstdint>
#include <vector>

#include "common/expect.h"

namespace iaas {

struct Server {
  std::uint32_t datacenter = 0;
  std::vector<double> capacity;   // P_jl > 0
  std::vector<double> factor;     // F_jl in (0, 1]: share of raw capacity
                                  // left for virtual resources after the
                                  // virtualisation overhead
  std::vector<double> max_load;   // L^M_jl in [0, 1)
  std::vector<double> max_qos;    // Q^M_jl in [0, 1)
  double opex = 0.0;              // E_j >= 0
  double usage_cost = 0.0;        // U_j >= 0

  // Effective capacity available to consumer resources: P_jl * F_jl
  // (right-hand side of the capacity constraint, Eq. 4 / Eq. 16).
  [[nodiscard]] double effective_capacity(std::size_t l) const {
    IAAS_DEBUG_EXPECT(l < capacity.size(), "attribute out of range");
    return capacity[l] * factor[l];
  }

  [[nodiscard]] std::size_t attribute_count() const {
    return capacity.size();
  }

  // Structural sanity: all attribute vectors sized h, values in range.
  [[nodiscard]] bool valid(std::size_t h) const {
    if (capacity.size() != h || factor.size() != h ||
        max_load.size() != h || max_qos.size() != h) {
      return false;
    }
    for (std::size_t l = 0; l < h; ++l) {
      if (capacity[l] <= 0.0 || factor[l] <= 0.0 || factor[l] > 1.0 ||
          max_load[l] < 0.0 || max_load[l] >= 1.0 || max_qos[l] < 0.0 ||
          max_qos[l] >= 1.0) {
        return false;
      }
    }
    return opex >= 0.0 && usage_cost >= 0.0;
  }
};

}  // namespace iaas
