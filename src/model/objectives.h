// The three objective terms of the paper's global objective (Eq. 15):
//
//   1. usage & operating cost  (Eq. 22): exploitation cost E_j of the
//      servers put to use plus the usage cost U_j for each hosted VM;
//   2. downtime cost           (Eq. 23): SLA penalty C^U_k whenever the
//      QoS delivered to VM k falls below its guarantee C^Q_k, using the
//      load->QoS decay of Eq. 24;
//   3. migration cost          (Eq. 26): M_k for every VM the new plan
//      moves relative to the previous window's placement.
//
// Interpretation notes (documented deviations from the paper's literal
// formulas, see DESIGN.md §6):
//   * Eq. 22 literally sums E_j per hosted VM; we charge E_j once per
//     *used* server by default — that is what makes consolidation pay, a
//     stated goal of the paper ("reduce the number of servers").  The
//     literal per-VM reading is available via opex_per_vm (ablation).
//   * Eq. 23 literally scales with Q_jl/C^Q_k, which would *reward* QoS
//     degradation; we charge C^U_k * (1 - q/C^Q_k) for q below the
//     guarantee (penalty proportional to the shortfall) and zero above.
//
// The aggregate Z uses equal weights, as the paper does "without loss of
// generality".
#pragma once

#include <array>
#include <cstddef>

#include "common/matrix.h"
#include "model/constraint_checker.h"
#include "model/instance.h"
#include "model/placement.h"

namespace iaas {

struct ObjectiveVector {
  static constexpr std::size_t kCount = 3;

  double usage_cost = 0.0;      // term 1, Eq. 22
  double downtime_cost = 0.0;   // term 2, Eq. 23
  double migration_cost = 0.0;  // term 3, Eq. 26

  [[nodiscard]] double aggregate() const {
    return usage_cost + downtime_cost + migration_cost;
  }
  [[nodiscard]] std::array<double, kCount> as_array() const {
    return {usage_cost, downtime_cost, migration_cost};
  }
};

// Stakeholder-tunable objective weights — the paper assigns equal
// weights "without loss of generality [...] that can otherwise be tuned
// and configured differently by the stakeholders".
struct ObjectiveWeights {
  double usage = 1.0;
  double downtime = 1.0;
  double migration = 1.0;
};

inline double weighted_aggregate(const ObjectiveVector& objectives,
                                 const ObjectiveWeights& weights) {
  return weights.usage * objectives.usage_cost +
         weights.downtime * objectives.downtime_cost +
         weights.migration * objectives.migration_cost;
}

struct ObjectiveOptions {
  // Charge E_j per hosted VM (paper's literal Eq. 22) instead of once per
  // used server.
  bool opex_per_vm = false;
  // Scale M_k by the spine-leaf hop distance between source and target
  // server (extension; longer moves cross more fabric tiers).
  bool topology_migration_weight = false;
};

struct Evaluation {
  ObjectiveVector objectives;
  ViolationReport violations;
};

// Evaluates placements against one instance.  Holds scratch matrices so a
// hot loop (EA population evaluation) performs no per-call allocation;
// create one Evaluator per thread.
class Evaluator {
 public:
  explicit Evaluator(const Instance& instance, ObjectiveOptions options = {});

  // Objectives + violations in one pass (loads are shared work).
  Evaluation evaluate(const Placement& placement);

  // Objectives only.
  ObjectiveVector objectives(const Placement& placement);

  // Post-evaluate inspection (valid until the next evaluate call).
  [[nodiscard]] const Matrix<double>& last_loads() const { return loads_; }
  [[nodiscard]] const Matrix<double>& last_qos() const { return qos_; }

  [[nodiscard]] const Instance& instance() const { return *instance_; }
  [[nodiscard]] const ObjectiveOptions& options() const { return options_; }

 private:
  void compute_objectives(const Placement& placement, ObjectiveVector& out);

  const Instance* instance_;
  ObjectiveOptions options_;
  ConstraintChecker checker_;
  Matrix<double> loads_;
  Matrix<double> qos_;
  std::vector<std::uint32_t> vms_on_server_;  // scratch: VM count per server
};

}  // namespace iaas
