// The three objective terms of the paper's global objective (Eq. 15):
//
//   1. usage & operating cost  (Eq. 22): exploitation cost E_j of the
//      servers put to use plus the usage cost U_j for each hosted VM;
//   2. downtime cost           (Eq. 23): SLA penalty C^U_k whenever the
//      QoS delivered to VM k falls below its guarantee C^Q_k, using the
//      load->QoS decay of Eq. 24;
//   3. migration cost          (Eq. 26): M_k for every VM the new plan
//      moves relative to the previous window's placement.
//
// Interpretation notes (documented deviations from the paper's literal
// formulas, see DESIGN.md §6):
//   * Eq. 22 literally sums E_j per hosted VM; we charge E_j once per
//     *used* server by default — that is what makes consolidation pay, a
//     stated goal of the paper ("reduce the number of servers").  The
//     literal per-VM reading is available via opex_per_vm (ablation).
//   * Eq. 23 literally scales with Q_jl/C^Q_k, which would *reward* QoS
//     degradation; we charge C^U_k * (1 - q/C^Q_k) for q below the
//     guarantee (penalty proportional to the shortfall) and zero above.
//
// The aggregate Z uses equal weights, as the paper does "without loss of
// generality".  The value types live in model/objective_types.h; the
// formulas themselves are implemented once, in the incremental
// PlacementState engine — the Evaluator here is its full-rebuild facade.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <utility>

#include "common/matrix.h"
#include "model/constraint_checker.h"
#include "model/instance.h"
#include "model/objective_types.h"
#include "model/placement.h"
#include "model/placement_state.h"

namespace iaas {

struct Evaluation {
  ObjectiveVector objectives;
  ViolationReport violations;
};

// Evaluates placements against one instance.  A thin wrapper that drives
// a full PlacementState rebuild per call; the state's accumulators double
// as reusable scratch, so a hot loop (EA population evaluation) performs
// no per-call allocation.  Create one Evaluator per thread; callers that
// score many single-VM relocations of the *same* placement should use
// state() and PlacementState::try_move instead of repeated full calls.
class Evaluator {
 public:
  // `tables` lets pooled evaluators share one immutable StateTables (the
  // instance-derived SoA flattening) instead of rebuilding it per state.
  explicit Evaluator(const Instance& instance, ObjectiveOptions options = {},
                     std::shared_ptr<const StateTables> tables = nullptr)
      : state_(instance, options, StateTracking::kFull, std::move(tables)) {}

  // Objectives + violations in one pass (loads are shared work).
  Evaluation evaluate(const Placement& placement) {
    return evaluate_genes(placement.genes());
  }

  // Same, straight from a gene vector (EA individuals) — avoids copying
  // the genes into a temporary Placement.
  Evaluation evaluate_genes(std::span<const std::int32_t> genes);

  // Objectives only.
  ObjectiveVector objectives(const Placement& placement);

  // Post-evaluate inspection (valid until the next evaluate call).
  [[nodiscard]] const Matrix<double>& last_loads() const {
    return state_.loads();
  }
  [[nodiscard]] const Matrix<double>& last_qos() const {
    return state_.qos();
  }

  // The underlying delta engine, positioned at the last evaluated
  // placement.
  [[nodiscard]] PlacementState& state() { return state_; }
  [[nodiscard]] const PlacementState& state() const { return state_; }

  [[nodiscard]] const Instance& instance() const {
    return state_.instance();
  }
  [[nodiscard]] const ObjectiveOptions& options() const {
    return state_.options();
  }

 private:
  PlacementState state_;
};

}  // namespace iaas
