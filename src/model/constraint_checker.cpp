#include "model/constraint_checker.h"

#include <algorithm>

#include "model/placement_state.h"

namespace iaas {

void ConstraintChecker::compute_used(const Placement& placement,
                                     Matrix<double>& used) const {
  const Instance& inst = *instance_;
  const std::size_t m = inst.m();
  const std::size_t h = inst.h();
  if (used.rows() != m || used.cols() != h) {
    used = Matrix<double>(m, h);
  } else {
    used.fill(0.0);
  }
  for (std::size_t k = 0; k < inst.n(); ++k) {
    if (!placement.is_assigned(k)) {
      continue;
    }
    const auto j = static_cast<std::size_t>(placement.server_of(k));
    const VmRequest& vm = inst.requests.vms[k];
    for (std::size_t l = 0; l < h; ++l) {
      used(j, l) += vm.demand[l];
    }
  }
}

ViolationReport ConstraintChecker::check(const Placement& placement) const {
  const Instance& inst = *instance_;
  IAAS_EXPECT(placement.vm_count() == inst.n(),
              "placement size mismatch with instance");

  ViolationReport report;
  report.rejected_vms =
      static_cast<std::uint32_t>(placement.rejected_count());

  Matrix<double> used;
  compute_used(placement, used);

  for (std::size_t j = 0; j < inst.m(); ++j) {
    const Server& server = inst.infra.server(j);
    bool overloaded = false;
    for (std::size_t l = 0; l < inst.h(); ++l) {
      if (used(j, l) > server.effective_capacity(l) + kCapacityEps) {
        ++report.capacity_violations;
        overloaded = true;
      }
    }
    if (overloaded) {
      report.overloaded_servers.push_back(static_cast<std::uint32_t>(j));
    }
  }

  for (const PlacementConstraint& c : inst.requests.constraints) {
    if (!relation_satisfied(c, placement)) {
      ++report.relation_violations;
    }
  }
  return report;
}

bool ConstraintChecker::relation_satisfied(const PlacementConstraint& c,
                                           const Placement& placement) const {
  const Instance& inst = *instance_;
  // Collect the assigned members; groups with < 2 placed members cannot be
  // violated.
  std::vector<std::int32_t> servers;
  servers.reserve(c.vms.size());
  for (std::uint32_t k : c.vms) {
    if (placement.is_assigned(k)) {
      servers.push_back(placement.server_of(k));
    }
  }
  if (servers.size() < 2) {
    return true;
  }

  switch (c.kind) {
    case RelationKind::kSameServer:
      return std::all_of(servers.begin(), servers.end(),
                         [&](std::int32_t s) { return s == servers[0]; });
    case RelationKind::kSameDatacenter: {
      const std::uint32_t dc0 =
          inst.infra.datacenter_of(static_cast<std::size_t>(servers[0]));
      return std::all_of(servers.begin(), servers.end(), [&](std::int32_t s) {
        return inst.infra.datacenter_of(static_cast<std::size_t>(s)) == dc0;
      });
    }
    case RelationKind::kDifferentServers: {
      std::vector<std::int32_t> sorted = servers;
      std::sort(sorted.begin(), sorted.end());
      return std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end();
    }
    case RelationKind::kDifferentDatacenters: {
      std::vector<std::uint32_t> dcs;
      dcs.reserve(servers.size());
      for (std::int32_t s : servers) {
        dcs.push_back(inst.infra.datacenter_of(static_cast<std::size_t>(s)));
      }
      std::sort(dcs.begin(), dcs.end());
      return std::adjacent_find(dcs.begin(), dcs.end()) == dcs.end();
    }
  }
  return true;
}

bool ConstraintChecker::is_valid_allocation(const Placement& placement,
                                            const Matrix<double>& used,
                                            std::size_t k,
                                            std::size_t j) const {
  const Instance& inst = *instance_;
  const Server& server = inst.infra.server(j);
  const VmRequest& vm = inst.requests.vms[k];

  // Capacity after adding k to j; if k is currently on j its demand is
  // already inside `used`, so only test the increment when moving in.
  const bool already_there =
      placement.is_assigned(k) &&
      static_cast<std::size_t>(placement.server_of(k)) == j;
  for (std::size_t l = 0; l < inst.h(); ++l) {
    const double add = already_there ? 0.0 : vm.demand[l];
    if (used(j, l) + add > server.effective_capacity(l) + kCapacityEps) {
      return false;
    }
  }

  // Relationship constraints involving k, against already-assigned peers.
  const std::uint32_t dc_j = inst.infra.datacenter_of(j);
  for (const PlacementConstraint& c : inst.requests.constraints) {
    if (std::find(c.vms.begin(), c.vms.end(),
                  static_cast<std::uint32_t>(k)) == c.vms.end()) {
      continue;
    }
    for (std::uint32_t peer : c.vms) {
      if (peer == k || !placement.is_assigned(peer)) {
        continue;
      }
      const auto peer_server =
          static_cast<std::size_t>(placement.server_of(peer));
      const std::uint32_t peer_dc = inst.infra.datacenter_of(peer_server);
      switch (c.kind) {
        case RelationKind::kSameServer:
          if (peer_server != j) {
            return false;
          }
          break;
        case RelationKind::kSameDatacenter:
          if (peer_dc != dc_j) {
            return false;
          }
          break;
        case RelationKind::kDifferentServers:
          if (peer_server == j) {
            return false;
          }
          break;
        case RelationKind::kDifferentDatacenters:
          if (peer_dc == dc_j) {
            return false;
          }
          break;
      }
    }
  }
  return true;
}

bool ConstraintChecker::is_valid_move(const PlacementState& state,
                                      std::size_t k, std::size_t j) const {
  return is_valid_allocation(state.placement(), state.used(), k, j);
}

}  // namespace iaas
