#include "model/validate.h"

#include <algorithm>

#include "model/attributes.h"
#include "model/constraint_checker.h"

namespace iaas {

std::vector<std::string> validate_instance(const Instance& instance) {
  std::vector<std::string> findings;
  const std::size_t h = instance.h();

  for (std::size_t j = 0; j < instance.m(); ++j) {
    const Server& server = instance.infra.server(j);
    if (!server.valid(h)) {
      findings.push_back("server " + std::to_string(j) +
                         ": record fails range validation");
    }
    // Called out separately from the generic range check: max_load == 1
    // hits the Eq. 24 singularity (QoS model divides by 1 - L^M), which
    // qos_at_load clamps at runtime but scenario authors should fix.
    for (std::size_t l = 0; l < server.max_load.size() && l < h; ++l) {
      if (!(server.max_load[l] < 1.0) || server.max_load[l] < 0.0) {
        findings.push_back("server " + std::to_string(j) + ": max_load[" +
                           attribute_name(l) +
                           "] outside [0,1) hits the Eq. 24 singularity");
      }
    }
  }
  if (!instance.requests.valid(h)) {
    findings.push_back("request set: VM records or constraint group"
                       " indices fail validation");
    return findings;  // further checks would index out of range
  }

  // Per-VM satisfiability: every request must fit at least one server on
  // its own, otherwise it can never be served.
  for (std::size_t k = 0; k < instance.n(); ++k) {
    const VmRequest& vm = instance.requests.vms[k];
    bool fits_somewhere = false;
    for (std::size_t j = 0; j < instance.m() && !fits_somewhere; ++j) {
      bool fits = true;
      for (std::size_t l = 0; l < h; ++l) {
        if (vm.demand[l] > instance.infra.server(j).effective_capacity(l)) {
          fits = false;
          break;
        }
      }
      fits_somewhere = fits;
    }
    if (!fits_somewhere) {
      findings.push_back("vm " + std::to_string(k) +
                         ": demand exceeds every server's capacity");
    }
  }

  // Group-level satisfiability screens.
  std::vector<double> max_eff(h, 0.0);
  for (std::size_t j = 0; j < instance.m(); ++j) {
    for (std::size_t l = 0; l < h; ++l) {
      max_eff[l] = std::max(max_eff[l],
                            instance.infra.server(j).effective_capacity(l));
    }
  }
  for (std::size_t c = 0; c < instance.requests.constraints.size(); ++c) {
    const PlacementConstraint& pc = instance.requests.constraints[c];
    const std::string tag = "constraint " + std::to_string(c);
    if (pc.kind == RelationKind::kDifferentDatacenters &&
        pc.vms.size() > instance.g()) {
      findings.push_back(tag + ": different-datacenters group of " +
                         std::to_string(pc.vms.size()) + " exceeds " +
                         std::to_string(instance.g()) + " datacenters");
    }
    if (pc.kind == RelationKind::kDifferentServers &&
        pc.vms.size() > instance.m()) {
      findings.push_back(tag + ": different-servers group exceeds the"
                         " server count");
    }
    if (pc.kind == RelationKind::kSameServer) {
      for (std::size_t l = 0; l < h; ++l) {
        double sum = 0.0;
        for (std::uint32_t k : pc.vms) {
          sum += instance.requests.vms[k].demand[l];
        }
        if (sum > max_eff[l]) {
          findings.push_back(tag + ": same-server group cannot fit any"
                             " server on attribute " + attribute_name(l));
          break;
        }
      }
    }
    // A VM in two groups with contradictory kinds is a modelling smell.
    for (std::size_t other = c + 1;
         other < instance.requests.constraints.size(); ++other) {
      const PlacementConstraint& oc = instance.requests.constraints[other];
      const bool conflict =
          (pc.kind == RelationKind::kSameServer &&
           oc.kind == RelationKind::kDifferentServers) ||
          (pc.kind == RelationKind::kDifferentServers &&
           oc.kind == RelationKind::kSameServer);
      if (!conflict) {
        continue;
      }
      std::size_t shared = 0;
      for (std::uint32_t k : pc.vms) {
        shared += static_cast<std::size_t>(
            std::count(oc.vms.begin(), oc.vms.end(), k));
      }
      if (shared >= 2) {
        findings.push_back(tag + ": shares >= 2 members with conflicting"
                           " constraint " + std::to_string(other));
      }
    }
  }

  // The previous placement must reference real servers and be feasible.
  if (instance.previous.vm_count() != instance.n()) {
    findings.push_back("previous placement: size mismatch");
  } else {
    bool in_range = true;
    for (std::size_t k = 0; k < instance.n(); ++k) {
      const std::int32_t j = instance.previous.server_of(k);
      if (j != Placement::kRejected &&
          (j < 0 || static_cast<std::size_t>(j) >= instance.m())) {
        findings.push_back("previous placement: vm " + std::to_string(k) +
                           " references unknown server");
        in_range = false;
      }
    }
    if (in_range &&
        !ConstraintChecker(instance).check(instance.previous).feasible()) {
      findings.push_back("previous placement: violates constraints");
    }
  }
  return findings;
}

}  // namespace iaas
