// Service-level availability analysis over placements.
//
// The paper's related-work critique of prior placement strategies is
// that they "target improving the availability of some resources, but
// neglect the availability of the whole services" — this module computes
// exactly that whole-service view: given independent per-server failure
// probabilities, the probability that an entire VM group (a service)
// survives, accounting for co-location (VMs sharing a server share its
// fate) and for the fabric's path redundancy between the group members.
#pragma once

#include <cstdint>
#include <vector>

#include "model/instance.h"
#include "model/placement.h"

namespace iaas {

struct ServiceAvailability {
  double all_up_probability = 1.0;   // every member VM up
  double any_up_probability = 0.0;   // at least one member up (replicas)
  std::size_t distinct_servers = 0;  // fault domains at host granularity
  std::size_t distinct_datacenters = 0;
  std::uint32_t min_path_redundancy = 0;  // weakest pairwise disjoint-path
                                          // count between member hosts
};

// Availability of one VM group under i.i.d. per-server failure
// probability `server_failure_probability`.  Rejected members count as
// down.  Group members on the same server fail together.
ServiceAvailability service_availability(const Instance& instance,
                                         const Placement& placement,
                                         const std::vector<std::uint32_t>& vms,
                                         double server_failure_probability);

// Aggregate report: one entry per relationship group of the instance,
// index-aligned with instance.requests.constraints.
std::vector<ServiceAvailability> placement_availability(
    const Instance& instance, const Placement& placement,
    double server_failure_probability);

}  // namespace iaas
