#include "model/fairness.h"

#include <algorithm>
#include <cstddef>

#include "common/expect.h"
#include "model/placement_state.h"

namespace iaas {
namespace {

// Dominant fleet fraction of one demand vector: the largest share of
// total effective capacity it claims on any attribute (DRF-style, so
// heterogeneous attribute units compare on one scale).
double dominant_size(const std::vector<double>& demand,
                     const std::vector<double>& totals) {
  double size = 0.0;
  for (std::size_t l = 0; l < demand.size(); ++l) {
    if (totals[l] > 0.0) {
      size = std::max(size, demand[l] / totals[l]);
    }
  }
  return size;
}

}  // namespace

double jain_index(std::span<const double> shares) {
  if (shares.empty()) {
    return 1.0;
  }
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : shares) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) {
    return 1.0;
  }
  return (sum * sum) / (static_cast<double>(shares.size()) * sum_sq);
}

double energy_cost(const Instance& instance, const PlacementState& state,
                   const EnergyModel& model) {
  const std::size_t m = instance.m();
  if (instance.h() == 0) {
    return 0.0;
  }
  std::vector<std::uint32_t> hosted(m, 0);
  for (std::int32_t gene : state.placement().genes()) {
    if (gene != Placement::kRejected) {
      ++hosted[static_cast<std::size_t>(gene)];
    }
  }
  double watts = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    if (hosted[j] == 0) {
      continue;  // server is powered off
    }
    const double cpu_load = std::min(1.0, state.loads()(j, 0));
    watts += model.watts_per_core * instance.infra.server(j).capacity[0] *
             (model.idle_fraction + (1.0 - model.idle_fraction) * cpu_load);
  }
  return watts;
}

FairnessReport compute_fairness(const Instance& instance,
                                const Placement& placement,
                                const FairnessConfig& config) {
  const std::size_t n = instance.n();
  const std::size_t h = instance.h();
  IAAS_EXPECT(placement.genes().size() == n,
              "fairness: placement size does not match instance");

  FairnessReport report;

  std::vector<double> totals(h, 0.0);
  for (std::size_t l = 0; l < h; ++l) {
    totals[l] = instance.infra.total_effective_capacity(l);
  }

  // Distinct consumer ids, ascending — the iteration order for every
  // sum below.
  std::vector<std::uint32_t> ids;
  ids.reserve(n);
  for (const VmRequest& vm : instance.requests.vms) {
    ids.push_back(vm.consumer);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());

  report.consumers.resize(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    report.consumers[i].consumer = ids[i];
  }

  double served_reported = 0.0;
  double served_actual = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const VmRequest& vm = instance.requests.vms[k];
    const std::size_t slot = static_cast<std::size_t>(
        std::lower_bound(ids.begin(), ids.end(), vm.consumer) - ids.begin());
    ConsumerShare& share = report.consumers[slot];
    const bool misreported = !vm.true_demand.empty();
    if (misreported) {
      share.strategic = true;
      ++report.strategic_vms;
    }
    const double actual = dominant_size(vm.actual_demand(), totals);
    share.requested += actual;
    if (placement.is_assigned(k)) {
      share.served += actual;
      served_actual += actual;
      served_reported += dominant_size(vm.demand, totals);
    }
  }

  std::vector<double> shares;
  shares.reserve(report.consumers.size());
  double honest_sum = 0.0;
  double strategic_sum = 0.0;
  std::uint32_t honest_count = 0;
  double max_welfare = 0.0;
  for (ConsumerShare& share : report.consumers) {
    share.welfare =
        share.requested > 0.0 ? share.served / share.requested : 1.0;
    shares.push_back(share.served);
    if (share.strategic) {
      ++report.strategic_consumers;
      strategic_sum += share.welfare;
    } else {
      ++honest_count;
      honest_sum += share.welfare;
    }
    max_welfare = std::max(max_welfare, share.welfare);
  }
  report.jain = jain_index(shares);
  if (honest_count > 0) {
    report.honest_welfare = honest_sum / static_cast<double>(honest_count);
  }
  if (report.strategic_consumers > 0) {
    report.strategic_welfare =
        strategic_sum / static_cast<double>(report.strategic_consumers);
  }
  if (!report.consumers.empty()) {
    double envy_sum = 0.0;
    for (const ConsumerShare& share : report.consumers) {
      envy_sum += std::max(0.0, max_welfare - share.welfare);
    }
    report.envy = envy_sum / static_cast<double>(report.consumers.size());
  }
  report.utilization_efficiency =
      served_reported > 0.0 ? served_actual / served_reported : 1.0;

  PlacementState state(instance);
  state.rebuild(placement);
  report.energy_cost = energy_cost(instance, state, config.energy);
  return report;
}

}  // namespace iaas
