// A consumer (requested) resource — a virtual machine, carrying the
// per-VM rows of the paper's matrices and vectors:
//   demand[l]       = C_kl  (Eq. 2)  requested capacity per attribute
//   qos_guarantee   = C^Q_k          QoS level the provider must uphold
//   downtime_cost   = C^U_k          penalty per QoS/SLA violation
//   migration_cost  = M_k   (Eq.26)  cost of moving this VM in a plan
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace iaas {

struct VmRequest {
  std::vector<double> demand;     // C_kl >= 0 (as reported by the consumer)
  double qos_guarantee = 0.9;     // C^Q_k in (0, 1)
  double downtime_cost = 0.0;     // C^U_k >= 0
  double migration_cost = 0.0;    // M_k >= 0

  // Owning consumer (tenant).  Always 0 in legacy anonymous scenarios
  // (ScenarioConfig::consumers == 0), where fairness metrics are off.
  std::uint32_t consumer = 0;

  // Honest demand vector when the consumer misreported (strategic
  // mode); empty means demand is truthful.  Allocators never look at
  // this — only the fairness metrics layer does.
  std::vector<double> true_demand;

  [[nodiscard]] std::size_t attribute_count() const { return demand.size(); }

  // What the VM actually needs: true_demand if the consumer lied,
  // otherwise the reported demand.
  [[nodiscard]] const std::vector<double>& actual_demand() const {
    return true_demand.empty() ? demand : true_demand;
  }

  [[nodiscard]] bool valid(std::size_t h) const {
    if (demand.size() != h) {
      return false;
    }
    for (double d : demand) {
      if (d < 0.0) {
        return false;
      }
    }
    if (!true_demand.empty()) {
      if (true_demand.size() != h) {
        return false;
      }
      for (double d : true_demand) {
        if (d < 0.0) {
          return false;
        }
      }
    }
    return qos_guarantee > 0.0 && qos_guarantee < 1.0 &&
           downtime_cost >= 0.0 && migration_cost >= 0.0;
  }
};

}  // namespace iaas
