#include "model/availability.h"

#include <algorithm>
#include <limits>

#include "common/expect.h"

namespace iaas {

ServiceAvailability service_availability(
    const Instance& instance, const Placement& placement,
    const std::vector<std::uint32_t>& vms,
    double server_failure_probability) {
  IAAS_EXPECT(server_failure_probability >= 0.0 &&
                  server_failure_probability <= 1.0,
              "failure probability must be in [0,1]");
  ServiceAvailability out;

  // Collect the distinct hosting servers; a rejected member makes
  // "all up" impossible.
  std::vector<std::uint32_t> servers;
  bool any_rejected = false;
  for (std::uint32_t k : vms) {
    IAAS_EXPECT(k < instance.n(), "vm index out of range");
    if (!placement.is_assigned(k)) {
      any_rejected = true;
      continue;
    }
    servers.push_back(static_cast<std::uint32_t>(placement.server_of(k)));
  }
  std::sort(servers.begin(), servers.end());
  servers.erase(std::unique(servers.begin(), servers.end()), servers.end());

  out.distinct_servers = servers.size();
  std::vector<std::uint32_t> dcs;
  for (std::uint32_t j : servers) {
    dcs.push_back(instance.infra.datacenter_of(j));
  }
  std::sort(dcs.begin(), dcs.end());
  dcs.erase(std::unique(dcs.begin(), dcs.end()), dcs.end());
  out.distinct_datacenters = dcs.size();

  const double up = 1.0 - server_failure_probability;
  if (servers.empty()) {
    out.all_up_probability = any_rejected ? 0.0 : 1.0;
    out.any_up_probability = 0.0;
    out.min_path_redundancy = 0;
    return out;
  }

  // Independent server failures; co-located members share their host's
  // fate, so both quantities depend only on the distinct host set.
  double all_up = 1.0;
  double all_down = 1.0;
  for (std::size_t i = 0; i < servers.size(); ++i) {
    all_up *= up;
    all_down *= server_failure_probability;
  }
  out.all_up_probability = any_rejected ? 0.0 : all_up;
  out.any_up_probability = 1.0 - all_down;

  // Weakest pairwise network redundancy between member hosts.
  if (servers.size() < 2) {
    out.min_path_redundancy =
        servers.empty() ? 0
                        : instance.infra.fabric().path_redundancy(
                              servers[0], servers[0]);
  } else {
    std::uint32_t weakest = std::numeric_limits<std::uint32_t>::max();
    for (std::size_t a = 0; a < servers.size(); ++a) {
      for (std::size_t b = a + 1; b < servers.size(); ++b) {
        weakest = std::min(weakest, instance.infra.fabric().path_redundancy(
                                        servers[a], servers[b]));
      }
    }
    out.min_path_redundancy = weakest;
  }
  return out;
}

std::vector<ServiceAvailability> placement_availability(
    const Instance& instance, const Placement& placement,
    double server_failure_probability) {
  std::vector<ServiceAvailability> out;
  out.reserve(instance.requests.constraints.size());
  for (const PlacementConstraint& c : instance.requests.constraints) {
    out.push_back(service_availability(instance, placement, c.vms,
                                       server_failure_probability));
  }
  return out;
}

}  // namespace iaas
