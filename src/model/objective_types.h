// Value types of the paper's global objective (Eq. 15): the three cost
// terms, the stakeholder weights, and the evaluation options shared by
// the full Evaluator and the incremental PlacementState engine.
#pragma once

#include <array>
#include <cstddef>

namespace iaas {

struct ObjectiveVector {
  static constexpr std::size_t kCount = 3;

  double usage_cost = 0.0;      // term 1, Eq. 22
  double downtime_cost = 0.0;   // term 2, Eq. 23
  double migration_cost = 0.0;  // term 3, Eq. 26

  [[nodiscard]] double aggregate() const {
    return usage_cost + downtime_cost + migration_cost;
  }
  [[nodiscard]] std::array<double, kCount> as_array() const {
    return {usage_cost, downtime_cost, migration_cost};
  }
};

// Stakeholder-tunable objective weights — the paper assigns equal
// weights "without loss of generality [...] that can otherwise be tuned
// and configured differently by the stakeholders".
struct ObjectiveWeights {
  double usage = 1.0;
  double downtime = 1.0;
  double migration = 1.0;
};

inline double weighted_aggregate(const ObjectiveVector& objectives,
                                 const ObjectiveWeights& weights) {
  return weights.usage * objectives.usage_cost +
         weights.downtime * objectives.downtime_cost +
         weights.migration * objectives.migration_cost;
}

struct ObjectiveOptions {
  // Charge E_j per hosted VM (paper's literal Eq. 22) instead of once per
  // used server.
  bool opex_per_vm = false;
  // Scale M_k by the spine-leaf hop distance between source and target
  // server (extension; longer moves cross more fabric tiers).
  bool topology_migration_weight = false;
};

}  // namespace iaas
