#include "model/assignment_units.h"

#include <algorithm>
#include <numeric>

namespace iaas {
namespace {

// Union-find over VM indices with path halving.
std::uint32_t find_root(std::vector<std::uint32_t>& parent, std::uint32_t v) {
  while (parent[v] != v) {
    parent[v] = parent[parent[v]];
    v = parent[v];
  }
  return v;
}

}  // namespace

std::vector<std::vector<std::uint32_t>> assignment_units(
    const RequestSet& requests) {
  const auto n = static_cast<std::uint32_t>(requests.vm_count());
  std::vector<std::uint32_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0U);
  for (const PlacementConstraint& c : requests.constraints) {
    for (std::size_t i = 1; i < c.vms.size(); ++i) {
      const std::uint32_t a = find_root(parent, c.vms[0]);
      const std::uint32_t b = find_root(parent, c.vms[i]);
      if (a != b) {
        parent[std::max(a, b)] = std::min(a, b);
      }
    }
  }
  // Roots in ascending order = units ordered by smallest member.
  std::vector<std::vector<std::uint32_t>> units;
  std::vector<std::int32_t> unit_of(n, -1);
  for (std::uint32_t v = 0; v < n; ++v) {
    const std::uint32_t root = find_root(parent, v);
    if (unit_of[root] < 0) {
      unit_of[root] = static_cast<std::int32_t>(units.size());
      units.emplace_back();
    }
    units[static_cast<std::size_t>(unit_of[root])].push_back(v);
  }
  return units;
}

}  // namespace iaas
