// Constraint-programming solver over the allocation model — the
// substitute for the paper's Choco baseline (DESIGN.md §4).
//
// Complete depth-first search with:
//   * forward checking through ConstraintChecker::is_valid_allocation
//     (capacity + affinity/anti-affinity against assigned peers);
//   * first-fail variable ordering (same-server group members first, then
//     largest relative demand);
//   * cheapest-incremental-cost value ordering;
//   * branch-and-bound on the linear cost (usage + exploitation +
//     migration, the ILP objective of LinModel) with a per-VM lower bound;
//   * a wall-clock deadline and a backtrack budget — the paper requires
//     answers "in a very short timeframe (<2mn)".
//
// When the search cannot complete within budget, the solver returns its
// best incumbent; if no complete feasible assignment was ever reached it
// falls back to greedy first-fit and *rejects* the requests it cannot
// place — mirroring the paper's observation that the constraint-
// programming baseline "rejects a greater number of demands".
#pragma once

#include <cstdint>
#include <limits>

#include "common/stopwatch.h"
#include "model/instance.h"
#include "model/placement.h"

namespace iaas {

struct CpSolverOptions {
  double time_limit_seconds = 120.0;
  std::uint64_t max_backtracks = 200000;
  bool optimize = true;  // keep searching for cheaper solutions after the
                         // first feasible one (branch & bound)
};

struct CpStats {
  std::uint64_t nodes = 0;
  std::uint64_t backtracks = 0;
  bool found_complete = false;  // a placement assigning every VM
  bool proved_optimal = false;  // search space exhausted under pruning
  bool timed_out = false;
  double best_cost = std::numeric_limits<double>::infinity();
};

class CpSolver {
 public:
  CpSolver(const Instance& instance, CpSolverOptions options = {});

  // Solve; never fails — worst case returns the greedy fallback with
  // rejections.  Stats are optional.
  Placement solve(CpStats* stats = nullptr);

  // The greedy first-fit-by-cost fallback, exposed for tests and for the
  // Round-Robin comparison's cost ordering.
  Placement greedy_with_rejection() const;

 private:
  struct SearchContext;
  bool dfs(SearchContext& ctx, std::size_t depth);

  // Linear incremental cost of hosting VM k on server j given which
  // servers are already in use.
  [[nodiscard]] double incremental_cost(std::size_t k, std::size_t j,
                                        bool server_used) const;

  const Instance* instance_;
  CpSolverOptions options_;
  std::vector<std::uint32_t> vm_order_;      // first-fail ordering
  std::vector<double> remaining_lb_;         // suffix lower bounds over vm_order_
};

}  // namespace iaas
