// Propagation-based CP solver — the Choco-style engine (DESIGN.md §4):
// finite domains of candidate servers per VM, constraint propagation to
// a fixpoint after every decision, first-fail (min-domain) variable
// selection, and the same branch-and-bound cost machinery as CpSolver.
//
// Propagators:
//   * capacity — when a VM commits to a server, every unassigned VM
//     whose demand no longer fits the residual loses that server;
//   * same-server — members' domains intersect; an assignment collapses
//     the whole group;
//   * same-datacenter — an assignment restricts members to that DC;
//   * different-servers — an assignment removes the server from peers;
//   * different-datacenters — an assignment removes the whole DC.
//
// Domain wipeout fails the node immediately — the filtering this buys
// over CpSolver's forward checking is measured by
// bench/ablation_cp_propagation.
#pragma once

#include "lp/cp_solver.h"
#include "lp/domain_store.h"
#include "model/instance.h"
#include "model/placement.h"

namespace iaas {

class PropagatingCpSolver {
 public:
  explicit PropagatingCpSolver(const Instance& instance,
                               CpSolverOptions options = {});

  // Same contract as CpSolver::solve — never fails; falls back to
  // greedy-with-rejection if no complete feasible assignment was found.
  Placement solve(CpStats* stats = nullptr);

 private:
  struct SearchState;

  // Commit VM k to server j and propagate to fixpoint.
  // Returns false on domain wipeout / capacity failure.
  bool propagate_assignment(SearchState& state, std::size_t k,
                            std::size_t j);
  bool dfs(SearchState& state, std::size_t assigned_count);

  [[nodiscard]] double incremental_cost(std::size_t k, std::size_t j,
                                        bool server_used) const;

  const Instance* instance_;
  CpSolverOptions options_;
  // Constraint groups indexed per VM for O(groups-of-k) propagation.
  std::vector<std::vector<std::uint32_t>> groups_of_vm_;
};

}  // namespace iaas
