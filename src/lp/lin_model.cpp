#include "lp/lin_model.h"

#include "common/expect.h"

namespace iaas {

LinModel::LinModel(const Instance& instance) : instance_(&instance) {
  build();
}

VarId LinModel::x(std::size_t j, std::size_t k) const {
  IAAS_DEBUG_EXPECT(j < instance_->m() && k < instance_->n(),
                    "x variable out of range");
  return {static_cast<std::uint32_t>(j * instance_->n() + k)};
}

VarId LinModel::y(std::size_t j) const {
  IAAS_DEBUG_EXPECT(j < instance_->m(), "y variable out of range");
  return {static_cast<std::uint32_t>(instance_->m() * instance_->n() + j)};
}

void LinModel::build() {
  const Instance& inst = *instance_;
  const std::size_t m = inst.m();
  const std::size_t n = inst.n();
  const std::size_t h = inst.h();
  var_count_ = m * n + m;

  // Capacity (Eq. 16) per (server, attribute).
  for (std::size_t j = 0; j < m; ++j) {
    const Server& server = inst.infra.server(j);
    for (std::size_t l = 0; l < h; ++l) {
      LinConstraint c;
      for (std::size_t k = 0; k < n; ++k) {
        const double demand = inst.requests.vms[k].demand[l];
        if (demand > 0.0) {
          c.lhs.add(x(j, k), demand);
        }
      }
      c.relation = Relation::kLessEqual;
      c.rhs = server.effective_capacity(l);
      c.name = "capacity[j=" + std::to_string(j) +
               ",l=" + std::to_string(l) + "]";
      constraints_.push_back(std::move(c));
    }
  }

  // Assignment (Eq. 17) per VM.
  for (std::size_t k = 0; k < n; ++k) {
    LinConstraint c;
    for (std::size_t j = 0; j < m; ++j) {
      c.lhs.add(x(j, k), 1.0);
    }
    c.relation = Relation::kEqual;
    c.rhs = 1.0;
    c.name = "assign[k=" + std::to_string(k) + "]";
    constraints_.push_back(std::move(c));
  }

  // Linking x[j][k] <= y[j].
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t k = 0; k < n; ++k) {
      LinConstraint c;
      c.lhs.add(x(j, k), 1.0);
      c.lhs.add(y(j), -1.0);
      c.relation = Relation::kLessEqual;
      c.rhs = 0.0;
      c.name = "link[j=" + std::to_string(j) + ",k=" + std::to_string(k) + "]";
      constraints_.push_back(std::move(c));
    }
  }

  // Relationship constraints (Eqs. 18-21, linearised per Eqs. 13-14: the
  // quadratic "all on one server" products become pairwise equalities).
  for (std::size_t ci = 0; ci < inst.requests.constraints.size(); ++ci) {
    const PlacementConstraint& pc = inst.requests.constraints[ci];
    const std::string tag = "rel" + std::to_string(ci);
    switch (pc.kind) {
      case RelationKind::kSameServer:
        for (std::size_t a = 1; a < pc.vms.size(); ++a) {
          for (std::size_t j = 0; j < m; ++j) {
            LinConstraint c;
            c.lhs.add(x(j, pc.vms[0]), 1.0);
            c.lhs.add(x(j, pc.vms[a]), -1.0);
            c.relation = Relation::kEqual;
            c.rhs = 0.0;
            c.name = tag + ".same-server[j=" + std::to_string(j) + "]";
            constraints_.push_back(std::move(c));
          }
        }
        break;
      case RelationKind::kSameDatacenter:
        for (std::size_t a = 1; a < pc.vms.size(); ++a) {
          for (std::size_t dc = 0; dc < inst.g(); ++dc) {
            LinConstraint c;
            for (std::size_t j = 0; j < m; ++j) {
              if (inst.infra.datacenter_of(j) == dc) {
                c.lhs.add(x(j, pc.vms[0]), 1.0);
                c.lhs.add(x(j, pc.vms[a]), -1.0);
              }
            }
            c.relation = Relation::kEqual;
            c.rhs = 0.0;
            c.name = tag + ".same-dc[dc=" + std::to_string(dc) + "]";
            constraints_.push_back(std::move(c));
          }
        }
        break;
      case RelationKind::kDifferentServers:
        for (std::size_t j = 0; j < m; ++j) {
          LinConstraint c;
          for (std::uint32_t k : pc.vms) {
            c.lhs.add(x(j, k), 1.0);
          }
          c.relation = Relation::kLessEqual;
          c.rhs = 1.0;
          c.name = tag + ".diff-server[j=" + std::to_string(j) + "]";
          constraints_.push_back(std::move(c));
        }
        break;
      case RelationKind::kDifferentDatacenters:
        for (std::size_t dc = 0; dc < inst.g(); ++dc) {
          LinConstraint c;
          for (std::uint32_t k : pc.vms) {
            for (std::size_t j = 0; j < m; ++j) {
              if (inst.infra.datacenter_of(j) == dc) {
                c.lhs.add(x(j, k), 1.0);
              }
            }
          }
          c.relation = Relation::kLessEqual;
          c.rhs = 1.0;
          c.name = tag + ".diff-dc[dc=" + std::to_string(dc) + "]";
          constraints_.push_back(std::move(c));
        }
        break;
    }
  }

  // Objective: usage + exploitation (Eq. 22) + migration (Eq. 26).
  for (std::size_t j = 0; j < m; ++j) {
    const Server& server = inst.infra.server(j);
    objective_.add(y(j), server.opex);
    for (std::size_t k = 0; k < n; ++k) {
      double coeff = server.usage_cost;
      if (inst.previous.is_assigned(k) &&
          inst.previous.server_of(k) != static_cast<std::int32_t>(j)) {
        coeff += inst.requests.vms[k].migration_cost;
      }
      objective_.add(x(j, k), coeff);
    }
  }
}

std::vector<double> LinModel::encode(const Placement& placement) const {
  const Instance& inst = *instance_;
  std::vector<double> assignment(var_count_, 0.0);
  for (std::size_t k = 0; k < inst.n(); ++k) {
    if (!placement.is_assigned(k)) {
      continue;
    }
    const auto j = static_cast<std::size_t>(placement.server_of(k));
    assignment[x(j, k).index] = 1.0;
    assignment[y(j).index] = 1.0;
  }
  return assignment;
}

std::size_t LinModel::violated_count(
    const std::vector<double>& assignment) const {
  std::size_t violated = 0;
  for (const LinConstraint& c : constraints_) {
    if (!c.satisfied(assignment)) {
      ++violated;
    }
  }
  return violated;
}

}  // namespace iaas
