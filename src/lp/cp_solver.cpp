#include "lp/cp_solver.h"

#include <algorithm>
#include <numeric>

#include "common/expect.h"
#include "model/constraint_checker.h"

namespace iaas {
namespace {

double migration_cost(const Instance& inst, std::size_t k, std::size_t j) {
  if (inst.previous.is_assigned(k) &&
      inst.previous.server_of(k) != static_cast<std::int32_t>(j)) {
    return inst.requests.vms[k].migration_cost;
  }
  return 0.0;
}

}  // namespace

struct CpSolver::SearchContext {
  ConstraintChecker checker;
  Placement placement;
  Matrix<double> used;
  std::vector<std::uint32_t> vms_on_server;
  double cost = 0.0;

  Placement best;
  double best_cost = std::numeric_limits<double>::infinity();
  bool found_complete = false;

  Deadline deadline;
  std::uint64_t backtrack_budget = 0;
  CpStats stats;

  explicit SearchContext(const Instance& inst)
      : checker(inst),
        placement(inst.n()),
        used(inst.m(), inst.h()),
        vms_on_server(inst.m(), 0),
        best(inst.n()) {}
};

CpSolver::CpSolver(const Instance& instance, CpSolverOptions options)
    : instance_(&instance), options_(options) {
  const Instance& inst = *instance_;
  const std::size_t n = inst.n();
  const std::size_t m = inst.m();

  // First-fail ordering: members of same-server groups first (they have
  // the tightest coupled domains), then by largest relative demand.
  std::vector<int> grouped(n, 0);
  for (const PlacementConstraint& c : inst.requests.constraints) {
    if (c.kind == RelationKind::kSameServer) {
      for (std::uint32_t k : c.vms) {
        grouped[k] = 2;
      }
    } else {
      for (std::uint32_t k : c.vms) {
        grouped[k] = std::max(grouped[k], 1);
      }
    }
  }
  std::vector<double> tightness(n, 0.0);
  std::vector<double> mean_capacity(inst.h(), 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t l = 0; l < inst.h(); ++l) {
      mean_capacity[l] += inst.infra.server(j).effective_capacity(l);
    }
  }
  for (double& c : mean_capacity) {
    c /= static_cast<double>(m);
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t l = 0; l < inst.h(); ++l) {
      tightness[k] = std::max(
          tightness[k], inst.requests.vms[k].demand[l] / mean_capacity[l]);
    }
  }
  vm_order_.resize(n);
  std::iota(vm_order_.begin(), vm_order_.end(), 0u);
  std::stable_sort(vm_order_.begin(), vm_order_.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     if (grouped[a] != grouped[b]) {
                       return grouped[a] > grouped[b];
                     }
                     return tightness[a] > tightness[b];
                   });

  // Keep same-server group members adjacent so the group collapses to a
  // single server choice early in the search.
  std::vector<char> seen(n, 0);
  std::vector<std::uint32_t> reordered;
  reordered.reserve(n);
  for (std::uint32_t k : vm_order_) {
    if (seen[k] != 0) {
      continue;
    }
    reordered.push_back(k);
    seen[k] = 1;
    for (const PlacementConstraint& c : inst.requests.constraints) {
      if (c.kind != RelationKind::kSameServer) {
        continue;
      }
      if (std::find(c.vms.begin(), c.vms.end(), k) == c.vms.end()) {
        continue;
      }
      for (std::uint32_t peer : c.vms) {
        if (seen[peer] == 0) {
          reordered.push_back(peer);
          seen[peer] = 1;
        }
      }
    }
  }
  vm_order_ = std::move(reordered);

  // Suffix lower bound on the remaining linear cost: every still-unplaced
  // VM pays at least the fleet-minimum usage cost (migration and opex can
  // be zero).
  double min_usage = std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < m; ++j) {
    min_usage = std::min(min_usage, inst.infra.server(j).usage_cost);
  }
  remaining_lb_.assign(n + 1, 0.0);
  for (std::size_t d = n; d-- > 0;) {
    remaining_lb_[d] = remaining_lb_[d + 1] + min_usage;
  }
}

double CpSolver::incremental_cost(std::size_t k, std::size_t j,
                                  bool server_used) const {
  const Server& server = instance_->infra.server(j);
  double cost = server.usage_cost + migration_cost(*instance_, k, j);
  if (!server_used) {
    cost += server.opex;
  }
  return cost;
}

bool CpSolver::dfs(SearchContext& ctx, std::size_t depth) {
  // Return value: true = abort search (budget exhausted), false = keep
  // exploring siblings.
  const Instance& inst = *instance_;
  if (ctx.deadline.expired()) {
    ctx.stats.timed_out = true;
    return true;
  }

  if (depth == vm_order_.size()) {
    ctx.stats.found_complete = true;
    if (ctx.cost < ctx.best_cost) {
      ctx.best_cost = ctx.cost;
      ctx.best = ctx.placement;
      ctx.found_complete = true;
    }
    // Complete leaf: with optimisation off, stop at the first solution.
    return !options_.optimize;
  }

  ++ctx.stats.nodes;
  const std::uint32_t k = vm_order_[depth];

  // Candidate servers ordered by incremental linear cost.
  struct Candidate {
    std::uint32_t server;
    double cost;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(inst.m());
  for (std::size_t j = 0; j < inst.m(); ++j) {
    if (!ctx.checker.is_valid_allocation(ctx.placement, ctx.used, k, j)) {
      continue;
    }
    candidates.push_back({static_cast<std::uint32_t>(j),
                          incremental_cost(k, j, ctx.vms_on_server[j] > 0)});
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.cost < b.cost;
                   });

  for (const Candidate& cand : candidates) {
    // Bound: partial cost + candidate + optimistic remainder.
    if (ctx.cost + cand.cost + remaining_lb_[depth + 1] >= ctx.best_cost) {
      break;  // candidates are cost-sorted; the rest only gets worse
    }
    const std::size_t j = cand.server;
    ctx.placement.assign(k, static_cast<std::int32_t>(j));
    ++ctx.vms_on_server[j];
    for (std::size_t l = 0; l < inst.h(); ++l) {
      ctx.used(j, l) += inst.requests.vms[k].demand[l];
    }
    ctx.cost += cand.cost;

    const bool abort = dfs(ctx, depth + 1);

    ctx.cost -= cand.cost;
    for (std::size_t l = 0; l < inst.h(); ++l) {
      ctx.used(j, l) -= inst.requests.vms[k].demand[l];
    }
    --ctx.vms_on_server[j];
    ctx.placement.reject(k);

    if (abort) {
      return true;
    }
    ++ctx.stats.backtracks;
    if (ctx.stats.backtracks >= ctx.backtrack_budget) {
      return true;
    }
  }
  return false;
}

Placement CpSolver::solve(CpStats* stats) {
  SearchContext ctx(*instance_);
  ctx.deadline = Deadline::after_seconds(options_.time_limit_seconds);
  ctx.backtrack_budget = options_.max_backtracks;

  const bool aborted = dfs(ctx, 0);
  ctx.stats.proved_optimal = !aborted && ctx.found_complete;
  ctx.stats.best_cost = ctx.best_cost;

  Placement result = ctx.found_complete ? ctx.best : greedy_with_rejection();
  if (stats != nullptr) {
    *stats = ctx.stats;
  }
  return result;
}

Placement CpSolver::greedy_with_rejection() const {
  const Instance& inst = *instance_;
  ConstraintChecker checker(inst);
  Placement placement(inst.n());
  Matrix<double> used(inst.m(), inst.h());
  std::vector<std::uint32_t> vms_on_server(inst.m(), 0);

  for (std::uint32_t k : vm_order_) {
    double best_cost = std::numeric_limits<double>::infinity();
    std::int32_t best_server = Placement::kRejected;
    for (std::size_t j = 0; j < inst.m(); ++j) {
      if (!checker.is_valid_allocation(placement, used, k, j)) {
        continue;
      }
      const double c = incremental_cost(k, j, vms_on_server[j] > 0);
      if (c < best_cost) {
        best_cost = c;
        best_server = static_cast<std::int32_t>(j);
      }
    }
    if (best_server == Placement::kRejected) {
      continue;  // reject: no feasible host under the partial assignment
    }
    const auto j = static_cast<std::size_t>(best_server);
    placement.assign(k, best_server);
    ++vms_on_server[j];
    for (std::size_t l = 0; l < inst.h(); ++l) {
      used(j, l) += inst.requests.vms[k].demand[l];
    }
  }
  return placement;
}

}  // namespace iaas
