// Backtrackable finite-domain store for the propagating CP solver: one
// bitset domain of candidate servers per VM, with a trail so the search
// can roll back removals in O(#changes).
#pragma once

#include <cstdint>
#include <vector>

#include "common/expect.h"

namespace iaas {

class DomainStore {
 public:
  DomainStore(std::size_t vms, std::size_t servers);

  [[nodiscard]] std::size_t vm_count() const { return sizes_.size(); }
  [[nodiscard]] std::size_t server_count() const { return servers_; }

  [[nodiscard]] bool contains(std::size_t vm, std::size_t server) const {
    IAAS_DEBUG_EXPECT(vm < sizes_.size() && server < servers_,
                      "domain index out of range");
    return (words_[vm * stride_ + server / 64] >> (server % 64) & 1u) != 0;
  }
  [[nodiscard]] std::size_t size(std::size_t vm) const { return sizes_[vm]; }
  [[nodiscard]] bool empty(std::size_t vm) const { return sizes_[vm] == 0; }

  // Remove one value; records it on the trail. No-op if absent.
  void remove(std::size_t vm, std::size_t server);

  // Reduce dom(vm) to {server}; every other value is trailed. The value
  // must currently be in the domain.
  void assign(std::size_t vm, std::size_t server);

  // The single remaining value (domain must be a singleton).
  [[nodiscard]] std::size_t single_value(std::size_t vm) const;

  // Iterate the current values of dom(vm) into `out` (cleared first).
  void values(std::size_t vm, std::vector<std::uint32_t>& out) const;

  // Trail management.
  [[nodiscard]] std::size_t checkpoint() const { return trail_.size(); }
  void rollback(std::size_t mark);

 private:
  void set_bit(std::size_t vm, std::size_t server) {
    words_[vm * stride_ + server / 64] |= (std::uint64_t{1} << (server % 64));
  }
  void clear_bit(std::size_t vm, std::size_t server) {
    words_[vm * stride_ + server / 64] &=
        ~(std::uint64_t{1} << (server % 64));
  }

  std::size_t servers_;
  std::size_t stride_;  // 64-bit words per VM
  std::vector<std::uint64_t> words_;
  std::vector<std::size_t> sizes_;
  std::vector<std::uint64_t> trail_;  // packed (vm << 32 | server)
};

}  // namespace iaas
