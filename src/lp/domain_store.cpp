#include "lp/domain_store.h"

namespace iaas {

DomainStore::DomainStore(std::size_t vms, std::size_t servers)
    : servers_(servers),
      stride_((servers + 63) / 64),
      words_(vms * stride_, 0),
      sizes_(vms, servers) {
  IAAS_EXPECT(vms > 0 && servers > 0, "empty domain store");
  for (std::size_t vm = 0; vm < vms; ++vm) {
    for (std::size_t w = 0; w < stride_; ++w) {
      words_[vm * stride_ + w] = ~std::uint64_t{0};
    }
    // Mask off the bits beyond server_count in the last word.
    const std::size_t spill = stride_ * 64 - servers;
    if (spill > 0) {
      words_[vm * stride_ + stride_ - 1] >>= spill;
    }
  }
}

void DomainStore::remove(std::size_t vm, std::size_t server) {
  if (!contains(vm, server)) {
    return;
  }
  clear_bit(vm, server);
  --sizes_[vm];
  trail_.push_back((static_cast<std::uint64_t>(vm) << 32) | server);
}

void DomainStore::assign(std::size_t vm, std::size_t server) {
  IAAS_EXPECT(contains(vm, server), "assigning a removed value");
  for (std::size_t w = 0; w < stride_; ++w) {
    std::uint64_t word = words_[vm * stride_ + w];
    while (word != 0) {
      const auto bit = static_cast<std::size_t>(__builtin_ctzll(word));
      word &= word - 1;
      const std::size_t value = w * 64 + bit;
      if (value != server) {
        remove(vm, value);
      }
    }
  }
}

std::size_t DomainStore::single_value(std::size_t vm) const {
  IAAS_EXPECT(sizes_[vm] == 1, "domain is not a singleton");
  for (std::size_t w = 0; w < stride_; ++w) {
    const std::uint64_t word = words_[vm * stride_ + w];
    if (word != 0) {
      return w * 64 + static_cast<std::size_t>(__builtin_ctzll(word));
    }
  }
  IAAS_EXPECT(false, "corrupt domain");
  return 0;
}

void DomainStore::values(std::size_t vm,
                         std::vector<std::uint32_t>& out) const {
  out.clear();
  for (std::size_t w = 0; w < stride_; ++w) {
    std::uint64_t word = words_[vm * stride_ + w];
    while (word != 0) {
      const auto bit = static_cast<std::size_t>(__builtin_ctzll(word));
      word &= word - 1;
      out.push_back(static_cast<std::uint32_t>(w * 64 + bit));
    }
  }
}

void DomainStore::rollback(std::size_t mark) {
  IAAS_EXPECT(mark <= trail_.size(), "rollback past the trail");
  while (trail_.size() > mark) {
    const std::uint64_t entry = trail_.back();
    trail_.pop_back();
    const auto vm = static_cast<std::size_t>(entry >> 32);
    const auto server = static_cast<std::size_t>(entry & 0xffffffffu);
    set_bit(vm, server);
    ++sizes_[vm];
  }
}

}  // namespace iaas
