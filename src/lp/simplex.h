// Dense two-phase primal simplex for linear programs in the form
//
//     minimise  c^T x
//     subject to  a_i^T x  {<=, =, >=}  b_i      (i = 1..m)
//                 x >= 0
//
// Used to solve the LP relaxation of the allocation ILP (LinModel):
// the relaxation's optimum is a certified lower bound on any integral
// allocation cost, which the optimality-gap bench grades the heuristics
// against.  Dense tableau with Bland's anti-cycling rule — sized for the
// small/medium instances where such certificates are interesting, not
// for the 800-server scale (that is the point of Fig. 8).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lp/lin_expr.h"

namespace iaas {

enum class LpStatus : std::uint8_t {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

std::string lp_status_name(LpStatus status);

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;  // per structural variable
  std::size_t iterations = 0;
};

class SimplexSolver {
 public:
  // `variables` = number of structural (x) variables.
  explicit SimplexSolver(std::size_t variables);

  // Objective coefficient (default 0). Minimisation.
  void set_objective(VarId var, double coeff);

  // Add one constraint row; expression constants fold into the rhs.
  void add_constraint(const LinExpr& lhs, Relation relation, double rhs);

  LpSolution solve(std::size_t max_iterations = 0) const;  // 0 = auto

  [[nodiscard]] std::size_t variable_count() const { return variables_; }
  [[nodiscard]] std::size_t constraint_count() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<LinTerm> terms;
    Relation relation;
    double rhs;
  };

  std::size_t variables_;
  std::vector<double> objective_;
  std::vector<Row> rows_;
};

// LP relaxation of the allocation model: builds the LinModel rows with
// x, y in [0, 1] and returns the relaxation optimum — a lower bound on
// the linear cost (usage + exploitation + migration) of every complete
// integral placement.
struct Instance;  // fwd
LpSolution solve_lp_relaxation(const class LinModel& model,
                               std::size_t max_iterations = 0);

}  // namespace iaas
