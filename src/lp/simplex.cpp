#include "lp/simplex.h"

#include <cmath>
#include <limits>

#include "common/expect.h"
#include "lp/lin_model.h"

namespace iaas {
namespace {

constexpr double kEps = 1e-9;

}  // namespace

std::string lp_status_name(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal:
      return "optimal";
    case LpStatus::kInfeasible:
      return "infeasible";
    case LpStatus::kUnbounded:
      return "unbounded";
    case LpStatus::kIterationLimit:
      return "iteration-limit";
  }
  return "unknown";
}

SimplexSolver::SimplexSolver(std::size_t variables)
    : variables_(variables), objective_(variables, 0.0) {}

void SimplexSolver::set_objective(VarId var, double coeff) {
  IAAS_EXPECT(var.index < variables_, "objective variable out of range");
  objective_[var.index] = coeff;
}

void SimplexSolver::add_constraint(const LinExpr& lhs, Relation relation,
                                   double rhs) {
  Row row;
  row.terms = lhs.terms();
  for (const LinTerm& t : row.terms) {
    IAAS_EXPECT(t.var.index < variables_, "constraint variable out of range");
  }
  row.relation = relation;
  row.rhs = rhs - lhs.constant();
  rows_.push_back(std::move(row));
}

LpSolution SimplexSolver::solve(std::size_t max_iterations) const {
  const std::size_t m = rows_.size();

  // Column layout: [structural | slack/surplus | artificial]; every row
  // is normalised to rhs >= 0 first.
  std::size_t slack_count = 0;
  std::size_t artificial_count = 0;
  struct RowPlan {
    double sign;       // +1 or -1 applied to the whole row
    Relation relation;  // after sign normalisation
    std::int64_t slack = -1;
    std::int64_t artificial = -1;
  };
  std::vector<RowPlan> plans(m);
  for (std::size_t i = 0; i < m; ++i) {
    RowPlan& plan = plans[i];
    plan.sign = rows_[i].rhs < 0.0 ? -1.0 : 1.0;
    plan.relation = rows_[i].relation;
    if (plan.sign < 0.0) {
      if (plan.relation == Relation::kLessEqual) {
        plan.relation = Relation::kGreaterEqual;
      } else if (plan.relation == Relation::kGreaterEqual) {
        plan.relation = Relation::kLessEqual;
      }
    }
    switch (plan.relation) {
      case Relation::kLessEqual:
        plan.slack = static_cast<std::int64_t>(slack_count++);
        break;
      case Relation::kGreaterEqual:
        plan.slack = static_cast<std::int64_t>(slack_count++);
        plan.artificial = static_cast<std::int64_t>(artificial_count++);
        break;
      case Relation::kEqual:
        plan.artificial = static_cast<std::int64_t>(artificial_count++);
        break;
    }
  }

  const std::size_t slack_base = variables_;
  const std::size_t artificial_base = slack_base + slack_count;
  const std::size_t total = artificial_base + artificial_count;

  // Dense tableau rows + two objective rows (phase 1 and phase 2).
  std::vector<std::vector<double>> tab(m, std::vector<double>(total + 1, 0.0));
  std::vector<std::size_t> basis(m);
  for (std::size_t i = 0; i < m; ++i) {
    const RowPlan& plan = plans[i];
    for (const LinTerm& t : rows_[i].terms) {
      tab[i][t.var.index] += plan.sign * t.coeff;
    }
    tab[i][total] = plan.sign * rows_[i].rhs;
    if (plan.slack >= 0) {
      const double coeff =
          plan.relation == Relation::kGreaterEqual ? -1.0 : 1.0;
      tab[i][slack_base + static_cast<std::size_t>(plan.slack)] = coeff;
    }
    if (plan.artificial >= 0) {
      const std::size_t col =
          artificial_base + static_cast<std::size_t>(plan.artificial);
      tab[i][col] = 1.0;
      basis[i] = col;
    } else {
      basis[i] = slack_base + static_cast<std::size_t>(plan.slack);
    }
  }

  // Objective rows as reduced-cost vectors (z-row form: start from the
  // cost coefficients, then eliminate the basic columns).
  std::vector<double> phase2(total + 1, 0.0);
  for (std::size_t v = 0; v < variables_; ++v) {
    phase2[v] = objective_[v];
  }
  std::vector<double> phase1(total + 1, 0.0);
  for (std::size_t a = 0; a < artificial_count; ++a) {
    phase1[artificial_base + a] = 1.0;
  }
  // Eliminate the initial basic (artificial) columns from phase 1.
  for (std::size_t i = 0; i < m; ++i) {
    if (basis[i] >= artificial_base) {
      for (std::size_t c = 0; c <= total; ++c) {
        phase1[c] -= tab[i][c];
      }
    }
  }

  if (max_iterations == 0) {
    max_iterations = 100 * (m + total) + 1000;
  }

  LpSolution solution;
  auto pivot = [&](std::size_t row, std::size_t col,
                   std::vector<double>& obj1, std::vector<double>& obj2) {
    const double p = tab[row][col];
    for (std::size_t c = 0; c <= total; ++c) {
      tab[row][c] /= p;
    }
    for (std::size_t r = 0; r < m; ++r) {
      if (r == row || std::fabs(tab[r][col]) < kEps) {
        continue;
      }
      const double f = tab[r][col];
      for (std::size_t c = 0; c <= total; ++c) {
        tab[r][c] -= f * tab[row][c];
      }
    }
    for (std::vector<double>* obj : {&obj1, &obj2}) {
      const double f = (*obj)[col];
      if (std::fabs(f) < kEps) {
        continue;
      }
      for (std::size_t c = 0; c <= total; ++c) {
        (*obj)[c] -= f * tab[row][c];
      }
    }
    basis[row] = col;
  };

  // Runs simplex iterations on `obj` until optimal / unbounded / limit.
  // `allowed_cols` bounds the entering choice (artificials excluded in
  // phase 2).  Returns the terminating status.
  auto iterate = [&](std::vector<double>& obj, std::vector<double>& other,
                     std::size_t allowed_cols) {
    for (;;) {
      if (solution.iterations >= max_iterations) {
        return LpStatus::kIterationLimit;
      }
      // Bland's rule: first column with a negative reduced cost.
      std::size_t entering = total;
      for (std::size_t c = 0; c < allowed_cols; ++c) {
        if (obj[c] < -kEps) {
          entering = c;
          break;
        }
      }
      if (entering == total) {
        return LpStatus::kOptimal;
      }
      // Ratio test; Bland tie-break on the smallest basis column.
      std::size_t leaving = m;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t r = 0; r < m; ++r) {
        if (tab[r][entering] > kEps) {
          const double ratio = tab[r][total] / tab[r][entering];
          if (ratio < best_ratio - kEps ||
              (ratio < best_ratio + kEps &&
               (leaving == m || basis[r] < basis[leaving]))) {
            best_ratio = ratio;
            leaving = r;
          }
        }
      }
      if (leaving == m) {
        return LpStatus::kUnbounded;
      }
      pivot(leaving, entering, obj, other);
      ++solution.iterations;
    }
  };

  // Phase 1: drive the artificial sum to zero.
  if (artificial_count > 0) {
    const LpStatus status = iterate(phase1, phase2, total);
    if (status == LpStatus::kIterationLimit) {
      solution.status = status;
      return solution;
    }
    IAAS_EXPECT(status != LpStatus::kUnbounded,
                "phase-1 objective is bounded below by zero");
    if (-phase1[total] > 1e-6) {  // artificial sum = -phase1 rhs entry
      solution.status = LpStatus::kInfeasible;
      return solution;
    }
    // Pivot out any artificial still (degenerately) basic.
    for (std::size_t r = 0; r < m; ++r) {
      if (basis[r] < artificial_base) {
        continue;
      }
      std::size_t col = artificial_base;
      for (std::size_t c = 0; c < artificial_base; ++c) {
        if (std::fabs(tab[r][c]) > kEps) {
          col = c;
          break;
        }
      }
      if (col < artificial_base) {
        pivot(r, col, phase1, phase2);
        ++solution.iterations;
      }
      // Otherwise the row is redundant; the artificial stays basic at 0
      // and can never re-enter (phase 2 excludes artificial columns).
    }
  }

  // Phase 2: original objective over non-artificial columns.
  const LpStatus status = iterate(phase2, phase1, artificial_base);
  solution.status = status;
  if (status != LpStatus::kOptimal) {
    return solution;
  }

  solution.values.assign(variables_, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    if (basis[r] < variables_) {
      solution.values[basis[r]] = tab[r][total];
    }
  }
  double obj_value = 0.0;
  for (std::size_t v = 0; v < variables_; ++v) {
    obj_value += objective_[v] * solution.values[v];
  }
  solution.objective = obj_value;
  return solution;
}

LpSolution solve_lp_relaxation(const LinModel& model,
                               std::size_t max_iterations) {
  SimplexSolver solver(model.variable_count());
  for (const LinTerm& t : model.objective().terms()) {
    solver.set_objective(t.var, t.coeff);
  }
  for (const LinConstraint& c : model.constraints()) {
    solver.add_constraint(c.lhs, c.relation, c.rhs);
  }
  // Binary relaxation: y_j <= 1 (x <= y <= 1 makes x <= 1 implicit).
  const Instance& inst = model.instance();
  for (std::size_t j = 0; j < inst.m(); ++j) {
    LinExpr bound;
    bound.add(model.y(j), 1.0);
    solver.add_constraint(bound, Relation::kLessEqual, 1.0);
  }
  return solver.solve(max_iterations);
}

}  // namespace iaas
