// Sparse linear expressions over integer model variables — the building
// block of the integer-programming formulation (paper Eqs. 4-21).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace iaas {

// Variable handle inside a LinModel.
struct VarId {
  std::uint32_t index = 0;
  friend bool operator==(VarId, VarId) = default;
};

struct LinTerm {
  VarId var;
  double coeff;
};

class LinExpr {
 public:
  LinExpr() = default;

  LinExpr& add(VarId var, double coeff) {
    terms_.push_back({var, coeff});
    return *this;
  }
  LinExpr& add_constant(double c) {
    constant_ += c;
    return *this;
  }

  [[nodiscard]] const std::vector<LinTerm>& terms() const { return terms_; }
  [[nodiscard]] double constant() const { return constant_; }

  // Value of the expression under a full assignment of variable values.
  [[nodiscard]] double value(const std::vector<double>& assignment) const {
    double v = constant_;
    for (const LinTerm& t : terms_) {
      v += t.coeff * assignment[t.var.index];
    }
    return v;
  }

 private:
  std::vector<LinTerm> terms_;
  double constant_ = 0.0;
};

enum class Relation : std::uint8_t { kLessEqual, kEqual, kGreaterEqual };

struct LinConstraint {
  LinExpr lhs;
  Relation relation;
  double rhs;
  std::string name;

  [[nodiscard]] bool satisfied(const std::vector<double>& assignment,
                               double eps = 1e-9) const {
    const double v = lhs.value(assignment);
    switch (relation) {
      case Relation::kLessEqual:
        return v <= rhs + eps;
      case Relation::kEqual:
        return v >= rhs - eps && v <= rhs + eps;
      case Relation::kGreaterEqual:
        return v >= rhs - eps;
    }
    return false;
  }
};

}  // namespace iaas
