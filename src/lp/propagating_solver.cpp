#include "lp/propagating_solver.h"

#include <algorithm>
#include <limits>

#include "common/expect.h"
#include "common/matrix.h"
#include "common/stopwatch.h"

namespace iaas {
namespace {

constexpr double kEps = 1e-9;

}  // namespace

struct PropagatingCpSolver::SearchState {
  DomainStore domains;
  Placement placement;
  Matrix<double> residual;  // effective capacity remaining
  std::vector<std::uint32_t> vms_on_server;
  std::vector<std::uint32_t> commit_log;  // commit order (incl. forced)
  double cost = 0.0;

  Placement best;
  double best_cost = std::numeric_limits<double>::infinity();
  bool found_complete = false;

  Deadline deadline;
  std::uint64_t backtrack_budget = 0;
  CpStats stats;

  std::vector<std::uint32_t> scratch_values;

  explicit SearchState(const Instance& inst)
      : domains(inst.n(), inst.m()),
        placement(inst.n()),
        residual(inst.m(), inst.h()),
        vms_on_server(inst.m(), 0),
        best(inst.n()) {
    for (std::size_t j = 0; j < inst.m(); ++j) {
      for (std::size_t l = 0; l < inst.h(); ++l) {
        residual(j, l) = inst.infra.server(j).effective_capacity(l);
      }
    }
  }
};

PropagatingCpSolver::PropagatingCpSolver(const Instance& instance,
                                         CpSolverOptions options)
    : instance_(&instance),
      options_(options),
      groups_of_vm_(instance.n()) {
  for (std::size_t c = 0; c < instance.requests.constraints.size(); ++c) {
    for (std::uint32_t k : instance.requests.constraints[c].vms) {
      groups_of_vm_[k].push_back(static_cast<std::uint32_t>(c));
    }
  }
}

double PropagatingCpSolver::incremental_cost(std::size_t k, std::size_t j,
                                             bool server_used) const {
  const Server& server = instance_->infra.server(j);
  double cost = server.usage_cost;
  if (instance_->previous.is_assigned(k) &&
      instance_->previous.server_of(k) != static_cast<std::int32_t>(j)) {
    cost += instance_->requests.vms[k].migration_cost;
  }
  if (!server_used) {
    cost += server.opex;
  }
  return cost;
}

bool PropagatingCpSolver::propagate_assignment(SearchState& state,
                                               std::size_t k,
                                               std::size_t j) {
  const Instance& inst = *instance_;
  const VmRequest& vm = inst.requests.vms[k];

  // Physical feasibility at commit time (forced singletons may have been
  // filtered before the residual shrank further).
  for (std::size_t l = 0; l < inst.h(); ++l) {
    if (vm.demand[l] > state.residual(j, l) + kEps) {
      return false;
    }
  }
  if (!state.domains.contains(k, j)) {
    return false;
  }

  state.cost += incremental_cost(k, j, state.vms_on_server[j] > 0);
  state.domains.assign(k, j);
  state.placement.assign(k, static_cast<std::int32_t>(j));
  ++state.vms_on_server[j];
  for (std::size_t l = 0; l < inst.h(); ++l) {
    state.residual(j, l) -= vm.demand[l];
  }
  state.commit_log.push_back(static_cast<std::uint32_t>(k));

  std::vector<std::size_t> forced;

  // Capacity propagator: unassigned VMs that no longer fit j lose it.
  for (std::size_t i = 0; i < inst.n(); ++i) {
    if (state.placement.is_assigned(i) || !state.domains.contains(i, j)) {
      continue;
    }
    bool fits = true;
    for (std::size_t l = 0; l < inst.h(); ++l) {
      if (inst.requests.vms[i].demand[l] > state.residual(j, l) + kEps) {
        fits = false;
        break;
      }
    }
    if (fits) {
      continue;
    }
    state.domains.remove(i, j);
    if (state.domains.empty(i)) {
      return false;
    }
    if (state.domains.size(i) == 1) {
      forced.push_back(i);
    }
  }

  // Relationship propagators for every group containing k.
  const std::uint32_t dc_j = inst.infra.datacenter_of(j);
  for (std::uint32_t cidx : groups_of_vm_[k]) {
    const PlacementConstraint& c = inst.requests.constraints[cidx];
    for (std::uint32_t peer : c.vms) {
      if (peer == k || state.placement.is_assigned(peer)) {
        continue;
      }
      switch (c.kind) {
        case RelationKind::kSameServer:
          if (!state.domains.contains(peer, j)) {
            return false;
          }
          state.domains.assign(peer, j);
          forced.push_back(peer);
          break;
        case RelationKind::kSameDatacenter: {
          state.domains.values(peer, state.scratch_values);
          for (std::uint32_t v : state.scratch_values) {
            if (inst.infra.datacenter_of(v) != dc_j) {
              state.domains.remove(peer, v);
            }
          }
          break;
        }
        case RelationKind::kDifferentServers:
          state.domains.remove(peer, j);
          break;
        case RelationKind::kDifferentDatacenters: {
          state.domains.values(peer, state.scratch_values);
          for (std::uint32_t v : state.scratch_values) {
            if (inst.infra.datacenter_of(v) == dc_j) {
              state.domains.remove(peer, v);
            }
          }
          break;
        }
      }
      if (state.domains.empty(peer)) {
        return false;
      }
      if (state.domains.size(peer) == 1 &&
          c.kind != RelationKind::kSameServer) {
        forced.push_back(peer);
      }
    }
  }

  // Unit propagation: singleton domains commit immediately (their cost
  // is forced anyway, and committing updates the residuals other
  // propagators depend on).
  for (std::size_t i : forced) {
    if (state.placement.is_assigned(i)) {
      continue;
    }
    if (!propagate_assignment(state, i, state.domains.single_value(i))) {
      return false;
    }
  }
  return true;
}

bool PropagatingCpSolver::dfs(SearchState& state,
                              std::size_t /*assigned_count*/) {
  const Instance& inst = *instance_;
  if (state.deadline.expired()) {
    state.stats.timed_out = true;
    return true;
  }
  if (state.commit_log.size() == inst.n()) {
    state.stats.found_complete = true;
    if (state.cost < state.best_cost) {
      state.best_cost = state.cost;
      state.best = state.placement;
      state.found_complete = true;
    }
    return !options_.optimize;
  }

  ++state.stats.nodes;

  // First-fail: unassigned VM with the smallest domain.
  std::size_t k = inst.n();
  std::size_t best_size = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i < inst.n(); ++i) {
    if (!state.placement.is_assigned(i) &&
        state.domains.size(i) < best_size) {
      best_size = state.domains.size(i);
      k = i;
    }
  }
  IAAS_EXPECT(k < inst.n(), "no unassigned VM despite incomplete commit log");

  // Value order: cheapest incremental cost first.
  state.domains.values(k, state.scratch_values);
  struct Candidate {
    std::uint32_t server;
    double cost;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(state.scratch_values.size());
  for (std::uint32_t j : state.scratch_values) {
    candidates.push_back(
        {j, incremental_cost(k, j, state.vms_on_server[j] > 0)});
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.cost < b.cost;
                   });

  // Optimistic bound on the unassigned remainder.
  double min_usage = std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < inst.m(); ++j) {
    min_usage = std::min(min_usage, inst.infra.server(j).usage_cost);
  }
  const double remaining =
      static_cast<double>(inst.n() - state.commit_log.size() - 1) *
      min_usage;

  for (const Candidate& cand : candidates) {
    if (state.cost + cand.cost + remaining >= state.best_cost) {
      break;  // sorted: the rest only gets costlier
    }
    const std::size_t trail_mark = state.domains.checkpoint();
    const std::size_t commit_mark = state.commit_log.size();
    const double saved_cost = state.cost;

    bool ok = propagate_assignment(state, k, cand.server);
    if (ok) {
      if (dfs(state, state.commit_log.size())) {
        return true;
      }
    }
    // Roll back every commit this branch made (incl. forced ones).
    while (state.commit_log.size() > commit_mark) {
      const std::uint32_t vm = state.commit_log.back();
      state.commit_log.pop_back();
      const auto j =
          static_cast<std::size_t>(state.placement.server_of(vm));
      for (std::size_t l = 0; l < inst.h(); ++l) {
        state.residual(j, l) += inst.requests.vms[vm].demand[l];
      }
      --state.vms_on_server[j];
      state.placement.reject(vm);
    }
    state.domains.rollback(trail_mark);
    state.cost = saved_cost;

    ++state.stats.backtracks;
    if (state.stats.backtracks >= state.backtrack_budget) {
      return true;
    }
  }
  return false;
}

Placement PropagatingCpSolver::solve(CpStats* stats) {
  const Instance& inst = *instance_;
  SearchState state(inst);
  state.deadline = Deadline::after_seconds(options_.time_limit_seconds);
  state.backtrack_budget = options_.max_backtracks;

  // Root filtering: servers a VM can never fit (even empty) leave its
  // domain immediately.
  bool root_consistent = true;
  for (std::size_t k = 0; k < inst.n() && root_consistent; ++k) {
    for (std::size_t j = 0; j < inst.m(); ++j) {
      bool fits = true;
      for (std::size_t l = 0; l < inst.h(); ++l) {
        if (inst.requests.vms[k].demand[l] >
            inst.infra.server(j).effective_capacity(l) + kEps) {
          fits = false;
          break;
        }
      }
      if (!fits) {
        state.domains.remove(k, j);
      }
    }
    root_consistent = !state.domains.empty(k);
  }

  bool aborted = true;
  if (root_consistent) {
    aborted = dfs(state, 0);
  }
  state.stats.proved_optimal = !aborted && state.found_complete;
  state.stats.best_cost = state.best_cost;

  Placement result =
      state.found_complete
          ? state.best
          : CpSolver(inst, options_).greedy_with_rejection();
  if (stats != nullptr) {
    *stats = state.stats;
  }
  return result;
}

}  // namespace iaas
