// The integer linear programming formulation of the allocation problem
// (paper §III, Eqs. 4-21), built mechanically from an Instance.
//
// Decision variables:
//   x[j][k]  binary — VM k hosted on server j (the paper's X_ijk with the
//            datacenter index folded into j, since j determines i);
//   y[j]     binary — server j is in use (linking: x[j][k] <= y[j]),
//            carrying the exploitation cost E_j once per used server.
//
// Constraints emitted:
//   capacity   (Eq. 16):  sum_k C_kl x[j][k] <= P_jl F_jl     per (j, l)
//   assignment (Eq. 17):  sum_j x[j][k] == 1                  per k
//   same-server       (Eq. 19/21 linearised per Eqs. 13-14): pairwise
//                      x[j][k1] == x[j][k2] for every j
//   same-datacenter   (Eq. 18): pairwise sum_{j in dc} equality per dc
//   different-servers (Eq. 21): sum_{k in G} x[j][k] <= 1 per j
//   different-datacenters (Eq. 20): sum_{k in G, j in dc} x <= 1 per dc
//   linking:           x[j][k] <= y[j]
//
// Objective: the linearisable part of Eq. 15 — usage + exploitation
// (Eq. 22) plus migration (Eq. 26).  The downtime term (Eq. 23) is a
// non-linear function of load (exponential QoS decay, Eq. 24) and is
// intentionally not part of the ILP; the paper's constraint-solver
// baseline optimises cost under hard constraints and the metaheuristics
// handle the full three-term objective.
//
// The model exists to (a) document the exact formulation, (b) let tests
// cross-validate ConstraintChecker/Evaluator against an independent
// encoding, and (c) provide the CP solver's bound machinery.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lp/lin_expr.h"
#include "model/instance.h"
#include "model/placement.h"

namespace iaas {

class LinModel {
 public:
  explicit LinModel(const Instance& instance);

  [[nodiscard]] std::size_t variable_count() const { return var_count_; }
  [[nodiscard]] const std::vector<LinConstraint>& constraints() const {
    return constraints_;
  }
  [[nodiscard]] const LinExpr& objective() const { return objective_; }

  // Variable handles.
  [[nodiscard]] VarId x(std::size_t j, std::size_t k) const;
  [[nodiscard]] VarId y(std::size_t j) const;

  // Encode a placement as a 0/1 assignment vector over the model's
  // variables (rejected VMs leave their row all-zero, which deliberately
  // breaks Eq. 17 — rejection is outside the pure ILP).
  [[nodiscard]] std::vector<double> encode(const Placement& placement) const;

  // Count constraints violated by an assignment (cross-validation hook).
  [[nodiscard]] std::size_t violated_count(
      const std::vector<double>& assignment) const;

  [[nodiscard]] double objective_value(
      const std::vector<double>& assignment) const {
    return objective_.value(assignment);
  }

  [[nodiscard]] const Instance& instance() const { return *instance_; }

 private:
  void build();

  const Instance* instance_;
  std::size_t var_count_ = 0;
  std::vector<LinConstraint> constraints_;
  LinExpr objective_;
};

}  // namespace iaas
