// Core / Spine-Leaf datacenter fabric (paper Fig. 1).
//
// The paper grounds its allocation model on the modern spine-leaf
// architecture [19][20][21]: each datacenter is a two-tier Clos fabric
// (every leaf connects to every spine), datacenters are joined through a
// core layer.  The allocator itself only needs server identities and their
// datacenter membership, but the fabric provides the physical quantities
// the cost and workload models draw on: hop distances (migration locality),
// path redundancy (availability) and bisection bandwidth.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace iaas {

enum class NodeKind : std::uint8_t { kCore, kSpine, kLeaf, kServer };

struct FabricNode {
  NodeKind kind;
  std::uint32_t datacenter;  // owning DC; cores use kNoDatacenter
  std::uint32_t index_in_tier;
};

struct FabricLink {
  std::uint32_t a;            // node id
  std::uint32_t b;            // node id
  double bandwidth_gbps;
};

struct FabricConfig {
  std::uint32_t datacenters = 1;
  std::uint32_t cores = 2;              // shared inter-DC core switches
  std::uint32_t spines_per_dc = 2;
  std::uint32_t leaves_per_dc = 4;
  std::uint32_t servers_per_leaf = 8;
  double core_spine_gbps = 100.0;
  double spine_leaf_gbps = 40.0;
  double leaf_server_gbps = 10.0;
};

class Fabric {
 public:
  static constexpr std::uint32_t kNoDatacenter = 0xffffffffu;

  explicit Fabric(const FabricConfig& config);

  [[nodiscard]] const FabricConfig& config() const { return config_; }
  [[nodiscard]] std::uint32_t datacenter_count() const {
    return config_.datacenters;
  }
  [[nodiscard]] std::uint32_t server_count() const { return server_count_; }
  [[nodiscard]] std::uint32_t servers_per_datacenter() const {
    return config_.leaves_per_dc * config_.servers_per_leaf;
  }

  // Global server index -> owning datacenter / leaf.
  [[nodiscard]] std::uint32_t datacenter_of_server(std::uint32_t server) const;
  [[nodiscard]] std::uint32_t leaf_of_server(std::uint32_t server) const;

  // Global server indices hosted by a (datacenter, leaf) pair: a view
  // into a leaf-major index table precomputed at construction — no
  // allocation per call (hot in fault injection and shard slicing).
  [[nodiscard]] std::span<const std::uint32_t> servers_on_leaf(
      std::uint32_t datacenter, std::uint32_t leaf) const;

  // Leaves enumerated globally (datacenter-major, matching the global
  // server order), so correlated failure domains can be indexed with one
  // integer: global leaf g hosts servers [g*servers_per_leaf,
  // (g+1)*servers_per_leaf).
  [[nodiscard]] std::uint32_t leaf_count() const {
    return config_.datacenters * config_.leaves_per_dc;
  }
  [[nodiscard]] std::uint32_t global_leaf_of_server(
      std::uint32_t server) const;
  [[nodiscard]] std::span<const std::uint32_t> servers_on_global_leaf(
      std::uint32_t global_leaf) const;

  // Network hop count between two servers: 0 same server, 2 same leaf,
  // 4 same DC (leaf-spine-leaf), 6 across DCs (via core).
  [[nodiscard]] std::uint32_t hop_distance(std::uint32_t server_a,
                                           std::uint32_t server_b) const;

  // Number of edge-disjoint shortest paths between two servers; the
  // redundancy the spine-leaf design buys [19].
  [[nodiscard]] std::uint32_t path_redundancy(std::uint32_t server_a,
                                              std::uint32_t server_b) const;

  // Aggregate leaf-to-spine bandwidth of one datacenter (its bisection
  // ceiling under full Clos wiring).
  [[nodiscard]] double bisection_bandwidth_gbps(std::uint32_t datacenter) const;

  // Bottleneck link bandwidth along a shortest server-to-server path.
  [[nodiscard]] double path_bandwidth_gbps(std::uint32_t server_a,
                                           std::uint32_t server_b) const;

  [[nodiscard]] const std::vector<FabricNode>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<FabricLink>& links() const { return links_; }

  // Human-readable one-line summary ("2 DC x (2 spine, 4 leaf, 32 srv)").
  [[nodiscard]] std::string summary() const;

 private:
  FabricConfig config_;
  std::uint32_t server_count_;
  std::vector<FabricNode> nodes_;
  std::vector<FabricLink> links_;
  std::vector<std::uint32_t> server_node_ids_;  // server index -> node id
  // Global server ids in leaf-major order: global leaf g's servers are
  // the contiguous run [g * servers_per_leaf, (g+1) * servers_per_leaf)
  // of this table, which servers_on_leaf returns as a span.
  std::vector<std::uint32_t> leaf_servers_;
};

}  // namespace iaas
