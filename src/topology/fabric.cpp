#include "topology/fabric.h"

#include <algorithm>
#include <sstream>

#include "common/expect.h"

namespace iaas {

Fabric::Fabric(const FabricConfig& config) : config_(config) {
  IAAS_EXPECT(config.datacenters > 0, "fabric needs at least one datacenter");
  IAAS_EXPECT(config.spines_per_dc > 0 && config.leaves_per_dc > 0 &&
                  config.servers_per_leaf > 0,
              "fabric tiers must be non-empty");
  server_count_ = config.datacenters * servers_per_datacenter();

  // Core switches first, then per datacenter: spines, leaves, servers.
  for (std::uint32_t c = 0; c < config.cores; ++c) {
    nodes_.push_back({NodeKind::kCore, kNoDatacenter, c});
  }
  server_node_ids_.reserve(server_count_);

  for (std::uint32_t dc = 0; dc < config.datacenters; ++dc) {
    std::vector<std::uint32_t> spine_ids;
    spine_ids.reserve(config.spines_per_dc);
    for (std::uint32_t s = 0; s < config.spines_per_dc; ++s) {
      spine_ids.push_back(static_cast<std::uint32_t>(nodes_.size()));
      nodes_.push_back({NodeKind::kSpine, dc, s});
      // Every spine uplinks to every core.
      for (std::uint32_t c = 0; c < config.cores; ++c) {
        links_.push_back({c, spine_ids.back(), config.core_spine_gbps});
      }
    }
    for (std::uint32_t l = 0; l < config.leaves_per_dc; ++l) {
      const auto leaf_id = static_cast<std::uint32_t>(nodes_.size());
      nodes_.push_back({NodeKind::kLeaf, dc, l});
      // Full Clos: every leaf connects to every spine in its DC.
      for (std::uint32_t spine : spine_ids) {
        links_.push_back({spine, leaf_id, config.spine_leaf_gbps});
      }
      for (std::uint32_t s = 0; s < config.servers_per_leaf; ++s) {
        const auto server_id = static_cast<std::uint32_t>(nodes_.size());
        nodes_.push_back(
            {NodeKind::kServer, dc,
             l * config.servers_per_leaf + s});
        links_.push_back({leaf_id, server_id, config.leaf_server_gbps});
        server_node_ids_.push_back(server_id);
      }
    }
  }
  // Leaf-major server index table backing the servers_on_leaf spans.
  // Global server ids are already leaf-major, so the table is the
  // identity sequence — kept as an explicit table so the span contract
  // survives any future reordering of the global layout.
  leaf_servers_.resize(server_count_);
  for (std::uint32_t j = 0; j < server_count_; ++j) {
    leaf_servers_[j] = j;
  }
}

std::uint32_t Fabric::datacenter_of_server(std::uint32_t server) const {
  IAAS_EXPECT(server < server_count_, "server index out of range");
  return server / servers_per_datacenter();
}

std::uint32_t Fabric::leaf_of_server(std::uint32_t server) const {
  IAAS_EXPECT(server < server_count_, "server index out of range");
  return (server % servers_per_datacenter()) / config_.servers_per_leaf;
}

std::span<const std::uint32_t> Fabric::servers_on_leaf(
    std::uint32_t datacenter, std::uint32_t leaf) const {
  IAAS_EXPECT(datacenter < config_.datacenters, "datacenter out of range");
  IAAS_EXPECT(leaf < config_.leaves_per_dc, "leaf out of range");
  const std::size_t base =
      static_cast<std::size_t>(datacenter) * servers_per_datacenter() +
      static_cast<std::size_t>(leaf) * config_.servers_per_leaf;
  return {leaf_servers_.data() + base, config_.servers_per_leaf};
}

std::uint32_t Fabric::global_leaf_of_server(std::uint32_t server) const {
  return datacenter_of_server(server) * config_.leaves_per_dc +
         leaf_of_server(server);
}

std::span<const std::uint32_t> Fabric::servers_on_global_leaf(
    std::uint32_t global_leaf) const {
  IAAS_EXPECT(global_leaf < leaf_count(), "global leaf out of range");
  return servers_on_leaf(global_leaf / config_.leaves_per_dc,
                         global_leaf % config_.leaves_per_dc);
}

std::uint32_t Fabric::hop_distance(std::uint32_t server_a,
                                   std::uint32_t server_b) const {
  if (server_a == server_b) {
    return 0;
  }
  const std::uint32_t dc_a = datacenter_of_server(server_a);
  const std::uint32_t dc_b = datacenter_of_server(server_b);
  if (dc_a != dc_b) {
    return 6;  // server-leaf-spine-core-spine-leaf-server
  }
  if (leaf_of_server(server_a) == leaf_of_server(server_b)) {
    return 2;  // via the shared leaf
  }
  return 4;  // leaf-spine-leaf inside one DC
}

std::uint32_t Fabric::path_redundancy(std::uint32_t server_a,
                                      std::uint32_t server_b) const {
  const std::uint32_t hops = hop_distance(server_a, server_b);
  switch (hops) {
    case 0:
    case 2:
      return 1;  // single leaf (or none) on the path
    case 4:
      return config_.spines_per_dc;  // one disjoint path per spine
    default:
      return std::min(config_.spines_per_dc, config_.cores);
  }
}

double Fabric::bisection_bandwidth_gbps(std::uint32_t datacenter) const {
  IAAS_EXPECT(datacenter < config_.datacenters, "datacenter out of range");
  return static_cast<double>(config_.spines_per_dc) *
         static_cast<double>(config_.leaves_per_dc) * config_.spine_leaf_gbps;
}

double Fabric::path_bandwidth_gbps(std::uint32_t server_a,
                                   std::uint32_t server_b) const {
  const std::uint32_t hops = hop_distance(server_a, server_b);
  if (hops == 0) {
    return 0.0;  // no network traversal: migration stays on-host
  }
  if (hops == 2) {
    return config_.leaf_server_gbps;
  }
  double bottleneck = std::min(config_.leaf_server_gbps,
                               config_.spine_leaf_gbps);
  if (hops == 6) {
    bottleneck = std::min(bottleneck, config_.core_spine_gbps);
  }
  return bottleneck;
}

std::string Fabric::summary() const {
  std::ostringstream out;
  out << config_.datacenters << " DC x (" << config_.spines_per_dc
      << " spine, " << config_.leaves_per_dc << " leaf, "
      << servers_per_datacenter() << " srv), " << config_.cores << " cores, "
      << server_count_ << " servers total";
  return out.str();
}

}  // namespace iaas
