// ShardPlan: a deterministic partition of a Fabric's servers into
// shards along the leaf/DC structure, so per-shard allocators can run
// concurrently over disjoint slices of the datacenter (DESIGN.md §12).
//
// Partition rule (pure function of the fabric shape and the requested
// shard count, never of the request load):
//   * shard_count <= datacenters: each shard is a contiguous block of
//     whole datacenters (block sizes differ by at most one DC).  Slice
//     fabrics keep the multi-DC structure, so same-/different-datacenter
//     relationship groups stay exactly checkable inside the shard.
//   * shard_count > datacenters: shards are spread over the DCs
//     proportionally (floor(S*d/g) boundaries) and each DC's leaves are
//     split into contiguous blocks, one per local shard.  Slice fabrics
//     are single-DC; a different-datacenters group is unsatisfiable
//     inside such a shard and must be handled by the caller (the
//     sharded allocator's cross-shard rebalance pass places those VMs
//     on the *global* state, where real DC identities are visible).
//
// Because global server ids are leaf-major, every shard covers one
// contiguous global server range — slicing Server records, placements
// and gene vectors is a copy of a subrange plus an index offset.
#pragma once

#include <cstdint>
#include <vector>

#include "common/expect.h"
#include "topology/fabric.h"

namespace iaas {

struct ShardSlice {
  std::uint32_t leaf_begin = 0;    // global leaf range [leaf_begin, leaf_end)
  std::uint32_t leaf_end = 0;
  std::uint32_t server_begin = 0;  // derived: leaf range * servers_per_leaf
  std::uint32_t server_end = 0;
  std::uint32_t dc_begin = 0;      // datacenters covered [dc_begin, dc_end)
  std::uint32_t dc_end = 0;
  // True when the slice boundaries align to whole datacenters (the
  // shard_count <= datacenters arm); such slices preserve exact
  // datacenter semantics for relationship constraints.
  bool whole_datacenters = false;

  [[nodiscard]] std::uint32_t server_count() const {
    return server_end - server_begin;
  }
  [[nodiscard]] std::uint32_t datacenter_count() const {
    return dc_end - dc_begin;
  }

  friend bool operator==(const ShardSlice&, const ShardSlice&) = default;
};

class ShardPlan {
 public:
  // `shard_count` is clamped to [1, fabric.leaf_count()] — a shard is
  // never smaller than one leaf.
  ShardPlan(const Fabric& fabric, std::uint32_t shard_count);

  [[nodiscard]] std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(slices_.size());
  }
  [[nodiscard]] const ShardSlice& slice(std::uint32_t s) const {
    IAAS_EXPECT(s < slices_.size(), "shard index out of range");
    return slices_[s];
  }
  [[nodiscard]] const std::vector<ShardSlice>& slices() const {
    return slices_;
  }

  // Owning shard of a global server id (every server belongs to exactly
  // one shard).
  [[nodiscard]] std::uint32_t shard_of_server(std::uint32_t server) const;

  // Local <-> global server id translation for shard s.
  [[nodiscard]] std::uint32_t local_server(std::uint32_t s,
                                           std::uint32_t global) const {
    IAAS_EXPECT(shard_of_server(global) == s, "server not in shard");
    return global - slices_[s].server_begin;
  }
  [[nodiscard]] std::uint32_t global_server(std::uint32_t s,
                                            std::uint32_t local) const {
    IAAS_EXPECT(local < slices_[s].server_count(), "local server range");
    return slices_[s].server_begin + local;
  }

  // The slice's own fabric shape: whole-DC slices keep the original
  // per-DC tier sizes over datacenter_count() DCs; partial-DC slices
  // collapse to one DC holding the slice's leaves.  Spine/core counts
  // and link speeds are inherited from the parent config.
  [[nodiscard]] FabricConfig slice_fabric(std::uint32_t s) const;

  // Smallest shard index whose slice spans more than one datacenter, or
  // -1 when every shard is single-DC (the shard_count > datacenters
  // arm) — the preferred home for different-datacenters groups.
  [[nodiscard]] std::int32_t first_multi_dc_shard() const;

 private:
  const FabricConfig config_;
  std::vector<ShardSlice> slices_;
  std::vector<std::uint32_t> shard_of_leaf_;  // global leaf -> shard
};

}  // namespace iaas
