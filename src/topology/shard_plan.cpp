#include "topology/shard_plan.h"

#include <algorithm>

namespace iaas {

ShardPlan::ShardPlan(const Fabric& fabric, std::uint32_t shard_count)
    : config_(fabric.config()) {
  const std::uint32_t d = config_.datacenters;
  const std::uint32_t lpd = config_.leaves_per_dc;
  const std::uint32_t spl = config_.servers_per_leaf;
  const std::uint32_t leaves = fabric.leaf_count();
  const std::uint32_t s_count =
      std::clamp<std::uint32_t>(shard_count, 1, leaves);

  slices_.reserve(s_count);
  if (s_count <= d) {
    // Contiguous whole-DC blocks, sizes differing by at most one DC
    // (floor boundaries).  Slices keep full datacenter semantics.
    for (std::uint32_t s = 0; s < s_count; ++s) {
      ShardSlice slice;
      slice.dc_begin = static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(s) * d / s_count);
      slice.dc_end = static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(s + 1) * d / s_count);
      slice.leaf_begin = slice.dc_begin * lpd;
      slice.leaf_end = slice.dc_end * lpd;
      slice.whole_datacenters = true;
      slices_.push_back(slice);
    }
  } else {
    // Spread the shards over the DCs proportionally (each DC gets at
    // most ceil(S/d) <= leaves_per_dc local shards, so every shard owns
    // at least one leaf), then split each DC's leaves into contiguous
    // blocks, one per local shard.
    for (std::uint32_t dc = 0; dc < d; ++dc) {
      const auto lo = static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(s_count) * dc / d);
      const auto hi = static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(s_count) * (dc + 1) / d);
      const std::uint32_t local_shards = hi - lo;
      for (std::uint32_t t = 0; t < local_shards; ++t) {
        ShardSlice slice;
        slice.dc_begin = dc;
        slice.dc_end = dc + 1;
        slice.leaf_begin =
            dc * lpd + static_cast<std::uint32_t>(
                           static_cast<std::uint64_t>(t) * lpd / local_shards);
        slice.leaf_end =
            dc * lpd +
            static_cast<std::uint32_t>(
                static_cast<std::uint64_t>(t + 1) * lpd / local_shards);
        slice.whole_datacenters = local_shards == 1;
        slices_.push_back(slice);
      }
    }
  }

  shard_of_leaf_.assign(leaves, 0);
  for (std::uint32_t s = 0; s < slices_.size(); ++s) {
    ShardSlice& slice = slices_[s];
    slice.server_begin = slice.leaf_begin * spl;
    slice.server_end = slice.leaf_end * spl;
    IAAS_EXPECT(slice.leaf_begin < slice.leaf_end, "empty shard slice");
    for (std::uint32_t g = slice.leaf_begin; g < slice.leaf_end; ++g) {
      shard_of_leaf_[g] = s;
    }
  }
  IAAS_EXPECT(slices_.front().server_begin == 0 &&
                  slices_.back().server_end == fabric.server_count(),
              "shard slices must tile the server range");
}

std::uint32_t ShardPlan::shard_of_server(std::uint32_t server) const {
  const std::uint32_t global_leaf = server / config_.servers_per_leaf;
  IAAS_EXPECT(global_leaf < shard_of_leaf_.size(), "server out of range");
  return shard_of_leaf_[global_leaf];
}

FabricConfig ShardPlan::slice_fabric(std::uint32_t s) const {
  const ShardSlice& sl = slice(s);
  FabricConfig cfg = config_;
  if (sl.whole_datacenters) {
    cfg.datacenters = sl.datacenter_count();
  } else {
    // Partial-DC slice: one DC holding exactly the slice's leaves.
    cfg.datacenters = 1;
    cfg.leaves_per_dc = sl.leaf_end - sl.leaf_begin;
  }
  return cfg;
}

std::int32_t ShardPlan::first_multi_dc_shard() const {
  for (std::uint32_t s = 0; s < slices_.size(); ++s) {
    if (slices_[s].datacenter_count() > 1) {
      return static_cast<std::int32_t>(s);
    }
  }
  return -1;
}

}  // namespace iaas
