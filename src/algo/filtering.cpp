#include "algo/filtering.h"

#include <algorithm>
#include <limits>

#include "common/stopwatch.h"

namespace iaas {

AllocationResult FilteringAllocator::allocate(const Instance& instance,
                                              std::uint64_t /*seed*/) {
  Stopwatch timer;
  Placement placement(instance.n());
  Matrix<double> used(instance.m(), instance.h());

  for (std::size_t k = 0; k < instance.n(); ++k) {
    const VmRequest& vm = instance.requests.vms[k];
    double best_score = std::numeric_limits<double>::infinity();
    std::int32_t best_server = Placement::kRejected;
    for (std::size_t j = 0; j < instance.m(); ++j) {
      const Server& server = instance.infra.server(j);
      // Filter stage: capacity only — relationships are invisible here.
      bool fits = true;
      double worst_load = 0.0;
      for (std::size_t l = 0; l < instance.h(); ++l) {
        const double after = used(j, l) + vm.demand[l];
        if (after > server.effective_capacity(l) + 1e-9) {
          fits = false;
          break;
        }
        worst_load = std::max(worst_load,
                              after / server.effective_capacity(l));
      }
      if (!fits) {
        continue;
      }
      // Weigh stage: least-loaded host wins (load balancing).
      if (worst_load < best_score) {
        best_score = worst_load;
        best_server = static_cast<std::int32_t>(j);
      }
    }
    if (best_server == Placement::kRejected) {
      continue;
    }
    placement.assign(k, best_server);
    const auto j = static_cast<std::size_t>(best_server);
    for (std::size_t l = 0; l < instance.h(); ++l) {
      used(j, l) += vm.demand[l];
    }
  }

  return finalize(instance, name(), std::move(placement),
                  timer.elapsed_seconds(), 0, options_);
}

}  // namespace iaas
