// Classic bin-packing heuristics as additional baselines (extensions
// beyond the paper's §IV set).  The allocation problem is
// multidimensional bin packing (the paper's NP-hardness argument cites
// exactly that), so First-Fit-Decreasing and Best-Fit are the natural
// yardsticks.  Both are constraint-aware: they only consider valid
// allocations (capacity + relationships), rejecting what cannot be
// placed — like Round Robin, they never violate.
#pragma once

#include "algo/allocator.h"

namespace iaas {

// First-Fit Decreasing: VMs sorted by largest relative demand first,
// each takes the lowest-indexed server where the allocation is valid.
class FirstFitDecreasingAllocator : public Allocator {
 public:
  explicit FirstFitDecreasingAllocator(ObjectiveOptions options = {})
      : options_(options) {}

  [[nodiscard]] std::string name() const override {
    return "FirstFitDecreasing";
  }

  AllocationResult allocate(const Instance& instance,
                            std::uint64_t seed) override;

 private:
  ObjectiveOptions options_;
};

// Best-Fit: each VM (in request order) goes to the valid server whose
// residual capacity after placement is tightest — the strongest
// consolidation pressure among the one-pass heuristics.
class BestFitAllocator : public Allocator {
 public:
  explicit BestFitAllocator(ObjectiveOptions options = {})
      : options_(options) {}

  [[nodiscard]] std::string name() const override { return "BestFit"; }

  AllocationResult allocate(const Instance& instance,
                            std::uint64_t seed) override;

 private:
  ObjectiveOptions options_;
};

}  // namespace iaas
