// Constraint-programming baseline — the paper solves the linear model
// with the Choco solver; this allocator drives our CpSolver substitute
// (branch-and-bound with propagation, DESIGN.md §4).
#pragma once

#include "algo/allocator.h"
#include "lp/cp_solver.h"

namespace iaas {

class CpAllocator : public Allocator {
 public:
  // `use_propagation` selects the domain-propagation engine
  // (PropagatingCpSolver) over the forward-checking CpSolver; both are
  // complete and prove the same optima (see test_propagating_solver).
  explicit CpAllocator(CpSolverOptions solver_options = {},
                       ObjectiveOptions objective_options = {},
                       bool use_propagation = false)
      : solver_options_(solver_options),
        objective_options_(objective_options),
        use_propagation_(use_propagation) {}

  [[nodiscard]] std::string name() const override {
    return use_propagation_ ? "ConstraintProgramming(prop)"
                            : "ConstraintProgramming";
  }

  AllocationResult allocate(const Instance& instance,
                            std::uint64_t seed) override;

  [[nodiscard]] const CpStats& last_stats() const { return last_stats_; }

 private:
  CpSolverOptions solver_options_;
  ObjectiveOptions objective_options_;
  bool use_propagation_;
  CpStats last_stats_;
};

}  // namespace iaas
