#include "algo/registry.h"

#include "algo/cp_allocator.h"
#include "algo/filtering.h"
#include "algo/heuristics.h"
#include "algo/round_robin.h"
#include "common/expect.h"

namespace iaas {

const std::vector<AlgorithmId>& all_algorithms() {
  static const std::vector<AlgorithmId> ids = {
      AlgorithmId::kRoundRobin,  AlgorithmId::kConstraintProgramming,
      AlgorithmId::kNsga2,       AlgorithmId::kNsga3,
      AlgorithmId::kNsga3Cp,     AlgorithmId::kNsga3Tabu,
  };
  return ids;
}

const std::vector<AlgorithmId>& extended_algorithms() {
  static const std::vector<AlgorithmId> ids = {
      AlgorithmId::kFiltering,
      AlgorithmId::kFirstFitDecreasing,
      AlgorithmId::kBestFit,
  };
  return ids;
}

std::string algorithm_name(AlgorithmId id) {
  switch (id) {
    case AlgorithmId::kRoundRobin:
      return "RoundRobin";
    case AlgorithmId::kConstraintProgramming:
      return "ConstraintProgramming";
    case AlgorithmId::kNsga2:
      return "NSGA-II";
    case AlgorithmId::kNsga3:
      return "NSGA-III";
    case AlgorithmId::kNsga3Cp:
      return "NSGA-III+CP";
    case AlgorithmId::kNsga3Tabu:
      return "NSGA-III+Tabu";
    case AlgorithmId::kFiltering:
      return "Filtering";
    case AlgorithmId::kFirstFitDecreasing:
      return "FirstFitDecreasing";
    case AlgorithmId::kBestFit:
      return "BestFit";
  }
  return "unknown";
}

std::unique_ptr<Allocator> make_allocator(AlgorithmId id,
                                          const SuiteOptions& options) {
  EaAllocatorOptions ea = options.ea;
  ea.objectives = options.objectives;
  switch (id) {
    case AlgorithmId::kRoundRobin:
      return std::make_unique<RoundRobinAllocator>(options.objectives);
    case AlgorithmId::kConstraintProgramming:
      return std::make_unique<CpAllocator>(options.cp, options.objectives);
    case AlgorithmId::kNsga2:
      return std::make_unique<Nsga2Allocator>(ea);
    case AlgorithmId::kNsga3:
      return std::make_unique<Nsga3Allocator>(ea);
    case AlgorithmId::kNsga3Cp:
      return std::make_unique<Nsga3CpAllocator>(ea);
    case AlgorithmId::kNsga3Tabu:
      return std::make_unique<Nsga3TabuAllocator>(ea);
    case AlgorithmId::kFiltering:
      return std::make_unique<FilteringAllocator>(options.objectives);
    case AlgorithmId::kFirstFitDecreasing:
      return std::make_unique<FirstFitDecreasingAllocator>(
          options.objectives);
    case AlgorithmId::kBestFit:
      return std::make_unique<BestFitAllocator>(options.objectives);
  }
  IAAS_EXPECT(false, "unknown algorithm id");
  return nullptr;
}

}  // namespace iaas
