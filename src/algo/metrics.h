// Normalized allocation metrics — the paper's stated future work: "we
// will need to create a normalized and standardized metric on a cost per
// request basis to propose a better solution in an effort to compare all
// algorithms in all scenarios."
//
// Implemented here: per-request and per-demanded-unit cost (comparable
// across scenario sizes), a simple revenue model pricing accepted
// resources, and platform utilization summaries.
#pragma once

#include <cstddef>
#include <vector>

#include "algo/allocator.h"
#include "model/instance.h"

namespace iaas {

// What the provider charges per accepted unit of demand per window.
struct PriceModel {
  double per_cpu_core = 2.0;
  double per_ram_gb = 0.5;
  double per_disk_gb = 0.02;
};

struct NormalizedMetrics {
  double acceptance_rate = 0.0;           // accepted / N
  double cost_per_accepted_request = 0.0; // total cost / accepted VMs
  double cost_per_demanded_unit = 0.0;    // total cost / priced demand of
                                          // ALL requests (scenario-size
                                          // independent denominator)
  double revenue = 0.0;                   // priced accepted demand
  double net_profit = 0.0;                // revenue - total cost
};

NormalizedMetrics compute_metrics(const Instance& instance,
                                  const AllocationResult& result,
                                  const PriceModel& prices = {});

struct UtilizationSummary {
  std::size_t used_servers = 0;     // hosts with at least one VM
  double mean_worst_load = 0.0;     // mean over used servers of the
                                    // worst-attribute load (Eq. 25)
  double peak_worst_load = 0.0;
  std::vector<double> per_datacenter_mean_load;  // same, per DC
};

UtilizationSummary compute_utilization(const Instance& instance,
                                       const Placement& placement);

}  // namespace iaas
