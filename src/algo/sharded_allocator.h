// ShardedAllocator: partitions one allocation instance along a
// ShardPlan, runs a persistent warm-started EA backend per shard
// concurrently, and stitches the per-shard answers back into one global
// AllocationResult (DESIGN.md §12).
//
// Pipeline per allocate() call:
//   1. Route every union-find assignment unit (model/assignment_units)
//      to exactly one shard — least-loaded-by-demand among the eligible
//      shards, so relationship groups are never split.  Units carrying a
//      different-datacenters constraint are only eligible for multi-DC
//      shards; when none exists they skip the shard stage entirely and
//      are placed by the rebalance pass, which sees real DC identities.
//   2. Slice the instance per shard (local fabric, remapped servers,
//      remapped constraints and previous placement) and run each shard's
//      backend concurrently on a dedicated outer pool, handing each run
//      an inner thread budget of max(1, threads / shard_count) so the
//      nested parallelism never oversubscribes (slot budgeting).
//   3. Merge the raw shard placements, audit + sanitize them globally
//      (Allocator::finalize), then run the cross-shard rebalance on an
//      incremental PlacementState: place every still-rejected VM on the
//      globally best server that adds no violation, and pull rebalance
//      orphans back into their routed shard when it strictly improves
//      the aggregate.  Only moves with violations_delta <= 0 commit, so
//      the final placement stays feasible.
//
// Determinism: per-shard seeds are drawn from the call seed in shard
// order, every backend run is bit-deterministic at any inner thread
// count (the PR-7 contract), and merging + rebalance are serial — so the
// global result is bit-identical for a fixed shard count at ANY thread
// count.  Telemetry from shard tasks is captured in per-task
// CounterBlocks and re-emitted on the caller thread in shard order,
// keeping counter traces deterministic too.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "algo/registry.h"
#include "common/thread_pool.h"
#include "topology/shard_plan.h"

namespace iaas {

struct ShardedAllocatorOptions {
  // Number of shards; 0 = one shard per datacenter.  Clamped to the
  // fabric's leaf count by ShardPlan.
  std::uint32_t shard_count = 0;
  // Per-shard backend, built through algo/registry (persistent per
  // shard, so EA backends keep their warm-start fronts across windows).
  AlgorithmId backend = AlgorithmId::kNsga3Tabu;
  SuiteOptions suite;
  // Total thread budget split across the concurrent shard runs
  // (0 = hardware_concurrency).  Each run gets max(1, threads / shards)
  // inner threads; 1 shard degenerates to the unsharded parallel run.
  std::size_t threads = 0;
  // Cross-shard rebalance pass (stage 3).  Placements re-admit VMs every
  // shard rejected; migrations pull cross-shard rebalance orphans home.
  bool rebalance = true;
  std::size_t max_rebalance_placements = 4096;
  std::size_t max_migrations = 256;
  // A migration must improve the aggregate objective by more than this
  // (absolute) to be applied.
  double migration_min_gain = 1e-9;
};

class ShardedAllocator : public Allocator {
 public:
  explicit ShardedAllocator(ShardedAllocatorOptions options = {});
  ~ShardedAllocator() override;

  [[nodiscard]] std::string name() const override;

  AllocationResult allocate(const Instance& instance,
                            std::uint64_t seed) override;

  // Forwarded to every shard backend (split is per run, not per shard:
  // concurrent runs share the wall clock, so each gets the full budget).
  void set_time_budget(double seconds) override;

  // Accepts a GLOBAL front (genes hold global server ids, aligned to the
  // next call's VM indexing); allocate() slices it per shard before
  // handing each backend its local share, and arms global front export.
  bool seed_next_run(std::vector<std::vector<std::int32_t>> front) override;

  [[nodiscard]] const ShardedAllocatorOptions& options() const {
    return options_;
  }
  // The plan of the last allocate() call (null before the first).
  [[nodiscard]] const ShardPlan* plan() const { return plan_.get(); }

 private:
  // (Re)builds plan_/backends_/outer_pool_ for this instance's fabric;
  // backends persist while the shard layout is unchanged.
  void prepare(const Instance& instance);

  ShardedAllocatorOptions options_;
  std::unique_ptr<ShardPlan> plan_;
  std::vector<std::unique_ptr<Allocator>> backends_;  // one per shard
  std::unique_ptr<ThreadPool> outer_pool_;  // shard-level concurrency
  std::size_t inner_threads_ = 1;           // per-run budget under the plan

  double time_budget_seconds_ = 0.0;
  bool export_front_ = false;
  std::vector<std::vector<std::int32_t>> pending_front_;
};

}  // namespace iaas
