#include "algo/round_robin.h"

#include <algorithm>
#include <numeric>

#include "common/stopwatch.h"
#include "model/constraint_checker.h"

namespace iaas {

AllocationResult RoundRobinAllocator::allocate(const Instance& instance,
                                               std::uint64_t /*seed*/) {
  Stopwatch timer;
  ConstraintChecker checker(instance);
  Placement placement(instance.n());
  Matrix<double> used(instance.m(), instance.h());

  // Affinity sort: VMs of one relationship group back-to-back, groups
  // first, unconstrained VMs after.
  std::vector<std::uint32_t> order;
  order.reserve(instance.n());
  std::vector<char> queued(instance.n(), 0);
  for (const PlacementConstraint& c : instance.requests.constraints) {
    for (std::uint32_t k : c.vms) {
      if (queued[k] == 0) {
        order.push_back(k);
        queued[k] = 1;
      }
    }
  }
  for (std::size_t k = 0; k < instance.n(); ++k) {
    if (queued[k] == 0) {
      order.push_back(static_cast<std::uint32_t>(k));
    }
  }

  std::size_t cursor = 0;
  for (std::uint32_t k : order) {
    bool placed = false;
    for (std::size_t off = 0; off < instance.m(); ++off) {
      const std::size_t j = (cursor + off) % instance.m();
      if (!checker.is_valid_allocation(placement, used, k, j)) {
        continue;
      }
      placement.assign(k, static_cast<std::int32_t>(j));
      for (std::size_t l = 0; l < instance.h(); ++l) {
        used(j, l) += instance.requests.vms[k].demand[l];
      }
      cursor = (j + 1) % instance.m();  // keep rotating
      placed = true;
      break;
    }
    if (!placed) {
      placement.reject(k);
    }
  }

  return finalize(instance, name(), std::move(placement),
                  timer.elapsed_seconds(), 0, options_);
}

}  // namespace iaas
