#include "algo/heuristics.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/stopwatch.h"
#include "model/constraint_checker.h"

namespace iaas {
namespace {

// Largest relative demand of VM k against the fleet-average capacity.
double relative_size(const Instance& instance, std::size_t k,
                     const std::vector<double>& mean_capacity) {
  double worst = 0.0;
  for (std::size_t l = 0; l < instance.h(); ++l) {
    worst = std::max(worst,
                     instance.requests.vms[k].demand[l] / mean_capacity[l]);
  }
  return worst;
}

std::vector<double> fleet_mean_capacity(const Instance& instance) {
  std::vector<double> mean(instance.h(), 0.0);
  for (std::size_t j = 0; j < instance.m(); ++j) {
    for (std::size_t l = 0; l < instance.h(); ++l) {
      mean[l] += instance.infra.server(j).effective_capacity(l);
    }
  }
  for (double& v : mean) {
    v /= static_cast<double>(instance.m());
  }
  return mean;
}

void commit(const Instance& instance, Placement& placement,
            Matrix<double>& used, std::size_t k, std::size_t j) {
  placement.assign(k, static_cast<std::int32_t>(j));
  for (std::size_t l = 0; l < instance.h(); ++l) {
    used(j, l) += instance.requests.vms[k].demand[l];
  }
}

}  // namespace

AllocationResult FirstFitDecreasingAllocator::allocate(
    const Instance& instance, std::uint64_t /*seed*/) {
  Stopwatch timer;
  ConstraintChecker checker(instance);
  Placement placement(instance.n());
  Matrix<double> used(instance.m(), instance.h());

  const std::vector<double> mean_capacity = fleet_mean_capacity(instance);
  std::vector<std::uint32_t> order(instance.n());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return relative_size(instance, a, mean_capacity) >
                            relative_size(instance, b, mean_capacity);
                   });

  for (std::uint32_t k : order) {
    for (std::size_t j = 0; j < instance.m(); ++j) {
      if (checker.is_valid_allocation(placement, used, k, j)) {
        commit(instance, placement, used, k, j);
        break;
      }
    }
  }
  return finalize(instance, name(), std::move(placement),
                  timer.elapsed_seconds(), 0, options_);
}

AllocationResult BestFitAllocator::allocate(const Instance& instance,
                                            std::uint64_t /*seed*/) {
  Stopwatch timer;
  ConstraintChecker checker(instance);
  Placement placement(instance.n());
  Matrix<double> used(instance.m(), instance.h());

  for (std::size_t k = 0; k < instance.n(); ++k) {
    const VmRequest& vm = instance.requests.vms[k];
    double best_slack = std::numeric_limits<double>::infinity();
    std::int32_t best_server = Placement::kRejected;
    for (std::size_t j = 0; j < instance.m(); ++j) {
      if (!checker.is_valid_allocation(placement, used, k, j)) {
        continue;
      }
      // Slack: the loosest attribute after placement; tightest fit wins.
      const Server& server = instance.infra.server(j);
      double slack = 0.0;
      for (std::size_t l = 0; l < instance.h(); ++l) {
        const double remaining = server.effective_capacity(l) -
                                 used(j, l) - vm.demand[l];
        slack = std::max(slack, remaining / server.effective_capacity(l));
      }
      if (slack < best_slack) {
        best_slack = slack;
        best_server = static_cast<std::int32_t>(j);
      }
    }
    if (best_server != Placement::kRejected) {
      commit(instance, placement, used, k,
             static_cast<std::size_t>(best_server));
    }
  }
  return finalize(instance, name(), std::move(placement),
                  timer.elapsed_seconds(), 0, options_);
}

}  // namespace iaas
