// Factory over the six compared algorithms so benches, examples and the
// simulator can iterate "all algorithms of §IV" uniformly.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "algo/allocator.h"
#include "algo/nsga_allocators.h"
#include "lp/cp_solver.h"

namespace iaas {

enum class AlgorithmId {
  kRoundRobin,
  kConstraintProgramming,
  kNsga2,      // unmodified
  kNsga3,      // unmodified
  kNsga3Cp,    // NSGA-III + constraint-solver repair
  kNsga3Tabu,  // NSGA-III + tabu repair (the paper's proposal)
  // Extensions beyond the paper's §IV comparison:
  kFiltering,           // Table II's fourth family (filter scheduler)
  kFirstFitDecreasing,  // classic bin-packing heuristic
  kBestFit,             // tightest-fit consolidation heuristic
};

// The paper's six, in the order §IV lists them.
const std::vector<AlgorithmId>& all_algorithms();

// The additional baselines this library ships (Table II's filtering
// family + bin-packing heuristics).
const std::vector<AlgorithmId>& extended_algorithms();

std::string algorithm_name(AlgorithmId id);

struct SuiteOptions {
  EaAllocatorOptions ea;   // shared by all four EA variants
  CpSolverOptions cp;      // constraint-programming baseline
  ObjectiveOptions objectives;
};

std::unique_ptr<Allocator> make_allocator(AlgorithmId id,
                                          const SuiteOptions& options = {});

}  // namespace iaas
