#include "algo/cp_repair.h"

#include <algorithm>

#include "common/expect.h"
#include "model/placement.h"

namespace iaas {

CpRepair::CpRepair(const Instance& instance, CpRepairOptions options)
    : instance_(&instance), options_(options), checker_(instance) {}

bool CpRepair::dfs(Placement& placement, Matrix<double>& used,
                   const std::vector<std::uint32_t>& order,
                   std::size_t depth, std::uint64_t& backtracks) const {
  if (depth == order.size()) {
    return true;
  }
  const Instance& inst = *instance_;
  const std::uint32_t k = order[depth];

  // Value order: cheapest usage cost first (static — the mini-solve has
  // no branch-and-bound, it only restores feasibility).
  std::vector<std::uint32_t> servers;
  servers.reserve(inst.m());
  for (std::size_t j = 0; j < inst.m(); ++j) {
    if (checker_.is_valid_allocation(placement, used, k, j)) {
      servers.push_back(static_cast<std::uint32_t>(j));
    }
  }
  std::stable_sort(servers.begin(), servers.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return inst.infra.server(a).usage_cost <
                            inst.infra.server(b).usage_cost;
                   });

  for (std::uint32_t j : servers) {
    placement.assign(k, static_cast<std::int32_t>(j));
    for (std::size_t l = 0; l < inst.h(); ++l) {
      used(j, l) += inst.requests.vms[k].demand[l];
    }
    if (dfs(placement, used, order, depth + 1, backtracks)) {
      return true;
    }
    for (std::size_t l = 0; l < inst.h(); ++l) {
      used(j, l) -= inst.requests.vms[k].demand[l];
    }
    placement.reject(k);
    if (++backtracks >= options_.max_backtracks) {
      return false;
    }
  }
  return false;
}

std::uint32_t CpRepair::repair(std::vector<std::int32_t>& genes, Rng& rng) {
  const Instance& inst = *instance_;
  IAAS_EXPECT(genes.size() == inst.n(), "gene count mismatch with instance");

  Placement placement(genes);
  const std::vector<std::int32_t> original = genes;

  // Identify the VMs involved in violations.
  ViolationReport report = checker_.check(placement);
  if (report.feasible()) {
    return 0;
  }
  std::vector<char> bad(inst.n(), 0);
  for (std::uint32_t j : report.overloaded_servers) {
    for (std::size_t k = 0; k < inst.n(); ++k) {
      if (placement.is_assigned(k) &&
          placement.server_of(k) == static_cast<std::int32_t>(j)) {
        bad[k] = 1;
      }
    }
  }
  for (const PlacementConstraint& c : inst.requests.constraints) {
    if (!checker_.relation_satisfied(c, placement)) {
      for (std::uint32_t k : c.vms) {
        bad[k] = 1;
      }
    }
  }

  // Unassign the offenders, then re-place them by backtracking search.
  // Order: shuffled for diversity, but same-server group members kept
  // adjacent — interleaving them with unrelated VMs makes the DFS thrash
  // (a late member's failure backtracks through unrelated decisions).
  std::vector<std::uint32_t> order;
  for (std::size_t k = 0; k < inst.n(); ++k) {
    if (bad[k] != 0) {
      order.push_back(static_cast<std::uint32_t>(k));
      placement.reject(k);
    }
  }
  rng.shuffle(order);
  std::vector<std::uint32_t> regrouped;
  std::vector<char> queued(inst.n(), 0);
  regrouped.reserve(order.size());
  for (std::uint32_t k : order) {
    if (queued[k] != 0) {
      continue;
    }
    regrouped.push_back(k);
    queued[k] = 1;
    for (const PlacementConstraint& c : inst.requests.constraints) {
      if (c.kind != RelationKind::kSameServer ||
          std::find(c.vms.begin(), c.vms.end(), k) == c.vms.end()) {
        continue;
      }
      for (std::uint32_t peer : c.vms) {
        if (queued[peer] == 0 && bad[peer] != 0) {
          regrouped.push_back(peer);
          queued[peer] = 1;
        }
      }
    }
  }
  order = std::move(regrouped);

  Matrix<double> used;
  checker_.compute_used(placement, used);

  std::uint64_t backtracks = 0;
  const bool solved = dfs(placement, used, order, 0, backtracks);
  if (!solved) {
    // Keep whatever the partial search assigned; restore the original
    // server for anything still unplaced so genes remain fully assigned.
    for (std::uint32_t k : order) {
      if (!placement.is_assigned(k)) {
        placement.assign(k, original[k]);
      }
    }
  }
  genes = placement.genes();
  return checker_.check(placement).total();
}

}  // namespace iaas
