// Filtering algorithm — the fourth family of the paper's Table II
// (compliance with constraints: NO; resource scalability: yes).
//
// The classic scheduler pattern (e.g. OpenStack's filter scheduler):
// for each VM, *filter* the server list down to hosts with enough
// remaining capacity, then *weigh* the survivors (least-loaded first)
// and pick the best.  The filter pipeline knows nothing about the
// consumer's affinity/anti-affinity relationships — which is exactly
// why Table II scores the family "compliance with constraints: NO":
// its raw output can violate relationship constraints, and those VMs
// are lost to sanitization.
#pragma once

#include "algo/allocator.h"

namespace iaas {

class FilteringAllocator : public Allocator {
 public:
  explicit FilteringAllocator(ObjectiveOptions options = {})
      : options_(options) {}

  [[nodiscard]] std::string name() const override { return "Filtering"; }

  AllocationResult allocate(const Instance& instance,
                            std::uint64_t seed) override;

 private:
  ObjectiveOptions options_;
};

}  // namespace iaas
