// Round Robin with server affinity — the paper's first baseline ([26]:
// Mahajan, Makroo & Dahiya, "Round Robin with Server Affinity: A VM Load
// Balancing Algorithm for Cloud Based Infrastructure"), "already tuned
// for cloud resource allocation where virtual machines can be allocated
// and sorted by affinity".
//
// VMs are ordered so that relationship-group members are handled
// back-to-back (the affinity sort); a rotating cursor spreads load across
// servers; each VM takes the first server from the cursor where the
// allocation is valid (capacity + relationships), and is rejected when a
// full sweep finds none.
#pragma once

#include "algo/allocator.h"

namespace iaas {

class RoundRobinAllocator : public Allocator {
 public:
  explicit RoundRobinAllocator(ObjectiveOptions options = {})
      : options_(options) {}

  [[nodiscard]] std::string name() const override { return "RoundRobin"; }

  AllocationResult allocate(const Instance& instance,
                            std::uint64_t seed) override;

 private:
  ObjectiveOptions options_;
};

}  // namespace iaas
