// The four evolutionary allocators of the paper's comparison (§IV):
//   * Nsga2Allocator      — unmodified NSGA-II (constraints invisible);
//   * Nsga3Allocator      — unmodified NSGA-III;
//   * Nsga3CpAllocator    — NSGA-III + constraint-solver repair;
//   * Nsga3TabuAllocator  — NSGA-III + tabu-search repair (the paper's
//                           proposed algorithm).
//
// All run the Table III configuration by default, and pick the deployed
// solution from the final front by Euclidean distance to the ideal point.
#pragma once

#include <utility>
#include <vector>

#include "algo/allocator.h"
#include "algo/cp_repair.h"
#include "ea/nsga_config.h"
#include "tabu/repair.h"
#include "tabu/tabu_search.h"

namespace iaas {

struct EaAllocatorOptions {
  NsgaConfig nsga;                 // Table III defaults
  ObjectiveOptions objectives;
  TabuRepairOptions tabu_repair;   // hybrid variant
  CpRepairOptions cp_repair;       // constraint-solver variant
  // Extension: polish the selected solution with the standalone tabu
  // search after the EA finishes (off by default — not in the paper).
  bool post_tabu_search = false;
  TabuSearchOptions post_search;
};

// Shared state/plumbing of the EA family: the options block, the anytime
// time budget, and the cross-window warm-start hand-off (seed_next_run
// installs the seeds into NsgaConfig::seed_genes and arms final-front
// export on the next allocate call).
class EaAllocatorBase : public Allocator {
 public:
  explicit EaAllocatorBase(EaAllocatorOptions options)
      : options_(std::move(options)) {}

  void set_time_budget(double seconds) override {
    options_.nsga.time_limit_seconds = seconds;
  }

  bool seed_next_run(
      std::vector<std::vector<std::int32_t>> front) override {
    options_.nsga.seed_genes = std::move(front);
    export_front_ = true;
    return true;
  }

  [[nodiscard]] const EaAllocatorOptions& options() const {
    return options_;
  }

 protected:
  EaAllocatorOptions options_;
  // Once armed (first seed_next_run call, possibly with an empty front),
  // every subsequent result carries front_genes.
  bool export_front_ = false;
};

class Nsga2Allocator : public EaAllocatorBase {
 public:
  explicit Nsga2Allocator(EaAllocatorOptions options = {});
  [[nodiscard]] std::string name() const override { return "NSGA-II"; }
  AllocationResult allocate(const Instance& instance,
                            std::uint64_t seed) override;
};

class Nsga3Allocator : public EaAllocatorBase {
 public:
  explicit Nsga3Allocator(EaAllocatorOptions options = {});
  [[nodiscard]] std::string name() const override { return "NSGA-III"; }
  AllocationResult allocate(const Instance& instance,
                            std::uint64_t seed) override;
};

class Nsga3CpAllocator : public EaAllocatorBase {
 public:
  explicit Nsga3CpAllocator(EaAllocatorOptions options = {});
  [[nodiscard]] std::string name() const override { return "NSGA-III+CP"; }
  AllocationResult allocate(const Instance& instance,
                            std::uint64_t seed) override;
};

class Nsga3TabuAllocator : public EaAllocatorBase {
 public:
  explicit Nsga3TabuAllocator(EaAllocatorOptions options = {});
  [[nodiscard]] std::string name() const override { return "NSGA-III+Tabu"; }
  AllocationResult allocate(const Instance& instance,
                            std::uint64_t seed) override;
};

}  // namespace iaas
