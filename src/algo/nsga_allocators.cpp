#include "algo/nsga_allocators.h"

#include "algo/ideal_point.h"
#include "common/stopwatch.h"
#include "ea/nsga2.h"
#include "ea/nsga3.h"
#include "ea/problem.h"

namespace iaas {
namespace {

// Shared tail of every EA allocator: run the engine, pick the front
// member nearest the ideal point, optionally polish with tabu search,
// then audit + sanitize.  `export_front` additionally copies the final
// front's gene vectors into the result for the warm-start hand-off.
template <typename Engine>
AllocationResult run_engine(const Instance& instance, std::uint64_t seed,
                            const std::string& algo_name,
                            const EaAllocatorOptions& options,
                            Engine& engine, bool export_front,
                            const RepairFn& final_repair = nullptr,
                            std::shared_ptr<const StateTables> tables =
                                nullptr) {
  Stopwatch timer;
  typename Engine::Result ea_result = engine.run(seed);

  const std::size_t pick = select_ideal_point(ea_result.front);
  std::vector<std::int32_t> genes = ea_result.front[pick].genes;
  // The repaired hybrids guarantee a compliant answer: one last repair
  // pass over the deployed solution (cheap no-op when already feasible).
  if (final_repair) {
    Rng repair_rng(seed ^ 0x66696e616cULL);
    final_repair(genes, repair_rng);
  }
  Placement placement(std::move(genes));

  if (options.post_tabu_search) {
    TabuSearch search(instance, options.post_search, options.objectives,
                      std::move(tables));
    Rng rng(seed ^ 0x7261626175u);  // independent polish stream
    placement = search.improve(placement, rng).best;
  }

  AllocationResult result = Allocator::finalize(
      instance, algo_name, std::move(placement), timer.elapsed_seconds(),
      ea_result.evaluations, options.objectives);
  result.deadline_hit = ea_result.hit_time_limit;
  if (!ea_result.trace.empty()) {
    result.trace = std::move(ea_result.trace);
    result.trace.label = algo_name;
  }
  if (export_front) {
    result.front_genes.reserve(ea_result.front.size());
    for (Individual& member : ea_result.front) {
      result.front_genes.push_back(std::move(member.genes));
    }
  }
  return result;
}

NsgaConfig unmodified(NsgaConfig config) {
  // "Unmodified" NSGA-II/III: constraints play no role in the search.
  config.constraint_mode = ConstraintMode::kIgnore;
  return config;
}

NsgaConfig with_repair(NsgaConfig config) {
  config.constraint_mode = ConstraintMode::kRepair;
  return config;
}

}  // namespace

Nsga2Allocator::Nsga2Allocator(EaAllocatorOptions options)
    : EaAllocatorBase(std::move(options)) {}

AllocationResult Nsga2Allocator::allocate(const Instance& instance,
                                          std::uint64_t seed) {
  AllocationProblem problem(instance, options_.objectives);
  Nsga2 engine(problem, unmodified(options_.nsga));
  return run_engine(instance, seed, name(), options_, engine,
                    export_front_, nullptr, problem.tables());
}

Nsga3Allocator::Nsga3Allocator(EaAllocatorOptions options)
    : EaAllocatorBase(std::move(options)) {}

AllocationResult Nsga3Allocator::allocate(const Instance& instance,
                                          std::uint64_t seed) {
  AllocationProblem problem(instance, options_.objectives);
  Nsga3 engine(problem, unmodified(options_.nsga));
  return run_engine(instance, seed, name(), options_, engine,
                    export_front_, nullptr, problem.tables());
}

Nsga3CpAllocator::Nsga3CpAllocator(EaAllocatorOptions options)
    : EaAllocatorBase(std::move(options)) {}

AllocationResult Nsga3CpAllocator::allocate(const Instance& instance,
                                            std::uint64_t seed) {
  AllocationProblem problem(instance, options_.objectives);
  CpRepair repair(instance, options_.cp_repair);
  const RepairFn repair_fn = [&repair](std::vector<std::int32_t>& genes,
                                       Rng& rng) {
    repair.repair(genes, rng);
  };
  Nsga3 engine(problem, with_repair(options_.nsga), repair_fn);
  // The deployed solution gets one deep constraint solve (cheap: a
  // single invocation) so the CP-hybrid's answer is compliant even when
  // the in-loop budget could not fully repair at scale.
  CpRepairOptions final_options = options_.cp_repair;
  final_options.max_backtracks = options_.cp_repair.final_max_backtracks;
  CpRepair final_repair(instance, final_options);
  const RepairFn final_fn = [&final_repair](std::vector<std::int32_t>& genes,
                                            Rng& rng) {
    final_repair.repair(genes, rng);
  };
  return run_engine(instance, seed, name(), options_, engine,
                    export_front_, final_fn, problem.tables());
}

Nsga3TabuAllocator::Nsga3TabuAllocator(EaAllocatorOptions options)
    : EaAllocatorBase(std::move(options)) {}

AllocationResult Nsga3TabuAllocator::allocate(const Instance& instance,
                                              std::uint64_t seed) {
  AllocationProblem problem(instance, options_.objectives);
  // One SoA flattening serves the whole hybrid: the problem's pooled
  // evaluators, the repairer's per-call states, and the post-search walk.
  TabuRepair repair(instance, options_.tabu_repair, problem.tables());
  const RepairFn repair_fn = [&repair](std::vector<std::int32_t>& genes,
                                       Rng& rng) {
    repair.repair(genes, rng);
  };
  // Offspring go through the fused repair-as-evaluation path: the repair
  // walk's PlacementState is read out directly as the evaluation, saving
  // the post-repair rebuild on every offspring.
  const StateRepairFn state_fn = [&repair](PlacementState& state, Rng& rng) {
    repair.repair_state(state, rng);
  };
  Nsga3 engine(problem, with_repair(options_.nsga), repair_fn, state_fn);
  return run_engine(instance, seed, name(), options_, engine,
                    export_front_, repair_fn, problem.tables());
}

}  // namespace iaas
