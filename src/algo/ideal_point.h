// Decision making on the final Pareto front (paper §III end): "while
// using a Euclidean approach, we choose the solution that is found closer
// to the ideal point where cost and rejection rate are the next to
// naught" — full automation, no decision maker in the loop.
//
// Each objective is min-max normalised over the front and the member with
// the smallest Euclidean distance to the origin wins; feasible members
// (zero violations) are preferred over infeasible ones.
#pragma once

#include <cstddef>
#include <vector>

#include "ea/individual.h"

namespace iaas {

// Index into `front` of the selected solution. Front must be non-empty.
std::size_t select_ideal_point(const std::vector<Individual>& front);

// Weighted variant: stakeholder weights stretch the normalised axes
// before the Euclidean distance (weight 0 removes an axis from the
// decision entirely).
std::size_t select_ideal_point(const std::vector<Individual>& front,
                               const std::array<double, 3>& weights);

}  // namespace iaas
