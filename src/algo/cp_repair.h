// Constraint-solver repair — the paper's "NSGA with constraint solver"
// variant: instead of the tabu walk, invalid individuals are handed to a
// small constraint solve.  The VMs participating in violations are
// unassigned and re-placed by a backtracking search with forward
// checking (a scoped-down CpSolver).  Heavier than the tabu repair, which
// is exactly why the paper finds this variant does not scale (Fig. 8).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "model/constraint_checker.h"
#include "model/instance.h"

namespace iaas {

struct CpRepairOptions {
  std::uint64_t max_backtracks = 500;  // per in-loop repair invocation
  // Budget for the single final pass over the solution actually
  // returned; a deeper search there is cheap (one invocation) and is
  // what keeps the CP-hybrid compliant at scale.
  std::uint64_t final_max_backtracks = 50000;
};

class CpRepair {
 public:
  explicit CpRepair(const Instance& instance, CpRepairOptions options = {});

  // Repairs genes in place; returns remaining violations (0 when the
  // mini-solve succeeded).  VMs the search cannot re-place keep their
  // original (violating) server so genes stay fully assigned.
  std::uint32_t repair(std::vector<std::int32_t>& genes, Rng& rng);

 private:
  bool dfs(Placement& placement, Matrix<double>& used,
           const std::vector<std::uint32_t>& order, std::size_t depth,
           std::uint64_t& backtracks) const;

  const Instance* instance_;
  CpRepairOptions options_;
  ConstraintChecker checker_;
};

}  // namespace iaas
