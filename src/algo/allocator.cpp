#include "algo/allocator.h"

#include <algorithm>

#include "common/expect.h"
#include "model/constraint_checker.h"

namespace iaas {

Placement sanitize_placement(const Instance& instance, const Placement& raw) {
  IAAS_EXPECT(raw.vm_count() == instance.n(),
              "placement size mismatch with instance");
  ConstraintChecker checker(instance);
  Placement placement = raw;

  // Drop assignments to out-of-range servers outright (defensive; EA
  // genes are clamped but external callers may feed anything).
  for (std::size_t k = 0; k < instance.n(); ++k) {
    const std::int32_t j = placement.server_of(k);
    if (j != Placement::kRejected &&
        (j < 0 || static_cast<std::size_t>(j) >= instance.m())) {
      placement.reject(k);
    }
  }

  // 1. Relationship groups: thin each violated group to a legal subset.
  for (const PlacementConstraint& c : instance.requests.constraints) {
    if (checker.relation_satisfied(c, placement)) {
      continue;
    }
    switch (c.kind) {
      case RelationKind::kSameServer:
      case RelationKind::kSameDatacenter: {
        // Keep the majority server/datacenter; reject the stragglers.
        std::vector<std::int32_t> slots;
        for (std::uint32_t k : c.vms) {
          if (!placement.is_assigned(k)) {
            continue;
          }
          const auto j = static_cast<std::size_t>(placement.server_of(k));
          slots.push_back(c.kind == RelationKind::kSameServer
                              ? placement.server_of(k)
                              : static_cast<std::int32_t>(
                                    instance.infra.datacenter_of(j)));
        }
        std::int32_t majority = slots.front();
        std::size_t best_count = 0;
        for (std::int32_t s : slots) {
          const auto count = static_cast<std::size_t>(
              std::count(slots.begin(), slots.end(), s));
          if (count > best_count) {
            best_count = count;
            majority = s;
          }
        }
        for (std::uint32_t k : c.vms) {
          if (!placement.is_assigned(k)) {
            continue;
          }
          const auto j = static_cast<std::size_t>(placement.server_of(k));
          const std::int32_t slot =
              c.kind == RelationKind::kSameServer
                  ? placement.server_of(k)
                  : static_cast<std::int32_t>(instance.infra.datacenter_of(j));
          if (slot != majority) {
            placement.reject(k);
          }
        }
        break;
      }
      case RelationKind::kDifferentServers:
      case RelationKind::kDifferentDatacenters: {
        std::vector<std::int32_t> taken;
        for (std::uint32_t k : c.vms) {
          if (!placement.is_assigned(k)) {
            continue;
          }
          const auto j = static_cast<std::size_t>(placement.server_of(k));
          const std::int32_t slot =
              c.kind == RelationKind::kDifferentServers
                  ? placement.server_of(k)
                  : static_cast<std::int32_t>(instance.infra.datacenter_of(j));
          if (std::find(taken.begin(), taken.end(), slot) != taken.end()) {
            placement.reject(k);  // duplicate occupant
          } else {
            taken.push_back(slot);
          }
        }
        break;
      }
    }
  }

  // 2. Capacity: overloaded servers shed their largest VMs first.
  Matrix<double> used;
  checker.compute_used(placement, used);
  for (std::size_t j = 0; j < instance.m(); ++j) {
    const Server& server = instance.infra.server(j);
    auto exceeds = [&] {
      for (std::size_t l = 0; l < instance.h(); ++l) {
        if (used(j, l) > server.effective_capacity(l) + 1e-9) {
          return true;
        }
      }
      return false;
    };
    if (!exceeds()) {
      continue;
    }
    // VMs on j sorted by largest relative demand — shedding big ones
    // first rejects the fewest requests.
    std::vector<std::uint32_t> occupants;
    for (std::size_t k = 0; k < instance.n(); ++k) {
      if (placement.is_assigned(k) &&
          static_cast<std::size_t>(placement.server_of(k)) == j) {
        occupants.push_back(static_cast<std::uint32_t>(k));
      }
    }
    auto relative_demand = [&](std::uint32_t k) {
      double worst = 0.0;
      for (std::size_t l = 0; l < instance.h(); ++l) {
        worst = std::max(worst, instance.requests.vms[k].demand[l] /
                                    server.effective_capacity(l));
      }
      return worst;
    };
    std::stable_sort(occupants.begin(), occupants.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return relative_demand(a) > relative_demand(b);
                     });
    for (std::uint32_t k : occupants) {
      if (!exceeds()) {
        break;
      }
      for (std::size_t l = 0; l < instance.h(); ++l) {
        used(j, l) -= instance.requests.vms[k].demand[l];
      }
      placement.reject(k);
    }
  }

  IAAS_DEBUG_EXPECT(ConstraintChecker(instance).check(placement).feasible(),
                    "sanitized placement must be feasible");
  return placement;
}

AllocationResult Allocator::finalize(const Instance& instance,
                                     std::string algorithm, Placement raw,
                                     double wall_seconds,
                                     std::size_t evaluations,
                                     const ObjectiveOptions& options) {
  AllocationResult result;
  result.algorithm = std::move(algorithm);
  result.vm_count = instance.n();
  result.wall_seconds = wall_seconds;
  result.evaluations = evaluations;

  ConstraintChecker checker(instance);
  result.raw_violations = checker.check(raw);
  result.raw_placement = std::move(raw);

  result.placement = sanitize_placement(instance, result.raw_placement);
  result.rejected = result.placement.rejected_count();

  Evaluator evaluator(instance, options);
  result.objectives = evaluator.objectives(result.placement);
  return result;
}

}  // namespace iaas
