#include "algo/metrics.h"

#include <algorithm>

#include "common/expect.h"
#include "model/attributes.h"
#include "model/load_model.h"

namespace iaas {
namespace {

double priced_demand(const VmRequest& vm, const PriceModel& prices) {
  double value = 0.0;
  if (vm.demand.size() > kCpu) {
    value += prices.per_cpu_core * vm.demand[kCpu];
  }
  if (vm.demand.size() > kRam) {
    value += prices.per_ram_gb * vm.demand[kRam];
  }
  if (vm.demand.size() > kDisk) {
    value += prices.per_disk_gb * vm.demand[kDisk];
  }
  return value;
}

}  // namespace

NormalizedMetrics compute_metrics(const Instance& instance,
                                  const AllocationResult& result,
                                  const PriceModel& prices) {
  IAAS_EXPECT(result.vm_count == instance.n(),
              "result does not belong to this instance");
  NormalizedMetrics metrics;
  const std::size_t accepted = result.vm_count - result.rejected;
  metrics.acceptance_rate =
      result.vm_count == 0
          ? 0.0
          : static_cast<double>(accepted) /
                static_cast<double>(result.vm_count);

  const double total_cost = result.objectives.aggregate();
  metrics.cost_per_accepted_request =
      accepted == 0 ? 0.0 : total_cost / static_cast<double>(accepted);

  double demanded_value = 0.0;
  for (const VmRequest& vm : instance.requests.vms) {
    demanded_value += priced_demand(vm, prices);
  }
  metrics.cost_per_demanded_unit =
      demanded_value <= 0.0 ? 0.0 : total_cost / demanded_value;

  for (std::size_t k = 0; k < instance.n(); ++k) {
    if (result.placement.is_assigned(k)) {
      metrics.revenue += priced_demand(instance.requests.vms[k], prices);
    }
  }
  metrics.net_profit = metrics.revenue - total_cost;
  return metrics;
}

UtilizationSummary compute_utilization(const Instance& instance,
                                       const Placement& placement) {
  UtilizationSummary summary;
  Matrix<double> loads;
  compute_loads(instance, placement, loads);

  std::vector<std::uint32_t> vms_on(instance.m(), 0);
  for (std::size_t k = 0; k < instance.n(); ++k) {
    if (placement.is_assigned(k)) {
      ++vms_on[static_cast<std::size_t>(placement.server_of(k))];
    }
  }

  std::vector<double> dc_sum(instance.g(), 0.0);
  std::vector<std::size_t> dc_count(instance.g(), 0);
  double sum = 0.0;
  for (std::size_t j = 0; j < instance.m(); ++j) {
    if (vms_on[j] == 0) {
      continue;
    }
    ++summary.used_servers;
    double worst = 0.0;
    for (std::size_t l = 0; l < instance.h(); ++l) {
      worst = std::max(worst, loads(j, l));
    }
    sum += worst;
    summary.peak_worst_load = std::max(summary.peak_worst_load, worst);
    const std::uint32_t dc = instance.infra.datacenter_of(j);
    dc_sum[dc] += worst;
    ++dc_count[dc];
  }
  if (summary.used_servers > 0) {
    summary.mean_worst_load =
        sum / static_cast<double>(summary.used_servers);
  }
  summary.per_datacenter_mean_load.resize(instance.g(), 0.0);
  for (std::size_t dc = 0; dc < instance.g(); ++dc) {
    if (dc_count[dc] > 0) {
      summary.per_datacenter_mean_load[dc] =
          dc_sum[dc] / static_cast<double>(dc_count[dc]);
    }
  }
  return summary;
}

}  // namespace iaas
