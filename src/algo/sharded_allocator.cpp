#include "algo/sharded_allocator.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <optional>
#include <thread>
#include <utility>

#include "common/expect.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "model/assignment_units.h"
#include "model/placement_state.h"

namespace iaas {

namespace {

std::size_t hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace

ShardedAllocator::ShardedAllocator(ShardedAllocatorOptions options)
    : options_(std::move(options)) {}

ShardedAllocator::~ShardedAllocator() = default;

std::string ShardedAllocator::name() const {
  return "Sharded[" + algorithm_name(options_.backend) + "]";
}

void ShardedAllocator::set_time_budget(double seconds) {
  time_budget_seconds_ = seconds;
  for (const std::unique_ptr<Allocator>& backend : backends_) {
    if (backend != nullptr) {
      backend->set_time_budget(seconds);
    }
  }
}

bool ShardedAllocator::seed_next_run(
    std::vector<std::vector<std::int32_t>> front) {
  pending_front_ = std::move(front);
  export_front_ = true;
  return true;
}

void ShardedAllocator::prepare(const Instance& instance) {
  const Fabric& fabric = instance.infra.fabric();
  const std::uint32_t wanted =
      options_.shard_count != 0 ? options_.shard_count
                                : fabric.datacenter_count();
  auto plan = std::make_unique<ShardPlan>(fabric, wanted);
  // Backends persist (carrying their warm-start fronts) while the shard
  // layout is unchanged; a different layout invalidates every slice
  // indexing, so they restart cold.
  const bool same_layout =
      plan_ != nullptr && plan_->slices() == plan->slices();
  plan_ = std::move(plan);
  const std::size_t shards = plan_->shard_count();

  const std::size_t total =
      options_.threads != 0 ? options_.threads : hardware_threads();
  inner_threads_ = std::max<std::size_t>(1, total / shards);
  const std::size_t concurrent = std::min(shards, total);
  if (concurrent > 1) {
    // parallel_for's caller participates, so the pool itself only needs
    // concurrent - 1 workers to reach the shard-level budget.
    if (outer_pool_ == nullptr || outer_pool_->size() != concurrent - 1) {
      outer_pool_ = std::make_unique<ThreadPool>(concurrent - 1);
    }
  } else {
    outer_pool_.reset();
  }

  if (!same_layout || backends_.size() != shards) {
    backends_.clear();
    backends_.resize(shards);
  }
  for (std::unique_ptr<Allocator>& backend : backends_) {
    if (backend == nullptr) {
      SuiteOptions suite = options_.suite;
      suite.ea.nsga.threads = inner_threads_;
      backend = make_allocator(options_.backend, suite);
      if (time_budget_seconds_ > 0.0) {
        backend->set_time_budget(time_budget_seconds_);
      }
    }
  }
}

AllocationResult ShardedAllocator::allocate(const Instance& instance,
                                            std::uint64_t seed) {
  const auto start = std::chrono::steady_clock::now();
  prepare(instance);
  const ShardPlan& plan = *plan_;
  const std::size_t shards = plan.shard_count();
  const std::size_t n = instance.n();
  const std::size_t m = instance.m();

  // --- 1. unit routing -------------------------------------------------
  // Units carrying a different-datacenters constraint can only be solved
  // where real DC boundaries exist: multi-DC shards, or (when the plan
  // has none) the global rebalance pass.
  std::vector<char> has_diff_dc(n, 0);
  const bool multi_dc_fabric = instance.infra.datacenter_count() > 1;
  if (multi_dc_fabric) {
    for (const PlacementConstraint& c : instance.requests.constraints) {
      if (c.kind == RelationKind::kDifferentDatacenters) {
        for (const std::uint32_t k : c.vms) {
          has_diff_dc[k] = 1;
        }
      }
    }
  }
  bool any_multi_dc_shard = false;
  for (const ShardSlice& slice : plan.slices()) {
    any_multi_dc_shard |= slice.datacenter_count() > 1;
  }

  std::vector<std::int32_t> shard_of_vm(n, -1);
  std::vector<double> shard_load(shards, 0.0);
  std::vector<std::vector<std::uint32_t>> members(shards);
  for (const std::vector<std::uint32_t>& unit :
       assignment_units(instance.requests)) {
    bool needs_multi_dc = false;
    double weight = 0.0;
    for (const std::uint32_t k : unit) {
      needs_multi_dc |= has_diff_dc[k] != 0;
      weight += 1.0;
      for (const double d : instance.requests.vms[k].demand) {
        weight += d;
      }
    }
    if (needs_multi_dc && !any_multi_dc_shard) {
      continue;  // rebalance-only unit
    }
    // Least relative load among the eligible shards, ties to the lowest
    // index — deterministic, and proportional to slice size so unequal
    // shards fill evenly.
    std::size_t best = shards;
    double best_score = std::numeric_limits<double>::infinity();
    for (std::size_t s = 0; s < shards; ++s) {
      if (needs_multi_dc && plan.slice(s).datacenter_count() < 2) {
        continue;
      }
      const double score = (shard_load[s] + weight) /
                           static_cast<double>(plan.slice(s).server_count());
      if (score < best_score) {
        best_score = score;
        best = s;
      }
    }
    IAAS_EXPECT(best < shards, "unit routing found no eligible shard");
    shard_load[best] += weight;
    for (const std::uint32_t k : unit) {
      shard_of_vm[k] = static_cast<std::int32_t>(best);
    }
    members[best].insert(members[best].end(), unit.begin(), unit.end());
  }
  for (std::vector<std::uint32_t>& slice_vms : members) {
    std::sort(slice_vms.begin(), slice_vms.end());
  }

  // --- 2. slice + concurrent shard runs --------------------------------
  // Per-shard seeds are drawn in shard order for every shard (empty ones
  // included), so a membership change in one shard can never shift
  // another shard's stream.
  Rng rng(seed);
  std::vector<std::uint64_t> shard_seed(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shard_seed[s] = rng.next_u64();
  }

  std::vector<std::optional<Instance>> sliced(shards);
  std::vector<std::int32_t> local_of(n, -1);
  for (std::size_t s = 0; s < shards; ++s) {
    if (members[s].empty()) {
      continue;
    }
    const ShardSlice& slice = plan.slice(s);
    RequestSet requests;
    requests.vms.reserve(members[s].size());
    for (const std::uint32_t g : members[s]) {
      local_of[g] = static_cast<std::int32_t>(requests.vms.size());
      requests.vms.push_back(instance.requests.vms[g]);
    }
    // Units are constraint-closed, so a constraint's members are either
    // all in this shard or all elsewhere — checking one member suffices.
    for (const PlacementConstraint& c : instance.requests.constraints) {
      if (shard_of_vm[c.vms.front()] != static_cast<std::int32_t>(s)) {
        continue;
      }
      std::vector<std::uint32_t> local_members;
      local_members.reserve(c.vms.size());
      for (const std::uint32_t g : c.vms) {
        local_members.push_back(static_cast<std::uint32_t>(local_of[g]));
      }
      requests.constraints.push_back({c.kind, std::move(local_members)});
    }
    // Server records of the slice's contiguous global range, with the
    // datacenter field remapped into the slice fabric's local numbering.
    std::vector<Server> servers(
        instance.infra.servers().begin() + slice.server_begin,
        instance.infra.servers().begin() + slice.server_end);
    for (Server& server : servers) {
      server.datacenter =
          slice.whole_datacenters ? server.datacenter - slice.dc_begin : 0;
    }
    Instance& local = sliced[s].emplace(
        Infrastructure(plan.slice_fabric(s), std::move(servers)),
        std::move(requests));
    // Previous placement: in-shard servers translate; a VM previously
    // hosted outside the slice counts as fresh (its true migration cost
    // is restored by the global audit in stage 3).
    for (std::size_t k = 0; k < members[s].size(); ++k) {
      const std::int32_t prev = instance.previous.server_of(members[s][k]);
      if (prev >= static_cast<std::int32_t>(slice.server_begin) &&
          prev < static_cast<std::int32_t>(slice.server_end)) {
        local.previous.assign(
            k, prev - static_cast<std::int32_t>(slice.server_begin));
      }
    }
    for (const std::uint32_t g : members[s]) {
      local_of[g] = -1;  // reset the scratch map for the next shard
    }
  }

  // Warm start: slice the pending global front per shard.  Once armed,
  // every backend is (re)seeded each call — possibly with an empty front
  // — which also keeps its front export armed.
  if (export_front_) {
    for (std::size_t s = 0; s < shards; ++s) {
      const ShardSlice& slice = plan.slice(s);
      std::vector<std::vector<std::int32_t>> local_front;
      if (!members[s].empty()) {
        local_front.reserve(pending_front_.size());
        for (const std::vector<std::int32_t>& genes : pending_front_) {
          if (genes.size() != n) {
            continue;  // stale front from a different request set
          }
          std::vector<std::int32_t> local(members[s].size(),
                                          Placement::kRejected);
          for (std::size_t k = 0; k < members[s].size(); ++k) {
            const std::int32_t g = genes[members[s][k]];
            if (g >= static_cast<std::int32_t>(slice.server_begin) &&
                g < static_cast<std::int32_t>(slice.server_end)) {
              local[k] = g - static_cast<std::int32_t>(slice.server_begin);
            }
          }
          local_front.push_back(std::move(local));
        }
      }
      backends_[s]->seed_next_run(std::move(local_front));
    }
    pending_front_.clear();
  }

  // Concurrent runs: telemetry is captured per task and re-emitted on
  // the caller thread in shard order, so counter totals stay
  // deterministic at any thread count.
  std::vector<AllocationResult> shard_result(shards);
  std::vector<telemetry::CounterBlock> blocks(shards);
  const auto run_shard = [&](std::size_t s) {
    if (!sliced[s].has_value()) {
      return;
    }
    telemetry::ScopedSink sink(blocks[s]);
    shard_result[s] = backends_[s]->allocate(*sliced[s], shard_seed[s]);
  };
  if (outer_pool_ != nullptr) {
    outer_pool_->parallel_for(0, shards, run_shard, 1);
  } else {
    for (std::size_t s = 0; s < shards; ++s) {
      run_shard(s);
    }
  }
  for (const telemetry::CounterBlock& block : blocks) {
    for (std::size_t i = 0; i < telemetry::kCounterCount; ++i) {
      if (block.values[i] != 0) {
        telemetry::count(static_cast<telemetry::Counter>(i),
                         block.values[i]);
      }
    }
  }

  // --- 3. merge, global audit, cross-shard rebalance -------------------
  Placement merged_raw(n);
  std::size_t evaluations = 0;
  bool deadline_hit = false;
  for (std::size_t s = 0; s < shards; ++s) {
    const ShardSlice& slice = plan.slice(s);
    const AllocationResult& r = shard_result[s];
    for (std::size_t k = 0; k < members[s].size(); ++k) {
      const std::int32_t local = r.raw_placement.server_of(k);
      if (local >= 0) {
        merged_raw.assign(
            members[s][k],
            local + static_cast<std::int32_t>(slice.server_begin));
      }
    }
    evaluations += r.evaluations;
    deadline_hit |= r.deadline_hit;
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  AllocationResult merged =
      Allocator::finalize(instance, name(), std::move(merged_raw), wall,
                          evaluations, options_.suite.objectives);
  merged.deadline_hit = deadline_hit;
  merged.trace.label = name();
  merged.trace.seed = seed;
  for (std::size_t s = 0; s < shards; ++s) {
    merged.trace.rows.insert(merged.trace.rows.end(),
                             shard_result[s].trace.rows.begin(),
                             shard_result[s].trace.rows.end());
  }

  merged.shard.shard_count = shards;
  merged.shard.pre_rejections = merged.rejected;
  std::size_t max_vms = 0;
  std::size_t min_vms = std::numeric_limits<std::size_t>::max();
  for (const std::vector<std::uint32_t>& slice_vms : members) {
    max_vms = std::max(max_vms, slice_vms.size());
    min_vms = std::min(min_vms, slice_vms.size());
  }
  merged.shard.max_shard_vms = max_vms;
  merged.shard.min_shard_vms = shards == 0 ? 0 : min_vms;
  if (merged.shard.pre_rejections > 0) {
    telemetry::count(telemetry::Counter::kShardPreRejections,
                     merged.shard.pre_rejections);
  }

  if (options_.rebalance && merged.rejected > 0) {
    // Incremental delta engine over the sanitized global placement: the
    // state starts feasible, and only moves that keep violations_delta
    // <= 0 are ever committed, so it stays feasible.
    PlacementState state(instance, options_.suite.objectives,
                         StateTracking::kFull);
    state.rebuild(merged.placement);
    std::vector<std::uint32_t> placed;
    for (std::size_t k = 0; k < n; ++k) {
      if (state.placement().is_assigned(k)) {
        continue;
      }
      if (placed.size() >= options_.max_rebalance_placements) {
        break;
      }
      std::int32_t best_server = Placement::kRejected;
      double best_delta = std::numeric_limits<double>::infinity();
      for (std::size_t j = 0; j < m; ++j) {
        const ObjectiveDelta d =
            state.try_move(k, static_cast<std::int32_t>(j));
        if (d.violations_delta == 0 && d.aggregate_delta < best_delta) {
          best_delta = d.aggregate_delta;
          best_server = static_cast<std::int32_t>(j);
        }
      }
      if (best_server != Placement::kRejected) {
        state.apply_move(k, best_server);
        placed.push_back(static_cast<std::uint32_t>(k));
      }
    }
    // Pull rebalance orphans back into their routed shard when it
    // strictly improves the aggregate (boundary losers migrating home).
    std::size_t migrations = 0;
    for (const std::uint32_t k : placed) {
      if (migrations >= options_.max_migrations) {
        break;
      }
      const std::int32_t home = shard_of_vm[k];
      if (home < 0) {
        continue;  // rebalance-only unit: anywhere is home
      }
      const ShardSlice& slice =
          plan.slice(static_cast<std::uint32_t>(home));
      const std::int32_t current = state.placement().server_of(k);
      if (current >= static_cast<std::int32_t>(slice.server_begin) &&
          current < static_cast<std::int32_t>(slice.server_end)) {
        continue;
      }
      std::int32_t best_server = Placement::kRejected;
      double best_delta = -options_.migration_min_gain;
      for (std::uint32_t j = slice.server_begin; j < slice.server_end;
           ++j) {
        const ObjectiveDelta d =
            state.try_move(k, static_cast<std::int32_t>(j));
        if (d.violations_delta <= 0 && d.aggregate_delta < best_delta) {
          best_delta = d.aggregate_delta;
          best_server = static_cast<std::int32_t>(j);
        }
      }
      if (best_server != Placement::kRejected) {
        state.apply_move(k, best_server);
        ++migrations;
      }
    }
    merged.shard.rebalance_placements = placed.size();
    merged.shard.migrations = migrations;
    if (!placed.empty()) {
      telemetry::count(telemetry::Counter::kShardRebalancePlacements,
                       placed.size());
    }
    if (migrations > 0) {
      telemetry::count(telemetry::Counter::kShardMigrations, migrations);
    }
    merged.placement = state.placement();
    merged.objectives = state.objectives();
    merged.rejected = merged.placement.rejected_count();
  }

  if (export_front_) {
    // Global front: the final placement first (the one seed guaranteed
    // feasible), then the per-shard fronts stitched index-by-index
    // (shards with shorter fronts repeat their last member).
    std::size_t front_size = 0;
    for (const AllocationResult& r : shard_result) {
      front_size = std::max(front_size, r.front_genes.size());
    }
    merged.front_genes.reserve(front_size + 1);
    merged.front_genes.push_back(merged.placement.genes());
    for (std::size_t i = 0; i < front_size; ++i) {
      std::vector<std::int32_t> genes(n, Placement::kRejected);
      for (std::size_t s = 0; s < shards; ++s) {
        const auto& front = shard_result[s].front_genes;
        if (front.empty()) {
          continue;
        }
        const std::vector<std::int32_t>& local =
            front[std::min(i, front.size() - 1)];
        const ShardSlice& slice = plan.slice(s);
        for (std::size_t k = 0; k < members[s].size(); ++k) {
          if (local[k] >= 0) {
            genes[members[s][k]] =
                local[k] + static_cast<std::int32_t>(slice.server_begin);
          }
        }
      }
      merged.front_genes.push_back(std::move(genes));
    }
  }
  merged.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return merged;
}

}  // namespace iaas
