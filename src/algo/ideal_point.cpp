#include "algo/ideal_point.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/expect.h"

namespace iaas {

std::size_t select_ideal_point(const std::vector<Individual>& front) {
  return select_ideal_point(front, {1.0, 1.0, 1.0});
}

std::size_t select_ideal_point(const std::vector<Individual>& front,
                               const std::array<double, 3>& weights) {
  IAAS_EXPECT(!front.empty(), "cannot select from an empty front");

  // Prefer the feasible subset when it exists.
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < front.size(); ++i) {
    if (front[i].violations == 0) {
      candidates.push_back(i);
    }
  }
  if (candidates.empty()) {
    candidates.resize(front.size());
    for (std::size_t i = 0; i < front.size(); ++i) {
      candidates[i] = i;
    }
  }

  const std::size_t objectives = front.front().objectives.size();
  std::vector<double> lo(objectives,
                         std::numeric_limits<double>::infinity());
  std::vector<double> hi(objectives,
                         -std::numeric_limits<double>::infinity());
  for (std::size_t i : candidates) {
    for (std::size_t o = 0; o < objectives; ++o) {
      lo[o] = std::min(lo[o], front[i].objectives[o]);
      hi[o] = std::max(hi[o], front[i].objectives[o]);
    }
  }

  std::size_t best = candidates.front();
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i : candidates) {
    double dist2 = 0.0;
    for (std::size_t o = 0; o < objectives; ++o) {
      const double range = hi[o] - lo[o];
      const double v =
          range > 1e-12 ? (front[i].objectives[o] - lo[o]) / range : 0.0;
      const double weighted = v * weights[o];
      dist2 += weighted * weighted;
    }
    const double dist = std::sqrt(dist2);
    if (dist < best_dist) {
      best_dist = dist;
      best = i;
    }
  }
  return best;
}

}  // namespace iaas
