#include "algo/cp_allocator.h"

#include "common/stopwatch.h"
#include "lp/propagating_solver.h"

namespace iaas {

AllocationResult CpAllocator::allocate(const Instance& instance,
                                       std::uint64_t /*seed*/) {
  Stopwatch timer;
  Placement placement(instance.n());
  if (use_propagation_) {
    PropagatingCpSolver solver(instance, solver_options_);
    placement = solver.solve(&last_stats_);
  } else {
    CpSolver solver(instance, solver_options_);
    placement = solver.solve(&last_stats_);
  }
  return finalize(instance, name(), std::move(placement),
                  timer.elapsed_seconds(), 0, objective_options_);
}

}  // namespace iaas
