// Unified allocator interface and result record for the paper's
// algorithm comparison (§IV): every algorithm is measured on
//   a) execution time, b) rejection rate, c) violated constraints,
//   d) provider cost — the four axes of Figs. 7-11.
//
// Result semantics: `raw_placement` is the algorithm's direct output and
// `raw_violations` its constraint audit (Fig. 10 reports the raw
// violations of the unmodified EAs).  Since a provider cannot deploy a
// violating plan, the raw output is then *sanitized* — every VM whose
// placement breaks a constraint is rejected — and the deployable
// `placement` drives cost (Fig. 11) and the rejection rate (Fig. 9).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/telemetry.h"
#include "model/instance.h"
#include "model/objectives.h"
#include "model/placement.h"

namespace iaas {

// Per-window statistics of one sharded allocation (algo/sharded_allocator):
// how the load split across shards, how lossy the split was before the
// cross-shard rebalance pass, and what the rebalance recovered.
struct ShardRunStats {
  std::size_t shard_count = 0;
  std::size_t pre_rejections = 0;        // rejected by every shard's EA run
  std::size_t rebalance_placements = 0;  // recovered by the global pass
  std::size_t migrations = 0;            // cross-shard improvement moves
  std::size_t max_shard_vms = 0;         // routing imbalance: largest and
  std::size_t min_shard_vms = 0;         // smallest shard slice (VM count)
};

struct AllocationResult {
  std::string algorithm;

  Placement raw_placement;         // as produced by the algorithm
  ViolationReport raw_violations;  // audit of the raw output (Fig. 10)

  Placement placement;             // sanitized, always feasible
  ObjectiveVector objectives;      // of the sanitized placement (Fig. 11)
  std::size_t vm_count = 0;
  std::size_t rejected = 0;        // of the sanitized placement (Fig. 9)

  double wall_seconds = 0.0;       // Fig. 7/8
  std::size_t evaluations = 0;     // EA objective evaluations (0 otherwise)

  // True when a time budget (set_time_budget) truncated the search: the
  // placement is the best answer found so far, not the full-budget one.
  bool deadline_hit = false;

  // Per-generation decision trace (empty unless the algorithm is an EA
  // run with NsgaConfig::collect_trace set).
  telemetry::RunTrace trace;

  // Final-front gene vectors, exported only after seed_next_run() armed
  // the allocator (EA family; empty otherwise).  The simulator carries
  // them across windows — compacted alongside the live placement — and
  // feeds them back through seed_next_run to warm-start the next search.
  std::vector<std::vector<std::int32_t>> front_genes;

  // Filled only by the sharded allocator (shard_count > 0 then).
  ShardRunStats shard;

  [[nodiscard]] double rejection_rate() const {
    return vm_count == 0
               ? 0.0
               : static_cast<double>(rejected) /
                     static_cast<double>(vm_count);
  }
};

class Allocator {
 public:
  virtual ~Allocator() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  // Produce an allocation for the instance.  `seed` drives every
  // stochastic component; deterministic algorithms ignore it.
  virtual AllocationResult allocate(const Instance& instance,
                                    std::uint64_t seed) = 0;

  // Soft per-call wall-clock budget (seconds; 0 = unlimited).  Anytime
  // algorithms (the EA family) truncate their search and flag the result
  // with `deadline_hit`; algorithms with no anytime behaviour ignore it.
  // The simulator sets this from SimConfig::allocator_deadline_seconds.
  virtual void set_time_budget(double /*seconds*/) {}

  // Warm-start hand-off between successive allocate() calls: `front`
  // holds gene vectors aligned to the NEXT call's VM indexing (typically
  // the previous call's front_genes, compacted by the simulator).
  // Returns true when the allocator consumed the seeds — which also arms
  // front_genes export on the next result.  The default ignores seeds
  // and returns false (stateless algorithms have nothing to warm).
  virtual bool seed_next_run(
      std::vector<std::vector<std::int32_t>> /*front*/) {
    return false;
  }

  // Audits + sanitizes a raw placement and fills the metric fields.
  // Public so composition helpers (and tests) can reuse the pipeline.
  static AllocationResult finalize(const Instance& instance,
                                   std::string algorithm, Placement raw,
                                   double wall_seconds,
                                   std::size_t evaluations,
                                   const ObjectiveOptions& options);
};

// Rejects every VM participating in a violated constraint so the result
// is deployable: violated relationship groups are thinned to a legal
// subset, then overloaded servers shed their largest VMs.  Rejection can
// never introduce a new violation, so the output is always feasible.
Placement sanitize_placement(const Instance& instance, const Placement& raw);

}  // namespace iaas
