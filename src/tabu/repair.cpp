#include "tabu/repair.h"

#include <algorithm>
#include <numeric>

#include "common/expect.h"
#include "tabu/tabu_list.h"

namespace iaas {

TabuRepair::TabuRepair(const Instance& instance, TabuRepairOptions options)
    : instance_(&instance),
      options_(options),
      checker_(instance),
      neighbour_order_(instance.m()) {}

const std::vector<std::uint32_t>& TabuRepair::neighbours_of(
    std::size_t server) const {
  auto& order = neighbour_order_[server];
  if (order.empty()) {
    const Fabric& fabric = instance_->infra.fabric();
    order.resize(instance_->m());
    std::iota(order.begin(), order.end(), 0u);
    const auto src = static_cast<std::uint32_t>(server);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return fabric.hop_distance(src, a) <
                              fabric.hop_distance(src, b);
                     });
  }
  return order;
}

std::int32_t TabuRepair::find_neighbour(const Placement& placement,
                                        const Matrix<double>& used,
                                        std::size_t k,
                                        const TabuList& tabu) const {
  const std::int32_t current = placement.server_of(k);
  const std::size_t anchor =
      current >= 0 ? static_cast<std::size_t>(current) : 0;
  for (std::uint32_t j : neighbours_of(anchor)) {
    if (static_cast<std::int32_t>(j) == current) {
      continue;
    }
    if (tabu.is_tabu(static_cast<std::uint32_t>(k),
                     static_cast<std::int32_t>(j))) {
      continue;
    }
    if (checker_.is_valid_allocation(placement, used, k, j)) {
      return static_cast<std::int32_t>(j);
    }
  }
  return Placement::kRejected;
}

bool TabuRepair::relocate_group(Placement& placement, Matrix<double>& used,
                                const std::vector<std::uint32_t>& vms,
                                std::int32_t target, TabuList& tabu) const {
  const Instance& inst = *instance_;
  const auto t = static_cast<std::size_t>(target);
  const Server& server = inst.infra.server(t);

  // Capacity check for the members not already on the target.
  for (std::size_t l = 0; l < inst.h(); ++l) {
    double incoming = 0.0;
    for (std::uint32_t k : vms) {
      if (placement.is_assigned(k) && placement.server_of(k) != target) {
        incoming += inst.requests.vms[k].demand[l];
      }
    }
    if (incoming == 0.0) {
      continue;
    }
    if (used(t, l) + incoming > server.effective_capacity(l) + 1e-9) {
      return false;
    }
  }

  // Move everyone; the group's own same-server relation is satisfied by
  // construction, and the post-move audit in repair() catches any clash
  // with a member's other constraints for the next pass.
  bool moved = false;
  for (std::uint32_t k : vms) {
    if (!placement.is_assigned(k) || placement.server_of(k) == target) {
      continue;
    }
    const std::int32_t from = placement.server_of(k);
    move_vm(placement, used, k, target);
    tabu.forbid(k, from);
    moved = true;
  }
  return moved;
}

void TabuRepair::move_vm(Placement& placement, Matrix<double>& used,
                         std::size_t k, std::int32_t to) const {
  const VmRequest& vm = instance_->requests.vms[k];
  const std::int32_t from = placement.server_of(k);
  if (from >= 0) {
    for (std::size_t l = 0; l < instance_->h(); ++l) {
      used(static_cast<std::size_t>(from), l) -= vm.demand[l];
    }
  }
  placement.assign(k, to);
  if (to >= 0) {
    for (std::size_t l = 0; l < instance_->h(); ++l) {
      used(static_cast<std::size_t>(to), l) += vm.demand[l];
    }
  }
}

bool TabuRepair::repair_capacity(Placement& placement, Matrix<double>& used,
                                 TabuList& tabu, Rng& rng) const {
  const Instance& inst = *instance_;
  bool moved_any = false;

  // exceedingDetection (Fig. 5 line 2): servers whose allocated demand
  // exceeds effective capacity on any attribute.
  auto exceeds = [&](std::size_t j) {
    const Server& server = inst.infra.server(j);
    for (std::size_t l = 0; l < inst.h(); ++l) {
      if (used(j, l) > server.effective_capacity(l) + 1e-9) {
        return true;
      }
    }
    return false;
  };

  // VMs grouped per server so overloaded hosts can shed load until they
  // fit again.
  std::vector<std::vector<std::uint32_t>> vms_on(inst.m());
  for (std::size_t k = 0; k < inst.n(); ++k) {
    if (placement.is_assigned(k)) {
      vms_on[static_cast<std::size_t>(placement.server_of(k))].push_back(
          static_cast<std::uint32_t>(k));
    }
  }

  for (std::size_t j = 0; j < inst.m(); ++j) {
    if (!exceeds(j)) {
      continue;
    }
    // Shed in random order so repeated repairs explore different subsets
    // (the stochastic component of the tabu walk).
    std::vector<std::uint32_t> shed_order = vms_on[j];
    rng.shuffle(shed_order);
    for (std::uint32_t k : shed_order) {
      if (!exceeds(j)) {
        break;  // server fits again: stop evicting (refinement over Fig. 5)
      }
      const std::int32_t target = find_neighbour(placement, used, k, tabu);
      if (target == Placement::kRejected) {
        continue;  // no valid neighbour for this VM; try shedding others
      }
      const std::int32_t from = placement.server_of(k);
      move_vm(placement, used, k, target);
      tabu.forbid(k, from);  // don't bounce straight back
      moved_any = true;
    }

    // Deadlock breaker: a satisfied same-server group on a too-small
    // host cannot shed members individually (each move would break the
    // relation and is_valid_allocation vetoes it) — relocate the whole
    // group to a bigger server instead.
    if (exceeds(j)) {
      for (const PlacementConstraint& c : inst.requests.constraints) {
        if (!exceeds(j)) {
          break;
        }
        if (c.kind != RelationKind::kSameServer) {
          continue;
        }
        const bool anchored_here = std::any_of(
            c.vms.begin(), c.vms.end(), [&](std::uint32_t k) {
              return placement.is_assigned(k) &&
                     placement.server_of(k) ==
                         static_cast<std::int32_t>(j);
            });
        if (!anchored_here) {
          continue;
        }
        for (std::uint32_t target : neighbours_of(j)) {
          if (target == j) {
            continue;
          }
          if (relocate_group(placement, used, c.vms,
                             static_cast<std::int32_t>(target), tabu)) {
            moved_any = true;
            break;
          }
        }
      }
    }
  }
  return moved_any;
}

bool TabuRepair::repair_relations(Placement& placement, Matrix<double>& used,
                                  TabuList& tabu, Rng& rng) const {
  const Instance& inst = *instance_;
  bool moved_any = false;

  for (const PlacementConstraint& c : inst.requests.constraints) {
    if (checker_.relation_satisfied(c, placement)) {
      continue;
    }
    switch (c.kind) {
      case RelationKind::kSameServer: {
        // Relocate the whole group atomically (member-by-member moves can
        // never reassemble a group scattered over 3+ servers, because the
        // first mover is invalid against its not-yet-moved peers).
        // Anchor candidates: each member's current host (cheapest moves),
        // then the full fabric-ordered neighbour list.
        std::vector<std::int32_t> anchors;
        for (std::uint32_t anchor_vm : c.vms) {
          if (placement.is_assigned(anchor_vm)) {
            anchors.push_back(placement.server_of(anchor_vm));
          }
        }
        if (!anchors.empty()) {
          for (std::uint32_t j : neighbours_of(
                   static_cast<std::size_t>(anchors.front()))) {
            anchors.push_back(static_cast<std::int32_t>(j));
          }
        }
        for (const std::int32_t anchor : anchors) {
          if (relocate_group(placement, used, c.vms, anchor, tabu)) {
            moved_any = true;
            break;
          }
        }
        break;
      }
      case RelationKind::kSameDatacenter: {
        // Anchor datacenter = the one hosting the most members; move the
        // stragglers to any valid server inside it.
        std::vector<std::size_t> count(inst.g(), 0);
        for (std::uint32_t k : c.vms) {
          if (placement.is_assigned(k)) {
            ++count[inst.infra.datacenter_of(
                static_cast<std::size_t>(placement.server_of(k)))];
          }
        }
        const std::size_t anchor_dc = static_cast<std::size_t>(
            std::max_element(count.begin(), count.end()) - count.begin());
        for (std::uint32_t k : c.vms) {
          if (!placement.is_assigned(k)) {
            continue;
          }
          const auto cur = static_cast<std::size_t>(placement.server_of(k));
          if (inst.infra.datacenter_of(cur) == anchor_dc) {
            continue;
          }
          for (std::uint32_t j : neighbours_of(cur)) {
            if (inst.infra.datacenter_of(j) != anchor_dc) {
              continue;
            }
            if (checker_.is_valid_allocation(placement, used, k, j)) {
              move_vm(placement, used, k, static_cast<std::int32_t>(j));
              tabu.forbid(k, static_cast<std::int32_t>(cur));
              moved_any = true;
              break;
            }
          }
        }
        break;
      }
      case RelationKind::kDifferentServers:
      case RelationKind::kDifferentDatacenters: {
        // Keep the first occupant of each server/DC; move the duplicates
        // to the nearest valid alternative (is_valid_allocation enforces
        // the anti-affinity against the remaining members).
        std::vector<std::uint32_t> members(c.vms);
        rng.shuffle(members);
        std::vector<std::int32_t> taken;
        for (std::uint32_t k : members) {
          if (!placement.is_assigned(k)) {
            continue;
          }
          const std::int32_t cur = placement.server_of(k);
          const std::int32_t slot =
              c.kind == RelationKind::kDifferentServers
                  ? cur
                  : static_cast<std::int32_t>(inst.infra.datacenter_of(
                        static_cast<std::size_t>(cur)));
          if (std::find(taken.begin(), taken.end(), slot) == taken.end()) {
            taken.push_back(slot);
            continue;
          }
          const std::int32_t target =
              find_neighbour(placement, used, k, tabu);
          if (target == Placement::kRejected) {
            continue;
          }
          move_vm(placement, used, k, target);
          tabu.forbid(k, cur);
          moved_any = true;
          const std::int32_t new_slot =
              c.kind == RelationKind::kDifferentServers
                  ? target
                  : static_cast<std::int32_t>(inst.infra.datacenter_of(
                        static_cast<std::size_t>(target)));
          taken.push_back(new_slot);
        }
        break;
      }
    }
  }
  return moved_any;
}

std::uint32_t TabuRepair::repair(std::vector<std::int32_t>& genes, Rng& rng) {
  const Instance& inst = *instance_;
  IAAS_EXPECT(genes.size() == inst.n(), "gene count mismatch with instance");

  Placement placement(genes);
  // Fast path: feasible individuals pass through untouched (the paper
  // only treats parents that "do not respect users constraints").
  if (checker_.check(placement).feasible()) {
    return 0;
  }
  Matrix<double> used;
  checker_.compute_used(placement, used);
  TabuList tabu(options_.tabu_tenure);

  std::uint32_t remaining = 0;
  for (std::size_t pass = 0; pass < options_.max_passes; ++pass) {
    bool moved = repair_capacity(placement, used, tabu, rng);
    if (options_.fix_relations) {
      moved = repair_relations(placement, used, tabu, rng) || moved;
    }
    remaining = checker_.check(placement).total();
    if (remaining == 0 || !moved) {
      break;
    }
  }
  if (remaining > 0) {
    // Last resort: the tabu memory itself may be blocking the only valid
    // moves — clear it and sweep once more unrestricted.
    tabu.clear();
    repair_capacity(placement, used, tabu, rng);
    if (options_.fix_relations) {
      repair_relations(placement, used, tabu, rng);
    }
    remaining = checker_.check(placement).total();
  }
  genes = placement.genes();
  return remaining;
}

}  // namespace iaas
