#include "tabu/repair.h"

#include <algorithm>
#include <numeric>

#include "common/expect.h"
#include "common/telemetry.h"
#include "tabu/tabu_list.h"

namespace iaas {

TabuRepair::TabuRepair(const Instance& instance, TabuRepairOptions options,
                       std::shared_ptr<const StateTables> tables)
    : instance_(&instance),
      options_(options),
      checker_(instance),
      tables_(tables ? std::move(tables)
                     : std::make_shared<const StateTables>(instance)),
      neighbour_order_(instance.m()) {
  const Fabric& fabric = instance.infra.fabric();
  for (std::size_t server = 0; server < instance.m(); ++server) {
    auto& order = neighbour_order_[server];
    order.resize(instance.m());
    std::iota(order.begin(), order.end(), 0u);
    const auto src = static_cast<std::uint32_t>(server);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return fabric.hop_distance(src, a) <
                              fabric.hop_distance(src, b);
                     });
  }
}

const std::vector<std::uint32_t>& TabuRepair::neighbours_of(
    std::size_t server) const {
  return neighbour_order_[server];
}

std::int32_t TabuRepair::find_neighbour(const PlacementState& state,
                                        std::size_t k,
                                        const TabuList& tabu) const {
  telemetry::count(telemetry::Counter::kTabuMovesTried);
  const std::int32_t current = state.placement().server_of(k);
  const std::size_t anchor =
      current >= 0 ? static_cast<std::size_t>(current) : 0;
  for (std::uint32_t j : neighbours_of(anchor)) {
    if (static_cast<std::int32_t>(j) == current) {
      continue;
    }
    if (tabu.is_tabu(static_cast<std::uint32_t>(k),
                     static_cast<std::int32_t>(j))) {
      continue;
    }
    if (checker_.is_valid_move(state, k, j)) {
      return static_cast<std::int32_t>(j);
    }
  }
  return Placement::kRejected;
}

bool TabuRepair::relocate_group(PlacementState& state,
                                const std::vector<std::uint32_t>& vms,
                                std::int32_t target, TabuList& tabu) const {
  telemetry::count(telemetry::Counter::kTabuMovesTried);
  const Instance& inst = *instance_;
  const Placement& placement = state.placement();
  const auto t = static_cast<std::size_t>(target);
  const Server& server = inst.infra.server(t);

  // Capacity check for the members not already on the target.
  for (std::size_t l = 0; l < inst.h(); ++l) {
    double incoming = 0.0;
    for (std::uint32_t k : vms) {
      if (placement.is_assigned(k) && placement.server_of(k) != target) {
        incoming += inst.requests.vms[k].demand[l];
      }
    }
    if (incoming == 0.0) {
      continue;
    }
    if (state.used()(t, l) + incoming >
        server.effective_capacity(l) + kCapacityEps) {
      return false;
    }
  }

  // Move everyone; the group's own same-server relation is satisfied by
  // construction, and the post-move audit in repair() catches any clash
  // with a member's other constraints for the next pass.
  bool moved = false;
  for (std::uint32_t k : vms) {
    if (!placement.is_assigned(k) || placement.server_of(k) == target) {
      continue;
    }
    const std::int32_t from = placement.server_of(k);
    state.apply_move(k, target);
    tabu.forbid(k, from);
    moved = true;
  }
  return moved;
}

bool TabuRepair::repair_capacity(PlacementState& state, TabuList& tabu,
                                 Rng& rng) const {
  const Instance& inst = *instance_;
  bool moved_any = false;

  for (std::size_t j = 0; j < inst.m(); ++j) {
    // exceedingDetection (Fig. 5 line 2): the state's overload flags are
    // kept current by every apply_move, so no re-scan is needed.
    if (!state.server_overloaded(j)) {
      continue;
    }
    // Shed in random order so repeated repairs explore different subsets
    // (the stochastic component of the tabu walk).
    const auto members = state.vms_on(j);
    std::vector<std::uint32_t> shed_order(members.begin(), members.end());
    rng.shuffle(shed_order);
    for (std::uint32_t k : shed_order) {
      if (!state.server_overloaded(j)) {
        break;  // server fits again: stop evicting (refinement over Fig. 5)
      }
      const std::int32_t target = find_neighbour(state, k, tabu);
      if (target == Placement::kRejected) {
        continue;  // no valid neighbour for this VM; try shedding others
      }
      const std::int32_t from = state.placement().server_of(k);
      state.apply_move(k, target);
      tabu.forbid(k, from);  // don't bounce straight back
      moved_any = true;
    }

    // Deadlock breaker: a satisfied same-server group on a too-small
    // host cannot shed members individually (each move would break the
    // relation and is_valid_move vetoes it) — relocate the whole group
    // to a bigger server instead.
    if (state.server_overloaded(j)) {
      for (const PlacementConstraint& c : inst.requests.constraints) {
        if (!state.server_overloaded(j)) {
          break;
        }
        if (c.kind != RelationKind::kSameServer) {
          continue;
        }
        const bool anchored_here = std::any_of(
            c.vms.begin(), c.vms.end(), [&](std::uint32_t k) {
              return state.placement().is_assigned(k) &&
                     state.placement().server_of(k) ==
                         static_cast<std::int32_t>(j);
            });
        if (!anchored_here) {
          continue;
        }
        for (std::uint32_t target : neighbours_of(j)) {
          if (target == j) {
            continue;
          }
          if (relocate_group(state, c.vms,
                             static_cast<std::int32_t>(target), tabu)) {
            moved_any = true;
            break;
          }
        }
      }
    }
  }
  return moved_any;
}

bool TabuRepair::repair_relations(PlacementState& state, TabuList& tabu,
                                  Rng& rng) const {
  const Instance& inst = *instance_;
  bool moved_any = false;

  for (const PlacementConstraint& c : inst.requests.constraints) {
    if (checker_.relation_satisfied(c, state.placement())) {
      continue;
    }
    switch (c.kind) {
      case RelationKind::kSameServer: {
        // Relocate the whole group atomically (member-by-member moves can
        // never reassemble a group scattered over 3+ servers, because the
        // first mover is invalid against its not-yet-moved peers).
        // Anchor candidates: each member's current host (cheapest moves),
        // then the full fabric-ordered neighbour list.
        std::vector<std::int32_t> anchors;
        for (std::uint32_t anchor_vm : c.vms) {
          if (state.placement().is_assigned(anchor_vm)) {
            anchors.push_back(state.placement().server_of(anchor_vm));
          }
        }
        if (!anchors.empty()) {
          for (std::uint32_t j : neighbours_of(
                   static_cast<std::size_t>(anchors.front()))) {
            anchors.push_back(static_cast<std::int32_t>(j));
          }
        }
        for (const std::int32_t anchor : anchors) {
          if (relocate_group(state, c.vms, anchor, tabu)) {
            moved_any = true;
            break;
          }
        }
        break;
      }
      case RelationKind::kSameDatacenter: {
        // Anchor datacenter = the one hosting the most members; move the
        // stragglers to any valid server inside it.
        std::vector<std::size_t> count(inst.g(), 0);
        for (std::uint32_t k : c.vms) {
          if (state.placement().is_assigned(k)) {
            ++count[inst.infra.datacenter_of(
                static_cast<std::size_t>(state.placement().server_of(k)))];
          }
        }
        const std::size_t anchor_dc = static_cast<std::size_t>(
            std::max_element(count.begin(), count.end()) - count.begin());
        for (std::uint32_t k : c.vms) {
          if (!state.placement().is_assigned(k)) {
            continue;
          }
          const auto cur =
              static_cast<std::size_t>(state.placement().server_of(k));
          if (inst.infra.datacenter_of(cur) == anchor_dc) {
            continue;
          }
          for (std::uint32_t j : neighbours_of(cur)) {
            if (inst.infra.datacenter_of(j) != anchor_dc) {
              continue;
            }
            if (checker_.is_valid_move(state, k, j)) {
              state.apply_move(k, static_cast<std::int32_t>(j));
              tabu.forbid(k, static_cast<std::int32_t>(cur));
              moved_any = true;
              break;
            }
          }
        }
        break;
      }
      case RelationKind::kDifferentServers:
      case RelationKind::kDifferentDatacenters: {
        // Keep the first occupant of each server/DC; move the duplicates
        // to the nearest valid alternative (is_valid_move enforces the
        // anti-affinity against the remaining members).
        std::vector<std::uint32_t> members(c.vms);
        rng.shuffle(members);
        std::vector<std::int32_t> taken;
        for (std::uint32_t k : members) {
          if (!state.placement().is_assigned(k)) {
            continue;
          }
          const std::int32_t cur = state.placement().server_of(k);
          const std::int32_t slot =
              c.kind == RelationKind::kDifferentServers
                  ? cur
                  : static_cast<std::int32_t>(inst.infra.datacenter_of(
                        static_cast<std::size_t>(cur)));
          if (std::find(taken.begin(), taken.end(), slot) == taken.end()) {
            taken.push_back(slot);
            continue;
          }
          const std::int32_t target = find_neighbour(state, k, tabu);
          if (target == Placement::kRejected) {
            continue;
          }
          state.apply_move(k, target);
          tabu.forbid(k, cur);
          moved_any = true;
          const std::int32_t new_slot =
              c.kind == RelationKind::kDifferentServers
                  ? target
                  : static_cast<std::int32_t>(inst.infra.datacenter_of(
                        static_cast<std::size_t>(target)));
          taken.push_back(new_slot);
        }
        break;
      }
    }
  }
  return moved_any;
}

std::uint32_t TabuRepair::repair(std::vector<std::int32_t>& genes,
                                 Rng& rng) const {
  const Instance& inst = *instance_;
  IAAS_EXPECT(genes.size() == inst.n(), "gene count mismatch with instance");

  // Per-call state keeps repair() reentrant; the single rebuild here is
  // the last full evaluation — all subsequent violation counts come from
  // the delta accumulators.  Repair never reads objectives, so the state
  // tracks violations only (no QoS/downtime refresh per move).
  PlacementState state(inst, {}, StateTracking::kViolationsOnly, tables_);
  state.rebuild(genes);
  const std::uint32_t remaining = repair_state(state, rng);
  if (state.applied_moves() > 0) {
    genes = state.placement().genes();
  }
  return remaining;
}

std::uint32_t TabuRepair::repair_state(PlacementState& state,
                                       Rng& rng) const {
  IAAS_EXPECT(&state.instance() == instance_,
              "state built against a different instance");
  // Fast path: feasible individuals pass through untouched (the paper
  // only treats parents that "do not respect users constraints").
  if (state.total_violations() == 0) {
    return 0;
  }
  telemetry::count(telemetry::Counter::kRepairInvocations);
  const std::size_t moves_before = state.applied_moves();
  TabuList tabu(options_.tabu_tenure);

  std::uint32_t remaining = state.total_violations();
  for (std::size_t pass = 0; pass < options_.max_passes; ++pass) {
    bool moved = repair_capacity(state, tabu, rng);
    if (options_.fix_relations) {
      moved = repair_relations(state, tabu, rng) || moved;
    }
    remaining = state.total_violations();
    if (remaining == 0 || !moved) {
      break;
    }
  }
  if (remaining > 0) {
    // Last resort: the tabu memory itself may be blocking the only valid
    // moves — clear it and sweep once more unrestricted.
    tabu.clear();
    repair_capacity(state, tabu, rng);
    if (options_.fix_relations) {
      repair_relations(state, tabu, rng);
    }
    remaining = state.total_violations();
  }
  telemetry::count(telemetry::Counter::kTabuMovesAccepted,
                   state.applied_moves() - moves_before);
  telemetry::count(remaining == 0
                       ? telemetry::Counter::kRepairedIndividuals
                       : telemetry::Counter::kUnrepairableIndividuals);
  return remaining;
}

}  // namespace iaas
