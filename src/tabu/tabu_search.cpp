#include "tabu/tabu_search.h"

#include <limits>

#include "common/expect.h"
#include "model/constraint_checker.h"
#include "tabu/tabu_list.h"

namespace iaas {

TabuSearch::TabuSearch(const Instance& instance, TabuSearchOptions options,
                       ObjectiveOptions objective_options)
    : instance_(&instance),
      options_(options),
      objective_options_(objective_options) {}

TabuSearchResult TabuSearch::improve(const Placement& start, Rng& rng) {
  const Instance& inst = *instance_;
  IAAS_EXPECT(start.vm_count() == inst.n(),
              "placement size mismatch with instance");

  Evaluator evaluator(inst, objective_options_);
  ConstraintChecker checker(inst);
  TabuList tabu(options_.tenure);

  Placement current = start;
  Matrix<double> used;
  checker.compute_used(current, used);
  ObjectiveVector current_obj = evaluator.objectives(current);

  TabuSearchResult result;
  result.best = current;
  result.best_objectives = current_obj;

  std::size_t stall = 0;
  for (std::size_t iter = 0; iter < options_.max_iterations; ++iter) {
    ++result.iterations;

    // Sample candidate relocations; keep the best admissible one.
    double best_move_cost = std::numeric_limits<double>::infinity();
    std::size_t best_vm = 0;
    std::int32_t best_target = Placement::kRejected;
    ObjectiveVector best_move_obj;

    for (std::size_t s = 0; s < options_.neighbourhood_samples; ++s) {
      const std::size_t k = rng.uniform_index(inst.n());
      if (!current.is_assigned(k)) {
        continue;
      }
      const auto j =
          static_cast<std::int32_t>(rng.uniform_index(inst.m()));
      if (j == current.server_of(k)) {
        continue;
      }
      if (!checker.is_valid_allocation(current, used,
                                       k, static_cast<std::size_t>(j))) {
        continue;
      }
      // Trial evaluation (full objective; the aggregate is the guide).
      const std::int32_t old = current.server_of(k);
      current.assign(k, j);
      const ObjectiveVector trial = evaluator.objectives(current);
      current.assign(k, old);

      const bool is_tabu = tabu.is_tabu(static_cast<std::uint32_t>(k), j);
      const bool aspires =
          options_.aspiration &&
          trial.aggregate() < result.best_objectives.aggregate();
      if (is_tabu && !aspires) {
        continue;
      }
      if (trial.aggregate() < best_move_cost) {
        best_move_cost = trial.aggregate();
        best_vm = k;
        best_target = j;
        best_move_obj = trial;
      }
    }

    if (best_target == Placement::kRejected) {
      ++stall;
      if (stall >= options_.stall_limit) {
        break;
      }
      continue;
    }

    // Apply the move (tabu search accepts the best admissible move even
    // when it worsens the incumbent — that is how it escapes local
    // optima).
    const std::int32_t from = current.server_of(best_vm);
    const VmRequest& vm = inst.requests.vms[best_vm];
    for (std::size_t l = 0; l < inst.h(); ++l) {
      used(static_cast<std::size_t>(from), l) -= vm.demand[l];
      used(static_cast<std::size_t>(best_target), l) += vm.demand[l];
    }
    current.assign(best_vm, best_target);
    current_obj = best_move_obj;
    tabu.forbid(static_cast<std::uint32_t>(best_vm), from);

    if (current_obj.aggregate() <
        result.best_objectives.aggregate() - 1e-12) {
      result.best = current;
      result.best_objectives = current_obj;
      ++result.improving_moves;
      stall = 0;
    } else {
      ++stall;
      if (stall >= options_.stall_limit) {
        break;
      }
    }
  }
  return result;
}

}  // namespace iaas
