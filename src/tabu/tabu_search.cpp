#include "tabu/tabu_search.h"

#include <limits>
#include <optional>

#include "common/expect.h"
#include "common/telemetry.h"
#include "model/constraint_checker.h"
#include "model/placement_state.h"
#include "tabu/tabu_list.h"

namespace iaas {

TabuSearch::TabuSearch(const Instance& instance, TabuSearchOptions options,
                       ObjectiveOptions objective_options,
                       std::shared_ptr<const StateTables> tables)
    : instance_(&instance),
      options_(options),
      objective_options_(objective_options),
      tables_(tables ? std::move(tables)
                     : std::make_shared<const StateTables>(instance)) {}

TabuSearchResult TabuSearch::improve(const Placement& start, Rng& rng) {
  const Instance& inst = *instance_;
  IAAS_EXPECT(start.vm_count() == inst.n(),
              "placement size mismatch with instance");

  ConstraintChecker checker(inst);
  TabuList tabu(options_.tenure);

  // Standalone runs (no EA task sink on this thread) tally into a local
  // block flushed to the global registry on exit; inside an EA task the
  // counts flow to that task's block instead, keeping traces
  // deterministic.
  telemetry::CounterBlock local_counters;
  std::optional<telemetry::ScopedSink> own_sink;
  if (!telemetry::sink_installed()) {
    own_sink.emplace(local_counters);
  }

  // One delta engine carries the walk; every candidate move is scored via
  // try_move in O(affected servers) instead of a full re-evaluation.
  PlacementState state(inst, objective_options_, StateTracking::kFull,
                       tables_);
  state.rebuild(start);

  TabuSearchResult result;
  result.best = start;
  result.best_objectives = state.objectives();

  std::size_t stall = 0;
  for (std::size_t iter = 0; iter < options_.max_iterations; ++iter) {
    ++result.iterations;

    // Sample candidate relocations; keep the best admissible one.
    double best_move_cost = std::numeric_limits<double>::infinity();
    std::size_t best_vm = 0;
    std::int32_t best_target = Placement::kRejected;

    for (std::size_t s = 0; s < options_.neighbourhood_samples; ++s) {
      const std::size_t k = rng.uniform_index(inst.n());
      if (!state.placement().is_assigned(k)) {
        continue;
      }
      const auto j =
          static_cast<std::int32_t>(rng.uniform_index(inst.m()));
      if (j == state.placement().server_of(k)) {
        continue;
      }
      if (!checker.is_valid_move(state, k, static_cast<std::size_t>(j))) {
        continue;
      }
      telemetry::count(telemetry::Counter::kTabuMovesTried);
      const ObjectiveDelta trial = state.try_move(k, j);

      const bool is_tabu = tabu.is_tabu(static_cast<std::uint32_t>(k), j);
      const bool aspires =
          options_.aspiration &&
          trial.objectives.aggregate() < result.best_objectives.aggregate();
      if (is_tabu && !aspires) {
        continue;
      }
      if (trial.objectives.aggregate() < best_move_cost) {
        best_move_cost = trial.objectives.aggregate();
        best_vm = k;
        best_target = j;
      }
    }

    if (best_target == Placement::kRejected) {
      ++stall;
      if (stall >= options_.stall_limit) {
        break;
      }
      continue;
    }

    // Apply the move (tabu search accepts the best admissible move even
    // when it worsens the incumbent — that is how it escapes local
    // optima).
    const std::int32_t from = state.placement().server_of(best_vm);
    telemetry::count(telemetry::Counter::kTabuMovesAccepted);
    state.apply_move(best_vm, best_target);
    tabu.forbid(static_cast<std::uint32_t>(best_vm), from);

    if (state.aggregate() < result.best_objectives.aggregate() - 1e-12) {
      result.best = state.placement();
      result.best_objectives = state.objectives();
      ++result.improving_moves;
      stall = 0;
    } else {
      ++stall;
      if (stall >= options_.stall_limit) {
        break;
      }
    }
  }
  if (own_sink) {
    telemetry::Registry::global().flush_counters(local_counters);
  }
  return result;
}

}  // namespace iaas
