// Fixed-tenure tabu memory over (vm, server) moves (Glover's tabu search,
// the paper's [29]).  An entry forbids moving a VM back onto a server it
// recently left, which is what prevents the repair operator from cycling.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_set>

namespace iaas {

class TabuList {
 public:
  explicit TabuList(std::size_t tenure) : tenure_(tenure) {}

  void forbid(std::uint32_t vm, std::int32_t server) {
    if (tenure_ == 0) {
      return;
    }
    const std::uint64_t k = key(vm, server);
    if (entries_.insert(k).second) {
      order_.push_back(k);
      if (order_.size() > tenure_) {
        entries_.erase(order_.front());
        order_.pop_front();
      }
    }
  }

  [[nodiscard]] bool is_tabu(std::uint32_t vm, std::int32_t server) const {
    return entries_.contains(key(vm, server));
  }

  void clear() {
    entries_.clear();
    order_.clear();
  }

  [[nodiscard]] std::size_t size() const { return order_.size(); }
  [[nodiscard]] std::size_t tenure() const { return tenure_; }

 private:
  static std::uint64_t key(std::uint32_t vm, std::int32_t server) {
    return (static_cast<std::uint64_t>(vm) << 32) |
           static_cast<std::uint32_t>(server);
  }

  std::size_t tenure_;
  std::unordered_set<std::uint64_t> entries_;
  std::deque<std::uint64_t> order_;
};

}  // namespace iaas
