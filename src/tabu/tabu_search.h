// General tabu-search improvement over feasible placements (Glover [29]).
//
// The paper uses tabu search purely as a repair operator inside NSGA-III;
// this standalone search is the library's extension of the same machinery
// into a post-optimisation step: starting from a feasible placement it
// explores single-VM relocation moves, keeps the best feasible incumbent
// by aggregate cost (Eq. 15), forbids reversing recent moves, and applies
// the standard aspiration criterion (a tabu move is allowed when it beats
// the incumbent).
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.h"
#include "model/instance.h"
#include "model/objectives.h"
#include "model/placement.h"

namespace iaas {

struct TabuSearchOptions {
  std::size_t max_iterations = 200;
  std::size_t tenure = 32;
  std::size_t neighbourhood_samples = 32;  // candidate moves per iteration
  std::size_t stall_limit = 50;            // stop after this many
                                           // non-improving iterations
  bool aspiration = true;
};

struct TabuSearchResult {
  Placement best;
  ObjectiveVector best_objectives;
  std::size_t iterations = 0;
  std::size_t improving_moves = 0;
};

class TabuSearch {
 public:
  // `tables` shares the instance's immutable SoA flattening with the walk
  // state built per improve() call; when null the search builds its own.
  TabuSearch(const Instance& instance, TabuSearchOptions options = {},
             ObjectiveOptions objective_options = {},
             std::shared_ptr<const StateTables> tables = nullptr);

  // Improve `start` (expected feasible; infeasible starts are repaired by
  // rejecting nothing — moves that violate constraints are never taken).
  TabuSearchResult improve(const Placement& start, Rng& rng);

 private:
  const Instance* instance_;
  TabuSearchOptions options_;
  ObjectiveOptions objective_options_;
  std::shared_ptr<const StateTables> tables_;
};

}  // namespace iaas
