// The tabu-search repair operator of the paper (Figs. 4-6): whenever an
// NSGA individual violates user constraints, a tabu-guided local search
// makes it compliant by moving VMs hosted on faulty servers to the
// nearest valid neighbour server.
//
// Faithful to Fig. 5/6 with two practical refinements (DESIGN.md §6):
//   * VMs are moved off an overloaded server only until it fits again
//     (Fig. 5 as written empties the whole server);
//   * "nearest" neighbour is resolved through the spine-leaf fabric — the
//     candidate list is ordered by hop distance from the current host, so
//     repairs prefer same-leaf, then same-DC, then remote servers.
// Relationship groups (Eqs. 9-12) are repaired after capacity: members of
// a violated group are re-anchored onto a server/datacenter that can
// legally take them.
//
// Each repair() call drives one PlacementState (DESIGN.md §7): allocated
// capacity, overload flags, and violation counts are maintained
// incrementally across relocations, so no pass re-derives the m×h `used`
// matrix or re-runs a full constraint check.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "model/constraint_checker.h"
#include "model/instance.h"
#include "model/placement_state.h"

namespace iaas {

struct TabuRepairOptions {
  std::size_t max_passes = 4;   // repair sweeps before giving up
  std::size_t tabu_tenure = 16; // forbidden (vm, server) return moves
  bool fix_relations = true;    // repair affinity groups too
};

class TabuRepair {
 public:
  // `tables` shares the instance's immutable SoA flattening with the
  // repair states built per repair() call (and with anything else built
  // against the same instance); when null the repairer builds its own.
  explicit TabuRepair(const Instance& instance, TabuRepairOptions options = {},
                      std::shared_ptr<const StateTables> tables = nullptr);

  // Repairs genes in place toward feasibility; returns the number of
  // constraint violations remaining afterwards (0 = fully repaired).
  // Safe to call concurrently from evaluation threads: all shared members
  // are immutable after construction.
  std::uint32_t repair(std::vector<std::int32_t>& genes, Rng& rng) const;

  // Same walk on a caller-owned PlacementState already rebuilt to the
  // placement under repair (any tracking mode; the walk reads only the
  // demand accumulators and violation counters, which both modes keep
  // current).  The state is left positioned at the repaired placement —
  // with full tracking its accumulators then double as the evaluation of
  // the repaired individual (fused repair-as-evaluation, DESIGN.md §8).
  // The move decisions and RNG consumption are identical to repair(), so
  // both entry points produce the same placement for the same stream.
  std::uint32_t repair_state(PlacementState& state, Rng& rng) const;

  [[nodiscard]] const TabuRepairOptions& options() const { return options_; }

 private:
  // findNeighbour (Fig. 6): the first server, by fabric distance from the
  // current host, where VM k is a valid allocation and the move is not
  // tabu; returns kRejected-like -1 when none exists.
  std::int32_t find_neighbour(const PlacementState& state, std::size_t k,
                              const class TabuList& tabu) const;

  // Move a whole VM group onto `target` if its aggregate demand fits
  // (atomic relocation — required for same-server groups, whose members
  // cannot legally move one at a time).  Returns true when members moved.
  bool relocate_group(PlacementState& state,
                      const std::vector<std::uint32_t>& vms,
                      std::int32_t target, class TabuList& tabu) const;

  bool repair_capacity(PlacementState& state, class TabuList& tabu,
                       Rng& rng) const;
  bool repair_relations(PlacementState& state, class TabuList& tabu,
                        Rng& rng) const;

  const Instance* instance_;
  TabuRepairOptions options_;
  ConstraintChecker checker_;
  std::shared_ptr<const StateTables> tables_;
  // Candidate server ordering per source server (by fabric hop distance),
  // precomputed in the constructor: the heart of the "nearest neighbour"
  // scan, immutable afterwards so one repair functor can be shared across
  // evaluation threads.
  std::vector<std::vector<std::uint32_t>> neighbour_order_;
  const std::vector<std::uint32_t>& neighbours_of(std::size_t server) const;
};

}  // namespace iaas
