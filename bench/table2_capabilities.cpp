// Table II: qualitative comparison of allocation algorithm families.
//
// The paper's table scores Round Robin / Constraint Programming / NSGA /
// filtering algorithms on four needs: compliance with constraints,
// resource scalability, compliance with customer requests, and control
// over the infrastructure.  Instead of asserting the table, this bench
// *measures* the first three columns from actual runs (small + large
// scenario) and prints the derived verdicts alongside the paper's.
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "common/table.h"

int main() {
  using namespace iaas;
  using namespace iaas::bench;

  std::printf("=== Table II: capability comparison (measured) ===\n");
  SweepConfig config;
  // The large probe sits past NSGA-III+CP's blow-up point (~200 servers)
  // so the scalability column discriminates the way Fig. 8 does.
  config.server_sizes = {16, 200};
  config.runs = 2;
  config.per_run_cap_seconds = 25.0;
  config.suite = paper_suite();
  // Give the CP baseline a budget past the probe's cap so its true
  // growth (not its internal time limit) decides the scalability cell.
  config.suite.cp.time_limit_seconds = 60.0;
  // The paper's six plus the Filtering family (Table II's fourth row).
  config.algorithms = all_algorithms();
  config.algorithms.push_back(AlgorithmId::kFiltering);
  config = apply_env(config);
  if (config.server_sizes.size() < 2) {
    config.server_sizes = {16, 48};  // FAST mode still needs two points
  }

  const SweepResult result = run_sweep(config);
  const std::uint32_t small = config.server_sizes.front();
  const std::uint32_t large = config.server_sizes.back();

  TextTable table({"algorithm", "constraint compliance",
                   "resource scalability", "customer requests",
                   "time small->large"});
  for (AlgorithmId id : config.algorithms) {
    const CellStats& s = result.cells.at(id).at(small);
    const CellStats& l = result.cells.at(id).at(large);

    // Compliance: zero raw violations at every measured size.
    const bool compliant =
        s.mean_violations == 0.0 && (l.capped || l.mean_violations == 0.0);
    // Scalability: completed the large size without hitting the cap and
    // with sub-quadratic time growth relative to the size ratio.
    const double ratio =
        l.capped ? -1.0
                 : l.mean_seconds / std::max(s.mean_seconds, 1e-6);
    const double size_ratio = static_cast<double>(large) / small;
    const bool scalable = !l.capped && ratio < size_ratio * size_ratio;
    // Customer requests: low rejection at both sizes.
    const bool serves = s.mean_rejection_rate < 0.05 &&
                        (l.capped || l.mean_rejection_rate < 0.05);

    char growth[64];
    if (l.capped) {
      std::snprintf(growth, sizeof(growth), "exceeded cap");
    } else {
      std::snprintf(growth, sizeof(growth), "%.3fs -> %.3fs",
                    s.mean_seconds, l.mean_seconds);
    }
    table.add_row({algorithm_name(id), compliant ? "yes" : "NO",
                   scalable ? "yes" : "NO", serves ? "yes" : "NO", growth});
  }
  std::printf("\nMeasured at %u and %u servers (VMs = 2x):\n", small, large);
  table.print();

  std::printf(
      "\nPaper's Table II (for reference):\n"
      "  Round Robin:            constraints yes, scalability NO,"
      " customer requests NO,  infra control NO\n"
      "  Constraint Programming: constraints yes, scalability NO,"
      " customer requests yes, infra control yes\n"
      "  NSGA (focus, improved): constraints O,   scalability yes,"
      " customer requests O,   infra control O\n"
      "  Filtering Algorithm:    constraints NO,  scalability yes,"
      " customer requests NO,  infra control NO\n"
      "(O = the needs the paper's modifications target; the measured rows"
      "\nabove show the unmodified NSGAs failing compliance and the"
      "\nNSGA-III+Tabu hybrid earning all three.)\n");
  return 0;
}
