// Delta-evaluation engine vs full rebuild: the tentpole claim is that
// scoring one single-VM relocation via PlacementState::try_move beats a
// full Evaluator::objectives pass by a wide margin (>= 5x on the
// 64-server / 512-VM reference instance).  Run with
// --benchmark_filter=512 to see exactly that pair.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "model/objectives.h"
#include "model/placement_state.h"
#include "workload/generator.h"

namespace {

using namespace iaas;

// The acceptance instance shape: m servers, 8x VMs (64 -> 512), with
// relationship groups and a previous window so every objective term and
// violation counter is live.
Instance make_instance_for(std::int64_t servers) {
  ScenarioConfig cfg =
      ScenarioConfig::paper_scale(static_cast<std::uint32_t>(servers));
  cfg.vms = static_cast<std::uint32_t>(servers) * 8;
  cfg.preplaced_fraction = 0.5;
  return ScenarioGenerator(cfg).generate(7);
}

Placement random_placement(const Instance& inst, std::uint64_t seed) {
  Rng rng(seed);
  Placement p(inst.n());
  for (std::size_t k = 0; k < inst.n(); ++k) {
    p.assign(k, static_cast<std::int32_t>(rng.uniform_index(inst.m())));
  }
  return p;
}

// Pre-drawn move stream so the timed loop measures evaluation, not RNG.
struct MovePlan {
  std::vector<std::size_t> vms;
  std::vector<std::int32_t> targets;
};

MovePlan make_moves(const Instance& inst, std::size_t count,
                    std::uint64_t seed) {
  Rng rng(seed);
  MovePlan plan;
  plan.vms.reserve(count);
  plan.targets.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    plan.vms.push_back(rng.uniform_index(inst.n()));
    plan.targets.push_back(
        static_cast<std::int32_t>(rng.uniform_index(inst.m())));
  }
  return plan;
}

// Baseline: score each candidate move the way the pre-refactor tabu loop
// did — mutate the placement, full Evaluator::objectives, undo.
void BM_FullObjectivesPerMove(benchmark::State& state) {
  const Instance inst = make_instance_for(state.range(0));
  Evaluator evaluator(inst);
  Placement p = random_placement(inst, 1);
  const MovePlan plan = make_moves(inst, 1024, 2);
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t k = plan.vms[i];
    const std::int32_t old = p.server_of(k);
    p.assign(k, plan.targets[i]);
    benchmark::DoNotOptimize(evaluator.objectives(p));
    p.assign(k, old);
    i = (i + 1) % plan.vms.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FullObjectivesPerMove)->Arg(16)->Arg(64)->Arg(256);

// The delta engine scoring the same move stream.
void BM_TryMove(benchmark::State& state) {
  const Instance inst = make_instance_for(state.range(0));
  PlacementState delta_state(inst);
  delta_state.rebuild(random_placement(inst, 1));
  const MovePlan plan = make_moves(inst, 1024, 2);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        delta_state.try_move(plan.vms[i], plan.targets[i]));
    i = (i + 1) % plan.vms.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TryMove)->Arg(16)->Arg(64)->Arg(256);

// Committing + undoing a move (the tabu walk's accepted-move cost).
void BM_ApplyRevert(benchmark::State& state) {
  const Instance inst = make_instance_for(state.range(0));
  PlacementState delta_state(inst);
  delta_state.rebuild(random_placement(inst, 1));
  const MovePlan plan = make_moves(inst, 1024, 2);
  std::size_t i = 0;
  for (auto _ : state) {
    delta_state.apply_move(plan.vms[i], plan.targets[i]);
    delta_state.revert();
    i = (i + 1) % plan.vms.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ApplyRevert)->Arg(16)->Arg(64)->Arg(256);

// Full rebuild cost for reference (what evaluate_population pays once per
// individual).
void BM_Rebuild(benchmark::State& state) {
  const Instance inst = make_instance_for(state.range(0));
  PlacementState delta_state(inst);
  const Placement p = random_placement(inst, 1);
  for (auto _ : state) {
    delta_state.rebuild(p);
    benchmark::DoNotOptimize(delta_state.aggregate());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Rebuild)->Arg(64)->Arg(256);

// Gene-diff rebase: repositioning a live state onto a sibling's genes
// (the offspring pipeline's second-child path).  Ping-pongs between two
// vectors differing in ~2% of genes, so each iteration pays one
// small-diff reposition — compare against BM_Rebuild at the same size.
void BM_RebaseSmallDiff(benchmark::State& state) {
  const Instance inst = make_instance_for(state.range(0));
  PlacementState delta_state(inst);
  const Placement p = random_placement(inst, 1);
  delta_state.rebuild(p);
  Rng rng(3);
  std::vector<std::int32_t> a = p.genes();
  std::vector<std::int32_t> b = a;
  const std::size_t flips = std::max<std::size_t>(1, inst.n() / 50);
  for (std::size_t f = 0; f < flips; ++f) {
    b[rng.uniform_index(inst.n())] =
        static_cast<std::int32_t>(rng.uniform_index(inst.m()));
  }
  bool to_b = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(delta_state.rebase(to_b ? b : a));
    to_b = !to_b;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RebaseSmallDiff)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
