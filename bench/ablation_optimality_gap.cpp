// Ablation: how far from provably optimal is each algorithm?
//
// The LP relaxation of the allocation ILP (LinModel + SimplexSolver)
// certifies a lower bound on the linear cost (usage + exploitation +
// migration) of any complete placement.  This bench reports each
// algorithm's gap to that bound on small instances — the quantitative
// backing for the paper's "close to optimal" claims, which Figs. 9/11
// only argue by comparison.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/csv.h"
#include "common/stats.h"
#include "common/table.h"
#include "lp/lin_model.h"
#include "lp/simplex.h"
#include "model/objectives.h"
#include "workload/generator.h"

int main() {
  using namespace iaas;
  using iaas::bench::apply_env;
  using iaas::bench::csv_dir;
  using iaas::bench::paper_suite;

  std::printf("=== Ablation: optimality gap vs LP relaxation bound ===\n");
  iaas::bench::SweepConfig env_probe;
  env_probe.runs = 3;
  env_probe = apply_env(env_probe);
  const std::size_t runs = env_probe.runs;

  ScenarioConfig scenario = ScenarioConfig::paper_scale(16);
  scenario.preplaced_fraction = 0.5;  // exercise the migration term too
  const ScenarioGenerator generator(scenario);
  const SuiteOptions suite = paper_suite();

  // Collect the per-run LP bounds once.
  std::vector<Instance> instances;
  std::vector<double> bounds;
  for (std::size_t run = 0; run < runs; ++run) {
    instances.push_back(generator.generate(900 + run));
    const LinModel model(instances.back());
    const LpSolution relax = solve_lp_relaxation(model);
    if (relax.status != LpStatus::kOptimal) {
      std::fprintf(stderr, "LP relaxation %s on run %zu — skipping run\n",
                   lp_status_name(relax.status).c_str(), run);
      bounds.push_back(-1.0);
      continue;
    }
    bounds.push_back(relax.objective);
  }

  TextTable table({"algorithm", "mean linear cost", "mean LP bound",
                   "mean gap", "rejected"});
  CsvWriter csv(csv_dir() + "/ablation_optimality_gap.csv",
                {"algorithm", "linear_cost", "lp_bound", "gap_ratio",
                 "rejection_rate"});

  for (AlgorithmId id : all_algorithms()) {
    RunningStats cost_stats, bound_stats, gap_stats, rej_stats;
    for (std::size_t run = 0; run < runs; ++run) {
      if (bounds[run] < 0.0) {
        continue;
      }
      const Instance& inst = instances[run];
      const AllocationResult r =
          make_allocator(id, suite)->allocate(inst, 17 + run);
      // Compare on the ILP's own objective (downtime is outside the LP).
      const double linear =
          r.objectives.usage_cost + r.objectives.migration_cost;
      cost_stats.add(linear);
      bound_stats.add(bounds[run]);
      gap_stats.add(bounds[run] > 1e-9 ? linear / bounds[run] - 1.0 : 0.0);
      rej_stats.add(r.rejection_rate());
    }
    table.add_row({algorithm_name(id), TextTable::num(cost_stats.mean(), 2),
                   TextTable::num(bound_stats.mean(), 2),
                   TextTable::num(100.0 * gap_stats.mean(), 1) + "%",
                   TextTable::num(rej_stats.mean(), 3)});
    csv.add_row({algorithm_name(id), TextTable::num(cost_stats.mean(), 4),
                 TextTable::num(bound_stats.mean(), 4),
                 TextTable::num(gap_stats.mean(), 6),
                 TextTable::num(rej_stats.mean(), 6)});
  }
  std::printf("\n16 servers / 32 VMs, 50%% preplaced, %zu runs;"
              " gap = cost/bound - 1 (rejections shrink cost, so read the"
              " gap beside the rejected column):\n",
              runs);
  table.print();
  std::printf(
      "\nReading: ConstraintProgramming sits closest to the bound (it"
      "\noptimises exactly this objective); NSGA-III+Tabu should be within"
      "\na small factor while also rejecting nothing.\n");
  return 0;
}
