// Ablation: warm-starting the EA population with the incumbent
// placement.  Without the seed the search almost never rediscovers the
// previous assignment, so the migration objective (Eq. 26) cannot hold
// running work in place — this bench quantifies the stability and cost
// difference on a heavily preplaced scenario.
#include <cstdio>

#include "algo/nsga_allocators.h"
#include "bench/bench_util.h"
#include "common/csv.h"
#include "common/stats.h"
#include "common/table.h"
#include "workload/generator.h"

int main() {
  using namespace iaas;
  using iaas::bench::apply_env;
  using iaas::bench::csv_dir;

  std::printf("=== Ablation: warm start (incumbent seeding) ===\n");
  iaas::bench::SweepConfig env_probe;
  env_probe.runs = 3;
  env_probe = apply_env(env_probe);
  const std::size_t runs = env_probe.runs;

  ScenarioConfig scenario = ScenarioConfig::paper_scale(32);
  scenario.preplaced_fraction = 0.8;  // most VMs already running
  const ScenarioGenerator generator(scenario);

  TextTable table({"variant", "stayed in place", "migration cost",
                   "usage+opex", "total cost"});
  CsvWriter csv(csv_dir() + "/ablation_warm_start.csv",
                {"variant", "stay_fraction", "migration_cost", "usage_opex",
                 "total"});

  for (const bool warm : {true, false}) {
    RunningStats stay, mig, usage, total;
    for (std::size_t run = 0; run < runs; ++run) {
      const Instance inst = generator.generate(1500 + run);
      EaAllocatorOptions options;
      options.nsga.threads = 0;
      options.nsga.warm_start = warm;
      Nsga3TabuAllocator allocator(options);
      const AllocationResult r = allocator.allocate(inst, 19 + run);

      std::size_t stayed = 0;
      std::size_t preplaced = 0;
      for (std::size_t k = 0; k < inst.n(); ++k) {
        if (!inst.previous.is_assigned(k)) {
          continue;
        }
        ++preplaced;
        if (r.placement.is_assigned(k) &&
            r.placement.server_of(k) == inst.previous.server_of(k)) {
          ++stayed;
        }
      }
      stay.add(preplaced == 0 ? 0.0
                              : static_cast<double>(stayed) /
                                    static_cast<double>(preplaced));
      mig.add(r.objectives.migration_cost);
      usage.add(r.objectives.usage_cost);
      total.add(r.objectives.aggregate());
    }
    const std::string name = warm ? "warm start (default)" : "cold start";
    table.add_row({name, TextTable::num(100.0 * stay.mean(), 1) + "%",
                   TextTable::num(mig.mean(), 1),
                   TextTable::num(usage.mean(), 1),
                   TextTable::num(total.mean(), 1)});
    csv.add_row({name, TextTable::num(stay.mean(), 4),
                 TextTable::num(mig.mean(), 4),
                 TextTable::num(usage.mean(), 4),
                 TextTable::num(total.mean(), 4)});
  }
  std::printf("\nNSGA-III+Tabu, 32 servers / 64 VMs, 80%% preplaced,"
              " %zu runs each:\n",
              runs);
  table.print();
  std::printf(
      "\nReading: the incumbent seed keeps most running VMs on their"
      "\nhosts, collapsing the migration term without hurting usage cost"
      "\n— a cold-started EA reshuffles the platform every window.\n");
  return 0;
}
