// Figure 11: average cost induced on the provider by each algorithm.
//
// Paper's finding: the unmodified evolutionary algorithms incur high
// cost; ConstraintProgramming, NSGA-III+CP and NSGA-III+Tabu induce the
// lowest penalty.  The paper also warns that CP's low cost is partly a
// mirage — it rejects more demands and "no penalty for rejection is
// added" — so this bench prints both total cost and cost per *accepted*
// VM, plus the rejection rate for context.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/csv.h"
#include "common/table.h"

int main() {
  using namespace iaas;
  using namespace iaas::bench;

  std::printf("=== Fig. 11: average provider cost per algorithm ===\n");
  SweepConfig config;
  config.server_sizes = {64};  // fixed mid-size scenario set
  config.runs = 5;
  config.suite = paper_suite();
  config = apply_env(config);
  print_nsga_settings(config.suite.ea.nsga);

  const SweepResult result = run_sweep(config);
  const std::uint32_t size = config.server_sizes.front();

  TextTable table({"algorithm", "usage+opex", "downtime", "migration",
                   "total", "cost/accepted VM", "rejection"});
  CsvWriter csv(csv_dir() + "/fig11_provider_cost.csv",
                {"algorithm", "usage_opex", "downtime", "migration", "total",
                 "cost_per_accepted_vm", "rejection_rate"});
  for (AlgorithmId id : all_algorithms()) {
    const CellStats& cell = result.cells.at(id).at(size);
    const double total = cell.mean_usage_cost + cell.mean_downtime_cost +
                         cell.mean_migration_cost;
    table.add_row({algorithm_name(id), TextTable::num(cell.mean_usage_cost, 1),
                   TextTable::num(cell.mean_downtime_cost, 1),
                   TextTable::num(cell.mean_migration_cost, 1),
                   TextTable::num(total, 1),
                   TextTable::num(cell.mean_cost_per_accepted, 3),
                   TextTable::num(cell.mean_rejection_rate, 3)});
    csv.add_row({algorithm_name(id), TextTable::num(cell.mean_usage_cost, 4),
                 TextTable::num(cell.mean_downtime_cost, 4),
                 TextTable::num(cell.mean_migration_cost, 4),
                 TextTable::num(total, 4),
                 TextTable::num(cell.mean_cost_per_accepted, 6),
                 TextTable::num(cell.mean_rejection_rate, 6)});
  }
  std::printf("\nMean provider cost at %u servers / %u VMs:\n", size,
              2 * size);
  table.print();
  std::printf("CSV: %s/fig11_provider_cost.csv\n", csv_dir().c_str());

  std::printf(
      "\nExpected shape (paper): unmodified NSGA-II/III highest cost per"
      "\naccepted VM; CP, NSGA-III+CP, NSGA-III+Tabu lowest — with CP's"
      "\nadvantage partly explained by its higher rejection rate.\n");
  return 0;
}
