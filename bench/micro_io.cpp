// Micro-benchmarks of the serialisation substrate and the LP machinery:
// JSON round-trips, DSL parsing, simplex relaxation solves.
#include <benchmark/benchmark.h>

#include "io/json.h"
#include "io/request_dsl.h"
#include "io/serialize.h"
#include "lp/lin_model.h"
#include "lp/simplex.h"
#include "workload/generator.h"

namespace {

using namespace iaas;

Instance make_instance_for(std::int64_t servers) {
  ScenarioConfig cfg =
      ScenarioConfig::paper_scale(static_cast<std::uint32_t>(servers));
  return ScenarioGenerator(cfg).generate(21);
}

void BM_InstanceToJson(benchmark::State& state) {
  const Instance inst = make_instance_for(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(instance_to_json(inst));
  }
}
BENCHMARK(BM_InstanceToJson)->Arg(16)->Arg(128);

void BM_JsonParseInstance(benchmark::State& state) {
  const Instance inst = make_instance_for(state.range(0));
  const std::string text = instance_to_json(inst).dump();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Json::parse(text));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_JsonParseInstance)->Arg(16)->Arg(128);

void BM_InstanceRoundTrip(benchmark::State& state) {
  const Instance inst = make_instance_for(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        instance_from_json(instance_to_json(inst)));
  }
}
BENCHMARK(BM_InstanceRoundTrip)->Arg(16)->Arg(64);

void BM_RequestDslParse(benchmark::State& state) {
  // Render a generated request set to DSL text, then parse repeatedly.
  const Instance inst = make_instance_for(16);
  const std::string text = render_request_dsl(inst.requests);
  for (auto _ : state) {
    benchmark::DoNotOptimize(parse_request_dsl(text));
  }
}
BENCHMARK(BM_RequestDslParse);

void BM_LinModelBuild(benchmark::State& state) {
  const Instance inst = make_instance_for(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(LinModel(inst));
  }
}
BENCHMARK(BM_LinModelBuild)->Arg(16)->Arg(64);

void BM_LpRelaxation(benchmark::State& state) {
  const Instance inst = make_instance_for(state.range(0));
  const LinModel model(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_lp_relaxation(model));
  }
}
BENCHMARK(BM_LpRelaxation)->Arg(8)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
