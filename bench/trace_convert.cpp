// Lossless binary <-> JSON trace converter and round-trip checker.
//
//   trace_convert <in> <out>
//       Direction is sniffed from <in>: a binary trace (magic
//       "IAASTRCB") is expanded to the canonical pretty JSON; a JSON
//       trace (sim trace {"windows": [...]} or run trace
//       {label,seed,columns,rows}) is packed to binary.
//
//   trace_convert --check <dir-or-file>...
//       For every trace JSON found: parse -> structs -> binary ->
//       reload -> re-emit JSON, and require (a) the re-emitted text to
//       be byte-identical to the input file and (b) for sim traces the
//       deterministic fingerprint to survive the binary round trip.
//       Non-trace JSON (bench roll-ups, registry snapshots) is skipped;
//       finding zero traces is a failure (an empty directory must not
//       pass as "validated").  This is the ctest step between
//       trace_emit_* and trace_validate.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "io/emit.h"
#include "io/json.h"
#include "io/trace_binary.h"
#include "io/trace_json.h"
#include "io/trace_stream.h"
#include "sim/simulator.h"

namespace {

using namespace iaas;

std::string load_text(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    throw std::runtime_error("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

enum class JsonTraceKind { kNotATrace, kRunTrace, kSimTrace };

// Shape sniff on a parsed document.  BENCH roll-ups may carry a numeric
// "windows" key, so the value's type is part of the test.
JsonTraceKind json_trace_kind(const Json& doc) {
  if (doc.type() != Json::Type::kObject) {
    return JsonTraceKind::kNotATrace;
  }
  if (doc.contains("windows") &&
      doc.at("windows").type() == Json::Type::kArray) {
    return JsonTraceKind::kSimTrace;
  }
  if (doc.contains("rows") && doc.contains("columns") &&
      doc.contains("seed")) {
    return JsonTraceKind::kRunTrace;
  }
  return JsonTraceKind::kNotATrace;
}

// Canonical JSON text of a sim/run trace: streaming emitter, pretty
// indent 2, trailing newline — exactly what the file writers produce.
std::string sim_trace_text(const std::vector<WindowMetrics>& rows) {
  std::string out;
  JsonEmitter emitter(out, 2);
  emitter.begin_object();
  emitter.key("windows");
  emitter.begin_array();
  for (const WindowMetrics& row : rows) {
    emit_window_metrics(emitter, row);
  }
  emitter.end_array();
  emitter.end_object();
  out += '\n';
  return out;
}

std::string run_trace_text(const telemetry::RunTrace& trace) {
  std::string out;
  JsonEmitter emitter(out, 2);
  emit_run_trace(emitter, trace);
  out += '\n';
  return out;
}

int convert(const std::string& in_path, const std::string& out_path) {
  if (is_binary_trace_file(in_path)) {
    if (binary_trace_kind(in_path) == BinaryTraceKind::kSimTrace) {
      write_sim_trace_json(read_binary_sim_trace(in_path), out_path);
    } else {
      write_trace_json(read_binary_run_trace(in_path), out_path);
    }
    std::printf("binary -> json  %s -> %s\n", in_path.c_str(),
                out_path.c_str());
    return 0;
  }
  const Json doc = Json::parse(load_text(in_path));
  switch (json_trace_kind(doc)) {
    case JsonTraceKind::kSimTrace:
      write_binary_sim_trace(sim_trace_from_json(doc), out_path);
      break;
    case JsonTraceKind::kRunTrace:
      write_binary_run_trace(trace_from_json(doc), out_path);
      break;
    case JsonTraceKind::kNotATrace:
      std::fprintf(stderr, "%s: not a trace file\n", in_path.c_str());
      return 1;
  }
  std::printf("json -> binary  %s -> %s\n", in_path.c_str(),
              out_path.c_str());
  return 0;
}

// Returns 1 if the file round-tripped as a trace, 0 if skipped; flags
// `failed` on any mismatch.
int check_file(const std::string& path, bool& failed) {
  std::string text;
  Json doc;
  try {
    text = load_text(path);
    doc = Json::parse(text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), e.what());
    failed = true;
    return 0;
  }
  const JsonTraceKind kind = json_trace_kind(doc);
  if (kind == JsonTraceKind::kNotATrace) {
    std::printf("skip      %s (not a trace)\n", path.c_str());
    return 0;
  }
  const std::string binary_path = path + ".roundtrip.trc";
  try {
    std::string reemitted;
    bool fingerprint_ok = true;
    if (kind == JsonTraceKind::kSimTrace) {
      const std::vector<WindowMetrics> rows = sim_trace_from_json(doc);
      write_binary_sim_trace(rows, binary_path);
      const std::vector<WindowMetrics> reloaded =
          read_binary_sim_trace(binary_path);
      fingerprint_ok = deterministic_fingerprint(reloaded) ==
                       deterministic_fingerprint(rows);
      reemitted = sim_trace_text(reloaded);
    } else {
      const telemetry::RunTrace trace = trace_from_json(doc);
      write_binary_run_trace(trace, binary_path);
      reemitted = run_trace_text(read_binary_run_trace(binary_path));
    }
    std::filesystem::remove(binary_path);
    if (!fingerprint_ok) {
      std::fprintf(stderr, "%s: fingerprint changed across binary round "
                           "trip\n",
                   path.c_str());
      failed = true;
      return 1;
    }
    if (reemitted != text) {
      std::fprintf(stderr,
                   "%s: binary round trip is not byte-identical "
                   "(%zu vs %zu bytes)\n",
                   path.c_str(), reemitted.size(), text.size());
      failed = true;
      return 1;
    }
    std::printf("roundtrip %s (%zu bytes)\n", path.c_str(), text.size());
    return 1;
  } catch (const std::exception& e) {
    std::filesystem::remove(binary_path);
    std::fprintf(stderr, "%s: %s\n", path.c_str(), e.what());
    failed = true;
    return 1;
  }
}

int check(const std::vector<std::string>& args) {
  bool failed = false;
  int traces = 0;
  for (const std::string& arg : args) {
    const std::filesystem::path p(arg);
    if (std::filesystem::is_directory(p)) {
      for (const auto& entry : std::filesystem::directory_iterator(p)) {
        if (entry.path().extension() == ".json") {
          traces += check_file(entry.path().string(), failed);
        }
      }
    } else {
      traces += check_file(p.string(), failed);
    }
  }
  if (traces == 0) {
    std::fprintf(stderr, "no trace JSON found to round-trip\n");
    return 1;
  }
  return failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 3 && std::strcmp(argv[1], "--check") == 0) {
      return check(std::vector<std::string>(argv + 2, argv + argc));
    }
    if (argc == 3) {
      return convert(argv[1], argv[2]);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_convert: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr,
               "usage: trace_convert <in> <out>\n"
               "       trace_convert --check <dir-or-json>...\n");
  return 2;
}
