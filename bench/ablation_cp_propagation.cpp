// Ablation: forward checking (CpSolver) vs domain propagation
// (PropagatingCpSolver) — what Choco-style filtering buys on this
// problem.  Reports explored nodes, backtracks, time and whether
// optimality was proven, per instance size and constraint density.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/csv.h"
#include "common/stats.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "lp/cp_solver.h"
#include "lp/propagating_solver.h"
#include "workload/generator.h"

int main() {
  using namespace iaas;
  using iaas::bench::apply_env;
  using iaas::bench::csv_dir;

  std::printf("=== Ablation: CP forward checking vs domain propagation ===\n");
  iaas::bench::SweepConfig env_probe;
  env_probe.runs = 3;
  env_probe = apply_env(env_probe);
  const std::size_t runs = env_probe.runs;

  // Sized so optimality is provable within budget — the point is the
  // engine comparison (nodes/time to *proof*), not budget saturation.
  struct Case {
    std::uint32_t servers;
    std::uint32_t vms;
    double constrained;
  };
  const std::vector<Case> cases = {
      {8, 10, 0.3}, {8, 10, 0.8}, {8, 14, 0.3}, {8, 14, 0.8}};

  TextTable table({"scenario", "engine", "mean nodes", "mean backtracks",
                   "mean time (s)", "proved optimal"});
  CsvWriter csv(csv_dir() + "/ablation_cp_propagation.csv",
                {"servers", "constrained_fraction", "engine", "nodes",
                 "backtracks", "seconds", "proved"});

  CpSolverOptions options;
  options.time_limit_seconds = 10.0;
  options.max_backtracks = 100000;

  for (const Case& c : cases) {
    ScenarioConfig scenario = ScenarioConfig::paper_scale(c.servers);
    scenario.vms = c.vms;
    scenario.constrained_fraction = c.constrained;
    const ScenarioGenerator generator(scenario);
    char label[64];
    std::snprintf(label, sizeof(label), "%u srv, %u VMs, %.0f%% constr",
                  c.servers, c.vms, 100.0 * c.constrained);

    for (int engine = 0; engine < 2; ++engine) {
      RunningStats nodes, backtracks, time_s, proved;
      for (std::size_t run = 0; run < runs; ++run) {
        const Instance inst = generator.generate(1300 + run);
        CpStats stats;
        Stopwatch timer;
        if (engine == 0) {
          CpSolver(inst, options).solve(&stats);
        } else {
          PropagatingCpSolver(inst, options).solve(&stats);
        }
        time_s.add(timer.elapsed_seconds());
        nodes.add(static_cast<double>(stats.nodes));
        backtracks.add(static_cast<double>(stats.backtracks));
        proved.add(stats.proved_optimal ? 1.0 : 0.0);
      }
      const char* engine_name =
          engine == 0 ? "forward-checking" : "propagation";
      table.add_row({label, engine_name, TextTable::num(nodes.mean(), 0),
                     TextTable::num(backtracks.mean(), 0),
                     TextTable::num(time_s.mean(), 3),
                     TextTable::num(100.0 * proved.mean(), 0) + "%"});
      csv.add_row({std::to_string(c.servers),
                   TextTable::num(c.constrained, 2), engine_name,
                   TextTable::num(nodes.mean(), 1),
                   TextTable::num(backtracks.mean(), 1),
                   TextTable::num(time_s.mean(), 6),
                   TextTable::num(proved.mean(), 2)});
    }
  }
  std::printf("\n%zu runs per cell, 10 s / 100k-backtrack budgets:\n", runs);
  table.print();
  std::printf(
      "\nReading: propagation prunes via domain wipeouts before branching;"
      "\nthe denser the relationship constraints, the bigger its edge.\n");
  return 0;
}
