// Trace-file validator for the CTest smoke job: scans a directory (or
// explicit file list) for the JSON files the benches emit, parses each
// with the library's own Json parser, and checks the shape:
//
//   run trace      {label, seed, columns, rows} with every row an array
//                  of numbers as long as `columns`
//   registry dump  {counters, phase_seconds} with numeric values
//
// Exits non-zero on any parse/shape failure, or when no run trace was
// found at all (an empty directory must not pass as "validated").
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/telemetry.h"
#include "io/json.h"

namespace {

using iaas::Json;

bool check_trace_object(const Json& doc, const std::string& path) {
  const auto& columns = iaas::telemetry::RunTrace::columns();
  if (!doc.contains("label") || !doc.contains("seed") ||
      !doc.contains("columns") || !doc.contains("rows")) {
    std::fprintf(stderr, "%s: missing trace keys\n", path.c_str());
    return false;
  }
  if (doc.at("columns").size() != columns.size()) {
    std::fprintf(stderr, "%s: expected %zu columns, found %zu\n",
                 path.c_str(), columns.size(), doc.at("columns").size());
    return false;
  }
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (doc.at("columns").at(i).as_string() != columns[i]) {
      std::fprintf(stderr, "%s: column %zu is \"%s\", expected \"%s\"\n",
                   path.c_str(), i,
                   doc.at("columns").at(i).as_string().c_str(),
                   columns[i].c_str());
      return false;
    }
  }
  const Json& rows = doc.at("rows");
  if (rows.size() == 0) {
    std::fprintf(stderr, "%s: trace has no rows\n", path.c_str());
    return false;
  }
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const Json& row = rows.at(r);
    if (row.size() != columns.size()) {
      std::fprintf(stderr, "%s: row %zu has %zu fields, expected %zu\n",
                   path.c_str(), r, row.size(), columns.size());
      return false;
    }
    for (std::size_t i = 0; i < row.size(); ++i) {
      (void)row.at(i).as_number();  // throws on non-number
    }
  }
  std::printf("ok trace    %s (%zu rows)\n", path.c_str(), rows.size());
  return true;
}

bool check_registry_object(const Json& doc, const std::string& path) {
  for (const char* key : {"counters", "phase_seconds"}) {
    if (!doc.contains(key)) {
      std::fprintf(stderr, "%s: missing \"%s\"\n", path.c_str(), key);
      return false;
    }
    for (const auto& [name, value] : doc.at(key).items()) {
      (void)name;
      (void)value.as_number();
    }
  }
  std::printf("ok registry %s\n", path.c_str());
  return true;
}

// Returns 1 if the file validated as a run trace, 0 for other valid
// telemetry JSON; throws/flags on malformed content.
int check_file(const std::string& path, bool& failed) {
  std::ifstream in(path);
  if (!in.is_open()) {
    std::fprintf(stderr, "%s: cannot open\n", path.c_str());
    failed = true;
    return 0;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    const Json doc = Json::parse(buffer.str());
    if (doc.contains("rows")) {
      failed = !check_trace_object(doc, path) || failed;
      return 1;
    }
    if (doc.contains("counters")) {
      failed = !check_registry_object(doc, path) || failed;
      return 0;
    }
    std::printf("skip        %s (not a telemetry file)\n", path.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), e.what());
    failed = true;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: check_trace <dir-or-json>...\n");
    return 2;
  }
  bool failed = false;
  int traces = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    if (std::filesystem::is_directory(arg)) {
      for (const auto& entry :
           std::filesystem::directory_iterator(arg)) {
        if (entry.path().extension() == ".json") {
          traces += check_file(entry.path().string(), failed);
        }
      }
    } else {
      traces += check_file(arg.string(), failed);
    }
  }
  if (traces == 0) {
    std::fprintf(stderr, "no run-trace JSON found\n");
    return 1;
  }
  return failed ? 1 : 0;
}
