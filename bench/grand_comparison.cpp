// Grand comparison: the paper's six algorithms plus this library's three
// extended baselines, side by side on every §IV metric at one mid-size
// scenario — the one-stop summary table.
//
// Also the telemetry showcase: every EA run collects a per-generation
// RunTrace; run 0 of each algorithm is written to
//   <csv_dir>/trace_<algorithm>.{json,csv}
// and the process-wide counter/phase registry snapshot lands in
//   <csv_dir>/telemetry_registry.json
// (IAAS_BENCH_FAST shrinks the scenario to 16 servers so the CTest
// trace smoke stays cheap).
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "bench/bench_util.h"
#include "common/csv.h"
#include "common/expect.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/telemetry.h"
#include "io/trace_json.h"
#include "io/trace_stream.h"
#include "workload/generator.h"

namespace {

std::string file_stem(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '-') {
      c = '_';
    }
  }
  return out;
}

}  // namespace

int main() {
  using namespace iaas;
  using iaas::bench::apply_env;
  using iaas::bench::csv_dir;
  using iaas::bench::paper_suite;

  std::printf("=== Grand comparison: all nine allocators ===\n");
  iaas::bench::SweepConfig env_probe;
  env_probe.runs = 3;
  env_probe.suite = paper_suite();
  env_probe = apply_env(env_probe);
  const std::size_t runs = env_probe.runs;
  const bool fast = std::getenv("IAAS_BENCH_FAST") != nullptr;
  const std::uint32_t servers = fast ? 16u : 64u;

  ScenarioConfig scenario = ScenarioConfig::paper_scale(servers);
  scenario.preplaced_fraction = 0.3;  // migrations in play
  const ScenarioGenerator generator(scenario);
  SuiteOptions suite = env_probe.suite;
  suite.ea.nsga.collect_trace = true;

  std::vector<AlgorithmId> algorithms = all_algorithms();
  for (AlgorithmId id : extended_algorithms()) {
    algorithms.push_back(id);
  }

  TextTable table({"algorithm", "time (s)", "rejection", "violations",
                   "usage+opex", "downtime", "migration", "total"});
  CsvWriter csv(csv_dir() + "/grand_comparison.csv",
                {"algorithm", "seconds", "rejection_rate", "violations",
                 "usage_opex", "downtime", "migration", "total"});

  for (AlgorithmId id : algorithms) {
    RunningStats time_s, rej, viol, usage, down, mig;
    for (std::size_t run = 0; run < runs; ++run) {
      const Instance inst = generator.generate(1100 + run);
      const AllocationResult r =
          make_allocator(id, suite)->allocate(inst, 13 + run);
      time_s.add(r.wall_seconds);
      rej.add(r.rejection_rate());
      viol.add(static_cast<double>(r.raw_violations.total()));
      usage.add(r.objectives.usage_cost);
      down.add(r.objectives.downtime_cost);
      mig.add(r.objectives.migration_cost);
      if (run == 0 && !r.trace.empty()) {
        const std::string stem =
            csv_dir() + "/trace_" + file_stem(algorithm_name(id));
        write_trace_json(r.trace, stem + ".json");
        r.trace.write_csv(stem + ".csv");
        std::printf("trace: %s.{json,csv} (%zu generations)\n",
                    stem.c_str(), r.trace.rows.size());
      }
    }
    const double total = usage.mean() + down.mean() + mig.mean();
    table.add_row({algorithm_name(id), TextTable::num(time_s.mean(), 3),
                   TextTable::num(rej.mean(), 3),
                   TextTable::num(viol.mean(), 1),
                   TextTable::num(usage.mean(), 1),
                   TextTable::num(down.mean(), 1),
                   TextTable::num(mig.mean(), 1),
                   TextTable::num(total, 1)});
    csv.add_row({algorithm_name(id), TextTable::num(time_s.mean(), 6),
                 TextTable::num(rej.mean(), 6),
                 TextTable::num(viol.mean(), 2),
                 TextTable::num(usage.mean(), 4),
                 TextTable::num(down.mean(), 4),
                 TextTable::num(mig.mean(), 4), TextTable::num(total, 4)});
  }
  std::printf("\n%u servers / %u VMs, 30%% preplaced, %zu runs each:\n",
              servers, 2 * servers, runs);
  table.print();
  std::printf("CSV: %s/grand_comparison.csv\n", csv_dir().c_str());

  // What the whole process did, in one object (counters are fed by every
  // EA task merge + standalone tabu run; phase times by the scoped
  // timers in the engine and simulator).
  const std::string registry_path = csv_dir() + "/telemetry_registry.json";
  write_registry_json(telemetry::Registry::global(), registry_path);
  std::printf("registry snapshot: %s\n", registry_path.c_str());
  return 0;
}
