// Grand comparison: the paper's six algorithms plus this library's three
// extended baselines, side by side on every §IV metric at one mid-size
// scenario — the one-stop summary table.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/csv.h"
#include "common/stats.h"
#include "common/table.h"
#include "workload/generator.h"

int main() {
  using namespace iaas;
  using iaas::bench::apply_env;
  using iaas::bench::csv_dir;
  using iaas::bench::paper_suite;

  std::printf("=== Grand comparison: all nine allocators ===\n");
  iaas::bench::SweepConfig env_probe;
  env_probe.runs = 3;
  env_probe = apply_env(env_probe);
  const std::size_t runs = env_probe.runs;

  ScenarioConfig scenario = ScenarioConfig::paper_scale(64);
  scenario.preplaced_fraction = 0.3;  // migrations in play
  const ScenarioGenerator generator(scenario);
  const SuiteOptions suite = paper_suite();

  std::vector<AlgorithmId> algorithms = all_algorithms();
  for (AlgorithmId id : extended_algorithms()) {
    algorithms.push_back(id);
  }

  TextTable table({"algorithm", "time (s)", "rejection", "violations",
                   "usage+opex", "downtime", "migration", "total"});
  CsvWriter csv(csv_dir() + "/grand_comparison.csv",
                {"algorithm", "seconds", "rejection_rate", "violations",
                 "usage_opex", "downtime", "migration", "total"});

  for (AlgorithmId id : algorithms) {
    RunningStats time_s, rej, viol, usage, down, mig;
    for (std::size_t run = 0; run < runs; ++run) {
      const Instance inst = generator.generate(1100 + run);
      const AllocationResult r =
          make_allocator(id, suite)->allocate(inst, 13 + run);
      time_s.add(r.wall_seconds);
      rej.add(r.rejection_rate());
      viol.add(static_cast<double>(r.raw_violations.total()));
      usage.add(r.objectives.usage_cost);
      down.add(r.objectives.downtime_cost);
      mig.add(r.objectives.migration_cost);
    }
    const double total = usage.mean() + down.mean() + mig.mean();
    table.add_row({algorithm_name(id), TextTable::num(time_s.mean(), 3),
                   TextTable::num(rej.mean(), 3),
                   TextTable::num(viol.mean(), 1),
                   TextTable::num(usage.mean(), 1),
                   TextTable::num(down.mean(), 1),
                   TextTable::num(mig.mean(), 1),
                   TextTable::num(total, 1)});
    csv.add_row({algorithm_name(id), TextTable::num(time_s.mean(), 6),
                 TextTable::num(rej.mean(), 6),
                 TextTable::num(viol.mean(), 2),
                 TextTable::num(usage.mean(), 4),
                 TextTable::num(down.mean(), 4),
                 TextTable::num(mig.mean(), 4), TextTable::num(total, 4)});
  }
  std::printf("\n64 servers / 128 VMs, 30%% preplaced, %zu runs each:\n",
              runs);
  table.print();
  std::printf("CSV: %s/grand_comparison.csv\n", csv_dir().c_str());
  return 0;
}
