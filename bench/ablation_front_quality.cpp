// Ablation: Pareto-front quality of the EA variants, measured by the
// exact 3D hypervolume indicator (larger = the front dominates more of
// the objective space), plus the U-NSGA-III niche-tournament option.
//
// This quantifies the paper's qualitative choice of NSGA-III over
// NSGA-II for this 3-objective problem, and measures whether the
// unified tournament of [28] (U-NSGA-III) buys anything here.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/csv.h"
#include "common/stats.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "ea/hypervolume.h"
#include "ea/nsga2.h"
#include "ea/nsga3.h"
#include "ea/problem.h"
#include "tabu/repair.h"
#include "workload/generator.h"

namespace {

using namespace iaas;

// Reference point for the hypervolume: the per-axis worst over every
// front being compared, stretched 10% so boundary points count.
ObjArray reference_over(const std::vector<Population>& fronts) {
  ObjArray ref = {1e-9, 1e-9, 1e-9};
  for (const Population& front : fronts) {
    for (const Individual& ind : front) {
      for (std::size_t o = 0; o < 3; ++o) {
        ref[o] = std::max(ref[o], ind.objectives[o]);
      }
    }
  }
  for (double& v : ref) {
    v *= 1.1;
  }
  return ref;
}

struct Variant {
  std::string name;
  bool nsga3;
  bool niche_tournament;
  bool repair;
};

}  // namespace

int main() {
  using iaas::bench::apply_env;
  using iaas::bench::csv_dir;

  std::printf("=== Ablation: front quality (hypervolume) ===\n");
  iaas::bench::SweepConfig env_probe;
  env_probe.runs = 3;
  env_probe = apply_env(env_probe);
  const std::size_t runs = env_probe.runs;

  ScenarioConfig scenario = ScenarioConfig::paper_scale(32);
  scenario.preplaced_fraction = 0.5;  // make the migration axis live
  const ScenarioGenerator generator(scenario);

  const std::vector<Variant> variants = {
      {"NSGA-II", false, false, false},
      {"NSGA-III", true, false, false},
      {"NSGA-III (U tournament)", true, true, false},
      {"NSGA-III+Tabu", true, false, true},
      {"NSGA-III+Tabu (U tournament)", true, true, true},
  };

  TextTable table({"variant", "mean hypervolume", "mean front size",
                   "mean time (s)"});
  CsvWriter csv(csv_dir() + "/ablation_front_quality.csv",
                {"variant", "hypervolume", "front_size", "seconds"});

  // Collect fronts per run first so every variant shares one reference
  // point per run (hypervolumes are only comparable that way).
  for (const Variant& v : variants) {
    RunningStats hv_stats, size_stats, time_stats;
    for (std::size_t run = 0; run < runs; ++run) {
      const Instance inst = generator.generate(500 + run);
      AllocationProblem problem(inst);
      NsgaConfig cfg;
      cfg.threads = 0;
      cfg.niche_tournament = v.niche_tournament;
      if (v.repair) {
        cfg.constraint_mode = ConstraintMode::kRepair;
      }
      TabuRepair repair(inst);
      RepairFn repair_fn;
      if (v.repair) {
        repair_fn = [&repair](std::vector<std::int32_t>& genes, Rng& rng) {
          repair.repair(genes, rng);
        };
      }
      Stopwatch timer;
      Population front;
      if (v.nsga3) {
        Nsga3 engine(problem, cfg, repair_fn);
        front = engine.run(run + 1).front;
      } else {
        Nsga2 engine(problem, cfg, repair_fn);
        front = engine.run(run + 1).front;
      }
      time_stats.add(timer.elapsed_seconds());
      size_stats.add(static_cast<double>(front.size()));

      // Per-run reference: this variant's own front stretched — for the
      // cross-variant comparison we rely on identical instances/seeds
      // and report means; see CSV for raw values.
      const ObjArray ref = reference_over({front});
      hv_stats.add(hypervolume(front, ref) /
                   std::max(ref[0] * ref[1] * ref[2], 1e-12));
    }
    table.add_row({v.name, TextTable::num(hv_stats.mean(), 4),
                   TextTable::num(size_stats.mean(), 1),
                   TextTable::num(time_stats.mean(), 3)});
    csv.add_row({v.name, TextTable::num(hv_stats.mean(), 6),
                 TextTable::num(size_stats.mean(), 2),
                 TextTable::num(time_stats.mean(), 6)});
  }
  std::printf("\n32 servers / 64 VMs, 50%% preplaced, %zu runs each"
              " (hypervolume normalised by its reference box):\n",
              runs);
  table.print();
  std::printf(
      "\nReading: higher normalised hypervolume = the front covers more"
      "\ntrade-off space.  The repaired hybrids trade a little coverage"
      "\nfor feasibility; the U tournament is a wash at this scale.\n");
  return 0;
}
