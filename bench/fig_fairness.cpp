// Fairness scenario-matrix driver (DESIGN.md §14): sweeps strategic
// consumer fraction (0 / 10 / 25 / 50%) x allocator (NSGA-III+Tabu, CP,
// round-robin, sharded) over a steady-state horizon with per-consumer
// identities, reporting the fairness/welfare columns (Jain short/long
// term, envy, utilization Pareto efficiency, honest vs strategic
// welfare, energy cost) and emitting BENCH_fairness.json.
//
// Tiers (IAAS_BENCH_FAST selects the smoke tier):
//   fast      32 servers /  2 DCs,  6 windows x 15 arrivals,  8 consumers
//   default  128 servers /  4 DCs, 20 windows x 60 arrivals, 24 consumers
//
// Gates (all hard, any tier):
//   honest welfare   per allocator, mean honest-consumer welfare at any
//                    strategic fraction must stay >= floor x the
//                    fraction-0 baseline (floor = 0.5, overridable via
//                    IAAS_FAIRNESS_WELFARE_FLOOR) — strategic consumers
//                    must not collapse service for truthful ones.
//   differential     fraction-0 cells must carry zero strategic VMs.
//   thread invariance the NSGA cell at fraction 25% re-runs with 1 and
//                    2 EA threads; fingerprints must be bit-identical.
//   trace round trip the NSGA cells stream JSON + binary traces through
//                    the per-window sink; each binary trace must reload
//                    to the exact cell fingerprint.  The JSON files land
//                    in IAAS_BENCH_CSV_DIR, so the trace_convert_roundtrip
//                    / trace_validate ctest fixtures re-check them.
//
// Every cell fingerprint is printed as a deterministic_fingerprint=
// line: the CI telemetry job diffs the full set between telemetry-ON
// and telemetry-OFF builds.  CP cells cap the solver by backtracks, not
// wall clock, so every cell is bit-deterministic.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "algo/registry.h"
#include "algo/sharded_allocator.h"
#include "bench/bench_util.h"
#include "common/table.h"
#include "io/emit.h"
#include "io/trace_binary.h"
#include "io/trace_stream.h"
#include "sim/simulator.h"
#include "workload/scenario_config.h"
#include "workload/strategic.h"

namespace {

struct Tier {
  const char* name = "default";
  std::uint32_t servers = 128;
  std::uint32_t datacenters = 4;
  std::size_t windows = 20;
  double arrivals = 100.0;
  std::uint32_t consumers = 24;
};

struct Cell {
  std::string algorithm;
  int fraction_percent = 0;
  double mean_jain = 0.0;
  double final_long_term_jain = 0.0;
  double mean_envy = 0.0;
  double mean_utilization = 0.0;
  double mean_honest_welfare = 0.0;
  double mean_strategic_welfare = 0.0;
  double mean_energy = 0.0;
  std::size_t strategic_vms = 0;  // total over the horizon
  std::size_t rejected = 0;       // permanent rejections
  std::uint64_t fingerprint = 0;
};

iaas::SuiteOptions lean_suite() {
  iaas::SuiteOptions suite;
  suite.ea.nsga.population_size = 24;
  suite.ea.nsga.max_evaluations = 960;
  suite.ea.nsga.reference_divisions = 4;
  suite.ea.nsga.threads = 0;
  // Determinism: bound the CP baseline by backtracks (deterministic)
  // instead of wall clock, so cell fingerprints never depend on host
  // speed or telemetry overhead.
  suite.cp.time_limit_seconds = 1e9;
  suite.cp.max_backtracks = 20000;
  return suite;
}

iaas::SimConfig make_sim_config(const Tier& tier, double fraction) {
  iaas::SimConfig sim;
  sim.windows = tier.windows;
  sim.arrivals_per_window_mean = tier.arrivals;
  sim.departure_probability = 0.15;
  sim.retry.max_attempts = 2;
  sim.retry.backoff_base_windows = 1;
  sim.scenario =
      iaas::ScenarioConfig::paper_scale(tier.servers, tier.datacenters);
  sim.scenario.vms = 0;  // the simulator generates arrivals itself
  sim.scenario.consumers = tier.consumers;
  sim.scenario.strategic.strategic_fraction = fraction;
  sim.scenario.strategic.profiles = iaas::default_strategy_profiles();
  return sim;
}

std::unique_ptr<iaas::Allocator> make_cell_allocator(
    const std::string& kind, const iaas::SuiteOptions& suite) {
  if (kind == "sharded") {
    iaas::ShardedAllocatorOptions options;
    options.shard_count = 0;  // one shard per datacenter
    options.suite = suite;
    return std::make_unique<iaas::ShardedAllocator>(options);
  }
  if (kind == "cp") {
    return iaas::make_allocator(iaas::AlgorithmId::kConstraintProgramming,
                                suite);
  }
  if (kind == "round_robin") {
    return iaas::make_allocator(iaas::AlgorithmId::kRoundRobin, suite);
  }
  return iaas::make_allocator(iaas::AlgorithmId::kNsga3Tabu, suite);
}

Cell run_cell(const Tier& tier, const std::string& kind, int percent,
              const iaas::SuiteOptions& suite, std::uint64_t seed,
              const std::string& trace_base) {
  Cell cell;
  cell.fraction_percent = percent;
  std::unique_ptr<iaas::Allocator> alloc = make_cell_allocator(kind, suite);
  cell.algorithm = alloc->name();
  iaas::CloudSimulator sim(
      make_sim_config(tier, static_cast<double>(percent) / 100.0),
      std::move(alloc));
  std::unique_ptr<iaas::SimTraceWriter> json_writer;
  std::unique_ptr<iaas::BinaryTraceWriter> binary_writer;
  if (!trace_base.empty()) {
    json_writer =
        std::make_unique<iaas::SimTraceWriter>(trace_base + ".json");
    binary_writer =
        std::make_unique<iaas::BinaryTraceWriter>(trace_base + ".trc");
    sim.set_window_sink([&](const iaas::WindowMetrics& row) {
      json_writer->append(row);
      binary_writer->append(row);
    });
  }
  const std::vector<iaas::WindowMetrics> rows = sim.run(seed);
  if (json_writer != nullptr) {
    json_writer->finish();
    binary_writer->finish();
  }
  cell.fingerprint = iaas::deterministic_fingerprint(rows);
  std::size_t scored = 0;
  for (const iaas::WindowMetrics& row : rows) {
    cell.rejected += row.permanently_rejected;
    if (row.fairness.consumers == 0) {
      continue;  // empty window: no fairness columns
    }
    ++scored;
    cell.mean_jain += row.fairness.jain_index;
    cell.final_long_term_jain = row.fairness.long_term_jain;
    cell.mean_envy += row.fairness.envy;
    cell.mean_utilization += row.fairness.utilization_efficiency;
    cell.mean_honest_welfare += row.fairness.honest_welfare;
    cell.mean_strategic_welfare += row.fairness.strategic_welfare;
    cell.mean_energy += row.fairness.energy_cost;
    cell.strategic_vms += row.fairness.strategic_vms;
  }
  if (scored > 0) {
    const double d = static_cast<double>(scored);
    cell.mean_jain /= d;
    cell.mean_envy /= d;
    cell.mean_utilization /= d;
    cell.mean_honest_welfare /= d;
    cell.mean_strategic_welfare /= d;
    cell.mean_energy /= d;
  }
  return cell;
}

}  // namespace

int main() {
  using namespace iaas;
  using iaas::bench::csv_dir;

  std::printf("=== Fairness scenario matrix ===\n");

  Tier tier;
  if (std::getenv("IAAS_BENCH_FAST") != nullptr) {
    tier = {"fast", 32, 2, 6, 30.0, 8};
  }
  const std::uint64_t seed = 20170529;
  const SuiteOptions suite = lean_suite();
  const std::vector<int> fractions = {0, 10, 25, 50};
  const std::vector<std::string> kinds = {"nsga3_tabu", "cp", "round_robin",
                                          "sharded"};

  std::printf("tier %s: %u servers / %u DCs, %zu windows, %.0f mean "
              "arrivals/window, %u consumers\n",
              tier.name, tier.servers, tier.datacenters, tier.windows,
              tier.arrivals, tier.consumers);

  std::vector<Cell> cells;
  for (const std::string& kind : kinds) {
    for (int percent : fractions) {
      // Only the NSGA cells stream traces: four files is plenty for the
      // round-trip fixtures without flooding the smoke directory.
      const std::string trace_base =
          kind == "nsga3_tabu"
              ? csv_dir() + "/trace_fairness_f" + std::to_string(percent)
              : std::string();
      cells.push_back(run_cell(tier, kind, percent, suite, seed, trace_base));
    }
  }

  TextTable table({"allocator", "strategic%", "jain", "long-term jain",
                   "envy", "util eff", "honest welfare", "strategic welfare",
                   "energy", "rejected"});
  for (const Cell& cell : cells) {
    table.add_row({cell.algorithm, std::to_string(cell.fraction_percent),
                   TextTable::num(cell.mean_jain, 4),
                   TextTable::num(cell.final_long_term_jain, 4),
                   TextTable::num(cell.mean_envy, 4),
                   TextTable::num(cell.mean_utilization, 4),
                   TextTable::num(cell.mean_honest_welfare, 4),
                   TextTable::num(cell.mean_strategic_welfare, 4),
                   TextTable::num(cell.mean_energy, 1),
                   std::to_string(cell.rejected)});
  }
  table.print();

  // The telemetry CI job diffs these lines between ON and OFF builds.
  for (const Cell& cell : cells) {
    std::printf("deterministic_fingerprint=%016llx  # %s/f%d\n",
                static_cast<unsigned long long>(cell.fingerprint),
                cell.algorithm.c_str(), cell.fraction_percent);
  }

  bool ok = true;

  // --- differential gate: fraction 0 must stay honest ------------------
  for (const Cell& cell : cells) {
    if (cell.fraction_percent == 0 && cell.strategic_vms != 0) {
      std::fprintf(stderr,
                   "FAIL: [%s] %zu strategic VMs at strategic_fraction 0\n",
                   cell.algorithm.c_str(), cell.strategic_vms);
      ok = false;
    }
    if (cell.fraction_percent > 0 && cell.strategic_vms == 0) {
      std::fprintf(stderr,
                   "FAIL: [%s/f%d] strategic mode produced no strategic "
                   "VMs\n",
                   cell.algorithm.c_str(), cell.fraction_percent);
      ok = false;
    }
  }

  // --- honest-welfare gate ---------------------------------------------
  double floor = 0.5;
  if (const char* env = std::getenv("IAAS_FAIRNESS_WELFARE_FLOOR")) {
    floor = std::strtod(env, nullptr);
  }
  // Cells are grouped by allocator in insertion order: fractions.size()
  // consecutive cells per allocator, fraction 0 first.
  const std::size_t per_alloc = fractions.size();
  for (std::size_t a = 0; a < kinds.size(); ++a) {
    const Cell& baseline = cells[a * per_alloc];
    if (baseline.mean_honest_welfare <= 1e-9) {
      std::printf("welfare gate skipped for %s: zero baseline\n",
                  baseline.algorithm.c_str());
      continue;
    }
    for (std::size_t f = 1; f < per_alloc; ++f) {
      const Cell& cell = cells[a * per_alloc + f];
      const double ratio =
          cell.mean_honest_welfare / baseline.mean_honest_welfare;
      if (ratio < floor) {
        std::fprintf(stderr,
                     "FAIL: [%s/f%d] honest welfare collapsed to %.4f of "
                     "the honest baseline (floor %.2f)\n",
                     cell.algorithm.c_str(), cell.fraction_percent, ratio,
                     floor);
        ok = false;
      }
    }
  }
  std::printf("honest-welfare gate: floor %.2f of the fraction-0 baseline\n",
              floor);

  // --- thread-invariance gate ------------------------------------------
  {
    std::uint64_t digests[2] = {0, 0};
    for (int t = 1; t <= 2; ++t) {
      SuiteOptions threaded = suite;
      threaded.ea.nsga.threads = static_cast<std::size_t>(t);
      const Cell probe =
          run_cell(tier, "nsga3_tabu", 25, threaded, seed, std::string());
      digests[t - 1] = probe.fingerprint;
    }
    if (digests[0] != digests[1]) {
      std::fprintf(stderr,
                   "FAIL: strategic fingerprint differs across EA thread "
                   "counts (%016llx vs %016llx)\n",
                   static_cast<unsigned long long>(digests[0]),
                   static_cast<unsigned long long>(digests[1]));
      ok = false;
    } else {
      std::printf("thread-invariance gate passed: %016llx at 1 and 2 "
                  "threads\n",
                  static_cast<unsigned long long>(digests[0]));
    }
  }

  // --- binary trace reload gate ----------------------------------------
  for (int percent : fractions) {
    const std::string path =
        csv_dir() + "/trace_fairness_f" + std::to_string(percent) + ".trc";
    const Cell& cell = cells[static_cast<std::size_t>(
        std::find(fractions.begin(), fractions.end(), percent) -
        fractions.begin())];
    const std::uint64_t reloaded =
        deterministic_fingerprint(read_binary_sim_trace(path));
    if (reloaded != cell.fingerprint) {
      std::fprintf(stderr,
                   "FAIL: [%s/f%d] binary trace reload changed the "
                   "fingerprint\n",
                   cell.algorithm.c_str(), percent);
      ok = false;
    }
  }

  const std::string json_path = csv_dir() + "/BENCH_fairness.json";
  {
    std::string out;
    JsonEmitter e(out, 2);
    e.begin_object();
    e.key("bench");
    e.value("fairness_matrix");
    e.key("tier");
    e.value(tier.name);
    e.key("servers");
    e.value(static_cast<std::uint64_t>(tier.servers));
    e.key("datacenters");
    e.value(static_cast<std::uint64_t>(tier.datacenters));
    e.key("windows");
    e.value(static_cast<std::uint64_t>(tier.windows));
    e.key("consumers");
    e.value(static_cast<std::uint64_t>(tier.consumers));
    e.key("welfare_floor");
    e.value(floor);
    e.key("cells");
    e.begin_array();
    for (const Cell& cell : cells) {
      char digest[17];
      std::snprintf(digest, sizeof digest, "%016llx",
                    static_cast<unsigned long long>(cell.fingerprint));
      e.begin_object();
      e.key("algorithm");
      e.value(cell.algorithm);
      e.key("strategic_fraction");
      e.value(static_cast<double>(cell.fraction_percent) / 100.0);
      e.key("mean_jain");
      e.value(cell.mean_jain);
      e.key("final_long_term_jain");
      e.value(cell.final_long_term_jain);
      e.key("mean_envy");
      e.value(cell.mean_envy);
      e.key("mean_utilization_efficiency");
      e.value(cell.mean_utilization);
      e.key("mean_honest_welfare");
      e.value(cell.mean_honest_welfare);
      e.key("mean_strategic_welfare");
      e.value(cell.mean_strategic_welfare);
      e.key("mean_energy_cost");
      e.value(cell.mean_energy);
      e.key("strategic_vms");
      e.value(static_cast<std::uint64_t>(cell.strategic_vms));
      e.key("rejected");
      e.value(static_cast<std::uint64_t>(cell.rejected));
      e.key("fingerprint");
      e.value(digest);
      e.end_object();
    }
    e.end_array();
    e.end_object();
    out += '\n';
    JsonFileSink sink(json_path);
    sink.write(out);
    sink.close();
    std::printf("\nWrote %s\n", json_path.c_str());
  }

  return ok ? 0 : 1;
}
