// Figure 7: average execution time, *few* resources.
//
// Paper's finding: Round Robin and constraint programming are the fastest
// on small problems (~1.5 s on their Celeron NUC) while the evolutionary
// algorithms pay 2-3x for their deeper exploration (~5 s).  Absolute
// times differ on modern hardware; the ordering and the RR/CP-vs-EA gap
// are the reproduced shape.
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace iaas;
  using namespace iaas::bench;

  std::printf("=== Fig. 7: average execution time, few resources ===\n");
  SweepConfig config;
  config.server_sizes = {16, 32, 64};
  config.suite = paper_suite();
  config = apply_env(config);
  print_nsga_settings(config.suite.ea.nsga);

  const SweepResult result = run_sweep(config);
  print_metric_table(result, "Mean execution time (seconds)",
                     &CellStats::mean_seconds, 4,
                     csv_dir() + "/fig07_exec_time_small.csv");

  std::printf(
      "\nExpected shape (paper): RoundRobin & ConstraintProgramming fastest;"
      "\nevolutionary algorithms 2-3x slower on small problems.\n");
  return 0;
}
