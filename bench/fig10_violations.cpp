// Figure 10: violated constraints for increasing problem size.
//
// Paper's finding: only the two unmodified evolutionary algorithms
// (NSGA-II and NSGA-III) generate constraint violations — "Figure 10
// shows only two types of bars".  Everything else (RR, CP and both
// repaired hybrids) respects all constraints by construction.  Violations
// are audited on each algorithm's *raw* output, before sanitization.
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace iaas;
  using namespace iaas::bench;

  std::printf("=== Fig. 10: constraint violations vs problem size ===\n");
  SweepConfig config;
  config.server_sizes = {16, 32, 64, 128};
  config.suite = paper_suite();
  config = apply_env(config);
  print_nsga_settings(config.suite.ea.nsga);

  const SweepResult result = run_sweep(config);
  print_metric_table(result, "Mean violated constraints (raw output)",
                     &CellStats::mean_violations, 2,
                     csv_dir() + "/fig10_violations.csv");

  std::printf(
      "\nExpected shape (paper): only NSGA-II and NSGA-III rows are"
      "\nnon-zero; every other algorithm reports 0 at every size.\n");
  return 0;
}
