// Figure 9: user-request rejection rate with increasing problem size.
//
// Paper's finding: NSGA-III+Tabu accepts nearly everything ("too close
// from the optimal solution"); Round Robin and the unmodified NSGA
// algorithms reject many more requests.  A request counts as rejected
// when it is not part of the deployable (sanitized) placement — for the
// unmodified EAs that includes every VM lost to constraint violations.
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace iaas;
  using namespace iaas::bench;

  std::printf("=== Fig. 9: rejection rate vs problem size ===\n");
  SweepConfig config;
  config.server_sizes = {16, 32, 64, 128};
  config.suite = paper_suite();
  config = apply_env(config);
  print_nsga_settings(config.suite.ea.nsga);

  const SweepResult result = run_sweep(config);
  print_metric_table(result, "Mean rejection rate (rejected / N)",
                     &CellStats::mean_rejection_rate, 4,
                     csv_dir() + "/fig09_rejection_rate.csv");

  std::printf(
      "\nExpected shape (paper): NSGA-III+Tabu lowest (near zero);"
      "\nunmodified NSGA-II/III worst; ConstraintProgramming low-to-moderate"
      "\n(it silently rejects what it cannot place).\n");
  return 0;
}
