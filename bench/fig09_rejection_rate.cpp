// Figure 9: user-request rejection rate with increasing problem size.
//
// Paper's finding: NSGA-III+Tabu accepts nearly everything ("too close
// from the optimal solution"); Round Robin and the unmodified NSGA
// algorithms reject many more requests.  A request counts as rejected
// when it is not part of the deployable (sanitized) placement — for the
// unmodified EAs that includes every VM lost to constraint violations.
#include <cstdio>

#include "bench/bench_util.h"
#include "io/trace_json.h"
#include "workload/generator.h"

int main() {
  using namespace iaas;
  using namespace iaas::bench;

  std::printf("=== Fig. 9: rejection rate vs problem size ===\n");
  SweepConfig config;
  config.server_sizes = {16, 32, 64, 128};
  config.suite = paper_suite();
  config = apply_env(config);
  print_nsga_settings(config.suite.ea.nsga);

  const SweepResult result = run_sweep(config);
  print_metric_table(result, "Mean rejection rate (rejected / N)",
                     &CellStats::mean_rejection_rate, 4,
                     csv_dir() + "/fig09_rejection_rate.csv");

  std::printf(
      "\nExpected shape (paper): NSGA-III+Tabu lowest (near zero);"
      "\nunmodified NSGA-II/III worst; ConstraintProgramming low-to-moderate"
      "\n(it silently rejects what it cannot place).\n");

  // One representative decision trace of the paper's proposal at the
  // sweep's smallest size: what the repair-EA actually did, generation
  // by generation, behind the rejection numbers above.
  SuiteOptions trace_suite = config.suite;
  trace_suite.ea.nsga.collect_trace = true;
  ScenarioConfig scenario =
      ScenarioConfig::paper_scale(config.server_sizes.front());
  scenario.constrained_fraction = config.constrained_fraction;
  const Instance instance =
      ScenarioGenerator(scenario).generate(config.base_seed);
  const AllocationResult traced =
      make_allocator(AlgorithmId::kNsga3Tabu, trace_suite)
          ->allocate(instance, config.base_seed ^ 0x5eedULL);
  if (!traced.trace.empty()) {
    const std::string stem = csv_dir() + "/fig09_trace_nsga3_tabu";
    write_trace_json(traced.trace, stem + ".json");
    traced.trace.write_csv(stem + ".csv");
    std::printf("trace: %s.{json,csv} (%zu generations)\n", stem.c_str(),
                traced.trace.rows.size());
  }
  return 0;
}
