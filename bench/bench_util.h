// Shared harness for the figure-reproduction benches: runs the six
// algorithms of §IV over scenario-size sweeps, averages the four metrics
// (execution time, rejection rate, raw violations, provider cost) over
// repeated seeds, and renders tables/CSVs.
//
// Environment knobs (all optional):
//   IAAS_BENCH_RUNS  repetitions per (algorithm, size); default 3
//                    (the paper averages 100 runs on a Celeron NUC —
//                     crank this up for paper-grade averaging)
//   IAAS_BENCH_FAST  if set, shrink sweeps for smoke-testing
//   IAAS_BENCH_SIZES comma-separated server counts overriding the
//                    sweep's sizes (applied after FAST, so an explicit
//                    list always wins — e.g. "16" for the trace smoke)
//   IAAS_BENCH_CSV_DIR directory for CSV dumps; default "."
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "algo/registry.h"
#include "workload/scenario_config.h"

namespace iaas::bench {

struct SweepConfig {
  std::vector<std::uint32_t> server_sizes;  // VMs = 2x (paper scale)
  std::size_t runs = 3;
  std::uint64_t base_seed = 20170529;  // IPDPS'17 venue date
  // Per-run wall-clock cap: once an algorithm's mean time at some size
  // exceeds this, larger sizes are skipped and reported as "> cap" (the
  // Fig. 8 "does not scale" outcome without burning hours).
  double per_run_cap_seconds = 30.0;
  SuiteOptions suite;
  std::vector<AlgorithmId> algorithms;  // empty = all six
  double constrained_fraction = 0.30;
};

struct CellStats {
  double mean_seconds = 0.0;
  double stddev_seconds = 0.0;
  double mean_rejection_rate = 0.0;
  double mean_violations = 0.0;
  double mean_usage_cost = 0.0;
  double mean_downtime_cost = 0.0;
  double mean_migration_cost = 0.0;
  double mean_cost_per_accepted = 0.0;
  std::size_t runs = 0;
  bool capped = false;  // skipped because a smaller size exceeded the cap
};

struct SweepResult {
  // results[algorithm][size]
  std::map<AlgorithmId, std::map<std::uint32_t, CellStats>> cells;
  SweepConfig config;
};

// Applies IAAS_BENCH_RUNS / IAAS_BENCH_FAST to a sweep config.
SweepConfig apply_env(SweepConfig config);

// Table III defaults with parallel evaluation enabled.
SuiteOptions paper_suite();

SweepResult run_sweep(const SweepConfig& config);

// Rendering: one table per metric; CSV rows are
// algorithm,size,metric,value.
void print_metric_table(const SweepResult& result, const std::string& title,
                        double CellStats::*metric, int precision,
                        const std::string& csv_path);

std::string csv_dir();

// Prints the paper's Table III parameter block for the given config.
void print_nsga_settings(const NsgaConfig& config);

}  // namespace iaas::bench
