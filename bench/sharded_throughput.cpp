// Throughput driver for the sharded steady-state allocator (DESIGN.md
// §12): runs the same admission-controlled, warm-started simulation
// horizon twice — once with the plain NSGA-III+Tabu allocator, once with
// the ShardedAllocator — and reports windows/sec, cumulative VM
// arrivals, front quality and the rebalance telemetry, emitting a
// machine-readable BENCH_sharded_throughput.json.
//
// Tiers (IAAS_BENCH_SIZES selects; IAAS_BENCH_FAST shrinks):
//   fast        64 servers,  40 windows x  30 arrivals   (smoke)
//   default    256 servers, 200 windows x 120 arrivals   (CI nightly)
//   throughput 512 servers, 2000 windows x 525 arrivals  (>= 1M VMs)
//
// Gates (nightly):
//   IAAS_BENCH_MIN_SHARD_SPEEDUP   floor on sharded/unsharded windows
//                                  per second; skipped below 8 hardware
//                                  threads (report, don't fail).
//   front quality                  sharded mean aggregate must stay
//                                  within the rebalance tolerance of the
//                                  unsharded run — hard-fails otherwise
//                                  on any hardware.
//
// The sharded fingerprint is printed so the nightly job can diff a
// telemetry-ON build against a telemetry-OFF build: the digest excludes
// wall clocks and counter columns, so the two must match bit-for-bit.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "algo/registry.h"
#include "algo/sharded_allocator.h"
#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "sim/simulator.h"
#include "workload/scenario_config.h"

namespace {

struct Tier {
  const char* name = "default";
  std::uint32_t servers = 256;
  std::uint32_t datacenters = 8;
  std::size_t windows = 200;
  std::size_t arrivals = 120;  // mean per window (schedule alternates)
};

struct ModeResult {
  std::string algorithm;
  double seconds = 0.0;
  double windows_per_sec = 0.0;
  std::size_t cumulative_arrivals = 0;
  std::size_t admitted = 0;
  std::size_t deferred = 0;
  std::size_t dropped = 0;
  std::size_t rejected = 0;  // permanent + terminal-window rejections
  double mean_aggregate = 0.0;
  std::uint64_t fingerprint = 0;
  iaas::ShardRunStats shard_totals;  // zero for the unsharded mode
};

iaas::SimConfig make_sim_config(const Tier& tier) {
  iaas::SimConfig sim;
  sim.windows = tier.windows;
  // Deterministic bursty schedule around the mean: the heavy window
  // overflows the admission budget, the light one drains the queue, so
  // the FIFO admission path is exercised every other window while the
  // cumulative arrival count stays exact (windows * arrivals).
  sim.arrival_schedule = {tier.arrivals + tier.arrivals / 2,
                          tier.arrivals - tier.arrivals / 2};
  sim.max_admissions_per_window = tier.arrivals + tier.arrivals / 4;
  sim.admission_queue_limit = tier.arrivals * 8;
  sim.departure_probability = 0.45;  // high churn keeps the horizon steady
  sim.retry.max_attempts = 2;
  sim.retry.backoff_base_windows = 1;
  sim.warm_start_front = true;  // per-shard persistence across windows
  sim.scenario = iaas::ScenarioConfig::paper_scale(tier.servers,
                                                   tier.datacenters);
  sim.scenario.vms = 0;  // the simulator generates arrivals itself
  return sim;
}

iaas::SuiteOptions lean_suite() {
  iaas::SuiteOptions suite;  // Table III defaults...
  // ...trimmed to steady-state weight: the warm start carries the
  // incumbent, so a short, cheap search per window is the whole point of
  // the throughput driver.
  suite.ea.nsga.population_size = 24;
  suite.ea.nsga.max_evaluations = 960;
  suite.ea.nsga.reference_divisions = 4;
  suite.ea.nsga.threads = 0;  // process-shared pool (fair vs sharded)
  return suite;
}

ModeResult run_mode(const Tier& tier, std::unique_ptr<iaas::Allocator> alloc,
                    std::uint64_t seed) {
  ModeResult mode;
  mode.algorithm = alloc->name();
  iaas::CloudSimulator sim(make_sim_config(tier), std::move(alloc));
  iaas::Stopwatch timer;
  const std::vector<iaas::WindowMetrics> rows = sim.run(seed);
  mode.seconds = timer.elapsed_seconds();
  mode.windows_per_sec =
      static_cast<double>(rows.size()) / std::max(mode.seconds, 1e-9);
  mode.fingerprint = iaas::deterministic_fingerprint(rows);
  double aggregate = 0.0;
  for (const iaas::WindowMetrics& row : rows) {
    mode.cumulative_arrivals += row.arrived;
    mode.admitted += row.admitted;
    mode.deferred += row.admission_deferred;
    mode.dropped += row.admission_dropped;
    mode.rejected += row.permanently_rejected;
    aggregate += row.objectives.aggregate();
    mode.shard_totals.shard_count =
        std::max(mode.shard_totals.shard_count, row.shard.shard_count);
    mode.shard_totals.pre_rejections += row.shard.pre_rejections;
    mode.shard_totals.rebalance_placements += row.shard.rebalance_placements;
    mode.shard_totals.migrations += row.shard.migrations;
    mode.shard_totals.max_shard_vms =
        std::max(mode.shard_totals.max_shard_vms, row.shard.max_shard_vms);
  }
  if (!rows.empty()) {
    mode.rejected += rows.back().rejected;  // still unplaced at the end
    mode.mean_aggregate = aggregate / static_cast<double>(rows.size());
  }
  return mode;
}

}  // namespace

int main() {
  using namespace iaas;
  using iaas::bench::csv_dir;

  std::printf("=== Sharded steady-state throughput driver ===\n");

  Tier tier;
  if (std::getenv("IAAS_BENCH_FAST") != nullptr) {
    tier = {"fast", 64, 2, 40, 30};
  }
  if (const char* sizes = std::getenv("IAAS_BENCH_SIZES")) {
    if (std::strcmp(sizes, "throughput") == 0) {
      // The >= 1M cumulative-VM acceptance run: 2000 windows x 525
      // arrivals (deterministic schedule) = 1.05M requests.
      tier = {"throughput", 512, 8, 2000, 525};
    }
  }
  const std::uint64_t seed = 20170529;
  const SuiteOptions suite = lean_suite();

  std::printf("tier %s: %u servers / %u DCs, %zu windows, %zu mean "
              "arrivals/window (%zu cumulative)\n",
              tier.name, tier.servers, tier.datacenters, tier.windows,
              tier.arrivals, tier.windows * tier.arrivals);

  ModeResult unsharded =
      run_mode(tier, make_allocator(AlgorithmId::kNsga3Tabu, suite), seed);

  ShardedAllocatorOptions sharded_options;
  sharded_options.shard_count = 0;  // one shard per datacenter
  sharded_options.suite = suite;
  ModeResult sharded = run_mode(
      tier, std::make_unique<ShardedAllocator>(sharded_options), seed);

  const double speedup =
      sharded.windows_per_sec / std::max(unsharded.windows_per_sec, 1e-9);
  // Rebalance tolerance: the sharded search optimises each slice locally
  // and recovers boundary losers greedily, so its front may trail the
  // global search by a bounded margin.
  const double front_tolerance = 0.15;
  const double quality_ratio =
      sharded.mean_aggregate / std::max(unsharded.mean_aggregate, 1e-9);

  TextTable table({"mode", "windows/s", "seconds", "arrivals", "admitted",
                   "deferred", "dropped", "rejected", "mean aggregate"});
  for (const ModeResult* mode : {&unsharded, &sharded}) {
    table.add_row({mode->algorithm, TextTable::num(mode->windows_per_sec, 2),
                   TextTable::num(mode->seconds, 2),
                   std::to_string(mode->cumulative_arrivals),
                   std::to_string(mode->admitted),
                   std::to_string(mode->deferred),
                   std::to_string(mode->dropped),
                   std::to_string(mode->rejected),
                   TextTable::num(mode->mean_aggregate, 2)});
  }
  table.print();
  std::printf("\nsharded speed-up: %.2fx   front-quality ratio: %.4f "
              "(tolerance %.2f)\n",
              speedup, quality_ratio, 1.0 + front_tolerance);
  std::printf("shards %zu  pre-rejections %zu  rebalance placements %zu  "
              "migrations %zu  max shard VMs %zu\n",
              sharded.shard_totals.shard_count,
              sharded.shard_totals.pre_rejections,
              sharded.shard_totals.rebalance_placements,
              sharded.shard_totals.migrations,
              sharded.shard_totals.max_shard_vms);
  // The nightly job diffs these digests between telemetry-ON and
  // telemetry-OFF builds (and the sharded one across thread counts).
  std::printf("fingerprint unsharded %016llx sharded %016llx\n",
              static_cast<unsigned long long>(unsharded.fingerprint),
              static_cast<unsigned long long>(sharded.fingerprint));

  const unsigned hardware = std::thread::hardware_concurrency();
  const std::string json_path = csv_dir() + "/BENCH_sharded_throughput.json";
  if (std::FILE* json = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"sharded_throughput\",\n"
                 "  \"tier\": \"%s\",\n"
                 "  \"servers\": %u,\n"
                 "  \"datacenters\": %u,\n"
                 "  \"windows\": %zu,\n"
                 "  \"hardware_threads\": %u,\n"
                 "  \"speedup\": %.4f,\n"
                 "  \"front_quality_ratio\": %.6f,\n"
                 "  \"front_quality_tolerance\": %.2f,\n"
                 "  \"modes\": [\n",
                 tier.name, tier.servers, tier.datacenters, tier.windows,
                 hardware, speedup, quality_ratio, front_tolerance);
    const ModeResult* modes[] = {&unsharded, &sharded};
    for (std::size_t i = 0; i < 2; ++i) {
      const ModeResult& mode = *modes[i];
      std::fprintf(
          json,
          "    {\"algorithm\": \"%s\", \"windows_per_sec\": %.4f, "
          "\"seconds\": %.4f, \"cumulative_arrivals\": %zu, "
          "\"admitted\": %zu, \"deferred\": %zu, \"dropped\": %zu, "
          "\"rejected\": %zu, \"mean_aggregate\": %.6f, "
          "\"fingerprint\": \"%016llx\", \"shard_count\": %zu, "
          "\"pre_rejections\": %zu, \"rebalance_placements\": %zu, "
          "\"migrations\": %zu}%s\n",
          mode.algorithm.c_str(), mode.windows_per_sec, mode.seconds,
          mode.cumulative_arrivals, mode.admitted, mode.deferred,
          mode.dropped, mode.rejected, mode.mean_aggregate,
          static_cast<unsigned long long>(mode.fingerprint),
          mode.shard_totals.shard_count, mode.shard_totals.pre_rejections,
          mode.shard_totals.rebalance_placements,
          mode.shard_totals.migrations, i + 1 < 2 ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("\nWrote %s\n", json_path.c_str());
  }

  // Front-quality gate: unconditional — a sharded run that loses more
  // than the rebalance tolerance is a correctness regression of the
  // rebalance pass, not a perf artefact of the host.
  if (quality_ratio > 1.0 + front_tolerance) {
    std::fprintf(stderr,
                 "FAIL: sharded front quality ratio %.4f exceeds the "
                 "1 + %.2f rebalance tolerance\n",
                 quality_ratio, front_tolerance);
    return 1;
  }

  // Throughput gate (nightly): only meaningful with real parallel
  // headroom — report-and-skip below 8 hardware threads.
  if (const char* floor_env = std::getenv("IAAS_BENCH_MIN_SHARD_SPEEDUP")) {
    const double floor = std::strtod(floor_env, nullptr);
    if (hardware < 8) {
      std::printf("shard speedup gate skipped: %u hardware threads < 8 "
                  "(speedup %.2f not meaningful here)\n",
                  hardware, speedup);
    } else if (speedup < floor) {
      std::fprintf(stderr,
                   "FAIL: sharded speedup %.2f is below the %.2f floor\n",
                   speedup, floor);
      return 1;
    } else {
      std::printf("shard speedup gate passed: %.2f >= %.2f\n", speedup,
                  floor);
    }
  }
  return 0;
}
