// Throughput driver for the sharded steady-state allocator (DESIGN.md
// §12): runs the same admission-controlled, warm-started simulation
// horizon twice — once with the plain NSGA-III+Tabu allocator, once with
// the ShardedAllocator — and reports windows/sec, cumulative VM
// arrivals, front quality and the rebalance telemetry, emitting a
// machine-readable BENCH_sharded_throughput.json.
//
// Tiers (IAAS_BENCH_SIZES selects; IAAS_BENCH_FAST shrinks):
//   fast        64 servers,  40 windows x  30 arrivals   (smoke)
//   default    256 servers, 200 windows x 120 arrivals   (CI nightly)
//   throughput 512 servers, 2000 windows x 525 arrivals  (>= 1M VMs)
//
// Gates (nightly):
//   IAAS_BENCH_MIN_SHARD_SPEEDUP   floor on sharded/unsharded windows
//                                  per second; skipped below 8 hardware
//                                  threads (report, don't fail).
//   front quality                  sharded mean aggregate must stay
//                                  within the rebalance tolerance of the
//                                  unsharded run — hard-fails otherwise
//                                  on any hardware.
//
// The sharded fingerprint is printed so the nightly job can diff a
// telemetry-ON build against a telemetry-OFF build: the digest excludes
// wall clocks and counter columns, so the two must match bit-for-bit.
//
// Each mode also streams its full window trace incrementally through
// the per-window sink (io/trace_stream + io/trace_binary): the horizon
// is never buffered as a Json tree, and the trace-IO gates below verify
// the peak emitter buffer stays O(one window), the binary file is >= 5x
// smaller than the pretty JSON, and the binary trace reloads to the
// exact mode fingerprint.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "algo/registry.h"
#include "algo/sharded_allocator.h"
#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "common/telemetry.h"
#include "io/emit.h"
#include "io/trace_binary.h"
#include "io/trace_stream.h"
#include "sim/simulator.h"
#include "workload/scenario_config.h"

namespace {

struct Tier {
  const char* name = "default";
  std::uint32_t servers = 256;
  std::uint32_t datacenters = 8;
  std::size_t windows = 200;
  std::size_t arrivals = 120;  // mean per window (schedule alternates)
};

struct ModeResult {
  std::string algorithm;
  double seconds = 0.0;
  double windows_per_sec = 0.0;
  std::size_t cumulative_arrivals = 0;
  std::size_t admitted = 0;
  std::size_t deferred = 0;
  std::size_t dropped = 0;
  std::size_t rejected = 0;  // permanent + terminal-window rejections
  double mean_aggregate = 0.0;
  std::uint64_t fingerprint = 0;
  iaas::ShardRunStats shard_totals;  // zero for the unsharded mode
  // Streaming trace-IO stats (per-window sink -> JSON + binary files).
  std::size_t trace_json_bytes = 0;
  std::size_t trace_binary_bytes = 0;
  std::size_t trace_peak_buffer = 0;  // JSON writer high-water mark
  std::string trace_binary_path;
};

iaas::SimConfig make_sim_config(const Tier& tier) {
  iaas::SimConfig sim;
  sim.windows = tier.windows;
  // Deterministic bursty schedule around the mean: the heavy window
  // overflows the admission budget, the light one drains the queue, so
  // the FIFO admission path is exercised every other window while the
  // cumulative arrival count stays exact (windows * arrivals).
  sim.arrival_schedule = {tier.arrivals + tier.arrivals / 2,
                          tier.arrivals - tier.arrivals / 2};
  sim.max_admissions_per_window = tier.arrivals + tier.arrivals / 4;
  sim.admission_queue_limit = tier.arrivals * 8;
  sim.departure_probability = 0.45;  // high churn keeps the horizon steady
  sim.retry.max_attempts = 2;
  sim.retry.backoff_base_windows = 1;
  sim.warm_start_front = true;  // per-shard persistence across windows
  sim.scenario = iaas::ScenarioConfig::paper_scale(tier.servers,
                                                   tier.datacenters);
  sim.scenario.vms = 0;  // the simulator generates arrivals itself
  return sim;
}

iaas::SuiteOptions lean_suite() {
  iaas::SuiteOptions suite;  // Table III defaults...
  // ...trimmed to steady-state weight: the warm start carries the
  // incumbent, so a short, cheap search per window is the whole point of
  // the throughput driver.
  suite.ea.nsga.population_size = 24;
  suite.ea.nsga.max_evaluations = 960;
  suite.ea.nsga.reference_divisions = 4;
  suite.ea.nsga.threads = 0;  // process-shared pool (fair vs sharded)
  return suite;
}

ModeResult run_mode(const Tier& tier, std::unique_ptr<iaas::Allocator> alloc,
                    std::uint64_t seed, const std::string& trace_base) {
  ModeResult mode;
  mode.algorithm = alloc->name();
  iaas::CloudSimulator sim(make_sim_config(tier), std::move(alloc));
  // Stream the trace while the horizon runs: each completed window is
  // emitted and flushed immediately, so trace memory stays O(one
  // window) no matter how long the run is.
  iaas::SimTraceWriter json_writer(trace_base + ".json");
  iaas::BinaryTraceWriter binary_writer(trace_base + ".trc");
  sim.set_window_sink([&](const iaas::WindowMetrics& row) {
    json_writer.append(row);
    binary_writer.append(row);
  });
  iaas::Stopwatch timer;
  const std::vector<iaas::WindowMetrics> rows = sim.run(seed);
  json_writer.finish();
  binary_writer.finish();
  mode.seconds = timer.elapsed_seconds();
  mode.trace_json_bytes = json_writer.bytes_written();
  mode.trace_binary_bytes = binary_writer.bytes_written();
  mode.trace_peak_buffer = json_writer.peak_buffer_bytes();
  mode.trace_binary_path = trace_base + ".trc";
  mode.windows_per_sec =
      static_cast<double>(rows.size()) / std::max(mode.seconds, 1e-9);
  mode.fingerprint = iaas::deterministic_fingerprint(rows);
  double aggregate = 0.0;
  for (const iaas::WindowMetrics& row : rows) {
    mode.cumulative_arrivals += row.arrived;
    mode.admitted += row.admitted;
    mode.deferred += row.admission_deferred;
    mode.dropped += row.admission_dropped;
    mode.rejected += row.permanently_rejected;
    aggregate += row.objectives.aggregate();
    mode.shard_totals.shard_count =
        std::max(mode.shard_totals.shard_count, row.shard.shard_count);
    mode.shard_totals.pre_rejections += row.shard.pre_rejections;
    mode.shard_totals.rebalance_placements += row.shard.rebalance_placements;
    mode.shard_totals.migrations += row.shard.migrations;
    mode.shard_totals.max_shard_vms =
        std::max(mode.shard_totals.max_shard_vms, row.shard.max_shard_vms);
  }
  if (!rows.empty()) {
    mode.rejected += rows.back().rejected;  // still unplaced at the end
    mode.mean_aggregate = aggregate / static_cast<double>(rows.size());
  }
  return mode;
}

}  // namespace

int main() {
  using namespace iaas;
  using iaas::bench::csv_dir;

  std::printf("=== Sharded steady-state throughput driver ===\n");

  Tier tier;
  if (std::getenv("IAAS_BENCH_FAST") != nullptr) {
    tier = {"fast", 64, 2, 40, 30};
  }
  if (const char* sizes = std::getenv("IAAS_BENCH_SIZES")) {
    if (std::strcmp(sizes, "throughput") == 0) {
      // The >= 1M cumulative-VM acceptance run: 2000 windows x 525
      // arrivals (deterministic schedule) = 1.05M requests.
      tier = {"throughput", 512, 8, 2000, 525};
    }
  }
  const std::uint64_t seed = 20170529;
  const SuiteOptions suite = lean_suite();

  std::printf("tier %s: %u servers / %u DCs, %zu windows, %zu mean "
              "arrivals/window (%zu cumulative)\n",
              tier.name, tier.servers, tier.datacenters, tier.windows,
              tier.arrivals, tier.windows * tier.arrivals);

  ModeResult unsharded =
      run_mode(tier, make_allocator(AlgorithmId::kNsga3Tabu, suite), seed,
               csv_dir() + "/trace_sharded_unsharded");

  ShardedAllocatorOptions sharded_options;
  sharded_options.shard_count = 0;  // one shard per datacenter
  sharded_options.suite = suite;
  ModeResult sharded =
      run_mode(tier, std::make_unique<ShardedAllocator>(sharded_options),
               seed, csv_dir() + "/trace_sharded_sharded");

  const double speedup =
      sharded.windows_per_sec / std::max(unsharded.windows_per_sec, 1e-9);
  // Rebalance tolerance: the sharded search optimises each slice locally
  // and recovers boundary losers greedily, so its front may trail the
  // global search by a bounded margin.
  const double front_tolerance = 0.15;
  const double quality_ratio =
      sharded.mean_aggregate / std::max(unsharded.mean_aggregate, 1e-9);

  TextTable table({"mode", "windows/s", "seconds", "arrivals", "admitted",
                   "deferred", "dropped", "rejected", "mean aggregate"});
  for (const ModeResult* mode : {&unsharded, &sharded}) {
    table.add_row({mode->algorithm, TextTable::num(mode->windows_per_sec, 2),
                   TextTable::num(mode->seconds, 2),
                   std::to_string(mode->cumulative_arrivals),
                   std::to_string(mode->admitted),
                   std::to_string(mode->deferred),
                   std::to_string(mode->dropped),
                   std::to_string(mode->rejected),
                   TextTable::num(mode->mean_aggregate, 2)});
  }
  table.print();
  std::printf("\nsharded speed-up: %.2fx   front-quality ratio: %.4f "
              "(tolerance %.2f)\n",
              speedup, quality_ratio, 1.0 + front_tolerance);
  std::printf("shards %zu  pre-rejections %zu  rebalance placements %zu  "
              "migrations %zu  max shard VMs %zu\n",
              sharded.shard_totals.shard_count,
              sharded.shard_totals.pre_rejections,
              sharded.shard_totals.rebalance_placements,
              sharded.shard_totals.migrations,
              sharded.shard_totals.max_shard_vms);
  // The nightly job diffs these digests between telemetry-ON and
  // telemetry-OFF builds (and the sharded one across thread counts).
  std::printf("fingerprint unsharded %016llx sharded %016llx\n",
              static_cast<unsigned long long>(unsharded.fingerprint),
              static_cast<unsigned long long>(sharded.fingerprint));

  // --- trace-IO gates (unconditional: correctness, not perf) ----------
  bool trace_ok = true;
  for (const ModeResult* mode : {&unsharded, &sharded}) {
    const double per_window = static_cast<double>(mode->trace_json_bytes) /
                              static_cast<double>(tier.windows);
    std::printf("trace [%s]: json %zu B, binary %zu B (%.2fx), peak "
                "buffer %zu B (%.0f B/window)\n",
                mode->algorithm.c_str(), mode->trace_json_bytes,
                mode->trace_binary_bytes,
                static_cast<double>(mode->trace_json_bytes) /
                    std::max<double>(mode->trace_binary_bytes, 1.0),
                mode->trace_peak_buffer, per_window);
    if (mode->trace_binary_bytes * 5 > mode->trace_json_bytes) {
      std::fprintf(stderr,
                   "FAIL: [%s] binary trace is not >= 5x smaller than "
                   "the pretty JSON\n",
                   mode->algorithm.c_str());
      trace_ok = false;
    }
    if (tier.windows >= 8 && static_cast<double>(mode->trace_peak_buffer) >
                                 4.0 * per_window + 4096.0) {
      std::fprintf(stderr,
                   "FAIL: [%s] streaming peak buffer %zu B is not O(one "
                   "window)\n",
                   mode->algorithm.c_str(), mode->trace_peak_buffer);
      trace_ok = false;
    }
    const std::uint64_t reloaded = deterministic_fingerprint(
        read_binary_sim_trace(mode->trace_binary_path));
    if (reloaded != mode->fingerprint) {
      std::fprintf(stderr,
                   "FAIL: [%s] binary trace reload changed the "
                   "fingerprint\n",
                   mode->algorithm.c_str());
      trace_ok = false;
    }
  }
  // The writers flushed their counters to the global registry at
  // finish(); 4 writers (json + binary per mode) saw every window.
  {
    const telemetry::CounterBlock counters =
        telemetry::Registry::global().counters();
    const std::uint64_t streamed =
        counters[telemetry::Counter::kTraceWindowsStreamed];
    if (streamed < 4 * tier.windows) {
      std::fprintf(stderr,
                   "FAIL: trace_windows_streamed counter %llu < %zu\n",
                   static_cast<unsigned long long>(streamed),
                   4 * tier.windows);
      trace_ok = false;
    }
  }

  const unsigned hardware = std::thread::hardware_concurrency();
  const std::string json_path = csv_dir() + "/BENCH_sharded_throughput.json";
  {
    std::string out;
    JsonEmitter e(out, 2);
    e.begin_object();
    e.key("bench");
    e.value("sharded_throughput");
    e.key("tier");
    e.value(tier.name);
    e.key("servers");
    e.value(static_cast<std::uint64_t>(tier.servers));
    e.key("datacenters");
    e.value(static_cast<std::uint64_t>(tier.datacenters));
    e.key("windows");
    e.value(static_cast<std::uint64_t>(tier.windows));
    e.key("hardware_threads");
    e.value(static_cast<std::uint64_t>(hardware));
    e.key("speedup");
    e.value(speedup);
    e.key("front_quality_ratio");
    e.value(quality_ratio);
    e.key("front_quality_tolerance");
    e.value(front_tolerance);
    e.key("modes");
    e.begin_array();
    for (const ModeResult* mode : {&unsharded, &sharded}) {
      char digest[17];
      std::snprintf(digest, sizeof digest, "%016llx",
                    static_cast<unsigned long long>(mode->fingerprint));
      e.begin_object();
      e.key("algorithm");
      e.value(mode->algorithm);
      e.key("windows_per_sec");
      e.value(mode->windows_per_sec);
      e.key("seconds");
      e.value(mode->seconds);
      e.key("cumulative_arrivals");
      e.value(static_cast<std::uint64_t>(mode->cumulative_arrivals));
      e.key("admitted");
      e.value(static_cast<std::uint64_t>(mode->admitted));
      e.key("deferred");
      e.value(static_cast<std::uint64_t>(mode->deferred));
      e.key("dropped");
      e.value(static_cast<std::uint64_t>(mode->dropped));
      e.key("rejected");
      e.value(static_cast<std::uint64_t>(mode->rejected));
      e.key("mean_aggregate");
      e.value(mode->mean_aggregate);
      e.key("fingerprint");
      e.value(digest);
      e.key("shard_count");
      e.value(static_cast<std::uint64_t>(mode->shard_totals.shard_count));
      e.key("pre_rejections");
      e.value(
          static_cast<std::uint64_t>(mode->shard_totals.pre_rejections));
      e.key("rebalance_placements");
      e.value(static_cast<std::uint64_t>(
          mode->shard_totals.rebalance_placements));
      e.key("migrations");
      e.value(static_cast<std::uint64_t>(mode->shard_totals.migrations));
      e.key("trace_json_bytes");
      e.value(static_cast<std::uint64_t>(mode->trace_json_bytes));
      e.key("trace_binary_bytes");
      e.value(static_cast<std::uint64_t>(mode->trace_binary_bytes));
      e.key("trace_peak_buffer_bytes");
      e.value(static_cast<std::uint64_t>(mode->trace_peak_buffer));
      e.end_object();
    }
    e.end_array();
    e.end_object();
    out += '\n';
    JsonFileSink sink(json_path);
    sink.write(out);
    sink.close();
    std::printf("\nWrote %s\n", json_path.c_str());
  }

  if (!trace_ok) {
    return 1;
  }

  // Front-quality gate: unconditional — a sharded run that loses more
  // than the rebalance tolerance is a correctness regression of the
  // rebalance pass, not a perf artefact of the host.
  if (quality_ratio > 1.0 + front_tolerance) {
    std::fprintf(stderr,
                 "FAIL: sharded front quality ratio %.4f exceeds the "
                 "1 + %.2f rebalance tolerance\n",
                 quality_ratio, front_tolerance);
    return 1;
  }

  // Throughput gate (nightly): only meaningful with real parallel
  // headroom — report-and-skip below 8 hardware threads.
  if (const char* floor_env = std::getenv("IAAS_BENCH_MIN_SHARD_SPEEDUP")) {
    const double floor = std::strtod(floor_env, nullptr);
    if (hardware < 8) {
      std::printf("shard speedup gate skipped: %u hardware threads < 8 "
                  "(speedup %.2f not meaningful here)\n",
                  hardware, speedup);
    } else if (speedup < floor) {
      std::fprintf(stderr,
                   "FAIL: sharded speedup %.2f is below the %.2f floor\n",
                   speedup, floor);
      return 1;
    } else {
      std::printf("shard speedup gate passed: %.2f >= %.2f\n", speedup,
                  floor);
    }
  }
  return 0;
}
