// Ablation: the four constraint-handling methods the paper enumerates
// (§III) — exclusion, repair, penalty, plus the do-nothing baseline —
// under identical NSGA-III settings.
//
// Paper's account: exclusion (method 1) "excludes too many individuals";
// penalties "lead to serious increases in response times" and sometimes
// no solution at all; repair via tabu search (method 2) was adopted.
#include <cstdio>

#include "algo/allocator.h"
#include "algo/ideal_point.h"
#include "bench/bench_util.h"
#include "common/csv.h"
#include "common/stats.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "ea/nsga3.h"
#include "ea/problem.h"
#include "tabu/repair.h"
#include "workload/generator.h"

namespace {

using namespace iaas;

struct ModeRow {
  std::string name;
  ConstraintMode mode;
};

}  // namespace

int main() {
  using iaas::bench::apply_env;
  using iaas::bench::csv_dir;

  std::printf("=== Ablation: constraint-handling methods (paper §III) ===\n");
  iaas::bench::SweepConfig env_probe;
  env_probe.runs = 3;
  env_probe = apply_env(env_probe);
  const std::size_t runs = env_probe.runs;

  ScenarioConfig scenario = ScenarioConfig::paper_scale(32);
  scenario.constrained_fraction = 0.4;
  const ScenarioGenerator generator(scenario);

  const std::vector<ModeRow> modes = {
      {"ignore (unmodified)", ConstraintMode::kIgnore},
      {"exclude (method 1)", ConstraintMode::kExclude},
      {"penalty (rejected attempt)", ConstraintMode::kPenalty},
      {"repair via tabu (method 2)", ConstraintMode::kRepair},
  };

  TextTable table({"constraint handling", "mean time (s)",
                   "raw violations", "rejection rate", "cost/accepted"});
  CsvWriter csv(csv_dir() + "/ablation_constraint_modes.csv",
                {"mode", "seconds", "violations", "rejection_rate",
                 "cost_per_accepted"});

  for (const ModeRow& row : modes) {
    RunningStats time_s, viols, rej, cost;
    for (std::size_t run = 0; run < runs; ++run) {
      const Instance inst = generator.generate(100 + run);
      AllocationProblem problem(inst);
      NsgaConfig cfg;  // Table III defaults
      cfg.threads = 0;
      cfg.constraint_mode = row.mode;
      TabuRepair repair(inst);
      RepairFn repair_fn;
      if (row.mode == ConstraintMode::kRepair) {
        repair_fn = [&repair](std::vector<std::int32_t>& genes, Rng& rng) {
          repair.repair(genes, rng);
        };
      }
      Nsga3 engine(problem, cfg, repair_fn);
      Stopwatch timer;
      const auto ea_result = engine.run(run + 1);
      const double seconds = timer.elapsed_seconds();
      const std::size_t pick = select_ideal_point(ea_result.front);
      const AllocationResult r = Allocator::finalize(
          inst, row.name, Placement(ea_result.front[pick].genes), seconds, 0,
          {});
      time_s.add(seconds);
      viols.add(static_cast<double>(r.raw_violations.total()));
      rej.add(r.rejection_rate());
      const std::size_t accepted = r.vm_count - r.rejected;
      cost.add(accepted == 0 ? 0.0
                             : r.objectives.usage_cost /
                                   static_cast<double>(accepted));
    }
    table.add_row({row.name, TextTable::num(time_s.mean(), 3),
                   TextTable::num(viols.mean(), 2),
                   TextTable::num(rej.mean(), 4),
                   TextTable::num(cost.mean(), 3)});
    csv.add_row({row.name, TextTable::num(time_s.mean(), 6),
                 TextTable::num(viols.mean(), 4),
                 TextTable::num(rej.mean(), 6),
                 TextTable::num(cost.mean(), 6)});
  }
  std::printf("\nNSGA-III at 32 servers / 64 VMs, %zu runs each:\n", runs);
  table.print();
  std::printf(
      "\nExpected shape (paper): repair dominates — zero violations with"
      "\nthe lowest rejection; ignore violates; exclude and penalty trail"
      "\non acceptance or cost.\n");
  return 0;
}
