#include "bench/bench_util.h"

#include <cstdio>
#include <cstdlib>

#include "common/csv.h"
#include "common/stats.h"
#include "common/table.h"
#include "workload/generator.h"

namespace iaas::bench {

SuiteOptions paper_suite() {
  SuiteOptions suite;  // NsgaConfig already carries Table III defaults
  suite.ea.nsga.threads = 0;  // shared pool: parallel fitness evaluation
  suite.cp.time_limit_seconds = 10.0;
  suite.cp.max_backtracks = 200000;
  return suite;
}

SweepConfig apply_env(SweepConfig config) {
  if (const char* runs = std::getenv("IAAS_BENCH_RUNS")) {
    config.runs = static_cast<std::size_t>(std::strtoul(runs, nullptr, 10));
    if (config.runs == 0) {
      config.runs = 1;
    }
  }
  if (std::getenv("IAAS_BENCH_FAST") != nullptr) {
    if (config.server_sizes.size() > 2) {
      config.server_sizes.resize(2);
    }
    config.runs = 1;
    config.suite.ea.nsga.max_evaluations =
        std::min<std::size_t>(config.suite.ea.nsga.max_evaluations, 2000);
    config.per_run_cap_seconds =
        std::min(config.per_run_cap_seconds, 5.0);
  }
  if (const char* sizes = std::getenv("IAAS_BENCH_SIZES")) {
    std::vector<std::uint32_t> parsed;
    const char* p = sizes;
    while (*p != '\0') {
      char* end = nullptr;
      const unsigned long v = std::strtoul(p, &end, 10);
      if (end == p) {
        break;  // no digits left; ignore the rest
      }
      if (v > 0) {
        parsed.push_back(static_cast<std::uint32_t>(v));
      }
      p = *end == ',' ? end + 1 : end;
    }
    if (!parsed.empty()) {
      config.server_sizes = std::move(parsed);
    }
  }
  return config;
}

std::string csv_dir() {
  if (const char* dir = std::getenv("IAAS_BENCH_CSV_DIR")) {
    return dir;
  }
  return ".";
}

SweepResult run_sweep(const SweepConfig& config) {
  SweepResult result;
  result.config = config;
  const std::vector<AlgorithmId>& algorithms =
      config.algorithms.empty() ? all_algorithms() : config.algorithms;

  for (AlgorithmId id : algorithms) {
    bool capped = false;
    for (std::uint32_t servers : config.server_sizes) {
      CellStats cell;
      if (capped) {
        cell.capped = true;
        result.cells[id][servers] = cell;
        continue;
      }
      RunningStats time_stats;
      RunningStats rejection_stats;
      RunningStats violation_stats;
      RunningStats usage_stats;
      RunningStats downtime_stats;
      RunningStats migration_stats;
      RunningStats per_vm_stats;

      ScenarioConfig scenario = ScenarioConfig::paper_scale(servers);
      scenario.constrained_fraction = config.constrained_fraction;
      const ScenarioGenerator generator(scenario);

      for (std::size_t run = 0; run < config.runs; ++run) {
        const std::uint64_t seed =
            config.base_seed + run * 7919 + servers;
        const Instance instance = generator.generate(seed);
        auto allocator = make_allocator(id, config.suite);
        const AllocationResult r = allocator->allocate(instance, seed ^ 0x5eedULL);
        time_stats.add(r.wall_seconds);
        rejection_stats.add(r.rejection_rate());
        violation_stats.add(static_cast<double>(r.raw_violations.total()));
        usage_stats.add(r.objectives.usage_cost);
        downtime_stats.add(r.objectives.downtime_cost);
        migration_stats.add(r.objectives.migration_cost);
        const std::size_t accepted = r.vm_count - r.rejected;
        per_vm_stats.add(accepted == 0 ? 0.0
                                       : r.objectives.usage_cost /
                                             static_cast<double>(accepted));
      }
      cell.mean_seconds = time_stats.mean();
      cell.stddev_seconds = time_stats.stddev();
      cell.mean_rejection_rate = rejection_stats.mean();
      cell.mean_violations = violation_stats.mean();
      cell.mean_usage_cost = usage_stats.mean();
      cell.mean_downtime_cost = downtime_stats.mean();
      cell.mean_migration_cost = migration_stats.mean();
      cell.mean_cost_per_accepted = per_vm_stats.mean();
      cell.runs = config.runs;
      result.cells[id][servers] = cell;

      if (cell.mean_seconds > config.per_run_cap_seconds) {
        capped = true;  // skip larger sizes for this algorithm
      }
      std::fprintf(stderr, "  [%s @ %u servers] %.3fs mean\n",
                   algorithm_name(id).c_str(), servers, cell.mean_seconds);
    }
  }
  return result;
}

void print_metric_table(const SweepResult& result, const std::string& title,
                        double CellStats::*metric, int precision,
                        const std::string& csv_path) {
  std::printf("\n%s\n", title.c_str());
  std::printf("(mean over %zu runs; seeds from %llu)\n", result.config.runs,
              static_cast<unsigned long long>(result.config.base_seed));

  std::vector<std::string> header = {"algorithm"};
  for (std::uint32_t s : result.config.server_sizes) {
    header.push_back(std::to_string(s) + " srv / " + std::to_string(2 * s) +
                     " VMs");
  }
  TextTable table(header);
  CsvWriter csv(csv_path, {"algorithm", "servers", "vms", "value"});

  const std::vector<AlgorithmId>& algorithms =
      result.config.algorithms.empty() ? all_algorithms()
                                       : result.config.algorithms;
  for (AlgorithmId id : algorithms) {
    std::vector<std::string> row = {algorithm_name(id)};
    for (std::uint32_t s : result.config.server_sizes) {
      const CellStats& cell = result.cells.at(id).at(s);
      if (cell.capped) {
        row.push_back("> " + TextTable::num(
                                 result.config.per_run_cap_seconds, 0) +
                      "s cap");
      } else {
        const double v = cell.*metric;
        row.push_back(TextTable::num(v, precision));
        csv.add_row({algorithm_name(id), std::to_string(s),
                     std::to_string(2 * s), TextTable::num(v, 6)});
      }
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("CSV: %s\n", csv_path.c_str());
}

void print_nsga_settings(const NsgaConfig& config) {
  TextTable table({"parameter", "value"});
  table.add_row({"populationSize", std::to_string(config.population_size)});
  table.add_row({"Number of evaluations",
                 std::to_string(config.max_evaluations)});
  table.add_row({"sbx.rate", TextTable::num(config.sbx_rate, 2)});
  table.add_row({"sbx.distributionIndex",
                 TextTable::num(config.sbx_distribution_index, 2)});
  table.add_row({"pm.rate", TextTable::num(config.pm_rate, 2)});
  table.add_row({"pm.distributionIndex",
                 TextTable::num(config.pm_distribution_index, 2)});
  std::printf("NSGA-II/III settings (paper Table III):\n");
  table.print();
}

}  // namespace iaas::bench
