// Multi-cloud brokering: what an N-provider market buys (and costs)
// versus a single consolidated cloud, under two stress families the
// dynamic-market literature studies — price shocks and whole-provider
// outages (extension figure; the paper models one provider).
//
// Three allocation modes run the same workload over the same horizon:
//   single-cloud        one merged provider holding every server
//                       (the paper's §III setting, run through the
//                       same multi-cloud pipeline for a fair metric);
//   brokered/cheapest   three specialised providers, greedy
//                       cheapest-feasible routing, first-fit backends;
//   brokered/market     same market, market-aware mode (in-window
//                       reassignment + reshopping) with the paper's
//                       NSGA-III+tabu backend at a reduced budget.
//
// Part 3 is the warm-start ablation: the market-aware EA config with
// SimConfig-style front persistence ON vs OFF — same seeds, same
// market — comparing the Eq. 22 bill and total cost.
//
// Emits BENCH_multicloud.json (acceptance rate + the Eq. 22/23/26 cost
// split per scenario x mode) and prints one deterministic_fingerprint
// per run — CI diffs them between telemetry ON and OFF builds, and this
// binary itself re-runs each scenario to check bit-identical replay.
//
// Environment knobs: IAAS_BENCH_FAST (shrink budgets), IAAS_SIM_WINDOWS
// (horizon override), IAAS_BENCH_SIZES (servers per provider),
// IAAS_BENCH_CSV_DIR.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "broker/multicloud_sim.h"
#include "common/csv.h"
#include "io/emit.h"
#include "io/trace_binary.h"
#include "io/trace_stream.h"

namespace {

using namespace iaas;

bool fast_mode() { return std::getenv("IAAS_BENCH_FAST") != nullptr; }

std::size_t sim_windows(std::size_t fallback) {
  if (const char* env = std::getenv("IAAS_SIM_WINDOWS")) {
    const long parsed = std::atol(env);
    if (parsed > 0) {
      return static_cast<std::size_t>(parsed);
    }
  }
  return fallback;
}

std::uint32_t servers_per_provider() {
  if (const char* env = std::getenv("IAAS_BENCH_SIZES")) {
    const long parsed = std::atol(env);  // first value of the list
    if (parsed > 0) {
      return static_cast<std::uint32_t>(parsed);
    }
  }
  return fast_mode() ? 16 : 32;
}

// The three-provider market: a premium gold on-demand cloud, a
// discounted silver reserved cloud, and a volatile bronze spot cloud.
CloudMarketConfig three_provider_market(std::uint32_t servers,
                                        std::size_t windows) {
  CloudMarketConfig market;
  ProviderConfig gold;
  gold.id = "gold-od";
  gold.scenario = ScenarioConfig::paper_scale(servers, 1);
  gold.pricing.billing = BillingModel::kOnDemand;
  gold.pricing.on_demand_multiplier = 1.0;
  gold.pricing.egress_migration_multiplier = 2.0;
  gold.availability = AvailabilityClass::kGold;

  ProviderConfig silver;
  silver.id = "silver-rsv";
  silver.scenario = ScenarioConfig::paper_scale(servers, 1);
  silver.pricing.billing = BillingModel::kReserved;
  silver.pricing.reserved_multiplier = 0.7;
  silver.pricing.egress_migration_multiplier = 2.5;
  silver.availability = AvailabilityClass::kGold;  // scripted faults only

  ProviderConfig bronze;
  bronze.id = "bronze-spot";
  bronze.scenario = ScenarioConfig::paper_scale(servers, 1);
  bronze.pricing.billing = BillingModel::kSpot;
  bronze.pricing.on_demand_multiplier = 0.9;
  bronze.pricing.spot =
      diurnal_spot_series(windows, /*mean=*/0.6, /*amplitude=*/0.3,
                          /*period=*/8, /*jitter=*/0.05, /*seed=*/7);
  bronze.pricing.egress_migration_multiplier = 3.0;
  bronze.availability = AvailabilityClass::kGold;

  market.providers = {gold, silver, bronze};
  return market;
}

CloudMarketConfig merged_single_cloud(std::uint32_t servers) {
  CloudMarketConfig market;
  ProviderConfig mono;
  mono.id = "single";
  mono.scenario = ScenarioConfig::paper_scale(servers, 2);
  mono.pricing.billing = BillingModel::kOnDemand;
  mono.pricing.on_demand_multiplier = 1.0;
  market.providers = {mono};
  return market;
}

struct RunStats {
  std::size_t arrived = 0;
  std::size_t permanently_rejected = 0;
  std::size_t redirects = 0;
  std::size_t evicted = 0;
  std::size_t offline_provider_windows = 0;
  double usage_cost = 0.0;      // Eq. 22, price-scaled
  double downtime_cost = 0.0;   // Eq. 23
  double migration_cost = 0.0;  // Eq. 26, intra-cloud
  double cross_cloud_migration_cost = 0.0;
  std::uint64_t fingerprint = 0;

  [[nodiscard]] double acceptance_rate() const {
    return arrived == 0
               ? 1.0
               : 1.0 - static_cast<double>(permanently_rejected) /
                           static_cast<double>(arrived);
  }
  [[nodiscard]] double total_cost() const {
    return usage_cost + downtime_cost + migration_cost +
           cross_cloud_migration_cost;
  }
};

RunStats collect(const std::vector<WindowMetrics>& metrics) {
  RunStats s;
  for (const WindowMetrics& w : metrics) {
    s.arrived += w.arrived;
    s.permanently_rejected += w.permanently_rejected;
    s.redirects += w.redirects;
    s.evicted += w.evicted;
    s.offline_provider_windows += w.offline_providers;
    s.usage_cost += w.objectives.usage_cost;
    s.downtime_cost += w.objectives.downtime_cost;
    s.migration_cost += w.migration_cost;
    s.cross_cloud_migration_cost += w.cross_cloud_migration_cost;
  }
  s.fingerprint = deterministic_fingerprint(metrics);
  return s;
}

struct ModeResult {
  std::string scenario;
  std::string mode;
  RunStats stats;
  bool replay_identical = false;
  bool trace_roundtrip_ok = false;  // binary trace reloads bit-exact
};

// Mode names carry '/' (e.g. "brokered/market") — flatten for paths.
std::string path_token(const std::string& name) {
  std::string token = name;
  for (char& c : token) {
    if (c == '/') {
      c = '-';
    }
  }
  return token;
}

// Reduced-budget NSGA-III+tabu suite for the market-aware backends:
// per-window, per-provider solves need seconds, not the full Table III
// budget.
SuiteOptions reduced_ea_suite() {
  SuiteOptions suite;
  suite.ea.nsga.population_size = 20;
  suite.ea.nsga.max_evaluations = fast_mode() ? 200 : 600;
  suite.ea.nsga.reference_divisions = 6;
  suite.ea.nsga.threads = 1;
  return suite;
}

MultiCloudSimConfig base_config(std::size_t windows,
                                std::uint32_t servers) {
  MultiCloudSimConfig cfg;
  cfg.windows = windows;
  cfg.departure_probability = 0.08;
  // Deterministic periodic schedule so every mode sees the same demand.
  cfg.arrival_schedule = {24, 18, 12, 20, 16, 10, 22, 14};
  cfg.retry.max_attempts = 4;
  cfg.request_shape = ScenarioConfig::paper_scale(servers, 1);
  cfg.broker.max_redirects = 3;
  return cfg;
}

ModeResult run_mode(const std::string& scenario, const std::string& mode,
                    const MultiCloudSimConfig& cfg, std::uint64_t seed) {
  MultiCloudSimulator sim(cfg);
  // Stream the brokered trace to the compact binary format while the
  // horizon runs — each window is flushed as it completes.
  const std::string trace_path = bench::csv_dir() + "/trace_multicloud_" +
                                 scenario + "_" + path_token(mode) + ".trc";
  BinaryTraceWriter trace_writer(trace_path);
  sim.set_window_sink(
      [&](const WindowMetrics& row) { trace_writer.append(row); });
  const RunStats stats = collect(sim.run(seed));
  trace_writer.finish();
  MultiCloudSimulator replay(cfg);
  const RunStats again = collect(replay.run(seed));
  ModeResult result;
  result.scenario = scenario;
  result.mode = mode;
  result.stats = stats;
  result.replay_identical = stats.fingerprint == again.fingerprint;
  result.trace_roundtrip_ok =
      deterministic_fingerprint(read_binary_sim_trace(trace_path)) ==
      stats.fingerprint;
  std::printf(
      "%-14s %-18s accept=%5.3f usage=%9.1f downtime=%8.1f "
      "migration=%8.1f egress=%7.1f redirects=%3zu replay=%s\n",
      scenario.c_str(), mode.c_str(), stats.acceptance_rate(),
      stats.usage_cost, stats.downtime_cost, stats.migration_cost,
      stats.cross_cloud_migration_cost, stats.redirects,
      result.replay_identical ? "ok" : "DIVERGED");
  std::printf("deterministic_fingerprint=%016llx  # %s/%s\n",
              static_cast<unsigned long long>(stats.fingerprint),
              scenario.c_str(), mode.c_str());
  return result;
}

}  // namespace

int main() {
  std::printf("=== Multi-cloud brokering: market vs single cloud ===\n\n");
  const std::uint32_t servers = servers_per_provider();
  const std::size_t windows = sim_windows(fast_mode() ? 10 : 24);
  const std::uint64_t seed = 20170529;
  std::vector<ModeResult> results;

  // --- scenario 1: price shock ---------------------------------------
  // The discounted silver cloud triples its price mid-horizon; the
  // market-aware broker reshops off it, the single cloud just pays.
  {
    const std::string scenario = "price-shock";
    PriceShock shock;
    shock.window = windows / 3;
    shock.duration = windows / 3;
    shock.factor = 3.0;

    MultiCloudSimConfig single = base_config(windows, servers);
    single.market = merged_single_cloud(servers * 3);
    results.push_back(run_mode(scenario, "single-cloud", single, seed));

    MultiCloudSimConfig cheapest = base_config(windows, servers);
    cheapest.market = three_provider_market(servers, windows);
    cheapest.market.providers[1].pricing.shocks = {shock};
    cheapest.broker.mode = BrokerMode::kCheapestFeasible;
    results.push_back(
        run_mode(scenario, "brokered/cheapest", cheapest, seed));

    MultiCloudSimConfig aware = cheapest;
    aware.broker.mode = BrokerMode::kMarketAware;
    aware.broker.backend = AlgorithmId::kNsga3Tabu;
    aware.broker.suite = reduced_ea_suite();
    results.push_back(run_mode(scenario, "brokered/market", aware, seed));
  }

  // --- scenario 2: provider outage -----------------------------------
  // The gold cloud goes dark for 3 windows mid-horizon and the bronze
  // cloud is decommissioned near the end: every hosted VM re-enters
  // through the broker, bounded by the per-VM redirect budget.
  {
    const std::string scenario = "provider-outage";
    std::vector<ProviderOutageScript> outages;
    ProviderOutageScript dark;
    dark.window = windows / 3;
    dark.provider = 0;
    dark.duration = 3;
    outages.push_back(dark);
    ProviderOutageScript gone;
    gone.window = 2 * windows / 3;
    gone.provider = 2;
    gone.duration = 1;
    gone.decommission = true;
    outages.push_back(gone);

    MultiCloudSimConfig single = base_config(windows, servers);
    single.market = merged_single_cloud(servers * 3);
    results.push_back(run_mode(scenario, "single-cloud", single, seed));

    MultiCloudSimConfig cheapest = base_config(windows, servers);
    cheapest.market = three_provider_market(servers, windows);
    cheapest.market.outages = outages;
    cheapest.broker.mode = BrokerMode::kCheapestFeasible;
    results.push_back(
        run_mode(scenario, "brokered/cheapest", cheapest, seed));

    MultiCloudSimConfig aware = cheapest;
    aware.broker.mode = BrokerMode::kMarketAware;
    aware.broker.backend = AlgorithmId::kNsga3Tabu;
    aware.broker.suite = reduced_ea_suite();
    results.push_back(run_mode(scenario, "brokered/market", aware, seed));
  }

  // --- part 3: warm-start front persistence (satellite ablation) -----
  {
    const std::string scenario = "warm-start";
    MultiCloudSimConfig cold = base_config(windows, servers);
    cold.market = three_provider_market(servers, windows);
    cold.broker.mode = BrokerMode::kMarketAware;
    cold.broker.backend = AlgorithmId::kNsga3Tabu;
    cold.broker.suite = reduced_ea_suite();
    cold.warm_start_front = false;
    results.push_back(run_mode(scenario, "front-off", cold, seed));

    MultiCloudSimConfig warm = cold;
    warm.warm_start_front = true;
    results.push_back(run_mode(scenario, "front-on", warm, seed));
  }

  // --- machine-readable roll-up --------------------------------------
  const std::string json_path =
      bench::csv_dir() + "/BENCH_multicloud.json";
  {
    std::string out;
    JsonEmitter e(out, 2);
    e.begin_object();
    e.key("bench");
    e.value("multicloud");
    e.key("servers_per_provider");
    e.value(static_cast<std::uint64_t>(servers));
    e.key("window_count");
    e.value(static_cast<std::uint64_t>(windows));
    e.key("results");
    e.begin_array();
    for (const ModeResult& r : results) {
      char digest[17];
      std::snprintf(digest, sizeof digest, "%016llx",
                    static_cast<unsigned long long>(r.stats.fingerprint));
      e.begin_object();
      e.key("scenario");
      e.value(r.scenario);
      e.key("mode");
      e.value(r.mode);
      e.key("acceptance_rate");
      e.value(r.stats.acceptance_rate());
      e.key("usage_cost");
      e.value(r.stats.usage_cost);
      e.key("downtime_cost");
      e.value(r.stats.downtime_cost);
      e.key("migration_cost");
      e.value(r.stats.migration_cost);
      e.key("cross_cloud_migration_cost");
      e.value(r.stats.cross_cloud_migration_cost);
      e.key("redirects");
      e.value(static_cast<std::uint64_t>(r.stats.redirects));
      e.key("permanently_rejected");
      e.value(static_cast<std::uint64_t>(r.stats.permanently_rejected));
      e.key("fingerprint");
      e.value(digest);
      e.key("trace_roundtrip_ok");
      e.value(r.trace_roundtrip_ok);
      e.end_object();
    }
    e.end_array();
    e.end_object();
    out += '\n';
    JsonFileSink sink(json_path);
    sink.write(out);
    sink.close();
    std::printf("\nWrote %s\n", json_path.c_str());
  }

  // --- structural acceptance checks ----------------------------------
  bool ok = true;
  for (const ModeResult& r : results) {
    const double accept = r.stats.acceptance_rate();
    if (accept < 0.0 || accept > 1.0) {
      std::printf("FAIL: %s/%s acceptance rate %.3f out of range\n",
                  r.scenario.c_str(), r.mode.c_str(), accept);
      ok = false;
    }
    if (!r.replay_identical) {
      std::printf("FAIL: %s/%s replay diverged\n", r.scenario.c_str(),
                  r.mode.c_str());
      ok = false;
    }
    if (!r.trace_roundtrip_ok) {
      std::printf("FAIL: %s/%s binary trace round trip changed the "
                  "fingerprint\n",
                  r.scenario.c_str(), r.mode.c_str());
      ok = false;
    }
    if (r.scenario == "provider-outage" && r.mode != "single-cloud" &&
        r.stats.offline_provider_windows == 0) {
      std::printf("FAIL: %s/%s saw no offline provider windows\n",
                  r.scenario.c_str(), r.mode.c_str());
      ok = false;
    }
  }
  // The outage scenario must actually exercise the broker's redirect
  // path in at least one brokered mode.
  std::size_t outage_redirects = 0;
  for (const ModeResult& r : results) {
    if (r.scenario == "provider-outage" && r.mode != "single-cloud") {
      outage_redirects += r.stats.redirects + r.stats.evicted;
    }
  }
  if (outage_redirects == 0) {
    std::printf("FAIL: provider outages displaced nothing\n");
    ok = false;
  }
  std::printf("\nstructural checks: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
