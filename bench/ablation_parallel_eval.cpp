// Ablation: parallel objective evaluation (the HPC lever this library
// adds on top of the paper).  Population evaluation is embarrassingly
// parallel; this bench reports the NSGA-III+Tabu wall-clock speed-up per
// worker count, plus reference-point density cost.
#include <cstdio>

#include "algo/nsga_allocators.h"
#include "bench/bench_util.h"
#include "common/csv.h"
#include "common/stats.h"
#include "common/table.h"
#include "workload/generator.h"

int main() {
  using namespace iaas;
  using iaas::bench::apply_env;
  using iaas::bench::csv_dir;

  std::printf("=== Ablation: parallel evaluation & reference density ===\n");
  iaas::bench::SweepConfig env_probe;
  env_probe.runs = 2;
  env_probe = apply_env(env_probe);
  const std::size_t runs = env_probe.runs;

  ScenarioConfig scenario = ScenarioConfig::paper_scale(96);
  const ScenarioGenerator generator(scenario);

  {
    TextTable table({"threads", "mean time (s)", "speed-up vs 1"});
    CsvWriter csv(csv_dir() + "/ablation_parallel_eval.csv",
                  {"threads", "seconds", "speedup"});
    double baseline = 0.0;
    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
      RunningStats time_s;
      for (std::size_t run = 0; run < runs; ++run) {
        const Instance inst = generator.generate(300 + run);
        EaAllocatorOptions options;
        options.nsga.threads = threads;
        Nsga3TabuAllocator allocator(options);
        time_s.add(allocator.allocate(inst, run + 1).wall_seconds);
      }
      if (threads == 1) {
        baseline = time_s.mean();
      }
      const double speedup = baseline / std::max(time_s.mean(), 1e-9);
      table.add_row({std::to_string(threads),
                     TextTable::num(time_s.mean(), 3),
                     TextTable::num(speedup, 2)});
      csv.add_row({std::to_string(threads), TextTable::num(time_s.mean(), 6),
                   TextTable::num(speedup, 4)});
    }
    std::printf("\nNSGA-III+Tabu at 96 servers / 192 VMs, %zu runs each:\n",
                runs);
    table.print();
  }

  {
    TextTable table({"Das-Dennis divisions", "reference points",
                     "mean time (s)", "rejection rate"});
    CsvWriter csv(csv_dir() + "/ablation_reference_density.csv",
                  {"divisions", "points", "seconds", "rejection_rate"});
    for (std::size_t divisions : {4u, 8u, 12u, 16u}) {
      RunningStats time_s, rej;
      for (std::size_t run = 0; run < runs; ++run) {
        const Instance inst = generator.generate(400 + run);
        EaAllocatorOptions options;
        options.nsga.threads = 0;
        options.nsga.reference_divisions = divisions;
        Nsga3TabuAllocator allocator(options);
        const AllocationResult r = allocator.allocate(inst, run + 1);
        time_s.add(r.wall_seconds);
        rej.add(r.rejection_rate());
      }
      const std::size_t points = (divisions + 2) * (divisions + 1) / 2;
      table.add_row({std::to_string(divisions), std::to_string(points),
                     TextTable::num(time_s.mean(), 3),
                     TextTable::num(rej.mean(), 4)});
      csv.add_row({std::to_string(divisions), std::to_string(points),
                   TextTable::num(time_s.mean(), 6),
                   TextTable::num(rej.mean(), 6)});
    }
    std::printf("\nReference-point density (same scenario):\n");
    table.print();
  }
  return 0;
}
