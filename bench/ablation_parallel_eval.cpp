// Ablation: parallel objective evaluation (the HPC lever this library
// adds on top of the paper).  Population evaluation is embarrassingly
// parallel; this bench reports the NSGA-III+Tabu wall-clock speed-up per
// worker count, plus reference-point density cost, and benchmarks the
// fused variation→repair→evaluate generation pipeline (DESIGN.md §8) in
// kRepair mode — emitting a machine-readable BENCH_parallel_pipeline.json
// so the perf trajectory accumulates across commits.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "algo/nsga_allocators.h"
#include "bench/bench_util.h"
#include "common/csv.h"
#include "common/stats.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "ea/nsga3.h"
#include "tabu/repair.h"
#include "workload/generator.h"

int main() {
  using namespace iaas;
  using iaas::bench::apply_env;
  using iaas::bench::csv_dir;

  std::printf("=== Ablation: parallel evaluation & reference density ===\n");
  iaas::bench::SweepConfig env_probe;
  env_probe.runs = 2;
  env_probe = apply_env(env_probe);
  const std::size_t runs = env_probe.runs;

  ScenarioConfig scenario = ScenarioConfig::paper_scale(96);
  const ScenarioGenerator generator(scenario);

  {
    TextTable table({"threads", "mean time (s)", "speed-up vs 1"});
    CsvWriter csv(csv_dir() + "/ablation_parallel_eval.csv",
                  {"threads", "seconds", "speedup"});
    double baseline = 0.0;
    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
      RunningStats time_s;
      for (std::size_t run = 0; run < runs; ++run) {
        const Instance inst = generator.generate(300 + run);
        EaAllocatorOptions options;
        options.nsga.threads = threads;
        Nsga3TabuAllocator allocator(options);
        time_s.add(allocator.allocate(inst, run + 1).wall_seconds);
      }
      if (threads == 1) {
        baseline = time_s.mean();
      }
      const double speedup = baseline / std::max(time_s.mean(), 1e-9);
      table.add_row({std::to_string(threads),
                     TextTable::num(time_s.mean(), 3),
                     TextTable::num(speedup, 2)});
      csv.add_row({std::to_string(threads), TextTable::num(time_s.mean(), 6),
                   TextTable::num(speedup, 4)});
    }
    std::printf("\nNSGA-III+Tabu at 96 servers / 192 VMs, %zu runs each:\n",
                runs);
    table.print();
  }

  {
    TextTable table({"Das-Dennis divisions", "reference points",
                     "mean time (s)", "rejection rate"});
    CsvWriter csv(csv_dir() + "/ablation_reference_density.csv",
                  {"divisions", "points", "seconds", "rejection_rate"});
    for (std::size_t divisions : {4u, 8u, 12u, 16u}) {
      RunningStats time_s, rej;
      for (std::size_t run = 0; run < runs; ++run) {
        const Instance inst = generator.generate(400 + run);
        EaAllocatorOptions options;
        options.nsga.threads = 0;
        options.nsga.reference_divisions = divisions;
        Nsga3TabuAllocator allocator(options);
        const AllocationResult r = allocator.allocate(inst, run + 1);
        time_s.add(r.wall_seconds);
        rej.add(r.rejection_rate());
      }
      const std::size_t points = (divisions + 2) * (divisions + 1) / 2;
      table.add_row({std::to_string(divisions), std::to_string(points),
                     TextTable::num(time_s.mean(), 3),
                     TextTable::num(rej.mean(), 4)});
      csv.add_row({std::to_string(divisions), std::to_string(points),
                   TextTable::num(time_s.mean(), 6),
                   TextTable::num(rej.mean(), 6)});
    }
    std::printf("\nReference-point density (same scenario):\n");
    table.print();
  }

  {
    // Fused variation→repair→evaluate pipeline: NSGA-III in kRepair mode
    // on the fig08 large instance, with the generation loop timed
    // directly (no allocator post-processing) so what is measured is the
    // repair-bound throughput the two-phase loop parallelises.
    const bool fast = std::getenv("IAAS_BENCH_FAST") != nullptr;
    const std::uint32_t servers = fast ? 100 : 400;
    ScenarioConfig big = ScenarioConfig::paper_scale(servers);
    const ScenarioGenerator big_generator(big);

    NsgaConfig nsga;  // Table III population / operator rates
    nsga.constraint_mode = ConstraintMode::kRepair;
    nsga.max_evaluations = fast ? 600 : 2000;

    struct PipelineCell {
      std::size_t threads = 0;
      double seconds = 0.0;
      double speedup = 0.0;
      bool identical = true;
    };
    std::vector<PipelineCell> cells;
    std::vector<std::vector<std::int32_t>> reference_front;  // threads == 1

    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
      RunningStats time_s;
      std::vector<std::vector<std::int32_t>> front_genes;
      for (std::size_t run = 0; run < runs; ++run) {
        const Instance inst = big_generator.generate(7000 + run);
        const AllocationProblem problem(inst);
        const TabuRepair repair(inst);
        const RepairFn repair_fn = [&repair](std::vector<std::int32_t>& g,
                                             Rng& rng) {
          repair.repair(g, rng);
        };
        const StateRepairFn state_fn = [&repair](PlacementState& state,
                                                 Rng& rng) {
          repair.repair_state(state, rng);
        };
        NsgaConfig cfg = nsga;
        cfg.threads = threads;
        Nsga3 engine(problem, cfg, repair_fn, state_fn);
        Stopwatch timer;
        const auto result = engine.run(run + 1);
        time_s.add(timer.elapsed_seconds());
        for (const Individual& ind : result.front) {
          front_genes.push_back(ind.genes);
        }
      }
      PipelineCell cell;
      cell.threads = threads;
      cell.seconds = time_s.mean();
      if (threads == 1) {
        reference_front = front_genes;
      }
      cell.identical = front_genes == reference_front;
      cell.speedup = cells.empty()
                         ? 1.0
                         : cells.front().seconds / std::max(cell.seconds,
                                                            1e-9);
      cells.push_back(cell);
    }

    TextTable table(
        {"threads", "mean time (s)", "speed-up vs 1", "bit-identical"});
    for (const PipelineCell& cell : cells) {
      table.add_row({std::to_string(cell.threads),
                     TextTable::num(cell.seconds, 3),
                     TextTable::num(cell.speedup, 2),
                     cell.identical ? "yes" : "NO"});
    }
    std::printf(
        "\nFused repair pipeline (NSGA-III kRepair, %u servers / %u VMs, "
        "%zu evals, %zu runs each):\n",
        servers, servers * 2, nsga.max_evaluations, runs);
    table.print();

    const std::string json_path = csv_dir() + "/BENCH_parallel_pipeline.json";
    if (std::FILE* json = std::fopen(json_path.c_str(), "w")) {
      std::fprintf(json,
                   "{\n"
                   "  \"bench\": \"parallel_pipeline\",\n"
                   "  \"mode\": \"kRepair\",\n"
                   "  \"servers\": %u,\n"
                   "  \"vms\": %u,\n"
                   "  \"population\": %zu,\n"
                   "  \"max_evaluations\": %zu,\n"
                   "  \"runs\": %zu,\n"
                   "  \"results\": [\n",
                   servers, servers * 2, nsga.population_size,
                   nsga.max_evaluations, runs);
      for (std::size_t i = 0; i < cells.size(); ++i) {
        const PipelineCell& cell = cells[i];
        std::fprintf(json,
                     "    {\"threads\": %zu, \"seconds\": %.6f, "
                     "\"speedup\": %.4f, \"identical_to_serial\": %s}%s\n",
                     cell.threads, cell.seconds, cell.speedup,
                     cell.identical ? "true" : "false",
                     i + 1 < cells.size() ? "," : "");
      }
      std::fprintf(json, "  ]\n}\n");
      std::fclose(json);
      std::printf("\nWrote %s\n", json_path.c_str());
    }
  }
  return 0;
}
