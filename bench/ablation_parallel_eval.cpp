// Ablation: parallel objective evaluation (the HPC lever this library
// adds on top of the paper).  Population evaluation is embarrassingly
// parallel; this bench reports the NSGA-III+Tabu wall-clock speed-up per
// worker count, plus reference-point density cost, and benchmarks the
// fused variation→repair→evaluate generation pipeline (DESIGN.md §8) in
// kRepair mode — emitting a machine-readable BENCH_parallel_pipeline.json
// so the perf trajectory accumulates across commits.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "algo/nsga_allocators.h"
#include "bench/bench_util.h"
#include "common/csv.h"
#include "common/stats.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "ea/nsga3.h"
#include "tabu/repair.h"
#include "workload/generator.h"

int main() {
  using namespace iaas;
  using iaas::bench::apply_env;
  using iaas::bench::csv_dir;

  std::printf("=== Ablation: parallel evaluation & reference density ===\n");
  iaas::bench::SweepConfig env_probe;
  env_probe.runs = 2;
  env_probe = apply_env(env_probe);
  const std::size_t runs = env_probe.runs;

  ScenarioConfig scenario = ScenarioConfig::paper_scale(96);
  const ScenarioGenerator generator(scenario);

  {
    TextTable table({"threads", "mean time (s)", "speed-up vs 1"});
    CsvWriter csv(csv_dir() + "/ablation_parallel_eval.csv",
                  {"threads", "seconds", "speedup"});
    double baseline = 0.0;
    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
      RunningStats time_s;
      for (std::size_t run = 0; run < runs; ++run) {
        const Instance inst = generator.generate(300 + run);
        EaAllocatorOptions options;
        options.nsga.threads = threads;
        Nsga3TabuAllocator allocator(options);
        time_s.add(allocator.allocate(inst, run + 1).wall_seconds);
      }
      if (threads == 1) {
        baseline = time_s.mean();
      }
      const double speedup = baseline / std::max(time_s.mean(), 1e-9);
      table.add_row({std::to_string(threads),
                     TextTable::num(time_s.mean(), 3),
                     TextTable::num(speedup, 2)});
      csv.add_row({std::to_string(threads), TextTable::num(time_s.mean(), 6),
                   TextTable::num(speedup, 4)});
    }
    std::printf("\nNSGA-III+Tabu at 96 servers / 192 VMs, %zu runs each:\n",
                runs);
    table.print();
  }

  {
    TextTable table({"Das-Dennis divisions", "reference points",
                     "mean time (s)", "rejection rate"});
    CsvWriter csv(csv_dir() + "/ablation_reference_density.csv",
                  {"divisions", "points", "seconds", "rejection_rate"});
    for (std::size_t divisions : {4u, 8u, 12u, 16u}) {
      RunningStats time_s, rej;
      for (std::size_t run = 0; run < runs; ++run) {
        const Instance inst = generator.generate(400 + run);
        EaAllocatorOptions options;
        options.nsga.threads = 0;
        options.nsga.reference_divisions = divisions;
        Nsga3TabuAllocator allocator(options);
        const AllocationResult r = allocator.allocate(inst, run + 1);
        time_s.add(r.wall_seconds);
        rej.add(r.rejection_rate());
      }
      const std::size_t points = (divisions + 2) * (divisions + 1) / 2;
      table.add_row({std::to_string(divisions), std::to_string(points),
                     TextTable::num(time_s.mean(), 3),
                     TextTable::num(rej.mean(), 4)});
      csv.add_row({std::to_string(divisions), std::to_string(points),
                   TextTable::num(time_s.mean(), 6),
                   TextTable::num(rej.mean(), 6)});
    }
    std::printf("\nReference-point density (same scenario):\n");
    table.print();
  }

  {
    // Fused variation→repair→evaluate pipeline: NSGA-III in kRepair mode
    // with the generation loop timed directly (no allocator
    // post-processing) so what is measured is the repair-bound
    // throughput the two-phase loop parallelises.  Runs a ladder of
    // instance tiers up to the paper's 800×1600 experiment scale:
    //   fast    (IAAS_BENCH_FAST)    100 × 200, 600 evals
    //   default                      400 × 800 and 800 × 1600
    //   stress  (IAAS_BENCH_SIZES=stress)   10000 × 100000
    // IAAS_BENCH_SIZES also accepts explicit tiers: a comma-separated
    // list of "servers" (VMs = 2×) or "serversxvms" entries.
    struct Tier {
      std::uint32_t servers = 0;
      std::uint32_t vms = 0;
    };
    const bool fast = std::getenv("IAAS_BENCH_FAST") != nullptr;
    std::vector<Tier> tiers;
    if (fast) {
      tiers = {{100, 200}};
    } else {
      tiers = {{400, 800}, {800, 1600}};
    }
    if (const char* sizes = std::getenv("IAAS_BENCH_SIZES")) {
      if (std::string(sizes) == "stress") {
        // The ROADMAP's consolidation-churn shape: 10x VM density.
        tiers = {{10000, 100000}};
      } else {
        std::vector<Tier> parsed;
        const char* p = sizes;
        while (*p != '\0') {
          char* end = nullptr;
          const unsigned long s = std::strtoul(p, &end, 10);
          if (end == p) {
            break;
          }
          Tier tier;
          tier.servers = static_cast<std::uint32_t>(s);
          tier.vms = tier.servers * 2;
          if (*end == 'x') {
            p = end + 1;
            tier.vms = static_cast<std::uint32_t>(
                std::strtoul(p, &end, 10));
          }
          if (tier.servers > 0 && tier.vms > 0) {
            parsed.push_back(tier);
          }
          p = *end == ',' ? end + 1 : end;
        }
        if (!parsed.empty()) {
          tiers = std::move(parsed);
        }
      }
    }

    NsgaConfig nsga;  // Table III population / operator rates
    nsga.constraint_mode = ConstraintMode::kRepair;
    nsga.max_evaluations = fast ? 600 : 2000;

    struct PipelineCell {
      std::size_t threads = 0;
      double seconds = 0.0;
      double speedup = 0.0;
      bool identical = true;
    };
    struct TierCurve {
      Tier tier;
      std::vector<PipelineCell> cells;
    };
    std::vector<TierCurve> curves;

    for (const Tier& tier : tiers) {
      ScenarioConfig big = ScenarioConfig::paper_scale(tier.servers);
      big.vms = tier.vms;
      const ScenarioGenerator big_generator(big);

      TierCurve curve;
      curve.tier = tier;
      std::vector<std::vector<std::int32_t>> reference_front;  // threads==1

      for (std::size_t threads : {1u, 2u, 4u, 8u}) {
        RunningStats time_s;
        std::vector<std::vector<std::int32_t>> front_genes;
        for (std::size_t run = 0; run < runs; ++run) {
          const Instance inst = big_generator.generate(7000 + run);
          const AllocationProblem problem(inst);
          const TabuRepair repair(inst, {}, problem.tables());
          const RepairFn repair_fn = [&repair](std::vector<std::int32_t>& g,
                                               Rng& rng) {
            repair.repair(g, rng);
          };
          const StateRepairFn state_fn = [&repair](PlacementState& state,
                                                   Rng& rng) {
            repair.repair_state(state, rng);
          };
          NsgaConfig cfg = nsga;
          cfg.threads = threads;
          Nsga3 engine(problem, cfg, repair_fn, state_fn);
          Stopwatch timer;
          const auto result = engine.run(run + 1);
          time_s.add(timer.elapsed_seconds());
          for (const Individual& ind : result.front) {
            front_genes.push_back(ind.genes);
          }
        }
        PipelineCell cell;
        cell.threads = threads;
        cell.seconds = time_s.mean();
        if (threads == 1) {
          reference_front = front_genes;
        }
        cell.identical = front_genes == reference_front;
        cell.speedup =
            curve.cells.empty()
                ? 1.0
                : curve.cells.front().seconds / std::max(cell.seconds, 1e-9);
        curve.cells.push_back(cell);
      }

      TextTable table(
          {"threads", "mean time (s)", "speed-up vs 1", "bit-identical"});
      for (const PipelineCell& cell : curve.cells) {
        table.add_row({std::to_string(cell.threads),
                       TextTable::num(cell.seconds, 3),
                       TextTable::num(cell.speedup, 2),
                       cell.identical ? "yes" : "NO"});
      }
      std::printf(
          "\nFused repair pipeline (NSGA-III kRepair, %u servers / %u VMs, "
          "%zu evals, %zu runs each):\n",
          tier.servers, tier.vms, nsga.max_evaluations, runs);
      table.print();
      curves.push_back(std::move(curve));
    }

    const unsigned hardware = std::thread::hardware_concurrency();
    const std::string json_path = csv_dir() + "/BENCH_parallel_pipeline.json";
    if (std::FILE* json = std::fopen(json_path.c_str(), "w")) {
      std::fprintf(json,
                   "{\n"
                   "  \"bench\": \"parallel_pipeline\",\n"
                   "  \"mode\": \"kRepair\",\n"
                   "  \"population\": %zu,\n"
                   "  \"max_evaluations\": %zu,\n"
                   "  \"runs\": %zu,\n"
                   "  \"hardware_threads\": %u,\n"
                   "  \"tiers\": [\n",
                   nsga.population_size, nsga.max_evaluations, runs,
                   hardware);
      for (std::size_t t = 0; t < curves.size(); ++t) {
        const TierCurve& curve = curves[t];
        std::fprintf(json,
                     "    {\"servers\": %u, \"vms\": %u, \"results\": [\n",
                     curve.tier.servers, curve.tier.vms);
        for (std::size_t i = 0; i < curve.cells.size(); ++i) {
          const PipelineCell& cell = curve.cells[i];
          std::fprintf(json,
                       "      {\"threads\": %zu, \"seconds\": %.6f, "
                       "\"speedup\": %.4f, \"identical_to_serial\": %s}%s\n",
                       cell.threads, cell.seconds, cell.speedup,
                       cell.identical ? "true" : "false",
                       i + 1 < curve.cells.size() ? "," : "");
        }
        std::fprintf(json, "    ]}%s\n",
                     t + 1 < curves.size() ? "," : "");
      }
      std::fprintf(json, "  ]\n}\n");
      std::fclose(json);
      std::printf("\nWrote %s\n", json_path.c_str());
    }

    // Divergent fronts fail unconditionally — bit-identity across thread
    // counts is a correctness promise, not a perf target.
    for (const TierCurve& curve : curves) {
      for (const PipelineCell& cell : curve.cells) {
        if (!cell.identical) {
          std::fprintf(stderr,
                       "FAIL: %u-server front at %zu threads diverged "
                       "from the serial run\n",
                       curve.tier.servers, cell.threads);
          return 1;
        }
      }
    }

    // Speed-up regression gate (nightly): IAAS_BENCH_MIN_SPEEDUP8 sets
    // the floor for the 8-thread speed-up at the largest measured tier.
    // Only meaningful on hardware that can actually run 8 threads — the
    // gate reports-and-skips elsewhere instead of failing on a laptop.
    if (const char* floor_env = std::getenv("IAAS_BENCH_MIN_SPEEDUP8")) {
      const double floor = std::strtod(floor_env, nullptr);
      const TierCurve& gated = curves.back();
      double speedup8 = 0.0;
      for (const PipelineCell& cell : gated.cells) {
        if (cell.threads == 8) {
          speedup8 = cell.speedup;
        }
      }
      if (hardware < 8) {
        std::printf(
            "speedup gate skipped: %u hardware threads < 8 (8-thread "
            "speedup %.2f at %u servers not meaningful here)\n",
            hardware, speedup8, gated.tier.servers);
      } else if (speedup8 < floor) {
        std::fprintf(stderr,
                     "FAIL: 8-thread speedup %.2f at %u servers is below "
                     "the %.2f floor\n",
                     speedup8, gated.tier.servers, floor);
        return 1;
      } else {
        std::printf("speedup gate passed: %.2f >= %.2f at %u servers\n",
                    speedup8, floor, gated.tier.servers);
      }
    }
  }
  return 0;
}
