// Micro-benchmarks of the EA and repair machinery: variation operators,
// non-dominated sorting, NSGA-III niching inputs, and both repair
// operators (tabu vs constraint-solver — the Fig. 8 scaling difference
// in miniature).
#include <benchmark/benchmark.h>

#include "algo/cp_repair.h"
#include "common/rng.h"
#include "ea/nondominated_sort.h"
#include "ea/operators.h"
#include "ea/reference_points.h"
#include "tabu/repair.h"
#include "workload/generator.h"

namespace {

using namespace iaas;

Instance make_instance_for(std::int64_t servers) {
  ScenarioConfig cfg =
      ScenarioConfig::paper_scale(static_cast<std::uint32_t>(servers));
  return ScenarioGenerator(cfg).generate(11);
}

void BM_SbxCrossover(benchmark::State& state) {
  Rng rng(1);
  const auto genes = static_cast<std::size_t>(state.range(0));
  std::vector<std::int32_t> pa(genes), pb(genes), ca, cb;
  randomize_genes(pa, 799, rng);
  randomize_genes(pb, 799, rng);
  const SbxParams params;
  for (auto _ : state) {
    sbx_crossover(pa, pb, ca, cb, 799, params, rng);
    benchmark::DoNotOptimize(ca);
  }
}
BENCHMARK(BM_SbxCrossover)->Arg(128)->Arg(1600);

void BM_PolynomialMutation(benchmark::State& state) {
  Rng rng(2);
  std::vector<std::int32_t> genes(static_cast<std::size_t>(state.range(0)));
  randomize_genes(genes, 799, rng);
  const PmParams params;  // Table III rate 0.20
  for (auto _ : state) {
    polynomial_mutation(genes, 799, params, rng);
    benchmark::DoNotOptimize(genes);
  }
}
BENCHMARK(BM_PolynomialMutation)->Arg(128)->Arg(1600);

void BM_NondominatedSort(benchmark::State& state) {
  Rng rng(3);
  Population pop(static_cast<std::size_t>(state.range(0)));
  for (Individual& i : pop) {
    i.objectives = {rng.next_double(), rng.next_double(), rng.next_double()};
  }
  const DominanceFn dom = [](const Individual& a, const Individual& b) {
    return dominates(a, b);
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(nondominated_sort(pop, dom));
  }
}
BENCHMARK(BM_NondominatedSort)->Arg(100)->Arg(200)->Arg(400);

void BM_DasDennisPoints(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        das_dennis_points(static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_DasDennisPoints)->Arg(12)->Arg(24);

void BM_TabuRepair(benchmark::State& state) {
  const Instance inst = make_instance_for(state.range(0));
  TabuRepair repair(inst);
  Rng rng(4);
  std::vector<std::int32_t> base(inst.n());
  randomize_genes(base, static_cast<std::int32_t>(inst.m()) - 1, rng);
  for (auto _ : state) {
    std::vector<std::int32_t> genes = base;
    benchmark::DoNotOptimize(repair.repair(genes, rng));
  }
}
BENCHMARK(BM_TabuRepair)->Arg(32)->Arg(128)->Arg(512);

void BM_CpRepair(benchmark::State& state) {
  const Instance inst = make_instance_for(state.range(0));
  CpRepair repair(inst);
  Rng rng(5);
  std::vector<std::int32_t> base(inst.n());
  randomize_genes(base, static_cast<std::int32_t>(inst.m()) - 1, rng);
  for (auto _ : state) {
    std::vector<std::int32_t> genes = base;
    benchmark::DoNotOptimize(repair.repair(genes, rng));
  }
}
BENCHMARK(BM_CpRepair)->Arg(32)->Arg(128)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
