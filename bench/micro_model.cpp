// Micro-benchmarks of the model hot paths: placement evaluation (the EA
// inner loop), load computation, constraint checking, sanitization.
#include <benchmark/benchmark.h>

#include "algo/allocator.h"
#include "common/rng.h"
#include "model/constraint_checker.h"
#include "model/load_model.h"
#include "model/objectives.h"
#include "workload/generator.h"

namespace {

using namespace iaas;

Instance make_instance_for(std::int64_t servers) {
  ScenarioConfig cfg =
      ScenarioConfig::paper_scale(static_cast<std::uint32_t>(servers));
  return ScenarioGenerator(cfg).generate(7);
}

Placement random_placement(const Instance& inst, std::uint64_t seed) {
  Rng rng(seed);
  Placement p(inst.n());
  for (std::size_t k = 0; k < inst.n(); ++k) {
    p.assign(k, static_cast<std::int32_t>(rng.uniform_index(inst.m())));
  }
  return p;
}

void BM_EvaluatePlacement(benchmark::State& state) {
  const Instance inst = make_instance_for(state.range(0));
  Evaluator evaluator(inst);
  const Placement p = random_placement(inst, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.evaluate(p));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inst.n()));
}
BENCHMARK(BM_EvaluatePlacement)->Arg(16)->Arg(64)->Arg(256)->Arg(800);

void BM_ComputeLoads(benchmark::State& state) {
  const Instance inst = make_instance_for(state.range(0));
  const Placement p = random_placement(inst, 2);
  Matrix<double> loads;
  for (auto _ : state) {
    compute_loads(inst, p, loads);
    benchmark::DoNotOptimize(loads);
  }
}
BENCHMARK(BM_ComputeLoads)->Arg(64)->Arg(800);

void BM_ConstraintCheck(benchmark::State& state) {
  const Instance inst = make_instance_for(state.range(0));
  const ConstraintChecker checker(inst);
  const Placement p = random_placement(inst, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.check(p));
  }
}
BENCHMARK(BM_ConstraintCheck)->Arg(64)->Arg(800);

void BM_SanitizePlacement(benchmark::State& state) {
  const Instance inst = make_instance_for(state.range(0));
  const Placement p = random_placement(inst, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sanitize_placement(inst, p));
  }
}
BENCHMARK(BM_SanitizePlacement)->Arg(64)->Arg(256);

void BM_GenerateScenario(benchmark::State& state) {
  ScenarioConfig cfg = ScenarioConfig::paper_scale(
      static_cast<std::uint32_t>(state.range(0)));
  const ScenarioGenerator gen(cfg);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.generate(seed++));
  }
}
BENCHMARK(BM_GenerateScenario)->Arg(64)->Arg(800);

}  // namespace

BENCHMARK_MAIN();
