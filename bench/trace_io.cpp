// Trace-IO gate: emission time and trace size across the three write
// paths (DESIGN.md §13) on a fault-injection horizon with the EA's
// per-generation allocator trace enabled — the richest WindowMetrics
// shape (fault events, admission block, nested run traces).
//
//   json-tree   legacy path: build the Json tree, dump(2) to a string
//   streaming   SimTraceWriter: per-window emit + flush, no tree
//   binary      BinaryTraceWriter: varint/f64 records, per-window flush
//
// Hard gates (any tier, any hardware — these are correctness, not perf):
//   * streaming output is byte-identical to the json-tree output;
//   * the binary file is >= 5x smaller than the pretty JSON;
//   * the binary file reloads to the same deterministic fingerprint;
//   * the streaming writer's peak buffer is O(one window), not O(run).
//
// Emits BENCH_trace_io.json (sizes, seconds, bytes/window) plus the
// trace files themselves (trace_sim_<tier>.json / .trc) into
// IAAS_BENCH_CSV_DIR — the ctest smoke chain points trace_convert
// --check and check_trace at that directory.
//
// Tiers: fast (16 servers, 12 windows) for the smoke test; default
// (32 servers, 60 windows) for the nightly gate.  IAAS_BENCH_FAST picks
// fast; IAAS_SIM_WINDOWS overrides the horizon.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "algo/nsga_allocators.h"
#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "io/emit.h"
#include "io/trace_binary.h"
#include "io/trace_json.h"
#include "io/trace_stream.h"
#include "sim/simulator.h"

namespace {

using namespace iaas;

struct Tier {
  const char* name = "default";
  std::uint32_t servers = 32;
  std::size_t windows = 60;
  double arrivals = 10.0;
  std::size_t reps = 5;  // emission repetitions (mean reported)
};

std::string load_text(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<WindowMetrics> run_horizon(const Tier& tier) {
  SimConfig cfg;
  cfg.windows = tier.windows;
  cfg.arrivals_per_window_mean = tier.arrivals;
  cfg.departure_probability = 0.12;
  cfg.scenario = ScenarioConfig::paper_scale(tier.servers);
  cfg.faults.server_failure_probability = 0.06;
  cfg.faults.leaf_failure_probability = 0.05;
  cfg.faults.mttr_min_windows = 1;
  cfg.faults.mttr_max_windows = 3;
  cfg.faults.decommission_probability = 0.05;
  cfg.retry.max_attempts = 3;
  // Admission control on, so the optional admission block is exercised.
  cfg.max_admissions_per_window =
      static_cast<std::size_t>(tier.arrivals) + 2;
  cfg.admission_queue_limit = static_cast<std::size_t>(tier.arrivals) * 6;
  EaAllocatorOptions options;
  options.nsga.population_size = 16;
  options.nsga.max_evaluations = 320;
  options.nsga.reference_divisions = 4;
  options.nsga.collect_trace = true;  // nested allocator_trace per window
  options.nsga.threads = 1;
  CloudSimulator sim(cfg, std::make_unique<Nsga3TabuAllocator>(options));
  return sim.run(20170529);
}

}  // namespace

int main() {
  std::printf("=== Trace-IO: tree vs streaming vs binary emission ===\n");

  Tier tier;
  if (std::getenv("IAAS_BENCH_FAST") != nullptr) {
    tier = {"fast", 16, 12, 8.0, 3};
  }
  if (const char* env = std::getenv("IAAS_SIM_WINDOWS")) {
    const long parsed = std::atol(env);
    if (parsed > 0) {
      tier.windows = static_cast<std::size_t>(parsed);
    }
  }
  const std::string dir = bench::csv_dir();
  const std::string json_path =
      dir + "/trace_sim_" + tier.name + ".json";
  const std::string binary_path =
      dir + "/trace_sim_" + tier.name + ".trc";

  std::printf("tier %s: %u servers, %zu windows (fault injection + EA "
              "trace)\n",
              tier.name, tier.servers, tier.windows);
  const std::vector<WindowMetrics> rows = run_horizon(tier);
  const std::uint64_t fingerprint = deterministic_fingerprint(rows);

  // --- json-tree path (legacy) ---------------------------------------
  double tree_seconds = 0.0;
  std::string tree_text;
  for (std::size_t rep = 0; rep < tier.reps; ++rep) {
    Stopwatch timer;
    tree_text = sim_trace_to_json(rows).dump(2);
    tree_text += '\n';
    tree_seconds += timer.elapsed_seconds();
  }
  tree_seconds /= static_cast<double>(tier.reps);

  // --- streaming path ------------------------------------------------
  double stream_seconds = 0.0;
  std::size_t stream_bytes = 0;
  std::size_t peak_buffer = 0;
  for (std::size_t rep = 0; rep < tier.reps; ++rep) {
    Stopwatch timer;
    SimTraceWriter writer(json_path);
    for (const WindowMetrics& row : rows) {
      writer.append(row);
    }
    writer.finish();
    stream_seconds += timer.elapsed_seconds();
    stream_bytes = writer.bytes_written();
    peak_buffer = writer.peak_buffer_bytes();
  }
  stream_seconds /= static_cast<double>(tier.reps);

  // --- binary path ---------------------------------------------------
  double binary_seconds = 0.0;
  std::size_t binary_bytes = 0;
  for (std::size_t rep = 0; rep < tier.reps; ++rep) {
    Stopwatch timer;
    BinaryTraceWriter writer(binary_path);
    for (const WindowMetrics& row : rows) {
      writer.append(row);
    }
    writer.finish();
    binary_seconds += timer.elapsed_seconds();
    binary_bytes = writer.bytes_written();
  }
  binary_seconds /= static_cast<double>(tier.reps);

  const double ratio = binary_bytes == 0
                           ? 0.0
                           : static_cast<double>(tree_text.size()) /
                                 static_cast<double>(binary_bytes);
  const double bytes_per_window =
      static_cast<double>(stream_bytes) /
      static_cast<double>(std::max<std::size_t>(rows.size(), 1));

  TextTable table({"path", "seconds", "bytes", "bytes/window"});
  table.add_row({"json-tree", TextTable::num(tree_seconds, 6),
                 std::to_string(tree_text.size()),
                 TextTable::num(static_cast<double>(tree_text.size()) /
                                    static_cast<double>(rows.size()),
                                1)});
  table.add_row({"streaming", TextTable::num(stream_seconds, 6),
                 std::to_string(stream_bytes),
                 TextTable::num(bytes_per_window, 1)});
  table.add_row({"binary", TextTable::num(binary_seconds, 6),
                 std::to_string(binary_bytes),
                 TextTable::num(static_cast<double>(binary_bytes) /
                                    static_cast<double>(rows.size()),
                                1)});
  table.print();
  std::printf("compression ratio (pretty JSON / binary): %.2fx\n", ratio);
  std::printf("streaming peak buffer: %zu bytes (%zu windows, "
              "%.0f bytes/window)\n",
              peak_buffer, rows.size(), bytes_per_window);
  std::printf("deterministic_fingerprint=%016llx\n",
              static_cast<unsigned long long>(fingerprint));

  // --- hard gates ----------------------------------------------------
  bool ok = true;
  if (load_text(json_path) != tree_text) {
    std::fprintf(stderr, "FAIL: streaming output differs from the "
                         "json-tree output\n");
    ok = false;
  }
  if (ratio < 5.0) {
    std::fprintf(stderr,
                 "FAIL: binary trace only %.2fx smaller than pretty "
                 "JSON (floor 5x)\n",
                 ratio);
    ok = false;
  }
  const std::vector<WindowMetrics> reloaded =
      read_binary_sim_trace(binary_path);
  if (deterministic_fingerprint(reloaded) != fingerprint) {
    std::fprintf(stderr, "FAIL: binary reload changed the "
                         "deterministic fingerprint\n");
    ok = false;
  }
  // O(one window) memory: the buffer never holds more than a few
  // windows' worth of text no matter how long the horizon is.
  if (rows.size() >= 8 &&
      static_cast<double>(peak_buffer) > 4.0 * bytes_per_window + 4096.0) {
    std::fprintf(stderr,
                 "FAIL: streaming peak buffer %zu bytes is not O(one "
                 "window) (%.0f bytes/window)\n",
                 peak_buffer, bytes_per_window);
    ok = false;
  }

  // --- machine-readable roll-up --------------------------------------
  const std::string bench_path = dir + "/BENCH_trace_io.json";
  {
    std::string out;
    JsonEmitter e(out, 2);
    e.begin_object();
    e.key("bench");
    e.value("trace_io");
    e.key("tier");
    e.value(tier.name);
    e.key("servers");
    e.value(static_cast<std::uint64_t>(tier.servers));
    e.key("window_count");
    e.value(static_cast<std::uint64_t>(rows.size()));
    e.key("json_tree_seconds");
    e.value(tree_seconds);
    e.key("streaming_seconds");
    e.value(stream_seconds);
    e.key("binary_seconds");
    e.value(binary_seconds);
    e.key("json_bytes");
    e.value(static_cast<std::uint64_t>(tree_text.size()));
    e.key("binary_bytes");
    e.value(static_cast<std::uint64_t>(binary_bytes));
    e.key("bytes_per_window");
    e.value(bytes_per_window);
    e.key("compression_ratio");
    e.value(ratio);
    e.key("peak_buffer_bytes");
    e.value(static_cast<std::uint64_t>(peak_buffer));
    e.key("gates_passed");
    e.value(ok);
    e.end_object();
    out += '\n';
    JsonFileSink sink(bench_path);
    sink.write(out);
    sink.close();
    std::printf("\nWrote %s\n", bench_path.c_str());
  }
  std::printf("trace files: %s, %s\n", json_path.c_str(),
              binary_path.c_str());
  std::printf("gates: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
