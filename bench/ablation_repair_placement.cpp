// Ablation: where in the generation the tabu repair runs.
//
// The paper's Fig. 4 repairs the two selected *parents* before variation;
// our engine can additionally (or instead) repair offspring after
// variation.  This bench quantifies each choice's effect on violations,
// rejection and runtime, plus the tabu tenure's influence.
#include <cstdio>

#include "algo/allocator.h"
#include "algo/ideal_point.h"
#include "bench/bench_util.h"
#include "common/csv.h"
#include "common/stats.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "ea/nsga3.h"
#include "ea/problem.h"
#include "tabu/repair.h"
#include "workload/generator.h"

namespace {

using namespace iaas;

struct Variant {
  std::string name;
  bool repair_parents;
  bool repair_offspring;
  std::size_t tenure;
};

}  // namespace

int main() {
  using iaas::bench::apply_env;
  using iaas::bench::csv_dir;

  std::printf("=== Ablation: repair placement & tabu tenure ===\n");
  iaas::bench::SweepConfig env_probe;
  env_probe.runs = 3;
  env_probe = apply_env(env_probe);
  const std::size_t runs = env_probe.runs;

  ScenarioConfig scenario = ScenarioConfig::paper_scale(32);
  scenario.constrained_fraction = 0.4;
  const ScenarioGenerator generator(scenario);

  const std::vector<Variant> variants = {
      {"parents only (paper Fig. 4)", true, false, 16},
      {"offspring only", false, true, 16},
      {"parents + offspring", true, true, 16},
      {"both, tenure 0 (no memory)", true, true, 0},
      {"both, tenure 64", true, true, 64},
  };

  TextTable table({"variant", "mean time (s)", "raw violations",
                   "rejection rate", "repairs/run"});
  CsvWriter csv(csv_dir() + "/ablation_repair_placement.csv",
                {"variant", "seconds", "violations", "rejection_rate",
                 "repair_invocations"});

  for (const Variant& v : variants) {
    RunningStats time_s, viols, rej, reps;
    for (std::size_t run = 0; run < runs; ++run) {
      const Instance inst = generator.generate(200 + run);
      AllocationProblem problem(inst);
      NsgaConfig cfg;
      cfg.threads = 0;
      cfg.constraint_mode = ConstraintMode::kRepair;
      cfg.repair_parents = v.repair_parents;
      cfg.repair_offspring = v.repair_offspring;
      TabuRepairOptions repair_options;
      repair_options.tabu_tenure = v.tenure;
      TabuRepair repair(inst, repair_options);
      Nsga3 engine(problem, cfg,
                   [&repair](std::vector<std::int32_t>& genes, Rng& rng) {
                     repair.repair(genes, rng);
                   });
      Stopwatch timer;
      const auto ea_result = engine.run(run + 1);
      const double seconds = timer.elapsed_seconds();
      const std::size_t pick = select_ideal_point(ea_result.front);
      const AllocationResult r = Allocator::finalize(
          inst, v.name, Placement(ea_result.front[pick].genes), seconds, 0,
          {});
      time_s.add(seconds);
      viols.add(static_cast<double>(r.raw_violations.total()));
      rej.add(r.rejection_rate());
      reps.add(static_cast<double>(ea_result.repair_invocations));
    }
    table.add_row({v.name, TextTable::num(time_s.mean(), 3),
                   TextTable::num(viols.mean(), 2),
                   TextTable::num(rej.mean(), 4),
                   TextTable::num(reps.mean(), 0)});
    csv.add_row({v.name, TextTable::num(time_s.mean(), 6),
                 TextTable::num(viols.mean(), 4),
                 TextTable::num(rej.mean(), 6),
                 TextTable::num(reps.mean(), 1)});
  }
  std::printf("\nNSGA-III+Tabu at 32 servers / 64 VMs, %zu runs each:\n",
              runs);
  table.print();
  std::printf(
      "\nReading: all placements converge to feasibility here because"
      "\nconstrained dominance steers selection; parent-only repair (the"
      "\nliteral Fig. 4) is the cheapest since feasible parents skip the"
      "\nrepair entirely, while offspring repair pays one pass per child"
      "\nbut keeps the whole final population feasible every generation.\n");
  return 0;
}
