// Failure & recovery: what platform outages cost and how fast the
// scheduler heals (extension figure — the paper defers platform failures
// to future work while already pricing their consequences through the
// downtime term Eq. 23 and the migration term Eq. 26).
//
// Part 1 is the acceptance scenario: a scripted rack outage (leaf 0,
// MTTR = 3 windows) under heavy load.  Every VM hosted on the rack is
// evicted the same window, re-enters through the bounded retry queue,
// and the queue drains within MTTR + 2 windows of the hit.  The printed
// fingerprint digests every deterministic column — CI diffs it between
// telemetry ON and OFF builds.
//
// Part 2 sweeps failure rate x MTTR and reports recovery latency (mean
// windows a queued VM waits before re-entering — Little's law over the
// queue-depth series) and the eviction cost (downtime Eq. 23 + migration
// Eq. 26 accumulated over the horizon).
//
// Environment knobs: IAAS_BENCH_FAST (shrink the sweep),
// IAAS_SIM_WINDOWS (horizon override), IAAS_BENCH_CSV_DIR.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "algo/heuristics.h"
#include "algo/round_robin.h"
#include "bench/bench_util.h"
#include "common/csv.h"
#include "sim/simulator.h"

namespace {

using namespace iaas;

std::size_t sim_windows(std::size_t fallback) {
  if (const char* env = std::getenv("IAAS_SIM_WINDOWS")) {
    const long parsed = std::atol(env);
    if (parsed > 0) {
      return static_cast<std::size_t>(parsed);
    }
  }
  return fallback;
}

bool fast_mode() { return std::getenv("IAAS_BENCH_FAST") != nullptr; }

// Mean windows a queued VM waits before re-entering: total queue-window
// occupancy over the horizon divided by the number of queued VMs
// (Little's law with one window as the time unit).
double mean_recovery_windows(const std::vector<WindowMetrics>& metrics) {
  double occupancy = 0.0;
  double offered = 0.0;
  for (const WindowMetrics& w : metrics) {
    occupancy += static_cast<double>(w.retry_queue_depth);
    offered +=
        static_cast<double>(w.rejected - w.permanently_rejected);
  }
  return offered == 0.0 ? 0.0 : occupancy / offered;
}

int rack_outage_demo() {
  constexpr std::size_t kFaultWindow = 2;
  constexpr std::size_t kMttr = 3;
  SimConfig cfg;
  cfg.windows = 10;  // fixed: the drain check matches the schedule below
  cfg.departure_probability = 0.0;
  cfg.scenario = ScenarioConfig::paper_scale(16);
  cfg.arrival_schedule = {35, 35, 35, 0, 0, 0, 0, 0, 0, 0};
  cfg.faults.scripted = {{kFaultWindow, /*leaf_level=*/true, /*index=*/0,
                          kMttr, /*decommission=*/false}};
  cfg.retry.max_attempts = 6;
  CloudSimulator sim(cfg, std::make_unique<RoundRobinAllocator>());
  const std::vector<WindowMetrics> metrics = sim.run(31);

  std::printf(
      "\n--- rack outage: leaf 0 down at window %zu, MTTR %zu ---\n"
      "%-3s %7s %7s %7s %7s %7s %7s %7s %7s %9s\n",
      kFaultWindow, kMttr, "w", "arrive", "reject", "running", "failed",
      "displcd", "evicted", "retried", "queue", "degrade");
  for (const WindowMetrics& w : metrics) {
    std::printf("%-3zu %7zu %7zu %7zu %7zu %7zu %7zu %7zu %7zu %9s\n",
                w.window, w.arrived, w.rejected, w.running,
                w.failed_servers, w.displaced_vms, w.evicted, w.retried,
                w.retry_queue_depth, degrade_level_name(w.degrade));
  }

  const WindowMetrics& outage = metrics[kFaultWindow];
  bool ok = outage.evicted > 0 && outage.displaced_vms > 0;
  for (const WindowMetrics& w : metrics) {
    ok = ok && w.vms_on_down_servers == 0;
  }
  // Queue must be empty from fault + MTTR + 2 onwards.
  for (std::size_t w = kFaultWindow + kMttr + 2; w < metrics.size(); ++w) {
    ok = ok && metrics[w].retry_queue_depth == 0;
  }
  const SimSummary summary = summarize(metrics);
  std::printf(
      "evicted=%zu retried=%zu permanently_rejected=%zu "
      "fault_events=%zu\n",
      summary.evicted, summary.retried, summary.permanently_rejected,
      summary.fault_events);
  std::printf("recovery check (evict + drain <= MTTR+2 windows): %s\n",
              ok ? "PASS" : "FAIL");
  // Deterministic digest for the telemetry ON/OFF CI diff: excludes every
  // wall-clock and counter-derived column by construction.
  std::printf("deterministic_fingerprint=%016llx\n",
              static_cast<unsigned long long>(
                  deterministic_fingerprint(metrics)));
  return ok ? 0 : 1;
}

void rate_mttr_sweep() {
  const std::vector<double> rates =
      fast_mode() ? std::vector<double>{0.00, 0.05}
                  : std::vector<double>{0.00, 0.02, 0.05, 0.10};
  const std::vector<std::size_t> mttrs =
      fast_mode() ? std::vector<std::size_t>{1, 3}
                  : std::vector<std::size_t>{1, 2, 3, 5};
  const std::size_t windows = sim_windows(fast_mode() ? 12 : 40);
  const std::size_t runs = fast_mode() ? 1 : 3;

  CsvWriter csv(bench::csv_dir() + "/fig_failure_recovery.csv",
                {"leaf_failure_rate", "mttr_windows", "metric", "value"});
  std::printf(
      "\n--- leaf failure rate x MTTR sweep (%zu windows, %zu runs) ---\n"
      "%6s %5s %10s %10s %10s %12s %12s\n",
      windows, runs, "rate", "mttr", "evicted", "perm_rej", "recovery_w",
      "downtime", "migration");
  for (double rate : rates) {
    for (std::size_t mttr : mttrs) {
      double evicted = 0.0;
      double permanent = 0.0;
      double recovery = 0.0;
      double downtime = 0.0;
      double migration = 0.0;
      for (std::size_t run = 0; run < runs; ++run) {
        SimConfig cfg;
        cfg.windows = windows;
        cfg.arrivals_per_window_mean = 12.0;
        cfg.departure_probability = 0.08;
        cfg.scenario = ScenarioConfig::paper_scale(16);
        cfg.faults.leaf_failure_probability = rate;
        cfg.faults.mttr_min_windows = mttr;
        cfg.faults.mttr_max_windows = mttr;
        cfg.retry.max_attempts = 4;
        CloudSimulator sim(cfg,
                           std::make_unique<FirstFitDecreasingAllocator>());
        const auto metrics = sim.run(20170529 + run);
        const SimSummary summary = summarize(metrics);
        const auto n = static_cast<double>(runs);
        evicted += static_cast<double>(summary.evicted) / n;
        permanent += static_cast<double>(summary.permanently_rejected) / n;
        recovery += mean_recovery_windows(metrics) / n;
        downtime += summary.downtime_cost / n;
        migration += summary.migration_cost / n;
      }
      std::printf("%6.2f %5zu %10.1f %10.1f %10.2f %12.2f %12.2f\n", rate,
                  mttr, evicted, permanent, recovery, downtime, migration);
      const auto cell = [&](const char* metric, double value) {
        char buffer[64];
        std::snprintf(buffer, sizeof(buffer), "%.6g", value);
        csv.add_row({std::to_string(rate), std::to_string(mttr), metric,
                     buffer});
      };
      cell("evicted", evicted);
      cell("permanently_rejected", permanent);
      cell("mean_recovery_windows", recovery);
      cell("downtime_cost", downtime);
      cell("migration_cost", migration);
    }
  }
  csv.close();
  std::printf("\ncsv: %s\n",
              (bench::csv_dir() + "/fig_failure_recovery.csv").c_str());
  std::printf(
      "Expected shape: eviction volume and downtime cost (Eq. 23) grow\n"
      "with the failure rate; longer MTTR stretches recovery latency and\n"
      "raises the migration bill (Eq. 26) as evacuations pile up.\n");
}

}  // namespace

int main() {
  std::printf("=== Failure injection & recovery (extension) ===\n");
  const int status = rack_outage_demo();
  rate_mttr_sweep();
  return status;
}
