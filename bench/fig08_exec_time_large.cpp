// Figure 8: average execution time, *many* resources (up to the paper's
// 800 servers / 1600 VMs).
//
// Paper's finding: constraint programming, Round Robin(*) and NSGA-III
// with the constraint-solver repair do not scale in resolution time;
// unmodified NSGA-II/III and NSGA-III+Tabu keep answering quickly.
// ((*) the paper lumps RR into the non-scaling set because its affinity
// bookkeeping degrades; our RR implementation scans at most m servers per
// VM, so its growth is visible but mild.)
//
// An algorithm whose mean at a size exceeds the per-run cap is skipped at
// larger sizes and shown as "> cap" — the non-scaling outcome without
// burning hours.
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace iaas;
  using namespace iaas::bench;

  std::printf("=== Fig. 8: average execution time, many resources ===\n");
  SweepConfig config;
  config.server_sizes = {100, 200, 400, 800};
  config.runs = 2;
  config.per_run_cap_seconds = 25.0;
  config.suite = paper_suite();
  config = apply_env(config);
  print_nsga_settings(config.suite.ea.nsga);

  const SweepResult result = run_sweep(config);
  print_metric_table(result, "Mean execution time (seconds)",
                     &CellStats::mean_seconds, 3,
                     csv_dir() + "/fig08_exec_time_large.csv");

  std::printf(
      "\nExpected shape (paper): ConstraintProgramming and NSGA-III+CP blow"
      "\nup with size; NSGA-III and NSGA-III+Tabu stay tractable.\n");
  return 0;
}
