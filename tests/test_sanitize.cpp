// sanitize_placement: converting raw algorithm output into a deployable
// (feasible) placement by rejecting violating VMs.
#include <gtest/gtest.h>

#include "algo/allocator.h"
#include "common/rng.h"
#include "model/constraint_checker.h"
#include "tests/test_util.h"

namespace iaas {
namespace {

using test::make_instance;
using test::make_random_instance;

TEST(Sanitize, FeasibleInputPassesThrough) {
  const Instance inst = make_instance(
      1, 2, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}});
  Placement p(2);
  p.assign(0, 0);
  p.assign(1, 1);
  EXPECT_EQ(sanitize_placement(inst, p), p);
}

TEST(Sanitize, OverloadShedsLargestFirst) {
  const Instance inst = make_instance(
      1, 1, {10.0, 10.0, 10.0},
      {{7.0, 1.0, 1.0}, {2.0, 1.0, 1.0}, {2.0, 1.0, 1.0}});
  Placement p(3);
  p.assign(0, 0);
  p.assign(1, 0);
  p.assign(2, 0);  // cpu 11 > 10
  const Placement s = sanitize_placement(inst, p);
  // Rejecting the 7-cpu VM alone restores feasibility and keeps two VMs.
  EXPECT_FALSE(s.is_assigned(0));
  EXPECT_TRUE(s.is_assigned(1));
  EXPECT_TRUE(s.is_assigned(2));
}

TEST(Sanitize, SameServerKeepsMajority) {
  const Instance inst = make_instance(
      1, 3, {10.0, 10.0, 10.0},
      {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}},
      {{RelationKind::kSameServer, {0, 1, 2}}});
  Placement p(3);
  p.assign(0, 1);
  p.assign(1, 1);
  p.assign(2, 2);  // odd one out
  const Placement s = sanitize_placement(inst, p);
  EXPECT_TRUE(s.is_assigned(0));
  EXPECT_TRUE(s.is_assigned(1));
  EXPECT_FALSE(s.is_assigned(2));
}

TEST(Sanitize, AntiAffinityDropsDuplicates) {
  const Instance inst = make_instance(
      1, 3, {10.0, 10.0, 10.0},
      {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}},
      {{RelationKind::kDifferentServers, {0, 1, 2}}});
  Placement p(3);
  p.assign(0, 0);
  p.assign(1, 0);
  p.assign(2, 1);
  const Placement s = sanitize_placement(inst, p);
  EXPECT_TRUE(s.is_assigned(0));
  EXPECT_FALSE(s.is_assigned(1));  // duplicate on server 0
  EXPECT_TRUE(s.is_assigned(2));
}

TEST(Sanitize, DifferentDatacentersDropsCoLocated) {
  const Instance inst = make_instance(
      2, 2, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}},
      {{RelationKind::kDifferentDatacenters, {0, 1}}});
  Placement p(2);
  p.assign(0, 0);
  p.assign(1, 1);  // same DC, different servers — still violating
  const Placement s = sanitize_placement(inst, p);
  EXPECT_EQ(s.assigned_count(), 1u);
}

TEST(Sanitize, OutOfRangeServerRejected) {
  const Instance inst =
      make_instance(1, 2, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}});
  Placement p(1);
  p.assign(0, 77);  // no such server
  const Placement s = sanitize_placement(inst, p);
  EXPECT_FALSE(s.is_assigned(0));
}

// Property: for arbitrary random raw placements the sanitized result is
// always feasible and never *adds* assignments.
class SanitizeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SanitizeProperty, AlwaysFeasibleNeverAdds) {
  const Instance inst = make_random_instance(GetParam(), 16, 48);
  const ConstraintChecker checker(inst);
  Rng rng(GetParam() * 7 + 1);
  for (int trial = 0; trial < 10; ++trial) {
    Placement raw(inst.n());
    for (std::size_t k = 0; k < inst.n(); ++k) {
      if (rng.bernoulli(0.9)) {
        raw.assign(k, static_cast<std::int32_t>(rng.uniform_index(inst.m())));
      }
    }
    const Placement s = sanitize_placement(inst, raw);
    EXPECT_TRUE(checker.check(s).feasible());
    for (std::size_t k = 0; k < inst.n(); ++k) {
      if (s.is_assigned(k)) {
        // Sanitize may only keep or reject, never re-place.
        EXPECT_EQ(s.server_of(k), raw.server_of(k));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SanitizeProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
}  // namespace iaas
