// Fault lifecycle (MTTR repairs, decommissions, correlated rack
// outages), the bounded retry queue, and the fabric's global-leaf
// helpers they are built on.
#include <gtest/gtest.h>

#include <set>

#include "sim/fault_model.h"
#include "sim/retry_queue.h"
#include "tests/test_util.h"
#include "topology/fabric.h"

namespace iaas {
namespace {

Fabric small_fabric() {
  FabricConfig fc;
  fc.datacenters = 2;
  fc.leaves_per_dc = 2;
  fc.servers_per_leaf = 4;
  fc.spines_per_dc = 2;
  fc.cores = 2;
  return Fabric(fc);
}

TEST(FabricLeafHelpers, GlobalLeafIndexingRoundTrips) {
  const Fabric fabric = small_fabric();
  ASSERT_EQ(fabric.leaf_count(), 4u);
  std::set<std::uint32_t> seen;
  for (std::uint32_t leaf = 0; leaf < fabric.leaf_count(); ++leaf) {
    const auto servers = fabric.servers_on_global_leaf(leaf);
    ASSERT_EQ(servers.size(), 4u);
    for (std::uint32_t j : servers) {
      EXPECT_EQ(fabric.global_leaf_of_server(j), leaf);
      EXPECT_TRUE(seen.insert(j).second) << "server on two leaves";
    }
  }
  // Every server accounted for exactly once.
  EXPECT_EQ(seen.size(), fabric.server_count());
}

TEST(FaultModel, ServerRepairsAfterMttr) {
  FaultConfig cfg;
  cfg.scripted = {{/*window=*/1, /*leaf_level=*/false, /*index=*/3,
                   /*mttr_windows=*/3, /*decommission=*/false}};
  const Fabric fabric = small_fabric();
  FaultModel model(cfg, fabric, 1);

  EXPECT_TRUE(model.advance(0).empty());
  EXPECT_FALSE(model.is_down(3));

  const auto events = model.advance(1);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FaultEventKind::kServerFailure);
  EXPECT_EQ(events[0].mttr_windows, 3u);
  EXPECT_TRUE(model.is_down(3));

  // Down for windows 1, 2, 3; repaired at the start of window 4.
  EXPECT_TRUE(model.advance(2).empty());
  EXPECT_TRUE(model.advance(3).empty());
  EXPECT_TRUE(model.is_down(3));
  const auto repair = model.advance(4);
  ASSERT_EQ(repair.size(), 1u);
  EXPECT_EQ(repair[0].kind, FaultEventKind::kRepair);
  EXPECT_EQ(repair[0].index, 3u);
  EXPECT_FALSE(model.is_down(3));
  EXPECT_EQ(model.down_count(), 0u);
}

TEST(FaultModel, DecommissionNeverReturns) {
  FaultConfig cfg;
  cfg.scripted = {{0, false, 5, 1, /*decommission=*/true}};
  const Fabric fabric = small_fabric();
  FaultModel model(cfg, fabric, 1);

  const auto events = model.advance(0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FaultEventKind::kDecommission);
  EXPECT_EQ(events[0].mttr_windows, 0u);
  for (std::size_t w = 1; w < 50; ++w) {
    EXPECT_TRUE(model.advance(w).empty());
  }
  EXPECT_TRUE(model.is_down(5));
  EXPECT_EQ(model.decommissioned_count(), 1u);
  EXPECT_EQ(model.down_count(), 1u);
}

TEST(FaultModel, LeafOutageTakesDownWholeRackTogether) {
  FaultConfig cfg;
  cfg.scripted = {{2, /*leaf_level=*/true, /*index=*/1, 2, false}};
  const Fabric fabric = small_fabric();
  FaultModel model(cfg, fabric, 1);

  model.advance(0);
  model.advance(1);
  const auto events = model.advance(2);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FaultEventKind::kLeafFailure);
  EXPECT_EQ(events[0].servers.size(), 4u);
  EXPECT_EQ(model.down_count(), 4u);
  for (std::uint32_t j : fabric.servers_on_global_leaf(1)) {
    EXPECT_TRUE(model.is_down(j));
  }
  // The rack comes back as one after the shared MTTR.
  const auto repairs = model.advance(4);
  EXPECT_EQ(repairs.size(), 4u);
  EXPECT_EQ(model.down_count(), 0u);
}

TEST(FaultModel, AlreadyDownServerNotDoubleCounted) {
  FaultConfig cfg;
  cfg.scripted = {{0, false, 2, 5, false},
                  {1, false, 2, 1, false},   // already down: no event
                  {1, true, 0, 1, false}};   // rack 0 contains server 2
  const Fabric fabric = small_fabric();
  FaultModel model(cfg, fabric, 1);

  EXPECT_EQ(model.advance(0).size(), 1u);
  const auto events = model.advance(1);
  // Only the leaf event, and it lists the three servers not yet down.
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FaultEventKind::kLeafFailure);
  EXPECT_EQ(events[0].servers.size(), 3u);
  EXPECT_EQ(model.down_count(), 4u);
}

TEST(FaultModel, RandomHistoryDeterministicPerSeed) {
  FaultConfig cfg;
  cfg.server_failure_probability = 0.10;
  cfg.leaf_failure_probability = 0.05;
  cfg.mttr_min_windows = 1;
  cfg.mttr_max_windows = 4;
  cfg.decommission_probability = 0.10;
  const Fabric fabric = small_fabric();
  FaultModel a(cfg, fabric, 99);
  FaultModel b(cfg, fabric, 99);
  FaultModel c(cfg, fabric, 100);
  bool histories_diverge = false;
  std::size_t total_events = 0;
  for (std::size_t w = 0; w < 64; ++w) {
    const auto ea = a.advance(w);
    const auto eb = b.advance(w);
    EXPECT_EQ(ea, eb) << "window " << w;
    total_events += ea.size();
    histories_diverge = histories_diverge || ea != c.advance(w);
  }
  EXPECT_GT(total_events, 0u);
  EXPECT_TRUE(histories_diverge);
  EXPECT_EQ(a.down_count(), b.down_count());
  EXPECT_EQ(a.decommissioned_count(), b.decommissioned_count());
}

TEST(FaultModel, MttrDrawsStayInRange) {
  FaultConfig cfg;
  cfg.server_failure_probability = 0.25;
  cfg.mttr_min_windows = 2;
  cfg.mttr_max_windows = 5;
  const Fabric fabric = small_fabric();
  FaultModel model(cfg, fabric, 7);
  for (std::size_t w = 0; w < 100; ++w) {
    for (const FaultEvent& e : model.advance(w)) {
      if (e.kind == FaultEventKind::kServerFailure) {
        EXPECT_GE(e.mttr_windows, 2u);
        EXPECT_LE(e.mttr_windows, 5u);
      }
    }
  }
}

TEST(RetryQueue, BackoffDoublesUpToCap) {
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.backoff_base_windows = 1;
  policy.backoff_cap_windows = 8;
  const RetryQueue queue(policy);
  EXPECT_EQ(queue.backoff_windows(1), 1u);
  EXPECT_EQ(queue.backoff_windows(2), 2u);
  EXPECT_EQ(queue.backoff_windows(3), 4u);
  EXPECT_EQ(queue.backoff_windows(4), 8u);
  EXPECT_EQ(queue.backoff_windows(5), 8u);  // capped
  EXPECT_EQ(queue.backoff_windows(60), 8u);  // no shift overflow
}

TEST(RetryQueue, OfferRespectsAttemptBudget) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  RetryQueue queue(policy);
  EXPECT_TRUE(queue.offer(test::make_vm({1, 1, 1}), 1, 0));
  EXPECT_TRUE(queue.offer(test::make_vm({1, 1, 1}), 2, 0));
  // Third failed attempt exhausts the budget: permanent rejection.
  EXPECT_FALSE(queue.offer(test::make_vm({1, 1, 1}), 3, 0));
  EXPECT_EQ(queue.size(), 2u);
}

TEST(RetryQueue, DisabledPolicyRejectsImmediately) {
  RetryQueue queue(RetryPolicy{});  // max_attempts = 0
  EXPECT_FALSE(queue.policy().enabled());
  EXPECT_FALSE(queue.offer(test::make_vm({1, 1, 1}), 1, 0));
  EXPECT_EQ(queue.size(), 0u);
}

TEST(RetryQueue, PopDueIsFifoAndHonoursBackoff) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.backoff_base_windows = 2;
  RetryQueue queue(policy);
  // First-attempt failures at window 0 -> ready at window 2.
  EXPECT_TRUE(queue.offer(test::make_vm({1, 0, 0}), 1, 0));
  EXPECT_TRUE(queue.offer(test::make_vm({2, 0, 0}), 1, 0));
  // Second-attempt failure at window 0 -> ready at window 4.
  EXPECT_TRUE(queue.offer(test::make_vm({3, 0, 0}), 2, 0));

  EXPECT_TRUE(queue.pop_due(1).empty());
  auto due = queue.pop_due(2);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_DOUBLE_EQ(due[0].vm.demand[0], 1.0);  // FIFO order
  EXPECT_DOUBLE_EQ(due[1].vm.demand[0], 2.0);
  EXPECT_EQ(queue.size(), 1u);
  due = queue.pop_due(4);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_DOUBLE_EQ(due[0].vm.demand[0], 3.0);
  EXPECT_EQ(due[0].attempts, 2u);
  EXPECT_EQ(queue.size(), 0u);
}

}  // namespace
}  // namespace iaas
