// Constraint verification (Eqs. 16-21) and the Fig. 5/6 helpers
// (exceedingDetection via overloaded_servers, isValidAllocation).
#include "model/constraint_checker.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace iaas {
namespace {

using test::make_instance;

TEST(ConstraintChecker, FeasibleEmptyPlacement) {
  const Instance inst =
      make_instance(1, 2, {10.0, 10.0, 10.0}, {{5.0, 5.0, 5.0}});
  const ConstraintChecker checker(inst);
  const ViolationReport report = checker.check(Placement(1));
  EXPECT_TRUE(report.feasible());
  EXPECT_EQ(report.rejected_vms, 1u);
  EXPECT_EQ(report.total(), 0u);
}

TEST(ConstraintChecker, CapacityViolationCountsPerAttribute) {
  const Instance inst = make_instance(
      1, 2, {10.0, 10.0, 10.0},
      {{8.0, 2.0, 2.0}, {8.0, 2.0, 2.0}});
  const ConstraintChecker checker(inst);
  Placement p(2);
  p.assign(0, 0);
  p.assign(1, 0);  // cpu 16 > 10, ram/disk 4 <= 10
  const ViolationReport report = checker.check(p);
  EXPECT_EQ(report.capacity_violations, 1u);
  EXPECT_EQ(report.relation_violations, 0u);
  EXPECT_EQ(report.overloaded_servers, (std::vector<std::uint32_t>{0}));
  EXPECT_FALSE(report.feasible());
}

TEST(ConstraintChecker, MultiAttributeOverloadCountsEach) {
  const Instance inst = make_instance(
      1, 1, {10.0, 10.0, 10.0}, {{11.0, 11.0, 2.0}});
  const ConstraintChecker checker(inst);
  Placement p(1);
  p.assign(0, 0);
  const ViolationReport report = checker.check(p);
  EXPECT_EQ(report.capacity_violations, 2u);  // cpu and ram
  EXPECT_EQ(report.overloaded_servers.size(), 1u);
}

TEST(ConstraintChecker, SameServerRelation) {
  const Instance inst = make_instance(
      1, 3, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}},
      {{RelationKind::kSameServer, {0, 1}}});
  const ConstraintChecker checker(inst);
  Placement p(2);
  p.assign(0, 0);
  p.assign(1, 0);
  EXPECT_TRUE(checker.check(p).feasible());
  p.assign(1, 1);
  const ViolationReport report = checker.check(p);
  EXPECT_EQ(report.relation_violations, 1u);
}

TEST(ConstraintChecker, SameDatacenterRelation) {
  const Instance inst = make_instance(
      2, 2, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}},
      {{RelationKind::kSameDatacenter, {0, 1}}});
  const ConstraintChecker checker(inst);
  Placement p(2);
  p.assign(0, 0);
  p.assign(1, 1);  // same DC (servers 0,1 in DC 0), different servers: OK
  EXPECT_TRUE(checker.check(p).feasible());
  p.assign(1, 2);  // DC 1
  EXPECT_EQ(checker.check(p).relation_violations, 1u);
}

TEST(ConstraintChecker, DifferentServersRelation) {
  const Instance inst = make_instance(
      1, 3, {10.0, 10.0, 10.0},
      {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}},
      {{RelationKind::kDifferentServers, {0, 1, 2}}});
  const ConstraintChecker checker(inst);
  Placement p(3);
  p.assign(0, 0);
  p.assign(1, 1);
  p.assign(2, 2);
  EXPECT_TRUE(checker.check(p).feasible());
  p.assign(2, 1);  // duplicate server
  EXPECT_EQ(checker.check(p).relation_violations, 1u);
}

TEST(ConstraintChecker, DifferentDatacentersRelation) {
  const Instance inst = make_instance(
      2, 2, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}},
      {{RelationKind::kDifferentDatacenters, {0, 1}}});
  const ConstraintChecker checker(inst);
  Placement p(2);
  p.assign(0, 0);  // DC 0
  p.assign(1, 2);  // DC 1
  EXPECT_TRUE(checker.check(p).feasible());
  p.assign(1, 1);  // also DC 0, different server: still a violation
  EXPECT_EQ(checker.check(p).relation_violations, 1u);
}

TEST(ConstraintChecker, RejectedMembersCannotViolateRelations) {
  const Instance inst = make_instance(
      1, 2, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}},
      {{RelationKind::kSameServer, {0, 1}}});
  const ConstraintChecker checker(inst);
  Placement p(2);
  p.assign(0, 0);  // peer rejected
  EXPECT_TRUE(checker.check(p).feasible());
  EXPECT_EQ(checker.check(p).rejected_vms, 1u);
}

TEST(ConstraintChecker, IsValidAllocationChecksCapacity) {
  const Instance inst = make_instance(
      1, 2, {10.0, 10.0, 10.0}, {{6.0, 1.0, 1.0}, {6.0, 1.0, 1.0}});
  const ConstraintChecker checker(inst);
  Placement p(2);
  Matrix<double> used;
  checker.compute_used(p, used);
  EXPECT_TRUE(checker.is_valid_allocation(p, used, 0, 0));
  p.assign(0, 0);
  checker.compute_used(p, used);
  EXPECT_FALSE(checker.is_valid_allocation(p, used, 1, 0));  // 12 > 10
  EXPECT_TRUE(checker.is_valid_allocation(p, used, 1, 1));
}

TEST(ConstraintChecker, IsValidAllocationNoIncrementWhenAlreadyThere) {
  const Instance inst =
      make_instance(1, 1, {10.0, 10.0, 10.0}, {{9.0, 9.0, 9.0}});
  const ConstraintChecker checker(inst);
  Placement p(1);
  p.assign(0, 0);
  Matrix<double> used;
  checker.compute_used(p, used);
  // Re-validating the current host must not double-count the demand.
  EXPECT_TRUE(checker.is_valid_allocation(p, used, 0, 0));
}

TEST(ConstraintChecker, IsValidAllocationHonoursRelations) {
  const Instance inst = make_instance(
      2, 2, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}},
      {{RelationKind::kDifferentDatacenters, {0, 1}}});
  const ConstraintChecker checker(inst);
  Placement p(2);
  p.assign(0, 0);  // DC 0
  Matrix<double> used;
  checker.compute_used(p, used);
  EXPECT_FALSE(checker.is_valid_allocation(p, used, 1, 1));  // DC 0
  EXPECT_TRUE(checker.is_valid_allocation(p, used, 1, 2));   // DC 1
}

TEST(ConstraintChecker, ComputeUsedAccumulates) {
  const Instance inst = make_instance(
      1, 2, {10.0, 10.0, 10.0}, {{2.0, 3.0, 4.0}, {1.0, 1.0, 1.0}});
  const ConstraintChecker checker(inst);
  Placement p(2);
  p.assign(0, 1);
  p.assign(1, 1);
  Matrix<double> used;
  checker.compute_used(p, used);
  EXPECT_DOUBLE_EQ(used(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(used(1, 1), 4.0);
  EXPECT_DOUBLE_EQ(used(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(used(0, 0), 0.0);
}

// Property: on generator-produced scenarios an all-rejected placement is
// always feasible, and single-VM placements never violate relations.
class CheckerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CheckerProperty, EmptyPlacementFeasible) {
  const Instance inst = test::make_random_instance(GetParam());
  const ConstraintChecker checker(inst);
  EXPECT_TRUE(checker.check(Placement(inst.n())).feasible());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckerProperty,
                         ::testing::Values(1u, 2u, 3u, 42u, 1234u));

}  // namespace
}  // namespace iaas
