// ILP formulation (Eqs. 4-21): structural checks and cross-validation of
// the independent encoding against ConstraintChecker / Evaluator.
#include "lp/lin_model.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "model/constraint_checker.h"
#include "model/objectives.h"
#include "tests/test_util.h"

namespace iaas {
namespace {

using test::make_instance;

TEST(LinModel, VariableCountIsXPlusY) {
  const Instance inst = make_instance(
      1, 3, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}});
  const LinModel model(inst);
  EXPECT_EQ(model.variable_count(), 3u * 2u + 3u);
}

TEST(LinModel, VariableHandlesDistinct) {
  const Instance inst = make_instance(
      1, 2, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}});
  const LinModel model(inst);
  EXPECT_NE(model.x(0, 0).index, model.x(0, 1).index);
  EXPECT_NE(model.x(0, 0).index, model.x(1, 0).index);
  EXPECT_NE(model.x(1, 1).index, model.y(0).index);
  EXPECT_LT(model.y(1).index, model.variable_count());
}

TEST(LinModel, FeasiblePlacementSatisfiesAllConstraints) {
  const Instance inst = make_instance(
      1, 2, {10.0, 10.0, 10.0}, {{4.0, 4.0, 4.0}, {4.0, 4.0, 4.0}},
      {{RelationKind::kDifferentServers, {0, 1}}});
  const LinModel model(inst);
  Placement p(2);
  p.assign(0, 0);
  p.assign(1, 1);
  EXPECT_EQ(model.violated_count(model.encode(p)), 0u);
}

TEST(LinModel, CapacityViolationDetected) {
  const Instance inst = make_instance(
      1, 2, {10.0, 10.0, 10.0}, {{8.0, 1.0, 1.0}, {8.0, 1.0, 1.0}});
  const LinModel model(inst);
  Placement p(2);
  p.assign(0, 0);
  p.assign(1, 0);
  EXPECT_GT(model.violated_count(model.encode(p)), 0u);
}

TEST(LinModel, RejectionBreaksAssignmentConstraint) {
  const Instance inst =
      make_instance(1, 1, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}});
  const LinModel model(inst);
  // Rejected VM: Eq. 17 (sum_j x = 1) cannot hold.
  EXPECT_EQ(model.violated_count(model.encode(Placement(1))), 1u);
}

TEST(LinModel, SameServerLinearisationMatchesChecker) {
  const Instance inst = make_instance(
      1, 3, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}},
      {{RelationKind::kSameServer, {0, 1}}});
  const LinModel model(inst);
  Placement together(2);
  together.assign(0, 1);
  together.assign(1, 1);
  EXPECT_EQ(model.violated_count(model.encode(together)), 0u);
  Placement apart(2);
  apart.assign(0, 0);
  apart.assign(1, 2);
  EXPECT_GT(model.violated_count(model.encode(apart)), 0u);
}

TEST(LinModel, ObjectiveMatchesEvaluatorLinearTerms) {
  // Low loads -> zero downtime; ILP objective must equal usage+migration.
  Instance inst = make_instance(
      1, 3, {100.0, 100.0, 100.0},
      {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}});
  inst.previous.assign(0, 0);
  inst.previous.assign(1, 0);
  const LinModel model(inst);
  Evaluator evaluator(inst);

  Placement p(3);
  p.assign(0, 0);  // stays
  p.assign(1, 2);  // migrates
  p.assign(2, 2);  // boots
  const ObjectiveVector obj = evaluator.objectives(p);
  ASSERT_DOUBLE_EQ(obj.downtime_cost, 0.0);
  EXPECT_NEAR(model.objective_value(model.encode(p)),
              obj.usage_cost + obj.migration_cost, 1e-9);
}

// Property: the ILP encoding and the ConstraintChecker agree on
// feasibility for random full placements of generated scenarios.
class LinModelConsistency : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LinModelConsistency, FeasibilityAgreesWithChecker) {
  const Instance inst = test::make_random_instance(GetParam(), 16, 24);
  const LinModel model(inst);
  const ConstraintChecker checker(inst);
  Rng rng(GetParam() * 31 + 7);
  for (int trial = 0; trial < 20; ++trial) {
    Placement p(inst.n());
    for (std::size_t k = 0; k < inst.n(); ++k) {
      p.assign(k, static_cast<std::int32_t>(rng.uniform_index(inst.m())));
    }
    const bool checker_feasible = checker.check(p).feasible();
    const bool model_feasible =
        model.violated_count(model.encode(p)) == 0;
    EXPECT_EQ(checker_feasible, model_feasible)
        << "trial " << trial << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinModelConsistency,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

}  // namespace
}  // namespace iaas
