// Fairness/welfare metric layer and the strategic-consumer workload
// mode: closed-form metric values, relabeling invariance, fail-loud
// scenario validation, rank-mask properties, and bit-identical sim
// fingerprints with strategic consumers enabled.
#include "model/fairness.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "algo/nsga_allocators.h"
#include "algo/round_robin.h"
#include "model/placement_state.h"
#include "sim/simulator.h"
#include "tests/test_util.h"
#include "workload/generator.h"
#include "workload/strategic.h"

namespace iaas {
namespace {

using test::make_instance;

// --- Jain's index, closed form ---

TEST(JainIndex, UniformSharesScoreOne) {
  const std::vector<double> shares = {0.25, 0.25, 0.25, 0.25};
  EXPECT_DOUBLE_EQ(jain_index(shares), 1.0);
}

TEST(JainIndex, SingleHogScoresOneOverN) {
  const std::vector<double> shares = {1.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_index(shares), 0.25);
  const std::vector<double> ten(10, 0.0);
  std::vector<double> hog = ten;
  hog[7] = 3.5;
  EXPECT_DOUBLE_EQ(jain_index(hog), 0.1);
}

TEST(JainIndex, EmptyAndAllZeroScoreOne) {
  EXPECT_DOUBLE_EQ(jain_index(std::vector<double>{}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index(std::vector<double>(5, 0.0)), 1.0);
}

TEST(JainIndex, ScaleInvariant) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> b = a;
  for (double& x : b) {
    x *= 100.0;
  }
  EXPECT_DOUBLE_EQ(jain_index(a), jain_index(b));
}

// --- compute_fairness, closed form ---
//
// 1 DC x 2 servers at capacity {10,10,10} (factor 1) -> fleet totals
// {20,20,20}.  Consumer 0 is honest (demand {4,4,4}, dominant size
// 4/20 = 0.2); consumer 1 reports {8,4,4} hiding a true {4,4,4}
// (reported dominant 0.4, actual 0.2).
Instance two_consumer_instance() {
  Instance inst = make_instance(1, 2, {10.0, 10.0, 10.0},
                                {{4.0, 4.0, 4.0}, {8.0, 4.0, 4.0}});
  inst.requests.vms[0].consumer = 0;
  inst.requests.vms[1].consumer = 1;
  inst.requests.vms[1].true_demand = {4.0, 4.0, 4.0};
  return inst;
}

TEST(ComputeFairness, BothServedIsPerfectlyFairButInefficient) {
  const Instance inst = two_consumer_instance();
  Placement p(2);
  p.assign(0, 0);
  p.assign(1, 1);
  const FairnessReport report = compute_fairness(inst, p);

  ASSERT_EQ(report.consumers.size(), 2u);
  EXPECT_EQ(report.strategic_consumers, 1u);
  EXPECT_EQ(report.strategic_vms, 1u);
  EXPECT_FALSE(report.consumers[0].strategic);
  EXPECT_TRUE(report.consumers[1].strategic);
  for (const ConsumerShare& share : report.consumers) {
    EXPECT_DOUBLE_EQ(share.requested, 0.2);
    EXPECT_DOUBLE_EQ(share.served, 0.2);
    EXPECT_DOUBLE_EQ(share.welfare, 1.0);
  }
  EXPECT_DOUBLE_EQ(report.jain, 1.0);
  EXPECT_DOUBLE_EQ(report.envy, 0.0);
  EXPECT_DOUBLE_EQ(report.honest_welfare, 1.0);
  EXPECT_DOUBLE_EQ(report.strategic_welfare, 1.0);
  // Served actual 0.4 against served reported 0.6: the inflated booking
  // wastes a third of what it reserved.
  EXPECT_DOUBLE_EQ(report.utilization_efficiency, 2.0 / 3.0);
}

TEST(ComputeFairness, RejectionShowsUpAsEnvyAndLostWelfare) {
  const Instance inst = two_consumer_instance();
  Placement p(2);
  p.assign(0, 0);  // consumer 1's VM is rejected
  const FairnessReport report = compute_fairness(inst, p);

  EXPECT_DOUBLE_EQ(report.consumers[0].welfare, 1.0);
  EXPECT_DOUBLE_EQ(report.consumers[1].welfare, 0.0);
  // Shares {0.2, 0} -> Jain = 1/2; envy = ((1-1) + (1-0)) / 2.
  EXPECT_DOUBLE_EQ(report.jain, 0.5);
  EXPECT_DOUBLE_EQ(report.envy, 0.5);
  EXPECT_DOUBLE_EQ(report.honest_welfare, 1.0);
  EXPECT_DOUBLE_EQ(report.strategic_welfare, 0.0);
  // Nothing misreported lands on a server: only the honest VM counts.
  EXPECT_DOUBLE_EQ(report.utilization_efficiency, 1.0);
}

TEST(ComputeFairness, EmptyPlacementIsVacuouslyFair) {
  Instance inst = make_instance(1, 2, {10.0, 10.0, 10.0}, {});
  const FairnessReport report = compute_fairness(inst, Placement(0));
  EXPECT_TRUE(report.consumers.empty());
  EXPECT_DOUBLE_EQ(report.jain, 1.0);
  EXPECT_DOUBLE_EQ(report.envy, 0.0);
  EXPECT_DOUBLE_EQ(report.utilization_efficiency, 1.0);
  EXPECT_DOUBLE_EQ(report.energy_cost, 0.0);
}

// --- energy model, closed form ---

TEST(EnergyCost, IdleOnlyModelCountsPoweredServers) {
  // idle_fraction 1 makes the load term vanish: energy is exactly
  // watts_per_core * cpu_capacity per powered server.
  const Instance inst = two_consumer_instance();
  FairnessConfig config;
  config.energy.idle_fraction = 1.0;
  config.energy.watts_per_core = 10.0;

  Placement both(2);
  both.assign(0, 0);
  both.assign(1, 1);
  EXPECT_DOUBLE_EQ(compute_fairness(inst, both, config).energy_cost, 200.0);

  Placement packed(2);  // both VMs on server 0: server 1 powers off
  packed.assign(0, 0);
  packed.assign(1, 0);
  EXPECT_DOUBLE_EQ(compute_fairness(inst, packed, config).energy_cost, 100.0);

  EXPECT_DOUBLE_EQ(compute_fairness(inst, Placement(2), config).energy_cost,
                   0.0);
}

TEST(EnergyCost, LoadTermRespondsToReportedDemand) {
  // With idle_fraction < 1, a hotter server draws more; the draw is
  // bounded by the all-idle floor and the full-load peak.
  const Instance inst = two_consumer_instance();
  FairnessConfig config;
  config.energy.idle_fraction = 0.4;
  config.energy.watts_per_core = 10.0;

  Placement both(2);
  both.assign(0, 0);
  both.assign(1, 1);
  const double energy = compute_fairness(inst, both, config).energy_cost;
  EXPECT_GT(energy, 2 * 10.0 * 10.0 * 0.4);  // above the idle floor
  EXPECT_LT(energy, 2 * 10.0 * 10.0);        // below dual full load
}

// --- relabeling invariance ---

// Metrics must not depend on which integers name the consumers or in
// which order the VMs arrive: permute both and compare.
TEST(ComputeFairness, InvariantUnderConsumerAndVmRelabeling) {
  ScenarioConfig cfg = ScenarioConfig::paper_scale(16);
  cfg.vms = 24;
  cfg.consumers = 6;
  cfg.strategic.strategic_fraction = 0.5;
  cfg.strategic.profiles = default_strategy_profiles();
  Instance inst = ScenarioGenerator(cfg).generate(23);

  // Deterministic placement: round-robin VMs over servers.
  Placement p(inst.n());
  for (std::size_t k = 0; k < inst.n(); ++k) {
    if (k % 5 != 4) {  // leave every fifth VM rejected
      p.assign(k, static_cast<std::uint32_t>(k % inst.m()));
    }
  }
  const FairnessReport base = compute_fairness(inst, p);

  // Relabeled copy: consumer c -> 1000 - 3c, VM order reversed.
  Instance relabeled = ScenarioGenerator(cfg).generate(23);
  const std::size_t n = relabeled.n();
  std::reverse(relabeled.requests.vms.begin(), relabeled.requests.vms.end());
  for (PlacementConstraint& c : relabeled.requests.constraints) {
    for (std::uint32_t& k : c.vms) {
      k = static_cast<std::uint32_t>(n - 1) - k;
    }
    std::sort(c.vms.begin(), c.vms.end());
  }
  for (VmRequest& vm : relabeled.requests.vms) {
    vm.consumer = 1000 - 3 * vm.consumer;
  }
  Placement q(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t original = n - 1 - k;
    if (p.is_assigned(original)) {
      q.assign(k, static_cast<std::uint32_t>(p.server_of(original)));
    }
  }
  const FairnessReport moved = compute_fairness(relabeled, q);

  EXPECT_NEAR(moved.jain, base.jain, 1e-12);
  EXPECT_NEAR(moved.envy, base.envy, 1e-12);
  EXPECT_NEAR(moved.utilization_efficiency, base.utilization_efficiency,
              1e-12);
  EXPECT_NEAR(moved.honest_welfare, base.honest_welfare, 1e-12);
  EXPECT_NEAR(moved.strategic_welfare, base.strategic_welfare, 1e-12);
  EXPECT_NEAR(moved.energy_cost, base.energy_cost, 1e-12);
  EXPECT_EQ(moved.strategic_consumers, base.strategic_consumers);
  EXPECT_EQ(moved.strategic_vms, base.strategic_vms);

  // The multiset of per-consumer welfare survives the renaming.
  std::vector<double> before;
  std::vector<double> after;
  for (const ConsumerShare& share : base.consumers) {
    before.push_back(share.welfare);
  }
  for (const ConsumerShare& share : moved.consumers) {
    after.push_back(share.welfare);
  }
  std::sort(before.begin(), before.end());
  std::sort(after.begin(), after.end());
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(after[i], before[i], 1e-12);
  }
}

// --- fail-loud scenario validation ---

TEST(ValidateScenario, AcceptsPaperScaleAndDefaultProfiles) {
  EXPECT_TRUE(validate_scenario(ScenarioConfig::paper_scale(32)).empty());
  ScenarioConfig cfg = ScenarioConfig::paper_scale(32);
  cfg.consumers = 8;
  cfg.strategic.strategic_fraction = 0.25;
  cfg.strategic.profiles = default_strategy_profiles();
  EXPECT_TRUE(validate_scenario(cfg).empty());
}

bool any_finding_contains(const std::vector<std::string>& findings,
                          const std::string& needle) {
  return std::any_of(findings.begin(), findings.end(),
                     [&needle](const std::string& finding) {
                       return finding.find(needle) != std::string::npos;
                     });
}

TEST(ValidateScenario, RejectsBadStrategicKnobs) {
  ScenarioConfig good = ScenarioConfig::paper_scale(32);
  good.consumers = 8;
  good.strategic.strategic_fraction = 0.25;
  good.strategic.profiles = default_strategy_profiles();

  {
    ScenarioConfig cfg = good;
    cfg.strategic.strategic_fraction = -0.1;
    EXPECT_TRUE(any_finding_contains(validate_scenario(cfg),
                                     "strategic_fraction must not be"));
  }
  {
    ScenarioConfig cfg = good;
    cfg.strategic.strategic_fraction = 1.5;
    EXPECT_TRUE(any_finding_contains(validate_scenario(cfg),
                                     "must not exceed 1"));
  }
  {
    ScenarioConfig cfg = good;
    cfg.consumers = 0;
    EXPECT_TRUE(any_finding_contains(validate_scenario(cfg),
                                     "require consumers > 0"));
  }
  {
    ScenarioConfig cfg = good;
    cfg.strategic.profiles.clear();
    EXPECT_TRUE(any_finding_contains(validate_scenario(cfg),
                                     "empty strategy profile set"));
  }
  {
    ScenarioConfig cfg = good;
    cfg.strategic.profiles[0].inflation_min = 0.8;
    EXPECT_TRUE(any_finding_contains(validate_scenario(cfg),
                                     "inflation_min must be >= 1"));
  }
  {
    ScenarioConfig cfg = good;
    cfg.strategic.profiles[1].inflation_max =
        cfg.strategic.profiles[1].inflation_min - 0.1;
    EXPECT_TRUE(any_finding_contains(validate_scenario(cfg),
                                     "inflation_max must be >="));
  }
  {
    ScenarioConfig cfg = good;
    cfg.strategic.profiles[0].pad_anti_affinity_probability = 1.2;
    EXPECT_TRUE(any_finding_contains(validate_scenario(cfg),
                                     "pad_anti_affinity_probability"));
  }
  {
    ScenarioConfig cfg = good;
    cfg.strategic.profiles[0].pad_group_size = 1;
    EXPECT_TRUE(any_finding_contains(validate_scenario(cfg),
                                     "pad_group_size"));
  }
  {
    ScenarioConfig cfg = good;
    cfg.strategic.profiles[2].burst_probability = -0.5;
    EXPECT_TRUE(any_finding_contains(validate_scenario(cfg),
                                     "burst_probability"));
  }
  {
    ScenarioConfig cfg = good;
    cfg.strategic.profiles[2].burst_multiplier = 0.5;
    EXPECT_TRUE(any_finding_contains(validate_scenario(cfg),
                                     "burst_multiplier must be >= 1"));
  }
}

TEST(ValidateScenario, RejectsBadBaseDistribution) {
  {
    ScenarioConfig cfg = ScenarioConfig::paper_scale(32);
    cfg.factor_min = 0.0;
    EXPECT_TRUE(
        any_finding_contains(validate_scenario(cfg), "factor range"));
  }
  {
    ScenarioConfig cfg = ScenarioConfig::paper_scale(32);
    cfg.constrained_fraction = -0.2;
    EXPECT_TRUE(any_finding_contains(validate_scenario(cfg),
                                     "constrained_fraction"));
  }
  {
    ScenarioConfig cfg = ScenarioConfig::paper_scale(32);
    cfg.group_size_min = 1;
    EXPECT_TRUE(any_finding_contains(validate_scenario(cfg),
                                     "relationship groups"));
  }
}

TEST(ValidateScenarioDeathTest, GeneratorAbortsOnFirstFinding) {
  ScenarioConfig cfg = ScenarioConfig::paper_scale(32);
  cfg.consumers = 8;
  cfg.strategic.strategic_fraction = 0.25;  // enabled, but no profiles
  EXPECT_DEATH({ ScenarioGenerator gen(cfg); }, "strategy profile set");
}

// --- strategic mask properties ---

std::size_t mask_count(const std::vector<char>& mask) {
  return static_cast<std::size_t>(
      std::count(mask.begin(), mask.end(), static_cast<char>(1)));
}

TEST(StrategicMask, ExactRankCountAtEveryFraction) {
  StrategicConfig config;
  config.profiles = default_strategy_profiles();
  const std::uint32_t n = 16;
  for (double fraction : {0.0, 0.01, 0.1, 0.25, 0.5, 0.99, 1.0}) {
    config.strategic_fraction = fraction;
    const std::vector<char> mask = strategic_consumer_mask(config, n);
    const std::size_t expected =
        fraction > 0.0
            ? std::min<std::size_t>(
                  n, static_cast<std::size_t>(std::ceil(fraction * n)))
            : 0;
    EXPECT_EQ(mask_count(mask), expected) << "fraction " << fraction;
    if (fraction > 0.0) {
      EXPECT_GE(mask_count(mask), 1u);  // any positive fraction recruits
    }
  }
}

TEST(StrategicMask, SetsAreNestedAsTheFractionGrows) {
  StrategicConfig config;
  config.profiles = default_strategy_profiles();
  const std::uint32_t n = 24;
  std::vector<char> previous(n, 0);
  for (double fraction : {0.1, 0.25, 0.5, 0.75, 1.0}) {
    config.strategic_fraction = fraction;
    const std::vector<char> mask = strategic_consumer_mask(config, n);
    for (std::uint32_t c = 0; c < n; ++c) {
      if (previous[c]) {
        EXPECT_TRUE(mask[c]) << "consumer " << c << " dropped at fraction "
                             << fraction;
      }
    }
    previous = mask;
  }
}

TEST(StrategicMask, DeterministicAndSeedSensitive) {
  StrategicConfig config;
  config.strategic_fraction = 0.5;
  config.profiles = default_strategy_profiles();
  const std::vector<char> a = strategic_consumer_mask(config, 32);
  const std::vector<char> b = strategic_consumer_mask(config, 32);
  EXPECT_EQ(a, b);
  config.strategy_seed ^= 0xDEADBEEFULL;
  const std::vector<char> c = strategic_consumer_mask(config, 32);
  EXPECT_EQ(mask_count(c), mask_count(a));  // same size...
  EXPECT_NE(c, a);                          // ...different members
}

// --- sim-level fairness columns and fingerprint invariance ---

SimConfig strategic_sim(double fraction) {
  SimConfig cfg;
  cfg.windows = 4;
  cfg.arrivals_per_window_mean = 8.0;
  cfg.departure_probability = 0.15;
  cfg.scenario = ScenarioConfig::paper_scale(16);
  cfg.scenario.vms = 0;
  cfg.scenario.consumers = 6;
  cfg.scenario.strategic.strategic_fraction = fraction;
  cfg.scenario.strategic.profiles = default_strategy_profiles();
  cfg.retry.max_attempts = 2;
  return cfg;
}

TEST(SimFairness, ColumnsPopulatedOnlyWhenConsumersExist) {
  CloudSimulator with(strategic_sim(0.5),
                      std::make_unique<RoundRobinAllocator>());
  bool any_window = false;
  for (const WindowMetrics& row : with.run(3)) {
    if (row.fairness.consumers == 0) {  // empty window: block absent
      continue;
    }
    any_window = true;
    EXPECT_GT(row.fairness.consumers, 0u);
    EXPECT_GE(row.fairness.jain_index, 0.0);
    EXPECT_LE(row.fairness.jain_index, 1.0 + 1e-12);
    EXPECT_GE(row.fairness.long_term_jain, 0.0);
    EXPECT_LE(row.fairness.long_term_jain, 1.0 + 1e-12);
    EXPECT_GE(row.fairness.energy_cost, 0.0);
  }
  EXPECT_TRUE(any_window);

  SimConfig legacy = strategic_sim(0.0);
  legacy.scenario.consumers = 0;
  legacy.scenario.strategic.strategic_fraction = 0.0;
  CloudSimulator without(legacy, std::make_unique<RoundRobinAllocator>());
  for (const WindowMetrics& row : without.run(3)) {
    EXPECT_EQ(row.fairness.consumers, 0u);  // block stays absent
  }
}

TEST(SimFairness, StrategicConsumersActuallyMisreport) {
  CloudSimulator sim(strategic_sim(0.5),
                     std::make_unique<RoundRobinAllocator>());
  std::size_t strategic_vms = 0;
  for (const WindowMetrics& row : sim.run(3)) {
    strategic_vms += row.fairness.strategic_vms;
  }
  EXPECT_GT(strategic_vms, 0u);
}

std::uint64_t strategic_fingerprint(std::size_t threads,
                                    std::uint64_t seed) {
  EaAllocatorOptions options;
  options.nsga.population_size = 16;
  options.nsga.max_evaluations = 320;
  options.nsga.reference_divisions = 4;
  options.nsga.threads = threads;
  CloudSimulator sim(strategic_sim(0.25),
                     std::make_unique<Nsga3TabuAllocator>(options));
  return deterministic_fingerprint(sim.run(seed));
}

TEST(SimFairness, FingerprintBitIdenticalAcrossThreadCounts) {
  const std::uint64_t serial = strategic_fingerprint(1, 17);
  EXPECT_EQ(strategic_fingerprint(2, 17), serial);
  EXPECT_EQ(strategic_fingerprint(4, 17), serial);
  EXPECT_EQ(strategic_fingerprint(1, 17), serial);
  EXPECT_NE(strategic_fingerprint(1, 18), serial);
}

TEST(SimFairness, FingerprintSeesTheStrategicFraction) {
  // The fairness block is hashed: turning misreporting on must move the
  // digest even though the honest workload stream is identical.
  EaAllocatorOptions options;
  options.nsga.population_size = 16;
  options.nsga.max_evaluations = 320;
  options.nsga.reference_divisions = 4;
  options.nsga.threads = 1;
  CloudSimulator honest(strategic_sim(0.0),
                        std::make_unique<Nsga3TabuAllocator>(options));
  CloudSimulator gamed(strategic_sim(0.5),
                       std::make_unique<Nsga3TabuAllocator>(options));
  EXPECT_NE(deterministic_fingerprint(honest.run(17)),
            deterministic_fingerprint(gamed.run(17)));
}

}  // namespace
}  // namespace iaas
