// ShardPlan partitioning, the sharded allocator (concurrent per-shard EA
// runs + cross-shard rebalance), and the sharded steady-state driver:
// determinism across thread counts, rebalance recovery invariants, and
// the trace JSON round trip of the new shard/admission columns.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "algo/sharded_allocator.h"
#include "io/trace_json.h"
#include "model/objectives.h"
#include "sim/simulator.h"
#include "tests/test_util.h"
#include "topology/shard_plan.h"
#include "workload/generator.h"

namespace iaas {
namespace {

Fabric make_fabric(std::uint32_t datacenters, std::uint32_t leaves_per_dc,
                   std::uint32_t servers_per_leaf) {
  FabricConfig cfg;
  cfg.datacenters = datacenters;
  cfg.leaves_per_dc = leaves_per_dc;
  cfg.servers_per_leaf = servers_per_leaf;
  return Fabric(cfg);
}

// --- ShardPlan -----------------------------------------------------------

TEST(ShardPlan, TilesEveryServerExactlyOnce) {
  for (const std::uint32_t shards : {1u, 2u, 3u, 5u, 7u, 64u}) {
    const Fabric fabric = make_fabric(3, 4, 2);
    const ShardPlan plan(fabric, shards);
    ASSERT_GE(plan.shard_count(), 1u);
    ASSERT_LE(plan.shard_count(), fabric.leaf_count());

    std::uint32_t next_leaf = 0;
    std::uint32_t next_server = 0;
    for (std::uint32_t s = 0; s < plan.shard_count(); ++s) {
      const ShardSlice& slice = plan.slice(s);
      EXPECT_EQ(slice.leaf_begin, next_leaf);
      EXPECT_GT(slice.leaf_end, slice.leaf_begin);  // no empty shard
      EXPECT_EQ(slice.server_begin,
                slice.leaf_begin * fabric.config().servers_per_leaf);
      EXPECT_EQ(slice.server_end,
                slice.leaf_end * fabric.config().servers_per_leaf);
      EXPECT_EQ(slice.server_begin, next_server);
      next_leaf = slice.leaf_end;
      next_server = slice.server_end;
    }
    EXPECT_EQ(next_leaf, fabric.leaf_count());
    EXPECT_EQ(next_server, fabric.server_count());

    // Ownership and the local<->global translation agree with the tiling.
    for (std::uint32_t j = 0; j < fabric.server_count(); ++j) {
      const std::uint32_t s = plan.shard_of_server(j);
      const ShardSlice& slice = plan.slice(s);
      ASSERT_GE(j, slice.server_begin);
      ASSERT_LT(j, slice.server_end);
      EXPECT_EQ(plan.global_server(s, plan.local_server(s, j)), j);
    }
  }
}

TEST(ShardPlan, ClampsShardCountToLeafCount) {
  const Fabric fabric = make_fabric(2, 3, 4);  // 6 leaves
  EXPECT_EQ(ShardPlan(fabric, 0).shard_count(), 1u);
  EXPECT_EQ(ShardPlan(fabric, 100).shard_count(), 6u);
  const ShardPlan max_plan(fabric, 100);
  for (std::uint32_t s = 0; s < max_plan.shard_count(); ++s) {
    EXPECT_EQ(max_plan.slice(s).leaf_end - max_plan.slice(s).leaf_begin, 1u);
  }
}

TEST(ShardPlan, WholeDatacenterArmKeepsDcSemantics) {
  const Fabric fabric = make_fabric(5, 2, 4);
  const ShardPlan plan(fabric, 3);  // 3 shards over 5 DCs
  ASSERT_EQ(plan.shard_count(), 3u);
  std::uint32_t next_dc = 0;
  for (std::uint32_t s = 0; s < plan.shard_count(); ++s) {
    const ShardSlice& slice = plan.slice(s);
    EXPECT_TRUE(slice.whole_datacenters);
    EXPECT_EQ(slice.dc_begin, next_dc);
    next_dc = slice.dc_end;
    // Block sizes differ by at most one DC (floor boundaries).
    const std::uint32_t dcs = slice.datacenter_count();
    EXPECT_GE(dcs, 5u / 3u);
    EXPECT_LE(dcs, 5u / 3u + 1u);
    // The slice fabric regenerates exactly this server range.
    const Fabric sliced(plan.slice_fabric(s));
    EXPECT_EQ(sliced.server_count(), slice.server_count());
    EXPECT_EQ(sliced.datacenter_count(), dcs);
  }
  EXPECT_EQ(next_dc, 5u);
  // Floor boundaries 0,1,3,5: shard 0 holds one DC, shard 1 is the
  // first with two.
  EXPECT_EQ(plan.first_multi_dc_shard(), 1);
}

TEST(ShardPlan, OversubscribedArmSplitsWithinDatacenters) {
  const Fabric fabric = make_fabric(2, 4, 2);
  const ShardPlan plan(fabric, 6);  // 3 shards per DC
  ASSERT_EQ(plan.shard_count(), 6u);
  for (std::uint32_t s = 0; s < plan.shard_count(); ++s) {
    const ShardSlice& slice = plan.slice(s);
    EXPECT_FALSE(slice.whole_datacenters);
    EXPECT_EQ(slice.datacenter_count(), 1u);  // never straddles a DC
    const FabricConfig cfg = plan.slice_fabric(s);
    EXPECT_EQ(cfg.datacenters, 1u);
    EXPECT_EQ(cfg.leaves_per_dc, slice.leaf_end - slice.leaf_begin);
  }
  EXPECT_EQ(plan.first_multi_dc_shard(), -1);
}

TEST(ShardPlan, SingleShardCoversEverything) {
  const Fabric fabric = make_fabric(3, 2, 4);
  const ShardPlan plan(fabric, 1);
  ASSERT_EQ(plan.shard_count(), 1u);
  EXPECT_EQ(plan.slice(0).server_count(), fabric.server_count());
  EXPECT_TRUE(plan.slice(0).whole_datacenters);
  EXPECT_EQ(plan.first_multi_dc_shard(), 0);
}

// --- ShardedAllocator ----------------------------------------------------

ShardedAllocatorOptions lean_options(std::uint32_t shards,
                                     std::size_t threads) {
  ShardedAllocatorOptions options;
  options.shard_count = shards;
  options.threads = threads;
  options.suite.ea.nsga.population_size = 16;
  options.suite.ea.nsga.max_evaluations = 320;
  options.suite.ea.nsga.reference_divisions = 4;
  return options;
}

TEST(ShardedAllocator, FeasiblePlacementAndConsistentStats) {
  // Heavy load (4 VMs per server) forces per-shard rejections, so the
  // rebalance pass has real work.
  const Instance inst = test::make_random_instance(77, 32, 128);
  ShardedAllocator allocator(lean_options(4, 1));
  const AllocationResult result = allocator.allocate(inst, 5);

  EXPECT_EQ(result.shard.shard_count, 4u);
  EXPECT_GE(result.shard.max_shard_vms, result.shard.min_shard_vms);
  EXPECT_GT(result.shard.max_shard_vms, 0u);
  // The rebalance ledger balances exactly: every recovered VM came out
  // of the pre-rebalance rejection pool.
  EXPECT_EQ(result.rejected,
            result.shard.pre_rejections - result.shard.rebalance_placements);
  EXPECT_LE(result.shard.migrations, result.shard.rebalance_placements);

  // Sanitized + rebalanced: the deployed placement stays feasible.
  Evaluator evaluator(inst);
  const Evaluation check = evaluator.evaluate(result.placement);
  EXPECT_EQ(check.violations.total(), 0u);
  EXPECT_EQ(check.violations.rejected_vms, result.rejected);
  EXPECT_DOUBLE_EQ(check.objectives.aggregate(),
                   result.objectives.aggregate());
}

TEST(ShardedAllocator, RebalanceRecoversShardRejections) {
  // 2 shards over 2 DCs: every shard is single-DC, so different-DC
  // groups cannot be routed to any shard and enter the merge as
  // pre-rejections — deterministic work for the global rebalance pass.
  std::vector<std::vector<double>> demands(16, {1.0, 1.0});
  std::vector<PlacementConstraint> constraints;
  constraints.push_back({RelationKind::kDifferentDatacenters, {0, 1}});
  constraints.push_back({RelationKind::kDifferentDatacenters, {4, 5}});
  constraints.push_back({RelationKind::kDifferentDatacenters, {8, 9}});
  const Instance inst = test::make_instance(2, 8, {10.0, 10.0}, demands,
                                            std::move(constraints));
  ShardedAllocator with(lean_options(2, 1));
  const AllocationResult result = with.allocate(inst, 9);
  ASSERT_GT(result.shard.pre_rejections, 0u);
  EXPECT_GT(result.shard.rebalance_placements, 0u);
  EXPECT_LT(result.rejected, result.shard.pre_rejections);

  // Rebalance off: the pre-rejections stay rejected.
  ShardedAllocatorOptions no_rebalance = lean_options(2, 1);
  no_rebalance.rebalance = false;
  ShardedAllocator without(no_rebalance);
  const AllocationResult raw = without.allocate(inst, 9);
  EXPECT_EQ(raw.rejected, raw.shard.pre_rejections);
  EXPECT_EQ(raw.shard.rebalance_placements, 0u);
  EXPECT_EQ(raw.shard.migrations, 0u);
}

TEST(ShardedAllocator, BitIdenticalAcrossThreadCounts) {
  // The tentpole determinism contract: for a FIXED shard count the
  // result is bit-identical at any thread count (concurrent shard runs
  // + nested offspring parallelism included).
  const Instance inst = test::make_random_instance(42, 24, 48);
  for (const std::uint32_t shards : {1u, 2u, 4u}) {
    std::vector<AllocationResult> results;
    for (const std::size_t threads : {1u, 2u, 4u}) {
      ShardedAllocator allocator(lean_options(shards, threads));
      results.push_back(allocator.allocate(inst, 13));
    }
    for (std::size_t i = 1; i < results.size(); ++i) {
      EXPECT_EQ(results[i].placement.genes(), results[0].placement.genes())
          << shards << " shards";
      EXPECT_EQ(results[i].rejected, results[0].rejected);
      EXPECT_DOUBLE_EQ(results[i].objectives.aggregate(),
                       results[0].objectives.aggregate());
      EXPECT_EQ(results[i].shard.pre_rejections,
                results[0].shard.pre_rejections);
      EXPECT_EQ(results[i].shard.rebalance_placements,
                results[0].shard.rebalance_placements);
      EXPECT_EQ(results[i].shard.migrations, results[0].shard.migrations);
    }
  }
  // And the digest actually sees the run: another seed diverges.
  ShardedAllocator a(lean_options(2, 1));
  ShardedAllocator b(lean_options(2, 1));
  EXPECT_NE(a.allocate(inst, 13).placement.genes(),
            b.allocate(inst, 14).placement.genes());
}

TEST(ShardedAllocator, WarmStartFrontExportsGlobalGenes) {
  const Instance inst = test::make_random_instance(3, 16, 32);
  ShardedAllocator allocator(lean_options(2, 1));
  ASSERT_TRUE(allocator.seed_next_run({}));  // arm export, empty seed
  const AllocationResult first = allocator.allocate(inst, 21);
  ASSERT_FALSE(first.front_genes.empty());
  for (const std::vector<std::int32_t>& genes : first.front_genes) {
    ASSERT_EQ(genes.size(), inst.n());
    for (const std::int32_t g : genes) {
      EXPECT_GE(g, Placement::kRejected);
      EXPECT_LT(g, static_cast<std::int32_t>(inst.m()));
    }
  }
  // Entry 0 is the deployed placement (the guaranteed-feasible seed).
  EXPECT_EQ(first.front_genes.front(), first.placement.genes());

  // Feeding the front back warm-starts the next call without changing
  // the result's shape contract.
  ASSERT_TRUE(allocator.seed_next_run(first.front_genes));
  const AllocationResult second = allocator.allocate(inst, 22);
  ASSERT_FALSE(second.front_genes.empty());
  EXPECT_EQ(second.front_genes.front().size(), inst.n());
}

TEST(ShardedAllocator, RoutesDifferentDcGroupsToMultiDcShards) {
  // 2 DCs, 2 shards -> every shard is single-DC, so different-DC groups
  // skip the shard stage and are placed by the rebalance pass on the
  // global state (where DC identities are real).  The result must still
  // be feasible with those groups satisfied.
  std::vector<std::vector<double>> demands(12, {1.0, 1.0});
  std::vector<PlacementConstraint> constraints;
  constraints.push_back(
      {RelationKind::kDifferentDatacenters, {0, 1}});
  constraints.push_back(
      {RelationKind::kDifferentDatacenters, {2, 3}});
  Instance inst = test::make_instance(2, 8, {10.0, 10.0}, demands,
                                      std::move(constraints));
  ShardedAllocator allocator(lean_options(2, 1));
  const AllocationResult result = allocator.allocate(inst, 7);
  EXPECT_EQ(result.rejected, 0u);
  Evaluator evaluator(inst);
  EXPECT_EQ(evaluator.evaluate(result.placement).violations.total(), 0u);
  const Fabric& fabric = inst.infra.fabric();
  for (const std::size_t k : {0u, 2u}) {
    const std::int32_t a = result.placement.server_of(k);
    const std::int32_t b = result.placement.server_of(k + 1);
    ASSERT_GE(a, 0);
    ASSERT_GE(b, 0);
    EXPECT_NE(fabric.datacenter_of_server(static_cast<std::uint32_t>(a)),
              fabric.datacenter_of_server(static_cast<std::uint32_t>(b)));
  }
}

// --- sharded steady-state driver -----------------------------------------

SimConfig sharded_sim_config() {
  SimConfig cfg;
  cfg.windows = 5;
  cfg.departure_probability = 0.2;
  cfg.scenario = ScenarioConfig::paper_scale(32, 4);
  cfg.arrival_schedule = {18, 6};  // bursty: exercises the admission queue
  cfg.max_admissions_per_window = 12;
  cfg.admission_queue_limit = 40;
  cfg.retry.max_attempts = 2;
  cfg.warm_start_front = true;
  return cfg;
}

std::vector<WindowMetrics> sharded_sim_run(std::size_t threads,
                                           std::uint64_t seed) {
  ShardedAllocatorOptions options = lean_options(4, threads);
  options.suite.ea.nsga.collect_trace = true;
  CloudSimulator sim(sharded_sim_config(),
                     std::make_unique<ShardedAllocator>(options));
  return sim.run(seed);
}

TEST(ShardedSimulator, FingerprintBitIdenticalAcrossThreadCounts) {
  // Warm-started sharded windows with admission control: the full
  // tentpole pipeline must replay bit-identically at any worker count.
  const std::uint64_t serial = deterministic_fingerprint(sharded_sim_run(1, 3));
  EXPECT_EQ(deterministic_fingerprint(sharded_sim_run(2, 3)), serial);
  EXPECT_EQ(deterministic_fingerprint(sharded_sim_run(4, 3)), serial);
  EXPECT_NE(deterministic_fingerprint(sharded_sim_run(1, 4)), serial);
}

TEST(ShardedSimulator, ShardAndAdmissionColumnsRoundTripThroughJson) {
  const std::vector<WindowMetrics> metrics = sharded_sim_run(2, 3);
  // The horizon must actually exercise the new columns.
  bool has_shard = false;
  bool has_admission = false;
  for (const WindowMetrics& w : metrics) {
    has_shard = has_shard || w.shard.shard_count > 0;
    has_admission =
        has_admission || w.admission_deferred > 0 || w.admitted > 0;
  }
  ASSERT_TRUE(has_shard);
  ASSERT_TRUE(has_admission);

  const Json emitted = sim_trace_to_json(metrics);
  const std::string text = emitted.dump(2);
  const std::vector<WindowMetrics> parsed =
      sim_trace_from_json(Json::parse(text));
  EXPECT_EQ(sim_trace_to_json(parsed).dump(2), text);
  EXPECT_EQ(deterministic_fingerprint(parsed),
            deterministic_fingerprint(metrics));
  ASSERT_EQ(parsed.size(), metrics.size());
  for (std::size_t w = 0; w < metrics.size(); ++w) {
    EXPECT_EQ(parsed[w].admitted, metrics[w].admitted);
    EXPECT_EQ(parsed[w].admission_deferred, metrics[w].admission_deferred);
    EXPECT_EQ(parsed[w].admission_dropped, metrics[w].admission_dropped);
    EXPECT_EQ(parsed[w].admission_queue_depth,
              metrics[w].admission_queue_depth);
    EXPECT_EQ(parsed[w].shard.shard_count, metrics[w].shard.shard_count);
    EXPECT_EQ(parsed[w].shard.pre_rejections,
              metrics[w].shard.pre_rejections);
    EXPECT_EQ(parsed[w].shard.rebalance_placements,
              metrics[w].shard.rebalance_placements);
    EXPECT_EQ(parsed[w].shard.migrations, metrics[w].shard.migrations);
    EXPECT_EQ(parsed[w].shard.max_shard_vms, metrics[w].shard.max_shard_vms);
    EXPECT_EQ(parsed[w].shard.min_shard_vms, metrics[w].shard.min_shard_vms);
  }
}

}  // namespace
}  // namespace iaas
