// Compiles the umbrella header and exercises one representative symbol
// from every layer — the "does the advertised public API actually hang
// together" smoke test.
#include "src/iaas.h"

#include <gtest/gtest.h>

namespace iaas {
namespace {

TEST(Umbrella, EveryLayerReachable) {
  // common
  Rng rng(1);
  Matrix<double> m(2, 2, 0.0);
  RunningStats stats;
  stats.add(rng.next_double());

  // topology
  FabricConfig fc;
  const Fabric fabric(fc);
  EXPECT_GT(fabric.server_count(), 0u);

  // workload + model
  ScenarioConfig scenario = ScenarioConfig::paper_scale(16);
  const ScenarioGenerator generator(scenario);
  Instance instance = generator.generate(1);
  EXPECT_TRUE(validate_instance(instance).empty());

  // lp
  const LinModel model(instance);
  EXPECT_GT(model.variable_count(), 0u);

  // ea + tabu + algo
  Nsga3TabuAllocator allocator;
  const AllocationResult result = allocator.allocate(instance, 2);
  EXPECT_EQ(result.raw_violations.total(), 0u);
  const NormalizedMetrics metrics = compute_metrics(instance, result);
  EXPECT_GT(metrics.acceptance_rate, 0.0);

  // availability
  if (!instance.requests.constraints.empty()) {
    const auto availability =
        placement_availability(instance, result.placement, 0.05);
    EXPECT_EQ(availability.size(), instance.requests.constraints.size());
  }

  // sim
  const ReconfigurationPlan plan =
      make_plan(instance, instance.previous, result.placement);
  EXPECT_EQ(plan.boots(), result.vm_count - result.rejected);

  // io
  const Json roundtrip = instance_to_json(instance);
  EXPECT_TRUE(roundtrip.contains("servers"));
  const std::string dsl = render_request_dsl(instance.requests);
  EXPECT_FALSE(dsl.empty());
}

}  // namespace
}  // namespace iaas
