#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

namespace iaas {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.next_u64() == b.next_u64() ? 1 : 0;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const std::uint64_t first = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformIntWithinBounds) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.uniform_int(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.uniform_int(4, 4), 4);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(13);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) {
    ++counts[static_cast<std::size_t>(rng.uniform_int(0, 7))];
  }
  for (int c : counts) {
    EXPECT_GT(c, 800);  // each bucket near 1000
    EXPECT_LT(c, 1200);
  }
}

TEST(Rng, UniformIndexBounds) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform_index(13), 13u);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    hits += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), shuffled.begin()));
  EXPECT_NE(v, shuffled);  // astronomically unlikely to be identity
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(37);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += parent.next_u64() == child.next_u64() ? 1 : 0;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, ChildStreamDoesNotConsumeParent) {
  Rng untouched(47);
  Rng parent(47);
  (void)parent.child_stream(0);
  (void)parent.child_stream(123456789);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(parent.next_u64(), untouched.next_u64());
  }
}

TEST(Rng, ChildStreamDeterministicPerCounter) {
  const Rng parent(53);
  Rng a = parent.child_stream(7);
  Rng b = parent.child_stream(7);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, ChildStreamsDistinctAcrossCounters) {
  const Rng parent(59);
  Rng a = parent.child_stream(0);
  Rng b = parent.child_stream(1);
  Rng c = parent.child_stream(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t xa = a.next_u64();
    const std::uint64_t xb = b.next_u64();
    const std::uint64_t xc = c.next_u64();
    equal += xa == xb ? 1 : 0;
    equal += xa == xc ? 1 : 0;
    equal += xb == xc ? 1 : 0;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, ChildStreamsDifferWithParentState) {
  // Advancing the parent changes what every counter derives — streams do
  // not repeat across generations.
  Rng parent(61);
  Rng before = parent.child_stream(3);
  parent.next_u64();
  Rng after = parent.child_stream(3);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += before.next_u64() == after.next_u64() ? 1 : 0;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformRealWithinBounds) {
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform_real(2.5, 7.5);
    EXPECT_GE(x, 2.5);
    EXPECT_LT(x, 7.5);
  }
}

// Mean of uniform draws should converge to the midpoint.
TEST(Rng, UniformRealMean) {
  Rng rng(43);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.uniform_real(0.0, 10.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

}  // namespace
}  // namespace iaas
