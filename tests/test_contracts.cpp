// Precondition contracts: IAAS_EXPECT violations must abort loudly (the
// research-artefact rationale in common/expect.h) — these death tests
// pin the contract for the library's entry points.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"
#include "ea/archive.h"
#include "model/infrastructure.h"
#include "tests/test_util.h"
#include "topology/fabric.h"

namespace iaas {
namespace {

using ContractsDeathTest = ::testing::Test;

TEST(ContractsDeathTest, FabricRejectsZeroDatacenters) {
  FabricConfig fc;
  fc.datacenters = 0;
  EXPECT_DEATH({ Fabric fabric(fc); }, "datacenter");
}

TEST(ContractsDeathTest, FabricRejectsEmptyTier) {
  FabricConfig fc;
  fc.servers_per_leaf = 0;
  EXPECT_DEATH({ Fabric fabric(fc); }, "non-empty");
}

TEST(ContractsDeathTest, FabricServerIndexOutOfRange) {
  FabricConfig fc;
  const Fabric fabric(fc);
  EXPECT_DEATH((void)fabric.datacenter_of_server(fabric.server_count()),
               "out of range");
}

TEST(ContractsDeathTest, InfrastructureRequiresFabricSizedServerList) {
  FabricConfig fc;  // 1 DC x 2 spines x 4 leaves x 8 servers = 32
  std::vector<Server> servers;  // wrong: empty
  EXPECT_DEATH({ Infrastructure infra(fc, std::move(servers)); },
               "per fabric server");
}

TEST(ContractsDeathTest, InfrastructureRejectsDatacenterMismatch) {
  FabricConfig fc;
  fc.datacenters = 2;
  fc.leaves_per_dc = 1;
  fc.servers_per_leaf = 1;
  std::vector<Server> servers = {
      test::make_server(0, {1.0, 1.0, 1.0}),
      test::make_server(0, {1.0, 1.0, 1.0})};  // should be DC 1
  EXPECT_DEATH({ Infrastructure infra(fc, std::move(servers)); },
               "datacenter must match");
}

TEST(ContractsDeathTest, RngUniformIntRequiresOrderedBounds) {
  Rng rng(1);
  EXPECT_DEATH((void)rng.uniform_int(5, 4), "lo <= hi");
}

TEST(ContractsDeathTest, RngUniformIndexRejectsZero) {
  Rng rng(1);
  EXPECT_DEATH((void)rng.uniform_index(0), "n > 0");
}

TEST(ContractsDeathTest, PercentileRejectsEmptyRange) {
  const std::vector<double> empty;
  EXPECT_DEATH((void)percentile(empty, 0.5), "empty");
}

TEST(ContractsDeathTest, PercentileRejectsBadQuantile) {
  const std::vector<double> v = {1.0};
  EXPECT_DEATH((void)percentile(v, 1.5), "0,1");
}

TEST(ContractsDeathTest, ArchiveRejectsZeroCapacity) {
  EXPECT_DEATH({ ParetoArchive archive(0); }, "positive");
}

}  // namespace
}  // namespace iaas
