// JSON value/parser/writer and model (de)serialisation round-trips.
#include <gtest/gtest.h>

#include <filesystem>

#include "io/json.h"
#include "io/serialize.h"
#include "tests/test_util.h"

namespace iaas {
namespace {

TEST(Json, ScalarRoundTrips) {
  EXPECT_EQ(Json::parse("null"), Json::null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(Json::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(Json::parse("-3.25e2").as_number(), -325.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, StringEscapes) {
  const Json j = Json::parse(R"("a\"b\\c\nd\teA")");
  EXPECT_EQ(j.as_string(), "a\"b\\c\nd\teA");
  // Dump escapes again and reparses to the same value.
  EXPECT_EQ(Json::parse(j.dump()), j);
}

TEST(Json, UnicodeEscapeUtf8) {
  EXPECT_EQ(Json::parse(R"("é")").as_string(), "\xc3\xa9");   // é
  EXPECT_EQ(Json::parse(R"("€")").as_string(), "\xe2\x82\xac"); // €
}

TEST(Json, ArraysAndObjects) {
  const Json j = Json::parse(R"({"a": [1, 2, 3], "b": {"c": true}})");
  EXPECT_EQ(j.at("a").size(), 3u);
  EXPECT_DOUBLE_EQ(j.at("a").at(1).as_number(), 2.0);
  EXPECT_TRUE(j.at("b").at("c").as_bool());
  EXPECT_TRUE(j.contains("a"));
  EXPECT_FALSE(j.contains("z"));
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json j = Json::object();
  j["z"] = Json::number(1);
  j["a"] = Json::number(2);
  EXPECT_EQ(j.items()[0].first, "z");
  EXPECT_EQ(j.items()[1].first, "a");
}

TEST(Json, DumpCompactAndPretty) {
  Json j = Json::object();
  j["k"] = Json::array();
  j["k"].push_back(Json::number(1));
  EXPECT_EQ(j.dump(), "{\"k\":[1]}");
  const std::string pretty = j.dump(2);
  EXPECT_NE(pretty.find("\n  \"k\""), std::string::npos);
  EXPECT_EQ(Json::parse(pretty), j);
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(Json::parse(""), std::runtime_error);
  EXPECT_THROW(Json::parse("{"), std::runtime_error);
  EXPECT_THROW(Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(Json::parse("tru"), std::runtime_error);
  EXPECT_THROW(Json::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(Json::parse("1 2"), std::runtime_error);  // trailing junk
  EXPECT_THROW(Json::parse("{\"a\" 1}"), std::runtime_error);
}

TEST(Json, TypeErrorsThrow) {
  const Json j = Json::parse("[1]");
  EXPECT_THROW(j.as_string(), std::runtime_error);
  EXPECT_THROW(j.at("key"), std::runtime_error);
  EXPECT_THROW(j.at(5), std::runtime_error);
}

TEST(RelationKindWire, RoundTripsAllKinds) {
  for (RelationKind kind :
       {RelationKind::kSameDatacenter, RelationKind::kSameServer,
        RelationKind::kDifferentDatacenters,
        RelationKind::kDifferentServers}) {
    EXPECT_EQ(relation_kind_from_string(relation_kind_to_string(kind)),
              kind);
  }
  EXPECT_THROW(relation_kind_from_string("bogus"), std::runtime_error);
}

TEST(Serialize, PlacementRoundTrip) {
  const Placement p(std::vector<std::int32_t>{3, Placement::kRejected, 0});
  EXPECT_EQ(placement_from_json(placement_to_json(p)), p);
}

void expect_instances_equal(const Instance& a, const Instance& b) {
  ASSERT_EQ(a.m(), b.m());
  ASSERT_EQ(a.n(), b.n());
  ASSERT_EQ(a.g(), b.g());
  ASSERT_EQ(a.h(), b.h());
  for (std::size_t j = 0; j < a.m(); ++j) {
    EXPECT_EQ(a.infra.server(j).capacity, b.infra.server(j).capacity);
    EXPECT_EQ(a.infra.server(j).factor, b.infra.server(j).factor);
    EXPECT_EQ(a.infra.server(j).max_load, b.infra.server(j).max_load);
    EXPECT_EQ(a.infra.server(j).max_qos, b.infra.server(j).max_qos);
    EXPECT_DOUBLE_EQ(a.infra.server(j).opex, b.infra.server(j).opex);
    EXPECT_DOUBLE_EQ(a.infra.server(j).usage_cost,
                     b.infra.server(j).usage_cost);
  }
  for (std::size_t k = 0; k < a.n(); ++k) {
    EXPECT_EQ(a.requests.vms[k].demand, b.requests.vms[k].demand);
    EXPECT_DOUBLE_EQ(a.requests.vms[k].qos_guarantee,
                     b.requests.vms[k].qos_guarantee);
    EXPECT_DOUBLE_EQ(a.requests.vms[k].downtime_cost,
                     b.requests.vms[k].downtime_cost);
    EXPECT_DOUBLE_EQ(a.requests.vms[k].migration_cost,
                     b.requests.vms[k].migration_cost);
  }
  ASSERT_EQ(a.requests.constraints.size(), b.requests.constraints.size());
  for (std::size_t c = 0; c < a.requests.constraints.size(); ++c) {
    EXPECT_EQ(a.requests.constraints[c].kind, b.requests.constraints[c].kind);
    EXPECT_EQ(a.requests.constraints[c].vms, b.requests.constraints[c].vms);
  }
  EXPECT_EQ(a.previous, b.previous);
}

TEST(Serialize, InstanceRoundTripGenerated) {
  ScenarioConfig cfg = ScenarioConfig::paper_scale(16);
  cfg.preplaced_fraction = 0.3;
  const Instance original = ScenarioGenerator(cfg).generate(5);
  const Instance restored = instance_from_json(instance_to_json(original));
  expect_instances_equal(original, restored);
}

TEST(Serialize, InstanceRoundTripThroughText) {
  const Instance original = test::make_random_instance(9, 16, 24);
  const std::string text = instance_to_json(original).dump(2);
  const Instance restored = instance_from_json(Json::parse(text));
  expect_instances_equal(original, restored);
}

TEST(Serialize, FileSaveLoad) {
  const std::string path = "/tmp/iaas_test_instance.json";
  const Instance original = test::make_random_instance(11, 16, 20);
  save_instance(original, path);
  const Instance restored = load_instance(path);
  expect_instances_equal(original, restored);
  std::filesystem::remove(path);
}

TEST(Serialize, LoadMissingFileThrows) {
  EXPECT_THROW(load_instance("/nonexistent/nope.json"), std::runtime_error);
}

TEST(Serialize, MalformedInstanceThrows) {
  EXPECT_THROW(instance_from_json(Json::parse("{}")), std::runtime_error);
  // Previous placement of the wrong size.
  const Instance inst = test::make_random_instance(13, 16, 8);
  Json j = instance_to_json(inst);
  j["previous"] = Json::array();  // wrong size (0 != 8)... empty arrays
  j["previous"].push_back(Json::number(0));
  EXPECT_THROW(instance_from_json(j), std::runtime_error);
}

TEST(Serialize, ResultToJsonCarriesMetrics) {
  const Instance inst = test::make_random_instance(15, 8, 8);
  AllocationResult result;
  result.algorithm = "test";
  result.vm_count = 8;
  result.rejected = 2;
  result.wall_seconds = 0.5;
  result.placement = Placement(8);
  result.objectives.usage_cost = 10.0;
  const Json j = result_to_json(result);
  EXPECT_EQ(j.at("algorithm").as_string(), "test");
  EXPECT_DOUBLE_EQ(j.at("rejection_rate").as_number(), 0.25);
  EXPECT_DOUBLE_EQ(j.at("objectives").at("usage_cost").as_number(), 10.0);
  EXPECT_EQ(j.at("placement").size(), 8u);
}

}  // namespace
}  // namespace iaas
