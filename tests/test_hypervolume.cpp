// Exact 3D hypervolume (minimisation) — known values and invariants.
#include "ea/hypervolume.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace iaas {
namespace {

constexpr ObjArray kRef = {1.0, 1.0, 1.0};

TEST(Hypervolume, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(hypervolume(std::vector<ObjArray>{}, kRef), 0.0);
}

TEST(Hypervolume, SinglePointBoxVolume) {
  const std::vector<ObjArray> pts = {{0.25, 0.5, 0.75}};
  EXPECT_NEAR(hypervolume(pts, kRef), 0.75 * 0.5 * 0.25, 1e-12);
}

TEST(Hypervolume, OriginDominatesWholeBox) {
  const std::vector<ObjArray> pts = {{0.0, 0.0, 0.0}};
  EXPECT_NEAR(hypervolume(pts, {2.0, 3.0, 4.0}), 24.0, 1e-12);
}

TEST(Hypervolume, PointOutsideReferenceIgnored) {
  const std::vector<ObjArray> pts = {{1.5, 0.1, 0.1}};
  EXPECT_DOUBLE_EQ(hypervolume(pts, kRef), 0.0);
}

TEST(Hypervolume, DominatedPointAddsNothing) {
  const std::vector<ObjArray> base = {{0.2, 0.2, 0.2}};
  const std::vector<ObjArray> with_dominated = {{0.2, 0.2, 0.2},
                                                {0.5, 0.5, 0.5}};
  EXPECT_NEAR(hypervolume(base, kRef), hypervolume(with_dominated, kRef),
              1e-12);
}

TEST(Hypervolume, TwoIncomparablePointsUnionVolume) {
  // A = (.2,.6,.5), B = (.6,.2,.5): union at z>=0.5 of two rectangles.
  // vol = [ (1-.2)(1-.6) + (1-.6)(1-.2) - (1-.6)(1-.6) ] * (1-.5)
  const std::vector<ObjArray> pts = {{0.2, 0.6, 0.5}, {0.6, 0.2, 0.5}};
  const double expected = (0.8 * 0.4 + 0.4 * 0.8 - 0.4 * 0.4) * 0.5;
  EXPECT_NEAR(hypervolume(pts, kRef), expected, 1e-12);
}

TEST(Hypervolume, LayeredZSlices) {
  // Deep point at low z plus a broader point at higher z.
  const std::vector<ObjArray> pts = {{0.5, 0.5, 0.2}, {0.1, 0.1, 0.8}};
  // Slice z in [0.2, 0.8): only point 1 -> area (0.5)(0.5) = 0.25.
  // Slice z in [0.8, 1.0): both -> union area = .25 + .81 - .25... compute:
  //  A1=(1-.5)^2=.25, A2=(1-.1)^2=.81, overlap=(1-.5)^2=.25 -> union .81
  const double expected = 0.25 * 0.6 + 0.81 * 0.2;
  EXPECT_NEAR(hypervolume(pts, kRef), expected, 1e-12);
}

TEST(Hypervolume, MonotoneInAddingPoints) {
  Rng rng(7);
  std::vector<ObjArray> pts;
  double prev = 0.0;
  for (int i = 0; i < 40; ++i) {
    pts.push_back({rng.next_double(), rng.next_double(), rng.next_double()});
    const double hv = hypervolume(pts, kRef);
    EXPECT_GE(hv, prev - 1e-12);
    EXPECT_LE(hv, 1.0 + 1e-12);
    prev = hv;
  }
}

TEST(Hypervolume, PermutationInvariant) {
  Rng rng(9);
  std::vector<ObjArray> pts;
  for (int i = 0; i < 20; ++i) {
    pts.push_back({rng.next_double(), rng.next_double(), rng.next_double()});
  }
  const double hv = hypervolume(pts, kRef);
  for (int round = 0; round < 5; ++round) {
    rng.shuffle(pts);
    EXPECT_NEAR(hypervolume(pts, kRef), hv, 1e-12);
  }
}

TEST(Hypervolume, PopulationOverload) {
  Population front(2);
  front[0].objectives = {0.5, 0.5, 0.5};
  front[1].objectives = {0.9, 0.9, 0.9};
  EXPECT_NEAR(hypervolume(front, kRef), 0.125 + 0.0, 0.01);
}

// Cross-check against Monte Carlo estimation.
TEST(Hypervolume, MatchesMonteCarlo) {
  Rng rng(11);
  std::vector<ObjArray> pts;
  for (int i = 0; i < 10; ++i) {
    pts.push_back({rng.next_double(), rng.next_double(), rng.next_double()});
  }
  const double exact = hypervolume(pts, kRef);

  Rng mc(13);
  const int samples = 200000;
  int dominated = 0;
  for (int s = 0; s < samples; ++s) {
    const ObjArray q = {mc.next_double(), mc.next_double(),
                        mc.next_double()};
    for (const ObjArray& p : pts) {
      if (p[0] <= q[0] && p[1] <= q[1] && p[2] <= q[2]) {
        ++dominated;
        break;
      }
    }
  }
  const double estimate = static_cast<double>(dominated) / samples;
  EXPECT_NEAR(exact, estimate, 0.01);
}

}  // namespace
}  // namespace iaas
