// Domain store + propagation-based CP solver, cross-validated against
// the forward-checking CpSolver.
#include "lp/propagating_solver.h"

#include <gtest/gtest.h>

#include "model/constraint_checker.h"
#include "model/objectives.h"
#include "tests/test_util.h"

namespace iaas {
namespace {

using test::make_instance;
using test::make_random_instance;

TEST(DomainStore, StartsFull) {
  DomainStore store(3, 70);  // spans a word boundary
  for (std::size_t vm = 0; vm < 3; ++vm) {
    EXPECT_EQ(store.size(vm), 70u);
    EXPECT_TRUE(store.contains(vm, 0));
    EXPECT_TRUE(store.contains(vm, 69));
  }
}

TEST(DomainStore, RemoveAndRollback) {
  DomainStore store(2, 10);
  const std::size_t mark = store.checkpoint();
  store.remove(0, 3);
  store.remove(0, 7);
  store.remove(1, 0);
  EXPECT_EQ(store.size(0), 8u);
  EXPECT_FALSE(store.contains(0, 3));
  store.rollback(mark);
  EXPECT_EQ(store.size(0), 10u);
  EXPECT_TRUE(store.contains(0, 3));
  EXPECT_TRUE(store.contains(1, 0));
}

TEST(DomainStore, RemoveIsIdempotent) {
  DomainStore store(1, 4);
  const std::size_t mark = store.checkpoint();
  store.remove(0, 2);
  store.remove(0, 2);  // no double-trailing
  EXPECT_EQ(store.size(0), 3u);
  store.rollback(mark);
  EXPECT_EQ(store.size(0), 4u);
}

TEST(DomainStore, AssignCollapsesToSingleton) {
  DomainStore store(1, 130);  // three words
  store.assign(0, 65);
  EXPECT_EQ(store.size(0), 1u);
  EXPECT_EQ(store.single_value(0), 65u);
  std::vector<std::uint32_t> values;
  store.values(0, values);
  EXPECT_EQ(values, (std::vector<std::uint32_t>{65}));
}

TEST(DomainStore, NestedRollbacks) {
  DomainStore store(1, 8);
  const std::size_t m0 = store.checkpoint();
  store.remove(0, 1);
  const std::size_t m1 = store.checkpoint();
  store.assign(0, 5);
  EXPECT_EQ(store.size(0), 1u);
  store.rollback(m1);
  EXPECT_EQ(store.size(0), 7u);
  EXPECT_FALSE(store.contains(0, 1));
  store.rollback(m0);
  EXPECT_EQ(store.size(0), 8u);
}

TEST(PropagatingSolver, FindsFeasibleCompleteAssignment) {
  const Instance inst = make_instance(
      1, 3, {10.0, 10.0, 10.0},
      {{4.0, 4.0, 4.0}, {4.0, 4.0, 4.0}, {4.0, 4.0, 4.0}});
  PropagatingCpSolver solver(inst);
  CpStats stats;
  const Placement p = solver.solve(&stats);
  EXPECT_TRUE(stats.found_complete);
  EXPECT_EQ(p.rejected_count(), 0u);
  EXPECT_TRUE(ConstraintChecker(inst).check(p).feasible());
}

TEST(PropagatingSolver, RespectsRelationships) {
  const Instance inst = make_instance(
      2, 2, {10.0, 10.0, 10.0},
      {{2.0, 2.0, 2.0}, {2.0, 2.0, 2.0}, {2.0, 2.0, 2.0}, {2.0, 2.0, 2.0}},
      {{RelationKind::kSameServer, {0, 1}},
       {RelationKind::kDifferentDatacenters, {2, 3}}});
  PropagatingCpSolver solver(inst);
  const Placement p = solver.solve();
  ASSERT_EQ(p.rejected_count(), 0u);
  EXPECT_EQ(p.server_of(0), p.server_of(1));
  EXPECT_NE(inst.infra.datacenter_of(static_cast<std::size_t>(p.server_of(2))),
            inst.infra.datacenter_of(static_cast<std::size_t>(p.server_of(3))));
}

TEST(PropagatingSolver, OversizedVmFallsBackToRejection) {
  const Instance inst = make_instance(
      1, 2, {10.0, 10.0, 10.0}, {{20.0, 1.0, 1.0}, {1.0, 1.0, 1.0}});
  PropagatingCpSolver solver(inst);
  CpStats stats;
  const Placement p = solver.solve(&stats);
  EXPECT_FALSE(stats.found_complete);
  EXPECT_FALSE(p.is_assigned(0));
  EXPECT_TRUE(ConstraintChecker(inst).check(p).feasible());
}

// The key cross-validation: both engines prove the same optimum.
class SolverAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverAgreement, SameProvedOptimum) {
  const Instance inst = make_random_instance(GetParam(), 8, 10);
  CpSolver baseline(inst);
  PropagatingCpSolver propagating(inst);
  CpStats s1, s2;
  const Placement p1 = baseline.solve(&s1);
  const Placement p2 = propagating.solve(&s2);
  ASSERT_TRUE(s1.proved_optimal);
  ASSERT_TRUE(s2.proved_optimal);

  Evaluator evaluator(inst);
  const ObjectiveVector o1 = evaluator.objectives(p1);
  const ObjectiveVector o2 = evaluator.objectives(p2);
  EXPECT_NEAR(o1.usage_cost + o1.migration_cost,
              o2.usage_cost + o2.migration_cost, 1e-6)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverAgreement,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(PropagatingSolver, PropagationVisitsFewerOrEqualNodesTypically) {
  // Not a theorem, but on constrained instances the filtering should cut
  // the explored tree substantially; assert a sane aggregate.
  std::uint64_t baseline_nodes = 0;
  std::uint64_t propagating_nodes = 0;
  for (std::uint64_t seed : {11u, 22u, 33u, 44u}) {
    ScenarioConfig cfg = ScenarioConfig::paper_scale(8);
    cfg.vms = 12;
    cfg.constrained_fraction = 0.6;
    const Instance inst = ScenarioGenerator(cfg).generate(seed);
    CpStats s1, s2;
    CpSolver(inst).solve(&s1);
    PropagatingCpSolver(inst).solve(&s2);
    baseline_nodes += s1.nodes;
    propagating_nodes += s2.nodes;
  }
  EXPECT_LE(propagating_nodes, baseline_nodes * 2);  // sanity ceiling
  EXPECT_GT(propagating_nodes, 0u);
}

TEST(PropagatingSolver, HonoursBacktrackBudget) {
  CpSolverOptions options;
  options.max_backtracks = 10;
  const Instance inst = make_random_instance(9, 8, 16);
  PropagatingCpSolver solver(inst, options);
  CpStats stats;
  solver.solve(&stats);
  EXPECT_LE(stats.backtracks, 11u);
}

TEST(PropagatingSolver, HonoursDeadline) {
  CpSolverOptions options;
  options.time_limit_seconds = 0.0;
  const Instance inst = make_random_instance(10, 8, 16);
  PropagatingCpSolver solver(inst, options);
  CpStats stats;
  const Placement p = solver.solve(&stats);
  EXPECT_TRUE(stats.timed_out);
  EXPECT_TRUE(ConstraintChecker(inst).check(p).feasible());
}

}  // namespace
}  // namespace iaas
